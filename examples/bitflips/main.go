// Bitflips demo: the physical view of row-hammer. A charge-damage
// model (internal/faults) rides along with the full-system simulator:
// every activation disturbs its neighbours (with Half-Double's
// distance-2 coupling), refreshes restore charge, and a row whose
// damage reaches T_RH flips.
//
// The demo runs the same double-sided attack against the unprotected
// baseline and against Hydra: the baseline's victim flips within a few
// hundred microseconds of simulated time; under Hydra the damage never
// gets close.
package main

import (
	"fmt"
	"log"

	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const trh = 500
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 70000})

	background, err := workload.ByName("xz")
	if err != nil {
		log.Fatal(err)
	}

	run := func(kind sim.TrackerKind) (*faults.Model, sim.Result) {
		model := faults.NewModel(trh, 2, mem.RowsPerBank, 0.05)
		cfg := sim.Default(background)
		cfg.Scale = 32
		cfg.TRH = trh
		cfg.KeepStructSize = true
		cfg.Attack = &sim.AttackSpec{
			Rows: []uint32{victim - 1, victim + 1}, // double-sided
			Acts: 20000,
		}
		cfg.Observer = model
		cfg.Tracker = kind
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return model, res
	}

	fmt.Println("=== Physical row-hammer: does the victim flip? ===")
	fmt.Printf("attack: double-sided on rows %d/%d, 10000 hammers each, T_RH=%d\n\n",
		victim-1, victim+1, trh)

	m, res := run(sim.TrackNone)
	fmt.Printf("unprotected: %d bit-flips (first at row %d), max damage %.0f, %.2f ms simulated\n",
		len(m.Flips), flipRow(m), m.MaxDamage, float64(res.Cycles)/3.2e6)

	m, res = run(sim.TrackHydra)
	fmt.Printf("hydra:       %d bit-flips, max damage %.0f (flip needs %d), %d mitigations\n",
		len(m.Flips), m.MaxDamage, trh, res.Mitigations)
	if !m.Flipped() {
		fmt.Println("\nHydra held the line: every aggressor was refreshed-around before")
		fmt.Println("any neighbour accumulated T_RH of disturbance.")
	}
}

func flipRow(m *faults.Model) uint32 {
	if len(m.Flips) == 0 {
		return 0
	}
	return uint32(m.Flips[0].Row)
}
