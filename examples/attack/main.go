// Attack demo: throw the paper's adaptive attack patterns
// (Section 5.2) at Hydra and at a deliberately weakened tracker, with
// the security oracle checking the threat model — no row may reach
// T_RH activations within a refresh period without a mitigation.
//
// The weakened comparison is an undersized TWiCE table, reproducing
// the TRRespass observation (Section 2.4) that thrashable trackers
// lose the aggressor.
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/rh"
	"repro/internal/track"
)

func main() {
	const trh = 500
	geom := track.BaselineGeometry()
	cfg := attack.Config{
		TRH:         trh,
		RowsPerBank: geom.RowsPerBank,
		ActsPerWin:  1_360_000, // one full bank's worth of activations
		Windows:     2,         // spans a tracker reset (straddle attack included)
	}
	victim := rh.Row(50000)

	patterns := []attack.Pattern{
		&attack.SingleSided{Target: victim},
		&attack.DoubleSided{Victim: victim},
		&attack.ManySided{Base: victim, Sides: 19, Spacing: 3},
		&attack.HalfDouble{Victim: victim},
		&attack.Thrash{
			Target:     victim,
			Distractor: func(i int) rh.Row { return rh.Row(10000 + i) },
			Spread:     80000,
			HammerEach: 4,
		},
	}

	fmt.Println("=== Hydra under attack (oracle checks T_RH =", trh, ") ===")
	for _, p := range patterns {
		hcfg := core.ForThreshold(trh)
		hcfg.Rows = geom.Rows
		tracker := core.MustNew(hcfg, rh.NullSink{})
		res := attack.Run(tracker, p, cfg)
		fmt.Println(res)
		if !res.Safe() {
			fmt.Println("  !! Hydra violated the bound; this is a bug")
		}
	}

	fmt.Println("\n=== Undersized TWiCE under the thrash pattern ===")
	weak := track.MustNewTWiCE(geom, trh, 128) // far below the safe sizing
	res := attack.Run(weak, &attack.Thrash{
		Target:     victim,
		Distractor: func(i int) rh.Row { return rh.Row(10000 + i) },
		Spread:     80000,
		HammerEach: 4,
	}, cfg)
	fmt.Println(res)
	if res.Safe() {
		fmt.Println("  (unexpected: undersized table survived)")
	} else {
		v := res.Violations[0]
		fmt.Printf("  row %d reached %d unmitigated activations: the table thrashed\n", v.Row, v.Count)
		fmt.Printf("  table overflowed %d times while distractors churned it\n", weak.Overflows)
	}
}
