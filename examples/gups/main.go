// GUPS demo: run the Giga-Updates-Per-Second kernel — the paper's
// stress test, random single-line accesses over a large working set —
// through the full-system simulator with and without Hydra, and show
// where the (small) slowdown comes from.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	p, err := workload.ByName("GUPS")
	if err != nil {
		log.Fatal(err)
	}

	run := func(kind sim.TrackerKind) sim.Result {
		cfg := sim.Default(p)
		cfg.Scale = 8 // 1/8 of a 64 ms window; structures scaled to match
		cfg.Tracker = kind
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("=== GUPS through the full-system simulator ===")
	base := run(sim.TrackNone)
	fmt.Printf("baseline: %d cycles, IPC %.3f, %d activations, %.0f cyc avg read latency\n",
		base.Cycles, base.IPC(), base.Mem.Activates, base.Mem.AvgReadLatency())

	hyd := run(sim.TrackHydra)
	norm := float64(base.Cycles) / float64(hyd.Cycles)
	fmt.Printf("hydra:    %d cycles, IPC %.3f -> normalized perf %.4f (slowdown %.2f%%)\n",
		hyd.Cycles, hyd.IPC(), norm, stats.SlowdownPct(norm))

	h := hyd.Hydra
	acts := float64(h.Acts)
	fmt.Printf("  GCT absorbed %.1f%%, RCC %.1f%%, RCT/DRAM %.1f%% of %d updates\n",
		float64(h.GCTOnly)/acts*100, float64(h.RCCHit)/acts*100,
		float64(h.RCTAccess)/acts*100, h.Acts)
	fmt.Printf("  %d RCT line reads + %d writes competed with demand traffic\n",
		hyd.Mem.MetaReads, hyd.Mem.MetaWrites)
	fmt.Printf("  %d mitigations -> %d victim-refresh activations\n",
		hyd.Mitigations, hyd.Mem.MitigActs)

	// GUPS is the workload that punishes an undersized GCT (Figure 9):
	// every access is a random row, so small tables saturate and push
	// traffic to the RCT.
	cfgSmall := sim.Default(p)
	cfgSmall.Scale = 8
	cfgSmall.Tracker = sim.TrackHydra
	cfgSmall.HydraGCTEntries = 16 * 1024
	small, err := sim.Run(cfgSmall)
	if err != nil {
		log.Fatal(err)
	}
	normSmall := float64(base.Cycles) / float64(small.Cycles)
	fmt.Printf("hydra with half-size GCT: normalized perf %.4f (slowdown %.2f%%)\n",
		normSmall, stats.SlowdownPct(normSmall))
}
