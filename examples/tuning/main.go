// Tuning demo: size Hydra for a hypothetical future DRAM part.
//
// Suppose a vendor reports T_RH = 250 for a new device. This example
// scales Hydra's structures per the paper's recipe (Section 6.3),
// sweeps the GCT threshold T_G (Figure 10's experiment) on a hot,
// cache-unfriendly workload, and prints the slowdown and the SRAM /
// power budget of each candidate, so a designer can pick the knee.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const trh = 250 // the new device's threshold
	th := trh / 2

	// A demanding workload: parest has the paper's largest hot set
	// (5882 rows above 250 activations per window).
	p, err := workload.ByName("parest")
	if err != nil {
		log.Fatal(err)
	}

	base := runCfg(p, func(c *sim.Config) { c.Tracker = sim.TrackNone })

	fmt.Printf("=== Tuning Hydra for T_RH = %d (T_H = %d) on %s ===\n", trh, th, p.Name)
	fmt.Printf("%-10s %-12s %-12s %-14s\n", "T_G", "slowdown", "RCT traffic", "group inits")
	for _, pctOfTH := range []int{50, 65, 80, 95} {
		tg := th * pctOfTH / 100
		res := runCfg(p, func(c *sim.Config) {
			c.Tracker = sim.TrackHydra
			c.TRH = trh
			c.HydraTG = tg
		})
		norm := float64(base.Cycles) / float64(res.Cycles)
		fmt.Printf("%3d%% (%3d) %10.2f%% %12d %14d\n",
			pctOfTH, tg, stats.SlowdownPct(norm),
			res.Mem.MetaReads+res.Mem.MetaWrites, res.Hydra.GroupInits)
	}

	// The structures double when the threshold halves; show the cost.
	fmt.Println("\nstructure scaling (paper Section 6.3):")
	for _, t := range []int{500, 250, 125} {
		cfg := core.ForThreshold(t)
		sp := power.ScaledSRAM(cfg.GCTEntries, cfg.RCCEntries)
		fmt.Printf("  T_RH=%3d: GCT %4dK, RCC %3dK entries -> %6.1f KB SRAM, %5.1f mW\n",
			t, cfg.GCTEntries/1024, cfg.RCCEntries/1024,
			float64(cfg.Storage().TotalBytes)/1024, sp.TotalMW())
	}
}

func runCfg(p workload.Profile, mut func(*sim.Config)) sim.Result {
	cfg := sim.Default(p)
	cfg.Scale = 16
	mut(&cfg)
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
