// Quickstart: protect a memory controller with Hydra in a few lines.
//
// The example creates the paper's default tracker (T_RH = 500, 32 GB
// memory), streams activations at it — a benign scan plus one hammered
// row — and shows where updates were absorbed (GCT / RCC / RCT), when
// mitigations fired, and what the tracker costs in SRAM.
package main

import (
	"fmt"

	hydra "repro"
)

func main() {
	// Count the RCT traffic the tracker generates so the overhead is
	// visible; a real memory controller would turn these callbacks
	// into DRAM reads/writes of the reserved region.
	sink := &hydra.CountingSink{}
	tracker := hydra.MustNew(hydra.DefaultConfig(), sink)

	// The refresher implements the paper's mitigation policy: refresh
	// two victim rows on each side of a flagged aggressor, feeding the
	// victim activations back into tracking (Half-Double defense).
	const rowsPerBank = 131072
	refresher := hydra.NewRefresher(tracker, hydra.DefaultBlast, rowsPerBank)

	// A benign streaming phase: 20000 distinct rows (spread over the
	// row space the way OS page placement scatters them), two
	// activations each. The Group-Count Table absorbs all of it.
	for i := 0; i < 20000; i++ {
		row := hydra.Row(i * 137) // spread across row-groups
		refresher.Activate(row)
		refresher.Activate(row)
	}

	// An aggressor hammers row 70000. With T_H = 250 the tracker
	// orders a victim refresh every 250 activations.
	aggressor := hydra.Row(70000)
	var victims []hydra.Row
	for i := 0; i < 1000; i++ {
		if extra := refresher.Activate(aggressor); len(extra) > 0 {
			victims = extra
		}
	}

	stats := tracker.Stats()
	fmt.Println("=== Hydra quickstart ===")
	fmt.Printf("activations tracked: %d\n", stats.Acts)
	fmt.Printf("  absorbed by GCT:   %d (%.1f%%)\n", stats.GCTOnly, pct(stats.GCTOnly, stats.Acts))
	fmt.Printf("  hit in RCC:        %d (%.1f%%)\n", stats.RCCHit, pct(stats.RCCHit, stats.Acts))
	fmt.Printf("  went to RCT/DRAM:  %d (%.1f%%)\n", stats.RCTAccess, pct(stats.RCTAccess, stats.Acts))
	fmt.Printf("mitigations issued:  %d (every T_H = %d activations of the aggressor)\n",
		refresher.Mitigations, tracker.Config().TH)
	fmt.Printf("last victim refresh: rows %v\n", victims)
	fmt.Printf("RCT traffic:         %d line reads, %d line writes\n", sink.Reads, sink.Writes)

	s := tracker.Config().Storage()
	fmt.Printf("SRAM cost:           GCT %d B + RCC %d B + RIT-ACT %d B = %.1f KB\n",
		s.GCTBytes, s.RCCBytes, s.RITActBytes, float64(s.TotalBytes)/1024)

	// At the end of each 64 ms refresh window the controller resets
	// the SRAM structures; the DRAM-resident RCT needs no reset.
	tracker.ResetWindow()
	fmt.Println("window reset: SRAM cleared, RCT left in place (Section 4.6)")
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
