package hydra_test

import (
	"testing"

	hydra "repro"
)

// TestPublicAPIRoundTrip exercises the facade the README advertises:
// create a tracker, hammer a row under victim refresh, observe the
// mitigation cadence and the storage report.
func TestPublicAPIRoundTrip(t *testing.T) {
	sink := &hydra.CountingSink{}
	tracker, err := hydra.New(hydra.DefaultConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	ref := hydra.NewRefresher(tracker, hydra.DefaultBlast, 131072)

	aggressor := hydra.Row(4096)
	mitigs := 0
	for i := 0; i < 1000; i++ {
		if len(ref.Activate(aggressor)) > 0 {
			mitigs++
		}
	}
	// T_H = 250: exactly 4 mitigations in 1000 activations.
	if mitigs != 4 {
		t.Fatalf("mitigations = %d, want 4", mitigs)
	}
	if ref.Mitigations < 4 {
		t.Fatalf("refresher counted %d mitigations", ref.Mitigations)
	}
	if tracker.Stats().Acts < 1000 {
		t.Fatalf("acts = %d", tracker.Stats().Acts)
	}
	if sink.Total() == 0 {
		t.Fatal("hammering produced no RCT traffic")
	}
	if got := tracker.Config().Storage().TotalBytes; got != 56*1024+512 {
		t.Fatalf("storage = %d, want 56.5 KB", got)
	}
}

func TestConfigForThreshold(t *testing.T) {
	cfg := hydra.ConfigForThreshold(250)
	if cfg.GCTEntries != 64*1024 {
		t.Fatalf("GCT entries = %d, want 64K at TRH=250", cfg.GCTEntries)
	}
	if _, err := hydra.New(cfg, hydra.NullSink{}); err != nil {
		t.Fatal(err)
	}
}

func TestVictims(t *testing.T) {
	v := hydra.Victims(hydra.Row(100), hydra.DefaultBlast, 131072)
	if len(v) != 4 {
		t.Fatalf("victims = %v", v)
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew accepted an invalid config")
		}
	}()
	bad := hydra.DefaultConfig()
	bad.TG = 10000
	hydra.MustNew(bad, hydra.NullSink{})
}
