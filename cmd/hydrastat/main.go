// Command hydrastat analyzes hydra-run-report/v1 files (written by
// `experiments -json` and `hydrasim -json`) offline: per-target
// summaries and figure-level regression diffs. It is the report-level
// complement to cmd/benchgate: benchgate gates on `go test -bench`
// wall-clock, hydrastat diff gates on what the simulated system did.
//
// Usage:
//
//	hydrastat summarize [-top N] report.json...
//	hydrastat diff [-tolerance F] A.json B.json
//
// summarize prints, per report: the run envelope and parameters, the
// campaign cell verdicts with the slowest cells ranked by wall-clock
// (and their simulated-cycle rate), per-scheme suite geomeans, the
// largest counters, and p50/p95/p99 for every histogram metric.
//
// diff matches reports by target and compares per-scheme suite
// geomeans: a geomean that drops by more than -tolerance (fractional,
// default 0.01) is a regression and makes the exit code 1. Aggregate
// metric movements beyond the tolerance are listed as context.
//
// Exit codes: 0 success / no regression, 1 runtime failure or
// regression, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/hydrastat"
	"repro/internal/obsv"
)

func main() { cli.Main("hydrastat", run) }

func run(_ context.Context, args []string) error {
	if len(args) == 0 {
		return cli.Usagef("usage: hydrastat <summarize|diff> [flags] <report.json>...")
	}
	switch args[0] {
	case "summarize":
		return runSummarize(args[1:])
	case "diff":
		return runDiff(args[1:])
	default:
		return cli.Usagef("unknown subcommand %q (want summarize or diff)", args[0])
	}
}

func runSummarize(args []string) error {
	fs := flag.NewFlagSet("hydrastat summarize", flag.ContinueOnError)
	top := fs.Int("top", 5, "entries in the slowest-cells and top-counters lists")
	if err := cli.ParseError(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return cli.Usagef("usage: hydrastat summarize [-top N] <report.json>...")
	}
	for i, path := range fs.Args() {
		f, err := obsv.ReadReportFile(path)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
		}
		if fs.NArg() > 1 {
			fmt.Printf("== %s ==\n", path)
		}
		fmt.Print(hydrastat.Summarize(f, *top))
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("hydrastat diff", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", 0.01, "fractional geomean drop tolerated before failing")
	if err := cli.ParseError(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return cli.Usagef("usage: hydrastat diff [-tolerance F] <A.json> <B.json>")
	}
	a, err := obsv.ReadReportFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := obsv.ReadReportFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := hydrastat.Diff(a, b, *tolerance)
	fmt.Print(d.Format())
	if regs := d.Regressions(); len(regs) > 0 {
		return fmt.Errorf("%d geomean regression(s) beyond %.1f%% tolerance", len(regs), *tolerance*100)
	}
	return nil
}
