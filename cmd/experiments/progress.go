package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

// startProgress renders the campaign event stream as one
// carriage-return-overwritten line on stderr:
//
//	[campaign] 12/48 done · 3 running · 1 failed · 8 cached | fig5/hydra/parest 841 Mcyc
//
// Counts accumulate across every target of the invocation (the bus
// spans them all). The returned stop finalizes the line with a
// newline; it must be called before printing summaries that should not
// collide with the live line. Rendering is throttled so a noisy
// progress stream does not turn stderr into a hot loop.
func startProgress(bus *harness.Bus) (stop func()) {
	ch, cancel := bus.Subscribe(4096, true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var queued, running, ok, failed, cached, restored int
		var last string // most recent activity, e.g. "key 841 Mcyc"
		var lastLen int
		var lastPaint time.Time
		render := func(force bool) {
			if !force && time.Since(lastPaint) < 100*time.Millisecond {
				return
			}
			lastPaint = time.Now()
			total := queued + cached // restored cells are queued like any other
			finished := ok + failed + cached + restored
			line := fmt.Sprintf("[campaign] %d/%d done · %d running", finished, total, running)
			if failed > 0 {
				line += fmt.Sprintf(" · %d failed", failed)
			}
			if cached > 0 {
				line += fmt.Sprintf(" · %d cached", cached)
			}
			if restored > 0 {
				line += fmt.Sprintf(" · %d restored", restored)
			}
			if last != "" {
				line += " | " + last
			}
			pad := ""
			if n := lastLen - len(line); n > 0 {
				pad = strings.Repeat(" ", n) // blank the previous, longer line
			}
			lastLen = len(line)
			fmt.Fprintf(os.Stderr, "\r%s%s", line, pad)
		}
		for e := range ch {
			switch e.Kind {
			case harness.EvQueued:
				queued++
			case harness.EvStarted:
				if e.Attempt == 0 {
					running++
				}
				last = e.Key
			case harness.EvProgress:
				last = fmt.Sprintf("%s %d Mcyc", e.Key, e.Cycles/1e6)
			case harness.EvRetried:
				last = fmt.Sprintf("%s retry %d", e.Key, e.Attempt)
			case harness.EvCached:
				cached++
			case harness.EvRestored:
				restored++ // queued, then settled from the checkpoint without starting
			case harness.EvDone:
				ok++
				running--
				last = fmt.Sprintf("%s %.1fs", e.Key, e.ElapsedSec)
			case harness.EvFailed:
				failed++
				running--
				last = fmt.Sprintf("%s FAILED", e.Key)
			}
			render(e.Terminal())
		}
		render(true)
		fmt.Fprintln(os.Stderr)
	}()
	return func() {
		cancel()
		<-done
	}
}
