//go:build !windows

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/obsv"
)

// TestInterruptResumesIdentically is the end-to-end graceful-shutdown
// check: a real experiments process is interrupted with SIGINT mid-
// campaign and must exit 130 leaving a valid checkpoint; rerunning the
// same command must announce the resume and produce a report that is —
// after normalization — bitwise identical to an uninterrupted run's.
func TestInterruptResumesIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Enough cells that the interrupt lands mid-campaign, few enough
	// that the uninterrupted reference stays cheap.
	baseArgs := func(cacheDir, ckpt, report string) []string {
		return []string{
			"-par", "1", "-scale", "16", "-seed", "1",
			"-workloads", "parest,bwaves",
			"-cache-dir", cacheDir, "-resume", ckpt, "-json", report,
			"fig5",
		}
	}

	// Reference: one clean, uninterrupted run.
	refReport := filepath.Join(dir, "ref.json")
	ref := exec.Command(bin, baseArgs(filepath.Join(dir, "cache-ref"), filepath.Join(dir, "ckpt-ref.json"), refReport)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}

	// Interrupted run: SIGINT as soon as the first cell has been
	// checkpointed, so the campaign is provably mid-flight.
	cacheDir := filepath.Join(dir, "cache")
	ckpt := filepath.Join(dir, "ckpt.json")
	report := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	interrupted := exec.Command(bin, baseArgs(cacheDir, ckpt, report)...)
	interrupted.Stdout, interrupted.Stderr = &out, &out
	if err := interrupted.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			interrupted.Process.Kill() //nolint:errcheck
			t.Fatalf("no checkpoint after 60s; child output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := interrupted.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- interrupted.Wait() }()
	select {
	case <-waited:
	case <-time.After(60 * time.Second):
		interrupted.Process.Kill() //nolint:errcheck
		t.Fatalf("child ignored SIGINT for 60s; output:\n%s", out.String())
	}
	if code := interrupted.ProcessState.ExitCode(); code != cli.ExitInterrupt {
		t.Fatalf("interrupted run exited %d, want %d; output:\n%s", code, cli.ExitInterrupt, out.String())
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Errorf("interrupted run did not say so; output:\n%s", out.String())
	}
	if _, err := os.Stat(report); !os.IsNotExist(err) {
		t.Errorf("interrupted run left a report file (stat err %v); reports must be all-or-nothing", err)
	}

	// The surviving checkpoint must be valid and non-empty.
	cp, err := harness.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint after SIGINT: %v", err)
	}
	if why := cp.Recovered(); why != "" {
		t.Fatalf("checkpoint after SIGINT was corrupt: %s", why)
	}
	if cp.Len() == 0 {
		t.Fatal("checkpoint after SIGINT holds no cells")
	}

	// Resume: same command, must pick up the checkpoint and finish.
	resume := exec.Command(bin, baseArgs(cacheDir, ckpt, report)...)
	resumeOut, err := resume.CombinedOutput()
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, resumeOut)
	}
	if !strings.Contains(string(resumeOut), "[resuming:") {
		t.Errorf("resume run did not announce the checkpoint; output:\n%s", resumeOut)
	}

	// The resumed report must match the uninterrupted reference exactly
	// once operational noise (timestamps, cell provenance, cache
	// traffic) is normalized away.
	want := normalizedReport(t, refReport)
	got := normalizedReport(t, report)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted reference:\n%s\nvs\n%s", got, want)
	}
}

func normalizedReport(t *testing.T, path string) []byte {
	t.Helper()
	f, err := obsv.ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Normalize()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
