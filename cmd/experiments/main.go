// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] <target>...
//
// Targets: table1 table2 table3 table4 table5 fig1b fig2 fig5 fig6 fig7
// fig8 fig9 fig10 power ext-rand ext-ddr5 ext-rowswap ext-policies all
//
// Flags:
//
//	-scale N       footprint scale (1 = full 64 ms window; default 16)
//	-trh N         row-hammer threshold (default 500)
//	-workloads a,b restrict to the named workloads
//	-par N         parallel simulations (default NumCPU)
//	-seed N        workload seed
//	-json          emit reports as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	scale := flag.Float64("scale", 16, "footprint scale (1 = full 64 ms window)")
	trh := flag.Int("trh", 500, "row-hammer threshold")
	workloads := flag.String("workloads", "", "comma-separated workload subset")
	par := flag.Int("par", 0, "parallel simulations (0 = NumCPU)")
	seed := flag.Uint64("seed", 1, "workload seed")
	asJSON := flag.Bool("json", false, "emit reports as JSON instead of text tables")
	flag.Parse()

	opts := exp.Options{Scale: *scale, TRH: *trh, Parallelism: *par, Seed: *seed}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <target>...")
		fmt.Fprintln(os.Stderr, "targets: table1 table2 table3 table4 table5 fig1b fig2 fig5 fig6 fig7 fig8 fig9 fig10 power ext-rand ext-ddr5 ext-rowswap ext-policies all")
		os.Exit(2)
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table1", "table2", "table3", "table4", "table5",
			"fig1b", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "power",
			"ext-rand", "ext-ddr5", "ext-rowswap", "ext-policies"}
	}

	for _, target := range targets {
		start := time.Now()
		rep, err := run(target, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", target, err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{"target": target, "report": rep}); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", target, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(format(rep))
		fmt.Printf("[%s took %v]\n\n", target, time.Since(start).Round(time.Millisecond))
	}
}

// formatter is implemented by every structured report.
type formatter interface{ Format() string }

func format(rep any) string {
	if f, ok := rep.(formatter); ok {
		return f.Format()
	}
	return fmt.Sprint(rep)
}

func run(target string, opts exp.Options) (any, error) {
	switch target {
	case "table1":
		return exp.Table1Text(), nil
	case "table2":
		return exp.Table2Text(), nil
	case "table3":
		r, err := exp.Table3(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "table4":
		return exp.Table4Text(), nil
	case "table5":
		return exp.Table5Text(opts.TRH), nil
	case "fig1b":
		r, err := exp.Figure1b(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig2":
		r, err := exp.Figure2(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig5":
		r, err := exp.Figure5(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig6":
		r, err := exp.Figure6(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig7":
		r, err := exp.Figure7(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig8":
		r, err := exp.Figure8(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig9":
		r, err := exp.Figure9(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig10":
		r, err := exp.Figure10(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "power":
		r, err := exp.Power(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-rand":
		r, err := exp.ExtensionRandomized(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-ddr5":
		r, err := exp.ExtensionDDR5(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-rowswap":
		r, err := exp.ExtensionRowSwap(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-policies":
		r, err := exp.ExtensionPolicies(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	default:
		return "", fmt.Errorf("unknown target %q", target)
	}
}
