// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] <target>...
//
// Targets: table1 table2 table3 table4 table5 fig1b fig2 fig5 fig6 fig7
// fig8 fig9 fig10 power ext-rand ext-ddr5 ext-rowswap ext-policies
// chaos arena all
//
// The arena target sweeps every tracking scheme across the -thresholds
// list (benign performance, adversarial security verdicts, adversarial
// slowdown; see docs/TRACKERS.md). It is not part of "all": its cell
// count scales with the threshold list, so it is run explicitly.
//
// Flags:
//
//	-scale N          footprint scale (1 = full 64 ms window; default 16)
//	-trh N            row-hammer threshold (default 500)
//	-thresholds a,b   arena T_RH sweep points (default 4800,2000,1000,500)
//	-workloads a,b    restrict to the named workloads
//	-par N            parallel simulations (default NumCPU)
//	-seed N           workload seed (0 is a valid seed)
//	-json FILE        write a machine-readable run report ("-" = stdout)
//	-trace FILE       write a JSONL event trace (serializes the sweep)
//	-trace-cap N      event ring capacity (oldest dropped beyond this)
//	-resume FILE      checkpoint completed sweep cells to FILE and skip
//	                  them on the next run (schema hydra-checkpoint/v1)
//	-cell-timeout D   wall-clock budget per sweep cell (0 = unbounded)
//	-stall-timeout D  kill cells whose simulated-cycle counter stalls
//	                  this long (0 = no watchdog)
//	-retries N        retry failed cells with a perturbed seed
//	-chaos a,b        restrict the chaos target to the named scenarios
//	-cache-dir DIR    persist the content-addressed result cache to DIR
//	                  (schema hydra-cell-cache/v1) so identical cells
//	                  replay across invocations
//	-cache-max-bytes N  byte budget for -cache-dir: least-recently-used
//	                  entries are evicted until the tier fits (0 =
//	                  unbounded; corrupt entries quarantine regardless)
//	-no-cache         disable result caching entirely (every cell
//	                  simulates; the default keeps an in-memory cache
//	                  that dedupes identical cells across targets)
//	-costs-from FILE  seed the longest-first scheduler with per-cell
//	                  wall-clock costs from a prior run report
//	-listen ADDR      serve live telemetry on ADDR (":0" = ephemeral):
//	                  /metrics, /metrics.json, /events, /healthz,
//	                  /debug/pprof — see docs/METRICS.md
//	-progress         render a live campaign progress line on stderr
//	-cpuprofile FILE  write a pprof CPU profile
//	-memprofile FILE  write a pprof heap profile
//
// With -json, every target's report (schema hydra-run-report/v1,
// documented in docs/METRICS.md) is collected into one report file;
// text tables still go to stdout unless -json is "-". Failed sweep
// cells never abort a perf target: they are reported per cell in the
// "cells" section and the remaining cells complete.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 130
// interrupted (SIGINT/SIGTERM; the checkpoint named by -resume holds
// every completed cell, so rerunning with the same flags resumes).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/obsv"
)

func main() { cli.Main("experiments", run) }

var allTargets = []string{"table1", "table2", "table3", "table4", "table5",
	"fig1b", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "power",
	"ext-rand", "ext-ddr5", "ext-rowswap", "ext-policies", "chaos"}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.Float64("scale", 16, "footprint scale (1 = full 64 ms window)")
	trh := fs.Int("trh", 500, "row-hammer threshold")
	thresholds := fs.String("thresholds", "", "comma-separated arena T_RH sweep (default 4800,2000,1000,500)")
	workloads := fs.String("workloads", "", "comma-separated workload subset")
	par := fs.Int("par", 0, "parallel simulations (0 = NumCPU)")
	seed := fs.Uint64("seed", 1, "workload seed (0 is a valid seed)")
	jsonOut := fs.String("json", "", "write a run-report JSON file (\"-\" = stdout)")
	traceOut := fs.String("trace", "", "write a JSONL event trace (serializes the sweep)")
	traceCap := fs.Int("trace-cap", 1<<20, "event-trace ring capacity")
	resume := fs.String("resume", "", "checkpoint file: completed cells are skipped on rerun")
	cellTimeout := fs.Duration("cell-timeout", 0, "wall-clock budget per sweep cell (0 = unbounded)")
	stallTimeout := fs.Duration("stall-timeout", 0, "kill cells stalled this long (0 = no watchdog)")
	retries := fs.Int("retries", 0, "retry failed cells with a perturbed seed")
	chaos := fs.String("chaos", "", "comma-separated chaos scenarios (default: all built-ins)")
	cellParallel := fs.Bool("cell-parallel", false, "run each cell's memory channels on worker goroutines (auto-off when -par saturates the CPUs)")
	cacheDir := fs.String("cache-dir", "", "persist the result cache to this directory across runs")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "byte budget for -cache-dir; least-recently-used entries are evicted (0 = unbounded)")
	noCache := fs.Bool("no-cache", false, "disable result caching (simulate every cell)")
	costsFrom := fs.String("costs-from", "", "seed scheduler cell costs from this prior run report")
	listen := fs.String("listen", "", "serve live telemetry (/metrics, /events, pprof) on this address")
	progress := fs.Bool("progress", false, "render a live campaign progress line on stderr")
	cpuProf := fs.String("cpuprofile", "", "write a pprof CPU profile")
	memProf := fs.String("memprofile", "", "write a pprof heap profile")
	if err := cli.ParseError(fs.Parse(args)); err != nil {
		return err
	}

	opts := exp.Options{
		Scale:        *scale,
		TRH:          *trh,
		Parallelism:  *par,
		Seed:         seed,
		CellTimeout:  *cellTimeout,
		StallTimeout: *stallTimeout,
		Retries:      *retries,
		CellParallel: *cellParallel,
		Ctx:          ctx,
	}
	if *cellParallel && *chaos != "" {
		return cli.Usagef("-cell-parallel is incompatible with -chaos: the fault injector is not channel-shard-safe; run chaos cells serially")
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *traceOut != "" {
		opts.Trace = obsv.NewTracer(*traceCap)
	}
	if *resume != "" {
		cp, err := harness.OpenCheckpoint(*resume)
		if err != nil {
			return err
		}
		if why := cp.Recovered(); why != "" {
			fmt.Fprintf(os.Stderr, "[warning: %s]\n", why)
		}
		if n := cp.Len(); n > 0 {
			fmt.Printf("[resuming: %d completed cells in %s]\n", n, *resume)
		}
		opts.Checkpoint = cp
	}
	if !*noCache {
		// One cache across every target of this invocation: the shared
		// in-memory tier is what lets `experiments all` simulate the
		// common baseline cells once and replay them in every later
		// figure. -cache-dir adds the cross-invocation disk tier.
		cache, err := harness.NewCellCache(*cacheDir)
		if err != nil {
			return err
		}
		cache.Decode = exp.DecodeResult
		if *cacheMaxBytes > 0 {
			if *cacheDir == "" {
				return cli.Usagef("-cache-max-bytes needs -cache-dir (the in-memory tier is unbudgeted)")
			}
			cache.SetMaxBytes(*cacheMaxBytes)
		}
		opts.Cache = cache
	} else if *cacheDir != "" {
		return cli.Usagef("-no-cache and -cache-dir are mutually exclusive")
	}
	if *costsFrom != "" {
		if opts.Cache == nil {
			return cli.Usagef("-costs-from needs the result cache (drop -no-cache)")
		}
		costs, err := readCellCosts(*costsFrom)
		if err != nil {
			return err
		}
		opts.Cache.SeedCosts(costs)
		fmt.Printf("[seeded %d cell costs from %s]\n", len(costs), *costsFrom)
	}
	var sweepTRH []int
	if *thresholds != "" {
		for _, s := range strings.Split(*thresholds, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 2 {
				return cli.Usagef("-thresholds: %q is not a threshold >= 2", s)
			}
			sweepTRH = append(sweepTRH, n)
		}
	}
	var scenarios []string
	if *chaos != "" {
		scenarios = strings.Split(*chaos, ",")
		for _, name := range scenarios {
			if _, err := faults.ScenarioByName(name); err != nil {
				return cli.Usagef("%v", err)
			}
		}
	}

	targets := fs.Args()
	if len(targets) == 0 {
		return cli.Usagef("usage: experiments [flags] <target>...\ntargets: %s arena all",
			strings.Join(allTargets, " "))
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = allTargets
	}
	if *cellParallel {
		for _, t := range targets {
			if t == "chaos" {
				return cli.Usagef("-cell-parallel is incompatible with the chaos target: the fault injector is not channel-shard-safe; run it in a separate serial invocation")
			}
		}
	}

	stopProfiles, err := obsv.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()

	// Live telemetry: one bus and one registry span every target of the
	// invocation, so /events and /metrics describe the whole campaign.
	stopProgress := func() {}
	if *listen != "" || *progress {
		opts.Bus = harness.NewBus(0)
		opts.Live = obsv.NewRegistry()
		defer opts.Bus.Close()
		stopTelemetry, err := obsv.ListenFlag(*listen, obsv.ServerOptions{
			Gather: opts.Live.Snapshot,
			Events: opts.Bus,
		})
		if err != nil {
			return err
		}
		defer stopTelemetry() //nolint:errcheck // best-effort shutdown on exit
		if *progress {
			stopProgress = startProgress(opts.Bus)
		}
	}

	var reports []*obsv.Report
	for _, target := range targets {
		topts := opts
		topts.Target = target
		start := time.Now()
		rep, err := runTarget(target, topts, scenarios, sweepTRH)
		if err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		elapsed := time.Since(start)
		if *jsonOut != "" {
			reports = append(reports, exp.BuildReport(target, topts, rep, elapsed))
		}
		if *jsonOut != "-" {
			fmt.Println(format(rep))
			fmt.Printf("[%s took %v]\n\n", target, elapsed.Round(time.Millisecond))
		}
	}

	stopProgress()

	if opts.Cache != nil && *jsonOut != "-" {
		if s := opts.Cache.Stats(); s.Hits+s.Misses > 0 {
			fmt.Printf("[result cache: %d hits (%d mem, %d disk), %d misses, %d stored",
				s.Hits, s.MemHits, s.DiskHits, s.Misses, s.Stores)
			if opts.Cache.Dir() != "" {
				fmt.Printf(", %d B read, %d B written", s.BytesRead, s.BytesWritten)
			}
			if s.CorruptDropped > 0 {
				fmt.Printf(", %d corrupt entries dropped (%d quarantined)", s.CorruptDropped, s.Quarantined)
			}
			if s.Evicted > 0 {
				fmt.Printf(", %d evicted", s.Evicted)
			}
			fmt.Println("]")
		}
	}

	if *jsonOut != "" {
		if err := obsv.NewReportFile(reports...).WriteFile(*jsonOut); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(opts.Trace, *traceOut); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return stopProfiles()
}

// readCellCosts extracts per-cell wall-clock costs from a prior run
// report: every cell that actually simulated (cached and restored
// replays carry no timing signal) contributes its ElapsedSec under its
// key; across reports the largest observation wins — the conservative
// prior for longest-first scheduling.
func readCellCosts(path string) (map[string]time.Duration, error) {
	f, err := obsv.ReadReportFile(path)
	if err != nil {
		return nil, fmt.Errorf("costs-from: %w", err)
	}
	costs := map[string]time.Duration{}
	for _, r := range f.Reports {
		for _, c := range r.Cells {
			if c.Status == obsv.CellCached || c.Status == obsv.CellRestored || c.ElapsedSec <= 0 {
				continue
			}
			if d := time.Duration(c.ElapsedSec * float64(time.Second)); d > costs[c.Key] {
				costs[c.Key] = d
			}
		}
	}
	if len(costs) == 0 {
		return nil, fmt.Errorf("costs-from: no timed cells in %s", path)
	}
	return costs, nil
}

// writeTrace dumps the event ring as JSONL.
func writeTrace(tr *obsv.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Printf("[trace ring dropped %d oldest events; raise -trace-cap to keep more]\n", d)
	}
	return nil
}

// formatter is implemented by every structured report.
type formatter interface{ Format() string }

func format(rep any) string {
	if f, ok := rep.(formatter); ok {
		return f.Format()
	}
	return fmt.Sprint(rep)
}

func runTarget(target string, opts exp.Options, scenarios []string, thresholds []int) (any, error) {
	switch target {
	case "table1":
		return exp.Table1Text(), nil
	case "table2":
		return exp.Table2Text(), nil
	case "table3":
		return exp.Table3(opts)
	case "table4":
		return exp.Table4Text(), nil
	case "table5":
		return exp.Table5Text(opts.TRH), nil
	case "fig1b":
		return exp.Figure1b(opts)
	case "fig2":
		return exp.Figure2(opts)
	case "fig5":
		return exp.Figure5(opts)
	case "fig6":
		return exp.Figure6(opts)
	case "fig7":
		return exp.Figure7(opts)
	case "fig8":
		return exp.Figure8(opts)
	case "fig9":
		return exp.Figure9(opts)
	case "fig10":
		return exp.Figure10(opts)
	case "power":
		return exp.Power(opts)
	case "ext-rand":
		return exp.ExtensionRandomized(opts)
	case "ext-ddr5":
		return exp.ExtensionDDR5(opts)
	case "ext-rowswap":
		return exp.ExtensionRowSwap(opts)
	case "ext-policies":
		return exp.ExtensionPolicies(opts)
	case "chaos":
		return exp.Chaos(opts, scenarios)
	case "arena":
		return exp.Arena(opts, thresholds)
	default:
		return nil, cli.Usagef("unknown target %q (targets: %s arena all)", target, strings.Join(allTargets, " "))
	}
}
