// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] <target>...
//
// Targets: table1 table2 table3 table4 table5 fig1b fig2 fig5 fig6 fig7
// fig8 fig9 fig10 power ext-rand ext-ddr5 ext-rowswap ext-policies all
//
// Flags:
//
//	-scale N         footprint scale (1 = full 64 ms window; default 16)
//	-trh N           row-hammer threshold (default 500)
//	-workloads a,b   restrict to the named workloads
//	-par N           parallel simulations (default NumCPU)
//	-seed N          workload seed (0 is a valid seed)
//	-json FILE       write a machine-readable run report ("-" = stdout)
//	-trace FILE      write a JSONL event trace (serializes the sweep)
//	-trace-cap N     event ring capacity (oldest dropped beyond this)
//	-cpuprofile FILE write a pprof CPU profile
//	-memprofile FILE write a pprof heap profile
//
// With -json, every target's report (schema hydra-run-report/v1,
// documented in docs/METRICS.md) is collected into one report file;
// text tables still go to stdout unless -json is "-".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obsv"
)

func main() {
	scale := flag.Float64("scale", 16, "footprint scale (1 = full 64 ms window)")
	trh := flag.Int("trh", 500, "row-hammer threshold")
	workloads := flag.String("workloads", "", "comma-separated workload subset")
	par := flag.Int("par", 0, "parallel simulations (0 = NumCPU)")
	seed := flag.Uint64("seed", 1, "workload seed (0 is a valid seed)")
	jsonOut := flag.String("json", "", "write a run-report JSON file (\"-\" = stdout)")
	traceOut := flag.String("trace", "", "write a JSONL event trace (serializes the sweep)")
	traceCap := flag.Int("trace-cap", 1<<20, "event-trace ring capacity")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile")
	memProf := flag.String("memprofile", "", "write a pprof heap profile")
	flag.Parse()

	opts := exp.Options{Scale: *scale, TRH: *trh, Parallelism: *par, Seed: seed}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *traceOut != "" {
		opts.Trace = obsv.NewTracer(*traceCap)
	}

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <target>...")
		fmt.Fprintln(os.Stderr, "targets: table1 table2 table3 table4 table5 fig1b fig2 fig5 fig6 fig7 fig8 fig9 fig10 power ext-rand ext-ddr5 ext-rowswap ext-policies all")
		os.Exit(2)
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table1", "table2", "table3", "table4", "table5",
			"fig1b", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "power",
			"ext-rand", "ext-ddr5", "ext-rowswap", "ext-policies"}
	}

	stopProfiles, err := obsv.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fail := func(target string, err error) {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", target, err)
		os.Exit(1)
	}

	var reports []*obsv.Report
	for _, target := range targets {
		start := time.Now()
		rep, err := run(target, opts)
		if err != nil {
			fail(target, err)
		}
		elapsed := time.Since(start)
		if *jsonOut != "" {
			reports = append(reports, exp.BuildReport(target, opts, rep, elapsed))
		}
		if *jsonOut != "-" {
			fmt.Println(format(rep))
			fmt.Printf("[%s took %v]\n\n", target, elapsed.Round(time.Millisecond))
		}
	}

	if *jsonOut != "" {
		if err := obsv.NewReportFile(reports...).WriteFile(*jsonOut); err != nil {
			fail("json", err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("trace", err)
		}
		if err := opts.Trace.WriteJSONL(f); err != nil {
			f.Close()
			fail("trace", err)
		}
		if err := f.Close(); err != nil {
			fail("trace", err)
		}
		if d := opts.Trace.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "experiments: trace ring dropped %d oldest events (raise -trace-cap to keep more)\n", d)
		}
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: profiles:", err)
		os.Exit(1)
	}
}

// formatter is implemented by every structured report.
type formatter interface{ Format() string }

func format(rep any) string {
	if f, ok := rep.(formatter); ok {
		return f.Format()
	}
	return fmt.Sprint(rep)
}

func run(target string, opts exp.Options) (any, error) {
	switch target {
	case "table1":
		return exp.Table1Text(), nil
	case "table2":
		return exp.Table2Text(), nil
	case "table3":
		r, err := exp.Table3(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "table4":
		return exp.Table4Text(), nil
	case "table5":
		return exp.Table5Text(opts.TRH), nil
	case "fig1b":
		r, err := exp.Figure1b(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig2":
		r, err := exp.Figure2(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig5":
		r, err := exp.Figure5(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig6":
		r, err := exp.Figure6(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig7":
		r, err := exp.Figure7(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig8":
		r, err := exp.Figure8(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig9":
		r, err := exp.Figure9(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "fig10":
		r, err := exp.Figure10(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "power":
		r, err := exp.Power(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-rand":
		r, err := exp.ExtensionRandomized(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-ddr5":
		r, err := exp.ExtensionDDR5(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-rowswap":
		r, err := exp.ExtensionRowSwap(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	case "ext-policies":
		r, err := exp.ExtensionPolicies(opts)
		if err != nil {
			return "", err
		}
		return r, nil
	default:
		return "", fmt.Errorf("unknown target %q", target)
	}
}
