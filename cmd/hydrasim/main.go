// Command hydrasim runs one workload through the full-system
// simulator under a chosen tracker and prints the result: cycles, IPC,
// memory statistics, tracker traffic and (for Hydra) the Figure 4
// access distribution.
//
// Usage:
//
//	hydrasim -workload parest -tracker hydra -scale 16 -trh 500
//	hydrasim -workload GUPS -json run.json -trace run.jsonl
//	hydrasim -workload 'custom:SPEC:20:16000:400:40'    # ad-hoc profile
//
// Trackers: none hydra hydra-nogct hydra-norcc graphene cra ocpr para
// start mint dapper
//
// The -workload flag accepts a named profile from Table 3, "list" to
// enumerate them, or an inline spec "name:suite:mpki:rows:hot:actsper"
// (see workload.ParseProfile).
//
// -json writes a machine-readable run report (schema
// hydra-run-report/v1), -trace a JSONL event trace, and
// -cpuprofile/-memprofile pprof profiles; all are documented in
// docs/METRICS.md. -listen serves the telemetry plane (/healthz and
// /debug/pprof during the run; /metrics carries the tracked run's
// metrics once it completes).
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 130
// interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cli"
	"repro/internal/cpu"
	"repro/internal/obsv"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() { cli.Main("hydrasim", run) }

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hydrasim", flag.ContinueOnError)
	name := fs.String("workload", "parest", "workload name (see Table 3), 'list', or an inline spec name:suite:mpki:rows:hot:actsper")
	tracker := fs.String("tracker", "hydra", "tracker: none|hydra|hydra-nogct|hydra-norcc|graphene|cra|ocpr|para|start|mint|dapper")
	scale := fs.Float64("scale", 16, "footprint scale (1 = full 64 ms window)")
	trh := fs.Int("trh", 500, "row-hammer threshold")
	craKB := fs.Int("cra-cache-kb", 64, "CRA metadata-cache size in KB")
	seed := fs.Uint64("seed", 1, "workload seed")
	baseline := fs.Bool("baseline", true, "also run the non-secure baseline and report slowdown")
	policy := fs.String("mitigation", "refresh", "mitigation policy: refresh|rowswap|throttle")
	cellParallel := fs.Bool("cell-parallel", false, "run memory channels on worker goroutines (no-op at GOMAXPROCS 1; results are identical)")
	traceDir := fs.String("tracedir", "", "replay recorded traces (core*.trc from tracegen) instead of generating")
	jsonOut := fs.String("json", "", "write a run-report JSON file (\"-\" = stdout)")
	traceOut := fs.String("trace", "", "write a JSONL event trace of the tracked run")
	traceCap := fs.Int("trace-cap", 1<<20, "event-trace ring capacity")
	listen := fs.String("listen", "", "serve live telemetry (/metrics, pprof) on this address")
	cpuProf := fs.String("cpuprofile", "", "write a pprof CPU profile")
	memProf := fs.String("memprofile", "", "write a pprof heap profile")
	if err := cli.ParseError(fs.Parse(args)); err != nil {
		return err
	}

	if *name == "list" {
		for _, p := range workload.Profiles() {
			fmt.Printf("%-12s %-10s MPKI=%-6.2f rows=%-7d hot=%-5d acts/row=%.1f\n",
				p.Name, p.Suite, p.MPKI, p.UniqueRows, p.Hot250, p.ActsPerRow)
		}
		return nil
	}

	p, err := workload.ByNameOrSpec(*name)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	stopProfiles, err := obsv.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()

	// The telemetry server starts before the (blocking) simulation so
	// /debug/pprof can profile it live; /metrics serves the tracked
	// run's snapshot once the run completes.
	live := obsv.NewRegistry()
	stopTelemetry, err := obsv.ListenFlag(*listen, obsv.ServerOptions{Gather: live.Snapshot})
	if err != nil {
		return err
	}
	defer stopTelemetry() //nolint:errcheck // best-effort shutdown on exit

	cfg := sim.Default(p)
	cfg.Ctx = ctx // SIGINT/SIGTERM aborts the run (exit 130)
	cfg.Scale = *scale
	cfg.TRH = *trh
	cfg.Seed = *seed
	cfg.Tracker = sim.TrackerKind(*tracker)
	cfg.CRACacheBytes = *craKB * 1024
	cfg.Mitigation = sim.MitigationPolicy(*policy)
	cfg.Parallel = *cellParallel
	if *traceOut != "" {
		cfg.Trace = obsv.NewTracer(*traceCap)
	}
	if *traceDir != "" {
		srcs, closers, err := loadTraces(*traceDir)
		defer func() {
			for _, c := range closers {
				c.Close()
			}
		}()
		if err != nil {
			return err
		}
		cfg.Traces = srcs
	}

	start := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	live.Merge(res.Metrics)

	fmt.Printf("workload   %s (%s)\n", res.Workload, p.Suite)
	fmt.Printf("tracker    %s (SRAM %d bytes)\n", res.Tracker, res.SRAMBytes)
	fmt.Printf("cycles     %d (%.2f ms of 3.2 GHz time), IPC %.3f\n",
		res.Cycles, float64(res.Cycles)/3.2e6, res.IPC())
	fmt.Printf("memory     reads=%d writes=%d activates=%d row-hits=%d refreshes=%d avg-read-lat=%.0f cyc\n",
		res.Mem.Reads, res.Mem.Writes, res.Mem.Activates, res.Mem.RowHits,
		res.Mem.Refreshes, res.Mem.AvgReadLatency())
	fmt.Printf("tracking   mitigations=%d victim-acts=%d meta-reads=%d meta-writes=%d\n",
		res.Mitigations, res.Mem.MitigActs, res.Mem.MetaReads, res.Mem.MetaWrites)
	if res.Swaps > 0 || res.Throttles > 0 {
		fmt.Printf("policy     swaps=%d throttles=%d\n", res.Swaps, res.Throttles)
	}
	if res.Hydra != nil && res.Hydra.Acts > 0 {
		a := float64(res.Hydra.Acts)
		fmt.Printf("hydra      GCT-only %.1f%%  RCC-hit %.1f%%  RCT-DRAM %.1f%%  group-inits=%d\n",
			float64(res.Hydra.GCTOnly)/a*100, float64(res.Hydra.RCCHit)/a*100,
			float64(res.Hydra.RCTAccess)/a*100, res.Hydra.GroupInits)
	}
	if res.CRA != nil {
		fmt.Printf("cra        cache-hits=%d miss-fetches=%d writebacks=%d\n",
			res.CRA.Hits, res.CRA.MissFetches, res.CRA.Writebacks)
	}

	norm := 0.0
	if *baseline && cfg.Tracker != sim.TrackNone {
		bcfg := cfg
		bcfg.Tracker = sim.TrackNone
		bcfg.Trace = nil // trace only the tracked run
		base, err := sim.Run(bcfg)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		norm = float64(base.Cycles) / float64(res.Cycles)
		fmt.Printf("baseline   %d cycles -> normalized perf %.4f (slowdown %.2f%%)\n",
			base.Cycles, norm, stats.SlowdownPct(norm))
	}
	fmt.Printf("[simulated in %v]\n", elapsed.Round(time.Millisecond))

	if *jsonOut != "" {
		rep := obsv.NewReport("hydrasim", res.Workload+"/"+res.Tracker)
		rep.ElapsedSec = elapsed.Seconds()
		rep.Params = map[string]any{
			"scale": *scale, "trh": *trh, "seed": *seed,
			"tracker": *tracker, "mitigation": *policy,
		}
		rep.Schemes = []string{res.Tracker}
		rep.Metrics = res.Metrics
		if norm > 0 {
			rep.Workloads = []obsv.WorkloadReport{{
				Name:        res.Workload,
				Suite:       string(p.Suite),
				NormPerf:    map[string]float64{res.Tracker: norm},
				SlowdownPct: map[string]float64{res.Tracker: stats.SlowdownPct(norm)},
			}}
		}
		if err := obsv.NewReportFile(rep).WriteFile(*jsonOut); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := cfg.Trace.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if d := cfg.Trace.Dropped(); d > 0 {
			fmt.Printf("[trace ring dropped %d oldest events; raise -trace-cap]\n", d)
		}
	}
	return stopProfiles()
}

// loadTraces opens every core*.trc in dir, in core order. The returned
// closers are valid even on error (close what was opened).
func loadTraces(dir string) ([]cpu.TraceSource, []*os.File, error) {
	files, err := filepath.Glob(filepath.Join(dir, "core*.trc"))
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no core*.trc files in %s", dir)
	}
	sort.Strings(files)
	var srcs []cpu.TraceSource
	var closers []*os.File
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, closers, err
		}
		closers = append(closers, f)
		r, err := trace.NewReader(f)
		if err != nil {
			return nil, closers, fmt.Errorf("%s: %w", path, err)
		}
		srcs = append(srcs, r)
	}
	return srcs, closers, nil
}
