// Command attacksim runs the row-hammer attack suite (Section 5)
// against a chosen tracker — or all of them — and reports, per
// pattern, whether the security oracle observed any row reaching the
// row-hammer threshold without a mitigation.
//
// Usage:
//
//	attacksim -tracker hydra -trh 500 -acts 2000000
//	attacksim -tracker all
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 130
// interrupted.
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/obsv"
	"repro/internal/rh"
	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/workload"
)

func main() { cli.Main("attacksim", run) }

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("attacksim", flag.ContinueOnError)
	trackerName := fs.String("tracker", "all", "hydra|graphene|ocpr|para|twice|cat|prohit|mrloc|start|mint|dapper|all")
	trh := fs.Int("trh", 500, "row-hammer threshold")
	acts := fs.Int("acts", 2_000_000, "demand activations per window")
	windows := fs.Int("windows", 2, "tracking windows (reset between)")
	full := fs.Bool("full", false, "run the attack through the full timing simulator (hydra only)")
	listen := fs.String("listen", "", "serve live telemetry (/healthz, pprof) on this address")
	cpuProf := fs.String("cpuprofile", "", "write a pprof CPU profile")
	memProf := fs.String("memprofile", "", "write a pprof heap profile")
	if err := cli.ParseError(fs.Parse(args)); err != nil {
		return err
	}

	stopProfiles, err := obsv.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()
	stopTelemetry, err := obsv.ListenFlag(*listen, obsv.ServerOptions{})
	if err != nil {
		return err
	}
	defer stopTelemetry() //nolint:errcheck // best-effort shutdown on exit

	if *full {
		if err := runFullSystem(ctx, *trh, *acts); err != nil {
			return err
		}
		return stopProfiles()
	}

	geom := track.BaselineGeometry()
	cfg := attack.Config{
		TRH:         *trh,
		RowsPerBank: geom.RowsPerBank,
		ActsPerWin:  *acts,
		Windows:     *windows,
	}

	target := rh.Row(100000)
	patterns := []func() attack.Pattern{
		func() attack.Pattern { return &attack.SingleSided{Target: target} },
		func() attack.Pattern { return &attack.DoubleSided{Victim: target} },
		func() attack.Pattern { return &attack.ManySided{Base: target, Sides: 19, Spacing: 3} },
		func() attack.Pattern { return &attack.HalfDouble{Victim: target} },
		func() attack.Pattern {
			return &attack.Thrash{
				Target:     target,
				Distractor: func(i int) rh.Row { return target - 60000 + rh.Row(i) },
				Spread:     50000,
				HammerEach: 4,
			}
		},
	}

	names := []string{"hydra", "graphene", "ocpr", "para", "twice", "cat", "prohit", "mrloc", "start", "mint", "dapper"}
	if *trackerName != "all" {
		names = []string{*trackerName}
	}
	broken := false
	for _, name := range names {
		for _, mk := range patterns {
			if err := ctx.Err(); err != nil {
				return err // interrupted between patterns
			}
			tr, err := makeTracker(name, geom, *trh)
			if err != nil {
				return cli.Usagef("%v", err)
			}
			res := attack.Run(tr, mk(), cfg)
			fmt.Println(res)
			if !res.Safe() {
				broken = true
			}
		}
	}
	if broken {
		fmt.Println("\nNOTE: violations above are expected for probabilistic or")
		fmt.Println("undersized trackers; Hydra must always report SAFE.")
	}
	return stopProfiles()
}

func makeTracker(name string, geom track.Geometry, trh int) (rh.Tracker, error) {
	switch name {
	case "hydra":
		cfg := core.ForThreshold(trh)
		cfg.Rows = geom.Rows
		return core.New(cfg, rh.NullSink{})
	case "graphene":
		return track.NewGraphene(geom, trh)
	case "ocpr":
		return track.NewOCPR(geom, trh)
	case "para":
		return track.NewPARA(trh, 1e-9, 7)
	case "twice":
		return track.NewTWiCE(geom, trh, 0)
	case "cat":
		return track.NewCAT(geom, trh, 0)
	case "prohit":
		return track.NewProHIT(geom, 1.0/16, 7)
	case "mrloc":
		return track.NewMRLoC(geom, 7)
	case "start":
		return track.NewSTART(geom, trh, 0)
	case "mint":
		return track.NewMINT(geom, trh, 0, 7)
	case "dapper":
		return track.NewDAPPER(geom, trh)
	default:
		return nil, fmt.Errorf("unknown tracker %q", name)
	}
}

// runFullSystem drives a double-sided attack through the timing
// simulator with background victim traffic and the oracle attached to
// the controller's real activation stream.
func runFullSystem(ctx context.Context, trh, acts int) error {
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 70000})
	oracle := attack.NewOracle(trh)

	p, err := workload.ByName("xz") // background victim workload
	if err != nil {
		return err
	}
	cfg := sim.Default(p)
	cfg.Ctx = ctx
	cfg.Scale = 16
	cfg.TRH = trh
	cfg.KeepStructSize = true
	cfg.Attack = &sim.AttackSpec{Rows: []uint32{victim - 1, victim + 1}, Acts: acts}
	cfg.Observer = oracle

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	verdict := "SAFE"
	if !oracle.Safe() {
		verdict = fmt.Sprintf("BROKEN (%d violations, first row %d at count %d)",
			len(oracle.Violations), oracle.Violations[0].Row, oracle.Violations[0].Count)
	}
	fmt.Printf("full-system double-sided vs hydra: acts=%d mitig=%d victim-refreshes=%d maxUnmitig=%d %s\n",
		res.Mem.Activates, res.Mitigations, res.Mem.MitigActs, oracle.MaxSeen, verdict)
	return nil
}
