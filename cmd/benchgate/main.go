// Command benchgate turns `go test -bench` output into a committed
// performance baseline and gates later runs against it.
//
// Write a baseline (optionally recording the measurements it replaced,
// so the artifact shows the speedup the change delivered):
//
//	go test -bench . -benchmem ./... | benchgate -write -out BENCH_4.json [-prev old-bench.txt]
//
// Gate a run against the baseline (non-zero exit on regression):
//
//	go test -bench . -benchmem ./... | benchgate -compare BENCH_4.json [-tolerance 0.40]
//
// A run regresses when it is slower than the baseline by more than the
// tolerance, or allocates more per op. Benchmarks absent from the
// baseline are reported as new and never fail the gate (the next
// `benchgate -write` absorbs them); benchmarks only in the baseline
// are skipped.
//
// Baselines record the machine they were measured on (GOOS/GOARCH,
// CPU count, GOMAXPROCS); -compare refuses a baseline from a different
// environment unless -allow-env-mismatch is set, because wall-clock
// comparisons across machines gate nothing and drift silently.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
)

func main() {
	var (
		write     = flag.Bool("write", false, "write a new baseline from stdin")
		out       = flag.String("out", "BENCH_5.json", "baseline file to write")
		prev      = flag.String("prev", "", "prior go-test bench output to record as 'previous' (write mode)")
		compare   = flag.String("compare", "", "baseline file to gate stdin against")
		tolerance = flag.Float64("tolerance", 0.40, "allowed fractional time regression (compare mode)")
		allowEnv  = flag.Bool("allow-env-mismatch", false, "compare across differing machines (environment deltas are reported, not fatal)")
	)
	flag.Parse()
	if err := run(*write, *out, *prev, *compare, *tolerance, *allowEnv); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(write bool, out, prev, compare string, tolerance float64, allowEnv bool) error {
	if write == (compare != "") {
		return fmt.Errorf("exactly one of -write or -compare is required")
	}
	current, err := stats.ParseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	if write {
		var prevResults map[string]stats.BenchResult
		if prev != "" {
			f, err := os.Open(prev)
			if err != nil {
				return err
			}
			prevResults, err = stats.ParseBench(f)
			f.Close()
			if err != nil {
				return err
			}
		}
		if err := stats.WriteBenchFile(out, current, prevResults); err != nil {
			return err
		}
		fmt.Printf("wrote %s with %d benchmarks\n", out, len(current))
		for name, s := range mustSpeedups(out) {
			fmt.Printf("  %-40s %6.2fx vs previous\n", name, s)
		}
		return nil
	}

	base, err := stats.LoadBenchFile(compare)
	if err != nil {
		return err
	}
	// Baselines written before the environment stamp existed (nil Env)
	// compare unchecked; everything newer gates on a comparable machine.
	if base.Env != nil {
		if why := stats.CurrentBenchEnv().Mismatch(*base.Env); why != "" {
			if !allowEnv {
				return fmt.Errorf("environment mismatch vs %s: %s "+
					"(benchmark times from different machines do not compare; "+
					"re-record the baseline here or pass -allow-env-mismatch)", compare, why)
			}
			fmt.Printf("warning: environment mismatch vs %s: %s\n", compare, why)
		}
	}
	deltas := stats.CompareBench(base.Benchmarks, current, tolerance)
	common := 0
	for _, d := range deltas {
		if !d.New {
			common++
		}
	}
	if common == 0 {
		return fmt.Errorf("no benchmarks in common with %s", compare)
	}
	failed := false
	for _, d := range deltas {
		if d.New {
			fmt.Printf("%-40s %24.1f ns/op  new (not in baseline)\n",
				d.Name, d.Current.NsPerOp)
			continue
		}
		status := "ok"
		if d.Regressed {
			status = "REGRESSED: " + d.Reason
			failed = true
		}
		fmt.Printf("%-40s %10.1f -> %10.1f ns/op (%.2fx)  %s\n",
			d.Name, d.Baseline.NsPerOp, d.Current.NsPerOp, d.Ratio, status)
	}
	if failed {
		return fmt.Errorf("benchmark regression beyond %.0f%% tolerance", tolerance*100)
	}
	return nil
}

// mustSpeedups reloads the just-written file's speedup table (empty
// when no previous results were recorded).
func mustSpeedups(path string) map[string]float64 {
	f, err := stats.LoadBenchFile(path)
	if err != nil {
		return nil
	}
	return f.Speedup
}
