// Command metriclint enforces the metric-catalog invariant, the
// companion of cmd/trackerlint: every metric name registered anywhere
// in the tree must be documented in docs/METRICS.md, and every dotted
// metric name in the catalog's tables must still be registered
// somewhere — stale doc entries fail too, because the catalog promises
// names are append-only and downstream dashboards key on them.
//
// Registration sites are found by scanning non-test Go sources for the
// literal call shapes the codebase uses:
//
//	reg.Count("memsim.reads", …)    reg.Gauge("sim.ipc", …)
//	reg.Histogram("memsim.readq_depth", …)    counter("cache.hits", …)
//
// A registration with a computed (non-literal) name cannot be checked
// and is invisible to this linter — keep names literal. Doc entries
// are the backticked dotted names in the first column of METRICS.md
// tables.
//
// Usage:
//
//	metriclint [-src DIR] [-doc FILE]
//
// Exit codes: 0 catalog in sync, 1 missing/stale entries or I/O
// failure, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/cli"
)

func main() { cli.Main("metriclint", run) }

var (
	// registerRe matches the literal metric-registration call shapes.
	registerRe = regexp.MustCompile(`(?:\.(?:Count|Gauge|Histogram)|\bcounter)\(\s*"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)"`)
	// docNameRe matches a dotted metric name in the first column of a
	// markdown table row.
	docNameRe = regexp.MustCompile("^\\|\\s*`([a-z][a-z0-9_]*(?:\\.[a-z0-9_]+)+)`\\s*\\|")
)

func run(_ context.Context, args []string) error {
	fs_ := flag.NewFlagSet("metriclint", flag.ContinueOnError)
	srcDir := fs_.String("src", ".", "source tree to scan for metric registrations")
	docPath := fs_.String("doc", "docs/METRICS.md", "metric catalog that must stay in sync")
	if err := cli.ParseError(fs_.Parse(args)); err != nil {
		return err
	}

	registered, err := scanRegistrations(*srcDir)
	if err != nil {
		return err
	}
	if len(registered) == 0 {
		return fmt.Errorf("no metric registrations found under %s (pattern drift?)", *srcDir)
	}
	documented, err := scanCatalog(*docPath)
	if err != nil {
		return err
	}
	if len(documented) == 0 {
		return fmt.Errorf("no metric names found in %s (pattern drift?)", *docPath)
	}

	var missing, stale []string
	for name, file := range registered {
		if _, ok := documented[name]; !ok {
			missing = append(missing, fmt.Sprintf("%s (registered in %s)", name, file))
		}
	}
	for name := range documented {
		if _, ok := registered[name]; !ok {
			stale = append(stale, name)
		}
	}
	if len(missing)+len(stale) > 0 {
		sort.Strings(missing)
		sort.Strings(stale)
		var b strings.Builder
		if len(missing) > 0 {
			fmt.Fprintf(&b, "%d metric(s) registered but not documented in %s:\n  %s\n",
				len(missing), *docPath, strings.Join(missing, "\n  "))
		}
		if len(stale) > 0 {
			fmt.Fprintf(&b, "%d documented metric(s) no longer registered anywhere:\n  %s\n",
				len(stale), strings.Join(stale, "\n  "))
		}
		b.WriteString("metric names are append-only: document new ones, and only retire a doc row with its code")
		return fmt.Errorf("%s", b.String())
	}
	fmt.Printf("%d metrics registered, all documented in %s\n", len(registered), *docPath)
	return nil
}

// scanRegistrations walks the tree for non-test Go files and collects
// literally registered metric names -> first declaring file.
func scanRegistrations(root string) (map[string]string, error) {
	found := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and vendored trees; everything else —
			// internal/, cmd/, the root package — is fair game.
			switch d.Name() {
			case ".git", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range registerRe.FindAllStringSubmatch(string(src), -1) {
			if _, ok := found[m[1]]; !ok {
				found[m[1]] = path
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}

// scanCatalog collects the dotted metric names documented in the
// catalog's table rows.
func scanCatalog(path string) (map[string]bool, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	found := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if m := docNameRe.FindStringSubmatch(line); m != nil {
			found[m[1]] = true
		}
	}
	return found, nil
}
