// Command tracegen records the synthetic workload traces to disk in
// the compact binary format of internal/trace (one file per core), so
// runs can be replayed byte-identically — or replaced with traces
// converted from other tools.
//
// Usage:
//
//	tracegen -workload parest -scale 16 -out /tmp/parest     # record
//	tracegen -verify /tmp/parest                              # check
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 130
// interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/dram"
	"repro/internal/obsv"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() { cli.Main("tracegen", run) }

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	name := fs.String("workload", "parest", "workload to record")
	scale := fs.Float64("scale", 16, "footprint scale")
	cores := fs.Int("cores", 8, "number of cores (one file per core)")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "", "output directory (created if missing)")
	verify := fs.String("verify", "", "verify a recorded trace directory and print stats")
	listen := fs.String("listen", "", "serve live telemetry (/healthz, pprof) on this address")
	cpuProf := fs.String("cpuprofile", "", "write a pprof CPU profile")
	memProf := fs.String("memprofile", "", "write a pprof heap profile")
	if err := cli.ParseError(fs.Parse(args)); err != nil {
		return err
	}

	stopProfiles, err := obsv.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()
	stopTelemetry, err := obsv.ListenFlag(*listen, obsv.ServerOptions{})
	if err != nil {
		return err
	}
	defer stopTelemetry() //nolint:errcheck // best-effort shutdown on exit

	if *verify != "" {
		if err := verifyDir(*verify); err != nil {
			return err
		}
		return stopProfiles()
	}
	if *out == "" {
		return cli.Usagef("-out directory required")
	}
	if err := record(ctx, *name, *scale, *cores, *seed, *out); err != nil {
		return err
	}
	return stopProfiles()
}

func record(ctx context.Context, name string, scale float64, cores int, seed uint64, out string) error {
	p, err := workload.ByName(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	mem := dram.Baseline()
	base := workload.DefaultStreamConfig(mem, mem.RowsPerBank-17)
	base.Scale = scale
	base.Cores = cores
	base.Seed = seed
	var total int64
	for core := 0; core < cores; core++ {
		if err := ctx.Err(); err != nil {
			return err // interrupted between cores; finished files are intact
		}
		cfg := base
		cfg.CoreID = core
		src, err := workload.NewStream(p, cfg)
		if err != nil {
			return err
		}
		path := filepath.Join(out, fmt.Sprintf("core%d.trc", core))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		n, err := trace.Record(w, src)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("recording %s: %w", path, err)
		}
		total += n
		fmt.Printf("wrote %s: %d records\n", path, n)
	}
	fmt.Printf("recorded %s at scale %g: %d records total\n", name, scale, total)
	return nil
}

func verifyDir(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "core*.trc"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no core*.trc files in %s", dir)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		var reads, writes int64
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if rec.Write {
				writes++
			} else {
				reads++
			}
		}
		f.Close()
		if err := r.Err(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: %d reads, %d writes\n", path, reads, writes)
	}
	return nil
}
