// Command trackerlint enforces the tracker-catalog invariant: every
// exported rh.Tracker implementation in internal/track must be
// documented in docs/TRACKERS.md. It scans the package sources for the
// compile-time interface guards (`var _ rh.Tracker = (*X)(nil)`) and
// fails, listing the missing schemes, when the catalog does not
// mention one of the types. Run by `make check`.
//
// Usage:
//
//	trackerlint [-track DIR] [-doc FILE]
//
// Exit codes: 0 every tracker documented, 1 missing entries or I/O
// failure, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/cli"
)

func main() { cli.Main("trackerlint", run) }

// guardRe matches the compile-time interface guard every tracker in
// internal/track declares.
var guardRe = regexp.MustCompile(`var _ rh\.Tracker = \(\*([A-Z]\w*)\)\(nil\)`)

func run(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("trackerlint", flag.ContinueOnError)
	trackDir := fs.String("track", "internal/track", "tracker package directory to scan")
	docPath := fs.String("doc", "docs/TRACKERS.md", "tracker catalog that must mention every scheme")
	if err := cli.ParseError(fs.Parse(args)); err != nil {
		return err
	}

	doc, err := os.ReadFile(*docPath)
	if err != nil {
		return err
	}
	files, err := filepath.Glob(filepath.Join(*trackDir, "*.go"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no Go files under %s", *trackDir)
	}

	byType := map[string]string{} // tracker type -> declaring file
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		for _, m := range guardRe.FindAllStringSubmatch(string(src), -1) {
			byType[m[1]] = f
		}
	}
	if len(byType) == 0 {
		return fmt.Errorf("no rh.Tracker guards found under %s (pattern drift?)", *trackDir)
	}

	var missing []string
	for name, file := range byType {
		if !strings.Contains(string(doc), name) {
			missing = append(missing, fmt.Sprintf("%s (declared in %s)", name, file))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("%d tracker(s) not mentioned in %s:\n  %s\n"+
			"every exported rh.Tracker implementation needs a catalog entry",
			len(missing), *docPath, strings.Join(missing, "\n  "))
	}
	fmt.Printf("%d trackers documented in %s\n", len(byType), *docPath)
	return nil
}
