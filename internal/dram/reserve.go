package dram

// ReservedRegion describes where tracker metadata (such as Hydra's
// Row-Count Table) lives in the addressable DRAM space. Following the
// paper (Section 4.4), the region is a small reserved slice of memory:
// 4 MB (512 rows) for the 32 GB baseline. We place the reserved rows in
// the top rows of the banks, striped round-robin across all banks so
// that metadata traffic enjoys bank-level parallelism.
type ReservedRegion struct {
	cfg      Config
	metaRows int
}

// NewReservedRegion lays out metaRows rows of metadata at the top of
// the row space. It panics if the region would not fit, since that is a
// configuration error.
func NewReservedRegion(cfg Config, metaRows int) *ReservedRegion {
	perBank := (metaRows + cfg.TotalBanks() - 1) / cfg.TotalBanks()
	if perBank >= cfg.RowsPerBank {
		panic("dram: reserved metadata region larger than a bank")
	}
	return &ReservedRegion{cfg: cfg, metaRows: metaRows}
}

// MetaRows returns the number of reserved rows.
func (r *ReservedRegion) MetaRows() int { return r.metaRows }

// RowsPerBankReserved returns how many rows each bank loses to the
// region (rounded up; the last stripe may be partial).
func (r *ReservedRegion) RowsPerBankReserved() int {
	return (r.metaRows + r.cfg.TotalBanks() - 1) / r.cfg.TotalBanks()
}

// GlobalRow returns the global row id of the i-th metadata row.
// Metadata row i lives in bank i mod totalBanks, at row
// rowsPerBank-1-(i div totalBanks) of that bank.
func (r *ReservedRegion) GlobalRow(i int) uint32 {
	if i < 0 || i >= r.metaRows {
		panic("dram: metadata row index out of range")
	}
	banks := r.cfg.TotalBanks()
	bank := i % banks
	row := r.cfg.RowsPerBank - 1 - i/banks
	return uint32(bank*r.cfg.RowsPerBank + row)
}

// MetaIndex reports whether the global row is a metadata row and, if
// so, its index within the region.
func (r *ReservedRegion) MetaIndex(row uint32) (int, bool) {
	inBank := int(row) % r.cfg.RowsPerBank
	bank := int(row) / r.cfg.RowsPerBank
	depth := r.cfg.RowsPerBank - 1 - inBank
	if depth < 0 {
		return 0, false
	}
	i := depth*r.cfg.TotalBanks() + bank
	if i >= r.metaRows {
		return 0, false
	}
	return i, true
}

// LineAddr maps a byte offset within the metadata region to the line
// address holding it. Offsets within one row map to consecutive lines
// of the same metadata row.
func (r *ReservedRegion) LineAddr(offset uint64) uint64 {
	lineInRegion := offset / LineBytes
	linesPerRow := uint64(r.cfg.LinesPerRow())
	metaRow := int(lineInRegion / linesPerRow)
	col := int(lineInRegion % linesPerRow)
	loc := r.cfg.RowLoc(r.GlobalRow(metaRow))
	loc.Col = col
	return r.cfg.Encode(loc)
}

// MaxDemandRow returns the largest in-bank row index a demand access
// may use without touching the reserved region. Workload generators use
// this bound.
func (r *ReservedRegion) MaxDemandRow() int {
	return r.cfg.RowsPerBank - r.RowsPerBankReserved() - 1
}
