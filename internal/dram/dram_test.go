package dram

import (
	"testing"
	"testing/quick"
)

func TestBaselineGeometry(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalBanks(); got != 32 {
		t.Fatalf("TotalBanks = %d, want 32", got)
	}
	if got := c.TotalRows(); got != 4*1024*1024 {
		t.Fatalf("TotalRows = %d, want 4M", got)
	}
	if got := c.TotalBytes(); got != 32<<30 {
		t.Fatalf("TotalBytes = %d, want 32 GB", got)
	}
	if got := c.LinesPerRow(); got != 128 {
		t.Fatalf("LinesPerRow = %d, want 128", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Channels: 0, RanksPerChannel: 1, BanksPerRank: 1, RowsPerBank: 1, RowBytes: 64},
		{Channels: 1, RanksPerChannel: 0, BanksPerRank: 1, RowsPerBank: 1, RowBytes: 64},
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 0, RowsPerBank: 1, RowBytes: 64},
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 1, RowsPerBank: 0, RowBytes: 64},
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 1, RowsPerBank: 1, RowBytes: 63},
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 1, RowsPerBank: 1, RowBytes: 96},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := Baseline()
	f := func(raw uint64) bool {
		line := raw % (uint64(c.TotalBytes()) / LineBytes)
		return c.Encode(c.Decode(line)) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	c := Baseline()
	f := func(raw uint64) bool {
		line := raw % (uint64(c.TotalBytes()) / LineBytes)
		l := c.Decode(line)
		return l.Channel >= 0 && l.Channel < c.Channels &&
			l.Rank >= 0 && l.Rank < c.RanksPerChannel &&
			l.Bank >= 0 && l.Bank < c.BanksPerRank &&
			l.Row >= 0 && l.Row < c.RowsPerBank &&
			l.Col >= 0 && l.Col < c.LinesPerRow()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalRowRoundTrip(t *testing.T) {
	c := Baseline()
	f := func(raw uint32) bool {
		row := raw % uint32(c.TotalRows())
		loc := c.RowLoc(row)
		return c.GlobalRow(loc) == row
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveColumnsSameRow(t *testing.T) {
	c := Baseline()
	// Two lines that differ only in column must decode to the same
	// channel/rank/bank/row: streaming within a row is a buffer hit.
	base := c.Encode(Loc{Channel: 1, Rank: 0, Bank: 3, Row: 77, Col: 0})
	l0 := c.Decode(base)
	for col := 1; col < c.LinesPerRow(); col++ {
		l := c.Decode(c.Encode(Loc{Channel: 1, Rank: 0, Bank: 3, Row: 77, Col: col}))
		if l.Row != l0.Row || l.Bank != l0.Bank || l.Channel != l0.Channel {
			t.Fatalf("col %d moved to %+v", col, l)
		}
	}
}

func TestVictimsInterior(t *testing.T) {
	c := Baseline()
	agg := c.GlobalRow(Loc{Channel: 0, Bank: 2, Row: 1000})
	v := c.Victims(agg, 2)
	if len(v) != 4 {
		t.Fatalf("victims = %v, want 4 rows", v)
	}
	want := map[uint32]bool{agg - 2: true, agg - 1: true, agg + 1: true, agg + 2: true}
	for _, row := range v {
		if !want[row] {
			t.Fatalf("unexpected victim %d (aggressor %d)", row, agg)
		}
	}
}

func TestVictimsClippedAtBankEdges(t *testing.T) {
	c := Baseline()
	first := c.GlobalRow(Loc{Channel: 0, Bank: 0, Row: 0})
	if v := c.Victims(first, 2); len(v) != 2 {
		t.Fatalf("victims at row 0 = %v, want 2 rows", v)
	}
	last := c.GlobalRow(Loc{Channel: 0, Bank: 0, Row: c.RowsPerBank - 1})
	if v := c.Victims(last, 2); len(v) != 2 {
		t.Fatalf("victims at last row = %v, want 2 rows", v)
	}
	second := c.GlobalRow(Loc{Channel: 0, Bank: 0, Row: 1})
	if v := c.Victims(second, 2); len(v) != 3 {
		t.Fatalf("victims at row 1 = %v, want 3 rows", v)
	}
}

func TestVictimsStayInBank(t *testing.T) {
	c := Baseline()
	f := func(raw uint32, blastRaw uint8) bool {
		row := raw % uint32(c.TotalRows())
		blast := int(blastRaw%4) + 1
		bank := int(row) / c.RowsPerBank
		for _, v := range c.Victims(row, blast) {
			if int(v)/c.RowsPerBank != bank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservedRegionLayout(t *testing.T) {
	c := Baseline()
	r := NewReservedRegion(c, 512)
	if r.MetaRows() != 512 {
		t.Fatalf("MetaRows = %d", r.MetaRows())
	}
	// 512 rows over 32 banks = 16 rows per bank.
	if got := r.RowsPerBankReserved(); got != 16 {
		t.Fatalf("RowsPerBankReserved = %d, want 16", got)
	}
	if got := r.MaxDemandRow(); got != c.RowsPerBank-17 {
		t.Fatalf("MaxDemandRow = %d, want %d", got, c.RowsPerBank-17)
	}
}

func TestReservedRegionRoundTrip(t *testing.T) {
	c := Baseline()
	r := NewReservedRegion(c, 512)
	seen := make(map[uint32]bool)
	for i := 0; i < 512; i++ {
		row := r.GlobalRow(i)
		if seen[row] {
			t.Fatalf("metadata row %d reused global row %d", i, row)
		}
		seen[row] = true
		j, ok := r.MetaIndex(row)
		if !ok || j != i {
			t.Fatalf("MetaIndex(%d) = %d,%v; want %d,true", row, j, ok, i)
		}
	}
}

func TestReservedRegionExcludesDemandRows(t *testing.T) {
	c := Baseline()
	r := NewReservedRegion(c, 512)
	for bank := 0; bank < c.TotalBanks(); bank++ {
		row := uint32(bank*c.RowsPerBank + r.MaxDemandRow())
		if _, ok := r.MetaIndex(row); ok {
			t.Fatalf("demand row %d classified as metadata", row)
		}
	}
}

func TestReservedRegionLineAddr(t *testing.T) {
	c := Baseline()
	r := NewReservedRegion(c, 512)
	// Offsets within the same metadata row map to the same DRAM row,
	// different columns.
	a := c.Decode(r.LineAddr(0))
	b := c.Decode(r.LineAddr(64))
	if a.Row != b.Row || a.Bank != b.Bank || a.Channel != b.Channel {
		t.Fatalf("same metadata row split across DRAM rows: %+v vs %+v", a, b)
	}
	if a.Col == b.Col {
		t.Fatal("distinct offsets share a column")
	}
	// Offsets a full row apart map to different metadata rows.
	far := c.Decode(r.LineAddr(uint64(c.RowBytes)))
	if far.Row == a.Row && far.Bank == a.Bank && far.Channel == a.Channel {
		t.Fatal("offsets a row apart still share a DRAM row")
	}
}

func TestReservedRegionTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized region should panic")
		}
	}()
	c := Baseline()
	NewReservedRegion(c, c.TotalRows())
}
