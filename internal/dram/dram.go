// Package dram models DRAM geometry and physical address mapping for
// the baseline system of the paper (Table 2): 32 GB of DDR4 organized
// as 2 channels x 1 rank x 16 banks with 8 KB rows.
//
// The package owns three responsibilities:
//
//   - Geometry: counts of channels/ranks/banks/rows and derived values
//     such as the total number of rows (4 M for the baseline).
//   - Address mapping: decoding a physical line address into a
//     (channel, rank, bank, row, column) location and composing global
//     row identifiers. The mapping places the channel bits lowest (for
//     channel-level parallelism), then the column bits (so streaming
//     accesses within a row stay row-buffer hits), then bank, then row.
//   - Reserved metadata region: the layout of tracker metadata (e.g.
//     Hydra's Row-Count Table) in the top rows of each bank.
package dram

import "fmt"

// LineBytes is the size of one memory line (one 64-byte transfer).
const LineBytes = 64

// Config describes the memory geometry.
type Config struct {
	Channels        int // independent channels, each with its own bus
	RanksPerChannel int
	BanksPerRank    int
	RowsPerBank     int
	RowBytes        int // bytes per row (row-buffer size)
}

// Baseline returns the paper's Table 2 configuration: 32 GB DDR4,
// 2 channels x 1 rank x 16 banks, 8 KB rows (131072 rows per bank).
func Baseline() Config {
	return Config{
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    16,
		RowsPerBank:     131072,
		RowBytes:        8192,
	}
}

// DDR5 returns a DDR5-style organization of the same 32 GB capacity:
// twice the banks per rank (the change that doubles per-bank trackers'
// storage in Table 5) with correspondingly fewer rows per bank.
func DDR5() Config {
	return Config{
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    32,
		RowsPerBank:     65536,
		RowBytes:        8192,
	}
}

// Validate reports an error if any field is non-positive or the row is
// not a whole number of lines.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: Channels must be positive, got %d", c.Channels)
	case c.RanksPerChannel <= 0:
		return fmt.Errorf("dram: RanksPerChannel must be positive, got %d", c.RanksPerChannel)
	case c.BanksPerRank <= 0:
		return fmt.Errorf("dram: BanksPerRank must be positive, got %d", c.BanksPerRank)
	case c.RowsPerBank <= 0:
		return fmt.Errorf("dram: RowsPerBank must be positive, got %d", c.RowsPerBank)
	case c.RowBytes < LineBytes || c.RowBytes%LineBytes != 0:
		return fmt.Errorf("dram: RowBytes must be a positive multiple of %d, got %d", LineBytes, c.RowBytes)
	}
	return nil
}

// TotalBanks returns the number of banks across the whole system.
func (c Config) TotalBanks() int {
	return c.Channels * c.RanksPerChannel * c.BanksPerRank
}

// TotalRows returns the number of rows across the whole system.
func (c Config) TotalRows() int {
	return c.TotalBanks() * c.RowsPerBank
}

// TotalBytes returns the memory capacity in bytes.
func (c Config) TotalBytes() int64 {
	return int64(c.TotalRows()) * int64(c.RowBytes)
}

// LinesPerRow returns the number of 64-byte lines per row (columns).
func (c Config) LinesPerRow() int {
	return c.RowBytes / LineBytes
}

// Loc identifies one line's position in the memory system.
type Loc struct {
	Channel int
	Rank    int
	Bank    int
	Row     int // row index within the bank
	Col     int // line index within the row
}

// Decode maps a line address (byte address >> 6) to its location.
// Bit layout, low to high: channel | column | bank | rank | row.
func (c Config) Decode(line uint64) Loc {
	var l Loc
	l.Channel = int(line % uint64(c.Channels))
	line /= uint64(c.Channels)
	l.Col = int(line % uint64(c.LinesPerRow()))
	line /= uint64(c.LinesPerRow())
	l.Bank = int(line % uint64(c.BanksPerRank))
	line /= uint64(c.BanksPerRank)
	l.Rank = int(line % uint64(c.RanksPerChannel))
	line /= uint64(c.RanksPerChannel)
	l.Row = int(line % uint64(c.RowsPerBank))
	return l
}

// Encode is the inverse of Decode.
func (c Config) Encode(l Loc) uint64 {
	line := uint64(l.Row)
	line = line*uint64(c.RanksPerChannel) + uint64(l.Rank)
	line = line*uint64(c.BanksPerRank) + uint64(l.Bank)
	line = line*uint64(c.LinesPerRow()) + uint64(l.Col)
	line = line*uint64(c.Channels) + uint64(l.Channel)
	return line
}

// GlobalRow composes a system-wide row identifier from a location.
// Rows of the same bank are contiguous, so row +/- 1 within a bank is
// global row +/- 1, which makes blast-radius arithmetic trivial.
func (c Config) GlobalRow(l Loc) uint32 {
	bank := (l.Channel*c.RanksPerChannel+l.Rank)*c.BanksPerRank + l.Bank
	return uint32(bank*c.RowsPerBank + l.Row)
}

// RowLoc returns the (channel, rank, bank, row) of a global row id.
// Col is always 0.
func (c Config) RowLoc(row uint32) Loc {
	r := int(row)
	bankGlobal := r / c.RowsPerBank
	inBank := r % c.RowsPerBank
	ch := bankGlobal / (c.RanksPerChannel * c.BanksPerRank)
	rest := bankGlobal % (c.RanksPerChannel * c.BanksPerRank)
	return Loc{
		Channel: ch,
		Rank:    rest / c.BanksPerRank,
		Bank:    rest % c.BanksPerRank,
		Row:     inBank,
	}
}

// Victims returns the global row ids of the rows within blast-radius
// distance of the aggressor, clipped at bank boundaries. With blast=2
// (the paper's default) it returns up to four rows: two on each side.
func (c Config) Victims(aggressor uint32, blast int) []uint32 {
	inBank := int(aggressor) % c.RowsPerBank
	victims := make([]uint32, 0, 2*blast)
	for d := 1; d <= blast; d++ {
		if inBank-d >= 0 {
			victims = append(victims, aggressor-uint32(d))
		}
		if inBank+d < c.RowsPerBank {
			victims = append(victims, aggressor+uint32(d))
		}
	}
	return victims
}
