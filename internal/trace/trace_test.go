package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	reqs := []workload.Request{
		{Gap: 0, Line: 100},
		{Gap: 12, Write: true, Line: 90},
		{Gap: 1 << 20, Line: 1 << 40},
		{Gap: 3, Line: 0},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(reqs)) {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range reqs {
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("record %d = %+v,%v; want %+v", i, got, ok, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record")
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF reported error %v", r.Err())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(gaps []uint16, lines []uint32, writes []bool) bool {
		n := min(len(gaps), len(lines), len(writes))
		reqs := make([]workload.Request, n)
		for i := 0; i < n; i++ {
			reqs[i] = workload.Request{Gap: int(gaps[i]), Line: uint64(lines[i]), Write: writes[i]}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, r := range reqs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range reqs {
			got, ok := r.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE..."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTruncatedRecordReported(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(workload.Request{Gap: 5, Line: 42})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestRecordWorkloadStream(t *testing.T) {
	p, err := workload.ByName("xz")
	if err != nil {
		t.Fatal(err)
	}
	mem := dram.Baseline()
	cfg := workload.DefaultStreamConfig(mem, mem.RowsPerBank-17)
	cfg.Scale = 64
	cfg.ActBudget = 2000
	src := workload.MustNewStream(p, cfg)

	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n, err := Record(w, src)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recorded nothing")
	}
	// The replayed trace must match a freshly generated stream.
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := workload.MustNewStream(p, cfg)
	for i := int64(0); i < n; i++ {
		got, ok1 := r.Next()
		want, ok2 := fresh.Next()
		if !ok1 || !ok2 || got != want {
			t.Fatalf("record %d: %+v vs %+v", i, got, want)
		}
	}
	// Compression sanity: deltas should beat 17 bytes/record raw.
	if perRec := float64(buf.Len()) / float64(n); perRec > 12 {
		t.Errorf("%.1f bytes/record; delta encoding ineffective", perRec)
	}
}

// failWriter fails after n bytes.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

var errFail = bytes.ErrTooLarge // any sentinel

func TestWriterErrorsPropagate(t *testing.T) {
	if _, err := NewWriter(&failWriter{left: 2}); err == nil {
		// Header is buffered; the error may surface at Flush instead.
		w, _ := NewWriter(&failWriter{left: 2})
		for i := 0; i < 10000; i++ {
			if err := w.Write(workload.Request{Gap: i, Line: uint64(i * 977)}); err != nil {
				return // error surfaced through the buffer: good
			}
		}
		if err := w.Flush(); err == nil {
			t.Fatal("failing writer never reported an error")
		}
	}
}

func TestReaderCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		w.Write(workload.Request{Gap: i, Line: uint64(i)})
	}
	w.Flush()
	r, _ := NewReader(&buf)
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d, want 5", r.Count())
	}
}
