package trace

import (
	"bytes"
	"testing"
)

// FuzzReaderNeverPanics feeds arbitrary bytes to the reader: corrupt
// traces must fail with an error, never a panic or a hang.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte("HYDRATRC\x01"))
	f.Add([]byte("HYDRATRC\x01\x05\x00\x02"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		for i := 0; i < 1_000_000; i++ {
			if _, ok := r.Next(); !ok {
				return
			}
		}
		t.Fatal("reader produced a million records from fuzz input; runaway")
	})
}
