// Package trace provides a compact binary on-disk format for memory
// traces, so users can capture the synthetic workloads (or bring their
// own, e.g. converted pintool traces) and replay them through the
// simulator deterministically.
//
// Format: an 8-byte magic "HYDRATRC", a format-version byte, then one
// record per request:
//
//	uvarint gap        non-memory instructions before the access
//	byte    flags      bit0 = write
//	varint  lineDelta  line address as a zig-zag delta from the
//	                   previous record's line (traces have locality, so
//	                   deltas compress well)
//
// The format is streaming: Writer and Reader never hold the whole
// trace in memory.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/workload"
)

var magic = [9]byte{'H', 'Y', 'D', 'R', 'A', 'T', 'R', 'C', 1}

// ErrBadMagic reports a stream that is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a hydra trace file)")

// Writer streams requests to a trace file.
type Writer struct {
	w        *bufio.Writer
	prevLine uint64
	buf      [2*binary.MaxVarintLen64 + 1]byte
	n        int64
}

// NewWriter writes the header and returns a Writer. Call Flush when
// done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one request.
func (w *Writer) Write(r workload.Request) error {
	n := binary.PutUvarint(w.buf[:], uint64(r.Gap))
	flags := byte(0)
	if r.Write {
		flags = 1
	}
	w.buf[n] = flags
	n++
	n += binary.PutVarint(w.buf[n:], int64(r.Line)-int64(w.prevLine))
	w.prevLine = r.Line
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams requests from a trace file. It implements
// cpu.TraceSource: Next returns false at EOF or on a corrupt record,
// in which case Err reports the cause.
type Reader struct {
	r        *bufio.Reader
	prevLine uint64
	err      error
	n        int64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [9]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next request; ok is false at end of trace.
func (t *Reader) Next() (workload.Request, bool) {
	if t.err != nil {
		return workload.Request{}, false
	}
	gap, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err != io.EOF {
			t.err = fmt.Errorf("trace: record %d gap: %w", t.n, err)
		}
		return workload.Request{}, false
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		t.err = fmt.Errorf("trace: record %d flags: %w", t.n, err)
		return workload.Request{}, false
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: record %d line: %w", t.n, err)
		return workload.Request{}, false
	}
	line := uint64(int64(t.prevLine) + delta)
	t.prevLine = line
	t.n++
	return workload.Request{Gap: int(gap), Write: flags&1 != 0, Line: line}, true
}

// Err reports a mid-stream decoding error (nil for a clean EOF).
func (t *Reader) Err() error { return t.err }

// Count returns the number of records read so far.
func (t *Reader) Count() int64 { return t.n }

// Record drains a stream into the writer and returns the record count.
func Record(w *Writer, src interface {
	Next() (workload.Request, bool)
}) (int64, error) {
	var n int64
	for {
		r, ok := src.Next()
		if !ok {
			return n, w.Flush()
		}
		if err := w.Write(r); err != nil {
			return n, err
		}
		n++
	}
}
