package workload

import (
	"testing"

	"repro/internal/dram"
)

func testStreamConfig() StreamConfig {
	mem := dram.Baseline()
	cfg := DefaultStreamConfig(mem, mem.RowsPerBank-17)
	cfg.Scale = 16 // keep tests fast; per-row intensity is preserved
	return cfg
}

func TestProfilesMatchTable3Shape(t *testing.T) {
	ps := Profiles()
	if len(ps) != 36 {
		t.Fatalf("profiles = %d, want 36", len(ps))
	}
	counts := map[Suite]int{}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Fatalf("duplicate workload %q", p.Name)
		}
		names[p.Name] = true
		counts[p.Suite]++
		if p.MPKI <= 0 || p.UniqueRows <= 0 || p.ActsPerRow <= 0 {
			t.Errorf("%s: non-positive stats %+v", p.Name, p)
		}
	}
	if counts[SPEC] != 22 || counts[PARSEC] != 7 || counts[GAP] != 6 || counts[MICRO] != 1 {
		t.Fatalf("suite counts = %v, want SPEC 22 / PARSEC 7 / GAP 6 / MICRO 1", counts)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("parest")
	if err != nil || p.Hot250 != 5882 {
		t.Fatalf("ByName(parest) = %+v, %v", p, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestScaledPreservesIntensity(t *testing.T) {
	p, _ := ByName("parest")
	s := p.Scaled(8)
	if s.UniqueRows != p.UniqueRows/8 && s.UniqueRows != p.UniqueRows/8+1 {
		t.Fatalf("scaled unique = %d", s.UniqueRows)
	}
	if s.ActsPerRow != p.ActsPerRow {
		t.Fatal("scaling changed per-row intensity")
	}
	if got := p.Scaled(0.5); got != p {
		t.Fatal("scale <= 1 must be identity")
	}
}

func TestCharacterizationMatchesProfile(t *testing.T) {
	// The generator must reproduce Table 3's aggregates (on the scaled
	// footprint): unique rows, hot-row count, activations per row and
	// MPKI, each within modest tolerance.
	for _, name := range []string{"parest", "bwaves", "deepsjeng", "GUPS", "xz"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testStreamConfig()
		c, err := Characterize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp := p.Scaled(cfg.Scale)
		wantUnique := sp.UniqueRows / cfg.Cores * cfg.Cores
		if !within(float64(c.UniqueRows), float64(wantUnique), 0.05) {
			t.Errorf("%s: unique rows = %d, want ~%d", name, c.UniqueRows, wantUnique)
		}
		if sp.Hot250 > 0 {
			wantHot := sp.Hot250 / cfg.Cores * cfg.Cores
			if !within(float64(c.Hot250), float64(wantHot), 0.25) {
				t.Errorf("%s: hot rows = %d, want ~%d", name, c.Hot250, wantHot)
			}
		} else if name != "GUPS" && c.Hot250 > sp.UniqueRows/100 {
			t.Errorf("%s: %d unexpected hot rows", name, c.Hot250)
		}
		if !within(c.ActsPerRow, p.ActsPerRow, 0.30) {
			t.Errorf("%s: acts/row = %.1f, want ~%.1f", name, c.ActsPerRow, p.ActsPerRow)
		}
		if !within(c.MPKI, p.MPKI, 0.35) {
			t.Errorf("%s: MPKI = %.2f, want ~%.2f", name, c.MPKI, p.MPKI)
		}
	}
}

func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	d := got/want - 1
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestStreamDeterminism(t *testing.T) {
	p, _ := ByName("xz")
	cfg := testStreamConfig()
	a := MustNewStream(p, cfg)
	b := MustNewStream(p, cfg)
	for i := 0; i < 10000; i++ {
		ra, oka := a.Next()
		rb, okb := b.Next()
		if ra != rb || oka != okb {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ra, rb)
		}
		if !oka {
			break
		}
	}
}

func TestStreamsPartitionedPerCore(t *testing.T) {
	p, _ := ByName("bwaves")
	cfg := testStreamConfig()
	mem := cfg.Mem
	rowsOf := func(core int) map[int]bool {
		c := cfg
		c.CoreID = core
		s := MustNewStream(p, c)
		rows := map[int]bool{}
		for i := 0; i < 5000; i++ {
			r, ok := s.Next()
			if !ok {
				break
			}
			rows[mem.Decode(r.Line).Row] = true
		}
		return rows
	}
	r0, r1 := rowsOf(0), rowsOf(1)
	for row := range r0 {
		if r1[row] {
			t.Fatalf("cores 0 and 1 share in-bank row %d", row)
		}
	}
}

func TestStreamRespectsDemandBound(t *testing.T) {
	p, _ := ByName("deepsjeng")
	cfg := testStreamConfig()
	s := MustNewStream(p, cfg)
	for i := 0; i < 20000; i++ {
		r, ok := s.Next()
		if !ok {
			break
		}
		if loc := cfg.Mem.Decode(r.Line); loc.Row > cfg.MaxDemandRow {
			t.Fatalf("request to reserved row %d", loc.Row)
		}
	}
}

func TestGUPSSingleLineBursts(t *testing.T) {
	p, _ := ByName("GUPS")
	cfg := testStreamConfig()
	cfg.WriteFrac = 0
	s := MustNewStream(p, cfg)
	prev := uint64(1 << 62)
	sameRow := 0
	n := 5000
	for i := 0; i < n; i++ {
		r, ok := s.Next()
		if !ok {
			break
		}
		lr := cfg.Mem.GlobalRow(cfg.Mem.Decode(r.Line))
		pr := cfg.Mem.GlobalRow(cfg.Mem.Decode(prev))
		if i > 0 && lr == pr {
			sameRow++
		}
		prev = r.Line
	}
	// Random single-line accesses over ~500 rows/core: consecutive
	// same-row pairs should be rare.
	if sameRow > n/50 {
		t.Fatalf("GUPS shows %d/%d consecutive same-row accesses", sameRow, n)
	}
}

func TestWriteFraction(t *testing.T) {
	p, _ := ByName("lbm")
	cfg := testStreamConfig()
	cfg.WriteFrac = 0.25
	s := MustNewStream(p, cfg)
	var reads, writes int
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	frac := float64(writes) / float64(reads+writes)
	if frac < 0.08 || frac > 0.20 { // 0.25 per activation over burst-2 reads
		t.Fatalf("write fraction = %.3f, want ~0.11", frac)
	}
}

func TestNewStreamValidation(t *testing.T) {
	p, _ := ByName("lbm")
	cfg := testStreamConfig()
	cfg.CoreID = cfg.Cores
	if _, err := NewStream(p, cfg); err == nil {
		t.Error("bad core accepted")
	}
	cfg = testStreamConfig()
	cfg.MaxDemandRow = 0
	if _, err := NewStream(p, cfg); err == nil {
		t.Error("bad MaxDemandRow accepted")
	}
}

func TestActBudgetOverride(t *testing.T) {
	p, _ := ByName("lbm")
	cfg := testStreamConfig()
	cfg.ActBudget = 100
	cfg.WriteFrac = 0
	cfg.Burst = 1
	s := MustNewStream(p, cfg)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("requests = %d, want 100 (budget with burst 1)", n)
	}
}

// TestBudgetConservation checks a stream emits exactly its activation
// budget worth of bursts: reads = budget * burst (writebacks extra).
func TestBudgetConservation(t *testing.T) {
	p, _ := ByName("mcf")
	cfg := testStreamConfig()
	cfg.ActBudget = 500
	cfg.WriteFrac = 0
	s := MustNewStream(p, cfg)
	reads := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if r.Write {
			t.Fatal("write with WriteFrac=0")
		}
		reads++
	}
	if reads != 500*cfg.Burst {
		t.Fatalf("reads = %d, want %d", reads, 500*cfg.Burst)
	}
}

// TestHotRowsExceed250 verifies every hot row the generator emits
// really crosses the 250-activation bar that defines Table 3's column.
func TestHotRowsExceed250(t *testing.T) {
	p, _ := ByName("cactuBSSN") // 4609 hot rows
	cfg := testStreamConfig()
	c, err := Characterize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := p.Scaled(cfg.Scale)
	want := sp.Hot250 / cfg.Cores * cfg.Cores
	if c.Hot250 < want*3/4 {
		t.Fatalf("hot rows = %d, want >= %d", c.Hot250, want*3/4)
	}
}

// TestColdRowsStayUnder250 verifies no-hot-set workloads generate no
// accidental hot rows.
func TestColdRowsStayUnder250(t *testing.T) {
	for _, name := range []string{"lbm", "mcf", "fotonik3d"} {
		p, _ := ByName(name)
		cfg := testStreamConfig()
		c, err := Characterize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c.Hot250 > 0 {
			t.Errorf("%s: generated %d hot rows, profile has none", name, c.Hot250)
		}
	}
}

// TestMultiPassReuse verifies high-ACTs/row workloads revisit rows in
// multiple passes (far reuse), the property Figure 8's NoGCT relies on.
func TestMultiPassReuse(t *testing.T) {
	p, _ := ByName("lbm") // 82 ACTs/row -> 8 passes
	cfg := testStreamConfig()
	cfg.WriteFrac = 0
	cfg.Burst = 1
	s := MustNewStream(p, cfg)
	firstSeen := map[uint64]int{}
	lastSeen := map[uint64]int{}
	i := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		row := uint64(cfg.Mem.GlobalRow(cfg.Mem.Decode(r.Line)))
		if _, ok := firstSeen[row]; !ok {
			firstSeen[row] = i
		}
		lastSeen[row] = i
		i++
	}
	// A row's activations must span a large fraction of the stream
	// (multiple passes), not one contiguous burst.
	spanning := 0
	for row, first := range firstSeen {
		if lastSeen[row]-first > i/2 {
			spanning++
		}
	}
	if spanning < len(firstSeen)/2 {
		t.Fatalf("only %d/%d rows span multiple passes", spanning, len(firstSeen))
	}
}

// TestGapMatchesMPKI pins the instruction-gap computation.
func TestGapMatchesMPKI(t *testing.T) {
	p, _ := ByName("bc_t") // MPKI 84.6 -> gap 12
	cfg := testStreamConfig()
	s := MustNewStream(p, cfg)
	r, ok := s.Next()
	if !ok || r.Gap != 12 {
		t.Fatalf("gap = %d, want 12", r.Gap)
	}
}
