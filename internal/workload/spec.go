package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec renders the profile as the inline colon-separated form accepted
// by ParseProfile: "name:suite:mpki:rows:hot:actsper".
func (p Profile) Spec() string {
	return fmt.Sprintf("%s:%s:%g:%d:%d:%g",
		p.Name, p.Suite, p.MPKI, p.UniqueRows, p.Hot250, p.ActsPerRow)
}

// Validate checks the aggregate ranges a stream generator can satisfy.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case strings.ContainsAny(p.Name, ":/ \t\n"):
		return fmt.Errorf("workload: profile name %q contains separator characters", p.Name)
	case !(p.MPKI >= 0 && p.MPKI <= 1000): // negated so NaN is rejected
		return fmt.Errorf("workload: %s: MPKI %g outside [0,1000]", p.Name, p.MPKI)
	case p.UniqueRows < 0 || p.UniqueRows > 1<<28:
		return fmt.Errorf("workload: %s: UniqueRows %d outside [0,2^28]", p.Name, p.UniqueRows)
	case p.Hot250 < 0 || p.Hot250 > p.UniqueRows:
		return fmt.Errorf("workload: %s: Hot250 %d outside [0,UniqueRows=%d]", p.Name, p.Hot250, p.UniqueRows)
	case !(p.ActsPerRow >= 0 && p.ActsPerRow <= 1e6):
		return fmt.Errorf("workload: %s: ActsPerRow %g outside [0,1e6]", p.Name, p.ActsPerRow)
	}
	return nil
}

// ParseProfile parses the inline profile spec
//
//	name:suite:mpki:uniqueRows:hot250:actsPerRow
//
// e.g. "myhot:SPEC-2017:20:16000:400:40". The suite must be one of the
// paper's families (SPEC-2017, PARSEC, GAP, MICRO). It never panics on
// malformed input (fuzzed in spec_fuzz_test.go): ad-hoc specs arrive
// from the hydrasim command line.
func ParseProfile(spec string) (Profile, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 6 {
		return Profile{}, fmt.Errorf("workload: spec %q: want 6 colon-separated fields name:suite:mpki:rows:hot:actsper, have %d", spec, len(parts))
	}
	p := Profile{Name: parts[0], Suite: Suite(parts[1])}
	switch p.Suite {
	case SPEC, PARSEC, GAP, MICRO:
	default:
		return Profile{}, fmt.Errorf("workload: spec %q: unknown suite %q (have %s, %s, %s, %s)",
			spec, parts[1], SPEC, PARSEC, GAP, MICRO)
	}
	var err error
	if p.MPKI, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return Profile{}, fmt.Errorf("workload: spec %q: mpki: %w", spec, err)
	}
	if p.UniqueRows, err = strconv.Atoi(parts[3]); err != nil {
		return Profile{}, fmt.Errorf("workload: spec %q: rows: %w", spec, err)
	}
	if p.Hot250, err = strconv.Atoi(parts[4]); err != nil {
		return Profile{}, fmt.Errorf("workload: spec %q: hot: %w", spec, err)
	}
	if p.ActsPerRow, err = strconv.ParseFloat(parts[5], 64); err != nil {
		return Profile{}, fmt.Errorf("workload: spec %q: actsper: %w", spec, err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// ByNameOrSpec resolves a Table 3 profile by name, or — when the
// argument contains a colon — parses it as an inline ParseProfile spec.
func ByNameOrSpec(arg string) (Profile, error) {
	if strings.Contains(arg, ":") {
		return ParseProfile(arg)
	}
	return ByName(arg)
}
