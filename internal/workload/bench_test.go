package workload

import (
	"testing"

	"repro/internal/dram"
)

// BenchmarkStreamNext measures trace-generation speed, which bounds
// how cheaply the harness can feed eight cores.
func BenchmarkStreamNext(b *testing.B) {
	p, err := ByName("parest")
	if err != nil {
		b.Fatal(err)
	}
	mem := dram.Baseline()
	cfg := DefaultStreamConfig(mem, mem.RowsPerBank-17)
	cfg.ActBudget = 1 << 30
	s := MustNewStream(p, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}

// BenchmarkGUPSStream measures the random-access generator.
func BenchmarkGUPSStream(b *testing.B) {
	p, err := ByName("GUPS")
	if err != nil {
		b.Fatal(err)
	}
	mem := dram.Baseline()
	cfg := DefaultStreamConfig(mem, mem.RowsPerBank-17)
	cfg.ActBudget = 1 << 30
	s := MustNewStream(p, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}
