package workload

import (
	"testing"

	"repro/internal/dram"
)

// BenchmarkStreamNext measures trace-generation speed, which bounds
// how cheaply the harness can feed eight cores.
func BenchmarkStreamNext(b *testing.B) {
	p, err := ByName("parest")
	if err != nil {
		b.Fatal(err)
	}
	mem := dram.Baseline()
	cfg := DefaultStreamConfig(mem, mem.RowsPerBank-17)
	cfg.ActBudget = 1 << 30
	s := MustNewStream(p, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}

// TestStreamNextSteadyStateAllocFree pins the pending-queue fix: the
// drained queue resets to its backing array instead of re-slicing past
// consumed elements, so after warm-up (which sizes pending, the hot
// block and the cold window once) Next never allocates again.
func TestStreamNextSteadyStateAllocFree(t *testing.T) {
	p, err := ByName("parest")
	if err != nil {
		t.Fatal(err)
	}
	mem := dram.Baseline()
	cfg := DefaultStreamConfig(mem, mem.RowsPerBank-17)
	cfg.ActBudget = 1 << 30
	s := MustNewStream(p, cfg)
	for i := 0; i < 10_000; i++ { // warm up: internal buffers reach steady state
		if _, ok := s.Next(); !ok {
			t.Fatal("stream exhausted during warm-up")
		}
	}
	avg := testing.AllocsPerRun(10_000, func() {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream exhausted")
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Stream.Next allocates %.4f allocs/op, want 0", avg)
	}
}

// BenchmarkGUPSStream measures the random-access generator.
func BenchmarkGUPSStream(b *testing.B) {
	p, err := ByName("GUPS")
	if err != nil {
		b.Fatal(err)
	}
	mem := dram.Baseline()
	cfg := DefaultStreamConfig(mem, mem.RowsPerBank-17)
	cfg.ActBudget = 1 << 30
	s := MustNewStream(p, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}
