package workload

import "testing"

// FuzzParseProfile pins the inline-spec parser at the command-line
// boundary: any input must yield a profile that passes Validate and
// round-trips through Spec, or an error — never a panic.
func FuzzParseProfile(f *testing.F) {
	f.Add("myhot:SPEC-2017:20:16000:400:40")
	f.Add("x:MICRO:0:0:0:0")
	f.Add("bad")
	f.Add(":::::")
	f.Add("n:SPEC-2017:NaN:1:0:1")
	f.Add("n:SPEC-2017:Inf:1:0:1")
	f.Add("n:SPEC-2017:1:99999999999999999999:0:1")
	f.Add("n:NOPE:1:1:0:1")
	f.Add("n:SPEC-2017:1:100:200:1") // hot > rows
	f.Add("a:b:c:d:e:f:g")
	for _, p := range Profiles() {
		f.Add(p.Spec())
	}

	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseProfile(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed profile fails validation: %v", err)
		}
		// The accepted profile must round-trip through its own spec.
		q, err := ParseProfile(p.Spec())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", p.Spec(), err)
		}
		if q != p {
			t.Fatalf("round trip changed profile: %+v -> %+v", p, q)
		}
	})
}

func TestParseProfileMatchesByNameOrSpec(t *testing.T) {
	want := Profiles()[1] // parest
	got, err := ByNameOrSpec(want.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("spec round trip: %+v != %+v", got, want)
	}
	byName, err := ByNameOrSpec("parest")
	if err != nil {
		t.Fatal(err)
	}
	if byName != want {
		t.Fatalf("ByNameOrSpec(name) = %+v, want %+v", byName, want)
	}
	if _, err := ByNameOrSpec("no:such:spec"); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if _, err := ByNameOrSpec("nosuchworkload"); err == nil {
		t.Fatal("unknown name accepted")
	}
}
