// Package workload generates synthetic memory-access traces calibrated
// to the paper's Table 3 workload characterization. The paper traces
// SPEC2017, PARSEC and GAP applications with pintools; those traces are
// proprietary-tooling artifacts we cannot regenerate, so each workload
// is replaced by a stream with the same tracker-relevant aggregates:
//
//   - MPKI-LLC, which sets the instruction gap between memory requests
//     and hence memory intensity;
//   - unique rows touched per 64 ms window (footprint);
//   - the number of rows receiving 250+ activations (the hot set that
//     drives per-row tracking);
//   - average activations per row (reuse).
//
// These four aggregates are exactly the features that determine GCT
// saturation, RCC pressure and RCT traffic, so the tracker-facing
// behaviour of each workload is preserved even though the instruction
// streams are synthetic.
package workload

import "fmt"

// Suite labels a benchmark family.
type Suite string

// Suites in the paper's evaluation.
const (
	SPEC   Suite = "SPEC-2017"
	PARSEC Suite = "PARSEC"
	GAP    Suite = "GAP"
	MICRO  Suite = "MICRO" // GUPS
)

// Profile is one row of Table 3: per-64 ms, system-wide statistics for
// the 8-core rate-mode run.
type Profile struct {
	Name       string
	Suite      Suite
	MPKI       float64 // LLC misses per 1000 instructions
	UniqueRows int     // unique rows touched per window
	Hot250     int     // rows with more than 250 activations per window
	ActsPerRow float64 // average activations per touched row
}

// TotalActs returns the expected activations per window.
func (p Profile) TotalActs() int {
	return int(float64(p.UniqueRows) * p.ActsPerRow)
}

// Scaled returns the profile with its footprint divided by f (hot and
// cold row counts shrink; per-row intensity is preserved so rows still
// cross the tracker thresholds). Used to simulate a fraction of a
// window in bounded time.
func (p Profile) Scaled(f float64) Profile {
	if f <= 1 {
		return p
	}
	q := p
	q.UniqueRows = scaleCount(p.UniqueRows, f)
	q.Hot250 = scaleCount(p.Hot250, f)
	return q
}

func scaleCount(n int, f float64) int {
	s := int(float64(n)/f + 0.5)
	if n > 0 && s < 1 {
		s = 1
	}
	return s
}

// kilo scales Table 3's "K" counts.
func kilo(x float64) int { return int(x * 1000) }

// Profiles returns the paper's 36 workloads (Table 3), in paper order.
func Profiles() []Profile {
	return []Profile{
		{Name: "bwaves", Suite: SPEC, MPKI: 39.6, UniqueRows: kilo(77.9), Hot250: 0, ActsPerRow: 38.6},
		{Name: "parest", Suite: SPEC, MPKI: 27.6, UniqueRows: kilo(13.8), Hot250: 5882, ActsPerRow: 237},
		{Name: "fotonik3d", Suite: SPEC, MPKI: 25.9, UniqueRows: kilo(212), Hot250: 0, ActsPerRow: 17.5},
		{Name: "lbm", Suite: SPEC, MPKI: 25.6, UniqueRows: kilo(41.8), Hot250: 0, ActsPerRow: 82.1},
		{Name: "mcf", Suite: SPEC, MPKI: 20.8, UniqueRows: kilo(112), Hot250: 0, ActsPerRow: 28.8},
		{Name: "omnetpp", Suite: SPEC, MPKI: 9.75, UniqueRows: kilo(312), Hot250: 195, ActsPerRow: 10.7},
		{Name: "roms", Suite: SPEC, MPKI: 9.15, UniqueRows: kilo(115), Hot250: 1169, ActsPerRow: 22.9},
		{Name: "xz", Suite: SPEC, MPKI: 5.87, UniqueRows: kilo(102), Hot250: 1755, ActsPerRow: 26.4},
		{Name: "cam4", Suite: SPEC, MPKI: 3.23, UniqueRows: kilo(45.5), Hot250: 5, ActsPerRow: 54.1},
		{Name: "cactuBSSN", Suite: SPEC, MPKI: 3.20, UniqueRows: kilo(24.6), Hot250: 4609, ActsPerRow: 107},
		{Name: "xalancbmk", Suite: SPEC, MPKI: 1.61, UniqueRows: kilo(60.8), Hot250: 0, ActsPerRow: 49.8},
		{Name: "blender", Suite: SPEC, MPKI: 1.52, UniqueRows: kilo(52.4), Hot250: 2288, ActsPerRow: 58.7},
		{Name: "gcc", Suite: SPEC, MPKI: 0.65, UniqueRows: kilo(144), Hot250: 159, ActsPerRow: 18.0},
		{Name: "nab", Suite: SPEC, MPKI: 0.61, UniqueRows: kilo(61.9), Hot250: 0, ActsPerRow: 31.9},
		{Name: "deepsjeng", Suite: SPEC, MPKI: 0.29, UniqueRows: kilo(802), Hot250: 0, ActsPerRow: 1.78},
		{Name: "x264", Suite: SPEC, MPKI: 0.28, UniqueRows: kilo(25.0), Hot250: 0, ActsPerRow: 34.0},
		{Name: "wrf", Suite: SPEC, MPKI: 0.27, UniqueRows: kilo(19.3), Hot250: 18, ActsPerRow: 20.9},
		{Name: "namd", Suite: SPEC, MPKI: 0.26, UniqueRows: kilo(24.7), Hot250: 0, ActsPerRow: 34.9},
		{Name: "imagick", Suite: SPEC, MPKI: 0.16, UniqueRows: kilo(10.7), Hot250: 0, ActsPerRow: 19.1},
		{Name: "perlbench", Suite: SPEC, MPKI: 0.09, UniqueRows: kilo(25.6), Hot250: 0, ActsPerRow: 5.88},
		{Name: "leela", Suite: SPEC, MPKI: 0.03, UniqueRows: 720, Hot250: 0, ActsPerRow: 2.68},
		{Name: "povray", Suite: SPEC, MPKI: 0.03, UniqueRows: 500, Hot250: 0, ActsPerRow: 2.28},
		{Name: "face", Suite: PARSEC, MPKI: 13.2, UniqueRows: kilo(49.3), Hot250: 171, ActsPerRow: 42.5},
		{Name: "ferret", Suite: PARSEC, MPKI: 4.93, UniqueRows: kilo(48.6), Hot250: 1206, ActsPerRow: 47.6},
		{Name: "stream", Suite: PARSEC, MPKI: 4.51, UniqueRows: kilo(43.3), Hot250: 997, ActsPerRow: 36.8},
		{Name: "swapt", Suite: PARSEC, MPKI: 4.14, UniqueRows: kilo(43.2), Hot250: 1023, ActsPerRow: 38.4},
		{Name: "black", Suite: PARSEC, MPKI: 4.12, UniqueRows: kilo(48.8), Hot250: 937, ActsPerRow: 36.2},
		{Name: "freq", Suite: PARSEC, MPKI: 3.65, UniqueRows: kilo(56.5), Hot250: 1213, ActsPerRow: 34.9},
		{Name: "fluid", Suite: PARSEC, MPKI: 2.41, UniqueRows: kilo(90.8), Hot250: 858, ActsPerRow: 26.0},
		{Name: "bc_t", Suite: GAP, MPKI: 84.6, UniqueRows: kilo(231), Hot250: 9, ActsPerRow: 13.9},
		{Name: "bc_w", Suite: GAP, MPKI: 58.3, UniqueRows: kilo(129), Hot250: 0, ActsPerRow: 18.2},
		{Name: "cc_t", Suite: GAP, MPKI: 43.5, UniqueRows: kilo(192), Hot250: 0, ActsPerRow: 16.7},
		{Name: "pr_t", Suite: GAP, MPKI: 30.0, UniqueRows: kilo(113), Hot250: 0, ActsPerRow: 18.2},
		{Name: "pr_w", Suite: GAP, MPKI: 28.6, UniqueRows: kilo(98.7), Hot250: 0, ActsPerRow: 19.5},
		{Name: "cc_w", Suite: GAP, MPKI: 16.9, UniqueRows: kilo(93.2), Hot250: 0, ActsPerRow: 16.6},
		{Name: "GUPS", Suite: MICRO, MPKI: 3.85, UniqueRows: kilo(69.1), Hot250: 0, ActsPerRow: 31.4},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown workload %q", name)
}

// BySuite returns the profiles of one suite, in paper order.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}
