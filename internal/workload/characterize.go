package workload

import "repro/internal/dram"

// Characterization aggregates the Table 3 statistics of a generated
// trace so the generator can be validated against the paper's numbers.
type Characterization struct {
	Name       string
	MPKI       float64
	UniqueRows int
	Hot250     int
	ActsPerRow float64
	Requests   int64
	Writes     int64
}

// Characterize runs all cores' streams to exhaustion and measures the
// Table 3 statistics. An activation is counted per generated burst;
// the timing simulator may add a few conflict-induced reactivations on
// top, which is noted in EXPERIMENTS.md.
func Characterize(p Profile, base StreamConfig) (Characterization, error) {
	acts := make(map[uint64]int64)
	var reqs, writes, insts int64
	for core := 0; core < base.Cores; core++ {
		cfg := base
		cfg.CoreID = core
		s, err := NewStream(p, cfg)
		if err != nil {
			return Characterization{}, err
		}
		lastRowKey := uint64(1<<63 - 1)
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			reqs++
			insts += int64(r.Gap) + 1
			if r.Write {
				writes++
				continue
			}
			loc := cfg.Mem.Decode(r.Line)
			key := rowKey(cfg.Mem, loc)
			if key != lastRowKey {
				acts[key]++
				lastRowKey = key
			}
		}
	}
	c := Characterization{
		Name:       p.Name,
		UniqueRows: len(acts),
		Requests:   reqs,
		Writes:     writes,
	}
	var total int64
	for _, n := range acts {
		total += n
		if n > 250 {
			c.Hot250++
		}
	}
	if len(acts) > 0 {
		c.ActsPerRow = float64(total) / float64(len(acts))
	}
	if insts > 0 {
		c.MPKI = float64(reqs-writes) / float64(insts) * 1000
	}
	return c, nil
}

func rowKey(mem dram.Config, l dram.Loc) uint64 {
	return uint64(mem.GlobalRow(l))
}
