package workload

import (
	"fmt"

	"repro/internal/dram"
)

// Request is one memory access seen by the memory controller: Gap
// non-memory instructions retire on the issuing core, then the access
// to Line (a 64-byte line address) issues. Writes model LLC writebacks
// and do not stall the core.
type Request struct {
	Gap   int
	Write bool
	Line  uint64
}

// StreamConfig parameterizes one core's trace stream.
type StreamConfig struct {
	Mem          dram.Config
	MaxDemandRow int // highest usable in-bank row (below any reserved region)
	CoreID       int
	Cores        int // rate-mode copies; footprint is divided among them
	Scale        float64
	Burst        int     // consecutive line accesses per activation (row-buffer locality)
	WriteFrac    float64 // fraction of activations followed by a writeback
	Seed         uint64
	ActBudget    int // activations this stream produces (0 = window share)
}

// DefaultStreamConfig fills the knobs the paper's setup implies:
// 8 cores, burst 2, 25% writebacks.
func DefaultStreamConfig(mem dram.Config, maxDemandRow int) StreamConfig {
	return StreamConfig{
		Mem:          mem,
		MaxDemandRow: maxDemandRow,
		Cores:        8,
		Scale:        1,
		Burst:        2,
		WriteFrac:    0.25,
		Seed:         1,
	}
}

// hotBudget returns the deterministic activation budget of the i-th
// hot row: 260..559 activations, all comfortably above the 250-count
// that defines Table 3's hot set.
func hotBudget(i int, seed uint64) int {
	h := (uint64(i)+1)*0x9e3779b97f4a7c15 + seed
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return 260 + int(h%300)
}

// Stream generates one core's memory requests for a tracking window.
// It is deterministic for a given (profile, config) pair.
type Stream struct {
	p   Profile
	cfg StreamConfig
	rng splitMix

	totalBanks  int
	rowsPerCore int     // in-bank rows available to this core
	perm        []int32 // random page placement within the partition

	uniqueRows int // this core's share of the footprint
	hotRows    int
	actsLeft   int
	pHot32     uint64 // P(hot) scaled to 2^32

	// Hot-set state: a rotating block of hot rows with per-row budgets.
	hotNext   int // next hot row index to admit to the block
	block     []hotSlot
	blockFill int

	// Cold-scan state: a sliding window of cold rows, each receiving
	// its per-row activation budget while resident. Real streaming
	// workloads activate a row many times in a short burst (bank
	// interleaving keeps breaking the row buffer), then move on; a
	// whole-footprint scan pass per activation would instead give
	// every metadata structure a worst-case reuse distance.
	coldWin    []hotSlot
	coldNext   int // next cold row index to admit to the window
	coldPerRow int // activations per residency (budget / passes)

	// Pending intra-burst requests and writebacks, drained from
	// pendHead. Advancing a head index instead of re-slicing keeps the
	// backing array's full capacity: once the queue drains it resets to
	// pending[:0] and the next burst appends into the same allocation,
	// so steady-state Next is allocation-free.
	pending  []Request
	pendHead int
	recent   [16]uint64 // recent lines for writeback targets
	recentN  int

	gupsMode bool
}

type hotSlot struct {
	virtRow int
	left    int
}

type splitMix struct{ state uint64 }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const hotBlockSize = 16

// NewStream creates a trace stream for one core.
func NewStream(p Profile, cfg StreamConfig) (*Stream, error) {
	if cfg.Cores <= 0 || cfg.CoreID < 0 || cfg.CoreID >= cfg.Cores {
		return nil, fmt.Errorf("workload: bad core %d of %d", cfg.CoreID, cfg.Cores)
	}
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	if cfg.MaxDemandRow <= 0 || cfg.MaxDemandRow >= cfg.Mem.RowsPerBank {
		return nil, fmt.Errorf("workload: bad MaxDemandRow %d", cfg.MaxDemandRow)
	}
	sp := p.Scaled(cfg.Scale)
	unique := sp.UniqueRows / cfg.Cores
	if unique < 1 {
		unique = 1
	}
	hot := sp.Hot250 / cfg.Cores
	if sp.Hot250 > 0 && hot < 1 {
		hot = 1
	}
	if hot >= unique {
		hot = unique - 1
	}
	if hot < 0 {
		hot = 0
	}
	budget := cfg.ActBudget
	if budget <= 0 {
		budget = int(float64(unique) * p.ActsPerRow)
		if budget < unique {
			budget = unique // at least one activation per unique row
		}
	}

	s := &Stream{
		p:          p,
		cfg:        cfg,
		rng:        splitMix{state: cfg.Seed ^ (uint64(cfg.CoreID+1) * 0xabcdef123457)},
		totalBanks: cfg.Mem.TotalBanks(),
		uniqueRows: unique,
		hotRows:    hot,
		actsLeft:   budget,
		gupsMode:   p.Suite == MICRO,
	}
	s.rowsPerCore = (cfg.MaxDemandRow + 1) / cfg.Cores
	if s.rowsPerCore < 1 {
		return nil, fmt.Errorf("workload: %d cores do not fit in %d demand rows", cfg.Cores, cfg.MaxDemandRow+1)
	}
	// Random page placement: the OS scatters a workload's pages over
	// the physical row space, so touched rows land in row-groups
	// (Hydra's GCT granularity) roughly Poisson-distributed rather
	// than packed back to back. A seeded Fisher-Yates permutation of
	// the partition reproduces that.
	s.perm = make([]int32, s.rowsPerCore)
	for i := range s.perm {
		s.perm[i] = int32(i)
	}
	permRng := splitMix{state: cfg.Seed ^ 0x5eed5eed5eed}
	for i := len(s.perm) - 1; i > 0; i-- {
		j := int(permRng.next() % uint64(i+1))
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
	}
	// Expected hot activations set the hot-pick probability.
	hotActs := 0
	if hot > 0 {
		for i := 0; i < hot; i++ {
			hotActs += hotBudget(i, cfg.Seed)
		}
		if hotActs > budget*9/10 {
			hotActs = budget * 9 / 10
		}
		s.pHot32 = uint64(float64(1<<32) * float64(hotActs) / float64(budget))
	}
	// Iterative applications (graph kernels, stencil sweeps) touch
	// their footprint in several passes per window, so a row's
	// activations split across residencies: near reuse within a pass,
	// far reuse (a full footprint) between passes. This is what makes
	// under-provisioned per-row structures thrash (Figure 8's NoGCT).
	perRow := (budget - hotActs) / max(1, unique-hot)
	passes := int(p.ActsPerRow / 10)
	if passes < 1 {
		passes = 1
	}
	if passes > 8 {
		passes = 8
	}
	s.coldPerRow = perRow / passes
	if s.coldPerRow < 1 {
		s.coldPerRow = 1
	}
	s.coldNext = hot
	return s, nil
}

// MustNewStream is NewStream for statically valid parameters.
func MustNewStream(p Profile, cfg StreamConfig) *Stream {
	s, err := NewStream(p, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ActBudget returns the total activations this stream will produce.
func (s *Stream) ActBudget() int { return s.actsLeft }

// line maps (virtual row, column) to a physical line address within
// this core's partition. Virtual rows stripe across all banks first so
// the stream exercises bank-level parallelism the way real address
// interleaving does.
func (s *Stream) line(virtRow, col int) uint64 {
	bank := virtRow % s.totalBanks
	inBank := int(s.perm[(virtRow/s.totalBanks)%s.rowsPerCore])
	row := s.cfg.CoreID*s.rowsPerCore + inBank
	loc := dram.Loc{
		Channel: bank % s.cfg.Mem.Channels,
		Rank:    (bank / s.cfg.Mem.Channels) % s.cfg.Mem.RanksPerChannel,
		Bank:    bank / (s.cfg.Mem.Channels * s.cfg.Mem.RanksPerChannel),
		Row:     row,
		Col:     col % s.cfg.Mem.LinesPerRow(),
	}
	return s.cfg.Mem.Encode(loc)
}

// gap returns the non-memory instruction gap implied by the MPKI.
func (s *Stream) gap() int {
	if s.p.MPKI <= 0 {
		return 1000
	}
	return int(1000/s.p.MPKI + 0.5)
}

// Next returns the next request. ok is false when the stream's
// activation budget is exhausted.
func (s *Stream) Next() (req Request, ok bool) {
	if s.pendHead < len(s.pending) {
		req = s.pending[s.pendHead]
		s.pendHead++
		if s.pendHead == len(s.pending) {
			s.pending = s.pending[:0]
			s.pendHead = 0
		}
		return req, true
	}
	if s.actsLeft <= 0 {
		return Request{}, false
	}
	s.actsLeft--

	virtRow := s.nextRow()
	col := int(s.rng.next() % uint64(s.cfg.Mem.LinesPerRow()))
	burst := s.cfg.Burst
	if s.gupsMode {
		burst = 1
	}
	first := Request{Gap: s.gap(), Line: s.line(virtRow, col)}
	for b := 1; b < burst; b++ {
		s.pending = append(s.pending, Request{Gap: s.gap(), Line: s.line(virtRow, col+b)})
	}
	s.remember(first.Line)
	// Writebacks target a recently used line (an LLC dirty eviction).
	if s.cfg.WriteFrac > 0 && s.rng.next()&0xFFFFFFFF < uint64(s.cfg.WriteFrac*float64(1<<32)) {
		s.pending = append(s.pending, Request{Gap: 0, Write: true, Line: s.recall()})
	}
	return first, true
}

func (s *Stream) remember(line uint64) {
	s.recent[s.recentN%len(s.recent)] = line
	s.recentN++
}

func (s *Stream) recall() uint64 {
	if s.recentN == 0 {
		return s.line(0, 0)
	}
	n := s.recentN
	if n > len(s.recent) {
		n = len(s.recent)
	}
	return s.recent[int(s.rng.next()%uint64(n))]
}

// nextRow picks the virtual row of the next activation.
func (s *Stream) nextRow() int {
	if s.gupsMode {
		// GUPS: uniformly random rows across the whole footprint.
		return int(s.rng.next() % uint64(s.uniqueRows))
	}
	if s.hotRows > 0 && s.rng.next()&0xFFFFFFFF < s.pHot32 {
		if row, ok := s.nextHot(); ok {
			return row
		}
	}
	return s.nextCold()
}

const coldWindowSize = 16

// nextCold serves cold activations from a sliding window over the
// cold footprint: each resident row receives its per-row budget in a
// temporally clustered burst, then retires in favour of the next row.
func (s *Stream) nextCold() int {
	for len(s.coldWin) < coldWindowSize {
		if s.coldNext >= s.uniqueRows {
			s.coldNext = s.hotRows // footprint exhausted: next pass
			if s.hotRows >= s.uniqueRows {
				break
			}
		}
		s.coldWin = append(s.coldWin, hotSlot{virtRow: s.coldNext, left: s.coldPerRow})
		s.coldNext++
	}
	if len(s.coldWin) == 0 {
		return 0
	}
	i := int(s.rng.next() % uint64(len(s.coldWin)))
	slot := &s.coldWin[i]
	row := slot.virtRow
	slot.left--
	if slot.left <= 0 {
		s.coldWin[i] = s.coldWin[len(s.coldWin)-1]
		s.coldWin = s.coldWin[:len(s.coldWin)-1]
	}
	return row
}

// nextHot serves hot activations from a rotating block of hot rows so
// hot rows are hammered in temporally clustered phases, then retired
// once their budget is spent.
func (s *Stream) nextHot() (int, bool) {
	// Refill the block from the not-yet-started hot rows.
	for s.blockFill < hotBlockSize && s.hotNext < s.hotRows {
		s.block = append(s.block, hotSlot{virtRow: s.hotNext, left: hotBudget(s.hotNext, s.cfg.Seed)})
		s.hotNext++
		s.blockFill++
	}
	if len(s.block) == 0 {
		return 0, false
	}
	i := int(s.rng.next() % uint64(len(s.block)))
	slot := &s.block[i]
	row := slot.virtRow
	slot.left--
	if slot.left <= 0 {
		s.block[i] = s.block[len(s.block)-1]
		s.block = s.block[:len(s.block)-1]
		s.blockFill--
	}
	return row, true
}
