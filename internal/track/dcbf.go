package track

import (
	"fmt"

	"repro/internal/rh"
)

// DCBF is a functional model of the dual counting-Bloom-filter tracker
// of BlockHammer (Yağlıkçı et al., HPCA 2021; paper Section 2.4). Two
// time-interleaved counting Bloom filters with three hash functions
// each track activation counts per bank:
//
//   - every activation increments the row's three counters in both
//     filters;
//   - the filters are cleared alternately every half window, so the
//     older ("active") filter always covers at least the last half
//     window of history;
//   - a row is blacklisted while its estimate (the minimum of its
//     three counters in the active filter) is at or above the
//     threshold.
//
// A counting Bloom filter never undercounts, so there are no false
// negatives; hash collisions cause false positives. As the paper
// observes (Section 7.1), a blacklisted row stays blacklisted until a
// filter reset, so D-CBF can only pair with delay-based mitigation:
// Activate returns true on *every* activation of a blacklisted row,
// which the caller interprets as a throttle event.
type DCBF struct {
	geom      Geometry
	threshold int
	m         int // counters per filter per bank
	hashSeeds [3]uint64
	banks     []dcbfBank
	halfEach  int // activations per bank between filter swaps

	// Throttles counts blacklisted activations over the tracker lifetime.
	Throttles int64
}

type dcbfBank struct {
	filters   [2][]uint16
	older     int // index of the filter that has run longer (queried)
	actsSince int
}

var _ rh.Tracker = (*DCBF)(nil)

// NewDCBF creates a D-CBF tracker. countersPerBank <= 0 selects the
// calibrated sizing 32*ACTMax/T_RH counters per filter per bank.
func NewDCBF(geom Geometry, trh, countersPerBank int, seed uint64) (*DCBF, error) {
	if geom.Rows <= 0 || geom.ACTMax <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	if countersPerBank <= 0 {
		countersPerBank = 32 * geom.ACTMax / trh
	}
	rng := splitMix64{state: seed}
	d := &DCBF{
		geom:      geom,
		threshold: mitigationThreshold(trh),
		m:         countersPerBank,
		banks:     make([]dcbfBank, geom.Banks),
		halfEach:  geom.ACTMax / 2,
	}
	for i := range d.hashSeeds {
		d.hashSeeds[i] = rng.next() | 1
	}
	for i := range d.banks {
		d.banks[i] = dcbfBank{
			filters: [2][]uint16{make([]uint16, countersPerBank), make([]uint16, countersPerBank)},
		}
	}
	return d, nil
}

// MustNewDCBF is NewDCBF for statically valid parameters.
func MustNewDCBF(geom Geometry, trh, countersPerBank int, seed uint64) *DCBF {
	d, err := NewDCBF(geom, trh, countersPerBank, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements rh.Tracker.
func (d *DCBF) Name() string { return "dcbf" }

// Threshold returns the blacklist threshold (T_RH/2).
func (d *DCBF) Threshold() int { return d.threshold }

func (d *DCBF) hash(row rh.Row, i int) int {
	x := uint64(row)*d.hashSeeds[i] + d.hashSeeds[i]>>17
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return int(x % uint64(d.m))
}

// Activate implements rh.Tracker. A true return is a throttle event,
// not a victim refresh: delay-based mitigation is the only policy
// D-CBF supports.
func (d *DCBF) Activate(row rh.Row) bool {
	b := &d.banks[d.geom.bank(row)]
	b.actsSince++
	if b.actsSince >= d.halfEach {
		// Swap: clear the older filter; the other becomes the queried one.
		clearCounters(b.filters[b.older])
		b.older = 1 - b.older
		b.actsSince = 0
	}
	est := int(^uint(0) >> 1)
	for i := 0; i < 3; i++ {
		h := d.hash(row, i)
		for f := 0; f < 2; f++ {
			if b.filters[f][h] < ^uint16(0) {
				b.filters[f][h]++
			}
		}
		if v := int(b.filters[b.older][h]); v < est {
			est = v
		}
	}
	if est >= d.threshold {
		d.Throttles++
		return true
	}
	return false
}

func clearCounters(c []uint16) {
	for i := range c {
		c[i] = 0
	}
}

// Estimate returns the queried-filter estimate for a row (for tests).
func (d *DCBF) Estimate(row rh.Row) int {
	b := &d.banks[d.geom.bank(row)]
	est := int(^uint(0) >> 1)
	for i := 0; i < 3; i++ {
		if v := int(b.filters[b.older][d.hash(row, i)]); v < est {
			est = v
		}
	}
	return est
}

// ActivateMeta implements rh.Tracker; D-CBF has no DRAM metadata.
func (d *DCBF) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (d *DCBF) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (d *DCBF) ResetWindow() {
	for i := range d.banks {
		clearCounters(d.banks[i].filters[0])
		clearCounters(d.banks[i].filters[1])
		d.banks[i].older = 0
		d.banks[i].actsSince = 0
	}
}

// SRAMBytes implements rh.Tracker: two filters of m 8-bit counters per
// bank, the Table 1 calibration (768 KB per rank at T_RH = 500).
func (d *DCBF) SRAMBytes() int {
	return 2 * d.m * d.geom.Banks
}
