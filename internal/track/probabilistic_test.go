package track

import (
	"testing"

	"repro/internal/rh"
)

func TestProHITDetectsNaiveHammer(t *testing.T) {
	p := MustNewProHIT(testGeom(), 0.25, 7)
	row := rh.Row(5)
	mitigs := 0
	for i := 0; i < 5000; i++ {
		if p.Activate(row) {
			mitigs++
		}
	}
	if mitigs == 0 {
		t.Fatal("naive single-row hammer never mitigated")
	}
}

func TestProHITPromotionPath(t *testing.T) {
	p := MustNewProHIT(testGeom(), 1.0, 7) // deterministic insertion
	row := rh.Row(9)
	// Miss -> cold; cold hit -> hot list (empty, so instantly top);
	// the next hit is a top hit and mitigates.
	mitigatedAt := -1
	for i := 1; i <= 10; i++ {
		if p.Activate(row) {
			mitigatedAt = i
			break
		}
	}
	if mitigatedAt != 3 {
		t.Fatalf("mitigation at activation %d, want 3 (insert, promote, top hit)", mitigatedAt)
	}
}

func TestProHITValidation(t *testing.T) {
	if _, err := NewProHIT(testGeom(), 0, 1); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewProHIT(testGeom(), 1.5, 1); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := NewProHIT(Geometry{}, 0.5, 1); err == nil {
		t.Error("empty geometry accepted")
	}
}

func TestMRLoCDetectsLocalHammer(t *testing.T) {
	m := MustNewMRLoC(testGeom(), 3)
	row := rh.Row(4)
	mitigs := 0
	for i := 0; i < 2000; i++ {
		if m.Activate(row) {
			mitigs++
		}
	}
	if mitigs == 0 {
		t.Fatal("local hammer never mitigated")
	}
	// Locality-driven probability: mitigations should be frequent for
	// a resident hammered row (p reaches 1 after 16 hits).
	if mitigs < 50 {
		t.Fatalf("mitigations = %d, suspiciously rare", mitigs)
	}
}

// TestMRLoCFlushedByOneOffRows demonstrates the evasion: interleaving
// enough distinct rows between hammer hits flushes the aggressor from
// the queue, so its hit count never accumulates.
func TestMRLoCFlushedByOneOffRows(t *testing.T) {
	m := MustNewMRLoC(testGeom(), 3)
	target := rh.Row(4)
	mitigs := 0
	for i := 0; i < 20000; i++ {
		if i%(mrlocQueueEntries+1) == 0 {
			if m.Activate(target) {
				mitigs++
			}
			continue
		}
		// Same bank, never the target, no repeat within queue depth.
		m.Activate(rh.Row(5 + i%250))
	}
	// ~1800 target activations with the queue always flushed: far
	// beyond T_RH without mitigation.
	if mitigs != 0 {
		t.Fatalf("flush pattern still mitigated %d times", mitigs)
	}
}

func TestProbabilisticTrackersInterface(t *testing.T) {
	for _, tr := range []rh.Tracker{
		MustNewProHIT(testGeom(), 0.25, 1),
		MustNewMRLoC(testGeom(), 1),
	} {
		if tr.SRAMBytes() <= 0 || tr.MetaRows() != 0 || tr.ActivateMeta(0) {
			t.Errorf("%s: interface contract broken", tr.Name())
		}
		tr.Activate(rh.Row(0))
		tr.ResetWindow()
	}
}
