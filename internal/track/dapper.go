package track

import (
	"fmt"

	"repro/internal/rh"
)

// DAPPER is a functional model of the performance-attack-resilient
// tracker of arXiv 2501.18857: a per-bank Misra-Gries table, like
// Graphene, but with a per-entry deterministic jitter subtracted from
// the mitigation threshold. A plain deterministic tracker mitigates
// every aggressor at exactly the same count, so an attacker who knows
// the threshold can herd many rows to just below it and release them
// together, forcing a synchronized burst of mitigations — a
// performance attack (denial of service through the mitigation path)
// rather than a security break. DAPPER de-synchronizes the burst: each
// entry mitigates at threshold − j, where j is a hash of the row
// (stable across the entry's lifetime) drawn from [0, threshold/4).
// Mitigating early-only preserves the Misra-Gries security argument —
// no row ever accumulates more unmitigated activations than under
// Graphene — while spreading the mitigation instants of a herd across
// a quarter-threshold band.
//
// The early mitigations cost capacity: sizing uses the effective
// worst-case threshold 3t/4 (t = T_RH/2), so the table is ~4/3 the
// size of Graphene's, the storage premium the arena's Table 5 column
// makes visible.
type DAPPER struct {
	geom      Geometry
	threshold int // mitigation threshold before jitter (T_RH/2)
	jitterMax int // per-entry jitter drawn from [0, jitterMax)
	perBank   int // entries per bank
	banks     []grapheneBank

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
}

var _ rh.Tracker = (*DAPPER)(nil)

// NewDAPPER creates a DAPPER tracker for the target T_RH.
func NewDAPPER(geom Geometry, trh int) (*DAPPER, error) {
	if geom.Rows <= 0 || geom.RowsPerBank <= 0 || geom.ACTMax <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	t := mitigationThreshold(trh)
	jitterMax := t / 4
	if jitterMax < 1 {
		jitterMax = 1
	}
	// Worst case a row mitigates every t-jitterMax+1 ≈ 3t/4 estimated
	// activations, so the table must absorb ACTMax at that rate.
	effective := t - jitterMax + 1
	perBank := (geom.ACTMax + effective - 1) / effective
	d := &DAPPER{
		geom:      geom,
		threshold: t,
		jitterMax: jitterMax,
		perBank:   perBank,
		banks:     make([]grapheneBank, geom.Banks),
	}
	for i := range d.banks {
		d.banks[i] = newGrapheneBank(perBank)
	}
	return d, nil
}

// MustNewDAPPER is NewDAPPER for statically valid parameters.
func MustNewDAPPER(geom Geometry, trh int) *DAPPER {
	d, err := NewDAPPER(geom, trh)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements rh.Tracker.
func (d *DAPPER) Name() string { return "dapper" }

// Threshold returns the pre-jitter operating threshold, T_RH/2.
func (d *DAPPER) Threshold() int { return d.threshold }

// JitterMax returns the exclusive bound of the per-row jitter band.
func (d *DAPPER) JitterMax() int { return d.jitterMax }

// EntriesPerBank returns the table size per bank.
func (d *DAPPER) EntriesPerBank() int { return d.perBank }

// jitter derives a row's stable early-mitigation offset in
// [0, jitterMax) from a splitMix64-style hash of the row address. A
// hash (rather than an RNG draw at insertion) keeps the offset stable
// across evictions, so an attacker cannot re-roll it by thrashing.
func (d *DAPPER) jitter(row rh.Row) int {
	z := uint64(row) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(d.jitterMax))
}

// Activate implements rh.Tracker: the Graphene update with a
// jittered, early-only mitigation point.
func (d *DAPPER) Activate(row rh.Row) bool {
	b := &d.banks[d.geom.bank(row)]
	cut := d.threshold - d.jitter(row)
	if e, ok := b.entries[row]; ok {
		b.setCount(row, e, e.count+1)
		if e.count-e.lastMitig >= cut {
			e.lastMitig = e.count
			d.Mitigations++
			return true
		}
		return false
	}
	if len(b.entries) < b.capacity {
		e := &grapheneEntry{count: -1}
		b.entries[row] = e
		b.setCount(row, e, 1)
		return false
	}
	if floor, ok := b.byCount[b.spillover]; ok {
		var victim rh.Row
		for victim = range floor {
			break
		}
		ve := b.entries[victim]
		delete(floor, victim)
		if len(floor) == 0 {
			delete(b.byCount, b.spillover)
		}
		delete(b.entries, victim)
		ve.lastMitig = b.spillover
		ve.count = -1
		b.entries[row] = ve
		b.setCount(row, ve, b.spillover+1)
		if ve.count-ve.lastMitig >= cut {
			ve.lastMitig = ve.count
			d.Mitigations++
			return true
		}
		return false
	}
	b.spillover++
	return false
}

// ActivateMeta implements rh.Tracker; DAPPER has no DRAM metadata.
func (d *DAPPER) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (d *DAPPER) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (d *DAPPER) ResetWindow() {
	for i := range d.banks {
		d.banks[i] = newGrapheneBank(d.perBank)
	}
}

// SRAMBytes implements rh.Tracker: 5 bytes per CAM entry — Graphene's
// 4 plus a jitter byte held with the entry so the comparator needs no
// hash unit on the activation path.
func (d *DAPPER) SRAMBytes() int {
	return d.perBank * d.geom.Banks * 5
}

// EstimatedCount returns the tracker's estimate for a row (for tests).
func (d *DAPPER) EstimatedCount(row rh.Row) int {
	b := &d.banks[d.geom.bank(row)]
	if e, ok := b.entries[row]; ok {
		return e.count
	}
	return b.spillover
}
