package track

import (
	"fmt"

	"repro/internal/rh"
)

// TWiCE is a functional model of the time-window-counter tracker of
// Lee et al. (ISCA 2019; paper Section 2.4). Each bank keeps a table of
// (row, activation-count, lifetime) entries. Periodically (every
// pruning interval) the lifetime of every entry grows, and entries
// whose activation count is too small to ever reach the threshold
// within the window are pruned, freeing space.
//
// The model exposes the property the paper leans on: the table must be
// provisioned for the worst case, and at ultra-low thresholds that
// approaches one entry per activatable row. When the table overflows,
// new aggressor rows go untracked; the Overflows counter records these
// security losses so the attack suite can demonstrate them.
type TWiCE struct {
	geom      Geometry
	threshold int
	perBank   int
	pruneEach int // activations between pruning passes (per bank)
	lifeMax   int
	banks     []twiceBank

	// Stats accumulate over the tracker lifetime.
	Mitigations int64
	Overflows   int64 // activations of untrackable rows (table full)
	Pruned      int64
}

type twiceBank struct {
	entries        map[rh.Row]*twiceEntry
	actsSincePrune int
	life           int
}

type twiceEntry struct {
	acts int
	life int // pruning passes survived
}

var _ rh.Tracker = (*TWiCE)(nil)

// NewTWiCE creates a TWiCE tracker. entriesPerBank <= 0 selects the
// calibrated sizing ceil(ACTMax/(T_RH/4)) used for Table 1.
func NewTWiCE(geom Geometry, trh, entriesPerBank int) (*TWiCE, error) {
	if geom.Rows <= 0 || geom.ACTMax <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	t := mitigationThreshold(trh)
	if entriesPerBank <= 0 {
		quarter := trh / 4
		if quarter < 1 {
			quarter = 1
		}
		entriesPerBank = (geom.ACTMax + quarter - 1) / quarter
	}
	const lifeMax = 16
	tw := &TWiCE{
		geom:      geom,
		threshold: t,
		perBank:   entriesPerBank,
		pruneEach: geom.ACTMax/lifeMax + 1,
		lifeMax:   lifeMax,
		banks:     make([]twiceBank, geom.Banks),
	}
	for i := range tw.banks {
		tw.banks[i] = twiceBank{entries: make(map[rh.Row]*twiceEntry)}
	}
	return tw, nil
}

// MustNewTWiCE is NewTWiCE for statically valid parameters.
func MustNewTWiCE(geom Geometry, trh, entriesPerBank int) *TWiCE {
	t, err := NewTWiCE(geom, trh, entriesPerBank)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements rh.Tracker.
func (t *TWiCE) Name() string { return "twice" }

// EntriesPerBank returns the table capacity per bank.
func (t *TWiCE) EntriesPerBank() int { return t.perBank }

// Activate implements rh.Tracker.
func (t *TWiCE) Activate(row rh.Row) bool {
	b := &t.banks[t.geom.bank(row)]
	b.actsSincePrune++
	if b.actsSincePrune >= t.pruneEach {
		t.prune(b)
	}
	if e, ok := b.entries[row]; ok {
		e.acts++
		if e.acts >= t.threshold {
			e.acts = 0
			t.Mitigations++
			return true
		}
		return false
	}
	if len(b.entries) >= t.perBank {
		t.Overflows++ // untracked activation: the TRRespass weakness
		return false
	}
	b.entries[row] = &twiceEntry{acts: 1, life: b.life}
	return false
}

// prune ages every entry and drops the ones whose activation rate can
// no longer reach the threshold by the end of the window.
func (t *TWiCE) prune(b *twiceBank) {
	b.actsSincePrune = 0
	b.life++
	for row, e := range b.entries {
		elapsed := b.life - e.life
		if elapsed <= 0 {
			continue
		}
		// An entry needs at least threshold*elapsed/lifeMax
		// activations by now to stay on pace.
		need := t.threshold * elapsed / t.lifeMax
		if e.acts < need {
			delete(b.entries, row)
			t.Pruned++
		}
	}
}

// ActivateMeta implements rh.Tracker; TWiCE has no DRAM metadata.
func (t *TWiCE) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (t *TWiCE) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (t *TWiCE) ResetWindow() {
	for i := range t.banks {
		t.banks[i] = twiceBank{entries: make(map[rh.Row]*twiceEntry)}
	}
}

// SRAMBytes implements rh.Tracker: 13.8 bytes per entry, the Table 1
// calibration (37% CAM; row tag, activation count, lifetime and valid
// state): 2.3 MB per rank at T_RH = 500.
func (t *TWiCE) SRAMBytes() int {
	return t.perBank * t.geom.Banks * 138 / 10
}
