package track

import (
	"math/rand"
	"testing"

	"repro/internal/rh"
)

// --- START ---

func TestSTARTHammerMitigatedEveryThreshold(t *testing.T) {
	s := MustNewSTART(testGeom(), testTRH, 0)
	row := rh.Row(7)
	mitigs := 0
	for i := 1; i <= 200; i++ {
		if s.Activate(row) {
			mitigs++
			if i%50 != 0 {
				t.Fatalf("mitigation at activation %d, want multiples of 50", i)
			}
		}
	}
	if mitigs != 4 {
		t.Fatalf("mitigations = %d, want 4", mitigs)
	}
}

func TestSTARTGuaranteeSizing(t *testing.T) {
	geom := testGeom()
	s := MustNewSTART(geom, testTRH, 0)
	// ceil(Banks*ACTMax / (TRH/2)) = ceil(4*10000/50) = 800 entries.
	if got := s.Capacity(); got != 800 {
		t.Errorf("capacity = %d, want 800", got)
	}
	if got := s.SRAMBytes(); got != 800*startEntryBytes {
		t.Errorf("borrowed bytes = %d, want %d", got, 800*startEntryBytes)
	}
	// An explicit LLC budget overrides the guarantee sizing.
	small := MustNewSTART(geom, testTRH, 1024)
	if got := small.Capacity(); got != 1024/startEntryBytes {
		t.Errorf("budgeted capacity = %d, want %d", got, 1024/startEntryBytes)
	}
}

// TestSTARTSecurityUnderCrossBankThrash hammers one row while
// thrashing the shared pool from every bank: the pooled guarantee
// sizing must still mitigate within the operating threshold.
func TestSTARTSecurityUnderCrossBankThrash(t *testing.T) {
	geom := testGeom()
	s := MustNewSTART(geom, testTRH, 0)
	rng := rand.New(rand.NewSource(1))
	trueCount := make(map[rh.Row]int)
	target := rh.Row(3)
	for acts := 0; acts < geom.Banks*geom.ACTMax/4; acts++ {
		var row rh.Row
		if acts%3 == 0 {
			row = target
		} else {
			row = rh.Row(rng.Intn(geom.Rows)) // any bank
		}
		trueCount[row]++
		if s.Activate(row) {
			trueCount[row] = 0
		}
		if trueCount[row] >= testTRH {
			t.Fatalf("row %d reached %d true activations without mitigation (act %d)",
				row, trueCount[row], acts)
		}
	}
}

// TestSTARTUnderProvisionedPoolEvaded shows the configurability
// trade-off: with a pool far below the guarantee sizing, an eviction
// storm keeps the spillover floor low while a target accumulates true
// activations untracked.
func TestSTARTUnderProvisionedPoolEvaded(t *testing.T) {
	geom := testGeom()
	s := MustNewSTART(geom, testTRH, 16*startEntryBytes) // 16 entries vs 800 guaranteed
	target := rh.Row(3)
	trueActs, mitigs := 0, 0
	for i := 0; i < 20000; i++ {
		if i%40 == 0 {
			trueActs++
			if s.Activate(target) {
				mitigs++
			}
			continue
		}
		s.Activate(rh.Row(uint32(4 + i%996))) // storm of distinct rows
	}
	if trueActs < testTRH {
		t.Fatalf("test bug: only %d true activations", trueActs)
	}
	// The storm inflates every inherited estimate equally, so the
	// floor-inherited counts dominate and the pool cannot single out
	// the target: mitigations stay far below trueActs/threshold while
	// the spillover floor soaks up the pressure.
	if s.Spillover() == 0 {
		t.Error("eviction storm never raised the spillover floor")
	}
}

func TestSTARTValidation(t *testing.T) {
	if _, err := NewSTART(Geometry{}, testTRH, 0); err == nil {
		t.Error("empty geometry accepted")
	}
	if _, err := NewSTART(testGeom(), 1, 0); err == nil {
		t.Error("TRH=1 accepted")
	}
	if _, err := NewSTART(testGeom(), testTRH, -1); err == nil {
		t.Error("negative LLC budget accepted")
	}
	if _, err := NewSTART(testGeom(), testTRH, 4); err == nil {
		t.Error("sub-entry LLC budget accepted")
	}
}

// --- MINT ---

func TestMINTDefaultInterval(t *testing.T) {
	m := MustNewMINT(testGeom(), testTRH, 0, 1)
	if got := m.Interval(); got != testTRH/4 {
		t.Errorf("interval = %d, want %d", got, testTRH/4)
	}
	if got := m.SRAMBytes(); got != 4*testGeom().Banks {
		t.Errorf("SRAM = %d, want %d", got, 4*testGeom().Banks)
	}
}

// TestMINTCatchesNaiveHammer: a single-row hammer owns every slot in
// its bank, so it is mitigated once per interval — far more often
// than the threshold requires.
func TestMINTCatchesNaiveHammer(t *testing.T) {
	m := MustNewMINT(testGeom(), testTRH, 0, 7)
	row := rh.Row(5)
	mitigs := 0
	acts := 40 * m.Interval()
	for i := 0; i < acts; i++ {
		if m.Activate(row) {
			mitigs++
		}
	}
	if mitigs != 40 {
		t.Fatalf("mitigations = %d, want one per interval (40)", mitigs)
	}
}

// TestMINTSelectionIsUniformish: over many intervals the mitigated
// positions should spread across the interval rather than cluster.
func TestMINTSelectionIsUniformish(t *testing.T) {
	m := MustNewMINT(testGeom(), testTRH, 8, 11)
	hits := make([]int, 8)
	rows := make([]rh.Row, 8)
	for i := range rows {
		rows[i] = rh.Row(uint32(i)) // all bank 0, distinct rows
	}
	for interval := 0; interval < 4000; interval++ {
		for pos, row := range rows {
			if m.Activate(row) {
				hits[pos]++
			}
		}
	}
	for pos, h := range hits {
		if h < 300 || h > 700 {
			t.Errorf("position %d selected %d/4000 times, want ~500", pos, h)
		}
	}
}

// TestMINTDilutionEvadesAtUltraLowThreshold is the arena's mint-dilute
// adversary in miniature: fill every interval with W distinct rows so
// each row survives an interval with probability 1-1/W, and hammer
// long enough for a victim to take T_RH true activations. With
// W = 125 (T_RH 500) a row escapes all ~500 selections with
// probability (1-1/125)^500 ≈ 1.8%; across 125 rows and a fixed seed,
// at least one row deterministically reaches T_RH unmitigated.
func TestMINTDilutionEvadesAtUltraLowThreshold(t *testing.T) {
	const trh = 500
	geom := testGeom()
	m := MustNewMINT(geom, trh, 0, 3)
	w := m.Interval() // 125
	rows := make([]rh.Row, w)
	for i := range rows {
		rows[i] = rh.Row(uint32(i)) // one bank
	}
	trueCount := make(map[rh.Row]int)
	escaped := false
	for round := 0; round < trh+40 && !escaped; round++ {
		for _, row := range rows {
			trueCount[row]++
			if m.Activate(row) {
				trueCount[row] = 0
			}
			if trueCount[row] >= trh {
				escaped = true
			}
		}
	}
	if !escaped {
		t.Fatal("dilution pattern never pushed a row past T_RH; seed-dependent escape lost")
	}
}

func TestMINTValidation(t *testing.T) {
	if _, err := NewMINT(Geometry{}, testTRH, 0, 1); err == nil {
		t.Error("empty geometry accepted")
	}
	if _, err := NewMINT(testGeom(), 1, 0, 1); err == nil {
		t.Error("TRH=1 accepted")
	}
	if _, err := NewMINT(testGeom(), testTRH, -5, 1); err == nil {
		t.Error("negative interval accepted")
	}
}

// --- DAPPER ---

func TestDAPPERMitigatesEarly(t *testing.T) {
	d := MustNewDAPPER(testGeom(), testTRH)
	row := rh.Row(7)
	cut := d.Threshold() - d.jitter(row)
	if cut <= 0 || cut > d.Threshold() {
		t.Fatalf("jittered cut %d out of range (threshold %d)", cut, d.Threshold())
	}
	for i := 1; i <= 2*d.Threshold(); i++ {
		if d.Activate(row) {
			if i != cut {
				t.Fatalf("first mitigation at activation %d, want %d", i, cut)
			}
			return
		}
		if i > cut {
			t.Fatalf("activation %d passed cut %d without mitigation", i, cut)
		}
	}
	t.Fatal("never mitigated")
}

// TestDAPPERDesynchronizesHerd drives the performance attack DAPPER
// exists to blunt: many rows advanced in lockstep. Graphene mitigates
// them all at the same activation count; DAPPER spreads the
// mitigation instants across the jitter band.
func TestDAPPERDesynchronizesHerd(t *testing.T) {
	geom := testGeom()
	d := MustNewDAPPER(geom, testTRH)
	g := MustNewGraphene(geom, testTRH)
	rows := make([]rh.Row, 32)
	for i := range rows {
		rows[i] = rh.Row(uint32(i)) // one bank
	}
	distinct := make(map[int]struct{})
	grapheneRounds := make(map[int]struct{})
	for round := 1; round <= testTRH/2; round++ {
		for _, row := range rows {
			if d.Activate(row) {
				distinct[round] = struct{}{}
			}
			if g.Activate(row) {
				grapheneRounds[round] = struct{}{}
			}
		}
	}
	if len(grapheneRounds) != 1 {
		t.Fatalf("graphene herd mitigated across %d rounds, want exactly 1 (synchronized)", len(grapheneRounds))
	}
	if len(distinct) < 5 {
		t.Fatalf("dapper herd mitigated across %d rounds, want spread over the jitter band", len(distinct))
	}
}

func TestDAPPERJitterStableAcrossEvictions(t *testing.T) {
	d := MustNewDAPPER(testGeom(), testTRH)
	row := rh.Row(42)
	j := d.jitter(row)
	for i := 0; i < 100; i++ {
		if got := d.jitter(row); got != j {
			t.Fatalf("jitter changed from %d to %d", j, got)
		}
	}
}

func TestDAPPERSizingPremiumOverGraphene(t *testing.T) {
	geom := BaselineGeometry()
	d := MustNewDAPPER(geom, 500)
	g := MustNewGraphene(geom, 500)
	if d.EntriesPerBank() <= g.EntriesPerBank() {
		t.Errorf("dapper entries/bank %d should exceed graphene's %d (early mitigation premium)",
			d.EntriesPerBank(), g.EntriesPerBank())
	}
	// Effective threshold 3t/4 → ~4/3 the entries, at 5 B each.
	if d.EntriesPerBank() > 2*g.EntriesPerBank() {
		t.Errorf("dapper entries/bank %d over twice graphene's %d", d.EntriesPerBank(), g.EntriesPerBank())
	}
}

func TestDAPPERValidation(t *testing.T) {
	if _, err := NewDAPPER(Geometry{}, testTRH); err == nil {
		t.Error("empty geometry accepted")
	}
	if _, err := NewDAPPER(testGeom(), 1); err == nil {
		t.Error("TRH=1 accepted")
	}
}

func TestArenaTrackersInterface(t *testing.T) {
	for _, tr := range []rh.Tracker{
		MustNewSTART(testGeom(), testTRH, 0),
		MustNewMINT(testGeom(), testTRH, 0, 1),
		MustNewDAPPER(testGeom(), testTRH),
	} {
		if tr.SRAMBytes() <= 0 || tr.MetaRows() != 0 || tr.ActivateMeta(0) {
			t.Errorf("%s: interface contract broken", tr.Name())
		}
		tr.Activate(rh.Row(0))
		tr.ResetWindow()
	}
}
