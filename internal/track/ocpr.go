package track

import (
	"fmt"

	"repro/internal/rh"
)

// OCPR is the naive One-Counter-Per-Row tracker: a dedicated SRAM
// counter for every row in the system (paper Section 2.4). It is
// exact, requires no DRAM traffic, and serves as the storage upper
// bound in Table 1 and as the oracle tracker in tests.
type OCPR struct {
	geom      Geometry
	trh       int
	threshold int
	counts    []uint32

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
}

var _ rh.Tracker = (*OCPR)(nil)

// NewOCPR creates an OCPR tracker operated at T_RH/2.
func NewOCPR(geom Geometry, trh int) (*OCPR, error) {
	if geom.Rows <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	return &OCPR{
		geom:      geom,
		trh:       trh,
		threshold: mitigationThreshold(trh),
		counts:    make([]uint32, geom.Rows),
	}, nil
}

// MustNewOCPR is NewOCPR for statically valid parameters.
func MustNewOCPR(geom Geometry, trh int) *OCPR {
	t, err := NewOCPR(geom, trh)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements rh.Tracker.
func (o *OCPR) Name() string { return "ocpr" }

// Activate implements rh.Tracker.
func (o *OCPR) Activate(row rh.Row) bool {
	o.counts[row]++
	if int(o.counts[row]) >= o.threshold {
		o.counts[row] = 0
		o.Mitigations++
		return true
	}
	return false
}

// ActivateMeta implements rh.Tracker; OCPR has no DRAM metadata.
func (o *OCPR) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (o *OCPR) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (o *OCPR) ResetWindow() {
	for i := range o.counts {
		o.counts[i] = 0
	}
}

// SRAMBytes implements rh.Tracker: one log2(T_RH)-bit counter per row,
// the Table 1 sizing (2.3 MB per rank at T_RH = 500).
func (o *OCPR) SRAMBytes() int {
	return o.geom.Rows * bitsFor(o.trh) / 8
}

// Count returns the current counter of a row (for tests).
func (o *OCPR) Count(row rh.Row) int { return int(o.counts[row]) }

// bitsFor returns the bits needed to represent values 0..n.
func bitsFor(n int) int {
	b := 1
	for (1 << b) <= n {
		b++
	}
	return b
}
