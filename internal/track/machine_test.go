package track_test

// Property-based state machine driving every arena tracker scheme
// against the attack.Oracle reference (the true per-row activation
// count with the paper's two-window straddle semantics). The machine
// generates ACT/REF/reset interleavings — targeted hammers, round-robin
// sweeps, the internal/attack adversarial patterns, and window resets
// at arbitrary points — and checks the Theorem-1 invariant: a
// mitigation is issued at or before every T_RH true activations of a
// row.
//
// Scheme classes (docs/TESTING.md catalogs the reasoning):
//   - deterministic: the invariant must hold on every generated run;
//   - pressure-gated: the invariant must hold unless the scheme's own
//     overflow counter shows its capacity was exceeded (the designed
//     weakness the arena quantifies);
//   - probabilistic: no per-run guarantee exists, so the suite bounds
//     the violation *rate* over the generated corpus instead.

import (
	"fmt"
	"testing"

	"repro/internal/attack"
	"repro/internal/exp"
	"repro/internal/mitigate"
	"repro/internal/proptest"
	"repro/internal/rh"
	"repro/internal/testutil"
	"repro/internal/track"
)

// machineGeom mirrors the arena's functional security geometry: small
// enough that capacity pressure is reachable within a test budget.
func machineGeom() track.Geometry {
	return track.Geometry{Rows: 4096, RowsPerBank: 1024, Banks: 4, ACTMax: 100000}
}

// machineTRH is the oracle threshold; trackers operate at half of it.
const machineTRH = 128

// machineBudget caps true activations per generated run so one case
// stays fast even when every op draws its maximum length.
const machineBudget = 2500

type schemeClass int

const (
	classDeterministic schemeClass = iota
	classPressure                  // safe unless its overflow counter fired
	classProbabilistic             // rate-bounded over the corpus, not per run
)

func classify(scheme string) schemeClass {
	switch scheme {
	case "hydra", "graphene", "cra", "ocpr", "start", "dapper":
		return classDeterministic
	case "twice", "cat", "start-budget":
		return classPressure
	case "para", "mint", "prohit", "mrloc":
		return classProbabilistic
	}
	panic("unknown scheme " + scheme)
}

// excused reports whether a violation on a pressure-gated scheme is the
// documented capacity weakness rather than a logic bug: the tracker's
// own pressure counter must have fired.
func excused(tr rh.Tracker) (string, bool) {
	switch t := tr.(type) {
	case *track.TWiCE:
		return fmt.Sprintf("Overflows=%d", t.Overflows), t.Overflows > 0
	case *track.CAT:
		return fmt.Sprintf("UnsafeMitigations=%d", t.UnsafeMitigations), t.UnsafeMitigations > 0
	case *track.START:
		// The lifetime counters, not Spillover(): the current floor
		// lives in the pool and is wiped by ResetWindow, which is
		// exactly the hole the machine's first catch shrank down to
		// (see TestRegressionSTARTBudgetResetErasesPressure).
		return fmt.Sprintf("Evictions=%d SpilloverPeak=%d", t.Evictions, t.SpilloverPeak),
			t.Evictions > 0 || t.SpilloverPeak > 0
	}
	return "", false
}

// machineRun is one generated episode: a fresh tracker behind the
// victim-refresh policy, observed by the oracle.
type machineRun struct {
	ref    *mitigate.Refresher
	oracle *attack.Oracle
	acts   int
}

func newMachineRun(tb testing.TB, scheme string, seed uint64) *machineRun {
	geom := machineGeom()
	tr, err := exp.ArenaFuncTracker(scheme, geom, machineTRH, seed)
	if err != nil {
		tb.Fatalf("construct %s: %v", scheme, err)
	}
	oracle := attack.NewOracle(machineTRH)
	ref := mitigate.NewRefresher(tr, mitigate.DefaultBlast, geom.RowsPerBank)
	ref.Observer = oracle
	return &machineRun{ref: ref, oracle: oracle}
}

func (m *machineRun) act(row rh.Row) {
	if m.acts >= machineBudget {
		return
	}
	m.acts++
	m.oracle.Step()
	m.ref.Activate(row)
}

// aggressorPool holds the rows the hammer op concentrates on: bank
// interiors plus both sides of bank boundaries, where victim clipping
// changes the blast radius.
var aggressorPool = []rh.Row{8, 9, 100, 512, 1022, 1023, 1024, 1025, 2048, 4095}

// machinePatterns builds the pattern menu for one drawn episode: the
// classic shapes plus every arena adversary's functional pattern.
func machinePatterns(geom track.Geometry) []attack.Pattern {
	ps := []attack.Pattern{
		&attack.SingleSided{Target: 8},
		&attack.DoubleSided{Victim: 100},
		&attack.ManySided{Base: 8, Sides: 8, Spacing: 1},
		&attack.ManySided{Base: 8, Sides: 32, Spacing: 2},
		&attack.HalfDouble{Victim: 100},
		&attack.Thrash{
			Target:     4,
			Distractor: func(i int) rh.Row { return rh.Row(8 + i%256) },
			Spread:     256,
			HammerEach: 4,
		},
	}
	for _, adv := range attack.Adversaries() {
		ps = append(ps, adv.Pattern(geom, machineTRH))
	}
	return ps
}

// driveMachine runs one generated episode and returns the finished run.
func driveMachine(t *proptest.T, tb testing.TB, scheme string) *machineRun {
	seed := proptest.Uint64().Draw(t, "seed")
	m := newMachineRun(tb, scheme, seed)
	geom := machineGeom()
	patterns := machinePatterns(geom)
	rowGen := proptest.SampledFrom(aggressorPool)
	burstGen := proptest.IntRange(1, 300)

	proptest.Repeat(t, map[string]func(*proptest.T){
		// Alphabetically first, so shrinking prefers it: a no-op-ish
		// single background touch.
		"background": func(t *proptest.T) {
			m.act(rh.Row(proptest.IntRange(0, geom.Rows-1).Draw(t, "row")))
		},
		"hammer": func(t *proptest.T) {
			row := rowGen.Draw(t, "row")
			k := burstGen.Draw(t, "k")
			for i := 0; i < k; i++ {
				m.act(row)
			}
		},
		"pattern": func(t *proptest.T) {
			p := patterns[proptest.IntRange(0, len(patterns)-1).Draw(t, "pattern")]
			k := burstGen.Draw(t, "k")
			for i := 0; i < k; i++ {
				m.act(p.Next())
			}
		},
		"reset": func(t *proptest.T) {
			m.ref.ResetWindow()
			m.oracle.WindowReset()
		},
		"sweep": func(t *proptest.T) {
			n := proptest.IntRange(2, 96).Draw(t, "n")
			k := proptest.IntRange(1, 4).Draw(t, "rounds")
			for r := 0; r < k; r++ {
				for i := 0; i < n; i++ {
					m.act(rh.Row(8 + i))
				}
			}
		},
	})
	m.oracle.Finish()
	return m
}

// deterministicProp is the Theorem-1 invariant for schemes with a
// deterministic guarantee: no generated run may violate the oracle.
func deterministicProp(tb testing.TB, scheme string) func(*proptest.T) {
	return func(pt *proptest.T) {
		m := driveMachine(pt, tb, scheme)
		if !m.oracle.Safe() {
			v := m.oracle.Violations[0]
			pt.Fatalf("%s: row %d reached %d unmitigated acts (T_RH=%d) at step %d",
				scheme, v.Row, v.Count, machineTRH, v.Step)
		}
	}
}

// pressureProp allows a violation only when the scheme's own lifetime
// capacity counter shows its table was overrun — the designed weakness.
func pressureProp(tb testing.TB, scheme string) func(*proptest.T) {
	return func(pt *proptest.T) {
		m := driveMachine(pt, tb, scheme)
		if m.oracle.Safe() {
			return
		}
		detail, ok := excused(m.ref.Tracker())
		if !ok {
			v := m.oracle.Violations[0]
			pt.Fatalf("%s: unexcused violation (row %d, count %d, %s): capacity counter silent, so this is a logic bug",
				scheme, v.Row, v.Count, detail)
		}
	}
}

// TestTrackerMachine runs the state machine over all 13 arena schemes.
func TestTrackerMachine(t *testing.T) {
	for _, scheme := range exp.ArenaFuncSchemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			switch classify(scheme) {
			case classDeterministic:
				proptest.Check(t, deterministicProp(t, scheme))
			case classPressure:
				proptest.Check(t, pressureProp(t, scheme))
			case classProbabilistic:
				// No per-run guarantee: bound the violation rate over
				// the deterministic generated corpus instead. The bound
				// is calibrated per scheme in probBound below.
				runs, viol := 0, 0
				proptest.Check(t, func(pt *proptest.T) {
					m := driveMachine(pt, t, scheme)
					runs++
					if !m.oracle.Safe() {
						viol++
					}
				})
				bound := probBound(t, scheme, runs)
				testutil.Logf(t, "%s: %d/%d runs violated (bound %d)", scheme, viol, runs, bound)
				if viol > bound {
					t.Errorf("%s: %d of %d generated runs violated the oracle, above the calibrated bound %d — the scheme got worse",
						scheme, viol, runs, bound)
				}
			}
		})
	}
}

// TestRegressionSTARTBudgetResetErasesPressure replays the machine's
// first shrunken catch: hammer one row past several mitigations, reset,
// run a 64-row storm through the 32-entry budgeted pool (evicting the
// hammered row between its activations so it never re-earns the
// mitigation threshold), hammer again across the window straddle, and
// reset — which used to wipe the pool's spillover floor, leaving the
// resulting oracle violation with no capacity-pressure evidence at all
// (Spillover()==0). START now keeps lifetime Evictions/SpilloverPeak
// counters across ResetWindow, so the run is recognized as the
// documented budget trade-off. The trace must replay clean.
func TestRegressionSTARTBudgetResetErasesPressure(t *testing.T) {
	proptest.ReplayTrace(t, []uint64{
		0x0, 0x6, 0x6, 0x0, 0xb409441591238217, 0x3, 0x0, 0x0, 0xc,
		0xe000000000000000, 0xe000000000000000, 0x59a28e7ff5daaf26,
		0x0, 0x3c24e7cddb38669, 0x8b0845c4ce480355,
	}, pressureProp(t, "start-budget"))
}

// probBound returns the maximum tolerated violating runs for a
// probabilistic scheme over a corpus of the given size. The fractions
// are calibrated against the observed behavior of the current
// implementations on the deterministic corpus (seeded from the test
// name), with headroom so the test only fires on a real regression:
//   - para operates at a 1e-9 designed failure probability — any
//     violation at all is a bug;
//   - mint misses rows under interval dilution (its documented
//     weakness, arXiv 2407.16038);
//   - prohit/mrloc use probabilistic insertion queues and lose under
//     thrash pressure routinely.
func probBound(tb testing.TB, scheme string, runs int) int {
	var frac float64
	switch scheme {
	case "para":
		return 0
	case "mint":
		frac = 0.55
	case "prohit", "mrloc":
		frac = 0.80
	default:
		tb.Fatalf("probBound: %s is not probabilistic", scheme)
	}
	return int(frac * float64(runs))
}
