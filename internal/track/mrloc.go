package track

import (
	"fmt"

	"repro/internal/rh"
)

// MRLoC is a functional model of the memory-locality-based
// probabilistic mitigation of You and Yang (DAC 2019), the second
// probabilistic design the paper classifies as insecure (Section 7.3).
// A small queue remembers recently activated rows; re-activating a
// queued row (temporal locality, the row-hammer signature) triggers a
// victim refresh with a probability that grows with the row's queue
// hit count, after which the row is dequeued.
//
// The queue is short and insertion is evict-oldest, so an attacker can
// flush the aggressor out of the queue with a burst of one-off rows
// between hammer pairs, escaping mitigation — which the attack suite
// demonstrates.
type MRLoC struct {
	geom  Geometry
	banks []mrlocBank
	rng   splitMix64

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
}

type mrlocEntry struct {
	row  rh.Row
	hits int
}

type mrlocBank struct {
	queue []mrlocEntry // index 0 is the oldest
}

const mrlocQueueEntries = 8

var _ rh.Tracker = (*MRLoC)(nil)

// NewMRLoC creates an MRLoC tracker.
func NewMRLoC(geom Geometry, seed uint64) (*MRLoC, error) {
	if geom.Rows <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	return &MRLoC{
		geom:  geom,
		banks: make([]mrlocBank, geom.Banks),
		rng:   splitMix64{state: seed},
	}, nil
}

// MustNewMRLoC is NewMRLoC for statically valid parameters.
func MustNewMRLoC(geom Geometry, seed uint64) *MRLoC {
	t, err := NewMRLoC(geom, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements rh.Tracker.
func (m *MRLoC) Name() string { return "mrloc" }

// Activate implements rh.Tracker.
func (m *MRLoC) Activate(row rh.Row) bool {
	b := &m.banks[m.geom.bank(row)]
	for i := range b.queue {
		if b.queue[i].row != row {
			continue
		}
		b.queue[i].hits++
		// Mitigation probability grows with locality: hits/16, capped.
		p := uint64(b.queue[i].hits) << 28 // hits/16 in 2^32 fixed point
		if p > 1<<32-1 {
			p = 1<<32 - 1
		}
		if m.rng.next()&0xFFFFFFFF < p {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			m.Mitigations++
			return true
		}
		return false
	}
	if len(b.queue) >= mrlocQueueEntries {
		b.queue = b.queue[1:] // evict the oldest
	}
	b.queue = append(b.queue, mrlocEntry{row: row})
	return false
}

// ActivateMeta implements rh.Tracker; MRLoC has no DRAM metadata.
func (m *MRLoC) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (m *MRLoC) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (m *MRLoC) ResetWindow() {
	for i := range m.banks {
		m.banks[i] = mrlocBank{}
	}
}

// SRAMBytes implements rh.Tracker: an 8-entry queue per bank at 4
// bytes each.
func (m *MRLoC) SRAMBytes() int {
	return m.geom.Banks * mrlocQueueEntries * 4
}
