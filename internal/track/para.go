package track

import (
	"fmt"
	"math"

	"repro/internal/rh"
)

// PARA is the stateless probabilistic tracker of Kim et al. (ISCA
// 2014): every activation triggers a mitigation with probability p.
// There is no guaranteed detection, only a statistical one, and p must
// grow as T_RH shrinks, which is why the paper dismisses it at
// ultra-low thresholds (Section 7.3).
type PARA struct {
	p       float64
	pFixed  uint64 // p scaled to 2^32 for a branch-free comparison
	rng     splitMix64
	trh     int
	failure float64

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
}

type splitMix64 struct{ state uint64 }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

var _ rh.Tracker = (*PARA)(nil)

// NewPARA creates a PARA tracker whose probability is derived from the
// target T_RH and a per-row-per-window failure probability: p solves
// (1-p)^TRH = failProb, i.e. the chance that a row survives T_RH
// activations without a single mitigation.
func NewPARA(trh int, failProb float64, seed uint64) (*PARA, error) {
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	if failProb <= 0 || failProb >= 1 {
		return nil, fmt.Errorf("track: failProb must be in (0,1), got %v", failProb)
	}
	p := 1 - math.Pow(failProb, 1/float64(trh))
	return &PARA{
		p:       p,
		pFixed:  uint64(p * float64(1<<32)),
		rng:     splitMix64{state: seed},
		trh:     trh,
		failure: failProb,
	}, nil
}

// MustNewPARA is NewPARA for statically valid parameters.
func MustNewPARA(trh int, failProb float64, seed uint64) *PARA {
	t, err := NewPARA(trh, failProb, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements rh.Tracker.
func (p *PARA) Name() string { return "para" }

// Probability returns the per-activation mitigation probability.
func (p *PARA) Probability() float64 { return p.p }

// Activate implements rh.Tracker.
func (p *PARA) Activate(rh.Row) bool {
	if p.rng.next()&0xFFFFFFFF < p.pFixed {
		p.Mitigations++
		return true
	}
	return false
}

// ActivateMeta implements rh.Tracker; PARA has no DRAM metadata.
func (p *PARA) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (p *PARA) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker; PARA is stateless.
func (p *PARA) ResetWindow() {}

// SRAMBytes implements rh.Tracker: PARA needs only an RNG.
func (p *PARA) SRAMBytes() int { return 8 }
