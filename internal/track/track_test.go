package track

import (
	"math/rand"
	"testing"

	"repro/internal/rh"
)

// testGeom is a small system for fast tests: 1024 rows over 4 banks,
// at most 10000 activations per bank per window.
func testGeom() Geometry {
	return Geometry{Rows: 1024, RowsPerBank: 256, Banks: 4, ACTMax: 10000}
}

const testTRH = 100 // operating threshold 50

func TestGrapheneHammerMitigatedEveryThreshold(t *testing.T) {
	g := MustNewGraphene(testGeom(), testTRH)
	row := rh.Row(7)
	mitigs := 0
	for i := 1; i <= 200; i++ {
		if g.Activate(row) {
			mitigs++
			if i%50 != 0 {
				t.Fatalf("mitigation at activation %d, want multiples of 50", i)
			}
		}
	}
	if mitigs != 4 {
		t.Fatalf("mitigations = %d, want 4", mitigs)
	}
}

func TestGrapheneSizingMatchesPaper(t *testing.T) {
	g := MustNewGraphene(BaselineGeometry(), 500)
	if got := g.EntriesPerBank(); got != 5440 {
		t.Errorf("entries per bank = %d, want 5440 (~5441 in the paper)", got)
	}
	// Two ranks of 16 banks: ~680 KB total (Table 5).
	kb := g.SRAMBytes() / 1024
	if kb < 640 || kb > 720 {
		t.Errorf("SRAM = %d KB, want ~680 KB", kb)
	}
}

// TestGrapheneSecurityUnderThrash drives the TRRespass-style pattern:
// hammer one row while touching many distractor rows to thrash the
// table. With the guaranteed sizing, no row may accumulate T_RH true
// activations without a mitigation within one window's activation
// budget.
func TestGrapheneSecurityUnderThrash(t *testing.T) {
	geom := testGeom()
	g := MustNewGraphene(geom, testTRH)
	rng := rand.New(rand.NewSource(1))
	trueCount := make(map[rh.Row]int)
	target := rh.Row(3)
	for acts := 0; acts < geom.ACTMax; acts++ {
		var row rh.Row
		if acts%3 == 0 {
			row = target
		} else {
			row = rh.Row(rng.Intn(256)) // same bank as target
		}
		trueCount[row]++
		if g.Activate(row) {
			trueCount[row] = 0
		}
		if trueCount[row] >= testTRH {
			t.Fatalf("row %d reached %d true activations without mitigation (act %d)",
				row, trueCount[row], acts)
		}
	}
}

func TestGrapheneEstimateNeverUndercounts(t *testing.T) {
	g := MustNewGraphene(testGeom(), testTRH)
	rng := rand.New(rand.NewSource(2))
	trueCount := make(map[rh.Row]int)
	for i := 0; i < 5000; i++ {
		row := rh.Row(rng.Intn(256))
		trueCount[row]++
		g.Activate(row)
		if got := g.EstimatedCount(row); got < trueCount[row] {
			t.Fatalf("estimate %d < true %d for row %d", got, trueCount[row], row)
		}
	}
}

func TestGrapheneResetWindow(t *testing.T) {
	g := MustNewGraphene(testGeom(), testTRH)
	for i := 0; i < 49; i++ {
		g.Activate(rh.Row(7))
	}
	g.ResetWindow()
	for i := 1; i <= 49; i++ {
		if g.Activate(rh.Row(7)) {
			t.Fatalf("mitigation at %d activations after reset", i)
		}
	}
	if !g.Activate(rh.Row(7)) {
		t.Fatal("no mitigation at 50 after reset")
	}
}

func TestOCPRExact(t *testing.T) {
	o := MustNewOCPR(testGeom(), testTRH)
	row := rh.Row(100)
	for i := 1; i <= 49; i++ {
		if o.Activate(row) {
			t.Fatalf("early mitigation at %d", i)
		}
	}
	if !o.Activate(row) {
		t.Fatal("no mitigation at 50")
	}
	if o.Count(row) != 0 {
		t.Fatal("count not reset after mitigation")
	}
	o.ResetWindow()
	if o.Count(row) != 0 {
		t.Fatal("counters survive reset")
	}
	if o.Mitigations != 1 {
		t.Fatal("lifetime stats must survive reset")
	}
}

func TestOCPRStorageMatchesTable1(t *testing.T) {
	// 16 GB rank = 2 M rows; at T_RH 500 a 9-bit counter per row
	// gives 2.25 MB (Table 1 reports 2.3 MB).
	o := MustNewOCPR(Geometry{Rows: 2 * 1024 * 1024, RowsPerBank: 131072, Banks: 16, ACTMax: 1360000}, 500)
	mb := float64(o.SRAMBytes()) / (1 << 20)
	if mb < 2.2 || mb > 2.4 {
		t.Errorf("OCPR storage = %.2f MB, want ~2.3 MB", mb)
	}
}

func TestPARAStatistics(t *testing.T) {
	p := MustNewPARA(500, 1e-9, 42)
	// p = 1 - (1e-9)^(1/500) ~ 0.0406
	if p.Probability() < 0.03 || p.Probability() > 0.06 {
		t.Fatalf("p = %v, want ~0.041", p.Probability())
	}
	n := 200000
	mitigs := 0
	for i := 0; i < n; i++ {
		if p.Activate(rh.Row(0)) {
			mitigs++
		}
	}
	want := p.Probability() * float64(n)
	if float64(mitigs) < want*0.9 || float64(mitigs) > want*1.1 {
		t.Fatalf("mitigations = %d, want ~%.0f", mitigs, want)
	}
}

func TestPARADeterministicPerSeed(t *testing.T) {
	a := MustNewPARA(500, 1e-9, 7)
	b := MustNewPARA(500, 1e-9, 7)
	for i := 0; i < 1000; i++ {
		if a.Activate(0) != b.Activate(0) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPARAValidation(t *testing.T) {
	if _, err := NewPARA(1, 1e-9, 0); err == nil {
		t.Error("TRH=1 accepted")
	}
	if _, err := NewPARA(500, 0, 0); err == nil {
		t.Error("failProb=0 accepted")
	}
	if _, err := NewPARA(500, 1, 0); err == nil {
		t.Error("failProb=1 accepted")
	}
}

func TestCRAMitigatesAtThreshold(t *testing.T) {
	c := MustNewCRA(testGeom(), testTRH, 4096, rh.NullSink{})
	row := rh.Row(5)
	for i := 1; i <= 49; i++ {
		if c.Activate(row) {
			t.Fatalf("early mitigation at %d", i)
		}
	}
	if !c.Activate(row) {
		t.Fatal("no mitigation at 50")
	}
}

func TestCRATraffic(t *testing.T) {
	sink := &rh.CountingSink{}
	c := MustNewCRA(testGeom(), testTRH, 256, sink) // 4 lines, one set
	// First touch of a line: one read.
	c.Activate(rh.Row(0))
	if sink.Reads != 1 || sink.Writes != 0 {
		t.Fatalf("first touch: %d reads %d writes, want 1/0", sink.Reads, sink.Writes)
	}
	// Same line again: a hit, no traffic.
	c.Activate(rh.Row(1))
	if sink.Reads != 1 {
		t.Fatalf("hit caused a read")
	}
	// Touch 5 distinct lines: at least one dirty eviction.
	for i := 0; i < 5; i++ {
		c.Activate(rh.Row(i * craRowsPerLine))
	}
	if sink.Writes == 0 {
		t.Fatal("dirty eviction caused no writeback")
	}
	if c.Hits == 0 || c.MissFetches == 0 {
		t.Fatalf("stats: hits=%d misses=%d", c.Hits, c.MissFetches)
	}
}

func TestCRACountsClearAcrossWindows(t *testing.T) {
	c := MustNewCRA(testGeom(), testTRH, 4096, rh.NullSink{})
	row := rh.Row(9)
	for i := 0; i < 30; i++ {
		c.Activate(row)
	}
	c.ResetWindow()
	if got := c.Count(row); got != 0 {
		t.Fatalf("count after window reset = %d, want 0", got)
	}
	for i := 1; i <= 30; i++ {
		if c.Activate(row) {
			t.Fatalf("stale count leaked across windows (act %d)", i)
		}
	}
}

func TestCRAValidation(t *testing.T) {
	if _, err := NewCRA(testGeom(), 1, 4096, rh.NullSink{}); err == nil {
		t.Error("TRH=1 accepted")
	}
	if _, err := NewCRA(testGeom(), 100, 0, rh.NullSink{}); err == nil {
		t.Error("zero-size cache accepted")
	}
}

func TestTWiCEHammerDetected(t *testing.T) {
	tw := MustNewTWiCE(testGeom(), testTRH, 64)
	row := rh.Row(3)
	for i := 1; i <= 49; i++ {
		if tw.Activate(row) {
			t.Fatalf("early mitigation at %d", i)
		}
	}
	if !tw.Activate(row) {
		t.Fatal("no mitigation at 50")
	}
}

func TestTWiCEOverflowWhenUndersized(t *testing.T) {
	tw := MustNewTWiCE(testGeom(), testTRH, 4) // tiny table
	// Fill the table with 4 rows, then a 5th row goes untracked.
	for r := rh.Row(0); r < 5; r++ {
		tw.Activate(r)
	}
	if tw.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", tw.Overflows)
	}
}

func TestTWiCEPrunesColdEntries(t *testing.T) {
	geom := testGeom()
	tw := MustNewTWiCE(geom, testTRH, 64)
	// One cold touch, then enough hot traffic to cross two pruning
	// intervals: the cold entry must be dropped.
	tw.Activate(rh.Row(200))
	hot := rh.Row(1)
	for i := 0; i < 2*(geom.ACTMax/16+1)+4; i++ {
		tw.Activate(hot)
	}
	if tw.Pruned == 0 {
		t.Fatal("cold entry was never pruned")
	}
}

func TestCATHammerMitigatedBeforeTRH(t *testing.T) {
	c := MustNewCAT(testGeom(), testTRH, 1024)
	row := rh.Row(17)
	trueSince := 0
	for i := 0; i < 500; i++ {
		trueSince++
		if c.Activate(row) {
			trueSince = 0
		}
		if trueSince >= testTRH {
			t.Fatalf("row reached %d true activations without mitigation", trueSince)
		}
	}
	if c.Splits == 0 {
		t.Fatal("hammering never split the tree")
	}
	if c.UnsafeMitigations != 0 {
		t.Fatalf("well-provisioned CAT produced %d unsafe mitigations", c.UnsafeMitigations)
	}
}

func TestCATPoolExhaustionIsUnsafe(t *testing.T) {
	c := MustNewCAT(testGeom(), testTRH, 3) // root plus one split
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		c.Activate(rh.Row(rng.Intn(256)))
	}
	if c.UnsafeMitigations == 0 {
		t.Fatal("exhausted pool never produced an unsafe mitigation")
	}
}

func TestDCBFNoFalseNegatives(t *testing.T) {
	d := MustNewDCBF(testGeom(), testTRH, 4096, 11)
	row := rh.Row(4)
	throttled := false
	for i := 1; i <= 50; i++ {
		if d.Activate(row) {
			throttled = true
			if i < 1 {
				t.Fatalf("throttle before any activation")
			}
		}
	}
	if !throttled {
		t.Fatal("hammered row never blacklisted at threshold")
	}
	// D-CBF cannot un-blacklist until a filter reset: every further
	// activation throttles.
	if !d.Activate(row) {
		t.Fatal("blacklisted row no longer throttled")
	}
	if d.Estimate(row) < 50 {
		t.Fatalf("estimate %d < true count 51", d.Estimate(row))
	}
}

func TestDCBFEstimateNeverUndercounts(t *testing.T) {
	geom := testGeom()
	geom.ACTMax = 1 << 30 // avoid filter swaps in this test
	d := MustNewDCBF(geom, testTRH, 1024, 12)
	rng := rand.New(rand.NewSource(5))
	trueCount := make(map[rh.Row]int)
	for i := 0; i < 3000; i++ {
		row := rh.Row(rng.Intn(256))
		trueCount[row]++
		d.Activate(row)
		if est := d.Estimate(row); est < trueCount[row] {
			t.Fatalf("estimate %d < true %d", est, trueCount[row])
		}
	}
}

func TestDCBFResetClearsBlacklist(t *testing.T) {
	d := MustNewDCBF(testGeom(), testTRH, 4096, 13)
	row := rh.Row(4)
	for i := 0; i < 100; i++ {
		d.Activate(row)
	}
	d.ResetWindow()
	if d.Activate(row) {
		t.Fatal("row still blacklisted after reset")
	}
}

// TestAllTrackersImplementInterface pins the interface contract and the
// trivial methods in one place.
func TestAllTrackersImplementInterface(t *testing.T) {
	geom := testGeom()
	trackers := []rh.Tracker{
		MustNewGraphene(geom, testTRH),
		MustNewOCPR(geom, testTRH),
		MustNewPARA(testTRH, 1e-9, 1),
		MustNewCRA(geom, testTRH, 4096, rh.NullSink{}),
		MustNewTWiCE(geom, testTRH, 0),
		MustNewCAT(geom, testTRH, 0),
		MustNewDCBF(geom, testTRH, 0, 1),
	}
	names := map[string]bool{}
	for _, tr := range trackers {
		if tr.Name() == "" || names[tr.Name()] {
			t.Fatalf("bad or duplicate name %q", tr.Name())
		}
		names[tr.Name()] = true
		if tr.SRAMBytes() <= 0 {
			t.Errorf("%s: SRAMBytes = %d", tr.Name(), tr.SRAMBytes())
		}
		if tr.Name() != "cra" && tr.MetaRows() != 0 {
			t.Errorf("%s: unexpected MetaRows %d", tr.Name(), tr.MetaRows())
		}
		if tr.ActivateMeta(0) {
			t.Errorf("%s: ActivateMeta returned true", tr.Name())
		}
		tr.Activate(rh.Row(0))
		tr.ResetWindow()
	}
}
