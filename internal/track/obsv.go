package track

import "repro/internal/obsv"

// This file registers every baseline tracker into the observability
// layer (internal/obsv). Each scheme exports its lifetime counters
// under its own metric family — "graphene.*", "cra.*", "ocpr.*",
// "para.*" — plus the shared "tracker.mitigations" name the harness
// aggregates across schemes. All names are documented in
// docs/METRICS.md.

// CollectInto implements obsv.Source.
func (g *Graphene) CollectInto(r *obsv.Registry) {
	r.Count("graphene.mitigations", g.Mitigations)
	r.Count("tracker.mitigations", g.Mitigations)
	var spill int64
	for i := range g.banks {
		spill += int64(g.banks[i].spillover)
	}
	r.Gauge("graphene.spillover", float64(spill))
}

// CollectInto implements obsv.Source.
func (c *CRA) CollectInto(r *obsv.Registry) {
	r.Count("cra.mitigations", c.Mitigations)
	r.Count("cra.hits", c.Hits)
	r.Count("cra.miss_fetches", c.MissFetches)
	r.Count("cra.writebacks", c.Writebacks)
	r.Count("tracker.mitigations", c.Mitigations)
}

// CollectInto implements obsv.Source.
func (o *OCPR) CollectInto(r *obsv.Registry) {
	r.Count("ocpr.mitigations", o.Mitigations)
	r.Count("tracker.mitigations", o.Mitigations)
}

// CollectInto implements obsv.Source.
func (p *PARA) CollectInto(r *obsv.Registry) {
	r.Count("para.mitigations", p.Mitigations)
	r.Count("tracker.mitigations", p.Mitigations)
}
