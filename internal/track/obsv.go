package track

import "repro/internal/obsv"

// This file registers every baseline tracker into the observability
// layer (internal/obsv). Each scheme exports its lifetime counters
// under its own metric family — "graphene.*", "cra.*", "ocpr.*",
// "para.*" — plus the shared "tracker.mitigations" name the harness
// aggregates across schemes. All names are documented in
// docs/METRICS.md.

// CollectInto implements obsv.Source.
func (g *Graphene) CollectInto(r *obsv.Registry) {
	r.Count("graphene.mitigations", g.Mitigations)
	r.Count("tracker.mitigations", g.Mitigations)
	var spill int64
	for i := range g.banks {
		spill += int64(g.banks[i].spillover)
	}
	r.Gauge("graphene.spillover", float64(spill))
}

// CollectInto implements obsv.Source.
func (c *CRA) CollectInto(r *obsv.Registry) {
	r.Count("cra.mitigations", c.Mitigations)
	r.Count("cra.hits", c.Hits)
	r.Count("cra.miss_fetches", c.MissFetches)
	r.Count("cra.writebacks", c.Writebacks)
	r.Count("tracker.mitigations", c.Mitigations)
}

// CollectInto implements obsv.Source.
func (o *OCPR) CollectInto(r *obsv.Registry) {
	r.Count("ocpr.mitigations", o.Mitigations)
	r.Count("tracker.mitigations", o.Mitigations)
}

// CollectInto implements obsv.Source.
func (p *PARA) CollectInto(r *obsv.Registry) {
	r.Count("para.mitigations", p.Mitigations)
	r.Count("tracker.mitigations", p.Mitigations)
}

// CollectInto implements obsv.Source.
func (s *START) CollectInto(r *obsv.Registry) {
	r.Count("start.mitigations", s.Mitigations)
	r.Count("tracker.mitigations", s.Mitigations)
	r.Gauge("start.spillover", float64(s.pool.spillover))
	r.Gauge("start.occupancy", float64(len(s.pool.entries)))
}

// CollectInto implements obsv.Source.
func (m *MINT) CollectInto(r *obsv.Registry) {
	r.Count("mint.mitigations", m.Mitigations)
	r.Count("tracker.mitigations", m.Mitigations)
}

// CollectInto implements obsv.Source.
func (d *DAPPER) CollectInto(r *obsv.Registry) {
	r.Count("dapper.mitigations", d.Mitigations)
	r.Count("tracker.mitigations", d.Mitigations)
	var spill int64
	for i := range d.banks {
		spill += int64(d.banks[i].spillover)
	}
	r.Gauge("dapper.spillover", float64(spill))
}
