package track

import (
	"fmt"

	"repro/internal/rh"
)

// ProHIT is a functional model of the probabilistic hot-row
// identification table of Son et al. (DAC 2017), one of the two
// probabilistic designs the paper classifies as insecure
// (Section 7.3). A small table is split into a "cold" probation queue
// and a "hot" ranked list:
//
//   - a missing row enters the cold queue with probability pInsert,
//     evicting a random cold entry when full;
//   - a cold hit promotes the row toward (and eventually into) the hot
//     list; a hot hit moves it up one rank;
//   - when the top hot entry is hit, its victims are refreshed and it
//     moves to the bottom of the hot list.
//
// Because insertion and survival are probabilistic and the table is
// tiny, a deterministic attacker interleaving enough one-off rows can
// keep the aggressor from ever ranking up — the attack suite
// demonstrates violations, reproducing the paper's judgment.
type ProHIT struct {
	geom    Geometry
	pInsert uint64 // scaled to 2^32
	banks   []prohitBank
	rng     splitMix64

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
}

type prohitBank struct {
	cold []rh.Row // probation FIFO-ish set
	hot  []rh.Row // ranked: index 0 is the top
}

const (
	prohitColdEntries = 4
	prohitHotEntries  = 4
)

var _ rh.Tracker = (*ProHIT)(nil)

// NewProHIT creates a ProHIT tracker. pInsert is the cold-insertion
// probability (the original uses small values like 1/16).
func NewProHIT(geom Geometry, pInsert float64, seed uint64) (*ProHIT, error) {
	if geom.Rows <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if pInsert <= 0 || pInsert > 1 {
		return nil, fmt.Errorf("track: pInsert must be in (0,1], got %v", pInsert)
	}
	return &ProHIT{
		geom:    geom,
		pInsert: uint64(pInsert * float64(1<<32)),
		banks:   make([]prohitBank, geom.Banks),
		rng:     splitMix64{state: seed},
	}, nil
}

// MustNewProHIT is NewProHIT for statically valid parameters.
func MustNewProHIT(geom Geometry, pInsert float64, seed uint64) *ProHIT {
	t, err := NewProHIT(geom, pInsert, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements rh.Tracker.
func (p *ProHIT) Name() string { return "prohit" }

// Activate implements rh.Tracker.
func (p *ProHIT) Activate(row rh.Row) bool {
	b := &p.banks[p.geom.bank(row)]

	// Hot hit: promote one rank; a top hit mitigates and demotes.
	for i, r := range b.hot {
		if r != row {
			continue
		}
		if i == 0 {
			// Top of the hot list: refresh victims, move to bottom.
			copy(b.hot, b.hot[1:])
			b.hot[len(b.hot)-1] = row
			p.Mitigations++
			return true
		}
		b.hot[i], b.hot[i-1] = b.hot[i-1], b.hot[i]
		return false
	}
	// Cold hit: promote into the hot list (its bottom), pushing the
	// bottom hot entry back to cold.
	for i, r := range b.cold {
		if r != row {
			continue
		}
		if len(b.hot) < prohitHotEntries {
			b.hot = append(b.hot, row)
			b.cold = append(b.cold[:i], b.cold[i+1:]...)
			return false
		}
		demoted := b.hot[len(b.hot)-1]
		b.hot[len(b.hot)-1] = row
		b.cold[i] = demoted
		return false
	}
	// Miss: probabilistic insertion into the cold set.
	if p.rng.next()&0xFFFFFFFF >= p.pInsert {
		return false
	}
	if len(b.cold) < prohitColdEntries {
		b.cold = append(b.cold, row)
		return false
	}
	victim := int(p.rng.next() % uint64(len(b.cold)))
	b.cold[victim] = row
	return false
}

// ActivateMeta implements rh.Tracker; ProHIT has no DRAM metadata.
func (p *ProHIT) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (p *ProHIT) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (p *ProHIT) ResetWindow() {
	for i := range p.banks {
		p.banks[i] = prohitBank{}
	}
}

// SRAMBytes implements rh.Tracker: 8 tagged entries per bank at 4
// bytes each.
func (p *ProHIT) SRAMBytes() int {
	return p.geom.Banks * (prohitColdEntries + prohitHotEntries) * 4
}
