package track

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/rh"
)

// CRA implements Counter-based Row Activation tracking (Kim et al.,
// IEEE CAL 2014; paper Section 2.5): a dedicated counter per row stored
// in a reserved portion of the DRAM space, with a conventional
// line-granularity metadata cache in the memory controller. On an
// activation the counter line must be resident: a metadata-cache miss
// costs a 64-byte read, and evicting a dirty line costs a 64-byte
// write. This frequent extra traffic is what gives CRA its ~25%
// average slowdown (Figure 2).
type CRA struct {
	geom      Geometry
	threshold int
	cacheSize int
	mc        *cache.SetAssoc // line-granularity metadata cache
	counts    []uint16        // authoritative per-row counters (DRAM contents)
	lineEpoch []uint32        // lazy per-window clear of the DRAM table
	epoch     uint32
	sink      rh.MemSink

	// Stats accumulate over the tracker lifetime.
	Mitigations int64
	Hits        int64
	MissFetches int64
	Writebacks  int64
}

const craRowsPerLine = 64 // 1-byte counters, 64-byte lines

var _ rh.Tracker = (*CRA)(nil)

// NewCRA creates a CRA tracker with the given metadata-cache capacity
// in bytes (the paper evaluates 64 KB, 128 KB and 256 KB).
func NewCRA(geom Geometry, trh, cacheBytes int, sink rh.MemSink) (*CRA, error) {
	if geom.Rows <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	lines := cacheBytes / 64
	ways := 16
	if lines < ways {
		ways = lines
	}
	if lines <= 0 || lines%ways != 0 {
		return nil, fmt.Errorf("track: cacheBytes %d must give a positive multiple of %d lines", cacheBytes, ways)
	}
	mc, err := cache.New(lines, ways, cache.LRU)
	if err != nil {
		return nil, fmt.Errorf("track: sizing CRA metadata cache: %w", err)
	}
	return &CRA{
		geom:      geom,
		threshold: mitigationThreshold(trh),
		cacheSize: cacheBytes,
		mc:        mc,
		counts:    make([]uint16, geom.Rows),
		lineEpoch: make([]uint32, (geom.Rows+craRowsPerLine-1)/craRowsPerLine),
		epoch:     1,
		sink:      sink,
	}, nil
}

// MustNewCRA is NewCRA for statically valid parameters.
func MustNewCRA(geom Geometry, trh, cacheBytes int, sink rh.MemSink) *CRA {
	t, err := NewCRA(geom, trh, cacheBytes, sink)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements rh.Tracker.
func (c *CRA) Name() string { return "cra" }

// Threshold returns the operating threshold (T_RH/2).
func (c *CRA) Threshold() int { return c.threshold }

func (c *CRA) line(row rh.Row) uint64 { return uint64(row) / craRowsPerLine }

// ensureEpoch lazily clears a counter line at the first touch of a new
// window, modeling the per-refresh-period counter reset without a
// multi-megabyte scrub.
func (c *CRA) ensureEpoch(line uint64) {
	if c.lineEpoch[line] == c.epoch {
		return
	}
	lo := int(line) * craRowsPerLine
	hi := lo + craRowsPerLine
	if hi > c.geom.Rows {
		hi = c.geom.Rows
	}
	for i := lo; i < hi; i++ {
		c.counts[i] = 0
	}
	c.lineEpoch[line] = c.epoch
}

// Activate implements rh.Tracker.
func (c *CRA) Activate(row rh.Row) bool {
	line := c.line(row)
	c.ensureEpoch(line)
	if _, ok := c.mc.Lookup(line); ok {
		c.Hits++
	} else {
		// Fetch the counter line from DRAM; evicting a dirty line
		// writes it back first.
		c.MissFetches++
		c.sink.MetaRead(line * 64)
		if victim, evicted := c.mc.Insert(line, 0, false); evicted && victim.Dirty {
			c.Writebacks++
			c.sink.MetaWrite(victim.Key * 64)
		}
	}
	c.mc.Update(line, 0) // counter update dirties the cached line
	c.counts[row]++
	if int(c.counts[row]) >= c.threshold {
		c.counts[row] = 0
		c.Mitigations++
		return true
	}
	return false
}

// ActivateMeta implements rh.Tracker. CRA's counter rows are themselves
// DRAM rows; the original proposal does not guard them, which the
// attack suite demonstrates. Guarding them like Hydra's RIT-ACT would
// be a one-line change; we keep the published behaviour and return
// false.
func (c *CRA) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker: 1 byte per row of counters.
func (c *CRA) MetaRows() int {
	rowBytes := 8192
	return (c.geom.Rows + rowBytes - 1) / rowBytes
}

// ResetWindow implements rh.Tracker.
func (c *CRA) ResetWindow() {
	c.mc.Reset()
	c.epoch++
}

// SRAMBytes implements rh.Tracker: only the metadata cache.
func (c *CRA) SRAMBytes() int { return c.cacheSize }

// Count returns the current counter of a row (for tests).
func (c *CRA) Count(row rh.Row) int {
	c.ensureEpoch(c.line(row))
	return int(c.counts[row])
}
