package track

import (
	"fmt"

	"repro/internal/rh"
)

// Graphene implements the Misra-Gries-based tracker of Park et al.
// (MICRO 2020), the paper's SRAM state of the art. Each bank owns a
// table of (row, count) entries plus a spillover counter:
//
//   - a hit increments the entry's count;
//   - a miss, with the table full, replaces an entry whose count
//     equals the spillover counter, inheriting spillover+1 (a
//     conservative overestimate of the new row's true count);
//   - if no entry sits at the spillover floor, the spillover counter
//     itself is incremented.
//
// An entry's estimated count never undercounts the row's true count,
// so issuing a mitigation whenever the estimate advances by the
// operating threshold guarantees detection. Sized per the paper
// (Section 4.1): ceil(ACTMax / (T_RH/2)) entries per bank, about 5441
// at T_RH = 500.
//
// Hardware performs the floor search with a CAM; this implementation
// keeps an exact count->rows index so every operation is O(1), making
// the software model fast enough to drive full-window simulations.
type Graphene struct {
	geom      Geometry
	threshold int // mitigation threshold (T_RH/2)
	perBank   int // entries per bank
	banks     []grapheneBank

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
}

type grapheneEntry struct {
	count     int
	lastMitig int // estimate at the last mitigation
}

type grapheneBank struct {
	entries   map[rh.Row]*grapheneEntry
	byCount   map[int]map[rh.Row]struct{} // count -> resident rows at that count
	spillover int
	capacity  int
}

var _ rh.Tracker = (*Graphene)(nil)

// NewGraphene creates a Graphene tracker for the target T_RH.
func NewGraphene(geom Geometry, trh int) (*Graphene, error) {
	if geom.Rows <= 0 || geom.RowsPerBank <= 0 || geom.ACTMax <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	t := mitigationThreshold(trh)
	perBank := (geom.ACTMax + t - 1) / t
	g := &Graphene{
		geom:      geom,
		threshold: t,
		perBank:   perBank,
		banks:     make([]grapheneBank, geom.Banks),
	}
	for i := range g.banks {
		g.banks[i] = newGrapheneBank(perBank)
	}
	return g, nil
}

func newGrapheneBank(capacity int) grapheneBank {
	return grapheneBank{
		entries:  make(map[rh.Row]*grapheneEntry),
		byCount:  make(map[int]map[rh.Row]struct{}),
		capacity: capacity,
	}
}

// MustNewGraphene is NewGraphene for statically valid parameters.
func MustNewGraphene(geom Geometry, trh int) *Graphene {
	g, err := NewGraphene(geom, trh)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements rh.Tracker.
func (g *Graphene) Name() string { return "graphene" }

// EntriesPerBank returns the table size per bank (5441-ish at T_RH 500).
func (g *Graphene) EntriesPerBank() int { return g.perBank }

// Threshold returns the operating (mitigation) threshold, T_RH/2.
func (g *Graphene) Threshold() int { return g.threshold }

func (b *grapheneBank) setCount(row rh.Row, e *grapheneEntry, newCount int) {
	if set, ok := b.byCount[e.count]; ok {
		delete(set, row)
		if len(set) == 0 {
			delete(b.byCount, e.count)
		}
	}
	e.count = newCount
	set := b.byCount[newCount]
	if set == nil {
		set = make(map[rh.Row]struct{})
		b.byCount[newCount] = set
	}
	set[row] = struct{}{}
}

// Activate implements rh.Tracker.
func (g *Graphene) Activate(row rh.Row) bool {
	b := &g.banks[g.geom.bank(row)]
	if e, ok := b.entries[row]; ok {
		b.setCount(row, e, e.count+1)
		if e.count-e.lastMitig >= g.threshold {
			e.lastMitig = e.count
			g.Mitigations++
			return true
		}
		return false
	}
	if len(b.entries) < b.capacity {
		e := &grapheneEntry{count: -1} // setCount fixes the index
		b.entries[row] = e
		b.setCount(row, e, 1)
		return false
	}
	// Table full: replace a row stranded at the spillover floor.
	if floor, ok := b.byCount[b.spillover]; ok {
		var victim rh.Row
		for victim = range floor {
			break
		}
		ve := b.entries[victim]
		delete(floor, victim)
		if len(floor) == 0 {
			delete(b.byCount, b.spillover)
		}
		delete(b.entries, victim)
		ve.lastMitig = b.spillover
		ve.count = -1
		b.entries[row] = ve
		b.setCount(row, ve, b.spillover+1)
		if ve.count-ve.lastMitig >= g.threshold {
			ve.lastMitig = ve.count
			g.Mitigations++
			return true
		}
		return false
	}
	b.spillover++
	return false
}

// ActivateMeta implements rh.Tracker; Graphene has no DRAM metadata.
func (g *Graphene) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (g *Graphene) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (g *Graphene) ResetWindow() {
	for i := range g.banks {
		g.banks[i] = newGrapheneBank(g.perBank)
	}
}

// SRAMBytes implements rh.Tracker: 4 bytes per CAM entry (row tag plus
// counter), the calibration that reproduces the paper's Table 1 column
// (340 KB per 16-bank rank at T_RH = 500).
func (g *Graphene) SRAMBytes() int {
	return g.perBank * g.geom.Banks * 4
}

// EstimatedCount returns the tracker's estimate for a row: its entry
// count when resident, the spillover floor otherwise. The estimate
// never undercounts the true count.
func (g *Graphene) EstimatedCount(row rh.Row) int {
	b := &g.banks[g.geom.bank(row)]
	if e, ok := b.entries[row]; ok {
		return e.count
	}
	return b.spillover
}
