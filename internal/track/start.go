package track

import (
	"fmt"

	"repro/internal/rh"
)

// START is a functional model of Scalable Tracking for Any Rowhammer
// Threshold (Saxena and Qureshi, arXiv 2308.14889). Where Graphene
// provisions a dedicated per-bank CAM for the worst case, START keeps
// one *pooled* Misra-Gries table for the whole memory controller and
// carves its storage out of the last-level cache on demand — most
// workloads touch a tiny fraction of the worst-case entry count, so
// the borrowed LLC capacity is usually negligible, and the same design
// point re-sizes to any threshold by changing the pool bound alone
// (the "configurable" half of the name).
//
// The model keeps the security-relevant structure exact and abstracts
// the LLC plumbing: a single frequent-row table with a spillover floor
// (the per-bank Graphene algorithm, pooled globally) whose capacity
// defaults to the guarantee sizing ceil(Banks*ACTMax / (T_RH/2)).
// Activations of any bank share the one pool; an entry is (row tag,
// count, floor-at-insertion) exactly as in Graphene, so the estimate
// never undercounts and a mitigation is issued at or before every
// operating-threshold true activations. What is *not* modeled is the
// performance side effect of the borrowed ways (demand lines evicted
// from the LLC); SRAMBytes reports the borrowed bytes so the Tables
// 1/5 machinery can still price the scheme.
//
// Config knob: llcBytes bounds the borrowed pool. Zero selects the
// guarantee sizing; a smaller explicit budget models START's
// configurability and trades the deterministic guarantee for capacity
// (the arena's eviction-storm adversary punishes under-provisioned
// pools, which the tests demonstrate).
type START struct {
	geom      Geometry
	threshold int // mitigation threshold (T_RH/2)
	capacity  int // pooled entries
	pool      grapheneBank

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
	// Evictions counts pool entries displaced by misses over the
	// tracker lifetime. Unlike the spillover floor, which lives in the
	// pool and is wiped by ResetWindow, this survives window resets:
	// nonzero means an explicit LLC budget was exceeded at some point,
	// i.e. any lost tracking is the documented capacity trade-off
	// rather than a logic bug. (The property suite's pressure gate
	// keys off this; a budget-less START never evicts.)
	Evictions int64
	// SpilloverPeak is the highest spillover floor reached over the
	// tracker lifetime, across window resets.
	SpilloverPeak int
}

// startEntryBytes is the LLC cost of one pooled entry: a row tag plus
// count packed into 8 bytes (the model's calibration; the paper stores
// entries at cache-line granularity and reports ~2% LLC in the common
// case).
const startEntryBytes = 8

var _ rh.Tracker = (*START)(nil)

// NewSTART creates a START tracker for the target T_RH. llcBytes
// bounds the LLC capacity borrowed for tracking entries; zero selects
// the guarantee sizing ceil(Banks*ACTMax / (T_RH/2)) entries.
func NewSTART(geom Geometry, trh, llcBytes int) (*START, error) {
	if geom.Rows <= 0 || geom.RowsPerBank <= 0 || geom.ACTMax <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	if llcBytes < 0 {
		return nil, fmt.Errorf("track: negative LLC budget %d", llcBytes)
	}
	t := mitigationThreshold(trh)
	capacity := (geom.Banks*geom.ACTMax + t - 1) / t
	if llcBytes > 0 {
		capacity = llcBytes / startEntryBytes
		if capacity < 1 {
			return nil, fmt.Errorf("track: LLC budget %d B holds no entries", llcBytes)
		}
	}
	return &START{
		geom:      geom,
		threshold: t,
		capacity:  capacity,
		pool:      newGrapheneBank(capacity),
	}, nil
}

// MustNewSTART is NewSTART for statically valid parameters.
func MustNewSTART(geom Geometry, trh, llcBytes int) *START {
	s, err := NewSTART(geom, trh, llcBytes)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements rh.Tracker.
func (s *START) Name() string { return "start" }

// Capacity returns the pooled entry count.
func (s *START) Capacity() int { return s.capacity }

// Threshold returns the operating (mitigation) threshold, T_RH/2.
func (s *START) Threshold() int { return s.threshold }

// Activate implements rh.Tracker. The body is the Graphene update on
// the shared pool: hit increments, miss inserts, a full pool replaces
// a row stranded at the spillover floor or raises the floor.
func (s *START) Activate(row rh.Row) bool {
	b := &s.pool
	if e, ok := b.entries[row]; ok {
		b.setCount(row, e, e.count+1)
		if e.count-e.lastMitig >= s.threshold {
			e.lastMitig = e.count
			s.Mitigations++
			return true
		}
		return false
	}
	if len(b.entries) < b.capacity {
		e := &grapheneEntry{count: -1}
		b.entries[row] = e
		b.setCount(row, e, 1)
		return false
	}
	if floor, ok := b.byCount[b.spillover]; ok {
		s.Evictions++
		var victim rh.Row
		for victim = range floor {
			break
		}
		ve := b.entries[victim]
		delete(floor, victim)
		if len(floor) == 0 {
			delete(b.byCount, b.spillover)
		}
		delete(b.entries, victim)
		ve.lastMitig = b.spillover
		ve.count = -1
		b.entries[row] = ve
		b.setCount(row, ve, b.spillover+1)
		if ve.count-ve.lastMitig >= s.threshold {
			ve.lastMitig = ve.count
			s.Mitigations++
			return true
		}
		return false
	}
	b.spillover++
	if b.spillover > s.SpilloverPeak {
		s.SpilloverPeak = b.spillover
	}
	return false
}

// ActivateMeta implements rh.Tracker; START has no DRAM metadata.
func (s *START) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (s *START) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (s *START) ResetWindow() {
	s.pool = newGrapheneBank(s.capacity)
}

// SRAMBytes implements rh.Tracker: the LLC bytes borrowed for the
// pool at 8 bytes per entry. START dedicates no SRAM of its own; the
// Tables 1/5 machinery still prices the borrowed capacity, since LLC
// ways given to tracking are LLC ways taken from demand data.
func (s *START) SRAMBytes() int {
	return s.capacity * startEntryBytes
}

// Spillover returns the pool's current spillover floor (for tests).
// It is wiped by ResetWindow along with the pool; use SpilloverPeak or
// Evictions for lifetime capacity-pressure evidence.
func (s *START) Spillover() int { return s.pool.spillover }

// EstimatedCount returns the pool's estimate for a row: its entry
// count when resident, the spillover floor otherwise. The estimate
// never undercounts the true count.
func (s *START) EstimatedCount(row rh.Row) int {
	if e, ok := s.pool.entries[row]; ok {
		return e.count
	}
	return s.pool.spillover
}
