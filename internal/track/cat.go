package track

import (
	"fmt"

	"repro/internal/rh"
)

// CAT is a functional model of the Counter-Adaptive-Tree tracker of
// Seyedzadeh et al. (ISCA 2018; paper Section 2.4). Each bank owns a
// binary tree over its row-address range. A node counts activations of
// every row in its range; when the count reaches the per-level split
// threshold and nodes remain in the pool, the node splits, zooming the
// counting resolution toward hot rows. A node covering a single row
// mitigates that row when its count reaches the split threshold.
//
// Security argument mirrored in the tests: a row's true activations
// are bounded by the sum of the counts accumulated along its path, and
// with equal per-level thresholds t = threshold/(depth+1) the sum never
// exceeds the operating threshold before a single-row node mitigates.
// When the node pool is exhausted a multi-row leaf that reaches its
// threshold can only refresh the whole range, recorded in
// UnsafeMitigations: the sizing pressure Table 1 quantifies.
type CAT struct {
	geom      Geometry
	threshold int
	splitAt   int
	poolSize  int
	banks     []catBank

	// Stats accumulate over the tracker lifetime.
	Mitigations       int64
	Splits            int64
	UnsafeMitigations int64 // multi-row leaf mitigations (pool exhausted)
}

type catBank struct {
	root     *catNode
	poolUsed int
}

type catNode struct {
	lo, hi      int // row range [lo, hi)
	count       int
	left, right *catNode
}

var _ rh.Tracker = (*CAT)(nil)

// NewCAT creates a CAT tracker. poolPerBank <= 0 selects the calibrated
// sizing 16*ACTMax/T_RH nodes per bank.
func NewCAT(geom Geometry, trh, poolPerBank int) (*CAT, error) {
	if geom.Rows <= 0 || geom.RowsPerBank <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	t := mitigationThreshold(trh)
	depth := 0
	for (1 << depth) < geom.RowsPerBank {
		depth++
	}
	splitAt := t / (depth + 1)
	if splitAt < 1 {
		splitAt = 1
	}
	if poolPerBank <= 0 {
		poolPerBank = 16 * geom.ACTMax / trh
	}
	c := &CAT{
		geom:      geom,
		threshold: t,
		splitAt:   splitAt,
		poolSize:  poolPerBank,
		banks:     make([]catBank, geom.Banks),
	}
	c.resetBanks()
	return c, nil
}

// MustNewCAT is NewCAT for statically valid parameters.
func MustNewCAT(geom Geometry, trh, poolPerBank int) *CAT {
	c, err := NewCAT(geom, trh, poolPerBank)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *CAT) resetBanks() {
	for i := range c.banks {
		c.banks[i] = catBank{
			root:     &catNode{lo: 0, hi: c.geom.RowsPerBank},
			poolUsed: 1,
		}
	}
}

// Name implements rh.Tracker.
func (c *CAT) Name() string { return "cat" }

// SplitThreshold returns the per-level split/mitigation threshold.
func (c *CAT) SplitThreshold() int { return c.splitAt }

// Activate implements rh.Tracker.
func (c *CAT) Activate(row rh.Row) bool {
	b := &c.banks[c.geom.bank(row)]
	inBank := int(row) % c.geom.RowsPerBank

	// Walk to the deepest node containing the row.
	n := b.root
	for n.left != nil {
		if inBank < n.left.hi {
			n = n.left
		} else {
			n = n.right
		}
	}
	n.count++
	if n.count < c.splitAt {
		return false
	}
	if n.hi-n.lo == 1 {
		// Single-row node: mitigate and restart its count.
		n.count = 0
		c.Mitigations++
		return true
	}
	if b.poolUsed+2 <= c.poolSize {
		mid := (n.lo + n.hi) / 2
		n.left = &catNode{lo: n.lo, hi: mid}
		n.right = &catNode{lo: mid, hi: n.hi}
		b.poolUsed += 2
		c.Splits++
		return false
	}
	// Pool exhausted: the hardware would have to refresh the whole
	// range (or give up). Refreshing a multi-row range is recorded as
	// unsafe because untouched rows in the range consumed threshold
	// budget they never spent.
	n.count = 0
	c.Mitigations++
	c.UnsafeMitigations++
	return true
}

// ActivateMeta implements rh.Tracker; CAT has no DRAM metadata.
func (c *CAT) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (c *CAT) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker.
func (c *CAT) ResetWindow() {
	c.resetBanks()
}

// SRAMBytes implements rh.Tracker: 36 bytes per tree node, the Table 1
// calibration (range bounds, counter, child pointers): 1.5 MB per rank
// at T_RH = 500.
func (c *CAT) SRAMBytes() int {
	return c.poolSize * c.geom.Banks * 36
}
