// Package track implements the row-hammer trackers Hydra is evaluated
// against (paper Sections 2.4, 2.5 and 7):
//
//   - Graphene: Misra-Gries frequent-row tracking in CAM (the SRAM
//     state of the art, Figure 5);
//   - CRA: one counter per row in DRAM with a line-granularity
//     metadata cache (the DRAM-tracking baseline, Figures 2 and 5);
//   - OCPR: one counter per row in SRAM (the idealized upper bound of
//     Table 1);
//   - PARA: stateless probabilistic mitigation;
//   - TWiCE, CAT, D-CBF: functional models used for storage analysis
//     and attack studies;
//   - ProHIT, MRLoC: probabilistic in-queue trackers the attack suite
//     defeats, reproducing the paper's judgment;
//   - START, MINT, DAPPER: post-Hydra successors (arXiv 2308.14889,
//     2407.16038, 2501.18857) for the tracker arena.
//
// All trackers implement rh.Tracker. Like Hydra, they are operated at
// half the target row-hammer threshold to absorb the periodic-reset
// vulnerability (Section 4.6 / footnote 3). docs/TRACKERS.md is the
// user-facing catalog of every scheme in this package.
package track

import "repro/internal/rh"

// Geometry carries the memory-system facts trackers size themselves
// with.
type Geometry struct {
	Rows        int // total rows in the system
	RowsPerBank int
	Banks       int // total banks
	ACTMax      int // maximum activations per bank per refresh window (1.36 M)
}

// BaselineGeometry matches the paper's 32 GB system: 4 M rows over 32
// banks, 1.36 M activations per bank per 64 ms window.
func BaselineGeometry() Geometry {
	return Geometry{
		Rows:        4 * 1024 * 1024,
		RowsPerBank: 131072,
		Banks:       32,
		ACTMax:      1360000,
	}
}

func (g Geometry) bank(row rh.Row) int {
	return int(row) / g.RowsPerBank
}

// mitigationThreshold returns the tracker operating threshold for a
// target T_RH: half, because an attacker can straddle the periodic
// reset (footnote 3).
func mitigationThreshold(trh int) int {
	t := trh / 2
	if t < 1 {
		t = 1
	}
	return t
}
