package track

import (
	"fmt"

	"repro/internal/rh"
)

// MINT is a functional model of the Minimalist In-DRAM Tracker
// (Qureshi, Saxena and Jaleel, arXiv 2407.16038): per bank, a single
// interval counter and a single random slot. Time is divided into
// intervals of W activations; at the start of each interval the bank
// draws a uniform slot s in [0, W), and the row whose activation lands
// at position s is the one mitigated for that interval. With W chosen
// so an aggressor must appear in many intervals to reach T_RH, the
// probability it dodges selection in all of them is negligible — the
// paper shows W = T_RH/4 gives a lower attack success probability than
// PARA at equal mitigation rate, with only ~30 bits of state per bank
// instead of Graphene's kilobytes.
//
// The model keeps the security-relevant mechanism exact (one uniform
// slot per fixed-length interval, deterministic given the seed; the
// mitigation is issued at the slot activation itself) and abstracts
// the in-DRAM engineering (RFM-based mitigation slots, sub-array
// parallelism). Unlike the deterministic trackers MINT is
// probabilistic: a single-row hammer is caught with overwhelming
// probability, but an attacker who dilutes each interval with ~W
// distinct rows gives every row only a ~1/W chance per interval and
// can push a victim past T_RH with small-but-real probability — the
// arena's mint-dilute adversary demonstrates exactly this at
// T_RH = 500.
type MINT struct {
	geom     Geometry
	interval int // W, activations per selection interval
	banks    []mintBank
	rng      splitMix64

	// Mitigations counts mitigations issued over the tracker lifetime.
	Mitigations int64
}

type mintBank struct {
	pos  int // position within the current interval
	slot int // selected position in [0, interval)
}

var _ rh.Tracker = (*MINT)(nil)

// NewMINT creates a MINT tracker for the target T_RH. intervalActs is
// W, the number of activations per selection interval; zero selects
// the paper's default W = T_RH/4 (at least 1).
func NewMINT(geom Geometry, trh, intervalActs int, seed uint64) (*MINT, error) {
	if geom.Rows <= 0 || geom.RowsPerBank <= 0 || geom.Banks <= 0 {
		return nil, fmt.Errorf("track: invalid geometry %+v", geom)
	}
	if trh <= 1 {
		return nil, fmt.Errorf("track: TRH must exceed 1, got %d", trh)
	}
	if intervalActs < 0 {
		return nil, fmt.Errorf("track: negative MINT interval %d", intervalActs)
	}
	if intervalActs == 0 {
		intervalActs = trh / 4
		if intervalActs < 1 {
			intervalActs = 1
		}
	}
	m := &MINT{
		geom:     geom,
		interval: intervalActs,
		banks:    make([]mintBank, geom.Banks),
		rng:      splitMix64{state: seed},
	}
	for i := range m.banks {
		m.banks[i].slot = int(m.rng.next() % uint64(m.interval))
	}
	return m, nil
}

// MustNewMINT is NewMINT for statically valid parameters.
func MustNewMINT(geom Geometry, trh, intervalActs int, seed uint64) *MINT {
	m, err := NewMINT(geom, trh, intervalActs, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements rh.Tracker.
func (m *MINT) Name() string { return "mint" }

// Interval returns W, the activations per selection interval.
func (m *MINT) Interval() int { return m.interval }

// Activate implements rh.Tracker. Each bank counts positions within
// its interval; the activation landing on the pre-drawn slot is the
// interval's mitigation, and the boundary re-draws the slot for the
// next interval.
func (m *MINT) Activate(row rh.Row) bool {
	b := &m.banks[m.geom.bank(row)]
	hit := b.pos == b.slot
	b.pos++
	if b.pos >= m.interval {
		b.pos = 0
		b.slot = int(m.rng.next() % uint64(m.interval))
	}
	if hit {
		m.Mitigations++
	}
	return hit
}

// ActivateMeta implements rh.Tracker; MINT has no DRAM metadata.
func (m *MINT) ActivateMeta(int) bool { return false }

// MetaRows implements rh.Tracker.
func (m *MINT) MetaRows() int { return 0 }

// ResetWindow implements rh.Tracker. MINT carries no per-window
// state; the interval machinery keeps running across windows.
func (m *MINT) ResetWindow() {}

// SRAMBytes implements rh.Tracker: ~30 bits per bank (interval
// position and slot), rounded to 4 bytes.
func (m *MINT) SRAMBytes() int { return 4 * m.geom.Banks }
