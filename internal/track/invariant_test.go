package track

import (
	"math/rand"
	"testing"

	"repro/internal/rh"
)

// Property-based tracker invariant (ROADMAP item 5): for every
// deterministic scheme, under randomized mixes of hammering and
// background traffic, a mitigation must be issued at-or-before every
// T_RH true activations of any row. Probabilistic schemes (PARA,
// MINT, ProHIT, MRLoC) cannot satisfy this deterministically and are
// covered by fixed-seed statistical tests instead.

type invariantCase struct {
	name string
	make func(geom Geometry, trh int) rh.Tracker
}

func invariantTrackers() []invariantCase {
	return []invariantCase{
		{"graphene", func(g Geometry, trh int) rh.Tracker { return MustNewGraphene(g, trh) }},
		{"start", func(g Geometry, trh int) rh.Tracker { return MustNewSTART(g, trh, 0) }},
		{"dapper", func(g Geometry, trh int) rh.Tracker { return MustNewDAPPER(g, trh) }},
		{"ocpr", func(g Geometry, trh int) rh.Tracker { return MustNewOCPR(g, trh) }},
	}
}

// randomizedWorkload drives acts activations: a set of aggressors
// hammered with per-row weights, against background rows drawn from
// the whole address space, asserting the invariant on every step.
func assertMitigationInvariant(t *testing.T, tr rh.Tracker, geom Geometry, trh int, rng *rand.Rand, acts int) {
	t.Helper()
	aggressors := make([]rh.Row, 1+rng.Intn(8))
	for i := range aggressors {
		aggressors[i] = rh.Row(rng.Intn(geom.Rows))
	}
	hammerFrac := 2 + rng.Intn(5) // hammer 1/hammerFrac of the time
	trueCount := make(map[rh.Row]int)
	for i := 0; i < acts; i++ {
		var row rh.Row
		if i%hammerFrac == 0 {
			row = aggressors[rng.Intn(len(aggressors))]
		} else {
			row = rh.Row(rng.Intn(geom.Rows))
		}
		trueCount[row]++
		if tr.Activate(row) {
			trueCount[row] = 0
		}
		if trueCount[row] >= trh {
			t.Fatalf("%s: row %d reached %d true activations without mitigation (act %d)",
				tr.Name(), row, trueCount[row], i)
		}
	}
}

func TestTrackerMitigationInvariant(t *testing.T) {
	geom := testGeom()
	for _, tc := range invariantTrackers() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(1000*trial + 17)))
				tr := tc.make(geom, testTRH)
				assertMitigationInvariant(t, tr, geom, testTRH, rng, geom.ACTMax)
			}
		})
	}
}

// TestTrackerMitigationInvariantUltraLow re-checks the invariant at
// the paper's ultra-low threshold on a scaled geometry, where table
// sizing is under the most pressure.
func TestTrackerMitigationInvariantUltraLow(t *testing.T) {
	geom := Geometry{Rows: 4096, RowsPerBank: 512, Banks: 8, ACTMax: 40000}
	const trh = 64
	for _, tc := range invariantTrackers() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				rng := rand.New(rand.NewSource(int64(77*trial + 5)))
				tr := tc.make(geom, trh)
				assertMitigationInvariant(t, tr, geom, trh, rng, geom.ACTMax)
			}
		})
	}
}

// TestMINTStatisticalInvariant is MINT's stand-in for the
// deterministic invariant: with a fixed seed, a naive hammer must
// never accumulate T_RH true activations (each interval it owns every
// slot), even though the dilution adversary can evade (see
// TestMINTDilutionEvadesAtUltraLowThreshold).
func TestMINTStatisticalInvariant(t *testing.T) {
	geom := testGeom()
	m := MustNewMINT(geom, testTRH, 0, 9)
	row := rh.Row(11)
	trueCount := 0
	for i := 0; i < geom.ACTMax; i++ {
		trueCount++
		if m.Activate(row) {
			trueCount = 0
		}
		if trueCount >= testTRH {
			t.Fatalf("naive hammer reached %d true activations at act %d", trueCount, i)
		}
	}
}
