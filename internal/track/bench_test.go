package track

import (
	"testing"

	"repro/internal/rh"
)

// BenchmarkGrapheneActivate measures the Misra-Gries update, the
// operation a CAM performs in one cycle in hardware.
func BenchmarkGrapheneActivate(b *testing.B) {
	g := MustNewGraphene(BaselineGeometry(), 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Activate(rh.Row(uint32(i*31) % (4 * 1024 * 1024)))
	}
}

// BenchmarkGrapheneThrash measures the replacement-heavy regime an
// attacker induces.
func BenchmarkGrapheneThrash(b *testing.B) {
	geom := BaselineGeometry()
	g := MustNewGraphene(geom, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Activate(rh.Row(uint32(i) % uint32(geom.RowsPerBank))) // one bank, wide footprint
	}
}

// BenchmarkCRAActivate measures a counter update through the metadata
// cache.
func BenchmarkCRAActivate(b *testing.B) {
	c := MustNewCRA(BaselineGeometry(), 500, 64*1024, rh.NullSink{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Activate(rh.Row(uint32(i*31) % (4 * 1024 * 1024)))
	}
}

// BenchmarkOCPRActivate is the exact-counter lower bound.
func BenchmarkOCPRActivate(b *testing.B) {
	o := MustNewOCPR(BaselineGeometry(), 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Activate(rh.Row(uint32(i*31) % (4 * 1024 * 1024)))
	}
}

// BenchmarkDCBFActivate measures the triple-hash dual-filter update.
func BenchmarkDCBFActivate(b *testing.B) {
	d := MustNewDCBF(BaselineGeometry(), 500, 0, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Activate(rh.Row(uint32(i*31) % (4 * 1024 * 1024)))
	}
}
