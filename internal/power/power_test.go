package power

import (
	"math"
	"testing"

	"repro/internal/memsim"
)

func TestHydraSRAMMatchesPaper(t *testing.T) {
	p := HydraSRAM()
	if p.GCTmW != 10.6 || p.RCCmW != 8.0 {
		t.Fatalf("SRAM power = %+v, want 10.6/8.0", p)
	}
	if got := p.TotalMW(); math.Abs(got-18.6) > 1e-9 {
		t.Fatalf("total = %v, want 18.6 mW", got)
	}
}

func TestScaledSRAM(t *testing.T) {
	p := ScaledSRAM(64*1024, 16*1024) // 2x structures
	if math.Abs(p.GCTmW-21.2) > 1e-9 || math.Abs(p.RCCmW-16.0) > 1e-9 {
		t.Fatalf("scaled = %+v", p)
	}
}

func TestDRAMEnergyBreakdown(t *testing.T) {
	s := memsim.Stats{
		Reads:      1000,
		Writes:     300,
		MetaReads:  10,
		MetaWrites: 10,
		MitigActs:  4,
		Activates:  500,
		Refreshes:  8,
	}
	b := DRAMEnergy(DefaultDRAM(), s, 3_200_000, 2) // 1 ms
	if b.Total() <= 0 {
		t.Fatal("non-positive total energy")
	}
	// Background: 120 mW x 2 channels x 1 ms = 240 uJ = 240000 nJ.
	if math.Abs(b.BackgroundNJ-240000) > 1 {
		t.Fatalf("background = %v nJ, want 240000", b.BackgroundNJ)
	}
	// Tracker overhead must be small but positive.
	pct := b.TrackerOverheadPct()
	if pct <= 0 || pct > 5 {
		t.Fatalf("tracker overhead = %v%%", pct)
	}
}

func TestTrackerOverheadScalesWithMetaTraffic(t *testing.T) {
	base := memsim.Stats{Reads: 100000, Activates: 50000, Refreshes: 100}
	light := base
	light.MetaReads, light.MetaWrites, light.MitigActs = 100, 100, 10
	heavy := base
	heavy.MetaReads, heavy.MetaWrites, heavy.MitigActs = 50000, 50000, 1000

	lp := DRAMEnergy(DefaultDRAM(), light, 32_000_000, 2).TrackerOverheadPct()
	hp := DRAMEnergy(DefaultDRAM(), heavy, 32_000_000, 2).TrackerOverheadPct()
	if hp <= lp {
		t.Fatalf("heavy meta traffic overhead (%v%%) not above light (%v%%)", hp, lp)
	}
}

func TestZeroRunHasZeroOverhead(t *testing.T) {
	b := DRAMEnergy(DefaultDRAM(), memsim.Stats{}, 0, 2)
	if b.TrackerOverheadPct() != 0 {
		t.Fatal("empty run has tracker overhead")
	}
}
