// Package power reproduces the paper's power analysis (Section 6.8):
//
//   - DRAM power from a Micron-style IDD model: per-operation energy
//     for activate/precharge pairs, read and write bursts, refresh,
//     plus background power, computed from a run's memsim statistics.
//     Hydra's DRAM overhead is the extra energy of RCT accesses and
//     victim-refresh activations; the paper reports ~0.2%.
//   - SRAM power for the new structures from CACTI-calibrated
//     constants at 22 nm: 10.6 mW for the GCT and 8 mW for the RCC
//     (18.6 mW total).
package power

import "repro/internal/memsim"

// DRAMEnergyModel holds per-operation energies in picojoules and
// background power in milliwatts, calibrated to a DDR4-3200 x8 Micron
// datasheet (values rounded; only ratios matter for the overhead
// percentages the paper reports).
type DRAMEnergyModel struct {
	ActPrePJ     float64 // one activate+precharge pair
	ReadPJ       float64 // one 64-byte read burst
	WritePJ      float64 // one 64-byte write burst
	RefreshPJ    float64 // one all-bank refresh command
	BackgroundMW float64 // static background power per channel
}

// DefaultDRAM returns the calibrated DDR4 energy model.
func DefaultDRAM() DRAMEnergyModel {
	return DRAMEnergyModel{
		ActPrePJ:     2500,
		ReadPJ:       2100,
		WritePJ:      2300,
		RefreshPJ:    28000,
		BackgroundMW: 120,
	}
}

// Breakdown itemizes a run's DRAM energy in nanojoules.
type Breakdown struct {
	ActivateNJ   float64
	ReadNJ       float64
	WriteNJ      float64
	RefreshNJ    float64
	BackgroundNJ float64

	// Overhead components attributable to row-hammer tracking.
	MetaNJ  float64 // RCT / counter line transfers
	MitigNJ float64 // victim-refresh activations
}

// Total returns the total DRAM energy in nanojoules.
func (b Breakdown) Total() float64 {
	return b.ActivateNJ + b.ReadNJ + b.WriteNJ + b.RefreshNJ + b.BackgroundNJ
}

// TrackerOverheadPct returns the fraction of total DRAM energy spent
// on tracking metadata and mitigation, in percent (the paper's ~0.2%).
func (b Breakdown) TrackerOverheadPct() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.MetaNJ + b.MitigNJ) / t * 100
}

// DRAMEnergy computes the energy breakdown of a run from its memory
// statistics, cycle count (3.2 GHz cycles) and channel count.
func DRAMEnergy(m DRAMEnergyModel, s memsim.Stats, cycles int64, channels int) Breakdown {
	var b Breakdown
	pj := func(x float64) float64 { return x / 1000 } // pJ -> nJ

	b.ActivateNJ = pj(float64(s.Activates) * m.ActPrePJ)
	b.ReadNJ = pj(float64(s.Reads+s.MetaReads) * m.ReadPJ)
	b.WriteNJ = pj(float64(s.Writes+s.MetaWrites) * m.WritePJ)
	b.RefreshNJ = pj(float64(s.Refreshes) * m.RefreshPJ)
	seconds := float64(cycles) / 3.2e9
	b.BackgroundNJ = m.BackgroundMW * float64(channels) * seconds * 1e6 // mW*s = mJ = 1e6 nJ

	b.MetaNJ = pj(float64(s.MetaReads)*m.ReadPJ + float64(s.MetaWrites)*m.WritePJ)
	b.MitigNJ = pj(float64(s.MitigActs) * m.ActPrePJ)
	return b
}

// SRAMPower holds the CACTI-calibrated 22 nm power of Hydra's new
// structures (Section 6.8), in milliwatts.
type SRAMPower struct {
	GCTmW float64
	RCCmW float64
}

// HydraSRAM returns the paper's numbers: 10.6 mW GCT + 8 mW RCC.
func HydraSRAM() SRAMPower {
	return SRAMPower{GCTmW: 10.6, RCCmW: 8.0}
}

// TotalMW returns the combined SRAM power.
func (p SRAMPower) TotalMW() float64 { return p.GCTmW + p.RCCmW }

// ScaledSRAM scales the structure power linearly with capacity
// relative to the default 32 K-entry GCT and 8 K-entry RCC, a first-
// order CACTI approximation used for the sensitivity studies.
func ScaledSRAM(gctEntries, rccEntries int) SRAMPower {
	base := HydraSRAM()
	return SRAMPower{
		GCTmW: base.GCTmW * float64(gctEntries) / (32 * 1024),
		RCCmW: base.RCCmW * float64(rccEntries) / (8 * 1024),
	}
}
