package attack

import (
	"repro/internal/rh"
)

// MetaGuard is the slice of rh.Tracker the counter-row attack needs.
type MetaGuard interface {
	ActivateMeta(metaRow int) bool
}

// MetaRowSink mounts the counter-row attack surface (Section 5.2.2):
// it converts every metadata line transfer a tracker issues into an
// activation of the DRAM row holding that line — the conservative
// worst case where no two consecutive transfers hit an open row — and
// feeds the activation back to the tracker's metadata guard (Hydra's
// RIT-ACT). The oracle sees the metadata rows under synthetic global
// row ids starting at MetaBase so violations are attributable.
type MetaRowSink struct {
	RowBytes int
	Guard    MetaGuard // set after constructing the tracker
	Oracle   *Oracle
	MetaBase rh.Row

	Mitigations int64
	Transfers   int64
}

var _ rh.MemSink = (*MetaRowSink)(nil)

// MetaRead implements rh.MemSink.
func (s *MetaRowSink) MetaRead(off uint64) { s.act(off) }

// MetaWrite implements rh.MemSink.
func (s *MetaRowSink) MetaWrite(off uint64) { s.act(off) }

func (s *MetaRowSink) act(off uint64) {
	s.Transfers++
	metaRow := int(off / uint64(s.RowBytes))
	if s.Oracle != nil {
		s.Oracle.Activated(s.MetaBase + rh.Row(metaRow))
	}
	if s.Guard != nil && s.Guard.ActivateMeta(metaRow) {
		s.Mitigations++
		if s.Oracle != nil {
			s.Oracle.Mitigated(s.MetaBase + rh.Row(metaRow))
		}
	}
}
