package attack

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mitigate"
	"repro/internal/rh"
	"repro/internal/track"
)

const (
	testTRH   = 100
	testRows  = 4096
	testRPB   = 1024 // rows per bank: 4 banks
	testBanks = 4
)

func testGeom() track.Geometry {
	return track.Geometry{Rows: testRows, RowsPerBank: testRPB, Banks: testBanks, ACTMax: 20000}
}

func smallHydra(t *testing.T) *core.Tracker {
	t.Helper()
	return core.MustNew(core.Config{
		Rows:       testRows,
		TRH:        testTRH,
		GCTEntries: 32,
		RCCEntries: 64,
		RCCWays:    8,
		RowBytes:   8192,
	}, rh.NullSink{})
}

func runCfg() Config {
	return Config{TRH: testTRH, RowsPerBank: testRPB, ActsPerWin: 10000, Windows: 2}
}

// TestHydraSurvivesClassicPatterns drives every classic hammer pattern
// against Hydra across two windows (including the reset-straddling
// exposure) and requires zero oracle violations: the executable form of
// Theorem 1.
func TestHydraSurvivesClassicPatterns(t *testing.T) {
	patterns := []func() Pattern{
		func() Pattern { return &SingleSided{Target: 500} },
		func() Pattern { return &DoubleSided{Victim: 500} },
		func() Pattern { return &ManySided{Base: 500, Sides: 8} },
		func() Pattern { return &ManySided{Base: 500, Sides: 19, Spacing: 3} },
		func() Pattern { return &HalfDouble{Victim: 500} },
		func() Pattern {
			return &Thrash{
				Target:     500,
				Distractor: func(i int) rh.Row { return rh.Row(i*7) % testRows },
				Spread:     1500,
				HammerEach: 3,
			}
		},
	}
	for _, mk := range patterns {
		p := mk()
		res := Run(smallHydra(t), p, runCfg())
		if !res.Safe() {
			t.Errorf("hydra broken by %s: %d violations, first %+v",
				p.Name(), len(res.Violations), res.Violations[0])
		}
		if res.MaxUnmitig >= testTRH {
			t.Errorf("%s: max unmitigated count %d >= TRH", p.Name(), res.MaxUnmitig)
		}
	}
}

func TestGrapheneAndOCPRSurviveThrash(t *testing.T) {
	thrash := func() Pattern {
		return &Thrash{
			Target:     500,
			Distractor: func(i int) rh.Row { return rh.Row(i) % testRPB }, // same bank
			Spread:     1000,
			HammerEach: 3,
		}
	}
	for _, tr := range []rh.Tracker{
		track.MustNewGraphene(testGeom(), testTRH),
		track.MustNewOCPR(testGeom(), testTRH),
	} {
		res := Run(tr, thrash(), runCfg())
		if !res.Safe() {
			t.Errorf("%s broken by thrash: %+v", tr.Name(), res.Violations[0])
		}
	}
}

// TestUndersizedTWiCEBreaksUnderThrash demonstrates the TRRespass
// weakness the paper describes (Section 2.4): a tracker without enough
// entries loses the aggressor when the table is thrashed.
func TestUndersizedTWiCEBreaksUnderThrash(t *testing.T) {
	tw := track.MustNewTWiCE(testGeom(), testTRH, 8) // far too small
	p := &Thrash{
		Target:     rh.Row(500),
		Distractor: func(i int) rh.Row { return rh.Row(i) % testRPB },
		Spread:     900,
		HammerEach: 2,
	}
	res := Run(tw, p, runCfg())
	if res.Safe() {
		t.Fatal("undersized TWiCE survived thrashing; expected violations")
	}
	if tw.Overflows == 0 {
		t.Fatal("expected table overflows during thrash")
	}
}

// TestHalfDoubleNeedsFeedback shows why mitigation-induced activations
// must be counted (Section 5.2.1): with feedback Hydra is safe; with a
// broken refresher that hides victim refreshes from the tracker, the
// distance-one rows accumulate unmitigated refresh-activations and the
// oracle flags them.
func TestHalfDoubleNeedsFeedback(t *testing.T) {
	// Broken variant: victim refreshes bypass the tracker.
	h := smallHydra(t)
	oracle := NewOracle(testTRH)
	p := &HalfDouble{Victim: 500}
	for i := 0; i < 40000; i++ {
		row := p.Next()
		oracle.Activated(row)
		if h.Activate(row) {
			oracle.Mitigated(row)
			for _, v := range mitigate.Victims(row, 2, testRPB) {
				// The refresh happens (oracle sees the activation)
				// but the tracker is never told.
				oracle.Activated(v)
			}
		}
	}
	oracle.Finish()
	if oracle.Safe() {
		t.Fatal("feedback-free mitigation survived Half-Double; the oracle should catch it")
	}

	// Correct variant (Run uses the real Refresher): safe.
	res := Run(smallHydra(t), &HalfDouble{Victim: 500}, runCfg())
	if !res.Safe() {
		t.Fatalf("hydra with feedback broken by half-double: %+v", res.Violations[0])
	}
}

// TestCounterRowAttack mounts Section 5.2.2's attack on the RCT rows:
// thrash the RCC so every activation turns into RCT line transfers,
// hammering the metadata rows. Hydra's RIT-ACT guard must keep the
// metadata rows mitigated; a tracker without the guard (CRA) is broken.
func TestCounterRowAttack(t *testing.T) {
	oracle := NewOracle(testTRH)
	sink := &MetaRowSink{RowBytes: 8192, Oracle: oracle, MetaBase: rh.Row(testRows)}
	h := core.MustNew(core.Config{
		Rows:       testRows,
		TRH:        testTRH,
		GCTEntries: 32,
		RCCEntries: 8, // tiny RCC so metadata traffic is constant
		RCCWays:    8,
		RowBytes:   8192,
	}, sink)
	sink.Guard = h

	// Saturate many groups, then cycle rows to thrash the RCC.
	for g := 0; g < 16; g++ {
		for i := 0; i < 40; i++ {
			oracle.Activated(rh.Row(g * 128))
			if h.Activate(rh.Row(g * 128)) {
				oracle.Mitigated(rh.Row(g * 128))
			}
		}
	}
	for i := 0; i < 30000; i++ {
		row := rh.Row((i % 16) * 128)
		oracle.Activated(row)
		if h.Activate(row) {
			oracle.Mitigated(row)
		}
	}
	oracle.Finish()
	if sink.Transfers == 0 {
		t.Fatal("attack produced no metadata traffic")
	}
	if sink.Mitigations == 0 {
		t.Fatal("RIT-ACT never mitigated the hammered metadata rows")
	}
	if !oracle.Safe() {
		t.Fatalf("hydra metadata rows broken: %+v", oracle.Violations[0])
	}

	// CRA has no metadata guard: the same pressure breaks its rows.
	oracle2 := NewOracle(testTRH)
	sink2 := &MetaRowSink{RowBytes: 8192, Oracle: oracle2, MetaBase: rh.Row(testRows)}
	c := track.MustNewCRA(testGeom(), testTRH, 256, sink2)
	sink2.Guard = c
	for i := 0; i < 30000; i++ {
		row := rh.Row((i * 64) % testRows) // one line per activation
		oracle2.Activated(row)
		if c.Activate(row) {
			oracle2.Mitigated(row)
		}
	}
	oracle2.Finish()
	if oracle2.Safe() {
		t.Fatal("CRA counter rows survived hammering; expected violations (no RIT-ACT)")
	}
}

// TestOracleWindowSemantics checks the two-window accounting: TRH/2-1
// activations on each side of a reset must stay safe, while TRH
// activations inside one window with no mitigation must not.
func TestOracleWindowSemantics(t *testing.T) {
	o := NewOracle(100)
	row := rh.Row(5)
	for i := 0; i < 49; i++ {
		o.Activated(row)
	}
	o.WindowReset()
	for i := 0; i < 50; i++ {
		o.Activated(row)
	}
	o.Finish()
	if !o.Safe() {
		t.Fatalf("49+50 straddling acts flagged: %+v", o.Violations)
	}
	if o.MaxSeen != 99 {
		t.Fatalf("MaxSeen = %d, want 99", o.MaxSeen)
	}

	o2 := NewOracle(100)
	for i := 0; i < 100; i++ {
		o2.Activated(row)
	}
	o2.Finish()
	if o2.Safe() {
		t.Fatal("100 unmitigated acts not flagged")
	}
}

// TestOracleMitigationAtThresholdIsSafe pins the "at or before"
// semantics of Theorem 1.
func TestOracleMitigationAtThresholdIsSafe(t *testing.T) {
	o := NewOracle(100)
	row := rh.Row(5)
	for i := 0; i < 100; i++ {
		o.Activated(row)
	}
	o.Mitigated(row) // same event as the 100th activation
	o.Finish()
	if !o.Safe() {
		t.Fatalf("mitigation at the threshold activation flagged: %+v", o.Violations)
	}
	// A window boundary between crossing and mitigation commits it.
	o3 := NewOracle(100)
	for i := 0; i < 100; i++ {
		o3.Activated(row)
	}
	o3.WindowReset()
	if o3.Safe() {
		t.Fatal("unmitigated crossing survived a window boundary")
	}
}

// TestPARAIsProbabilistic shows PARA has no guarantee: with a weak
// probability it misses, with the derived probability it usually holds.
func TestPARAIsProbabilistic(t *testing.T) {
	weak := track.MustNewPARA(testTRH, 0.9, 7) // p ~ 0.001
	res := Run(weak, &SingleSided{Target: 500}, runCfg())
	if res.Safe() {
		t.Fatal("weak PARA survived 20000 hammers; expected misses")
	}
	strong := track.MustNewPARA(testTRH, 1e-12, 7) // p ~ 0.24
	res = Run(strong, &SingleSided{Target: 500}, runCfg())
	if !res.Safe() {
		t.Fatalf("strong PARA broken (possible but ~1e-8 unlikely): %+v", res.Violations[0])
	}
}

func TestResultString(t *testing.T) {
	res := Run(smallHydra(t), &SingleSided{Target: 500}, runCfg())
	if s := res.String(); s == "" {
		t.Fatal("empty summary")
	}
	if res.Mitigations == 0 || res.TotalActs < res.DemandActs {
		t.Fatalf("implausible result: %+v", res)
	}
}

// TestProbabilisticTrackersBreakUnderThrash reproduces Section 7.3's
// judgment: the probabilistic designs (ProHIT, MRLoC) have no
// guarantee, and a thrash pattern that keeps flushing their tiny
// tables lets the aggressor through. Hydra survives the identical
// pattern.
func TestProbabilisticTrackersBreakUnderThrash(t *testing.T) {
	mk := func() Pattern {
		return &Thrash{
			Target:     rh.Row(4),
			Distractor: func(i int) rh.Row { return rh.Row(5 + i) },
			Spread:     900,
			HammerEach: 10, // queue-flushing spacing
		}
	}
	cfg := runCfg()
	for _, tr := range []rh.Tracker{
		track.MustNewProHIT(testGeom(), 1.0/16, 7),
		track.MustNewMRLoC(testGeom(), 7),
	} {
		res := Run(tr, mk(), cfg)
		if res.Safe() {
			t.Errorf("%s survived the flush pattern; expected violations", tr.Name())
		}
	}
	if res := Run(smallHydra(t), mk(), cfg); !res.Safe() {
		t.Errorf("hydra broken by the same pattern: %+v", res.Violations[0])
	}
}

// TestRandomizedAdversarySearch is a light adversarial search: many
// random structured attack mixes (hammer rate, distractor spread,
// multi-target sets) run against Hydra — all must stay safe — and
// against MRLoC, where a healthy fraction should break, confirming the
// search generates meaningful pressure.
func TestRandomizedAdversarySearch(t *testing.T) {
	type mix struct {
		targets int
		spread  int
		each    int
	}
	rng := rand.New(rand.NewSource(2026))
	broken := 0
	trials := 30
	for i := 0; i < trials; i++ {
		m := mix{
			targets: 1 + rng.Intn(4),
			spread:  50 + rng.Intn(900),
			each:    2 + rng.Intn(12),
		}
		base := rh.Row(rng.Intn(512))
		mk := func() Pattern {
			return &Thrash{
				Target:     base,
				Distractor: func(j int) rh.Row { return (base + 1 + rh.Row(rng.Intn(testRPB-1))) % rh.Row(testRows) },
				Spread:     m.spread,
				HammerEach: m.each,
			}
		}
		if res := Run(smallHydra(t), mk(), runCfg()); !res.Safe() {
			t.Fatalf("hydra broken by random mix %+v: %+v", m, res.Violations[0])
		}
		if res := Run(track.MustNewMRLoC(testGeom(), uint64(i)), mk(), runCfg()); !res.Safe() {
			broken++
		}
	}
	if broken == 0 {
		t.Error("no random mix broke MRLoC; the adversary search is toothless")
	}
	t.Logf("MRLoC broken by %d/%d random mixes; Hydra by none", broken, trials)
}
