// Package attack implements the paper's security evaluation
// (Section 5): a suite of row-hammer access patterns (single-sided,
// double-sided, many-sided, Half-Double, TRRespass-style thrashing and
// the counter-row attack on DRAM-resident metadata) plus an Oracle
// that records true per-row activation counts and flags any row that
// accumulates the row-hammer threshold without a mitigation.
//
// The oracle encodes the paper's threat model exactly: a successful
// attack requires activating at least one row T_RH or more times
// within a refresh period without an intervening mitigation. Because
// trackers are operated at T_RH/2 (the reset-straddling allowance,
// Section 4.6), the oracle is *not* reset at window boundaries — an
// attacker who splits activations across a reset must still be caught.
package attack

import (
	"fmt"

	"repro/internal/mitigate"
	"repro/internal/rh"
)

// Violation records a row that reached the threshold unmitigated.
type Violation struct {
	Row   rh.Row
	Count int // true activations since the last mitigation
	Step  int // demand-activation index at which it happened
}

// Oracle tracks true activation counts per row and detects violations.
// It implements mitigate.Observer.
//
// Window semantics: a DRAM row is refreshed once per 64 ms refresh
// period, staggered relative to the tracker's reset, so the hammer
// damage a row can accumulate spans at most two consecutive tracking
// windows (the reasoning behind Theorem 1's T_H = T_RH/2). The oracle
// therefore sums the row's unmitigated activations over the current
// and the previous window. Call WindowReset at each tracker reset.
//
// Ordering: a mitigation issued in response to the very activation
// that reaches the threshold is safe ("at or before" in Theorem 1), so
// a threshold crossing only becomes a violation if the tracker did not
// mitigate the row within the same activation event.
type Oracle struct {
	trh  int
	cur  map[rh.Row]int // unmitigated acts this window
	prev map[rh.Row]int // unmitigated acts last window
	step int

	pending    bool
	pendingRow rh.Row
	pendingCnt int

	Violations []Violation
	TotalActs  int64
	MaxSeen    int // highest unmitigated two-window count observed
}

var _ mitigate.Observer = (*Oracle)(nil)

// NewOracle creates an oracle for the given row-hammer threshold.
func NewOracle(trh int) *Oracle {
	if trh <= 1 {
		panic(fmt.Sprintf("attack: TRH must exceed 1, got %d", trh))
	}
	return &Oracle{trh: trh, cur: make(map[rh.Row]int), prev: make(map[rh.Row]int)}
}

// Step advances the demand-activation index used in violation reports.
func (o *Oracle) Step() { o.step++ }

func (o *Oracle) commitPending() {
	if o.pending {
		o.Violations = append(o.Violations,
			Violation{Row: o.pendingRow, Count: o.pendingCnt, Step: o.step})
		// Clear the row so one broken row does not flood the report.
		delete(o.cur, o.pendingRow)
		delete(o.prev, o.pendingRow)
		o.pending = false
	}
}

// Activated implements mitigate.Observer.
func (o *Oracle) Activated(row rh.Row) {
	o.commitPending()
	o.TotalActs++
	o.cur[row]++
	c := o.cur[row] + o.prev[row]
	if c > o.MaxSeen {
		o.MaxSeen = c
	}
	if c >= o.trh {
		o.pending = true
		o.pendingRow = row
		o.pendingCnt = c
	}
}

// Mitigated implements mitigate.Observer.
func (o *Oracle) Mitigated(row rh.Row) {
	if o.pending && o.pendingRow == row {
		o.pending = false
	}
	delete(o.cur, row)
	delete(o.prev, row)
}

// WindowReset rolls the window: the current counts become the previous
// window's, matching the staggered-refresh threat model.
func (o *Oracle) WindowReset() {
	o.commitPending()
	o.prev = o.cur
	o.cur = make(map[rh.Row]int)
}

// Finish commits any pending violation; call once after the last
// activation.
func (o *Oracle) Finish() { o.commitPending() }

// Safe reports whether no violation was observed.
func (o *Oracle) Safe() bool { return len(o.Violations) == 0 }

// Pattern produces an endless stream of demand-activation targets.
type Pattern interface {
	Name() string
	Next() rh.Row
}

// SingleSided hammers one aggressor row.
type SingleSided struct{ Target rh.Row }

// Name implements Pattern.
func (s *SingleSided) Name() string { return "single-sided" }

// Next implements Pattern.
func (s *SingleSided) Next() rh.Row { return s.Target }

// DoubleSided alternates between the two aggressors sandwiching a
// victim row.
type DoubleSided struct {
	Victim rh.Row
	i      int
}

// Name implements Pattern.
func (d *DoubleSided) Name() string { return "double-sided" }

// Next implements Pattern.
func (d *DoubleSided) Next() rh.Row {
	d.i++
	if d.i%2 == 0 {
		return d.Victim - 1
	}
	return d.Victim + 1
}

// ManySided cycles over n aggressors spaced around a base row, the
// TRR-defeating pattern of TRRespass.
type ManySided struct {
	Base    rh.Row
	Sides   int
	Spacing int
	i       int
}

// Name implements Pattern.
func (m *ManySided) Name() string { return fmt.Sprintf("%d-sided", m.Sides) }

// Next implements Pattern.
func (m *ManySided) Next() rh.Row {
	spacing := m.Spacing
	if spacing == 0 {
		spacing = 2
	}
	r := m.Base + rh.Row((m.i%m.Sides)*spacing)
	m.i++
	return r
}

// HalfDouble hammers the rows at distance two from the victim, relying
// on the mitigations of the distance-one neighbours to hammer the
// victim indirectly (Section 5.2.1 / Section 7.4).
type HalfDouble struct {
	Victim rh.Row
	i      int
}

// Name implements Pattern.
func (h *HalfDouble) Name() string { return "half-double" }

// Next implements Pattern.
func (h *HalfDouble) Next() rh.Row {
	h.i++
	if h.i%2 == 0 {
		return h.Victim - 2
	}
	return h.Victim + 2
}

// Thrash interleaves hammering a target with touches of many
// distractor rows, the pattern that defeats under-provisioned SRAM
// trackers (TRRespass, Section 2.4).
type Thrash struct {
	Target     rh.Row
	Distractor func(i int) rh.Row // i-th distractor row
	Spread     int                // number of distractors
	HammerEach int                // hammer frequency: 1 target act per HammerEach acts
	i          int
}

// Name implements Pattern.
func (t *Thrash) Name() string { return "thrash" }

// Next implements Pattern.
func (t *Thrash) Next() rh.Row {
	t.i++
	each := t.HammerEach
	if each <= 1 {
		each = 2
	}
	if t.i%each == 0 {
		return t.Target
	}
	return t.Distractor(t.i % t.Spread)
}

// Result summarizes one attack run.
type Result struct {
	Pattern     string
	Tracker     string
	DemandActs  int64
	TotalActs   int64
	Mitigations int64
	Violations  []Violation
	MaxUnmitig  int
}

// Safe reports whether the tracker withstood the attack.
func (r Result) Safe() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r Result) String() string {
	verdict := "SAFE"
	if !r.Safe() {
		verdict = fmt.Sprintf("BROKEN (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("%-12s vs %-12s acts=%d mitig=%d maxUnmitig=%d %s",
		r.Pattern, r.Tracker, r.TotalActs, r.Mitigations, r.MaxUnmitig, verdict)
}

// Config parameterizes an attack run.
type Config struct {
	TRH         int // the oracle's threshold
	RowsPerBank int
	Blast       int
	ActsPerWin  int // demand activations per tracking window
	Windows     int // number of windows (reset between them)
	MetaOf      func(rh.Row) (int, bool)
}

// Run drives a tracker through an attack pattern under the victim-
// refresh policy and reports what the oracle saw.
func Run(tr rh.Tracker, pattern Pattern, cfg Config) Result {
	if cfg.Blast <= 0 {
		cfg.Blast = mitigate.DefaultBlast
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 1
	}
	oracle := NewOracle(cfg.TRH)
	ref := mitigate.NewRefresher(tr, cfg.Blast, cfg.RowsPerBank)
	ref.MetaOf = cfg.MetaOf
	ref.Observer = oracle
	demand := int64(0)
	for w := 0; w < cfg.Windows; w++ {
		for i := 0; i < cfg.ActsPerWin; i++ {
			oracle.Step()
			ref.Activate(pattern.Next())
			demand++
		}
		ref.ResetWindow()
		oracle.WindowReset()
	}
	oracle.Finish()
	return Result{
		Pattern:     pattern.Name(),
		Tracker:     tr.Name(),
		DemandActs:  demand,
		TotalActs:   oracle.TotalActs,
		Mitigations: ref.Mitigations,
		Violations:  oracle.Violations,
		MaxUnmitig:  oracle.MaxSeen,
	}
}
