package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rh"
	"repro/internal/track"
)

// arenaGeom gives the adversaries a realistic one-window activation
// budget at the paper's ultra-low threshold.
func arenaGeom() track.Geometry {
	return track.Geometry{Rows: 4096, RowsPerBank: 1024, Banks: 4, ACTMax: 100000}
}

const arenaTRH = 500

func arenaHydra(t *testing.T) *core.Tracker {
	t.Helper()
	return core.MustNew(core.Config{
		Rows:       4096,
		TRH:        arenaTRH,
		GCTEntries: 32,
		RCCEntries: 64,
		RCCWays:    8,
		RowBytes:   8192,
	}, rh.NullSink{})
}

func runAdversary(t *testing.T, tr rh.Tracker, a Adversary) Result {
	t.Helper()
	geom := arenaGeom()
	return Run(tr, a.Pattern(geom, arenaTRH), Config{
		TRH:         arenaTRH,
		RowsPerBank: geom.RowsPerBank,
		ActsPerWin:  a.Acts(geom, arenaTRH),
		Windows:     1,
	})
}

func TestAdversariesWellFormed(t *testing.T) {
	geom := arenaGeom()
	seen := map[string]bool{}
	for _, a := range Adversaries() {
		if a.Key == "" || a.Description == "" || len(a.Targets) == 0 {
			t.Errorf("adversary %+v missing metadata", a)
		}
		if seen[a.Key] {
			t.Errorf("duplicate adversary key %q", a.Key)
		}
		seen[a.Key] = true
		if a.Pattern(geom, arenaTRH) == nil {
			t.Errorf("%s: nil pattern", a.Key)
		}
		rows := a.Rows(geom, arenaTRH)
		if len(rows) == 0 {
			t.Errorf("%s: empty AttackSpec rows", a.Key)
		}
		for _, r := range rows {
			if int(r) >= geom.Rows {
				t.Errorf("%s: row %d outside geometry", a.Key, r)
			}
		}
		if acts := a.Acts(geom, arenaTRH); acts <= 0 || acts > geom.ACTMax {
			t.Errorf("%s: acts budget %d outside (0, ACTMax]", a.Key, acts)
		}
	}
	if _, err := AdversaryByKey("mint-dilute"); err != nil {
		t.Error(err)
	}
	if _, err := AdversaryByKey("bogus"); err == nil {
		t.Error("unknown adversary accepted")
	}
}

// TestHydraClassSurvivesAdversaries is half of the arena acceptance
// criterion: Hydra and the deterministically-sized trackers must
// withstand every adversary at T_RH = 500.
func TestHydraClassSurvivesAdversaries(t *testing.T) {
	geom := arenaGeom()
	makers := map[string]func() rh.Tracker{
		"hydra":    func() rh.Tracker { return arenaHydra(t) },
		"graphene": func() rh.Tracker { return track.MustNewGraphene(geom, arenaTRH) },
		"start":    func() rh.Tracker { return track.MustNewSTART(geom, arenaTRH, 0) },
		"dapper":   func() rh.Tracker { return track.MustNewDAPPER(geom, arenaTRH) },
		"ocpr":     func() rh.Tracker { return track.MustNewOCPR(geom, arenaTRH) },
	}
	for name, mk := range makers {
		for _, a := range Adversaries() {
			res := runAdversary(t, mk(), a)
			if !res.Safe() {
				t.Errorf("%s broken by %s: %d violations, first %+v",
					name, a.Key, len(res.Violations), res.Violations[0])
			}
		}
	}
}

// TestMINTDefeatedByDilution is the other half of the acceptance
// criterion: the dilution adversary pushes at least one row past
// T_RH = 500 against MINT with a fixed seed, while the naive patterns
// do not.
func TestMINTDefeatedByDilution(t *testing.T) {
	geom := arenaGeom()
	dilute, err := AdversaryByKey("mint-dilute")
	if err != nil {
		t.Fatal(err)
	}
	res := runAdversary(t, track.MustNewMINT(geom, arenaTRH, 0, 3), dilute)
	if res.Safe() {
		t.Fatalf("mint survived dilution: maxUnmitig=%d (fixed-seed escape lost)", res.MaxUnmitig)
	}

	// Control: a single-sided hammer is caught every interval.
	single := Run(track.MustNewMINT(geom, arenaTRH, 0, 3), &SingleSided{Target: 9}, Config{
		TRH:         arenaTRH,
		RowsPerBank: geom.RowsPerBank,
		ActsPerWin:  geom.ACTMax / 2,
		Windows:     1,
	})
	if !single.Safe() {
		t.Errorf("mint broken by single-sided hammer: %+v", single.Violations[0])
	}
}

// TestBudgetSTARTBrokenByEvictionStorm: with the pool cut far below
// the guarantee sizing, the eviction storm keeps the target cycling
// through evict/re-insert at the spillover floor, resetting its
// since-mitigation delta every time — the target takes T_RH true
// activations with no mitigation. The guarantee-sized pool tracks the
// same storm exactly and stays safe.
func TestBudgetSTARTBrokenByEvictionStorm(t *testing.T) {
	geom := arenaGeom()
	storm, err := AdversaryByKey("rcc-evict")
	if err != nil {
		t.Fatal(err)
	}
	budget := track.MustNewSTART(geom, arenaTRH, 32*8) // 32 entries
	resBudget := runAdversary(t, budget, storm)
	full := track.MustNewSTART(geom, arenaTRH, 0)
	resFull := runAdversary(t, full, storm)
	if !resFull.Safe() {
		t.Fatalf("guarantee-sized start broken by eviction storm: %+v", resFull.Violations[0])
	}
	if resBudget.Safe() {
		t.Fatalf("under-provisioned start survived the eviction storm: maxUnmitig=%d mitig=%d",
			resBudget.MaxUnmitig, resBudget.Mitigations)
	}
}

// TestMitigStormDesynchronizedByDAPPER: the synchronized-herd
// performance attack concentrates Graphene's mitigations into a burst;
// DAPPER's per-row jitter spreads the same work out.
func TestMitigStormDesynchronizedByDAPPER(t *testing.T) {
	geom := arenaGeom()
	storm, err := AdversaryByKey("mitig-storm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		TRH:         arenaTRH,
		RowsPerBank: geom.RowsPerBank,
		ActsPerWin:  storm.Acts(geom, arenaTRH),
	}
	gPeak, gTotal := MitigationBurst(track.MustNewGraphene(geom, arenaTRH), storm.Pattern(geom, arenaTRH), cfg, stormHerd)
	dPeak, dTotal := MitigationBurst(track.MustNewDAPPER(geom, arenaTRH), storm.Pattern(geom, arenaTRH), cfg, stormHerd)
	t.Logf("storm peaks: graphene=%d/%d dapper=%d/%d (peak/total)", gPeak, gTotal, dPeak, dTotal)
	if gTotal == 0 || dTotal == 0 {
		t.Fatal("storm produced no mitigations")
	}
	if dPeak*2 > gPeak {
		t.Errorf("dapper peak burst %d not clearly below graphene's %d", dPeak, gPeak)
	}
}
