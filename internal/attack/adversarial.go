package attack

// This file holds the adversarial workload family for the tracker
// arena: each adversary targets a specific tracker's weak spot, so the
// arena can report not just "secure on benign workloads" but "secure
// against the pattern built to break this scheme". See docs/TRACKERS.md
// for the catalog of which adversary defeats which scheme.

import (
	"fmt"

	"repro/internal/mitigate"
	"repro/internal/rh"
	"repro/internal/track"
)

// Adversary is one targeted attack recipe. Pattern yields the
// functional-harness stream for attack.Run; Rows yields the finite
// round-robin sequence for sim.AttackSpec (the full-simulator form of
// the same access pattern); Acts is the demand-activation budget that
// makes the attack decisive within one tracking window.
type Adversary struct {
	Key         string
	Description string
	// Targets names the schemes this adversary is built to hurt
	// (security violations or mitigation storms, per Description).
	Targets []string

	Pattern func(geom track.Geometry, trh int) Pattern
	Rows    func(geom track.Geometry, trh int) []uint32
	Acts    func(geom track.Geometry, trh int) int
}

// gctGroupRows returns how many consecutive rows share one Hydra GCT
// counter (the default 32 K-entry GCT; at least 2 so the alias set is
// non-trivial on small test geometries).
func gctGroupRows(geom track.Geometry) int {
	g := (geom.Rows + 32*1024 - 1) / (32 * 1024)
	if g < 2 {
		g = 2
	}
	return g
}

// dilutionWidth is MINT's selection-interval length W = T_RH/4, the
// number of distinct rows that gives each one the minimal per-interval
// selection probability.
func dilutionWidth(trh int) int {
	w := trh / 4
	if w < 2 {
		w = 2
	}
	return w
}

// roundRobin builds the AttackSpec row list for n consecutive rows
// starting at base.
func roundRobin(base, n, spacing int) []uint32 {
	rows := make([]uint32, n)
	for i := range rows {
		rows[i] = uint32(base + i*spacing)
	}
	return rows
}

// stormSpread returns the distractor count for the eviction storm,
// bounded by the bank's row count.
func stormSpread(geom track.Geometry) int {
	spread := 4096
	if spread > geom.RowsPerBank/2 {
		spread = geom.RowsPerBank / 2
	}
	if spread < 8 {
		spread = 8
	}
	return spread
}

// Adversaries returns the arena's adversarial workload family.
func Adversaries() []Adversary {
	return []Adversary{
		{
			Key: "gct-alias",
			Description: "round-robin over one GCT group's consecutive rows: " +
				"the shared group counter saturates while every member stays " +
				"below threshold, flooding Hydra's RCC/RCT path (performance) " +
				"and diluting per-row probabilistic trackers",
			Targets: []string{"hydra", "mint", "para", "prohit", "mrloc"},
			Pattern: func(geom track.Geometry, trh int) Pattern {
				return &ManySided{Base: 8, Sides: gctGroupRows(geom), Spacing: 1}
			},
			Rows: func(geom track.Geometry, trh int) []uint32 {
				return roundRobin(8, gctGroupRows(geom), 1)
			},
			Acts: func(geom track.Geometry, trh int) int {
				return bounded((trh+40)*gctGroupRows(geom), geom)
			},
		},
		{
			Key: "rcc-evict",
			Description: "eviction storm: hammer one target at a rate just below the " +
				"storm-driven spillover growth while sweeping hundreds of recycled " +
				"distractors through the same bank — a capacity-bounded table " +
				"(Hydra's RCC, a budget-sized START pool, ProHIT/MRLoC queues) " +
				"keeps evicting the target, resetting its since-mitigation delta",
			Targets: []string{"start-budget", "prohit", "mrloc", "cra"},
			Pattern: func(geom track.Geometry, trh int) Pattern {
				spread := stormSpread(geom)
				return &Thrash{
					Target:     4,
					Distractor: func(i int) rh.Row { return rh.Row(8 + i%spread) },
					Spread:     spread,
					HammerEach: stormHammerEach,
				}
			},
			Rows: func(geom track.Geometry, trh int) []uint32 {
				spread := stormSpread(geom)
				rows := make([]uint32, 0, spread)
				for i := 0; i < spread; i++ {
					if i%stormHammerEach == 0 {
						rows = append(rows, 4)
						continue
					}
					rows = append(rows, uint32(8+i))
				}
				return rows
			},
			Acts: func(geom track.Geometry, trh int) int {
				return bounded(stormHammerEach*(trh+40), geom)
			},
		},
		{
			Key: "mint-dilute",
			Description: "interval dilution: exactly W = T_RH/4 distinct rows per " +
				"bank, round-robin, so each row dodges MINT's per-interval " +
				"selection with probability 1-1/W and some row survives to T_RH",
			Targets: []string{"mint", "para"},
			Pattern: func(geom track.Geometry, trh int) Pattern {
				return &ManySided{Base: 8, Sides: dilutionWidth(trh), Spacing: 1}
			},
			Rows: func(geom track.Geometry, trh int) []uint32 {
				return roundRobin(8, dilutionWidth(trh), 1)
			},
			Acts: func(geom track.Geometry, trh int) int {
				return bounded((trh+40)*dilutionWidth(trh), geom)
			},
		},
		{
			Key: "mitig-storm",
			Description: "synchronized herd: advance a herd of rows in lockstep so " +
				"deterministic trackers mitigate them all in one burst — a " +
				"performance attack (mitigation-storm DoS) DAPPER's jitter " +
				"de-synchronizes; judged by MitigationBurst and the slowdown " +
				"report, not the oracle",
			Targets: []string{"graphene", "ocpr", "start", "cra"},
			Pattern: func(geom track.Geometry, trh int) Pattern {
				return &ManySided{Base: 8, Sides: stormHerd, Spacing: 1}
			},
			Rows: func(geom track.Geometry, trh int) []uint32 {
				return roundRobin(8, stormHerd, 1)
			},
			Acts: func(geom track.Geometry, trh int) int {
				return bounded(trh * stormHerd, geom)
			},
		},
	}
}

// stormHerd is the mitig-storm herd size: small enough that every
// deterministic tracker tracks all members exactly, large enough that
// a synchronized release is a measurable burst.
const stormHerd = 64

// stormHammerEach is rcc-evict's hammer spacing: one target activation
// per stormHammerEach demand acts, slower than the eviction churn
// raises a thrashed pool's spillover floor (~1 per 37 acts), so the
// target keeps falling to the floor and being evicted.
const stormHammerEach = 64

// bounded clamps an activation budget to one window's worth.
func bounded(acts int, geom track.Geometry) int {
	if geom.ACTMax > 0 && acts > geom.ACTMax {
		return geom.ACTMax
	}
	return acts
}

// AdversaryByKey returns the named adversary.
func AdversaryByKey(key string) (Adversary, error) {
	for _, a := range Adversaries() {
		if a.Key == key {
			return a, nil
		}
	}
	return Adversary{}, fmt.Errorf("attack: unknown adversary %q", key)
}

// MitigationBurst drives a tracker through a pattern and returns the
// peak number of mitigations issued within any bucket of bucketActs
// demand activations, plus the total. It quantifies the
// mitigation-storm performance attack: a synchronized tracker
// concentrates its mitigations into one bucket, a jittered one
// spreads them out.
func MitigationBurst(tr rh.Tracker, pattern Pattern, cfg Config, bucketActs int) (peak int, total int64) {
	if cfg.Blast <= 0 {
		cfg.Blast = mitigate.DefaultBlast
	}
	if bucketActs <= 0 {
		bucketActs = 64
	}
	ref := mitigate.NewRefresher(tr, cfg.Blast, cfg.RowsPerBank)
	ref.MetaOf = cfg.MetaOf
	last := int64(0)
	inBucket := 0
	for i := 0; i < cfg.ActsPerWin; i++ {
		ref.Activate(pattern.Next())
		if (i+1)%bucketActs == 0 {
			inBucket = int(ref.Mitigations - last)
			if inBucket > peak {
				peak = inBucket
			}
			last = ref.Mitigations
		}
	}
	if tail := int(ref.Mitigations - last); tail > peak {
		peak = tail
	}
	return peak, ref.Mitigations
}
