package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mitigate"
	"repro/internal/workload"
)

// AttackSpec turns core 0 into an attacker thread that hammers the
// given rows as fast as the memory system allows, while the remaining
// cores run the configured workload (the victim programs). Combined
// with an Observer, this closes the security loop end to end: the
// oracle sees the *actual* activations the controller performs,
// including victim refreshes and metadata-row activations.
type AttackSpec struct {
	// Rows are global row ids hammered round-robin. Two-plus rows per
	// bank alternate so every access is a row-buffer conflict (an
	// activation), the classic double-sided pattern.
	Rows []uint32
	// Acts is the attacker's activation budget.
	Acts int
}

// attackStream implements cpu.TraceSource: zero-gap reads cycling the
// aggressor rows.
type attackStream struct {
	mem  dram.Config
	rows []uint32
	left int
	i    int
	col  int
}

func (a *attackStream) Next() (workload.Request, bool) {
	if a.left <= 0 {
		return workload.Request{}, false
	}
	a.left--
	row := a.rows[a.i%len(a.rows)]
	a.i++
	a.col = (a.col + 37) % a.mem.LinesPerRow()
	loc := a.mem.RowLoc(row)
	loc.Col = a.col
	return workload.Request{Gap: 0, Line: a.mem.Encode(loc)}, true
}

// validateAttack checks the spec against the geometry.
func (s *System) installAttack(spec *AttackSpec) error {
	if spec == nil {
		return nil
	}
	if len(spec.Rows) == 0 || spec.Acts <= 0 {
		return fmt.Errorf("sim: attack spec needs rows and a positive budget")
	}
	total := s.cfg.Mem.TotalRows()
	for _, r := range spec.Rows {
		if int(r) >= total {
			return fmt.Errorf("sim: attack row %d out of range", r)
		}
	}
	stream := &attackStream{mem: s.cfg.Mem, rows: spec.Rows, left: spec.Acts}
	c, err := cpu.New(0, cpu.DefaultConfig(), stream, demandGate{s})
	if err != nil {
		return err
	}
	s.cores[0] = c
	return nil
}

// Observer is the activation/mitigation event consumer; when set on a
// Config, it sees every controller activation and every mitigation in
// order — the same contract as mitigate.Observer, so the attack
// package's security oracle plugs in directly.
type Observer = mitigate.Observer
