package sim

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/faults"
)

// TestEndToEndSecurity is the full-system form of Theorem 1: an
// attacker core hammers a double-sided pattern through the real memory
// controller (with the victim cores generating background traffic),
// and the oracle — fed by the controller's actual activation stream,
// including victim refreshes and RCT-row activations — must see no row
// reach T_RH.
func TestEndToEndSecurity(t *testing.T) {
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 5000})
	oracle := attack.NewOracle(500)

	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.KeepStructSize = true // full-size tracker against a real-rate attack
	cfg.Attack = &AttackSpec{
		Rows: []uint32{victim - 1, victim + 1}, // double-sided
		Acts: 40000,
	}
	cfg.Observer = oracle

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Safe() {
		t.Fatalf("violations in full-system run: first %+v", oracle.Violations[0])
	}
	if oracle.MaxSeen >= 500 {
		t.Fatalf("max unmitigated count %d reached T_RH", oracle.MaxSeen)
	}
	// The hammering must actually have produced mitigations.
	if res.Mitigations < 100 {
		t.Fatalf("only %d mitigations for 40000 hammers", res.Mitigations)
	}
	if res.Mem.MitigActs < 4*100 {
		t.Fatalf("victim refreshes = %d", res.Mem.MitigActs)
	}
}

// TestEndToEndBaselineIsVulnerable shows the oracle catching the
// unprotected system under the same attack.
func TestEndToEndBaselineIsVulnerable(t *testing.T) {
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 5000})
	oracle := attack.NewOracle(500)

	cfg := testConfig(hotProfile(), TrackNone)
	cfg.Attack = &AttackSpec{Rows: []uint32{victim - 1, victim + 1}, Acts: 4000}
	cfg.Observer = oracle

	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if oracle.Safe() {
		t.Fatal("unprotected system survived 2000 hammers per aggressor... oracle broken?")
	}
}

// TestEndToEndCounterRowPressure hammers rows that collide with many
// distinct row-groups so the tracker generates heavy RCT traffic; the
// metadata rows the controller then activates must stay protected by
// the RIT-ACT guards.
func TestEndToEndCounterRowPressure(t *testing.T) {
	oracle := attack.NewOracle(500)
	cfg := testConfig(hotProfile(), TrackHydra)
	// Thrash the (scaled, tiny) RCC: hammer rows in many groups.
	rows := make([]uint32, 64)
	for i := range rows {
		rows[i] = uint32(i * 4096)
	}
	cfg.Attack = &AttackSpec{Rows: rows, Acts: 60000}
	cfg.Observer = oracle

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.MetaReads == 0 {
		t.Fatal("attack produced no RCT traffic; pressure pattern broken")
	}
	if !oracle.Safe() {
		t.Fatalf("violation under counter-row pressure: %+v", oracle.Violations[0])
	}
}

func TestAttackSpecValidation(t *testing.T) {
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.Attack = &AttackSpec{}
	if _, err := New(cfg); err == nil {
		t.Error("empty attack spec accepted")
	}
	cfg.Attack = &AttackSpec{Rows: []uint32{1 << 30}, Acts: 10}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range attack row accepted")
	}
}

// TestWindowResetsFireInSim runs with a short tracking window and
// verifies the periodic reset path: resets fire, the tracker survives
// them, and the oracle's straddle accounting stays sound.
func TestWindowResetsFireInSim(t *testing.T) {
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 5000})
	oracle := attack.NewOracle(500)

	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.KeepStructSize = true
	cfg.WindowCycles = 500_000 // tiny window: many resets per run
	cfg.Attack = &AttackSpec{Rows: []uint32{victim - 1, victim + 1}, Acts: 40000}
	cfg.Observer = oracle

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowResets < 5 {
		t.Fatalf("window resets = %d, want several", res.WindowResets)
	}
	if !oracle.Safe() {
		t.Fatalf("violation across resets: %+v", oracle.Violations[0])
	}
	if res.Mitigations == 0 {
		t.Fatal("no mitigations despite hammering")
	}
}

// TestPhysicalFaultModelEndToEnd attaches the charge-damage model to
// the full-system simulator: the unprotected baseline suffers actual
// bit-flips under a double-sided hammer, Hydra keeps the damage below
// the flip threshold.
func TestPhysicalFaultModelEndToEnd(t *testing.T) {
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 5000})
	spec := &AttackSpec{Rows: []uint32{victim - 1, victim + 1}, Acts: 8000}

	run := func(kind TrackerKind) *faults.Model {
		model := faults.NewModel(500, 2, mem.RowsPerBank, 0.05)
		cfg := testConfig(hotProfile(), kind)
		cfg.KeepStructSize = true
		cfg.Attack = spec
		cfg.Observer = model
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return model
	}

	if m := run(TrackNone); !m.Flipped() {
		t.Fatalf("baseline survived 4000 hammers per aggressor (max damage %.0f)", m.MaxDamage)
	}
	if m := run(TrackHydra); m.Flipped() {
		t.Fatalf("bit flipped under Hydra: %+v", m.Flips[0])
	}
}
