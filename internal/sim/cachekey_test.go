package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/obsv"
	"repro/internal/rh"
	"repro/internal/workload"
)

func keyConfig() Config {
	p, err := workload.ByName("parest")
	if err != nil {
		panic(err)
	}
	return Default(p)
}

func mustKey(t *testing.T, c Config) string {
	t.Helper()
	k, ok := c.CacheKey()
	if !ok {
		t.Fatalf("config unexpectedly uncacheable: %+v", c)
	}
	return k
}

func TestCacheKeyDeterministic(t *testing.T) {
	a := mustKey(t, keyConfig())
	b := mustKey(t, keyConfig())
	if a != b {
		t.Fatalf("identical configs hash differently: %s vs %s", a, b)
	}
	// Mutate-and-revert must round-trip to the same key: the hash
	// depends only on field values, never on the history of the value.
	c := keyConfig()
	c.TRH = 9999
	c.TRH = keyConfig().TRH
	if got := mustKey(t, c); got != a {
		t.Fatalf("mutate-and-revert changed the key: %s vs %s", got, a)
	}
}

func TestCacheKeyIgnoresRuntimeAttachments(t *testing.T) {
	base := mustKey(t, keyConfig())
	c := keyConfig()
	c.Ctx = context.Background()
	c.Progress = func(int64) {}
	if got := mustKey(t, c); got != base {
		t.Fatalf("Ctx/Progress changed the key: they control cancellation and watchdog reporting, not the result")
	}
	c = keyConfig()
	c.Parallel = true
	if got := mustKey(t, c); got != base {
		t.Fatalf("Parallel changed the key: it is an execution strategy with bitwise-identical results, and parallel/serial runs must share cached cells")
	}
	// A chaos scenario's Description is a report label; two scenarios
	// differing only in prose inject identical faults.
	c1, c2 := keyConfig(), keyConfig()
	c1.Chaos = &faults.Scenario{Name: "x", DropRefreshProb: 0.5, Description: "a"}
	c2.Chaos = &faults.Scenario{Name: "x", DropRefreshProb: 0.5, Description: "b"}
	if mustKey(t, c1) != mustKey(t, c2) {
		t.Fatalf("chaos Description changed the key")
	}
}

func TestCacheKeyUncacheable(t *testing.T) {
	c := keyConfig()
	c.Observer = noopObserver{}
	if _, ok := c.CacheKey(); ok {
		t.Fatalf("config with Observer must be uncacheable: replaying a cached result would skip its callbacks")
	}
	c = keyConfig()
	c.Trace = obsv.NewTracer(8)
	if _, ok := c.CacheKey(); ok {
		t.Fatalf("config with Tracer must be uncacheable")
	}
	c = keyConfig()
	c.Traces = make([]cpu.TraceSource, 1)
	if _, ok := c.CacheKey(); ok {
		t.Fatalf("config with external trace sources must be uncacheable: their content is opaque to the hash")
	}
}

type noopObserver struct{}

func (noopObserver) Activated(row rh.Row) {}
func (noopObserver) Mitigated(row rh.Row) {}

// TestCacheKeySensitivity drives every result-affecting field through
// a mutation and requires the key to change: a field the hash misses
// would silently replay a wrong cached result.
func TestCacheKeySensitivity(t *testing.T) {
	mutations := map[string]func(*Config){
		"Mem.Channels":        func(c *Config) { c.Mem.Channels++ },
		"Mem.RanksPerChannel": func(c *Config) { c.Mem.RanksPerChannel++ },
		"Mem.BanksPerRank":    func(c *Config) { c.Mem.BanksPerRank++ },
		"Mem.RowsPerBank":     func(c *Config) { c.Mem.RowsPerBank++ },
		"Mem.RowBytes":        func(c *Config) { c.Mem.RowBytes *= 2 },
		"Profile.Name":        func(c *Config) { c.Profile.Name += "x" },
		"Profile.Suite":       func(c *Config) { c.Profile.Suite = "other" },
		"Profile.MPKI":        func(c *Config) { c.Profile.MPKI += 0.25 },
		"Profile.UniqueRows":  func(c *Config) { c.Profile.UniqueRows++ },
		"Profile.Hot250":      func(c *Config) { c.Profile.Hot250++ },
		"Profile.ActsPerRow":  func(c *Config) { c.Profile.ActsPerRow += 0.5 },
		"Scale":               func(c *Config) { c.Scale *= 2 },
		"KeepStructSize":      func(c *Config) { c.KeepStructSize = !c.KeepStructSize },
		"Cores":               func(c *Config) { c.Cores++ },
		"TRH":                 func(c *Config) { c.TRH++ },
		"Blast":               func(c *Config) { c.Blast++ },
		"Seed":                func(c *Config) { c.Seed++ },
		"Tracker":             func(c *Config) { c.Tracker = TrackGraphene },
		"CRACacheBytes":       func(c *Config) { c.CRACacheBytes *= 2 },
		"HydraGCTEntries":     func(c *Config) { c.HydraGCTEntries += 128 },
		"HydraRCCEntries":     func(c *Config) { c.HydraRCCEntries += 128 },
		"HydraTG":             func(c *Config) { c.HydraTG += 16 },
		"HydraRandomize":      func(c *Config) { c.HydraRandomize = !c.HydraRandomize },
		"PARAFailProb":        func(c *Config) { c.PARAFailProb *= 10 },
		"STARTLLCBytes":       func(c *Config) { c.STARTLLCBytes += 4096 },
		"MINTIntervalActs":    func(c *Config) { c.MINTIntervalActs += 8 },
		"TrackMetaRows":       func(c *Config) { c.TrackMetaRows = !c.TrackMetaRows },
		"WriteFrac":           func(c *Config) { c.WriteFrac += 0.125 },
		"Burst":               func(c *Config) { c.Burst++ },
		"WindowCycles":        func(c *Config) { c.WindowCycles += 1000 },
		"Mitigation":          func(c *Config) { c.Mitigation = MitigateRowSwap },
		"Attack.set":          func(c *Config) { c.Attack = &AttackSpec{Rows: []uint32{1, 2}, Acts: 100} },
		"Chaos.set":           func(c *Config) { c.Chaos = &faults.Scenario{Name: "x", DropRefreshProb: 0.1} },
	}
	base := mustKey(t, keyConfig())
	seen := map[string]string{"": base}
	for name, mutate := range mutations {
		c := keyConfig()
		mutate(&c)
		k := mustKey(t, c)
		if k == base {
			t.Errorf("mutating %s did not change the cache key", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutations %s and %s collide on %s", name, prev, k)
		}
		seen[k] = name
	}

	// Within the pointer-valued fields, every inner knob must register.
	attackMuts := map[string]func(*AttackSpec){
		"Rows":      func(a *AttackSpec) { a.Rows = append(a.Rows, 99) },
		"Rows.swap": func(a *AttackSpec) { a.Rows[0], a.Rows[1] = a.Rows[1], a.Rows[0] },
		"Acts":      func(a *AttackSpec) { a.Acts++ },
	}
	for name, mutate := range attackMuts {
		c1, c2 := keyConfig(), keyConfig()
		c1.Attack = &AttackSpec{Rows: []uint32{1, 2}, Acts: 100}
		c2.Attack = &AttackSpec{Rows: []uint32{1, 2}, Acts: 100}
		mutate(c2.Attack)
		if mustKey(t, c1) == mustKey(t, c2) {
			t.Errorf("mutating Attack.%s did not change the cache key", name)
		}
	}
	chaosMuts := map[string]func(*faults.Scenario){
		"Name":             func(s *faults.Scenario) { s.Name += "x" },
		"DropRefreshProb":  func(s *faults.Scenario) { s.DropRefreshProb += 0.1 },
		"PostponeWindows":  func(s *faults.Scenario) { s.PostponeWindows += 0.5 },
		"CorruptRCTFrac":   func(s *faults.Scenario) { s.CorruptRCTFrac += 0.1 },
		"CorruptEveryActs": func(s *faults.Scenario) { s.CorruptEveryActs += 100 },
	}
	for name, mutate := range chaosMuts {
		c1, c2 := keyConfig(), keyConfig()
		c1.Chaos = &faults.Scenario{Name: "x", DropRefreshProb: 0.1, CorruptEveryActs: 10}
		c2.Chaos = &faults.Scenario{Name: "x", DropRefreshProb: 0.1, CorruptEveryActs: 10}
		mutate(c2.Chaos)
		if mustKey(t, c1) == mustKey(t, c2) {
			t.Errorf("mutating Chaos.%s did not change the cache key", name)
		}
	}
}

// TestCacheKeyCoversEveryConfigField pins the field counts of Config
// and every struct CanonicalString reaches into. Adding a field makes
// this fail on purpose: either hash the new field in CanonicalString
// (and bump CacheKeyVersion if it changes what existing configs
// compute) or add it to the documented non-result set (Ctx, Progress,
// Parallel, Observer, Trace, Traces, Scenario.Description), then
// update the count here.
func TestCacheKeyCoversEveryConfigField(t *testing.T) {
	pins := []struct {
		typ  reflect.Type
		want int
	}{
		{reflect.TypeOf(Config{}), 30},
		{reflect.TypeOf(AttackSpec{}), 2},
		{reflect.TypeOf(faults.Scenario{}), 6},
		{reflect.TypeOf(dram.Config{}), 5},
		{reflect.TypeOf(workload.Profile{}), 6},
	}
	for _, p := range pins {
		if got := p.typ.NumField(); got != p.want {
			t.Errorf("%s has %d fields, CanonicalString was written against %d: "+
				"hash the new field (bumping CacheKeyVersion if semantics changed) and update this pin",
				p.typ, got, p.want)
		}
	}
}

func TestCanonicalStringCarriesVersion(t *testing.T) {
	if s := keyConfig().CanonicalString(); !strings.Contains(s, CacheKeyVersion) {
		t.Fatalf("canonical string does not embed CacheKeyVersion %q:\n%s", CacheKeyVersion, s)
	}
}
