package sim

import (
	"bytes"
	"os"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/workload"
)

// hotProfile is a compact memory-intensive workload with a real hot
// set, exercising all three Hydra levels quickly.
func hotProfile() workload.Profile {
	return workload.Profile{
		Name: "test-hot", Suite: workload.SPEC,
		MPKI: 20, UniqueRows: 16000, Hot250: 400, ActsPerRow: 40,
	}
}

// coldProfile touches many rows a few times each: the GCT should
// filter nearly everything.
func coldProfile() workload.Profile {
	return workload.Profile{
		Name: "test-cold", Suite: workload.SPEC,
		MPKI: 20, UniqueRows: 40000, Hot250: 0, ActsPerRow: 6,
	}
}

func testConfig(p workload.Profile, kind TrackerKind) Config {
	cfg := Default(p)
	cfg.Scale = 4
	cfg.Tracker = kind
	return cfg
}

func TestBaselineRunCompletes(t *testing.T) {
	res, err := Run(testConfig(coldProfile(), TrackNone))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Insts <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if res.Mem.Reads == 0 || res.Mem.Activates == 0 {
		t.Fatalf("no memory activity: %+v", res.Mem)
	}
	if res.Mitigations != 0 || res.SRAMBytes != 0 {
		t.Fatalf("baseline has tracker artifacts: %+v", res)
	}
	if ipc := res.IPC(); ipc <= 0 || ipc > float64(8*4) {
		t.Fatalf("IPC = %v out of range", ipc)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(testConfig(hotProfile(), TrackHydra))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(hotProfile(), TrackHydra))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Mitigations != b.Mitigations || !reflect.DeepEqual(a.Mem, b.Mem) {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

// TestParallelSerialIdenticalResults pins the tentpole contract at the
// system level: a full Hydra run with Parallel set computes a Result
// that is reflect.DeepEqual to the serial run — every field, including
// memory stats, tracker counters and storage accounting. It runs on a
// 4-channel organization so the fan-out has real work to divide, and
// raises GOMAXPROCS to 2 on unforced single-CPU machines so the worker
// goroutines actually engage (CI additionally runs it at forced
// GOMAXPROCS 1, 2 and NumCPU under the race detector).
func TestParallelSerialIdenticalResults(t *testing.T) {
	if os.Getenv("GOMAXPROCS") == "" && runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.Mem.Channels = 4
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel run diverged from serial:\nserial:   %+v\nparallel: %+v", serial, par)
	}
	if serial.Mitigations == 0 {
		t.Fatal("hot workload produced no mitigations; equivalence vacuous")
	}
}

// TestParallelRejectsChaos pins the documented incompatibility: the
// fault injector mutates shared state from channel callbacks and is
// not shard-safe, so Parallel plus a Chaos scenario must fail loudly
// at construction instead of racing.
func TestParallelRejectsChaos(t *testing.T) {
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.Parallel = true
	cfg.Chaos = &faults.Scenario{Name: "drop", DropRefreshProb: 0.5}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Parallel + Chaos accepted; want a construction error")
	}
}

// TestTrackerOverheadOrdering is the Figure 5 shape on one workload:
// Graphene ~ baseline, Hydra slightly slower, CRA much slower.
func TestTrackerOverheadOrdering(t *testing.T) {
	run := func(kind TrackerKind) Result {
		res, err := Run(testConfig(hotProfile(), kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		return res
	}
	base := run(TrackNone)
	graphene := run(TrackGraphene)
	hydra := run(TrackHydra)
	cra := run(TrackCRA)

	slow := func(r Result) float64 {
		return float64(r.Cycles)/float64(base.Cycles) - 1
	}
	t.Logf("slowdowns: graphene=%.3f hydra=%.3f cra=%.3f", slow(graphene), slow(hydra), slow(cra))

	if s := slow(graphene); s > 0.02 {
		t.Errorf("graphene slowdown %.3f, want ~0", s)
	}
	if s := slow(hydra); s < 0 || s > 0.10 {
		t.Errorf("hydra slowdown %.3f, want small and positive", s)
	}
	if slow(cra) < 2*slow(hydra) {
		t.Errorf("CRA (%.3f) not clearly worse than Hydra (%.3f)", slow(cra), slow(hydra))
	}
	if cra.Mem.MetaReads == 0 || hydra.Mem.MetaReads == 0 {
		t.Error("trackers produced no metadata traffic")
	}
	if hydra.Mitigations == 0 {
		t.Error("hot workload produced no mitigations under hydra")
	}
	if hydra.Mem.MitigActs == 0 {
		t.Error("mitigations produced no victim-refresh activations")
	}
}

// TestHydraAccessDistribution is the Figure 6 shape: cold workloads
// are filtered almost entirely by the GCT; hot workloads need the RCC
// and some RCT traffic.
func TestHydraAccessDistribution(t *testing.T) {
	cold, err := Run(testConfig(coldProfile(), TrackHydra))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hydra == nil {
		t.Fatal("no hydra stats")
	}
	gctFrac := float64(cold.Hydra.GCTOnly) / float64(cold.Hydra.Acts)
	if gctFrac < 0.95 {
		t.Errorf("cold workload GCT-only fraction = %.3f, want > 0.95", gctFrac)
	}

	hot, err := Run(testConfig(hotProfile(), TrackHydra))
	if err != nil {
		t.Fatal(err)
	}
	if hot.Hydra.RCCHit == 0 {
		t.Error("hot workload never hit the RCC")
	}
	if hot.Hydra.RCTAccess == 0 {
		t.Error("hot workload never reached the RCT")
	}
	rctFrac := float64(hot.Hydra.RCTAccess) / float64(hot.Hydra.Acts)
	if rctFrac > 0.2 {
		t.Errorf("RCT fraction = %.3f, want small (RCC should absorb most)", rctFrac)
	}
}

// TestAblationOrdering is the Figure 8 shape. The NoGCT penalty is
// driven by large-footprint workloads whose every row needs per-row
// state (compulsory RCC misses), so the ordering check uses the cold,
// wide profile; the hot profile checks that NoRCC pays for its
// read-modify-writes.
func TestAblationOrdering(t *testing.T) {
	run := func(p func() workloadProfile, kind TrackerKind) int64 {
		res, err := Run(testConfig(p(), kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		return res.Cycles
	}
	full := run(coldProfile, TrackHydra)
	noGCT := run(coldProfile, TrackHydraNoGCT)
	t.Logf("cold: full=%d nogct=%d", full, noGCT)
	if noGCT <= full*101/100 {
		t.Errorf("NoGCT (%d) not clearly worse than full Hydra (%d) on a wide footprint", noGCT, full)
	}
	fullHot := run(hotProfile, TrackHydra)
	noRCC := run(hotProfile, TrackHydraNoRCC)
	t.Logf("hot: full=%d norcc=%d", fullHot, noRCC)
	if noRCC < fullHot {
		t.Errorf("NoRCC (%d) faster than full Hydra (%d)", noRCC, fullHot)
	}
}

type workloadProfile = workload.Profile

func TestCRAMetadataCacheSizeMatters(t *testing.T) {
	run := func(bytes int) Result {
		cfg := testConfig(hotProfile(), TrackCRA)
		// Unscaled structures: the point is the cache-size sweep, so
		// the footprint (4000 rows ~ 4000 counter lines) must dwarf
		// the small cache and fit in the large one.
		cfg.KeepStructSize = true
		cfg.CRACacheBytes = bytes
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(16 * 1024)
	big := run(1024 * 1024)
	if small.Mem.MetaReads <= big.Mem.MetaReads {
		t.Errorf("bigger cache did not cut metadata traffic: %d vs %d",
			small.Mem.MetaReads, big.Mem.MetaReads)
	}
	if big.Cycles > small.Cycles {
		t.Errorf("bigger metadata cache slower: 16KB=%d 1MB=%d", small.Cycles, big.Cycles)
	}
}

func TestUnknownTrackerRejected(t *testing.T) {
	cfg := testConfig(hotProfile(), TrackerKind("bogus"))
	if _, err := Run(cfg); err == nil {
		t.Fatal("bogus tracker accepted")
	}
}

func TestOCPRAndPARARun(t *testing.T) {
	for _, kind := range []TrackerKind{TrackOCPR, TrackPARA} {
		res, err := Run(testConfig(hotProfile(), kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Mitigations == 0 {
			t.Errorf("%s: no mitigations on hot workload", kind)
		}
	}
}

// TestArenaTrackersRun smoke-tests the post-Hydra schemes end to end:
// they must run under the full simulator and report their storage.
func TestArenaTrackersRun(t *testing.T) {
	for _, kind := range []TrackerKind{TrackSTART, TrackMINT, TrackDAPPER} {
		res, err := Run(testConfig(hotProfile(), kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Mitigations == 0 {
			t.Errorf("%s: no mitigations on hot workload", kind)
		}
		if res.SRAMBytes <= 0 {
			t.Errorf("%s: SRAMBytes = %d", kind, res.SRAMBytes)
		}
	}
}

// TestTraceReplayMatchesGeneration records the synthetic streams and
// replays them through the simulator: results must be identical.
func TestTraceReplayMatchesGeneration(t *testing.T) {
	cfg := testConfig(hotProfile(), TrackHydra)

	gen, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Record each core's stream into memory and replay.
	var sources []cpu.TraceSource
	scfg := workload.StreamConfig{
		Mem:          cfg.Mem,
		MaxDemandRow: cfg.Mem.RowsPerBank - 17,
		Cores:        cfg.Cores,
		Scale:        cfg.Scale,
		Burst:        cfg.Burst,
		WriteFrac:    cfg.WriteFrac,
		Seed:         cfg.Seed,
	}
	for i := 0; i < cfg.Cores; i++ {
		sc := scfg
		sc.CoreID = i
		src, err := workload.NewStream(cfg.Profile, sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.Record(w, src); err != nil {
			t.Fatal(err)
		}
		r, err := trace.NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, r)
	}
	replayCfg := cfg
	replayCfg.Traces = sources
	replay, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Cycles != gen.Cycles || !reflect.DeepEqual(replay.Mem, gen.Mem) || replay.Mitigations != gen.Mitigations {
		t.Fatalf("replay diverged: %+v vs %+v", replay, gen)
	}
}

// TestMultiRankGeometry runs a 2-rank-per-channel organization end to
// end: decode/encode, refresh per rank, tracker geometry and the
// reserved region must all hold together.
func TestMultiRankGeometry(t *testing.T) {
	mem := dram.Config{
		Channels:        2,
		RanksPerChannel: 2,
		BanksPerRank:    8,
		RowsPerBank:     65536,
		RowBytes:        8192,
	}
	if err := mem.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.Mem = mem
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Mem.Activates == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.Mitigations == 0 {
		t.Fatal("no mitigations on the hot workload")
	}
	// Refreshes are per rank: four ranks must refresh.
	if res.Mem.Refreshes == 0 {
		t.Fatal("no refreshes")
	}
}

// TestDDR5GeometryRuns exercises the 32-bank organization used by the
// ext-ddr5 study.
func TestDDR5GeometryRuns(t *testing.T) {
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.Mem = dram.DDR5()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SRAMBytes == 0 || res.Mem.Activates == 0 {
		t.Fatalf("empty run: %+v", res)
	}
}
