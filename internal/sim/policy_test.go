package sim

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/dram"
)

func TestRowSwapPolicyInSim(t *testing.T) {
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.Mitigation = MitigateRowSwap
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("hot workload produced no swaps")
	}
	if res.Mem.MitigActs != 0 {
		t.Fatalf("row-swap policy issued %d victim refreshes", res.Mem.MitigActs)
	}
	// Each swap migrates two 8 KB rows: 2 x 128 reads + writes.
	wantMeta := res.Swaps * 256
	if res.Mem.MetaReads < wantMeta {
		t.Fatalf("migration reads = %d, want >= %d", res.Mem.MetaReads, wantMeta)
	}
}

func TestRowSwapSecurityInSim(t *testing.T) {
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 5000})
	oracle := attack.NewOracle(500)

	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.KeepStructSize = true
	cfg.Mitigation = MitigateRowSwap
	cfg.Attack = &AttackSpec{Rows: []uint32{victim - 1, victim + 1}, Acts: 20000}
	cfg.Observer = oracle

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("attack triggered no swaps")
	}
	// The demand stream follows the aggressor row logically, but each
	// physical row it lands on is swapped away before T_RH.
	if !oracle.Safe() {
		t.Fatalf("row-swap violated the bound: %+v", oracle.Violations[0])
	}
}

func TestThrottlePolicyIsDoSAtUltraLowThreshold(t *testing.T) {
	// Footnote 6: at T_RH = 500, a throttled row may be accessed once
	// per window/250 cycles, ~1000x slower than demand rate. The hot
	// workload (rows with 250+ activations) should crawl.
	refresh := testConfig(hotProfile(), TrackHydra)
	refRes, err := Run(refresh)
	if err != nil {
		t.Fatal(err)
	}
	throttle := testConfig(hotProfile(), TrackHydra)
	throttle.Mitigation = MitigateThrottle
	thRes, err := Run(throttle)
	if err != nil {
		t.Fatal(err)
	}
	if thRes.Throttles == 0 {
		t.Fatal("no rows were ever throttled")
	}
	slow := float64(thRes.Cycles) / float64(refRes.Cycles)
	t.Logf("throttle/refresh cycle ratio: %.2f (throttles=%d)", slow, thRes.Throttles)
	if slow < 2 {
		t.Fatalf("throttling only %.2fx slower than refresh; footnote 6 predicts DoS", slow)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.Mitigation = MitigationPolicy("bogus")
	if _, err := New(cfg); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
