package sim

import (
	"testing"

	"repro/internal/workload"
)

// benchConfig is a small but representative full-system cell: 4 cores,
// Hydra tracking at T_RH 500, a short tracking window so the reset
// path runs, and a footprint scale that keeps one run around a few
// hundred thousand scheduling decisions.
func benchConfig(p string) Config {
	prof, err := workload.ByName(p)
	if err != nil {
		panic(err)
	}
	cfg := Default(prof)
	cfg.Scale = 512
	cfg.Cores = 4
	cfg.WindowCycles = 400_000
	return cfg
}

// BenchmarkFullSystemHydra measures end-to-end simulation speed on a
// memory-intensive workload with Hydra tracking: the wall-clock cost
// of one campaign cell, dominated by the memsim scheduling hot path.
func BenchmarkFullSystemHydra(b *testing.B) {
	cfg := benchConfig("parest")
	b.ReportAllocs()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Insts
	}
	if insts == 0 {
		b.Fatal("benchmark simulated no instructions")
	}
}

// BenchmarkFullSystemBaseline measures the same cell without tracking
// (the non-secure baseline): pure cores + memory controller.
func BenchmarkFullSystemBaseline(b *testing.B) {
	cfg := benchConfig("parest")
	cfg.Tracker = TrackNone
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
