package sim

import (
	"testing"

	"repro/internal/workload"
)

// benchConfig is a small but representative full-system cell: 4 cores,
// Hydra tracking at T_RH 500, a short tracking window so the reset
// path runs, and a footprint scale that keeps one run around a few
// hundred thousand scheduling decisions.
func benchConfig(p string) Config {
	prof, err := workload.ByName(p)
	if err != nil {
		panic(err)
	}
	cfg := Default(prof)
	cfg.Scale = 512
	cfg.Cores = 4
	cfg.WindowCycles = 400_000
	return cfg
}

// BenchmarkFullSystemHydra measures end-to-end simulation speed on a
// memory-intensive workload with Hydra tracking: the wall-clock cost
// of one campaign cell, dominated by the memsim scheduling hot path.
func BenchmarkFullSystemHydra(b *testing.B) {
	cfg := benchConfig("parest")
	b.ReportAllocs()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Insts
	}
	if insts == 0 {
		b.Fatal("benchmark simulated no instructions")
	}
}

// BenchmarkFullSystemBaseline measures the same cell without tracking
// (the non-secure baseline): pure cores + memory controller.
func BenchmarkFullSystemBaseline(b *testing.B) {
	cfg := benchConfig("parest")
	cfg.Tracker = TrackNone
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConfig4ch widens the cell to four channels: the organization the
// parallel-speedup acceptance target is defined on (a fan-out cannot
// beat serial on the 2-channel default — there is at most one worker).
func benchConfig4ch(p string) Config {
	cfg := benchConfig(p)
	cfg.Mem.Channels = 4
	return cfg
}

// BenchmarkFullSystemHydra4ch is the serial leg of the parallel
// speedup comparison: the same cell as BenchmarkFullSystemHydra on the
// 4-channel organization, epoch engine, fan-out off.
func BenchmarkFullSystemHydra4ch(b *testing.B) {
	cfg := benchConfig4ch("parest")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSystemHydraParallel is the parallel leg: identical cell,
// Parallel set, one worker goroutine per extra channel. On a machine
// with GOMAXPROCS >= 4 this must come in at least 2x faster than
// BenchmarkFullSystemHydra4ch; at GOMAXPROCS 1 the fan-out auto-
// disables and the two legs coincide (the bench baseline records the
// environment so cross-machine comparisons fail loudly — see
// docs/PERFORMANCE.md).
func BenchmarkFullSystemHydraParallel(b *testing.B) {
	cfg := benchConfig4ch("parest")
	cfg.Parallel = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
