package sim

// Cache-key sensitivity machine: where FuzzCacheKey flips a handful of
// fields under fuzzer-chosen values, this property draws a generated
// base configuration and a mutation from a catalog covering *every*
// field CanonicalString renders — each Mem and Profile subfield, every
// tracker knob, the Attack and Chaos subfields and their nil-ness —
// and requires the key to move. A collision means two configurations
// that compute different results would dedupe to one cache cell, which
// silently replays the wrong Result. The identity direction (no
// mutation → equal keys) runs on every case too.

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/proptest"
)

// keyMutation perturbs exactly one result-affecting field. Mutations
// use value swaps (not arithmetic) so they can never be no-ops.
type keyMutation struct {
	name string
	mut  func(*Config)
}

func swapInt(p *int)    { *p = *p ^ 0x55a }
func swapI64(p *int64)  { *p = *p ^ 0x55a }
func swapBool(p *bool)  { *p = !*p }
func swapStr(p *string) { *p = *p + "~" }

// swapF swaps between two sentinels rather than doing arithmetic, which
// can be a no-op at float extremes (1e300+0.125 == 1e300).
func swapF(p *float64) {
	if *p == 12345.5 {
		*p = 54321.5
	} else {
		*p = 12345.5
	}
}

func keyMutations() []keyMutation {
	return []keyMutation{
		{"Mem.Channels", func(c *Config) { swapInt(&c.Mem.Channels) }},
		{"Mem.RanksPerChannel", func(c *Config) { swapInt(&c.Mem.RanksPerChannel) }},
		{"Mem.BanksPerRank", func(c *Config) { swapInt(&c.Mem.BanksPerRank) }},
		{"Mem.RowsPerBank", func(c *Config) { swapInt(&c.Mem.RowsPerBank) }},
		{"Mem.RowBytes", func(c *Config) { swapInt(&c.Mem.RowBytes) }},
		{"Profile.Name", func(c *Config) { swapStr(&c.Profile.Name) }},
		{"Profile.Suite", func(c *Config) { c.Profile.Suite += "~" }},
		{"Profile.MPKI", func(c *Config) { swapF(&c.Profile.MPKI) }},
		{"Profile.UniqueRows", func(c *Config) { swapInt(&c.Profile.UniqueRows) }},
		{"Profile.Hot250", func(c *Config) { swapInt(&c.Profile.Hot250) }},
		{"Profile.ActsPerRow", func(c *Config) { swapF(&c.Profile.ActsPerRow) }},
		{"Scale", func(c *Config) { swapF(&c.Scale) }},
		{"KeepStructSize", func(c *Config) { swapBool(&c.KeepStructSize) }},
		{"Cores", func(c *Config) { swapInt(&c.Cores) }},
		{"TRH", func(c *Config) { swapInt(&c.TRH) }},
		{"Blast", func(c *Config) { swapInt(&c.Blast) }},
		{"Seed", func(c *Config) { c.Seed ^= 0x55a }},
		{"Tracker", func(c *Config) { c.Tracker += "~" }},
		{"CRACacheBytes", func(c *Config) { swapInt(&c.CRACacheBytes) }},
		{"HydraGCTEntries", func(c *Config) { swapInt(&c.HydraGCTEntries) }},
		{"HydraRCCEntries", func(c *Config) { swapInt(&c.HydraRCCEntries) }},
		{"HydraTG", func(c *Config) { swapInt(&c.HydraTG) }},
		{"HydraRandomize", func(c *Config) { swapBool(&c.HydraRandomize) }},
		{"PARAFailProb", func(c *Config) { swapF(&c.PARAFailProb) }},
		{"STARTLLCBytes", func(c *Config) { swapInt(&c.STARTLLCBytes) }},
		{"MINTIntervalActs", func(c *Config) { swapInt(&c.MINTIntervalActs) }},
		{"TrackMetaRows", func(c *Config) { swapBool(&c.TrackMetaRows) }},
		{"WriteFrac", func(c *Config) { swapF(&c.WriteFrac) }},
		{"Burst", func(c *Config) { swapInt(&c.Burst) }},
		{"WindowCycles", func(c *Config) { swapI64(&c.WindowCycles) }},
		{"Mitigation", func(c *Config) { c.Mitigation += "~" }},
		{"Attack.nil", func(c *Config) {
			if c.Attack == nil {
				c.Attack = &AttackSpec{}
			} else {
				c.Attack = nil
			}
		}},
		{"Attack.Rows", func(c *Config) {
			if c.Attack == nil {
				c.Attack = &AttackSpec{}
			}
			c.Attack.Rows = append(c.Attack.Rows, 99)
		}},
		{"Attack.Acts", func(c *Config) {
			if c.Attack == nil {
				c.Attack = &AttackSpec{}
			}
			c.Attack.Acts ^= 0x55a
		}},
		{"Chaos.nil", func(c *Config) {
			if c.Chaos == nil {
				c.Chaos = &faults.Scenario{}
			} else {
				c.Chaos = nil
			}
		}},
		{"Chaos.Name", func(c *Config) {
			if c.Chaos == nil {
				c.Chaos = &faults.Scenario{}
			}
			c.Chaos.Name += "~"
		}},
		{"Chaos.DropRefreshProb", func(c *Config) {
			if c.Chaos == nil {
				c.Chaos = &faults.Scenario{}
			}
			swapF(&c.Chaos.DropRefreshProb)
		}},
		{"Chaos.PostponeWindows", func(c *Config) {
			if c.Chaos == nil {
				c.Chaos = &faults.Scenario{}
			}
			swapF(&c.Chaos.PostponeWindows)
		}},
		{"Chaos.CorruptRCTFrac", func(c *Config) {
			if c.Chaos == nil {
				c.Chaos = &faults.Scenario{}
			}
			swapF(&c.Chaos.CorruptRCTFrac)
		}},
		{"Chaos.CorruptEveryActs", func(c *Config) {
			if c.Chaos == nil {
				c.Chaos = &faults.Scenario{}
			}
			swapI64(&c.Chaos.CorruptEveryActs)
		}},
	}
}

// genKeyConfig draws a cacheable base configuration: the default knobs
// with a generated subset perturbed, plus optional Attack/Chaos specs,
// so the catalog is exercised from many base points (a rendering bug
// can hide at one base value and show at another — e.g. a field only
// swallowed when its neighbour is empty).
func genKeyConfig(t *proptest.T) Config {
	c := keyConfig()
	c.Profile.Name = []string{"parest", "", "a=b\nc"}[proptest.IntRange(0, 2).Draw(t, "name")]
	c.Scale = float64(proptest.IntRange(1, 64).Draw(t, "scale"))
	c.Cores = proptest.IntRange(1, 16).Draw(t, "cores")
	c.TRH = proptest.IntRange(1, 5000).Draw(t, "trh")
	c.Seed = proptest.Uint64().Draw(t, "seed")
	c.Tracker = TrackerKind([]string{"hydra", "para", "start", ""}[proptest.IntRange(0, 3).Draw(t, "tracker")])
	c.WriteFrac = float64(proptest.IntRange(0, 4).Draw(t, "wfrac")) / 4
	c.WindowCycles = int64(proptest.IntRange(0, 1<<20).Draw(t, "window"))
	if proptest.Bool().Draw(t, "withAttack") {
		n := proptest.IntRange(0, 4).Draw(t, "attackRows")
		rows := make([]uint32, n)
		for i := range rows {
			rows[i] = uint32(proptest.IntRange(0, 1<<16).Draw(t, "row"))
		}
		c.Attack = &AttackSpec{Rows: rows, Acts: proptest.IntRange(0, 1<<20).Draw(t, "acts")}
	}
	if proptest.Bool().Draw(t, "withChaos") {
		c.Chaos = &faults.Scenario{
			Name:            "gen",
			DropRefreshProb: float64(proptest.IntRange(0, 8).Draw(t, "drop")) / 8,
		}
	}
	return c
}

func cacheKeySensitivityProp(tb testing.TB) func(*proptest.T) {
	muts := keyMutations()
	return func(t *proptest.T) {
		c := genKeyConfig(t)
		base, ok := c.CacheKey()
		if !ok {
			t.Fatalf("generated config must be cacheable")
		}
		if again, _ := c.CacheKey(); again != base {
			t.Fatalf("hashing the same value twice diverged: %s vs %s", base, again)
		}
		m := muts[proptest.IntRange(0, len(muts)-1).Draw(t, "mutation")]
		mc := c
		m.mut(&mc)
		after, ok := mc.CacheKey()
		if !ok {
			t.Fatalf("mutation %s made the config uncacheable", m.name)
		}
		if after == base {
			t.Fatalf("mutating %s left the cache key unchanged (%s):\n%s", m.name, base, mc.CanonicalString())
		}
	}
}

// TestCacheKeySensitivityMachine requires every single-field mutation
// in the catalog to move the cache key, from generated base configs.
func TestCacheKeySensitivityMachine(t *testing.T) {
	proptest.Check(t, cacheKeySensitivityProp(t))
}

// TestCacheKeyMutationCatalogCovers pins the catalog against the
// canonical surface: every line CanonicalString emits must have at
// least one mutation targeting a field on it, so a new hashed field
// cannot land without a sensitivity check. (The 29-field reflection pin
// in cachekey_test.go catches fields added to Config but not hashed.)
func TestCacheKeyMutationCatalogCovers(t *testing.T) {
	if n := len(keyMutations()); n < 40 {
		t.Fatalf("mutation catalog shrank to %d entries; it must cover every CanonicalString field", n)
	}
}
