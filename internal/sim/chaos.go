package sim

// Chaos fault injection: the hooks through which a faults.Scenario
// perturbs a running system. Three injection points cover the
// mechanisms Hydra's guarantee depends on: the victim-refresh path
// (chaosDropRefresh), the periodic window reset (chaosPostpone), and
// the DRAM-resident RCT (chaosOnAct's corruption sweeps).

// ChaosStats summarizes the faults injected into one run.
type ChaosStats struct {
	// DroppedRefreshes counts mitigation decisions whose victim-refresh
	// burst was silently discarded.
	DroppedRefreshes int64
	// CorruptedEntries counts RCT counters zeroed by corruption sweeps.
	CorruptedEntries int64
	// PostponedResets counts tracking windows stretched past their
	// nominal length.
	PostponedResets int64
}

// chaosRand is a xorshift64* draw in [0,1); deterministic per seed so
// chaos campaigns are reproducible and resumable.
func (s *System) chaosRand() float64 {
	x := s.chaosRNG
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.chaosRNG = x
	return float64((x*0x2545f4914f6cdd1d)>>11) / (1 << 53)
}

// chaosOnAct runs per-activation chaos bookkeeping: spaced RCT
// corruption sweeps against the Hydra tracker.
func (s *System) chaosOnAct() {
	c := s.chaos
	if c.CorruptEveryActs <= 0 || c.CorruptRCTFrac <= 0 || s.hydra == nil {
		return
	}
	s.chaosActs++
	if s.chaosActs%c.CorruptEveryActs == 0 {
		s.chaosStats.CorruptedEntries += int64(s.hydra.CorruptRCT(c.CorruptRCTFrac, s.chaosRand))
	}
}

// chaosDropRefresh decides whether this mitigation's victim-refresh
// burst is lost between the controller and the DRAM. Only the refresh
// policy has a burst to lose.
func (s *System) chaosDropRefresh() bool {
	if s.chaos.DropRefreshProb <= 0 {
		return false
	}
	switch s.cfg.Mitigation {
	case "", MitigateRefresh:
	default:
		return false
	}
	if s.chaosRand() >= s.chaos.DropRefreshProb {
		return false
	}
	s.chaosStats.DroppedRefreshes++
	return true
}

// chaosPostpone returns the extra cycles this window reset slips by.
func (s *System) chaosPostpone() int64 {
	if s.chaos.PostponeWindows <= 0 {
		return 0
	}
	s.chaosStats.PostponedResets++
	return int64(s.chaos.PostponeWindows * float64(s.window))
}
