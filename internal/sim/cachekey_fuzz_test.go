package sim

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/workload"
)

// fuzzConfig builds a cacheable config entirely from fuzzer-chosen
// values, exercising the canonical rendering across the whole value
// space (negative sizes, NaN-free float extremes, empty and long
// strings, nil versus zero-valued pointers).
func fuzzConfig(name string, suite string, mpki float64, rows int, scale float64,
	cores int, trh int, seed uint64, tracker string, gct int, wfrac float64,
	window int64, withAttack bool, acts int, withChaos bool, drop float64) Config {
	c := keyConfig()
	c.Profile.Name = name
	c.Profile.Suite = workload.Suite(suite)
	c.Profile.MPKI = mpki
	c.Profile.UniqueRows = rows
	c.Scale = scale
	c.Cores = cores
	c.TRH = trh
	c.Seed = seed
	c.Tracker = TrackerKind(tracker)
	c.HydraGCTEntries = gct
	c.WriteFrac = wfrac
	c.WindowCycles = window
	if withAttack {
		c.Attack = &AttackSpec{Rows: []uint32{1, 2}, Acts: acts}
	}
	if withChaos {
		c.Chaos = &faults.Scenario{Name: "fz", DropRefreshProb: drop}
	}
	return c
}

// FuzzCacheKey checks the two canonicalization invariants over
// arbitrary field values: building the same configuration twice always
// produces the same key (no map-order or formatting instability), and
// flipping any single result-affecting field always produces a
// different key (no two distinct configurations collide by rendering
// to the same preimage — e.g. a field boundary swallowed by a
// neighbouring string).
func FuzzCacheKey(f *testing.F) {
	f.Add("parest", "spec", 24.2, 43008, 16.0, 8, 500, uint64(1), "hydra", 0, 0.25, int64(0), false, 0, false, 0.0)
	f.Add("", "", -1.0, -5, 0.5, 1, 1, uint64(0), "", 128, 1.0, int64(1), true, 100, true, 0.5)
	f.Add("a\nb=c/d\"e", "micro", 1e300, 1 << 40, 1e-9, 1000, 1 << 30, ^uint64(0), "x y", -1, -0.5, int64(-1), true, -7, true, -0.1)
	f.Fuzz(func(t *testing.T, name string, suite string, mpki float64, rows int,
		scale float64, cores int, trh int, seed uint64, tracker string, gct int,
		wfrac float64, window int64, withAttack bool, acts int, withChaos bool, drop float64) {
		if mpki != mpki || wfrac != wfrac || scale != scale || drop != drop {
			t.Skip("NaN never round-trips equal; configs are built from real measurements")
		}
		build := func() Config {
			return fuzzConfig(name, suite, mpki, rows, scale, cores, trh, seed,
				tracker, gct, wfrac, window, withAttack, acts, withChaos, drop)
		}
		base, ok := build().CacheKey()
		if !ok {
			t.Fatal("fuzz config must be cacheable: no Observer/Trace/Traces are set")
		}
		if again, _ := build().CacheKey(); again != base {
			t.Fatalf("same inputs hashed twice: %s vs %s", base, again)
		}
		// Single-field flips must always move the key.
		flips := map[string]func(*Config){
			"Profile.Name": func(c *Config) { c.Profile.Name += "\x00" },
			"Seed":         func(c *Config) { c.Seed ^= 1 },
			"Scale": func(c *Config) {
				// Arithmetic flips can be no-ops at float extremes
				// (1e300+1 == 1e300); swap between sentinels instead.
				if c.Scale == 12345.5 {
					c.Scale = 54321.5
				} else {
					c.Scale = 12345.5
				}
			},
			"Tracker":      func(c *Config) { c.Tracker += "z" },
			"WindowCycles": func(c *Config) { c.WindowCycles ^= 1 },
			"Attack":       func(c *Config) { c.Attack = nil },
			"Chaos":        func(c *Config) { c.Chaos = nil },
		}
		for fname, flip := range flips {
			c := build()
			before, _ := c.CacheKey()
			flip(&c)
			after, _ := c.CacheKey()
			if before == after && !unchangedByFlip(fname, withAttack, withChaos) {
				t.Fatalf("flipping %s left the key unchanged (%s)", fname, before)
			}
		}
	})
}

// unchangedByFlip reports flips that are no-ops for this input (nil-ing
// an Attack/Chaos that was never set).
func unchangedByFlip(field string, withAttack, withChaos bool) bool {
	return (field == "Attack" && !withAttack) || (field == "Chaos" && !withChaos)
}
