package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/memsim"
)

// MitigationPolicy selects what happens when the tracker flags a row.
type MitigationPolicy string

// Policies.
const (
	// MitigateRefresh is the paper's default: refresh Blast victim
	// rows on each side of the aggressor.
	MitigateRefresh MitigationPolicy = "refresh"
	// MitigateRowSwap is the Section 8 future-work policy: migrate the
	// aggressor's content to a random same-bank row (Randomized
	// Row-Swap), paying two row migrations instead of four victim
	// refreshes but durably relocating the hot row.
	MitigateRowSwap MitigationPolicy = "rowswap"
	// MitigateThrottle is delay-based access-rate control (the only
	// policy D-CBF-style trackers support): further activations of a
	// flagged row are stalled so its rate cannot exceed T_H per
	// window. The paper's footnote 6 argues this is a denial of
	// service at ultra-low thresholds; the ext-throttle experiment
	// reproduces that.
	MitigateThrottle MitigationPolicy = "throttle"
)

// demandGate interposes between the cores and the memory system,
// applying the logical-to-physical row remapping (row swaps) and
// arrival-time throttling the active policy requires.
type demandGate struct {
	s *System
}

var _ cpu.Memory = demandGate{}

// NewRequest implements cpu.Memory by handing out pooled requests
// from the underlying memory system.
func (g demandGate) NewRequest() *memsim.Request { return g.s.mem.NewRequest() }

// Submit implements cpu.Memory.
func (g demandGate) Submit(r *memsim.Request) bool {
	s := g.s
	if len(s.rowRemap) > 0 {
		loc := s.cfg.Mem.Decode(r.Line)
		row := s.cfg.Mem.GlobalRow(loc)
		if phys, ok := s.rowRemap[row]; ok {
			ploc := s.cfg.Mem.RowLoc(phys)
			ploc.Col = loc.Col
			r.Line = s.cfg.Mem.Encode(ploc)
		}
	}
	if len(s.throttled) > 0 {
		loc := s.cfg.Mem.Decode(r.Line)
		row := s.cfg.Mem.GlobalRow(loc)
		if until, ok := s.throttled[row]; ok {
			if until > r.Arrive {
				// Rate limiting: this access takes the next slot and
				// pushes the slot after it a full period out.
				r.Arrive = until
				s.throttled[row] = until + s.throttleStep()
				s.throttleDelays++
			} else {
				delete(s.throttled, row)
			}
		}
	}
	return s.mem.Submit(r)
}

// performSwap relocates the flagged physical row to a random same-bank
// row, updating the indirection and enqueueing the migration traffic.
// Migration is modeled as copying both 8 KB rows: 128 line reads from
// each source plus 128 line writes to each destination, submitted as
// metadata-class transfers so they compete for bandwidth without
// blocking demand reads.
func (s *System) performSwap(aggPhys uint32, at int64) {
	rowsPerBank := s.cfg.Mem.RowsPerBank
	bankBase := aggPhys / uint32(rowsPerBank) * uint32(rowsPerBank)
	maxRow := uint32(rowsPerBank - 1)
	if s.region != nil {
		maxRow = uint32(s.region.MaxDemandRow())
	}
	s.swapRNG = s.swapRNG*6364136223846793005 + 1442695040888963407
	partnerPhys := bankBase + uint32(s.swapRNG>>33)%(maxRow+1)
	if partnerPhys == aggPhys {
		partnerPhys = bankBase + (partnerPhys-bankBase+1)%(maxRow+1)
	}

	aggLog := s.logicalOf(aggPhys)
	partnerLog := s.logicalOf(partnerPhys)
	s.setRemap(aggLog, partnerPhys)
	s.setRemap(partnerLog, aggPhys)
	s.swaps++

	// Copy traffic: read every line of both rows, write every line of
	// both rows (the scratch-buffer copy of the RRS design).
	lines := s.cfg.Mem.LinesPerRow()
	for _, phys := range [...]uint32{aggPhys, partnerPhys} {
		loc := s.cfg.Mem.RowLoc(phys)
		for col := 0; col < lines; col++ {
			loc.Col = col
			for _, kind := range [...]memsim.Kind{memsim.MetaRead, memsim.MetaWrite} {
				r := s.mem.NewRequest()
				r.Line, r.Kind, r.Arrive = s.cfg.Mem.Encode(loc), kind, at
				s.mem.Submit(r)
			}
		}
	}
}

func (s *System) logicalOf(phys uint32) uint32 {
	if l, ok := s.rowInverse[phys]; ok {
		return l
	}
	return phys
}

func (s *System) setRemap(logical, phys uint32) {
	if logical == phys {
		delete(s.rowRemap, logical)
		delete(s.rowInverse, phys)
		return
	}
	s.rowRemap[logical] = phys
	s.rowInverse[phys] = logical
}

// throttleStep is the minimum spacing between accesses to a throttled
// row: the remaining threshold budget spread over a whole window
// (footnote 6's arithmetic), so its rate cannot exceed T_H per window.
func (s *System) throttleStep() int64 {
	th := s.cfg.TRH / 2
	if th < 1 {
		th = 1
	}
	return s.window / int64(th)
}

// performThrottle blocks further activations of the flagged row.
func (s *System) performThrottle(row uint32, at int64) {
	s.throttled[row] = at + s.throttleStep()
	s.throttles++
}

func validPolicy(p MitigationPolicy) error {
	switch p {
	case "", MitigateRefresh, MitigateRowSwap, MitigateThrottle:
		return nil
	default:
		return fmt.Errorf("sim: unknown mitigation policy %q", p)
	}
}
