package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// CacheKeyVersion tags every cache key with the simulation-semantics
// generation. Bump it whenever a change alters what any configuration
// would compute — timing model fixes, tracker behaviour changes, new
// result fields — so stale on-disk cache entries from older binaries
// can never be replayed as current results. Purely structural changes
// (refactors proven result-identical) keep the version.
// v2: added the START/MINT/DAPPER trackers and their config knobs
// (STARTLLCBytes, MINTIntervalActs) to the hashed fields.
// v3: per-site RNG streams (internal/rngstream). PARA, MINT, the Hydra
// address cipher, row-swap and chaos previously all consumed the raw
// cell Seed, so their streams were correlated; every seeded
// configuration now computes different (decorrelated) results. Also
// v3: the memsim scheduler keeps bank buckets in submission order even
// when arrival timestamps run backward (the out-of-order-arrival
// leapfrog fix), which changes results for runs that submit
// future-dated requests — the throttle mitigation policy.
// v4: the run loop advances memory in bulk-synchronous epochs with
// tracker callbacks replayed at the epoch barrier (the channel-parallel
// engine; docs/PERFORMANCE.md). Tracker feedback — victim refreshes and
// metadata traffic — enters the queues up to one controller lookahead
// (~a hundred cycles) later than under the old per-event interleaving,
// shifting results for every configuration with a tracker. The Parallel
// knob itself is NOT hashed: parallel and serial execution compute
// bitwise-identical results, so cached cells are shared across modes.
const CacheKeyVersion = "hydra-cell/v4"

// Cacheable reports whether a run's outcome is fully determined by the
// fields CanonicalString hashes. Runs with side-effecting attachments
// are not: an Observer must see every activation (replaying a cached
// Result would silently skip its callbacks), a Tracer must record the
// event stream, and external trace sources are opaque readers whose
// content cannot be hashed.
func (c Config) Cacheable() bool {
	return c.Observer == nil && c.Trace == nil && len(c.Traces) == 0
}

// CanonicalString renders every result-affecting field of the
// configuration in a fixed order and format, independent of how the
// Config value was built. It is the preimage of CacheKey and is
// exposed for debugging cache behaviour ("why did these two cells not
// dedupe?"). Ctx, Progress and Parallel are excluded — they control
// cancellation, watchdog reporting and execution strategy, never the
// computed Result — as are the unhashable attachments that Cacheable
// gates on.
func (c Config) CanonicalString() string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "version=%s\n", CacheKeyVersion)
	fmt.Fprintf(&b, "mem=%d/%d/%d/%d/%d\n",
		c.Mem.Channels, c.Mem.RanksPerChannel, c.Mem.BanksPerRank, c.Mem.RowsPerBank, c.Mem.RowBytes)
	fmt.Fprintf(&b, "profile=%q/%q/%s/%d/%d/%s\n",
		c.Profile.Name, string(c.Profile.Suite), g(c.Profile.MPKI),
		c.Profile.UniqueRows, c.Profile.Hot250, g(c.Profile.ActsPerRow))
	fmt.Fprintf(&b, "scale=%s keep=%t cores=%d trh=%d blast=%d seed=%d\n",
		g(c.Scale), c.KeepStructSize, c.Cores, c.TRH, c.Blast, c.Seed)
	fmt.Fprintf(&b, "tracker=%q cra=%d gct=%d rcc=%d tg=%d rand=%t para=%s meta=%t\n",
		string(c.Tracker), c.CRACacheBytes, c.HydraGCTEntries, c.HydraRCCEntries,
		c.HydraTG, c.HydraRandomize, g(c.PARAFailProb), c.TrackMetaRows)
	fmt.Fprintf(&b, "startllc=%d mintw=%d\n", c.STARTLLCBytes, c.MINTIntervalActs)
	fmt.Fprintf(&b, "wfrac=%s burst=%d window=%d policy=%q\n",
		g(c.WriteFrac), c.Burst, c.WindowCycles, string(c.Mitigation))
	if c.Attack == nil {
		b.WriteString("attack=nil\n")
	} else {
		fmt.Fprintf(&b, "attack=%v/%d\n", c.Attack.Rows, c.Attack.Acts)
	}
	if c.Chaos == nil {
		b.WriteString("chaos=nil\n")
	} else {
		fmt.Fprintf(&b, "chaos=%q/%s/%s/%s/%d\n",
			c.Chaos.Name, g(c.Chaos.DropRefreshProb), g(c.Chaos.PostponeWindows),
			g(c.Chaos.CorruptRCTFrac), c.Chaos.CorruptEveryActs)
	}
	return b.String()
}

// CacheKey returns the content-addressed identity of this run: the
// hex SHA-256 of CanonicalString. Two configurations share a key
// exactly when Run would compute bitwise-identical Results (same
// knobs, same workload, same seed, same simulator generation), which
// is what lets the campaign cache replay a baseline cell simulated
// for one figure into every other figure that needs it. ok is false
// for configurations whose outcome is not hashable (see Cacheable).
func (c Config) CacheKey() (key string, ok bool) {
	if !c.Cacheable() {
		return "", false
	}
	sum := sha256.Sum256([]byte(c.CanonicalString()))
	return hex.EncodeToString(sum[:]), true
}
