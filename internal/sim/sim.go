// Package sim wires the full evaluation system of the paper together:
// 8 trace-driven cores (internal/cpu), the DDR4 memory system
// (internal/memsim), a row-hammer tracker (Hydra from internal/core or
// a baseline from internal/track), the victim-refresh mitigation
// policy, and the reserved DRAM region holding tracker metadata.
//
// Every row activation the memory controller performs — demand, victim
// refresh or metadata — is fed to the tracker; mitigations become
// victim-refresh activations (feeding back, the Half-Double defense)
// and tracker metadata accesses become memory traffic that competes
// with demand requests. Slowdowns therefore emerge from the same
// mechanisms as in the paper: bandwidth and bank contention.
package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/memsim"
	"repro/internal/mitigate"
	"repro/internal/obsv"
	"repro/internal/rh"
	"repro/internal/rngstream"
	"repro/internal/track"
	"repro/internal/workload"
)

// TrackerKind selects the tracking scheme.
type TrackerKind string

// Tracker kinds usable in full-system simulation.
const (
	TrackNone       TrackerKind = "none" // non-secure baseline
	TrackHydra      TrackerKind = "hydra"
	TrackHydraNoGCT TrackerKind = "hydra-nogct"
	TrackHydraNoRCC TrackerKind = "hydra-norcc"
	TrackGraphene   TrackerKind = "graphene"
	TrackCRA        TrackerKind = "cra"
	TrackOCPR       TrackerKind = "ocpr"
	TrackPARA       TrackerKind = "para"
	TrackSTART      TrackerKind = "start"
	TrackMINT       TrackerKind = "mint"
	TrackDAPPER     TrackerKind = "dapper"
)

// Config describes one full-system run.
type Config struct {
	Mem     dram.Config
	Profile workload.Profile

	// Scale divides the workload footprint and, unless
	// KeepStructSize is set, the tracker structures, preserving the
	// footprint-to-structure ratios of the paper while simulating a
	// fraction of a 64 ms window.
	Scale          float64
	KeepStructSize bool

	Cores int
	TRH   int
	Blast int
	Seed  uint64

	Tracker TrackerKind

	// CRACacheBytes sizes CRA's metadata cache (default 64 KB,
	// divided across channels as in the paper; here it is the total).
	CRACacheBytes int

	// HydraGCTEntries / HydraRCCEntries / HydraTG override Hydra's
	// structure sizes and GCT threshold for the sensitivity studies
	// (zero keeps the scaled defaults).
	HydraGCTEntries int
	HydraRCCEntries int
	HydraTG         int

	// HydraRandomize enables the cipher-based randomized row-to-group
	// mapping of footnote 4, rekeyed every window.
	HydraRandomize bool

	// PARAFailProb sets PARA's per-row failure probability target.
	PARAFailProb float64

	// STARTLLCBytes bounds the LLC capacity START borrows for its
	// pooled tracking table (0 = the guarantee sizing).
	STARTLLCBytes int

	// MINTIntervalActs sets MINT's selection-interval length W in
	// activations (0 = the paper's default T_RH/4).
	MINTIntervalActs int

	// TrackMetaRows enables the RIT-ACT path: activations of reserved
	// metadata rows route to ActivateMeta (on by default via Default).
	TrackMetaRows bool

	// WriteFrac and Burst forward to the workload generator.
	WriteFrac float64
	Burst     int

	// Attack, when non-nil, replaces core 0 with an attacker thread
	// hammering the given rows (see AttackSpec).
	Attack *AttackSpec

	// Observer, when non-nil, receives every activation and
	// mitigation the controller performs, for security oracles.
	Observer Observer

	// Trace, when non-nil, records activation, mitigation, refresh,
	// GCT-saturation and window-reset events with cycle timestamps
	// into a bounded ring (see internal/obsv). Nil costs one branch
	// per event site.
	Trace *obsv.Tracer

	// WindowCycles overrides the tracking-window length in core
	// cycles (0 = the real 64 ms, memsim.WindowCycles). Tests use a
	// short window to exercise the reset path.
	WindowCycles int64

	// Mitigation selects what a tracker flag triggers: victim refresh
	// (default), randomized row-swap, or delay throttling.
	Mitigation MitigationPolicy

	// Ctx, when non-nil, is polled periodically by Run; cancelling it
	// aborts the simulation with the cancellation cause. The campaign
	// harness uses this to kill stalled or timed-out cells.
	Ctx context.Context

	// Progress, when non-nil, is called periodically from Run with the
	// current simulated cycle, so an external watchdog can detect a
	// stalled simulation. It is called from the simulation goroutine
	// and must be cheap and non-blocking.
	Progress func(cycle int64)

	// Chaos, when non-nil, injects the scenario's faults (dropped
	// victim refreshes, postponed auto-refresh, RCT corruption) into
	// the run. See internal/faults.
	Chaos *faults.Scenario

	// Parallel runs the memory channels of each epoch on worker
	// goroutines (see internal/memsim's epoch engine). It is an
	// execution strategy, not a model knob: parallel and serial runs
	// of the same configuration produce bitwise-identical Results, so
	// Parallel is excluded from CacheKey and cached cells are shared
	// across modes. Incompatible with Chaos — the fault injector has
	// not been audited for channel-shard safety, and New rejects the
	// combination rather than risk silent nondeterminism.
	Parallel bool

	// Traces, when non-empty, replaces the synthetic workload with
	// one pre-recorded trace source per core (see internal/trace);
	// Cores is ignored and Profile is used only for labeling.
	Traces []cpu.TraceSource
}

// Default returns the paper's baseline run configuration for a profile.
func Default(p workload.Profile) Config {
	return Config{
		Mem:           dram.Baseline(),
		Profile:       p,
		Scale:         16,
		Cores:         8,
		TRH:           500,
		Blast:         mitigate.DefaultBlast,
		Seed:          1,
		Tracker:       TrackHydra,
		CRACacheBytes: 64 * 1024,
		PARAFailProb:  1e-9,
		TrackMetaRows: true,
		WriteFrac:     0.25,
		Burst:         2,
	}
}

// Result summarizes one run.
type Result struct {
	Workload    string
	Tracker     string
	Cycles      int64 // completion time of the slowest core
	Insts       int64
	Mem         memsim.Stats
	Mitigations int64 // mitigation decisions taken by the tracker
	SRAMBytes   int
	// ActsByKind counts activations by the request kind that caused
	// them, indexed by memsim.Kind.
	ActsByKind [5]int64
	// WindowResets counts tracking-window resets during the run.
	WindowResets int64
	// Chaos summarizes injected faults (nil without a chaos scenario).
	Chaos *ChaosStats
	// Swaps / Throttles count policy actions under the row-swap and
	// throttle mitigation policies.
	Swaps     int64
	Throttles int64
	Hydra     *core.Stats // set for Hydra runs
	CRA       *craStats   // set for CRA runs

	// Metrics is the run's observability snapshot: the "memsim.*",
	// tracker and "mitig.*"/"sim.*" families gathered when the run
	// finished (docs/METRICS.md names every entry).
	Metrics obsv.Metrics
}

type craStats struct {
	Hits        int64
	MissFetches int64
	Writebacks  int64
}

// IPC returns instructions per cycle across all cores.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// System is one assembled full-system simulation.
type System struct {
	cfg     Config
	mem     *memsim.Memory
	cores   []*cpu.Core
	tracker rh.Tracker
	region  *dram.ReservedRegion

	now         int64 // time of the activation hook currently running
	window      int64
	nextReset   int64
	resets      int64
	mitigations int64
	actsByKind  [5]int64

	// Row-swap policy state.
	rowRemap   map[uint32]uint32 // logical -> physical
	rowInverse map[uint32]uint32 // physical -> logical
	swapRNG    uint64
	swaps      int64

	// Throttle policy state.
	throttled      map[uint32]int64 // row -> earliest next access
	throttles      int64
	throttleDelays int64

	// Chaos fault-injection state (see chaos.go; chaos == nil when no
	// scenario is configured).
	chaos      *faults.Scenario
	chaosRNG   uint64
	chaosActs  int64
	chaosStats ChaosStats
	hydra      *core.Tracker // cached Hydra tracker for RCT corruption
}

// New assembles a system. The tracker structures are scaled per
// cfg.Scale unless KeepStructSize is set.
func New(cfg Config) (*System, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: Cores must be positive")
	}
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	window := cfg.WindowCycles
	if window <= 0 {
		window = memsim.WindowCycles
	}
	if err := validPolicy(cfg.Mitigation); err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(); err != nil {
			return nil, err
		}
		if cfg.Parallel {
			return nil, fmt.Errorf("sim: Parallel is incompatible with a Chaos scenario (%q): the fault injector is not channel-shard-safe; run chaos cells serially", cfg.Chaos.Name)
		}
	}
	s := &System{
		cfg:        cfg,
		window:     window,
		nextReset:  window,
		rowRemap:   make(map[uint32]uint32),
		rowInverse: make(map[uint32]uint32),
		swapRNG:    rngstream.Derive(cfg.Seed, "sim/rowswap"),
		throttled:  make(map[uint32]int64),
		chaos:      cfg.Chaos,
		chaosRNG:   rngstream.DeriveNonzero(cfg.Seed, "sim/chaos"),
	}

	mcfg := memsim.DefaultConfig(cfg.Mem)
	mcfg.OnACT = s.onACT
	mcfg.Trace = cfg.Trace
	mcfg.Parallel = cfg.Parallel
	s.mem = memsim.New(mcfg)

	if err := s.makeTracker(&cfg); err != nil {
		return nil, err
	}
	if h, ok := s.tracker.(*core.Tracker); ok {
		s.hydra = h
		if cfg.Trace != nil {
			h.AttachTracer(cfg.Trace, func() int64 { return s.now })
		}
	}
	if s.tracker != nil && s.tracker.MetaRows() > 0 {
		s.region = dram.NewReservedRegion(cfg.Mem, s.tracker.MetaRows())
	}

	maxDemand := cfg.Mem.RowsPerBank - 1
	if s.region != nil {
		maxDemand = s.region.MaxDemandRow()
	} else {
		// Reserve the worst-case metadata area anyway so that all
		// trackers see the identical demand footprint.
		maxDemand = cfg.Mem.RowsPerBank - 17
	}

	scfg := workload.StreamConfig{
		Mem:          cfg.Mem,
		MaxDemandRow: maxDemand,
		Cores:        cfg.Cores,
		Scale:        cfg.Scale,
		Burst:        cfg.Burst,
		WriteFrac:    cfg.WriteFrac,
		Seed:         cfg.Seed,
	}
	if len(cfg.Traces) > 0 {
		for i, src := range cfg.Traces {
			c, err := cpu.New(i, cpu.DefaultConfig(), src, demandGate{s})
			if err != nil {
				return nil, err
			}
			s.cores = append(s.cores, c)
		}
	} else {
		for i := 0; i < cfg.Cores; i++ {
			sc := scfg
			sc.CoreID = i
			stream, err := workload.NewStream(cfg.Profile, sc)
			if err != nil {
				return nil, err
			}
			c, err := cpu.New(i, cpu.DefaultConfig(), stream, demandGate{s})
			if err != nil {
				return nil, err
			}
			s.cores = append(s.cores, c)
		}
	}
	if err := s.installAttack(cfg.Attack); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *System) structScale() float64 {
	if s.cfg.KeepStructSize {
		return 1
	}
	return s.cfg.Scale
}

func scaleEntries(n int, f float64) int {
	v := int(float64(n)/f + 0.5)
	if v < 16 {
		v = 16
	}
	return v
}

func (s *System) makeTracker(cfg *Config) error {
	geom := track.Geometry{
		Rows:        cfg.Mem.TotalRows(),
		RowsPerBank: cfg.Mem.RowsPerBank,
		Banks:       cfg.Mem.TotalBanks(),
		ACTMax:      1360000,
	}
	f := s.structScale()
	switch cfg.Tracker {
	case TrackNone:
		s.tracker = nil
		return nil
	case TrackHydra, TrackHydraNoGCT, TrackHydraNoRCC:
		hc := core.ForThreshold(cfg.TRH)
		hc.Rows = cfg.Mem.TotalRows()
		hc.RowBytes = cfg.Mem.RowBytes
		hc.GCTEntries = scaleEntries(hc.GCTEntries, f)
		hc.RCCEntries = scaleEntries(hc.RCCEntries, f)
		if cfg.HydraGCTEntries > 0 {
			hc.GCTEntries = scaleEntries(cfg.HydraGCTEntries, f)
		}
		if cfg.HydraRCCEntries > 0 {
			hc.RCCEntries = scaleEntries(cfg.HydraRCCEntries, f)
		}
		if cfg.HydraTG > 0 {
			hc.TG = cfg.HydraTG
		}
		hc.RCCWays = 16
		for hc.RCCEntries%hc.RCCWays != 0 {
			hc.RCCEntries++
		}
		hc.NoGCT = cfg.Tracker == TrackHydraNoGCT
		hc.NoRCC = cfg.Tracker == TrackHydraNoRCC
		hc.Randomize = cfg.HydraRandomize
		hc.Seed = rngstream.Derive(cfg.Seed, "tracker/hydra-cipher")
		t, err := core.New(hc, metaSink{s})
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	case TrackGraphene:
		t, err := track.NewGraphene(geom, cfg.TRH)
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	case TrackCRA:
		bytes := cfg.CRACacheBytes
		if bytes <= 0 {
			bytes = 64 * 1024
		}
		bytes = int(float64(bytes) / f)
		if bytes < 1024 {
			bytes = 1024
		}
		t, err := track.NewCRA(geom, cfg.TRH, bytes, metaSink{s})
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	case TrackOCPR:
		t, err := track.NewOCPR(geom, cfg.TRH)
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	case TrackPARA:
		fail := cfg.PARAFailProb
		if fail <= 0 {
			fail = 1e-9
		}
		t, err := track.NewPARA(cfg.TRH, fail, rngstream.Derive(cfg.Seed, "tracker/para"))
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	case TrackSTART:
		t, err := track.NewSTART(geom, cfg.TRH, cfg.STARTLLCBytes)
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	case TrackMINT:
		t, err := track.NewMINT(geom, cfg.TRH, cfg.MINTIntervalActs, rngstream.Derive(cfg.Seed, "tracker/mint"))
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	case TrackDAPPER:
		t, err := track.NewDAPPER(geom, cfg.TRH)
		if err != nil {
			return err
		}
		s.tracker = t
		return nil
	default:
		return fmt.Errorf("sim: unknown tracker kind %q", cfg.Tracker)
	}
}

// metaSink converts tracker metadata traffic into memory requests at
// the time of the activation being processed.
type metaSink struct{ s *System }

func (k metaSink) MetaRead(off uint64)  { k.s.submitMeta(off, memsim.MetaRead) }
func (k metaSink) MetaWrite(off uint64) { k.s.submitMeta(off, memsim.MetaWrite) }

func (s *System) submitMeta(off uint64, kind memsim.Kind) {
	var line uint64
	if s.region != nil {
		line = s.region.LineAddr(off)
	} else {
		line = off / dram.LineBytes
	}
	r := s.mem.NewRequest()
	r.Line, r.Kind, r.Arrive = line, kind, s.now
	s.mem.Submit(r) // metadata traffic is never refused
}

// onACT is the controller's activation hook: it routes the activation
// to the tracker and turns mitigations into victim-refresh requests.
func (s *System) onACT(row uint32, kind memsim.Kind, at int64) {
	s.actsByKind[kind]++
	if s.chaos != nil {
		s.chaosOnAct()
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Emit(obsv.Event{Cycle: at, Kind: obsv.EvActivate, Row: row, Aux: int64(kind)})
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.Activated(rh.Row(row))
	}
	if s.tracker == nil {
		return
	}
	s.now = at
	var mitig, meta bool
	if s.region != nil {
		if idx, ok := s.region.MetaIndex(row); ok {
			mitig = s.tracker.ActivateMeta(idx)
			meta = true
		} else {
			mitig = s.tracker.Activate(rh.Row(row))
		}
	} else {
		mitig = s.tracker.Activate(rh.Row(row))
	}
	if !mitig {
		return
	}
	s.mitigations++
	if s.cfg.Trace != nil {
		var aux int64
		if meta {
			aux = 1
		}
		s.cfg.Trace.Emit(obsv.Event{Cycle: at, Kind: obsv.EvMitigate, Row: row, Aux: aux})
	}
	if s.chaos != nil && s.chaosDropRefresh() {
		// The whole victim-refresh burst is lost downstream of the
		// tracker: neither the observer nor the memory system sees it,
		// so the security oracle keeps counting unmitigated activations.
		return
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.Mitigated(rh.Row(row))
	}
	switch s.cfg.Mitigation {
	case MitigateRowSwap:
		s.performSwap(row, at)
	case MitigateThrottle:
		s.performThrottle(row, at)
	default:
		for _, victim := range s.cfg.Mem.Victims(row, s.cfg.Blast) {
			loc := s.cfg.Mem.RowLoc(victim)
			r := s.mem.NewRequest()
			r.Line, r.Kind, r.Arrive = s.cfg.Mem.Encode(loc), memsim.MitigAct, at
			s.mem.Submit(r) // mitigation activations are never refused
		}
	}
}

// Run executes the simulation to completion and returns the result.
//
// The loop is organized around memory epochs (docs/PERFORMANCE.md,
// "Parallel cell execution"): cores step one at a time while they are
// strictly earliest, and the memory system advances in bulk-synchronous
// epochs bounded by the controller lookahead, the earliest core event
// and the next window reset. The epoch engine runs in this shape
// whether or not Config.Parallel fans the channels out, so the two
// modes compute bitwise-identical results.
func (s *System) Run() (Result, error) {
	defer s.mem.Close()
	const maxSteps = int64(2e9) // hard safety stop
	lookahead := s.mem.Lookahead()
	for steps := int64(0); ; steps++ {
		if steps > maxSteps {
			return Result{}, fmt.Errorf("sim: exceeded %d steps; likely deadlock", maxSteps)
		}
		memNext := s.mem.NextTime()
		if steps&8191 == 0 {
			if s.cfg.Ctx != nil {
				if err := s.cfg.Ctx.Err(); err != nil {
					return Result{}, fmt.Errorf("sim: aborted near cycle %d: %w", memNext, context.Cause(s.cfg.Ctx))
				}
			}
			if s.cfg.Progress != nil && memNext < memsim.Infinity {
				s.cfg.Progress(memNext)
			}
		}
		next := memNext
		coreMin := memsim.Infinity
		var coreNext *cpu.Core
		for _, c := range s.cores {
			if t := c.NextTime(); t < coreMin {
				coreMin = t
				if t < next {
					next = t
					coreNext = c
				}
			}
		}
		if next == memsim.Infinity {
			if s.allDone() {
				break
			}
			return Result{}, fmt.Errorf("sim: deadlock: cores blocked with idle memory")
		}
		if next >= s.nextReset {
			if s.tracker != nil {
				s.tracker.ResetWindow()
			}
			if wr, ok := s.cfg.Observer.(interface{ WindowReset() }); ok {
				wr.WindowReset()
			}
			if s.cfg.Trace != nil {
				s.cfg.Trace.Emit(obsv.Event{Cycle: s.nextReset, Kind: obsv.EvWindowReset, Aux: s.resets})
			}
			s.nextReset += s.window
			if s.chaos != nil {
				s.nextReset += s.chaosPostpone()
			}
			s.resets++
			continue
		}
		if coreNext != nil {
			// A core is strictly earliest (memory wins ties, as the
			// per-event loop had it).
			coreNext.Step()
			continue
		}
		// Memory epoch: every channel decision strictly before the
		// horizon runs before the barrier delivers completions and
		// activation hooks. The lookahead bound keeps core wake-ups
		// exact (no completion of this epoch lands before the
		// horizon); the core and reset clamps keep ordering with the
		// rest of the system. A core tied with memNext degenerates to
		// a one-cycle epoch — memory still wins the tie.
		h := memNext + lookahead
		if coreMin < h {
			h = coreMin
		}
		if s.nextReset < h {
			h = s.nextReset
		}
		if h <= memNext {
			h = memNext + 1
		}
		s.mem.RunEpoch(h)
	}
	if fin, ok := s.cfg.Observer.(interface{ Finish() }); ok {
		fin.Finish()
	}
	return s.result(), nil
}

func (s *System) allDone() bool {
	if !s.mem.Idle() {
		return false
	}
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

func (s *System) result() Result {
	r := Result{
		Workload:     s.cfg.Profile.Name,
		Tracker:      string(s.cfg.Tracker),
		Mem:          s.mem.Stats(),
		Mitigations:  s.mitigations,
		ActsByKind:   s.actsByKind,
		WindowResets: s.resets,
		Swaps:        s.swaps,
		Throttles:    s.throttles,
	}
	for _, c := range s.cores {
		if c.FinishTime() > r.Cycles {
			r.Cycles = c.FinishTime()
		}
		r.Insts += c.Insts
	}
	if s.tracker != nil {
		r.SRAMBytes = s.tracker.SRAMBytes()
		if h, ok := s.tracker.(*core.Tracker); ok {
			st := h.Stats()
			r.Hydra = &st
		}
		if c, ok := s.tracker.(*track.CRA); ok {
			r.CRA = &craStats{Hits: c.Hits, MissFetches: c.MissFetches, Writebacks: c.Writebacks}
		}
	}
	if s.chaos != nil {
		cs := s.chaosStats
		r.Chaos = &cs
	}
	r.Metrics = s.collectMetrics(&r)
	return r
}

// collectMetrics gathers the run's observability snapshot: the memory
// system registers the "memsim.*" family, the tracker its own family,
// and the system itself the "sim.*" and "mitig.*" names.
func (s *System) collectMetrics(r *Result) obsv.Metrics {
	reg := obsv.NewRegistry()
	r.Mem.CollectInto(reg)
	if src, ok := s.tracker.(obsv.Source); ok {
		src.CollectInto(reg)
	}
	reg.Count("sim.cycles", r.Cycles)
	reg.Count("sim.insts", r.Insts)
	reg.Gauge("sim.ipc", r.IPC())
	reg.Count("sim.window_resets", s.resets)
	reg.Count("sim.acts.mitig", s.actsByKind[memsim.MitigAct])
	reg.Count("sim.acts.read", s.actsByKind[memsim.ReadReq])
	reg.Count("sim.acts.meta_read", s.actsByKind[memsim.MetaRead])
	reg.Count("sim.acts.meta_write", s.actsByKind[memsim.MetaWrite])
	reg.Count("sim.acts.write", s.actsByKind[memsim.WriteReq])
	reg.Count("mitig.issued", s.mitigations)
	reg.Count("mitig.victim_acts", r.Mem.MitigActs)
	reg.Count("mitig.swaps", s.swaps)
	reg.Count("mitig.throttles", s.throttles)
	reg.Count("mitig.throttle_delays", s.throttleDelays)
	if s.tracker != nil {
		reg.Gauge("tracker.sram_bytes", float64(s.tracker.SRAMBytes()))
	}
	if s.chaos != nil {
		reg.Count("chaos.dropped_refreshes", s.chaosStats.DroppedRefreshes)
		reg.Count("chaos.corrupted_entries", s.chaosStats.CorruptedEntries)
		reg.Count("chaos.postponed_resets", s.chaosStats.PostponedResets)
	}
	return reg.Snapshot()
}

// Run builds a system from cfg and runs it: the one-call entry point.
func Run(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run()
}
