package sim

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/faults"
)

// chaosConfig builds the double-sided-attack fixture the fault
// injections perturb: the hot profile keeps the banks contended (so
// the attacker's alternating rows actually conflict and activate) and
// the short window exercises the reset path several times per run.
func chaosConfig(trh int) (Config, *attack.Oracle) {
	mem := dram.Baseline()
	victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 5000})
	oracle := attack.NewOracle(trh)
	cfg := testConfig(hotProfile(), TrackHydra)
	cfg.KeepStructSize = true
	cfg.TRH = trh
	cfg.WindowCycles = 500_000
	cfg.Attack = &AttackSpec{Rows: []uint32{victim - 1, victim + 1}, Acts: 40000}
	cfg.Observer = oracle
	return cfg, oracle
}

func TestChaosControlIsSafe(t *testing.T) {
	cfg, oracle := chaosConfig(500)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Safe() {
		t.Fatalf("control run broken: %+v", oracle.Violations[0])
	}
	if res.Chaos != nil {
		t.Fatalf("chaos stats without a scenario: %+v", res.Chaos)
	}
	if res.Mitigations == 0 {
		t.Fatal("attack triggered no mitigations; fixture too weak to test faults")
	}
}

func TestChaosDroppedRefreshesAreDetected(t *testing.T) {
	// T_RH=200: low enough that the attacker's per-two-window activation
	// rate clears the threshold once refreshes stop landing.
	cfg, oracle := chaosConfig(200)
	cfg.Chaos = &faults.Scenario{Name: "drop", DropRefreshProb: 1.0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || res.Chaos.DroppedRefreshes == 0 {
		t.Fatalf("no refreshes dropped: %+v", res.Chaos)
	}
	// Every victim refresh was lost, so the oracle must see rows cross
	// T_RH unmitigated — the degradation is visible, not silent.
	if oracle.Safe() {
		t.Fatalf("all refreshes dropped yet oracle safe (MaxSeen=%d, dropped=%d)",
			oracle.MaxSeen, res.Chaos.DroppedRefreshes)
	}
	if oracle.MaxSeen < cfg.TRH {
		t.Fatalf("violation recorded but MaxSeen=%d < TRH=%d", oracle.MaxSeen, cfg.TRH)
	}
	if got := res.Metrics.Counter("chaos.dropped_refreshes"); got != res.Chaos.DroppedRefreshes {
		t.Fatalf("chaos.dropped_refreshes metric = %d, want %d", got, res.Chaos.DroppedRefreshes)
	}
}

func TestChaosPostponeStretchesWindows(t *testing.T) {
	ctrl, _ := chaosConfig(500)
	base, err := Run(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if base.WindowResets < 2 {
		t.Fatalf("control run saw %d resets; window too long for this test", base.WindowResets)
	}

	cfg, oracle := chaosConfig(500)
	cfg.Chaos = &faults.Scenario{Name: "postpone", PostponeWindows: 1.0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || res.Chaos.PostponedResets == 0 {
		t.Fatalf("no resets postponed: %+v", res.Chaos)
	}
	// Doubling every window roughly halves the reset count.
	if res.WindowResets >= base.WindowResets {
		t.Fatalf("postponed run reset %d times, control %d", res.WindowResets, base.WindowResets)
	}
	// The paper's T_RH/2 tracker threshold absorbs a window straddle, so
	// stretched windows alone must not break the guarantee.
	if !oracle.Safe() {
		t.Fatalf("postponed auto-refresh broke the guarantee: %+v", oracle.Violations[0])
	}
}

func TestChaosRCTCorruptionCountsEntries(t *testing.T) {
	cfg, _ := chaosConfig(500)
	cfg.Chaos = &faults.Scenario{Name: "corrupt", CorruptRCTFrac: 1.0, CorruptEveryActs: 2000}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || res.Chaos.CorruptedEntries == 0 {
		t.Fatalf("no RCT entries corrupted: %+v", res.Chaos)
	}
}

func TestChaosScenarioValidationAtBuild(t *testing.T) {
	cfg, _ := chaosConfig(500)
	cfg.Chaos = &faults.Scenario{Name: "bad", DropRefreshProb: 1.5}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
