// Package cpu models the paper's cores (Table 2): 8 out-of-order cores
// at 3.2 GHz with a 160-entry ROB and fetch/retire width 4, driven by
// instruction traces. The model is the standard trace-driven ROB-window
// approximation USIMM uses: non-memory instructions retire at full
// width, loads issue to memory when fetched, and fetch stalls when the
// oldest incomplete load falls out of the ROB window. Writes (LLC
// writebacks) are posted and never stall the core, except through
// memory-controller queue backpressure.
package cpu

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/workload"
)

// TraceSource produces a core's memory requests; *workload.Stream
// implements it.
type TraceSource interface {
	Next() (workload.Request, bool)
}

// Memory is the submission interface a core issues to;
// *memsim.Memory implements it, and the full-system simulator wraps
// it to interpose address remapping (row swaps) or throttling.
// NewRequest hands out requests from the controller's pool so the
// steady-state fetch loop allocates nothing.
type Memory interface {
	Submit(r *memsim.Request) bool
	NewRequest() *memsim.Request
}

// Config holds the core parameters.
type Config struct {
	ROB   int // reorder-buffer entries (160)
	Width int // fetch/retire width (4)
	// RetryBackoff is the delay before retrying a refused submission
	// (memory queue full).
	RetryBackoff int64
}

// DefaultConfig returns the Table 2 core.
func DefaultConfig() Config {
	return Config{ROB: 160, Width: 4, RetryBackoff: 32}
}

type outstandingRead struct {
	instIdx  int64
	finishAt int64 // -1 until the memory system reports completion
}

// Core is one trace-driven core.
type Core struct {
	id     int
	cfg    Config
	trace  TraceSource
	mem    Memory
	time   int64 // fetch clock
	nextAt int64

	instCount int64 // instructions fetched so far
	reads     []outstandingRead
	blocked   bool // waiting for the oldest read's completion time

	pending   *memsim.Request // submission refused by a full queue
	exhausted bool
	finish    int64
	// onFin is the completion callback installed on every read; bound
	// once here so issuing a read does not allocate a closure.
	onFin func(r *memsim.Request, f int64)

	// Stats over the run.
	Insts    int64
	Reads    int64
	Writes   int64
	Retries  int64
	StallFor int64 // cycles spent blocked on the ROB window
}

// New creates a core reading from trace and issuing to mem.
func New(id int, cfg Config, trace TraceSource, mem Memory) (*Core, error) {
	if cfg.ROB <= 0 || cfg.Width <= 0 {
		return nil, fmt.Errorf("cpu: bad config %+v", cfg)
	}
	if trace == nil || mem == nil {
		return nil, fmt.Errorf("cpu: core %d needs a trace source and a memory", id)
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 32
	}
	c := &Core{id: id, cfg: cfg, trace: trace, mem: mem}
	c.onFin = c.readDone
	return c, nil
}

// readDone is the memory system's completion callback: r.User carries
// the instruction index the read was issued at. r may be recycled the
// moment this returns, so only User is read.
func (c *Core) readDone(r *memsim.Request, f int64) {
	inst := r.User
	for i := range c.reads {
		if c.reads[i].instIdx == inst {
			c.wake(i, f)
			return
		}
	}
}

// MustNew is New for statically valid parameters.
func MustNew(id int, cfg Config, trace TraceSource, mem Memory) *Core {
	c, err := New(id, cfg, trace, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// Done reports whether the trace is exhausted and all reads returned.
func (c *Core) Done() bool {
	return c.exhausted && c.pending == nil && len(c.reads) == 0
}

// FinishTime returns the cycle at which the core completed everything;
// meaningful once Done.
func (c *Core) FinishTime() int64 { return c.finish }

// NextTime returns when the core can act next; Infinity while blocked
// on an unserviced read or when done.
func (c *Core) NextTime() int64 {
	if c.Done() || c.blocked {
		return memsim.Infinity
	}
	return c.nextAt
}

// wake is called by the memory system when a read completes.
func (c *Core) wake(idx int, finish int64) {
	c.reads[idx].finishAt = finish
	if c.blocked && idx == 0 {
		c.blocked = false
		c.nextAt = finish
		if c.time > c.nextAt {
			c.nextAt = c.time
		}
		if finish > c.time {
			c.StallFor += finish - c.time
		}
	}
}

// Step advances the core by one trace record (or one retry attempt).
func (c *Core) Step() {
	if c.time < c.nextAt {
		c.time = c.nextAt
	}
	if c.pending != nil {
		req := c.pending
		req.Arrive = c.time
		if !c.mem.Submit(req) {
			c.Retries++
			c.nextAt = c.time + c.cfg.RetryBackoff
			return
		}
		c.pending = nil
		c.nextAt = c.time
		return
	}

	rec, ok := c.trace.Next()
	if !ok {
		c.exhausted = true
		c.retireAll()
		return
	}

	// Fetch the gap instructions plus the memory instruction itself.
	c.time += int64((rec.Gap + c.cfg.Width) / c.cfg.Width)
	c.instCount += int64(rec.Gap) + 1
	c.Insts += int64(rec.Gap) + 1

	// Enforce the ROB window: the oldest incomplete load must retire
	// before fetch may run further ahead than ROB instructions.
	for len(c.reads) > 0 && c.reads[0].instIdx < c.instCount-int64(c.cfg.ROB) {
		oldest := c.reads[0]
		if oldest.finishAt < 0 {
			// Completion unknown: block until the memory system wakes us.
			c.blocked = true
			c.nextAt = memsim.Infinity
			return
		}
		if oldest.finishAt > c.time {
			c.StallFor += oldest.finishAt - c.time
			c.time = oldest.finishAt
		}
		c.reads = c.reads[1:]
	}

	req := c.mem.NewRequest()
	req.Line = rec.Line
	req.Arrive = c.time
	if rec.Write {
		req.Kind = memsim.WriteReq
		c.Writes++
	} else {
		req.Kind = memsim.ReadReq
		c.Reads++
		c.reads = append(c.reads, outstandingRead{instIdx: c.instCount, finishAt: -1})
		// Identify the record by instruction index: retirements pop
		// from the front of c.reads, so readDone searches on completion.
		req.User = c.instCount
		req.OnFinish = c.onFin
	}
	if !c.mem.Submit(req) {
		// Keep the provisional ROB entry (for reads) and retry the
		// submission after a backoff; the completion callback finds
		// the entry by instruction index either way.
		c.pending = req
		c.Retries++
		c.nextAt = c.time + c.cfg.RetryBackoff
		return
	}
	c.nextAt = c.time
}

// retireAll drains the remaining reads once the trace ends.
func (c *Core) retireAll() {
	for len(c.reads) > 0 {
		oldest := c.reads[0]
		if oldest.finishAt < 0 {
			c.blocked = true
			c.nextAt = memsim.Infinity
			return
		}
		if oldest.finishAt > c.time {
			c.time = oldest.finishAt
		}
		c.reads = c.reads[1:]
	}
	c.finish = c.time
}

// Debug renders internal state for diagnostics.
func (c *Core) Debug() string {
	oldest := int64(-99)
	if len(c.reads) > 0 {
		oldest = c.reads[0].finishAt
	}
	return fmt.Sprintf("time=%d nextAt=%d blocked=%v exhausted=%v pending=%v reads=%d oldestFinish=%d insts=%d",
		c.time, c.nextAt, c.blocked, c.exhausted, c.pending != nil, len(c.reads), oldest, c.instCount)
}
