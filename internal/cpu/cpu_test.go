package cpu

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memsim"
	"repro/internal/workload"
)

// sliceTrace replays a fixed request list.
type sliceTrace struct {
	reqs []workload.Request
	i    int
}

func (s *sliceTrace) Next() (workload.Request, bool) {
	if s.i >= len(s.reqs) {
		return workload.Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

func runSystem(t *testing.T, cores []*Core, mem *memsim.Memory) {
	t.Helper()
	for steps := 0; steps < 50_000_000; steps++ {
		next := mem.NextTime()
		var core *Core
		for _, c := range cores {
			if tt := c.NextTime(); tt < next {
				next = tt
				core = c
			}
		}
		if next == memsim.Infinity {
			for _, c := range cores {
				if !c.Done() {
					t.Fatalf("deadlock: core %d not done (%s)", c.ID(), c.Debug())
				}
			}
			return
		}
		if core != nil {
			core.Step()
		} else {
			mem.Step()
		}
	}
	t.Fatal("system did not terminate")
}

func line(mem dram.Config, bank, row, col int) uint64 {
	return mem.Encode(dram.Loc{Bank: bank, Row: row, Col: col})
}

func TestComputeBoundCoreSpeed(t *testing.T) {
	mem := memsim.New(memsim.DefaultConfig(dram.Baseline()))
	dcfg := dram.Baseline()
	// 100 reads with huge gaps: runtime dominated by fetch, ~gap/width
	// cycles per record.
	var reqs []workload.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, workload.Request{Gap: 4000, Line: line(dcfg, i%16, 5, i%128)})
	}
	c := MustNew(0, DefaultConfig(), &sliceTrace{reqs: reqs}, mem)
	runSystem(t, []*Core{c}, mem)
	wantMin := int64(100 * 4000 / 4)
	if c.FinishTime() < wantMin {
		t.Fatalf("finish = %d, want >= %d (fetch-bound)", c.FinishTime(), wantMin)
	}
	if c.FinishTime() > wantMin*110/100 {
		t.Fatalf("finish = %d, want ~%d: compute-bound run should hide memory latency", c.FinishTime(), wantMin)
	}
	if c.Insts != 100*4001 {
		t.Fatalf("insts = %d", c.Insts)
	}
}

func TestMemoryBoundCoreStalls(t *testing.T) {
	dcfg := dram.Baseline()
	mem := memsim.New(memsim.DefaultConfig(dcfg))
	// Zero-gap reads to a single bank and row: the run is bus/bank
	// bound and the ROB must stall.
	var reqs []workload.Request
	for i := 0; i < 400; i++ {
		reqs = append(reqs, workload.Request{Gap: 0, Line: line(dcfg, 0, 10, i%128)})
	}
	c := MustNew(0, DefaultConfig(), &sliceTrace{reqs: reqs}, mem)
	runSystem(t, []*Core{c}, mem)
	if c.StallFor == 0 {
		t.Fatal("memory-bound core never stalled")
	}
	// 400 transfers cannot beat data-bus pacing.
	if minTime := int64(400) * memsim.DDR4().TBURST; c.FinishTime() < minTime {
		t.Fatalf("finish = %d, faster than the bus allows (%d)", c.FinishTime(), minTime)
	}
	// Alternating-row conflicts must be slower than the streaming run.
	mem2 := memsim.New(memsim.DefaultConfig(dcfg))
	var reqs2 []workload.Request
	for i := 0; i < 400; i++ {
		reqs2 = append(reqs2, workload.Request{Gap: 0, Line: line(dcfg, 0, 10+(i%2)*10, 0)})
	}
	c2 := MustNew(0, DefaultConfig(), &sliceTrace{reqs: reqs2}, mem2)
	runSystem(t, []*Core{c2}, mem2)
	if c2.FinishTime() <= c.FinishTime() {
		t.Fatalf("row conflicts (%d) not slower than streaming (%d)", c2.FinishTime(), c.FinishTime())
	}
}

func TestROBLimitsOutstandingReads(t *testing.T) {
	dcfg := dram.Baseline()
	mem := memsim.New(memsim.DefaultConfig(dcfg))
	// With gap 39 (10 cycles of fetch per record), a 160-entry ROB
	// admits only 4 in-flight reads; a huge ROB admits many more and
	// must finish sooner by overlapping latencies.
	mkReqs := func() *sliceTrace {
		var reqs []workload.Request
		for i := 0; i < 200; i++ {
			reqs = append(reqs, workload.Request{Gap: 39, Line: line(dcfg, i%16, 10+i, 0)})
		}
		return &sliceTrace{reqs: reqs}
	}
	smallMem := memsim.New(memsim.DefaultConfig(dcfg))
	small := MustNew(0, Config{ROB: 160, Width: 4}, mkReqs(), smallMem)
	runSystem(t, []*Core{small}, smallMem)
	big := MustNew(0, Config{ROB: 16000, Width: 4}, mkReqs(), mem)
	runSystem(t, []*Core{big}, mem)
	if big.FinishTime() >= small.FinishTime() {
		t.Fatalf("bigger ROB not faster: %d vs %d", big.FinishTime(), small.FinishTime())
	}
}

func TestWritesDoNotBlock(t *testing.T) {
	dcfg := dram.Baseline()
	mem := memsim.New(memsim.DefaultConfig(dcfg))
	var reqs []workload.Request
	for i := 0; i < 300; i++ {
		reqs = append(reqs, workload.Request{Gap: 0, Write: true, Line: line(dcfg, 0, 10+(i%2)*10, 0)})
	}
	c := MustNew(0, DefaultConfig(), &sliceTrace{reqs: reqs}, mem)
	runSystem(t, []*Core{c}, mem)
	// Writes are posted: the ROB never stalls on one, and the core
	// finishes (modulo queue backpressure) while the memory system is
	// still grinding through the write backlog.
	if c.StallFor != 0 {
		t.Fatalf("posted writes stalled the ROB for %d cycles", c.StallFor)
	}
	s := mem.Stats()
	if c.FinishTime() >= s.BusyUntil {
		t.Fatalf("core finish %d not ahead of memory drain %d", c.FinishTime(), s.BusyUntil)
	}
	if s.Writes != 300 {
		t.Fatalf("writes serviced = %d, want 300", s.Writes)
	}
}

func TestBackpressureRetries(t *testing.T) {
	dcfg := dram.Baseline()
	cfg := memsim.DefaultConfig(dcfg)
	cfg.WriteQCap = 4
	cfg.DrainHi = 4
	cfg.DrainLo = 1
	mem := memsim.New(cfg)
	var reqs []workload.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, workload.Request{Gap: 0, Write: true, Line: line(dcfg, 0, 10+(i%2)*10, 0)})
	}
	c := MustNew(0, DefaultConfig(), &sliceTrace{reqs: reqs}, mem)
	runSystem(t, []*Core{c}, mem)
	if c.Retries == 0 {
		t.Fatal("tiny write queue never exerted backpressure")
	}
	if got := mem.Stats().Writes; got != 100 {
		t.Fatalf("writes serviced = %d, want 100", got)
	}
}

func TestBadConfigErrors(t *testing.T) {
	if _, err := New(0, Config{ROB: 0, Width: 4}, &sliceTrace{}, nil); err == nil {
		t.Fatal("zero ROB should error")
	}
	if _, err := New(0, DefaultConfig(), nil, nil); err == nil {
		t.Fatal("nil trace/memory should error")
	}
}
