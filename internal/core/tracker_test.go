package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rh"
)

// smallConfig is a deliberately tiny Hydra for fast functional tests:
// 4096 rows, 32-entry GCT (128-row groups like the paper), 64-entry
// 8-way RCC, T_RH=100 so T_H=50 and T_G=40.
func smallConfig() Config {
	return Config{
		Rows:       4096,
		TRH:        100,
		GCTEntries: 32,
		RCCEntries: 64,
		RCCWays:    8,
		RowBytes:   8192,
	}
}

func TestGCTFiltersLowActivity(t *testing.T) {
	sink := &rh.CountingSink{}
	h := MustNew(smallConfig(), sink)
	// Touch many rows a few times each: all must be GCT-only.
	for row := rh.Row(0); row < 4096; row += 16 {
		for i := 0; i < 3; i++ {
			if h.Activate(row) {
				t.Fatalf("mitigation for cold row %d", row)
			}
		}
	}
	s := h.Stats()
	if s.GCTOnly != s.Acts {
		t.Fatalf("GCTOnly=%d Acts=%d; cold traffic should be fully filtered", s.GCTOnly, s.Acts)
	}
	if sink.Total() != 0 {
		t.Fatalf("cold traffic caused %d metadata transfers", sink.Total())
	}
}

func TestGroupInitCostsTwoLinesEachWay(t *testing.T) {
	sink := &rh.CountingSink{}
	h := MustNew(smallConfig(), sink)
	// Saturate group 0 (rows 0..127): 40 activations anywhere in it.
	for i := 0; i < 40; i++ {
		h.Activate(rh.Row(i % 128))
	}
	s := h.Stats()
	if s.GroupInits != 1 {
		t.Fatalf("GroupInits = %d, want 1", s.GroupInits)
	}
	// 128 rows x 1 byte = 2 lines: 2 reads + 2 writes (Section 4.4).
	if sink.Reads != 2 || sink.Writes != 2 {
		t.Fatalf("group init traffic = %d reads, %d writes; want 2/2", sink.Reads, sink.Writes)
	}
	// Every row of the group now has an RCT count of T_G.
	for row := rh.Row(0); row < 128; row++ {
		if got := h.EstimatedCount(row); got != 40 {
			t.Fatalf("row %d estimated count = %d, want TG=40", row, got)
		}
	}
}

func TestPreciseMitigationForSoloRow(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	// Best case (Section 4.5): the row shares its group with no other
	// active row, so counting is precise and the first mitigation
	// lands exactly at T_H = 50 activations.
	row := rh.Row(300)
	for i := 1; i <= 49; i++ {
		if h.Activate(row) {
			t.Fatalf("early mitigation at activation %d", i)
		}
	}
	if !h.Activate(row) {
		t.Fatal("no mitigation at activation 50 (T_H)")
	}
	// Phase 3: subsequent mitigations every T_H activations.
	for round := 0; round < 3; round++ {
		for i := 1; i <= 49; i++ {
			if h.Activate(row) {
				t.Fatalf("round %d: early mitigation at +%d", round, i)
			}
		}
		if !h.Activate(row) {
			t.Fatalf("round %d: no mitigation at +50", round)
		}
	}
}

func TestWorstCaseEarlyMitigation(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	// Worst case (Section 4.5): row B first activates after its group
	// already saturated, so its RCT entry starts at T_G and mitigation
	// comes after T_H - T_G = 10 activations.
	a, b := rh.Row(0), rh.Row(1)
	for i := 0; i < 40; i++ {
		h.Activate(a)
	}
	for i := 1; i <= 9; i++ {
		if h.Activate(b) {
			t.Fatalf("mitigation for B at activation %d, want 10", i)
		}
	}
	if !h.Activate(b) {
		t.Fatal("no mitigation for B at activation 10 (T_H - T_G)")
	}
}

func TestAccessDistributionStats(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	// Saturate group 0, then hit one row repeatedly: first per-row
	// access is an RCT fetch (RCC miss), the rest are RCC hits.
	for i := 0; i < 40; i++ {
		h.Activate(rh.Row(5))
	}
	for i := 0; i < 9; i++ {
		h.Activate(rh.Row(5))
	}
	s := h.Stats()
	if s.GCTOnly != 40 {
		t.Errorf("GCTOnly = %d, want 40", s.GCTOnly)
	}
	if s.RCTAccess != 1 {
		t.Errorf("RCTAccess = %d, want 1 (first miss)", s.RCTAccess)
	}
	if s.RCCHit != 8 {
		t.Errorf("RCCHit = %d, want 8", s.RCCHit)
	}
	if s.Acts != 49 {
		t.Errorf("Acts = %d, want 49", s.Acts)
	}
}

func TestRCCEvictionWritesBack(t *testing.T) {
	cfg := smallConfig()
	cfg.RCCEntries = 8
	cfg.RCCWays = 8 // single set: easy to thrash
	sink := &rh.CountingSink{}
	h := MustNew(cfg, sink)
	// Saturate group 0 then touch 9 distinct rows of it: the 9th
	// install evicts a dirty entry, costing a read+write beyond the
	// install read.
	for i := 0; i < 40; i++ {
		h.Activate(rh.Row(0))
	}
	base := sink.Total()
	for r := rh.Row(0); r < 9; r++ {
		h.Activate(r)
	}
	// 9 installs = 9 reads; 1 dirty eviction = 1 read + 1 write.
	gotReads := sink.Reads - 2 // minus group-init reads
	if base != 4 {
		t.Fatalf("unexpected pre-traffic %d", base)
	}
	if gotReads != 10 || sink.Writes-2 != 1 {
		t.Fatalf("traffic = %d reads, %d writes beyond init; want 10 reads, 1 write",
			gotReads, sink.Writes-2)
	}
	// The evicted row's count must survive the round trip: row 0 was
	// evicted with count 41; re-activating it resumes from the RCT.
	if got := h.EstimatedCount(rh.Row(0)); got != 41 {
		t.Fatalf("evicted count lost: estimated = %d, want 41", got)
	}
}

func TestResetWindowClearsSRAM(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	for i := 0; i < 45; i++ {
		h.Activate(rh.Row(7))
	}
	h.ResetWindow()
	if got := h.GCTValue(rh.Row(7)); got != 0 {
		t.Fatalf("GCT after reset = %d, want 0", got)
	}
	// After reset the row must again enjoy T_H fresh activations.
	for i := 1; i <= 49; i++ {
		if h.Activate(rh.Row(7)) {
			t.Fatalf("mitigation at %d activations after reset", i)
		}
	}
	if !h.Activate(rh.Row(7)) {
		t.Fatal("no mitigation at 50 activations after reset")
	}
}

func TestStaleRCTOverwrittenAcrossWindows(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	// Window 1: drive row 9 to count 49 (one short of mitigation).
	for i := 0; i < 49; i++ {
		h.Activate(rh.Row(9))
	}
	h.ResetWindow()
	// Window 2: saturating the group must overwrite the stale 49 with
	// T_G, not resume from it (Section 4.6).
	for i := 0; i < 40; i++ {
		h.Activate(rh.Row(10)) // same group as row 9
	}
	if got := h.EstimatedCount(rh.Row(9)); got != 40 {
		t.Fatalf("stale RCT survived reset: estimated = %d, want 40", got)
	}
}

func TestActivateMetaGuardsRCTRows(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	th := h.Config().TH
	for i := 1; i < th; i++ {
		if h.ActivateMeta(0) {
			t.Fatalf("meta mitigation at activation %d, want %d", i, th)
		}
	}
	if !h.ActivateMeta(0) {
		t.Fatalf("no meta mitigation at activation %d", th)
	}
	// Counter must reset after mitigation.
	if h.ActivateMeta(0) {
		t.Fatal("meta mitigation immediately after reset")
	}
	if h.Stats().MetaMitig != 1 {
		t.Fatalf("MetaMitig = %d, want 1", h.Stats().MetaMitig)
	}
}

func TestNoGCTCountsPerRowFromStart(t *testing.T) {
	cfg := smallConfig()
	cfg.NoGCT = true
	h := MustNew(cfg, rh.NullSink{})
	if h.Name() != "hydra-nogct" {
		t.Fatalf("Name = %q", h.Name())
	}
	row := rh.Row(11)
	for i := 1; i <= 49; i++ {
		if h.Activate(row) {
			t.Fatalf("early mitigation at %d", i)
		}
	}
	if !h.Activate(row) {
		t.Fatal("no mitigation at 50")
	}
	if h.Stats().GCTOnly != 0 {
		t.Fatal("NoGCT ablation used the GCT")
	}
}

func TestNoGCTLazyClearAcrossWindows(t *testing.T) {
	cfg := smallConfig()
	cfg.NoGCT = true
	h := MustNew(cfg, rh.NullSink{})
	row := rh.Row(12)
	for i := 0; i < 30; i++ {
		h.Activate(row)
	}
	h.ResetWindow()
	// 30 more in the new window must NOT mitigate (30+30 > TH only
	// across windows, and windows are independent).
	for i := 1; i <= 30; i++ {
		if h.Activate(row) {
			t.Fatalf("stale RCT count leaked across windows (act %d)", i)
		}
	}
}

func TestNoRCCDoesReadModifyWrite(t *testing.T) {
	cfg := smallConfig()
	cfg.NoRCC = true
	sink := &rh.CountingSink{}
	h := MustNew(cfg, sink)
	if h.Name() != "hydra-norcc" {
		t.Fatalf("Name = %q", h.Name())
	}
	for i := 0; i < 40; i++ {
		h.Activate(rh.Row(0))
	}
	base := sink.Total() // group init: 2R+2W
	h.Activate(rh.Row(0))
	if sink.Total()-base != 2 {
		t.Fatalf("per-row act cost %d transfers, want 2 (RMW)", sink.Total()-base)
	}
	if h.Stats().RCCHit != 0 {
		t.Fatal("NoRCC ablation hit the RCC")
	}
}

// TestSecurityInvariant is the repo's statement of Theorem 1: under any
// activation sequence, no row accumulates more than T_H true
// activations within a window without Hydra issuing a mitigation for
// it. Runs with the static and the randomized (cipher) mapping.
func TestSecurityInvariant(t *testing.T) {
	for _, randomize := range []bool{false, true} {
		cfg := smallConfig()
		cfg.Randomize = randomize
		cfg.Seed = 1234
		th := 50

		f := func(seed int64, hotRaw uint8) bool {
			h := MustNew(cfg, rh.NullSink{})
			rng := rand.New(rand.NewSource(seed))
			hot := int(hotRaw%8) + 1
			trueCount := make(map[rh.Row]int)
			for i := 0; i < 4000; i++ {
				var row rh.Row
				if rng.Intn(100) < 80 {
					row = rh.Row(rng.Intn(hot)) // hammer a few rows
				} else {
					row = rh.Row(rng.Intn(cfg.Rows))
				}
				trueCount[row]++
				if h.Activate(row) {
					trueCount[row] = 0
				}
				if trueCount[row] > th {
					t.Logf("row %d reached %d true acts without mitigation", row, trueCount[row])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("randomize=%v: %v", randomize, err)
		}
	}
}

// TestEstimateNeverUndercounts encodes Lemma 1: Hydra's estimated count
// for a row is always >= its true count within the window.
func TestEstimateNeverUndercounts(t *testing.T) {
	f := func(seed int64) bool {
		h := MustNew(smallConfig(), rh.NullSink{})
		rng := rand.New(rand.NewSource(seed))
		trueCount := make(map[rh.Row]int)
		for i := 0; i < 2000; i++ {
			row := rh.Row(rng.Intn(256)) // concentrate to force conflicts
			trueCount[row]++
			if h.Activate(row) {
				trueCount[row] = 0
			}
			if h.EstimatedCount(row) < trueCount[row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAblationSecurityInvariant(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.NoGCT = true },
		func(c *Config) { c.NoRCC = true },
	} {
		cfg := smallConfig()
		mut(&cfg)
		h := MustNew(cfg, rh.NullSink{})
		rng := rand.New(rand.NewSource(99))
		trueCount := make(map[rh.Row]int)
		for i := 0; i < 20000; i++ {
			row := rh.Row(rng.Intn(64))
			trueCount[row]++
			if h.Activate(row) {
				trueCount[row] = 0
			}
			if trueCount[row] > 50 {
				t.Fatalf("%s: row %d exceeded TH without mitigation", h.Name(), row)
			}
		}
	}
}

func TestActivateOutOfRangePanics(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range row should panic")
		}
	}()
	h.Activate(rh.Row(4096))
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.TG = cfg.TRH // invalid: TG >= TH
	if _, err := New(cfg, rh.NullSink{}); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestNonDivisibleGeometry(t *testing.T) {
	// Rows not a multiple of the group size: the last group is
	// partial and must still init correctly.
	cfg := Config{
		Rows:       1000, // groups of ceil(1000/8)=125
		TRH:        100,
		GCTEntries: 8,
		RCCEntries: 16,
		RCCWays:    8,
		RowBytes:   8192,
	}
	h := MustNew(cfg, rh.NullSink{})
	if g := cfg.GroupSize(); g != 125 {
		t.Fatalf("GroupSize = %d", g)
	}
	// Saturate the last (partial) group.
	last := rh.Row(999)
	for i := 0; i < 40; i++ {
		h.Activate(last)
	}
	if got := h.EstimatedCount(last); got != 40 {
		t.Fatalf("partial-group estimate = %d, want 40", got)
	}
	for i := 1; i <= 10; i++ {
		mit := h.Activate(last)
		if i < 10 && mit {
			t.Fatalf("early mitigation at +%d", i)
		}
		if i == 10 && !mit {
			t.Fatal("no mitigation at TH")
		}
	}
}

func TestRandomizedWindowRemapping(t *testing.T) {
	cfg := smallConfig()
	cfg.Randomize = true
	cfg.Seed = 5
	h := MustNew(cfg, rh.NullSink{})
	// Build a set of rows sharing row 0's group this window.
	g0 := h.index(rh.Row(0)) / uint32(h.groupSize)
	var mates []rh.Row
	for r := rh.Row(1); r < 4096 && len(mates) < 5; r++ {
		if h.index(r)/uint32(h.groupSize) == g0 {
			mates = append(mates, r)
		}
	}
	if len(mates) == 0 {
		t.Skip("no group mates found (tiny domain)")
	}
	h.ResetWindow() // rekey
	moved := 0
	for _, r := range mates {
		if h.index(r)/uint32(h.groupSize) != h.index(rh.Row(0))/uint32(h.groupSize) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("rekey left the whole group intact; mapping not randomized")
	}
}

func TestMitigationRateUnderSustainedHammer(t *testing.T) {
	// Phase-3 cadence: over a long hammer, mitigations settle to
	// exactly one per TH activations.
	h := MustNew(smallConfig(), rh.NullSink{})
	row := rh.Row(2000)
	mitigs := 0
	n := 5000
	for i := 0; i < n; i++ {
		if h.Activate(row) {
			mitigs++
		}
	}
	if want := n / 50; mitigs != want {
		t.Fatalf("mitigations = %d over %d acts, want %d", mitigs, n, want)
	}
}

func TestStatsAreConsistent(t *testing.T) {
	h := MustNew(smallConfig(), rh.NullSink{})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30000; i++ {
		h.Activate(rh.Row(rng.Intn(4096)))
	}
	s := h.Stats()
	if s.GCTOnly+s.RCCHit+s.RCTAccess != s.Acts {
		t.Fatalf("distribution does not sum: %+v", s)
	}
	if s.MetaReads < s.MetaWrites {
		t.Fatalf("reads (%d) < writes (%d): every write path also reads", s.MetaReads, s.MetaWrites)
	}
}
