package core
