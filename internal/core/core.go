// Package core implements Hydra, the paper's hybrid row-hammer tracker
// (Section 4). Hydra combines three lines of defense:
//
//  1. the Group-Count Table (GCT), an untagged SRAM table of saturating
//     counters aggregated over groups of rows, which filters the vast
//     majority of activations;
//  2. the Row-Count Cache (RCC), a small set-associative SRAM cache of
//     per-row counters, organized at single-counter granularity and
//     tagged by row address;
//  3. the Row-Count Table (RCT), one counter per row stored in a
//     reserved region of DRAM, giving guaranteed per-row tracking for
//     an arbitrary number of rows.
//
// The tracker is purely functional: it owns its counter state and the
// mitigation decisions, while DRAM traffic for RCT lines is reported to
// an rh.MemSink so a timing simulator can charge it. Its access
// distribution (Figure 4 / Figure 6) is exposed through Stats, which
// registers into the observability layer as the "hydra.*" and "rct.*"
// metric families; AttachTracer additionally streams GCT-saturation
// events into an obsv.Tracer ring.
package core
