package core

import (
	"testing"

	"repro/internal/rh"
)

// BenchmarkGCTPath measures the common case: activations filtered
// entirely by the Group-Count Table.
func BenchmarkGCTPath(b *testing.B) {
	t := MustNew(Default(), rh.NullSink{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Spread rows so GCT entries rarely reach T_G.
		t.Activate(rh.Row(uint32(i*613) % (4 * 1024 * 1024)))
	}
}

// BenchmarkRCCPath measures per-row tracking hits in the Row-Count
// Cache (the group is pre-saturated).
func BenchmarkRCCPath(b *testing.B) {
	t := MustNew(Default(), rh.NullSink{})
	for i := 0; i < 200; i++ {
		t.Activate(rh.Row(0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Activate(rh.Row(uint32(i % 8))) // all in the saturated group
	}
}

// BenchmarkRCTPath measures the worst case: every per-row access
// misses the RCC and fetches the RCT line.
func BenchmarkRCTPath(b *testing.B) {
	cfg := Default()
	cfg.NoRCC = true
	t := MustNew(cfg, rh.NullSink{})
	for i := 0; i < 200; i++ {
		t.Activate(rh.Row(0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Activate(rh.Row(uint32(i % 128)))
	}
}

// BenchmarkRandomizedIndexing measures the cipher-permuted variant of
// the GCT path (footnote 4).
func BenchmarkRandomizedIndexing(b *testing.B) {
	cfg := Default()
	cfg.Randomize = true
	cfg.Seed = 7
	t := MustNew(cfg, rh.NullSink{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Activate(rh.Row(uint32(i*613) % (4 * 1024 * 1024)))
	}
}

// BenchmarkResetWindow measures the per-64 ms SRAM clear.
func BenchmarkResetWindow(b *testing.B) {
	t := MustNew(Default(), rh.NullSink{})
	for i := 0; i < 100000; i++ {
		t.Activate(rh.Row(uint32(i) % (4 * 1024 * 1024)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.ResetWindow()
	}
}
