package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/obsv"
	"repro/internal/rh"
)

// Stats counts where activation updates were satisfied, reproducing the
// three access categories of Figure 4 / Figure 6, plus mitigation and
// group-initialization activity.
type Stats struct {
	Acts        int64 // total activations observed (demand + mitigation feedback)
	GCTOnly     int64 // satisfied by the GCT alone (Figure 4a)
	RCCHit      int64 // needed per-row state, hit in the RCC (Figure 4b)
	RCTAccess   int64 // needed per-row state, went to DRAM (Figure 4c)
	Mitigations int64 // mitigations issued for tracked rows
	GroupInits  int64 // GCT entries that saturated (RCT group initializations)
	MetaActs    int64 // activations observed on the RCT's own rows
	MetaMitig   int64 // mitigations issued for RCT rows (RIT-ACT)
	MetaReads   int64 // 64-byte RCT line reads issued
	MetaWrites  int64 // 64-byte RCT line writes issued
}

// CollectInto implements obsv.Source, registering the "hydra.*" access
// distribution and the "rct.*" DRAM-traffic family (docs/METRICS.md).
func (s Stats) CollectInto(r *obsv.Registry) {
	r.Count("hydra.acts", s.Acts)
	r.Count("hydra.gct_only", s.GCTOnly)
	r.Count("hydra.rcc_hit", s.RCCHit)
	r.Count("hydra.mitigations", s.Mitigations)
	r.Count("tracker.mitigations", s.Mitigations+s.MetaMitig)
	r.Count("hydra.group_inits", s.GroupInits)
	r.Count("hydra.meta_acts", s.MetaActs)
	r.Count("hydra.meta_mitig", s.MetaMitig)
	r.Count("rct.fetches", s.RCTAccess)
	r.Count("rct.line_reads", s.MetaReads)
	r.Count("rct.line_writes", s.MetaWrites)
}

// Tracker is the Hydra hybrid tracker. It implements rh.Tracker.
// It is not safe for concurrent use; the memory controller serializes
// activations per rank in hardware and the simulator does the same.
type Tracker struct {
	cfg       Config // with defaults resolved
	sink      rh.MemSink
	gct       []uint16 // saturating group counters (0..TG)
	rcc       *cache.SetAssoc
	rct       []uint16 // per-row counters, the DRAM-resident table
	rctEpoch  []uint32 // per-line epoch for the NoGCT ablation's lazy clear
	epoch     uint32
	ritAct    []uint16 // SRAM counters guarding the RCT's own rows
	cipher    *rowCipher
	groupSize int
	stats     Stats

	// Event tracing (AttachTracer); nil when disabled.
	trace   *obsv.Tracer
	traceAt func() int64
}

var _ rh.Tracker = (*Tracker)(nil)

// New creates a Hydra tracker. The sink receives RCT line traffic; pass
// rh.NullSink{} when only the functional behaviour matters.
func New(cfg Config, sink rh.MemSink) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.withDefaults()
	t := &Tracker{
		cfg:       d,
		sink:      sink,
		rct:       make([]uint16, d.Rows),
		ritAct:    make([]uint16, d.MetaRows()),
		groupSize: d.GroupSize(),
	}
	if !d.NoGCT {
		t.gct = make([]uint16, d.GCTEntries)
	}
	if !d.NoRCC {
		policy := cache.SRRIP
		if d.RCCUseLRU {
			policy = cache.LRU
		}
		rcc, err := cache.New(d.RCCEntries, d.RCCWays, policy)
		if err != nil {
			return nil, fmt.Errorf("core: sizing RCC: %w", err)
		}
		t.rcc = rcc
	}
	if d.NoGCT {
		t.rctEpoch = make([]uint32, d.Rows/t.entriesPerLine()+1)
		t.epoch = 1
	}
	if d.Randomize {
		t.cipher = newRowCipher(d.Rows, d.Seed)
	}
	return t, nil
}

// MustNew is New for configurations known statically valid.
func MustNew(cfg Config, sink rh.MemSink) *Tracker {
	t, err := New(cfg, sink)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements rh.Tracker.
func (t *Tracker) Name() string {
	switch {
	case t.cfg.NoGCT:
		return "hydra-nogct"
	case t.cfg.NoRCC:
		return "hydra-norcc"
	default:
		return "hydra"
	}
}

// Config returns the resolved configuration (defaults filled in).
func (t *Tracker) Config() Config { return t.cfg }

// AttachTracer enables event tracing: GCT-saturation events (a group
// switching to per-row tracking, Section 4.4) are emitted into tr,
// stamped with the cycle returned by now. The tracker itself has no
// clock, so the caller — typically the full-system simulator — supplies
// the timestamp of the activation currently being processed. Passing a
// nil tracer disables tracing again.
func (t *Tracker) AttachTracer(tr *obsv.Tracer, now func() int64) {
	t.trace = tr
	t.traceAt = now
}

// Stats returns the access-distribution counters.
func (t *Tracker) Stats() Stats { return t.stats }

// CollectInto implements obsv.Source (see Stats.CollectInto).
func (t *Tracker) CollectInto(r *obsv.Registry) { t.stats.CollectInto(r) }

// SRAMBytes implements rh.Tracker.
func (t *Tracker) SRAMBytes() int { return t.cfg.Storage().TotalBytes }

// MetaRows implements rh.Tracker.
func (t *Tracker) MetaRows() int { return t.cfg.MetaRows() }

func (t *Tracker) entriesPerLine() int {
	return 64 / t.cfg.RCTEntryBytes()
}

// rctLineOffset returns the byte offset (64-byte aligned) of the RCT
// line holding the counter of permuted row index idx.
func (t *Tracker) rctLineOffset(idx uint32) uint64 {
	return uint64(idx) / uint64(t.entriesPerLine()) * 64
}

// index applies the (optionally randomized) row-to-index mapping used
// for both GCT and RCT indexing.
func (t *Tracker) index(row rh.Row) uint32 {
	if t.cipher != nil {
		return t.cipher.Encrypt(uint32(row))
	}
	return uint32(row)
}

// Activate implements rh.Tracker. It records one activation of row and
// reports whether a mitigation must be issued for it now.
func (t *Tracker) Activate(row rh.Row) bool {
	if int(row) >= t.cfg.Rows {
		panic(fmt.Sprintf("core: row %d out of range (rows=%d)", row, t.cfg.Rows))
	}
	t.stats.Acts++
	idx := t.index(row)

	if !t.cfg.NoGCT {
		g := int(idx) / t.groupSize
		if int(t.gct[g]) < t.cfg.TG {
			t.gct[g]++
			if int(t.gct[g]) == t.cfg.TG {
				t.initGroup(g)
			}
			t.stats.GCTOnly++
			return false
		}
	}
	return t.perRow(idx)
}

// initGroup switches a saturated row-group to per-row tracking by
// initializing every RCT entry of the group to T_G (Section 4.4). With
// the default 128-row groups and 1-byte entries this is exactly two
// line reads and two line writes.
func (t *Tracker) initGroup(g int) {
	t.stats.GroupInits++
	if t.trace != nil {
		var at int64
		if t.traceAt != nil {
			at = t.traceAt()
		}
		t.trace.Emit(obsv.Event{Cycle: at, Kind: obsv.EvGCTSaturate, Aux: int64(g)})
	}
	lo := g * t.groupSize
	hi := lo + t.groupSize
	if hi > t.cfg.Rows {
		hi = t.cfg.Rows
	}
	for i := lo; i < hi; i++ {
		t.rct[i] = uint16(t.cfg.TG)
	}
	firstLine := t.rctLineOffset(uint32(lo))
	lastLine := t.rctLineOffset(uint32(hi - 1))
	for line := firstLine; line <= lastLine; line += 64 {
		t.sink.MetaRead(line)
		t.stats.MetaReads++
		t.sink.MetaWrite(line)
		t.stats.MetaWrites++
	}
}

// perRow performs per-row tracking for the permuted index (Figure 4 b/c).
func (t *Tracker) perRow(idx uint32) bool {
	if t.cfg.NoRCC {
		// Read-modify-write of the RCT line on every activation.
		t.stats.RCTAccess++
		line := t.rctLineOffset(idx)
		t.sink.MetaRead(line)
		t.stats.MetaReads++
		count := t.loadRCT(idx) + 1
		mitigate := int(count) >= t.cfg.TH
		if mitigate {
			count = 0
			t.stats.Mitigations++
		}
		t.rct[idx] = count
		t.sink.MetaWrite(line)
		t.stats.MetaWrites++
		return mitigate
	}

	if count, ok := t.rcc.Lookup(uint64(idx)); ok {
		t.stats.RCCHit++
		count++
		mitigate := int(count) >= t.cfg.TH
		if mitigate {
			count = 0
			t.stats.Mitigations++
		}
		t.rcc.Update(uint64(idx), count)
		return mitigate
	}

	// RCC miss: fetch the RCT line from memory and install the entry.
	t.stats.RCTAccess++
	t.sink.MetaRead(t.rctLineOffset(idx))
	t.stats.MetaReads++
	count := uint32(t.loadRCT(idx)) + 1
	mitigate := int(count) >= t.cfg.TH
	if mitigate {
		count = 0
		t.stats.Mitigations++
	}
	victim, evicted := t.rcc.Insert(uint64(idx), count, true)
	if evicted && victim.Dirty {
		// Write the victim's count back: fetch its line, merge, write.
		vline := t.rctLineOffset(uint32(victim.Key))
		t.sink.MetaRead(vline)
		t.stats.MetaReads++
		t.storeRCT(uint32(victim.Key), uint16(victim.Val))
		t.sink.MetaWrite(vline)
		t.stats.MetaWrites++
	}
	return mitigate
}

// loadRCT reads the RCT entry honoring the NoGCT ablation's lazy
// per-window clear (real Hydra never needs to clear the RCT because
// group initialization overwrites stale counts, Section 4.6).
func (t *Tracker) loadRCT(idx uint32) uint16 {
	if t.cfg.NoGCT {
		line := int(idx) / t.entriesPerLine()
		if t.rctEpoch[line] != t.epoch {
			lo := line * t.entriesPerLine()
			hi := lo + t.entriesPerLine()
			if hi > t.cfg.Rows {
				hi = t.cfg.Rows
			}
			for i := lo; i < hi; i++ {
				t.rct[i] = 0
			}
			t.rctEpoch[line] = t.epoch
		}
	}
	return t.rct[idx]
}

func (t *Tracker) storeRCT(idx uint32, v uint16) {
	if t.cfg.NoGCT {
		t.loadRCT(idx) // ensure the line is in the current epoch first
	}
	t.rct[idx] = v
}

// ActivateMeta implements rh.Tracker: activations of the RCT's own
// DRAM rows are tracked by the dedicated RIT-ACT SRAM counters
// (Section 5.2.2) and mitigated at T_H like any other row.
func (t *Tracker) ActivateMeta(metaRow int) bool {
	if metaRow < 0 || metaRow >= len(t.ritAct) {
		panic(fmt.Sprintf("core: metadata row %d out of range (%d rows)", metaRow, len(t.ritAct)))
	}
	t.stats.MetaActs++
	t.ritAct[metaRow]++
	if int(t.ritAct[metaRow]) >= t.cfg.TH {
		t.ritAct[metaRow] = 0
		t.stats.MetaMitig++
		return true
	}
	return false
}

// ResetWindow implements rh.Tracker: it clears the SRAM structures
// (GCT, RCC, RIT-ACT) at the end of each 64 ms tracking window. The
// DRAM-resident RCT is deliberately not touched (Section 4.6); for the
// NoGCT ablation an epoch bump models the required lazy clear. With
// randomized indexing the cipher is rekeyed, changing the row-to-group
// mapping for the next window.
func (t *Tracker) ResetWindow() {
	for i := range t.gct {
		t.gct[i] = 0
	}
	if t.rcc != nil {
		t.rcc.Reset()
	}
	for i := range t.ritAct {
		t.ritAct[i] = 0
	}
	if t.cfg.NoGCT {
		t.epoch++
	}
	if t.cipher != nil {
		t.cipher.Rekey()
	}
}

// CorruptRCT models disturbance of the DRAM-resident RCT rows — the
// attack surface Section 5.2.2 defends with RIT-ACT, exercised by the
// chaos campaigns of internal/faults: each nonzero counter is zeroed
// with probability frac (drawn from rng, which must return values in
// [0,1)). Zeroing is the adversarial direction, since an undercount
// can hide a hot row from mitigation. Counters cached in the SRAM RCC
// are deliberately untouched: physically, corrupting DRAM does not
// reach a cached copy until it is evicted and refetched. Returns how
// many entries were corrupted.
func (t *Tracker) CorruptRCT(frac float64, rng func() float64) int {
	if frac <= 0 {
		return 0
	}
	n := 0
	for i, v := range t.rct {
		if v != 0 && rng() < frac {
			t.rct[i] = 0
			n++
		}
	}
	return n
}

// GCTValue returns the current value of the GCT entry for row (for
// tests and introspection). It returns TG when the GCT is disabled.
func (t *Tracker) GCTValue(row rh.Row) int {
	if t.cfg.NoGCT {
		return t.cfg.TG
	}
	return int(t.gct[int(t.index(row))/t.groupSize])
}

// EstimatedCount returns Hydra's current estimate of the row's
// activation count this window: the GCT value while in phase 1, the
// RCC/RCT count afterwards. Estimates are always >= the true count
// (Section 4.5); tests rely on this.
func (t *Tracker) EstimatedCount(row rh.Row) int {
	idx := t.index(row)
	if !t.cfg.NoGCT {
		g := int(idx) / t.groupSize
		if int(t.gct[g]) < t.cfg.TG {
			return int(t.gct[g])
		}
	}
	if t.rcc != nil {
		if v, ok := t.rcc.Peek(uint64(idx)); ok {
			return int(v)
		}
	}
	return int(t.loadRCT(idx))
}
