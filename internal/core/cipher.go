package core

// rowCipher implements the randomized indexing of footnote 4: the
// row address is passed through a b-bit keyed block cipher before
// indexing the GCT and the RCT, so an attacker cannot choose which rows
// share a row-group. The key changes every tracking window.
//
// The cipher alternately XOR-mixes each half of the address with a
// keyed pseudorandom function of the other half (a 4-round unbalanced
// Feistel-style network), then cycle-walks to stay inside [0, rows).
// Every round is invertible given the other half, so the whole
// transform is a bijection on [0, 2^b) and, with cycle-walking, on
// [0, rows); the tests verify this exhaustively for small domains.
type rowCipher struct {
	rows   uint64
	bits   uint
	half   uint // low-half width
	keys   [4]uint32
	keyGen splitMix
}

// splitMix is a splitmix64 PRNG used only for round-key generation; it
// is deterministic from the seed so runs are reproducible.
type splitMix struct{ state uint64 }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newRowCipher(rows int, seed uint64) *rowCipher {
	b := uint(1)
	for (uint64(1) << b) < uint64(rows) {
		b++
	}
	c := &rowCipher{
		rows:   uint64(rows),
		bits:   b,
		half:   b / 2,
		keyGen: splitMix{state: seed},
	}
	c.Rekey()
	return c
}

// Rekey draws fresh round keys; Hydra calls it at every window reset so
// the row-to-group mapping changes each 64 ms.
func (c *rowCipher) Rekey() {
	for i := range c.keys {
		c.keys[i] = uint32(c.keyGen.next())
	}
}

// round is a small xorshift-multiply mix; it only needs to be a
// good-enough pseudorandom function for the Feistel construction.
func (c *rowCipher) round(x, k uint32) uint32 {
	x ^= k
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// permute applies the forward permutation once over [0, 2^bits).
func (c *rowCipher) permute(v uint64) uint64 {
	loMask := (uint64(1) << c.half) - 1
	hiBits := c.bits - c.half
	hiMask := (uint64(1) << hiBits) - 1
	lo := v & loMask
	hi := (v >> c.half) & hiMask
	for r := 0; r < 4; r++ {
		if r%2 == 0 {
			hi ^= uint64(c.round(uint32(lo), c.keys[r])) & hiMask
		} else {
			lo ^= uint64(c.round(uint32(hi), c.keys[r])) & loMask
		}
	}
	return (hi << c.half) | lo
}

// Encrypt maps a row index to its permuted index within [0, rows),
// cycle-walking out-of-range intermediate values. Cycle-walking a
// bijection stays a bijection on the restricted domain.
func (c *rowCipher) Encrypt(row uint32) uint32 {
	v := uint64(row)
	for {
		v = c.permute(v)
		if v < c.rows {
			return uint32(v)
		}
	}
}
