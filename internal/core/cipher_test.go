package core

import "testing"

// TestCipherIsBijection verifies the permutation property exhaustively
// for domains small enough to enumerate, including non-power-of-two and
// odd-bit-width sizes that exercise the cycle-walking path.
func TestCipherIsBijection(t *testing.T) {
	for _, rows := range []int{2, 3, 7, 128, 1000, 4096, 5000} {
		c := newRowCipher(rows, 42)
		seen := make([]bool, rows)
		for r := 0; r < rows; r++ {
			e := c.Encrypt(uint32(r))
			if int(e) >= rows {
				t.Fatalf("rows=%d: Encrypt(%d)=%d out of range", rows, r, e)
			}
			if seen[e] {
				t.Fatalf("rows=%d: Encrypt(%d)=%d collides", rows, r, e)
			}
			seen[e] = true
		}
	}
}

func TestCipherDeterministicPerKey(t *testing.T) {
	a := newRowCipher(4096, 7)
	b := newRowCipher(4096, 7)
	for r := uint32(0); r < 100; r++ {
		if a.Encrypt(r) != b.Encrypt(r) {
			t.Fatalf("same seed, different mapping at row %d", r)
		}
	}
}

func TestRekeyChangesMapping(t *testing.T) {
	c := newRowCipher(1<<20, 7)
	before := make([]uint32, 256)
	for r := range before {
		before[r] = c.Encrypt(uint32(r))
	}
	c.Rekey()
	same := 0
	for r := range before {
		if c.Encrypt(uint32(r)) == before[r] {
			same++
		}
	}
	// A fixed point or two can happen by chance; a mostly-unchanged
	// mapping means Rekey is broken.
	if same > len(before)/8 {
		t.Fatalf("%d/%d rows unchanged after rekey", same, len(before))
	}
}

func TestCipherSpreadsGroups(t *testing.T) {
	// Consecutive rows (which share a group under the static mapping)
	// should land in many distinct groups under the randomized one.
	rows := 1 << 22
	c := newRowCipher(rows, 99)
	groups := make(map[uint32]bool)
	for r := uint32(0); r < 128; r++ {
		groups[c.Encrypt(r)/128] = true
	}
	if len(groups) < 64 {
		t.Fatalf("128 consecutive rows map to only %d groups", len(groups))
	}
}
