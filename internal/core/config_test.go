package core

import "testing"

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	d := c.withDefaults()
	if d.TH != 250 {
		t.Errorf("TH = %d, want 250 (TRH/2)", d.TH)
	}
	if d.TG != 200 {
		t.Errorf("TG = %d, want 200 (80%% of TH)", d.TG)
	}
	if g := c.GroupSize(); g != 128 {
		t.Errorf("GroupSize = %d, want 128", g)
	}
	if b := c.RCTEntryBytes(); b != 1 {
		t.Errorf("RCTEntryBytes = %d, want 1", b)
	}
	if got := c.RCTBytes(); got != 4<<20 {
		t.Errorf("RCTBytes = %d, want 4 MB", got)
	}
	if got := c.MetaRows(); got != 512 {
		t.Errorf("MetaRows = %d, want 512", got)
	}
}

func TestStorageMatchesTable4(t *testing.T) {
	s := Default().Storage()
	if s.GCTEntryBits != 8 || s.GCTBytes != 32*1024 {
		t.Errorf("GCT: %d bits, %d bytes; want 8 bits, 32 KB", s.GCTEntryBits, s.GCTBytes)
	}
	if s.RCCEntryBits != 24 || s.RCCBytes != 24*1024 {
		t.Errorf("RCC: %d bits, %d bytes; want 24 bits, 24 KB", s.RCCEntryBits, s.RCCBytes)
	}
	if s.RITActEntryBits != 8 || s.RITActBytes != 512 {
		t.Errorf("RIT-ACT: %d bits, %d bytes; want 8 bits, 0.5 KB", s.RITActEntryBits, s.RITActBytes)
	}
	// Table 4 total: 56.5 KB.
	if s.TotalBytes != 56*1024+512 {
		t.Errorf("Total = %d bytes, want 57856 (56.5 KB)", s.TotalBytes)
	}
}

func TestForThresholdScalesStructures(t *testing.T) {
	c := ForThreshold(250)
	if c.GCTEntries != 64*1024 || c.RCCEntries != 16*1024 {
		t.Errorf("TRH=250: GCT=%d RCC=%d, want 64K/16K", c.GCTEntries, c.RCCEntries)
	}
	c = ForThreshold(125)
	if c.GCTEntries != 128*1024 || c.RCCEntries != 32*1024 {
		t.Errorf("TRH=125: GCT=%d RCC=%d, want 128K/32K", c.GCTEntries, c.RCCEntries)
	}
	d := c.withDefaults()
	if d.TH != 62 || d.TG != 49 {
		t.Errorf("TRH=125: TH=%d TG=%d, want 62/49", d.TH, d.TG)
	}
	if got := ForThreshold(0); got.TRH != 500 {
		t.Errorf("ForThreshold(0) should fall back to default, got TRH=%d", got.TRH)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		c := Default()
		mut(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero rows", mk(func(c *Config) { c.Rows = 0 })},
		{"tiny TRH", mk(func(c *Config) { c.TRH = 1 })},
		{"TH above TRH/2", mk(func(c *Config) { c.TH = 251 })},
		{"TG >= TH", mk(func(c *Config) { c.TG = 250 })},
		{"no GCT entries", mk(func(c *Config) { c.GCTEntries = 0 })},
		{"bad RCC ways", mk(func(c *Config) { c.RCCWays = 3 })},
		{"both ablations", mk(func(c *Config) { c.NoGCT = true; c.NoRCC = true })},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestAblationConfigsValid(t *testing.T) {
	noGCT := Default()
	noGCT.NoGCT = true
	if err := noGCT.Validate(); err != nil {
		t.Errorf("NoGCT config rejected: %v", err)
	}
	noRCC := Default()
	noRCC.NoRCC = true
	if err := noRCC.Validate(); err != nil {
		t.Errorf("NoRCC config rejected: %v", err)
	}
}

func TestWideThresholdUsesTwoByteEntries(t *testing.T) {
	c := Default()
	c.TRH = 1024
	c.TH = 512
	c.TG = 400
	if b := c.RCTEntryBytes(); b != 2 {
		t.Errorf("RCTEntryBytes = %d, want 2 for TH=512", b)
	}
	if got := c.MetaRows(); got != 1024 {
		t.Errorf("MetaRows = %d, want 1024 for 8 MB RCT", got)
	}
}
