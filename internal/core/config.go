package core

import (
	"fmt"
	"math/bits"
)

// Config parameterizes a Hydra tracker. The zero value is not valid;
// use Default or fill every field and call Validate.
type Config struct {
	// Rows is the number of DRAM rows tracked (4 M for the paper's
	// 32 GB baseline).
	Rows int

	// TRH is the row-hammer threshold the design must tolerate: the
	// minimum activations to a row within a refresh period that could
	// induce bit-flips (500 by default).
	TRH int

	// TH is Hydra's tracking threshold. Because the periodic reset
	// halves the tolerated threshold (Section 4.6), TH must be at most
	// TRH/2. Zero derives TRH/2.
	TH int

	// TG is the GCT threshold at which a group switches from
	// aggregated to per-row tracking. Zero derives 80% of TH, the
	// paper's default (Section 6.6).
	TG int

	// GCTEntries is the number of GCT counters (32 K default). Rows
	// mapping to the same entry form a row-group.
	GCTEntries int

	// RCCEntries and RCCWays size the row-count cache (8 K entries,
	// 16 ways by default).
	RCCEntries int
	RCCWays    int

	// RCCUseLRU switches the RCC to LRU replacement; the default is
	// the paper's SRRIP (Table 4 budgets 2 bits per entry for it).
	// Exposed for the replacement-policy ablation bench.
	RCCUseLRU bool

	// RowBytes is the DRAM row size, used to compute how many DRAM
	// rows the RCT occupies (8 KB default).
	RowBytes int

	// NoGCT disables the group-count filter: every activation uses
	// per-row tracking (the Hydra-NoGCT ablation of Figure 8).
	NoGCT bool

	// NoRCC disables the row-count cache: every per-row update is a
	// read-modify-write of the RCT in DRAM (Hydra-NoRCC, Figure 8).
	NoRCC bool

	// Randomize enables the randomized group mapping of footnote 4:
	// row addresses pass through a keyed block cipher before indexing
	// the GCT and RCT, and the key changes every tracking window.
	Randomize bool

	// Seed seeds the randomized mapping.
	Seed uint64
}

// Default returns the paper's default configuration for the 32 GB
// baseline at T_RH = 500: 32 K-entry GCT, 8 K-entry 16-way RCC,
// T_H = 250, T_G = 200.
func Default() Config {
	return Config{
		Rows:       4 * 1024 * 1024,
		TRH:        500,
		GCTEntries: 32 * 1024,
		RCCEntries: 8 * 1024,
		RCCWays:    16,
		RowBytes:   8192,
	}
}

// ForThreshold returns the default configuration scaled for a different
// row-hammer threshold: halving T_RH doubles the GCT and RCC, matching
// the paper's sensitivity study (Section 6.3, "structures scaled
// proportionately").
func ForThreshold(trh int) Config {
	c := Default()
	if trh <= 0 {
		return c
	}
	c.TRH = trh
	scale := 500.0 / float64(trh)
	c.GCTEntries = scaleEntries(32*1024, scale)
	c.RCCEntries = scaleEntries(8*1024, scale)
	return c
}

func scaleEntries(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// withDefaults returns a copy with derived fields filled in.
func (c Config) withDefaults() Config {
	if c.TH == 0 {
		c.TH = c.TRH / 2
	}
	if c.TG == 0 {
		c.TG = c.TH * 4 / 5
	}
	if c.RowBytes == 0 {
		c.RowBytes = 8192
	}
	return c
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch {
	case d.Rows <= 0:
		return fmt.Errorf("core: Rows must be positive, got %d", d.Rows)
	case d.TRH <= 1:
		return fmt.Errorf("core: TRH must exceed 1, got %d", d.TRH)
	case d.TH <= 0 || d.TH > d.TRH/2:
		return fmt.Errorf("core: TH must be in (0, TRH/2=%d], got %d", d.TRH/2, d.TH)
	case d.TG <= 0 || d.TG >= d.TH:
		return fmt.Errorf("core: TG must be in (0, TH=%d), got %d", d.TH, d.TG)
	case !d.NoGCT && d.GCTEntries <= 0:
		return fmt.Errorf("core: GCTEntries must be positive, got %d", d.GCTEntries)
	case !d.NoRCC && (d.RCCEntries <= 0 || d.RCCWays <= 0 || d.RCCEntries%d.RCCWays != 0):
		return fmt.Errorf("core: RCC geometry invalid: %d entries, %d ways", d.RCCEntries, d.RCCWays)
	case d.RowBytes <= 0:
		return fmt.Errorf("core: RowBytes must be positive, got %d", d.RowBytes)
	case d.NoGCT && d.NoRCC:
		return fmt.Errorf("core: NoGCT and NoRCC cannot both be set; that leaves no structure to absorb updates cheaply (use the CRA baseline instead)")
	}
	return nil
}

// GroupSize returns how many rows share one GCT entry (128 for the
// default configuration).
func (c Config) GroupSize() int {
	d := c.withDefaults()
	if d.NoGCT || d.GCTEntries <= 0 {
		return 1
	}
	return (d.Rows + d.GCTEntries - 1) / d.GCTEntries
}

// RCTEntryBytes returns the storage per RCT entry: one byte while TH
// fits (the paper's case), two bytes otherwise.
func (c Config) RCTEntryBytes() int {
	d := c.withDefaults()
	if d.TH <= 0xFF {
		return 1
	}
	return 2
}

// RCTBytes returns the DRAM footprint of the row-count table (4 MB for
// the baseline).
func (c Config) RCTBytes() int {
	return c.Rows * c.RCTEntryBytes()
}

// MetaRows returns how many DRAM rows the RCT occupies (512 for the
// baseline), which is also the number of RIT-ACT guard counters
// (Section 5.2.2).
func (c Config) MetaRows() int {
	d := c.withDefaults()
	return (c.RCTBytes() + d.RowBytes - 1) / d.RowBytes
}

// bitsFor returns the bits needed to represent values 0..n.
func bitsFor(n int) int {
	if n <= 0 {
		return 1
	}
	return bits.Len(uint(n))
}

// StorageBreakdown itemizes Hydra's SRAM cost, reproducing Table 4.
type StorageBreakdown struct {
	GCTEntryBits    int
	GCTEntries      int
	GCTBytes        int
	RCCEntryBits    int // valid + tag + SRRIP + counter
	RCCEntries      int
	RCCBytes        int
	RITActEntryBits int
	RITActEntries   int
	RITActBytes     int
	TotalBytes      int
}

// Storage computes the SRAM storage breakdown for the configuration.
// Entry widths are rounded up to whole bits exactly as the paper does
// (Table 4): an 8-bit GCT counter for T_G=200, a 24-bit RCC entry
// (valid + 13-bit tag + 2-bit SRRIP + 8-bit count), and 8-bit RIT-ACT
// counters.
func (c Config) Storage() StorageBreakdown {
	d := c.withDefaults()
	var s StorageBreakdown

	if !d.NoGCT {
		s.GCTEntryBits = roundBits(bitsFor(d.TG))
		s.GCTEntries = d.GCTEntries
		s.GCTBytes = s.GCTEntryBits * s.GCTEntries / 8
	}
	if !d.NoRCC {
		sets := d.RCCEntries / d.RCCWays
		tagBits := bitsFor(d.Rows-1) - bitsFor(sets-1)
		if tagBits < 1 {
			tagBits = 1
		}
		s.RCCEntryBits = 1 + tagBits + 2 + roundBits(bitsFor(d.TH))
		s.RCCEntries = d.RCCEntries
		s.RCCBytes = s.RCCEntryBits * s.RCCEntries / 8
	}
	s.RITActEntryBits = roundBits(bitsFor(d.TH))
	s.RITActEntries = d.MetaRows()
	s.RITActBytes = s.RITActEntryBits * s.RITActEntries / 8
	s.TotalBytes = s.GCTBytes + s.RCCBytes + s.RITActBytes
	return s
}

// roundBits rounds a bit width up to a whole number of bytes' worth of
// bits when close, mirroring how the paper sizes counters (e.g. T_G=200
// needs 8 bits).
func roundBits(b int) int {
	if b <= 8 {
		return 8
	}
	return (b + 7) / 8 * 8
}
