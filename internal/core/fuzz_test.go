package core

import (
	"testing"

	"repro/internal/rh"
)

// FuzzCipherBijection fuzzes the randomized-indexing cipher: for any
// seed and domain size, two distinct rows must never collide.
func FuzzCipherBijection(f *testing.F) {
	f.Add(uint64(1), uint32(1000), uint32(0), uint32(1))
	f.Add(uint64(42), uint32(4096), uint32(4095), uint32(0))
	f.Add(uint64(7), uint32(3), uint32(1), uint32(2))
	f.Fuzz(func(t *testing.T, seed uint64, rowsRaw, a, b uint32) {
		rows := int(rowsRaw%100000) + 2
		c := newRowCipher(rows, seed)
		ra := a % uint32(rows)
		rb := b % uint32(rows)
		ea, eb := c.Encrypt(ra), c.Encrypt(rb)
		if int(ea) >= rows || int(eb) >= rows {
			t.Fatalf("out of range: %d or %d >= %d", ea, eb, rows)
		}
		if ra != rb && ea == eb {
			t.Fatalf("collision: Encrypt(%d) == Encrypt(%d) == %d (rows=%d seed=%d)", ra, rb, ea, rows, seed)
		}
		if ra == rb && ea != eb {
			t.Fatal("non-determinism")
		}
	})
}

// FuzzTrackerNeverUndercounts fuzzes the Lemma-1 invariant directly:
// for an arbitrary activation pattern over a small row set, the
// tracker's estimate never drops below the true count, and no row
// passes T_H unmitigated.
func FuzzTrackerNeverUndercounts(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 0}, false)
	f.Add([]byte{255, 255, 255, 0}, true)
	f.Fuzz(func(t *testing.T, pattern []byte, randomize bool) {
		if len(pattern) > 4096 {
			pattern = pattern[:4096]
		}
		cfg := Config{
			Rows:       1024,
			TRH:        40,
			GCTEntries: 16,
			RCCEntries: 16,
			RCCWays:    8,
			RowBytes:   8192,
			Randomize:  randomize,
			Seed:       1,
		}
		h := MustNew(cfg, rh.NullSink{})
		th := h.Config().TH
		trueCount := make(map[rh.Row]int)
		for _, b := range pattern {
			row := rh.Row(uint32(b) * 4 % 1024)
			trueCount[row]++
			if h.Activate(row) {
				trueCount[row] = 0
			}
			if trueCount[row] > th {
				t.Fatalf("row %d reached %d true acts unmitigated (TH=%d)", row, trueCount[row], th)
			}
			if est := h.EstimatedCount(row); est < trueCount[row] {
				t.Fatalf("estimate %d < true %d", est, trueCount[row])
			}
		}
	})
}
