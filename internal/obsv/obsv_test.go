package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryAccumulatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	r.Count("a.x", 3)
	r.Count("a.x", 4) // same name accumulates
	r.Gauge("a.g", 1.5)
	h := NewHist(1, 2, 4)
	h.Observe(3)
	r.Histogram("a.h", h)

	m := r.Snapshot()
	if got := m.Counter("a.x"); got != 7 {
		t.Fatalf("counter a.x = %d, want 7", got)
	}
	if m["a.g"].Value != 1.5 || m["a.g"].Type != TypeGauge {
		t.Fatalf("gauge a.g = %+v", m["a.g"])
	}
	if m["a.h"].Hist == nil || m["a.h"].Hist.N != 1 {
		t.Fatalf("hist a.h = %+v", m["a.h"])
	}
	// The registered histogram is a copy: mutating the source must not
	// change the snapshot.
	h.Observe(1)
	if m["a.h"].Hist.N != 1 {
		t.Fatal("registry histogram aliases the source")
	}
	if names := m.Names(); names[0] != "a.g" || len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{}
	h1 := NewHist(1, 2)
	h1.Observe(1)
	a.Merge(Metrics{
		"c": {Type: TypeCounter, Value: 2},
		"g": {Type: TypeGauge, Value: 5},
		"h": {Type: TypeHistogram, Hist: &h1},
	})
	h2 := NewHist(1, 2)
	h2.Observe(2)
	b := Metrics{
		"c": {Type: TypeCounter, Value: 3},
		"g": {Type: TypeGauge, Value: 4},
		"h": {Type: TypeHistogram, Hist: &h2},
	}
	a.Merge(b)
	if a.Counter("c") != 5 {
		t.Errorf("merged counter = %d, want 5", a.Counter("c"))
	}
	if a["g"].Value != 5 { // gauges keep the max
		t.Errorf("merged gauge = %g, want 5", a["g"].Value)
	}
	if a["h"].Hist.N != 2 || a["h"].Hist.Sum != 3 {
		t.Errorf("merged hist = %+v", a["h"].Hist)
	}
	// Merge must not mutate its argument.
	if b["h"].Hist.N != 1 {
		t.Error("merge mutated the argument histogram")
	}
}

func TestHistObserveBucketsAndMerge(t *testing.T) {
	h := NewHist(PowersOfTwo(8)...) // 0,1,2,4,8 + overflow
	for _, v := range []int64{0, 1, 3, 8, 100} {
		h.Observe(v)
	}
	want := []int64{1, 1, 0, 1, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.N != 5 || h.Max != 100 || h.Sum != 112 {
		t.Fatalf("summary: %+v", h)
	}
	var m Hist // zero value merges by adopting the other's shape
	m.Merge(h)
	m.Merge(h)
	if m.N != 10 || m.Counts[5] != 2 {
		t.Fatalf("merged: %+v", m)
	}
	if !strings.Contains(h.String(), "n=5") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestHistMergeMismatchedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched bounds")
		}
	}()
	a, b := NewHist(1, 2), NewHist(1, 3)
	a.Observe(1)
	b.Observe(1)
	a.Merge(b)
}

func TestTracerRingWrapsAndDrops(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: EvActivate, Row: uint32(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(3+i) {
			t.Fatalf("event %d cycle = %d, want %d (oldest dropped first)", i, e.Cycle, 3+i)
		}
	}
	if tr.Total() != 7 || tr.Dropped() != 3 {
		t.Fatalf("total=%d dropped=%d", tr.Total(), tr.Dropped())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Cycle: 1}) // must not panic
	if tr.Enabled() || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should report nothing")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Cycle: int64(i)})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("total = %d, want 800", tr.Total())
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Cycle: 10, Kind: EvMitigate, Row: 42, Aux: 1})
	tr.Emit(Event{Kind: EvRunStart, Tag: "hydra/parest"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "mitigate" || first["row"] != float64(42) {
		t.Fatalf("first line = %v", first)
	}
	if !strings.Contains(lines[1], `"tag":"hydra/parest"`) {
		t.Fatalf("second line = %q", lines[1])
	}
}

func TestReportValidate(t *testing.T) {
	r := NewReport("experiments", "fig5")
	if err := r.Validate(); err != nil {
		t.Fatalf("fresh report invalid: %v", err)
	}
	r.Workloads = []WorkloadReport{{Name: "parest", NormPerf: map[string]float64{"hydra": 0.99}}}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r.Workloads[0].NormPerf["hydra"] = -1
	if err := r.Validate(); err == nil {
		t.Fatal("negative norm_perf must fail validation")
	}

	bad := NewReport("", "fig5")
	if err := bad.Validate(); err == nil {
		t.Fatal("missing tool must fail validation")
	}
	if err := (&Report{}).Validate(); err == nil {
		t.Fatal("zero report must fail validation")
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	rep := NewReport("experiments", "fig5")
	rep.Metrics = Metrics{"sim.cycles": {Type: TypeCounter, Value: 123}}
	f := NewReportFile(rep)

	path := t.TempDir() + "/report.json"
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reports[0].Metrics.Counter("sim.cycles") != 123 {
		t.Fatalf("round-trip lost metrics: %+v", got.Reports[0].Metrics)
	}

	if _, err := ReadReportFile(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file must error")
	}
}
