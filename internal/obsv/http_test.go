package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"memsim.readq_depth": "memsim_readq_depth",
		"sim.acts.read":      "sim_acts_read",
		"plain":              "plain",
		"9lives":             "_9lives",
		"a-b c":              "a_b_c",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// parseProm validates Prometheus text-exposition lines: every
// non-comment line must be `name{labels} value` or `name value` with a
// legal identifier and a parseable float. Returns samples by line.
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			name = series[:i]
		}
		for j, r := range name {
			ok := r == '_' || r == ':' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(r >= '0' && r <= '9' && j > 0)
			if !ok {
				t.Fatalf("illegal metric name %q in line %q", name, line)
			}
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[series] = v
	}
	return samples
}

func TestWriteProm(t *testing.T) {
	h := NewHist(10, 20)
	for v := int64(1); v <= 20; v++ {
		h.Observe(v)
	}
	m := Metrics{
		"memsim.reads":       {Type: TypeCounter, Value: 42, Unit: "requests"},
		"sim.ipc":            {Type: TypeGauge, Value: 10.5},
		"memsim.readq_depth": {Type: TypeHistogram, Value: float64(h.N), Hist: &h},
	}
	var b strings.Builder
	if err := WriteProm(&b, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := parseProm(t, out)

	if got := samples["memsim_reads"]; got != 42 {
		t.Errorf("counter = %v, want 42", got)
	}
	if got := samples["sim_ipc"]; got != 10.5 {
		t.Errorf("gauge = %v, want 10.5", got)
	}
	// Cumulative buckets: le=10 holds 10 samples, le=20 and +Inf all 20.
	if got := samples[`memsim_readq_depth_bucket{le="10"}`]; got != 10 {
		t.Errorf("le=10 bucket = %v, want 10", got)
	}
	if got := samples[`memsim_readq_depth_bucket{le="20"}`]; got != 20 {
		t.Errorf("le=20 bucket = %v, want 20", got)
	}
	if got := samples[`memsim_readq_depth_bucket{le="+Inf"}`]; got != 20 {
		t.Errorf("+Inf bucket = %v, want 20", got)
	}
	if got := samples["memsim_readq_depth_sum"]; got != 210 {
		t.Errorf("sum = %v, want 210", got)
	}
	if got := samples["memsim_readq_depth_count"]; got != 20 {
		t.Errorf("count = %v, want 20", got)
	}
	if got := samples[`memsim_readq_depth_quantile{quantile="0.5"}`]; got != h.Quantile(0.5) {
		t.Errorf("p50 = %v, want %v", got, h.Quantile(0.5))
	}
	for _, want := range []string{
		"# TYPE memsim_reads counter",
		"# TYPE sim_ipc gauge",
		"# TYPE memsim_readq_depth histogram",
		"# TYPE memsim_readq_depth_quantile gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// chanSource adapts a plain channel to EventSource for tests.
type chanSource struct {
	events []any
}

func (c *chanSource) SubscribeAny(buffer int, replay bool) (<-chan any, func()) {
	ch := make(chan any, len(c.events)+1)
	for _, e := range c.events {
		ch <- e
	}
	close(ch)
	return ch, func() {}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Count("memsim.reads", 7)
	src := &chanSource{events: []any{
		map[string]any{"kind": "done", "key": "t/a/b"},
		map[string]any{"kind": "failed", "key": "t/a/c"},
	}}
	s := NewServer(ServerOptions{Gather: reg.Snapshot, Events: src})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if got := parseProm(t, body)["memsim_reads"]; got != 7 {
		t.Errorf("/metrics memsim_reads = %v, want 7", got)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/metrics.json content type %q", ctype)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/metrics.json unparseable: %v", err)
	}
	if m.Counter("memsim.reads") != 7 {
		t.Errorf("/metrics.json counter = %d, want 7", m.Counter("memsim.reads"))
	}

	body, ctype = get("/events")
	if !strings.Contains(ctype, "application/x-ndjson") {
		t.Errorf("/events content type %q", ctype)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	lines := 0
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("NDJSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("/events streamed %d lines, want 2", lines)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServerNoEventSource(t *testing.T) {
	s := NewServer(ServerOptions{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/events without a source: status %d, want 404", resp.StatusCode)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer(ServerOptions{Gather: func() Metrics { return Metrics{} }})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestRegistryConcurrentGather exercises the live-scrape scenario under
// the race detector: campaign workers merge finished-cell snapshots
// and bump counters while a scraper snapshots and renders concurrently.
func TestRegistryConcurrentGather(t *testing.T) {
	reg := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHist(PowersOfTwo(64)...)
			for i := 0; i < 200; i++ {
				reg.Count("campaign.cells.ok", 1)
				reg.Gauge("sim.ipc", float64(i))
				h.Observe(int64(i % 70))
				reg.Histogram(fmt.Sprintf("depth.w%d", w), h)
				reg.Merge(Metrics{"memsim.reads": {Type: TypeCounter, Value: 1}})
			}
		}(w)
	}
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := reg.Snapshot()
			var b strings.Builder
			if err := WriteProm(&b, snap); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(done)
	snap := reg.Snapshot()
	if got := snap.Counter("campaign.cells.ok"); got != 800 {
		t.Errorf("campaign.cells.ok = %d, want 800", got)
	}
	if got := snap.Counter("memsim.reads"); got != 800 {
		t.Errorf("merged memsim.reads = %d, want 800", got)
	}
}

// liveSource is an EventSource whose channel never closes on its own —
// the shape of a campaign still in flight when the process is told to
// shut down.
type liveSource struct{ ch chan any }

func (l liveSource) SubscribeAny(int, bool) (<-chan any, func()) { return l.ch, func() {} }

// TestServerShutdownEndsEventStream pins the graceful-shutdown
// contract for streaming handlers: a client following /events while
// Shutdown is called gets its buffered events and a clean end of
// stream (io.EOF from a completed chunked response), not a connection
// reset — and Shutdown itself returns instead of waiting forever on
// the never-ending stream.
func TestServerShutdownEndsEventStream(t *testing.T) {
	src := liveSource{ch: make(chan any, 8)}
	s := NewServer(ServerOptions{Events: src})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/events", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// One event while the stream is live, to prove it is mid-flight.
	src.ch <- map[string]any{"kind": "running", "key": "t/a/b"}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading live event: %v", err)
	}
	var e map[string]any
	if err := json.Unmarshal(line, &e); err != nil {
		t.Fatalf("live event %q: %v", line, err)
	}

	// Shutdown with the stream still open: the handler must notice and
	// return so the listener can drain within the deadline.
	errc := make(chan error, 1)
	go func() { errc <- s.Shutdown(5 * time.Second) }()

	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("stream did not end cleanly: %v (read %q)", err, rest)
	}
	if len(rest) != 0 {
		t.Errorf("unexpected trailing stream data %q", rest)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
