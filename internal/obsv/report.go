package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/iofault"
)

// ReportSchema identifies the run-report JSON shape; bump on breaking
// changes so downstream tooling can dispatch.
const ReportSchema = "hydra-run-report/v1"

// Report is the machine-readable artifact of one experiment target: a
// self-describing record of what ran (tool, target, parameters), how
// it performed per workload, and the full metric snapshot spanning the
// memory system, the tracker, and the mitigation layer. One report per
// target; cmd/experiments writes them wrapped in a ReportFile.
type Report struct {
	Schema    string         `json:"schema"`
	Tool      string         `json:"tool"`
	Target    string         `json:"target"`
	CreatedAt time.Time      `json:"created_at"`
	GoVersion string         `json:"go_version"`
	Params    map[string]any `json:"params,omitempty"`

	// ElapsedSec is the wall-clock runtime of the target.
	ElapsedSec float64 `json:"elapsed_sec"`

	// Schemes lists the tracker configurations swept, excluding the
	// non-secure baseline (for perf targets).
	Schemes []string `json:"schemes,omitempty"`

	// Workloads holds the per-workload results (for perf targets).
	Workloads []WorkloadReport `json:"workloads,omitempty"`

	// Cells records the fate of every sweep cell the campaign harness
	// ran for this target, including failed and checkpoint-restored
	// cells (which have no workload row).
	Cells []CellStatus `json:"cells,omitempty"`

	// Geomeans maps scheme -> suite -> geometric-mean normalized
	// performance, including the "ALL" aggregate (the paper's bar
	// groups).
	Geomeans map[string]map[string]float64 `json:"geomeans,omitempty"`

	// Metrics is the aggregated snapshot across every simulated run of
	// the target: counters summed, histograms merged.
	Metrics Metrics `json:"metrics,omitempty"`

	// Extra carries targets whose natural shape is not a perf sweep
	// (storage tables, attack oracles), marshaled as-is.
	Extra any `json:"extra,omitempty"`
}

// Cell statuses recorded in CellStatus.Status.
const (
	CellOK       = "ok"       // computed this run
	CellFailed   = "failed"   // all attempts failed; Error holds the last one
	CellRestored = "restored" // value came from a resume checkpoint
	CellCached   = "cached"   // value replayed from the result cache
	// CellBaselineMissing marks a scheme cell that simulated fine but
	// could not be normalized because its baseline cell failed — a
	// different signal than a failure of the cell itself (chaos and
	// resilience reports need to tell them apart).
	CellBaselineMissing = "baseline-missing"
)

// CellStatus is the per-cell verdict of a harness campaign: one entry
// per (variant, workload) simulation, whether it succeeded, was
// restored from a checkpoint, or failed after retries.
type CellStatus struct {
	// Key identifies the cell, "target/variant/workload".
	Key string `json:"key"`
	// Status is one of the Cell* status constants above.
	Status string `json:"status"`
	// Error is the last attempt's error for failed cells, or the reason
	// a baseline-missing cell could not be normalized.
	Error string `json:"error,omitempty"`
	// Attempts counts attempts actually made (0 when restored).
	Attempts int `json:"attempts,omitempty"`
	// Panicked / Stalled flag cells that died by panic or were killed
	// by the progress watchdog on at least one attempt.
	Panicked bool `json:"panicked,omitempty"`
	Stalled  bool `json:"stalled,omitempty"`
	// ElapsedSec is the cell's wall-clock time including retries.
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
	// Cycles is the cell's simulated-cycle count: the simulator's own
	// result for completed cells, the last watchdog-observed progress
	// value for failed ones (how far it got before dying). Zero for
	// cached/restored cells, which replay a value without simulating.
	// Together with ElapsedSec this gives hydrastat a cycles-per-second
	// rate to rank slow cells by, and run reports become a usable cost
	// model for the LPT scheduler (see harness.CellCache.SeedCosts).
	Cycles int64 `json:"cycles,omitempty"`
}

// Validate checks the cell's invariants.
func (c CellStatus) Validate() error {
	if c.Key == "" {
		return fmt.Errorf("obsv: cell status missing key")
	}
	switch c.Status {
	case CellOK, CellRestored, CellCached:
		if c.Error != "" {
			return fmt.Errorf("obsv: cell %s: status %q with error %q", c.Key, c.Status, c.Error)
		}
	case CellFailed:
		if c.Error == "" {
			return fmt.Errorf("obsv: cell %s: failed without an error", c.Key)
		}
	case CellBaselineMissing:
		if c.Error == "" {
			return fmt.Errorf("obsv: cell %s: baseline-missing without a reason", c.Key)
		}
	default:
		return fmt.Errorf("obsv: cell %s: unknown status %q", c.Key, c.Status)
	}
	return nil
}

// WorkloadReport is one workload's row of a perf target.
type WorkloadReport struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	// NormPerf maps scheme -> performance normalized to the non-secure
	// baseline (1.0 = no slowdown).
	NormPerf map[string]float64 `json:"norm_perf"`
	// SlowdownPct maps scheme -> (1-NormPerf)*100, the paper's unit.
	SlowdownPct map[string]float64 `json:"slowdown_pct"`
	// Metrics maps scheme -> that run's metric snapshot.
	Metrics map[string]Metrics `json:"metrics,omitempty"`
}

// NewReport stamps the envelope fields common to every tool.
func NewReport(tool, target string) *Report {
	return &Report{
		Schema:    ReportSchema,
		Tool:      tool,
		Target:    target,
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
	}
}

// Validate checks the fields every consumer relies on. It is the
// contract the BENCH trajectory tests pin.
func (r *Report) Validate() error {
	switch {
	case r.Schema != ReportSchema:
		return fmt.Errorf("obsv: report schema %q, want %q", r.Schema, ReportSchema)
	case r.Tool == "":
		return fmt.Errorf("obsv: report missing tool")
	case r.Target == "":
		return fmt.Errorf("obsv: report missing target")
	case r.CreatedAt.IsZero():
		return fmt.Errorf("obsv: report missing created_at")
	case r.GoVersion == "":
		return fmt.Errorf("obsv: report missing go_version")
	}
	for _, w := range r.Workloads {
		if w.Name == "" {
			return fmt.Errorf("obsv: workload report missing name")
		}
		if len(w.NormPerf) == 0 {
			return fmt.Errorf("obsv: workload %s missing norm_perf", w.Name)
		}
		for s, v := range w.NormPerf {
			if v <= 0 {
				return fmt.Errorf("obsv: workload %s scheme %s: non-positive norm_perf %g", w.Name, s, v)
			}
		}
	}
	for _, c := range r.Cells {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ReportFile is the on-disk envelope: one file may hold several
// targets' reports from a single invocation.
type ReportFile struct {
	Schema  string    `json:"schema"`
	Reports []*Report `json:"reports"`
}

// ReportFileSchema identifies the file envelope.
const ReportFileSchema = "hydra-report-file/v1"

// NewReportFile wraps reports in the file envelope.
func NewReportFile(reports ...*Report) *ReportFile {
	return &ReportFile{Schema: ReportFileSchema, Reports: reports}
}

// Validate checks the envelope and every contained report.
func (f *ReportFile) Validate() error {
	if f.Schema != ReportFileSchema {
		return fmt.Errorf("obsv: report file schema %q, want %q", f.Schema, ReportFileSchema)
	}
	if len(f.Reports) == 0 {
		return fmt.Errorf("obsv: report file has no reports")
	}
	for i, r := range f.Reports {
		if r == nil { // a JSON null decodes to a nil *Report
			return fmt.Errorf("obsv: report file entry %d is null", i)
		}
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Encode writes the file as indented JSON.
func (f *ReportFile) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the report file to path ("-" means stdout) over the
// real filesystem. See WriteFileFS.
func (f *ReportFile) WriteFile(path string) error {
	return f.WriteFileFS(iofault.OS{}, path)
}

// WriteFileFS writes the report file to path ("-" means stdout),
// performing the IO through fsys with the full atomic-write crash
// discipline (iofault.WriteAtomic): an interrupted or crashed run
// leaves the previous report or none, never a truncated JSON file.
func (f *ReportFile) WriteFileFS(fsys iofault.FS, path string) error {
	if path == "-" {
		return f.Encode(os.Stdout)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		return err
	}
	return iofault.WriteAtomic(fsys, path, buf.Bytes())
}

// Normalize strips the operational noise a report legitimately picks
// up between two runs of identical work, leaving only the scientific
// content, so two reports can be compared bitwise:
//
//   - CreatedAt collapses to the Unix epoch (a fixed non-zero instant,
//     so Validate still passes) and ElapsedSec to zero — wall-clock;
//   - Cells drop entirely — the same result is "ok" in a clean run,
//     "restored" after a crash, "cached" on a warm replay;
//   - cache.* metrics drop — hit/miss traffic depends on the IO
//     history, not the simulated system.
//
// The crash-point sweep and the SIGINT resume test call this on both
// sides before comparing encodings; everything left MUST be identical
// or determinism is broken.
func (r *Report) Normalize() {
	r.CreatedAt = time.Unix(0, 0).UTC()
	r.ElapsedSec = 0
	r.Cells = nil
	for name := range r.Metrics {
		if strings.HasPrefix(name, "cache.") || strings.HasPrefix(name, "campaign.") {
			delete(r.Metrics, name)
		}
	}
}

// Normalize applies Report.Normalize to every contained report.
func (f *ReportFile) Normalize() {
	for _, r := range f.Reports {
		if r != nil {
			r.Normalize()
		}
	}
}

// DecodeReportFile parses and validates a report file from bytes. It
// must never panic on any input: it is the boundary downstream tooling
// feeds untrusted files through (fuzzed in report_fuzz_test.go).
func DecodeReportFile(data []byte) (*ReportFile, error) {
	var f ReportFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obsv: decoding report file: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadReportFile parses and validates a report file from disk, the
// round-trip used by regression tooling.
func ReadReportFile(path string) (*ReportFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := DecodeReportFile(data)
	if err != nil {
		return nil, fmt.Errorf("obsv: %s: %w", path, err)
	}
	return f, nil
}
