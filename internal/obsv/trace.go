package obsv

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// EventKind classifies a traced simulation event.
type EventKind uint8

// Event kinds. Aux carries a kind-specific payload, documented per
// constant and in docs/METRICS.md.
const (
	// EvActivate: a DRAM row activation. Row is the global row, Aux
	// the memsim.Kind that caused it (demand read/write, metadata,
	// mitigation).
	EvActivate EventKind = iota
	// EvMitigate: the tracker flagged Row; Aux is 0 for demand rows,
	// 1 for the tracker's own metadata rows (RIT-ACT path).
	EvMitigate
	// EvRefresh: a rank auto-refresh; Aux is the rank index, Row the
	// channel.
	EvRefresh
	// EvGCTSaturate: a Hydra group counter reached T_G and the group
	// switched to per-row tracking; Aux is the group index.
	EvGCTSaturate
	// EvWindowReset: the 64 ms tracking window rolled over and SRAM
	// state was cleared; Aux is the reset ordinal.
	EvWindowReset
	// EvRunStart: a harness marker separating runs in a shared trace;
	// Tag labels the run ("scheme/workload").
	EvRunStart
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvActivate:
		return "activate"
	case EvMitigate:
		return "mitigate"
	case EvRefresh:
		return "refresh"
	case EvGCTSaturate:
		return "gct-saturate"
	case EvWindowReset:
		return "window-reset"
	case EvRunStart:
		return "run-start"
	default:
		return "unknown"
	}
}

// Event is one traced occurrence. Cycle is the 3.2 GHz core-cycle
// timestamp the simulator assigned.
type Event struct {
	Cycle int64     `json:"cycle"`
	Kind  EventKind `json:"-"`
	Row   uint32    `json:"row"`
	Aux   int64     `json:"aux,omitempty"`
	Tag   string    `json:"tag,omitempty"`
}

// eventJSON is the JSONL wire form, with the kind spelled out.
type eventJSON struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Row   uint32 `json:"row"`
	Aux   int64  `json:"aux,omitempty"`
	Tag   string `json:"tag,omitempty"`
}

// Tracer records simulation events into a bounded ring buffer: when
// the buffer fills, the oldest events are overwritten and counted as
// dropped, so a trace of a long run keeps its tail (the interesting
// part — saturation builds up over a window).
//
// A nil *Tracer is valid and records nothing; every Emit site is
// therefore a single nil-check when tracing is disabled. An enabled
// tracer is safe for concurrent use (the experiment harness may feed
// it from its worker pool).
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	total   uint64
	wrapped bool
}

// NewTracer creates a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Emit records one event. It is a no-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.total++
	t.mu.Unlock()
}

// Enabled reports whether events will be recorded; event sites can
// skip building expensive payloads when false.
func (t *Tracer) Enabled() bool { return t != nil }

// Total returns how many events were emitted (recorded or dropped).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.len())
}

func (t *Tracer) len() int {
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.len())
	if t.wrapped {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSONL streams the retained events to w, one JSON object per
// line, suitable for jq / pandas consumption.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(eventJSON{
			Cycle: e.Cycle, Kind: e.Kind.String(), Row: e.Row, Aux: e.Aux, Tag: e.Tag,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
