package obsv

import "fmt"

// Hist is a fixed-bucket histogram over non-negative int64 samples,
// cheap enough to sit on a simulator scheduling path: Observe is a
// handful of compares and three adds. Unlike stats.Histogram it is a
// value type with a stable JSON shape, so memory-controller stats can
// embed it directly and run reports can carry it.
//
// Bounds are inclusive upper bounds; a final overflow bucket catches
// samples above the last bound, so len(Counts) == len(Bounds)+1.
// Construct with NewHist; the zero value cannot record samples.
type Hist struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	N      int64   `json:"n"`
	Sum    int64   `json:"sum"`
	Max    int64   `json:"max"`
}

// NewHist creates a histogram with the given strictly increasing
// inclusive upper bounds.
func NewHist(bounds ...int64) Hist {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram bounds must be strictly increasing")
		}
	}
	return Hist{
		Bounds: append([]int64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// PowersOfTwo returns bounds 0, 1, 2, 4, ... up to max inclusive, the
// conventional shape for queue depths and occupancies.
func PowersOfTwo(max int64) []int64 {
	bounds := []int64{0}
	for b := int64(1); b <= max; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns the mean of all recorded samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile estimates the p-quantile (0 <= p <= 1) of the recorded
// samples by linear interpolation within the bucket holding the target
// rank, the standard estimator for fixed-bucket histograms (what
// Prometheus' histogram_quantile computes server-side). Bucket i spans
// (Bounds[i-1], Bounds[i]]; the overflow bucket is interpolated up to
// the observed Max, so the estimate never exceeds a real sample.
// Returns 0 when the histogram is empty; p outside [0,1] is clamped.
func (h *Hist) Quantile(p float64) float64 {
	if h == nil || h.N == 0 || len(h.Counts) != len(h.Bounds)+1 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.N)
	cum := int64(0)
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		// The target rank lands in this bucket: interpolate between its
		// exclusive lower bound and inclusive upper bound.
		lo := float64(0)
		if i > 0 {
			lo = float64(h.Bounds[i-1])
		}
		// Interpolate up to the bucket bound, but never past the observed
		// Max: the topmost occupied bucket usually ends well below its
		// bound, and an estimate above every real sample is a lie.
		hi := float64(h.Max)
		if i < len(h.Bounds) && float64(h.Bounds[i]) < hi {
			hi = float64(h.Bounds[i])
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(n)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return float64(h.Max)
}

// Clone returns a deep copy.
func (h Hist) Clone() Hist {
	h.Bounds = append([]int64(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

// Merge accumulates another histogram with identical bounds into h
// (bucket-wise addition). Mismatched bounds panic: merging histograms
// of different shapes indicates a harness bug. This is also the shard
// merge point of the channel-parallel engine: each memsim channel
// observes into its own histograms while epochs run concurrently, and
// Memory.Stats folds the shards together here after the barrier —
// addition commutes, so the fold is order-independent and the merged
// result is identical in serial and parallel runs.
func (h *Hist) Merge(other Hist) {
	if other.N == 0 {
		return
	}
	if h.N == 0 && len(h.Bounds) == 0 {
		*h = other.Clone()
		return
	}
	if len(h.Bounds) != len(other.Bounds) {
		panic("obsv: merging histograms with different bounds")
	}
	for i, b := range h.Bounds {
		if other.Bounds[i] != b {
			panic("obsv: merging histograms with different bounds")
		}
	}
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	h.N += other.N
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// String renders the histogram compactly for logs.
func (h Hist) String() string {
	if len(h.Counts) != len(h.Bounds)+1 {
		return "n=0"
	}
	s := fmt.Sprintf("n=%d mean=%.1f max=%d ", h.N, h.Mean(), h.Max)
	prev := int64(0)
	for i, b := range h.Bounds {
		if h.Counts[i] > 0 {
			s += fmt.Sprintf("[%d..%d]:%d ", prev, b, h.Counts[i])
		}
		prev = b + 1
	}
	if n := h.Counts[len(h.Bounds)]; n > 0 {
		s += fmt.Sprintf("[%d..]:%d ", prev, n)
	}
	return s[:len(s)-1]
}
