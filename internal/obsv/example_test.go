package obsv_test

import (
	"fmt"
	"os"

	"repro/internal/obsv"
)

// A Registry gathers metrics pulled from simulator components at
// snapshot time: components keep plain counters on their hot paths and
// implement Source, so measurement costs nothing until Collect runs.
func ExampleRegistry() {
	r := obsv.NewRegistry()
	r.Count("memsim.activates", 12000)
	r.Count("memsim.activates", 500) // accumulates
	r.Gauge("sim.ipc", 1.87)

	m := r.Snapshot()
	for _, name := range m.Names() { // sorted, stable
		fmt.Printf("%s = %s\n", name, m[name])
	}
	// Output:
	// memsim.activates = 12500
	// sim.ipc = 1.87
}

// A Hist is a fixed-bucket histogram for queue depths and occupancy
// distributions; PowersOfTwo builds the usual bound ladder.
func ExampleHist() {
	h := obsv.NewHist(obsv.PowersOfTwo(8)...) // bounds 0,1,2,4,8
	for _, depth := range []int64{0, 1, 1, 3, 9} {
		h.Observe(depth)
	}
	fmt.Println(h) // non-empty buckets as [lo..hi]:count
	fmt.Printf("mean=%.1f max=%d\n", h.Mean(), h.Max)
	// Output:
	// n=5 mean=2.8 max=9 [0..0]:1 [1..1]:2 [3..4]:1 [9..]:1
	// mean=2.8 max=9
}

// A Tracer is a bounded ring of timestamped simulation events. A nil
// *Tracer is valid and free: every instrumentation site guards with a
// single nil check inside Emit, so tracing costs nothing when off.
func ExampleTracer() {
	tr := obsv.NewTracer(1024)
	tr.Emit(obsv.Event{Cycle: 100, Kind: obsv.EvActivate, Row: 4242})
	tr.Emit(obsv.Event{Cycle: 250, Kind: obsv.EvMitigate, Row: 4242, Aux: 4})

	var off *obsv.Tracer // disabled: Emit is a no-op
	off.Emit(obsv.Event{Cycle: 1, Kind: obsv.EvActivate})

	for _, e := range tr.Events() {
		fmt.Printf("cycle=%d %s row=%d\n", e.Cycle, e.Kind, e.Row)
	}
	fmt.Println("disabled tracer recorded:", off.Total())
	// Output:
	// cycle=100 activate row=4242
	// cycle=250 mitigate row=4242
	// disabled tracer recorded: 0
}

// A Report is the machine-readable result of one run; ReportFile wraps
// one or more reports for the -json flag of the cmd binaries.
func ExampleReport() {
	rep := obsv.NewReport("hydrasim", "parest/hydra")
	rep.Params = map[string]any{"scale": 16, "trh": 500}
	rep.Workloads = []obsv.WorkloadReport{{
		Name:     "parest",
		NormPerf: map[string]float64{"hydra": 0.993},
	}}
	if err := rep.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("%s %s -> %s: norm_perf=%.3f\n",
		rep.Schema, rep.Tool, rep.Target, rep.Workloads[0].NormPerf["hydra"])
	// Output:
	// hydra-run-report/v1 hydrasim -> parest/hydra: norm_perf=0.993
}
