package obsv

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// GatherFunc returns a current metrics snapshot. The obsv.Server calls
// it on every scrape, so it must be safe for concurrent use —
// (*Registry).Snapshot is the canonical implementation.
type GatherFunc func() Metrics

// EventSource is a live feed of JSON-marshalable events, implemented
// by harness.Bus (structurally — obsv stays dependency-free). The
// returned channel is closed when the source shuts down or cancel is
// called; replay asks the source to prepend its retained backlog so a
// late subscriber still sees the campaign so far.
type EventSource interface {
	SubscribeAny(buffer int, replay bool) (<-chan any, func())
}

// ServerOptions configures an obsv.Server. All fields are optional: a
// zero-value server still serves /healthz and the pprof handlers.
type ServerOptions struct {
	// Gather supplies the /metrics and /metrics.json snapshot.
	Gather GatherFunc
	// Events supplies the /events NDJSON stream.
	Events EventSource
}

// Server is the live telemetry plane of a running campaign: one mux
// exposing
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/metrics.json  the same snapshot as JSON (obsv.Metrics)
//	/events        NDJSON cell-event stream (schema hydra-cell-event/v1;
//	               ?replay=1 prepends the retained backlog)
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard runtime profiles
//
// It is the API surface a future hydrad daemon mounts its versioned
// routes onto; every binary wires it through a -listen flag. See the
// "Exposition & live progress" section of docs/METRICS.md.
type Server struct {
	opts ServerOptions
	mux  *http.ServeMux

	// done is closed by Shutdown/Close so streaming handlers (/events)
	// end their response cleanly — http.Server.Shutdown alone would
	// wait forever on an NDJSON stream that never returns.
	done     chan struct{}
	downOnce sync.Once

	mu  sync.Mutex
	ln  net.Listener
	srv *http.Server
}

// NewServer builds a telemetry server; Start (or an external
// http.Server via Handler) makes it reachable.
func NewServer(opts ServerOptions) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux(), done: make(chan struct{})}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the telemetry mux, for mounting under an existing
// server (httptest, or hydrad's versioned router).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine until Close. It returns the bound address so
// callers can print a reachable URL.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: telemetry listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close; the process is exiting anyway
	return ln.Addr(), nil
}

// ListenFlag is the shared implementation of the binaries' -listen
// flag: with an empty addr it does nothing and returns a no-op stop;
// otherwise it starts a telemetry server on addr, prints the reachable
// metrics URL to stderr (stdout stays machine-parseable), and returns
// a graceful stop (Shutdown under a short deadline, so in-flight
// scrapes and /events streams drain). The returned stop is always
// non-nil and safe to defer.
func ListenFlag(addr string, opts ServerOptions) (stop func() error, err error) {
	if addr == "" {
		return func() error { return nil }, nil
	}
	s := NewServer(opts)
	bound, err := s.Start(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "[telemetry: http://%s/metrics]\n", bound)
	return func() error { return s.Shutdown(2 * time.Second) }, nil
}

// Shutdown stops a started server gracefully: streaming handlers are
// told to finish (in-flight /events subscribers get their final flush
// and a clean EOF instead of a connection reset), then the listener
// drains in-flight scrapes under the deadline. If the deadline
// expires, the remaining connections are closed abruptly — shutdown
// must terminate even with a wedged client. No-op on a never-started
// server.
func (s *Server) Shutdown(deadline time.Duration) error {
	s.downOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}

// Close stops a started server abruptly (no-op otherwise). Prefer
// Shutdown; Close exists for tests and last-resort teardown.
func (s *Server) Close() error {
	s.downOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) gather() Metrics {
	if s.opts.Gather == nil {
		return Metrics{}
	}
	return s.opts.Gather()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, s.gather())
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.gather()) //nolint:errcheck // client gone; nothing to do
}

// handleEvents streams the event bus as NDJSON: one JSON object per
// line, flushed per event so `curl -N` follows a campaign live. The
// stream ends when the source closes (campaign done) or the client
// disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Events == nil {
		http.Error(w, "no event source attached", http.StatusNotFound)
		return
	}
	replay := r.URL.Query().Get("replay") != ""
	ch, cancel := s.opts.Events.SubscribeAny(1024, replay)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	// Flush the headers now: a client attaching before the campaign's
	// first event must see the stream open, not block on a response.
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Graceful shutdown: return so http.Server.Shutdown can
			// complete; the client sees a clean end of stream.
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// promQuantiles are the summary lines WriteProm renders per histogram,
// matching the p50/p95/p99 rows of `hydrastat summarize`.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// PromName converts a dotted metric name ("memsim.readq_depth") to the
// Prometheus identifier charset ("memsim_readq_depth"). Characters
// outside [a-zA-Z0-9_:] become underscores; a leading digit is
// prefixed.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WriteProm renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series plus
// interpolated _quantile gauges (Hist.Quantile) so a scrape shows
// p50/p95/p99 without server-side histogram_quantile. Names are
// emitted in sorted order for deterministic scrapes.
func WriteProm(w io.Writer, m Metrics) error {
	bw := bufio.NewWriter(w)
	for _, name := range m.Names() {
		met := m[name]
		pn := PromName(name)
		switch met.Type {
		case TypeCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
			if met.Unit != "" {
				fmt.Fprintf(bw, "# HELP %s unit: %s\n", pn, met.Unit)
			}
			fmt.Fprintf(bw, "%s %s\n", pn, strconv.FormatInt(int64(met.Value), 10))
		case TypeGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
			fmt.Fprintf(bw, "%s %s\n", pn, formatPromFloat(met.Value))
		case TypeHistogram:
			h := met.Hist
			if h == nil || len(h.Counts) != len(h.Bounds)+1 {
				continue
			}
			fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
			cum := int64(0)
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum)
			}
			cum += h.Counts[len(h.Bounds)]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", pn, h.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", pn, h.N)
			fmt.Fprintf(bw, "# TYPE %s_quantile gauge\n", pn)
			for _, q := range promQuantiles {
				fmt.Fprintf(bw, "%s_quantile{quantile=\"%s\"} %s\n",
					pn, formatPromFloat(q), formatPromFloat(h.Quantile(q)))
			}
		}
	}
	return bw.Flush()
}

// formatPromFloat renders a float the way Prometheus expects: shortest
// round-trip representation, no exponent surprises for common values.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
