// Package obsv is the observability layer of the reproduction: a
// lightweight metrics registry, a ring-buffer event tracer, and a
// machine-readable run-report schema. It is stdlib-only and imported
// by the simulation layers (internal/memsim, internal/sim,
// internal/core, internal/track) and the experiment harness
// (internal/exp), so every figure and table run can emit a structured
// artifact that is comparable across PRs.
//
// The design is pull-based, like a Prometheus collector: components
// accumulate plain counters and fixed-bucket histograms on their hot
// paths (a few integer adds), and a Registry gathers them into a named
// snapshot only when a report is built. Nothing in this package sits
// on a simulation hot path unless explicitly enabled; the Tracer in
// particular is a nil pointer when disabled, reducing its cost to one
// predictable branch per event site.
//
// Metric names are dotted lowercase ("memsim.reads", "rct.fetches",
// "mitig.issued"); every name, its unit and its paper counterpart are
// documented in docs/METRICS.md.
package obsv

import (
	"fmt"
	"sort"
	"sync"
)

// MetricType discriminates the snapshot representation of a metric.
type MetricType string

// Metric types.
const (
	TypeCounter   MetricType = "counter"   // monotonically accumulated int64
	TypeGauge     MetricType = "gauge"     // instantaneous float64
	TypeHistogram MetricType = "histogram" // fixed-bucket distribution
)

// Metric is one named measurement in a snapshot. Exactly one of the
// value fields is meaningful, selected by Type.
type Metric struct {
	Type  MetricType `json:"type"`
	Value float64    `json:"value"`          // counter (as float) or gauge
	Hist  *Hist      `json:"hist,omitempty"` // histogram buckets
	Unit  string     `json:"unit,omitempty"`
}

// String formats the metric's value: counters as integers, gauges
// with full float precision, histograms via Hist.String.
func (m Metric) String() string {
	switch m.Type {
	case TypeHistogram:
		if m.Hist == nil {
			return "n=0"
		}
		return m.Hist.String()
	case TypeCounter:
		return fmt.Sprintf("%d", int64(m.Value))
	default:
		return fmt.Sprintf("%g", m.Value)
	}
}

// Metrics is a named snapshot, the unit the run report carries.
type Metrics map[string]Metric

// Names returns the metric names in sorted order (stable output).
func (m Metrics) Names() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Counter returns the integer value of a counter metric (0 if absent).
func (m Metrics) Counter(name string) int64 {
	return int64(m[name].Value)
}

// Merge accumulates other into m: counters add, gauges keep the
// maximum (the conservative aggregate for saturation-style gauges),
// histograms merge bucket-wise. Metrics only present in other are
// copied. Merge is how the harness aggregates per-run snapshots into
// one report-level view.
func (m Metrics) Merge(other Metrics) {
	for name, om := range other {
		cur, ok := m[name]
		if !ok {
			if om.Hist != nil {
				h := om.Hist.Clone()
				om.Hist = &h
			}
			m[name] = om
			continue
		}
		switch cur.Type {
		case TypeCounter:
			cur.Value += om.Value
		case TypeGauge:
			if om.Value > cur.Value {
				cur.Value = om.Value
			}
		case TypeHistogram:
			if cur.Hist != nil && om.Hist != nil {
				merged := cur.Hist.Clone()
				merged.Merge(*om.Hist)
				cur.Hist = &merged
				// Keep the headline value (= observation count) in step
				// with the merged histogram, so aggregates are identical
				// regardless of merge order.
				cur.Value = float64(merged.N)
			}
		}
		m[name] = cur
	}
}

// Registry collects metrics from simulation components into one named
// snapshot. It is safe for concurrent use: campaign workers may merge
// finished-run snapshots into a shared live registry while an HTTP
// scrape (obsv.Server) gathers it, so /metrics stays consistent
// mid-campaign. Per-run registries still pay only uncontended locks.
type Registry struct {
	mu      sync.Mutex
	metrics Metrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: Metrics{}}
}

// Source is implemented by components that can register their counters
// into a Registry: memsim.Stats, core.Stats, the baseline trackers.
type Source interface {
	CollectInto(r *Registry)
}

// Count registers a counter metric. Registering the same name again
// accumulates, so per-channel or per-run sources can share names.
func (r *Registry) Count(name string, v int64) {
	r.mu.Lock()
	m := r.metrics[name]
	m.Type = TypeCounter
	m.Value += float64(v)
	r.metrics[name] = m
	r.mu.Unlock()
}

// Gauge registers an instantaneous value (mean latency, occupancy
// fraction). Re-registering overwrites.
func (r *Registry) Gauge(name string, v float64) {
	r.mu.Lock()
	r.metrics[name] = Metric{Type: TypeGauge, Value: v}
	r.mu.Unlock()
}

// Histogram registers a distribution. The histogram is copied, so the
// source may keep mutating its own.
func (r *Registry) Histogram(name string, h Hist) {
	c := h.Clone()
	r.mu.Lock()
	r.metrics[name] = Metric{Type: TypeHistogram, Value: float64(h.N), Hist: &c}
	r.mu.Unlock()
}

// Collect gathers every source into the registry.
func (r *Registry) Collect(sources ...Source) {
	for _, s := range sources {
		if s != nil {
			s.CollectInto(r)
		}
	}
}

// Merge accumulates a finished run's snapshot into the registry with
// the same semantics as Metrics.Merge (counters add, gauges max,
// histograms merge bucket-wise). This is how the campaign harness
// keeps one live, scrapeable view across concurrently finishing cells.
func (r *Registry) Merge(m Metrics) {
	r.mu.Lock()
	r.metrics.Merge(m)
	r.mu.Unlock()
}

// Snapshot returns a deep copy of the collected metrics, safe to hold
// while the registry keeps accumulating.
func (r *Registry) Snapshot() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Metrics, len(r.metrics))
	for name, m := range r.metrics {
		if m.Hist != nil {
			h := m.Hist.Clone()
			m.Hist = &h
		}
		out[name] = m
	}
	return out
}

// Len reports how many metrics have been registered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// String renders the snapshot compactly for logs and tests.
func (r *Registry) String() string {
	m := r.Snapshot()
	s := ""
	for _, name := range m.Names() {
		s += fmt.Sprintf("%s: %s\n", name, m[name])
	}
	return s
}
