package obsv

import (
	"math"
	"testing"
)

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilHist *Hist
	if got := nilHist.Quantile(0.5); got != 0 {
		t.Errorf("nil hist quantile = %v, want 0", got)
	}
	h := NewHist(10, 20)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty hist quantile = %v, want 0", got)
	}
	var zero Hist // malformed: no counts slice
	if got := zero.Quantile(0.5); got != 0 {
		t.Errorf("zero-value hist quantile = %v, want 0", got)
	}
}

func TestQuantileUniformInterpolation(t *testing.T) {
	// 1..20 uniformly: 10 samples in (0,10], 10 in (10,20].
	h := NewHist(10, 20)
	for v := int64(1); v <= 20; v++ {
		h.Observe(v)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 0},        // rank 0 → lower edge of the first bucket
		{0.25, 5},     // rank 5 of 10 within (0,10]
		{0.5, 10},     // exactly exhausts the first bucket
		{0.75, 15},    // halfway through (10,20]
		{1, 20},       // the maximum
		{-0.5, 0},     // clamped to p=0
		{1.5, 20},     // clamped to p=1
	}
	for _, c := range cases {
		if got := h.Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileOverflowBucketUsesMax(t *testing.T) {
	h := NewHist(10)
	h.Observe(5)
	h.Observe(1000) // lands in the overflow bucket; Max = 1000
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %v, want the observed max 1000", got)
	}
	// The overflow bucket interpolates between the last bound and Max,
	// so no estimate can exceed a real sample.
	if got := h.Quantile(0.75); got < 10 || got > 1000 {
		t.Errorf("Quantile(0.75) = %v, want within (10, 1000]", got)
	}
}

func TestQuantileMonotonicInP(t *testing.T) {
	h := NewHist(PowersOfTwo(1024)...)
	for v := int64(0); v < 500; v++ {
		h.Observe(v * 3 % 700)
	}
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotonic: p=%v gave %v after %v", p, q, prev)
		}
		prev = q
	}
	if top := h.Quantile(1); top > float64(h.Max) {
		t.Errorf("Quantile(1) = %v exceeds Max %d", top, h.Max)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewHist(10, 100)
	h.Observe(42)
	for _, p := range []float64{0.5, 0.99, 1} {
		got := h.Quantile(p)
		if got < 10 || got > 100 {
			t.Errorf("Quantile(%v) = %v, want within the sample's bucket (10,100]", p, got)
		}
	}
}
