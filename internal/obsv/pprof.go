package obsv

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles enables CPU and/or heap profiling for a command run:
// cpuPath and memPath are output files, empty to skip either. The
// returned stop function flushes the profiles and reports the first
// error encountered; it is idempotent, so it can be both deferred and
// called on the success path. All four cmd/ binaries share this hook
// so any figure sweep can be profiled with -cpuprofile/-memprofile
// and inspected with `go tool pprof`.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obsv: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obsv: cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
			} else {
				runtime.GC() // settle the heap so the profile reflects live data
				if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
					first = err
				}
				if err := f.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		return first
	}, nil
}
