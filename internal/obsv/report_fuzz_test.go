package obsv

import (
	"bytes"
	"testing"
)

// FuzzDecodeReportFile pins the report-file decoder's contract at the
// trust boundary: arbitrary bytes must produce either a validated
// *ReportFile or an error — never a panic, and never a file that fails
// its own Validate.
func FuzzDecodeReportFile(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"schema":"hydra-report-file/v1","reports":[]}`))
	f.Add([]byte(`{"schema":"hydra-report-file/v1","reports":[null]}`))
	f.Add([]byte(`{"schema":"hydra-report-file/v999","reports":[{}]}`))
	f.Add([]byte(`{"schema":"hydra-report-file/v1","reports":[{"schema":"hydra-run-report/v1",` +
		`"tool":"t","target":"x","created_at":"2026-01-02T03:04:05Z","go_version":"go1.22",` +
		`"workloads":[{"name":"w","norm_perf":{"hydra":0.99}}],` +
		`"cells":[{"key":"x/hydra/w","status":"ok"}]}]}`))
	f.Add([]byte(`{"schema":"hydra-report-file/v1","reports":[{"schema":"hydra-run-report/v1",` +
		`"tool":"t","target":"x","created_at":"2026-01-02T03:04:05Z","go_version":"go1.22",` +
		`"cells":[{"key":"x/hydra/w","status":"failed","error":"boom","attempts":3,"panicked":true}]}]}`))
	f.Add([]byte(`{"schema":"hydra-report-file/v1","reports":[{"schema":"hydra-run-report/v1",` +
		`"tool":"t","target":"x","created_at":"2026-01-02T03:04:05Z","go_version":"go1.22",` +
		`"workloads":[{"name":"w","norm_perf":{"hydra":-1}}]}]}`))
	f.Add([]byte(`{"schema":"hydra-report-file/v1","reports":[{"cells":[{"status":"weird"}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rf, err := DecodeReportFile(data)
		if err != nil {
			if rf != nil {
				t.Fatal("error with non-nil report file")
			}
			return
		}
		if rf == nil {
			t.Fatal("nil report file without error")
		}
		// Whatever decoded must satisfy the validated invariants and
		// re-encode cleanly.
		if err := rf.Validate(); err != nil {
			t.Fatalf("decoded file fails its own validation: %v", err)
		}
		var buf bytes.Buffer
		if err := rf.Encode(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		rf2, err := DecodeReportFile(buf.Bytes())
		if err != nil {
			t.Fatalf("decode(encode(decode(x))) failed: %v", err)
		}
		if len(rf2.Reports) != len(rf.Reports) {
			t.Fatalf("round trip changed report count: %d -> %d", len(rf.Reports), len(rf2.Reports))
		}
	})
}
