package cache

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {16, 0}, {10, 3}, {-4, 2}} {
		if _, err := New(bad[0], bad[1], LRU); err == nil {
			t.Errorf("New(%d,%d) should error", bad[0], bad[1])
		}
	}
	if _, err := New(16, 4, Policy(99)); err == nil {
		t.Error("unknown policy should error")
	}
	c := MustNew(32, 4, SRRIP)
	if c.Sets() != 8 || c.Ways() != 4 || c.Entries() != 32 {
		t.Fatalf("geometry = %d sets x %d ways", c.Sets(), c.Ways())
	}
}

func TestHitMissAccounting(t *testing.T) {
	c := MustNew(16, 4, LRU)
	if _, ok := c.Lookup(42); ok {
		t.Fatal("hit in empty cache")
	}
	c.Insert(42, 7, false)
	v, ok := c.Lookup(42)
	if !ok || v != 7 {
		t.Fatalf("Lookup(42) = %d,%v; want 7,true", v, ok)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestUpdateAndDirtyEviction(t *testing.T) {
	c := MustNew(4, 4, LRU) // single set of 4 ways
	for k := uint64(0); k < 4; k++ {
		c.Insert(k*4, uint32(k), false) // all map to set 0
	}
	if !c.Update(0, 99) {
		t.Fatal("Update of resident key failed")
	}
	if c.Update(1234, 1) {
		t.Fatal("Update of absent key succeeded")
	}
	// Touch everything except key 0 so key 0 is LRU... but Update does
	// not promote; Lookup does. Promote keys 4, 8, 12.
	c.Lookup(4)
	c.Lookup(8)
	c.Lookup(12)
	victim, evicted := c.Insert(16, 1, false)
	if !evicted {
		t.Fatal("expected an eviction")
	}
	if victim.Key != 0 || victim.Val != 99 || !victim.Dirty {
		t.Fatalf("victim = %+v, want key 0 val 99 dirty", victim)
	}
	if c.DirtyEvict != 1 {
		t.Fatalf("DirtyEvict = %d, want 1", c.DirtyEvict)
	}
}

func TestInsertResidentUpdates(t *testing.T) {
	c := MustNew(8, 2, LRU)
	c.Insert(5, 1, false)
	if _, ev := c.Insert(5, 2, true); ev {
		t.Fatal("re-insert evicted something")
	}
	v, ok := c.Lookup(5)
	if !ok || v != 2 {
		t.Fatalf("value after re-insert = %d,%v", v, ok)
	}
	if c.ValidCount() != 1 {
		t.Fatalf("ValidCount = %d, want 1", c.ValidCount())
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := MustNew(4, 4, SRRIP)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k*4, 0, false)
	}
	// Promote key 0 (RRPV -> 0); others stay at fill RRPV 2.
	c.Lookup(0)
	victim, evicted := c.Insert(16, 0, false)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if victim.Key == 0 {
		t.Fatal("SRRIP evicted the just-promoted entry")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(8, 2, LRU)
	c.Insert(3, 9, true)
	e, ok := c.Invalidate(3)
	if !ok || e.Val != 9 || !e.Dirty {
		t.Fatalf("Invalidate = %+v,%v", e, ok)
	}
	if _, ok := c.Invalidate(3); ok {
		t.Fatal("double invalidate succeeded")
	}
	if c.Contains(3) {
		t.Fatal("invalidated key still resident")
	}
}

func TestReset(t *testing.T) {
	c := MustNew(8, 2, SRRIP)
	c.Insert(1, 1, true)
	c.Lookup(1)
	c.Lookup(2)
	c.Reset()
	if c.ValidCount() != 0 || c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("state after reset: valid=%d hits=%d misses=%d", c.ValidCount(), c.Hits, c.Misses)
	}
}

// Property: the cache never holds more entries than its capacity, never
// holds duplicates, and a Lookup immediately after Insert always hits.
func TestCacheInvariants(t *testing.T) {
	for _, policy := range []Policy{LRU, SRRIP} {
		c := MustNew(64, 8, policy)
		f := func(keys []uint16) bool {
			for _, k := range keys {
				key := uint64(k % 512)
				c.Insert(key, uint32(k), k%2 == 0)
				if _, ok := c.Lookup(key); !ok {
					return false
				}
			}
			if c.ValidCount() > c.Entries() {
				return false
			}
			seen := map[uint64]int{}
			for _, k := range keys {
				key := uint64(k % 512)
				if c.Contains(key) {
					seen[key]++
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

// Property: every insert of a non-resident key into a full set reports
// exactly one eviction, so occupancy is conserved.
func TestEvictionConservation(t *testing.T) {
	c := MustNew(4, 4, LRU)
	inserted := 0
	evictions := 0
	for k := uint64(0); k < 100; k++ {
		key := k * 4 // all in set 0
		_, ev := c.Insert(key, 0, false)
		inserted++
		if ev {
			evictions++
		}
	}
	if got := inserted - evictions; got != c.ValidCount() {
		t.Fatalf("occupancy %d != inserted-evicted %d", c.ValidCount(), got)
	}
}
