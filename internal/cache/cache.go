// Package cache implements a generic set-associative cache used by two
// very different metadata caches in this repo:
//
//   - Hydra's Row-Count Cache (RCC), organized at the granularity of a
//     single row counter and tagged by row address with SRRIP
//     replacement (paper Section 4.4, Table 4);
//   - CRA's metadata cache, organized like a conventional cache at
//     64-byte line granularity with LRU replacement (paper Section 2.5).
//
// Each entry carries a 32-bit payload owned by the caller (a counter
// value for the RCC; unused for CRA, which keeps counters in its
// backing array and uses the cache only for residency and dirtiness).
package cache

import "fmt"

// Policy selects the replacement policy.
type Policy int

const (
	// LRU replaces the least-recently-used way.
	LRU Policy = iota
	// SRRIP implements 2-bit static re-reference interval prediction:
	// hits reset the RRPV to 0, fills insert at RRPV 2, and the victim
	// is the first way with RRPV 3 (aging all ways until one exists).
	SRRIP
)

const srripMax = 3 // 2-bit RRPV

// Entry is the externally visible state of one cache entry, returned
// on eviction so the caller can write back dirty state.
type Entry struct {
	Key   uint64
	Val   uint32
	Dirty bool
}

type way struct {
	key   uint64
	val   uint32
	valid bool
	dirty bool
	rrpv  uint8
	used  uint64 // LRU timestamp
}

// SetAssoc is a set-associative cache of uint64 keys. It is not safe
// for concurrent use.
type SetAssoc struct {
	sets   int
	ways   int
	policy Policy
	data   []way
	clock  uint64

	// Stats accumulate across the cache's lifetime until Reset.
	Hits       int64
	Misses     int64
	Evictions  int64
	DirtyEvict int64
}

// New creates a cache with the given total entry count and
// associativity. Entries must be a positive multiple of ways.
func New(entries, ways int, policy Policy) (*SetAssoc, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("cache: entries=%d must be a positive multiple of ways=%d", entries, ways)
	}
	if policy != LRU && policy != SRRIP {
		return nil, fmt.Errorf("cache: unknown policy %d", policy)
	}
	return &SetAssoc{
		sets:   entries / ways,
		ways:   ways,
		policy: policy,
		data:   make([]way, entries),
	}, nil
}

// MustNew is New for statically valid geometries.
func MustNew(entries, ways int, policy Policy) *SetAssoc {
	c, err := New(entries, ways, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Entries returns the total capacity in entries.
func (c *SetAssoc) Entries() int { return c.sets * c.ways }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// setIndex mixes the key before the modulo so structured keys (bank
// bits at power-of-two strides) spread over all sets; hardware caches
// achieve the same with XOR-folded index bits.
func (c *SetAssoc) set(key uint64) []way {
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	s := int(h % uint64(c.sets))
	return c.data[s*c.ways : (s+1)*c.ways]
}

// Lookup probes the cache. On a hit it promotes the entry per the
// replacement policy and returns its current value.
func (c *SetAssoc) Lookup(key uint64) (val uint32, ok bool) {
	ws := c.set(key)
	for i := range ws {
		if ws[i].valid && ws[i].key == key {
			c.Hits++
			c.touch(&ws[i])
			return ws[i].val, true
		}
	}
	c.Misses++
	return 0, false
}

// Peek probes without promoting the entry or counting a hit/miss; it
// is meant for introspection and tests.
func (c *SetAssoc) Peek(key uint64) (val uint32, ok bool) {
	ws := c.set(key)
	for i := range ws {
		if ws[i].valid && ws[i].key == key {
			return ws[i].val, true
		}
	}
	return 0, false
}

// Contains probes without promoting or counting a hit/miss.
func (c *SetAssoc) Contains(key uint64) bool {
	ws := c.set(key)
	for i := range ws {
		if ws[i].valid && ws[i].key == key {
			return true
		}
	}
	return false
}

func (c *SetAssoc) touch(w *way) {
	c.clock++
	w.used = c.clock
	w.rrpv = 0
}

// Update overwrites the value of a resident entry and marks it dirty.
// It reports whether the key was resident.
func (c *SetAssoc) Update(key uint64, val uint32) bool {
	ws := c.set(key)
	for i := range ws {
		if ws[i].valid && ws[i].key == key {
			ws[i].val = val
			ws[i].dirty = true
			return true
		}
	}
	return false
}

// Insert fills the cache with key/val (marked dirty if dirty is set).
// If a valid entry must be displaced it is returned with evicted=true;
// the caller is responsible for writing back dirty victims. Inserting a
// key that is already resident just updates it.
func (c *SetAssoc) Insert(key uint64, val uint32, dirty bool) (victim Entry, evicted bool) {
	ws := c.set(key)
	// Already resident: update in place.
	for i := range ws {
		if ws[i].valid && ws[i].key == key {
			ws[i].val = val
			ws[i].dirty = ws[i].dirty || dirty
			c.touch(&ws[i])
			return Entry{}, false
		}
	}
	// Free way.
	for i := range ws {
		if !ws[i].valid {
			c.fill(&ws[i], key, val, dirty)
			return Entry{}, false
		}
	}
	// Choose a victim.
	vi := c.victim(ws)
	victim = Entry{Key: ws[vi].key, Val: ws[vi].val, Dirty: ws[vi].dirty}
	c.Evictions++
	if victim.Dirty {
		c.DirtyEvict++
	}
	c.fill(&ws[vi], key, val, dirty)
	return victim, true
}

func (c *SetAssoc) fill(w *way, key uint64, val uint32, dirty bool) {
	c.clock++
	*w = way{key: key, val: val, valid: true, dirty: dirty, used: c.clock}
	if c.policy == SRRIP {
		w.rrpv = srripMax - 1 // long re-reference interval on fill
	}
}

func (c *SetAssoc) victim(ws []way) int {
	switch c.policy {
	case LRU:
		vi := 0
		for i := 1; i < len(ws); i++ {
			if ws[i].used < ws[vi].used {
				vi = i
			}
		}
		return vi
	case SRRIP:
		for {
			for i := range ws {
				if ws[i].rrpv >= srripMax {
					return i
				}
			}
			for i := range ws {
				ws[i].rrpv++
			}
		}
	default:
		panic("cache: unknown policy")
	}
}

// Invalidate removes a key if resident, returning its entry so dirty
// state can be written back.
func (c *SetAssoc) Invalidate(key uint64) (Entry, bool) {
	ws := c.set(key)
	for i := range ws {
		if ws[i].valid && ws[i].key == key {
			e := Entry{Key: ws[i].key, Val: ws[i].val, Dirty: ws[i].dirty}
			ws[i] = way{}
			return e, true
		}
	}
	return Entry{}, false
}

// Reset invalidates every entry and clears statistics. Hydra resets its
// RCC every tracking window (paper Section 4.6).
func (c *SetAssoc) Reset() {
	for i := range c.data {
		c.data[i] = way{}
	}
	c.clock = 0
	c.Hits, c.Misses, c.Evictions, c.DirtyEvict = 0, 0, 0, 0
}

// ValidCount returns the number of valid entries (for tests).
func (c *SetAssoc) ValidCount() int {
	n := 0
	for i := range c.data {
		if c.data[i].valid {
			n++
		}
	}
	return n
}
