package memsim

// Property-based scheduler equivalence: where differential_test.go
// replays six fixed fuzz seeds, this machine *generates* adversarial
// schedules — write bursts that trip the drain hysteresis, hot-row runs
// against a starving victim, clock gaps landing on refresh boundaries,
// same-cycle arrival pileups, meta storms past the pressure threshold —
// together with generated queue-cap configurations, and requires the
// heap-indexed scheduler and the linear-scan reference to produce
// bitwise-identical event logs and statistics. A divergence shrinks to
// a minimal schedule.

import (
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/proptest"
)

// schedSegment appends one generated schedule segment to specs,
// advancing the arrival clock, and returns the updated slice and clock.
type segmentFunc func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64)

// specAt builds one request spec for a drawn location.
func specAt(t *proptest.T, mem dram.Config, kind Kind, row int, clock int64) reqSpec {
	loc := dram.Loc{
		Channel: proptest.IntRange(0, mem.Channels-1).Draw(t, "ch"),
		Rank:    proptest.IntRange(0, mem.RanksPerChannel-1).Draw(t, "rank"),
		Bank:    proptest.IntRange(0, mem.BanksPerRank-1).Draw(t, "bank"),
		Row:     row,
		Col:     proptest.IntRange(0, mem.RowBytes/64-1).Draw(t, "col"),
	}
	return reqSpec{line: mem.Encode(loc), kind: kind, arrive: clock}
}

// schedRows is the small row set every segment draws from, so row hits,
// conflicts and starvation all occur within a short schedule.
var schedRows = []int{0, 37, 74, 111, 148, 185}

func schedSegments() map[string]segmentFunc {
	return map[string]segmentFunc{
		// A dense run of writes to a few rows: trips DrainHi, then the
		// hysteresis exit path on the way back down.
		"write-burst": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(4, 40).Draw(t, "n")
			row := proptest.SampledFrom(schedRows).Draw(t, "row")
			for i := 0; i < n; i++ {
				specs = append(specs, specAt(t, mem, WriteReq, row, clock))
				clock += int64(proptest.IntRange(0, 3).Draw(t, "gap"))
			}
			return specs, clock
		},
		// One early read to a cold row, then a flood of row-hits
		// elsewhere: the victim must be rescued by the starvation rule
		// (oldest seq among starving), not left behind the hit chain.
		"starve": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			specs = append(specs, specAt(t, mem, ReadReq, 185, clock))
			n := proptest.IntRange(8, 60).Draw(t, "n")
			row := proptest.SampledFrom(schedRows[:2]).Draw(t, "row")
			for i := 0; i < n; i++ {
				specs = append(specs, specAt(t, mem, ReadReq, row, clock))
				clock += int64(proptest.IntRange(0, 2).Draw(t, "gap"))
			}
			return specs, clock
		},
		// Jump the clock to just around the next tREFI boundary so
		// requests arrive while a refresh is due or in flight.
		"refresh-collide": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			tm := DDR4()
			next := (clock/tm.TREFI + 1) * tm.TREFI
			clock = next + int64(proptest.IntRange(-40, 40).Draw(t, "skew"))
			if clock < 0 {
				clock = 0
			}
			n := proptest.IntRange(2, 12).Draw(t, "n")
			for i := 0; i < n; i++ {
				row := proptest.SampledFrom(schedRows).Draw(t, "row")
				specs = append(specs, specAt(t, mem, ReadReq, row, clock))
			}
			return specs, clock
		},
		// A pileup of mixed requests all arriving on the same cycle:
		// tie-breaks must be decided by seq alone.
		"same-cycle": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(3, 24).Draw(t, "n")
			kinds := []Kind{ReadReq, WriteReq, MetaRead, MetaWrite, MitigAct}
			for i := 0; i < n; i++ {
				k := proptest.SampledFrom(kinds).Draw(t, "kind")
				row := proptest.SampledFrom(schedRows).Draw(t, "row")
				specs = append(specs, specAt(t, mem, k, row, clock))
			}
			return specs, clock
		},
		// Enough internal meta reads to cross the metaPressure
		// promotion threshold.
		"meta-storm": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(metaPressure+1, metaPressure+40).Draw(t, "n")
			row := proptest.SampledFrom(schedRows).Draw(t, "row")
			for i := 0; i < n; i++ {
				specs = append(specs, specAt(t, mem, MetaRead, row, clock))
				clock += int64(proptest.IntRange(0, 1).Draw(t, "gap"))
			}
			return specs, clock
		},
		// Background mixed traffic with small gaps, the fuzzStream
		// texture, plus occasional mitigation activates.
		"mixed": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(5, 50).Draw(t, "n")
			kinds := []Kind{ReadReq, ReadReq, ReadReq, WriteReq, MetaRead, MetaWrite, MitigAct}
			for i := 0; i < n; i++ {
				k := proptest.SampledFrom(kinds).Draw(t, "kind")
				row := proptest.SampledFrom(schedRows).Draw(t, "row")
				specs = append(specs, specAt(t, mem, k, row, clock))
				clock += int64(proptest.IntRange(0, 6).Draw(t, "gap"))
			}
			return specs, clock
		},
		// Idle gap: lets queues fully drain so the next segment starts
		// from an empty controller.
		"idle": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			clock += int64(proptest.IntRange(100, 5000).Draw(t, "gap"))
			return specs, clock
		},
	}
}

// genSchedConfig draws a controller configuration: either the default
// or a tightened one where refusals, drains and starvation are common.
func genSchedConfig(t *proptest.T, mem dram.Config) Config {
	cfg := DefaultConfig(mem)
	if proptest.Bool().Draw(t, "tight") {
		cfg.ReadQCap = proptest.IntRange(2, 16).Draw(t, "readQCap")
		cfg.WriteQCap = proptest.IntRange(3, 24).Draw(t, "writeQCap")
		cfg.DrainHi = proptest.IntRange(2, cfg.WriteQCap).Draw(t, "drainHi")
		cfg.DrainLo = proptest.IntRange(0, cfg.DrainHi-1).Draw(t, "drainLo")
	}
	return cfg
}

func schedulerEquivProp(tb testing.TB) func(*proptest.T) {
	mem := dram.Baseline()
	segments := schedSegments()
	segNames := make([]string, 0, len(segments))
	for name := range segments {
		segNames = append(segNames, name)
	}
	// Deterministic order for SampledFrom (map iteration is not).
	sortStrings(segNames)
	return func(t *proptest.T) {
		nseg := proptest.IntRange(1, 10).Draw(t, "segments")
		var specs []reqSpec
		clock := int64(0)
		for s := 0; s < nseg; s++ {
			name := proptest.SampledFrom(segNames).Draw(t, "segment")
			specs, clock = segments[name](t, mem, specs, clock)
		}
		if len(specs) == 0 {
			return
		}

		cfgA := genSchedConfig(t, mem)
		idx := New(cfgA)
		got := driveStream(idx, func(h func(uint32, Kind, int64)) { cfgA.OnACT = h; idx.cfg.OnACT = h }, specs)

		cfgB := cfgA
		lin := newLinMemory(cfgB)
		want := driveStream(lin, func(h func(uint32, Kind, int64)) { cfgB.OnACT = h; lin.cfg.OnACT = h }, specs)

		if len(got) != len(want) {
			t.Fatalf("%d events vs %d in reference (%d specs)", len(got), len(want), len(specs))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("event %d of %d diverged:\nindexed:   %+v\nreference: %+v",
					i, len(got), got[i], want[i])
			}
		}
		if a, b := idx.Stats(), lin.Stats(); !reflect.DeepEqual(a, b) {
			t.Fatalf("stats diverged:\nindexed:   %+v\nreference: %+v", a, b)
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestSchedulerEquivalenceMachine is the generated counterpart of
// TestDifferentialSchedulerEquivalence.
func TestSchedulerEquivalenceMachine(t *testing.T) {
	proptest.Check(t, schedulerEquivProp(t))
}

// TestRegressionOutOfOrderArrivalLeapfrog replays the machine's
// shrunken catch: three same-bank read clusters whose arrival
// timestamps go *backward* (the third cluster lands 39 cycles before
// the second). The indexed scheduler promoted requests out of its
// future heap in (Arrive, seq) order, so the late-submitted cluster
// reached the bank bucket first and leapfrogged the earlier-submitted
// one, while the linear reference broke the tie by submission order —
// completions diverged. Fixed in bucket.push: an out-of-order
// promotion now bubbles into seq position, so FR-FCFS/FCFS tie-breaks
// see submission order no matter when a request left the future heap.
// (An earlier fix clamped arrivals to be per-channel monotonic at
// submit, but that redefined arrival semantics: the throttle policy
// legitimately submits future-dated requests, and the clamp dragged
// every later submission on the channel up to the throttled row's
// release time — channel-wide stalling instead of per-row rate
// limiting.) The trace must replay clean.
func TestRegressionOutOfOrderArrivalLeapfrog(t *testing.T) {
	proptest.ReplayTrace(t, []uint64{
		0x193b4e4579833cc7, 0x5ffdfcaec752799e, 0x0, 0xf0db6269e38c10ce,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x36d2a6c9e2226551, 0x421d7c34f37fe9c5, 0xa0e583a90329a243,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x8fa04da357c56fe,
	}, schedulerEquivProp(t))
}
