package memsim

// Property-based scheduler equivalence: where differential_test.go
// replays six fixed fuzz seeds, this machine *generates* adversarial
// schedules — write bursts that trip the drain hysteresis, hot-row runs
// against a starving victim, clock gaps landing on refresh boundaries,
// same-cycle arrival pileups, meta storms past the pressure threshold —
// together with generated queue-cap configurations, and requires the
// heap-indexed scheduler and the linear-scan reference to produce
// bitwise-identical event logs and statistics. A divergence shrinks to
// a minimal schedule.

import (
	"os"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dram"
	"repro/internal/proptest"
)

// schedSegment appends one generated schedule segment to specs,
// advancing the arrival clock, and returns the updated slice and clock.
type segmentFunc func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64)

// specAt builds one request spec for a drawn location.
func specAt(t *proptest.T, mem dram.Config, kind Kind, row int, clock int64) reqSpec {
	loc := dram.Loc{
		Channel: proptest.IntRange(0, mem.Channels-1).Draw(t, "ch"),
		Rank:    proptest.IntRange(0, mem.RanksPerChannel-1).Draw(t, "rank"),
		Bank:    proptest.IntRange(0, mem.BanksPerRank-1).Draw(t, "bank"),
		Row:     row,
		Col:     proptest.IntRange(0, mem.RowBytes/64-1).Draw(t, "col"),
	}
	return reqSpec{line: mem.Encode(loc), kind: kind, arrive: clock}
}

// schedRows is the small row set every segment draws from, so row hits,
// conflicts and starvation all occur within a short schedule.
var schedRows = []int{0, 37, 74, 111, 148, 185}

func schedSegments() map[string]segmentFunc {
	return map[string]segmentFunc{
		// A dense run of writes to a few rows: trips DrainHi, then the
		// hysteresis exit path on the way back down.
		"write-burst": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(4, 40).Draw(t, "n")
			row := proptest.SampledFrom(schedRows).Draw(t, "row")
			for i := 0; i < n; i++ {
				specs = append(specs, specAt(t, mem, WriteReq, row, clock))
				clock += int64(proptest.IntRange(0, 3).Draw(t, "gap"))
			}
			return specs, clock
		},
		// One early read to a cold row, then a flood of row-hits
		// elsewhere: the victim must be rescued by the starvation rule
		// (oldest seq among starving), not left behind the hit chain.
		"starve": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			specs = append(specs, specAt(t, mem, ReadReq, 185, clock))
			n := proptest.IntRange(8, 60).Draw(t, "n")
			row := proptest.SampledFrom(schedRows[:2]).Draw(t, "row")
			for i := 0; i < n; i++ {
				specs = append(specs, specAt(t, mem, ReadReq, row, clock))
				clock += int64(proptest.IntRange(0, 2).Draw(t, "gap"))
			}
			return specs, clock
		},
		// Jump the clock to just around the next tREFI boundary so
		// requests arrive while a refresh is due or in flight.
		"refresh-collide": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			tm := DDR4()
			next := (clock/tm.TREFI + 1) * tm.TREFI
			clock = next + int64(proptest.IntRange(-40, 40).Draw(t, "skew"))
			if clock < 0 {
				clock = 0
			}
			n := proptest.IntRange(2, 12).Draw(t, "n")
			for i := 0; i < n; i++ {
				row := proptest.SampledFrom(schedRows).Draw(t, "row")
				specs = append(specs, specAt(t, mem, ReadReq, row, clock))
			}
			return specs, clock
		},
		// A pileup of mixed requests all arriving on the same cycle:
		// tie-breaks must be decided by seq alone.
		"same-cycle": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(3, 24).Draw(t, "n")
			kinds := []Kind{ReadReq, WriteReq, MetaRead, MetaWrite, MitigAct}
			for i := 0; i < n; i++ {
				k := proptest.SampledFrom(kinds).Draw(t, "kind")
				row := proptest.SampledFrom(schedRows).Draw(t, "row")
				specs = append(specs, specAt(t, mem, k, row, clock))
			}
			return specs, clock
		},
		// Enough internal meta reads to cross the metaPressure
		// promotion threshold.
		"meta-storm": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(metaPressure+1, metaPressure+40).Draw(t, "n")
			row := proptest.SampledFrom(schedRows).Draw(t, "row")
			for i := 0; i < n; i++ {
				specs = append(specs, specAt(t, mem, MetaRead, row, clock))
				clock += int64(proptest.IntRange(0, 1).Draw(t, "gap"))
			}
			return specs, clock
		},
		// Background mixed traffic with small gaps, the fuzzStream
		// texture, plus occasional mitigation activates.
		"mixed": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			n := proptest.IntRange(5, 50).Draw(t, "n")
			kinds := []Kind{ReadReq, ReadReq, ReadReq, WriteReq, MetaRead, MetaWrite, MitigAct}
			for i := 0; i < n; i++ {
				k := proptest.SampledFrom(kinds).Draw(t, "kind")
				row := proptest.SampledFrom(schedRows).Draw(t, "row")
				specs = append(specs, specAt(t, mem, k, row, clock))
				clock += int64(proptest.IntRange(0, 6).Draw(t, "gap"))
			}
			return specs, clock
		},
		// Idle gap: lets queues fully drain so the next segment starts
		// from an empty controller.
		"idle": func(t *proptest.T, mem dram.Config, specs []reqSpec, clock int64) ([]reqSpec, int64) {
			clock += int64(proptest.IntRange(100, 5000).Draw(t, "gap"))
			return specs, clock
		},
	}
}

// genSchedConfig draws a controller configuration: either the default
// or a tightened one where refusals, drains and starvation are common.
func genSchedConfig(t *proptest.T, mem dram.Config) Config {
	cfg := DefaultConfig(mem)
	if proptest.Bool().Draw(t, "tight") {
		cfg.ReadQCap = proptest.IntRange(2, 16).Draw(t, "readQCap")
		cfg.WriteQCap = proptest.IntRange(3, 24).Draw(t, "writeQCap")
		cfg.DrainHi = proptest.IntRange(2, cfg.WriteQCap).Draw(t, "drainHi")
		cfg.DrainLo = proptest.IntRange(0, cfg.DrainHi-1).Draw(t, "drainLo")
	}
	return cfg
}

func schedulerEquivProp(tb testing.TB) func(*proptest.T) {
	mem := dram.Baseline()
	segments := schedSegments()
	segNames := make([]string, 0, len(segments))
	for name := range segments {
		segNames = append(segNames, name)
	}
	// Deterministic order for SampledFrom (map iteration is not).
	sortStrings(segNames)
	return func(t *proptest.T) {
		nseg := proptest.IntRange(1, 10).Draw(t, "segments")
		var specs []reqSpec
		clock := int64(0)
		for s := 0; s < nseg; s++ {
			name := proptest.SampledFrom(segNames).Draw(t, "segment")
			specs, clock = segments[name](t, mem, specs, clock)
		}
		if len(specs) == 0 {
			return
		}

		cfgA := genSchedConfig(t, mem)
		idx := New(cfgA)
		got := driveStream(idx, func(h func(uint32, Kind, int64)) { cfgA.OnACT = h; idx.cfg.OnACT = h }, specs)

		cfgB := cfgA
		lin := newLinMemory(cfgB)
		want := driveStream(lin, func(h func(uint32, Kind, int64)) { cfgB.OnACT = h; lin.cfg.OnACT = h }, specs)

		if len(got) != len(want) {
			t.Fatalf("%d events vs %d in reference (%d specs)", len(got), len(want), len(specs))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("event %d of %d diverged:\nindexed:   %+v\nreference: %+v",
					i, len(got), got[i], want[i])
			}
		}
		if a, b := idx.Stats(), lin.Stats(); !reflect.DeepEqual(a, b) {
			t.Fatalf("stats diverged:\nindexed:   %+v\nreference: %+v", a, b)
		}
	}
}

// driveEpochs is driveStream's counterpart for the bulk-synchronous
// engine: it submits the specs in arrival order, advancing the memory
// with lookahead-bounded RunEpoch calls instead of per-event Step, then
// drains it and returns the observable event log. Both drivers advance
// exactly the set of decisions strictly before each arrival, so their
// logs are comparable event for event.
func driveEpochs(m *Memory, specs []reqSpec) []schedEvent {
	var events []schedEvent
	m.cfg.OnACT = func(row uint32, kind Kind, at int64) {
		events = append(events, schedEvent{row: row, kind: kind, t: at})
	}
	onFin := func(r *Request, f int64) {
		events = append(events, schedEvent{fin: true, id: r.User, t: f})
	}
	advance := func(bound int64) {
		for t := m.NextTime(); t < bound; {
			h := t + m.Lookahead()
			if h > bound {
				h = bound
			}
			t = m.RunEpoch(h)
		}
	}
	for i, sp := range specs {
		advance(sp.arrive)
		r := &Request{Line: sp.line, Kind: sp.kind, Arrive: sp.arrive, User: int64(i), OnFinish: onFin}
		if !m.Submit(r) {
			events = append(events, schedEvent{refuse: true, id: int64(i)})
		}
	}
	advance(Infinity)
	return events
}

// parallelEquivProp is the parallel-vs-serial equivalence family: a
// generated segment mix is run three ways — per-event Step (the old
// synchronous semantics), serial epochs, and parallel epochs — and all
// three must produce bitwise-identical event logs and statistics. The
// Step reference pins the epoch engine's merge order to the global
// earliest-event order (the hooks here only log, so the engines'
// feedback semantics coincide); the serial/parallel pair pins execution
// strategy out of the results entirely, at any GOMAXPROCS. Runs under
// -race in `make check` (quick tier) and `make soak` (thorough).
func parallelEquivProp(tb testing.TB) func(*proptest.T) {
	segments := schedSegments()
	segNames := make([]string, 0, len(segments))
	for name := range segments {
		segNames = append(segNames, name)
	}
	sortStrings(segNames)
	return func(t *proptest.T) {
		mem := dram.Baseline()
		mem.Channels = []int{1, 2, 4}[proptest.IntRange(0, 2).Draw(t, "channels")]
		nseg := proptest.IntRange(1, 10).Draw(t, "segments")
		var specs []reqSpec
		clock := int64(0)
		for s := 0; s < nseg; s++ {
			name := proptest.SampledFrom(segNames).Draw(t, "segment")
			specs, clock = segments[name](t, mem, specs, clock)
		}
		if len(specs) == 0 {
			return
		}

		cfgA := genSchedConfig(t, mem)
		stepM := New(cfgA)
		ref := driveStream(stepM, func(h func(uint32, Kind, int64)) { stepM.cfg.OnACT = h }, specs)

		serM := New(cfgA)
		serial := driveEpochs(serM, specs)

		cfgP := cfgA
		cfgP.Parallel = true
		parM := New(cfgP)
		parallel := driveEpochs(parM, specs)
		parM.Close()

		compareLogs(t, "serial-epoch", serial, "step", ref)
		compareLogs(t, "parallel", parallel, "serial-epoch", serial)
		serStats, parStats := serM.Stats(), parM.Stats()
		if !reflect.DeepEqual(serStats, parStats) {
			t.Fatalf("stats diverged across modes:\nserial:   %+v\nparallel: %+v", serStats, parStats)
		}
		// The Step reference never runs epochs; mask the counter for
		// the cross-engine comparison.
		serStats.Epochs = 0
		if stepStats := stepM.Stats(); !reflect.DeepEqual(serStats, stepStats) {
			t.Fatalf("stats diverged across engines:\nepoch: %+v\nstep:  %+v", serStats, stepStats)
		}
	}
}

func compareLogs(t *proptest.T, gotName string, got []schedEvent, wantName string, want []schedEvent) {
	if len(got) != len(want) {
		t.Fatalf("%s produced %d events, %s %d", gotName, len(got), wantName, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d of %d diverged:\n%s: %+v\n%s: %+v",
				i, len(got), gotName, got[i], wantName, want[i])
		}
	}
}

// TestParallelSerialEquivalenceMachine is the generated equivalence
// suite for the channel-parallel engine (docs/TESTING.md). CI runs it
// under the race detector with GOMAXPROCS forced to 1, 2 and NumCPU;
// the forced-1 leg pins the auto-disable path. On an unforced
// single-CPU machine the test raises GOMAXPROCS to 2 itself —
// concurrency without parallelism still drives the worker goroutines
// and their synchronization under the race detector.
func TestParallelSerialEquivalenceMachine(t *testing.T) {
	if os.Getenv("GOMAXPROCS") == "" && runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	proptest.Check(t, parallelEquivProp(t))
}

// TestParallelEpochsEngage pins that the equivalence suite exercises a
// real fan-out: with multi-channel traffic and GOMAXPROCS > 1, at
// least one epoch must run on the worker goroutines (an accidentally
// always-serial "parallel" mode would pass every equivalence check
// while testing nothing).
func TestParallelEpochsEngage(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	mem := dram.Baseline()
	mem.Channels = 4
	cfg := DefaultConfig(mem)
	cfg.Parallel = true
	m := New(cfg)
	defer m.Close()
	var specs []reqSpec
	for i := 0; i < 4096; i++ {
		loc := dram.Loc{Channel: i % 4, Bank: i % 16, Row: (i / 64) % 200, Col: i % 128}
		specs = append(specs, reqSpec{line: mem.Encode(loc), kind: ReadReq, arrive: int64(i)})
	}
	driveEpochs(m, specs)
	if m.parEpochs == 0 {
		t.Fatalf("no epoch fanned out to workers across %d epochs of 4-channel traffic", m.epochs)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestSchedulerEquivalenceMachine is the generated counterpart of
// TestDifferentialSchedulerEquivalence.
func TestSchedulerEquivalenceMachine(t *testing.T) {
	proptest.Check(t, schedulerEquivProp(t))
}

// TestRegressionOutOfOrderArrivalLeapfrog replays the machine's
// shrunken catch: three same-bank read clusters whose arrival
// timestamps go *backward* (the third cluster lands 39 cycles before
// the second). The indexed scheduler promoted requests out of its
// future heap in (Arrive, seq) order, so the late-submitted cluster
// reached the bank bucket first and leapfrogged the earlier-submitted
// one, while the linear reference broke the tie by submission order —
// completions diverged. Fixed in bucket.push: an out-of-order
// promotion now bubbles into seq position, so FR-FCFS/FCFS tie-breaks
// see submission order no matter when a request left the future heap.
// (An earlier fix clamped arrivals to be per-channel monotonic at
// submit, but that redefined arrival semantics: the throttle policy
// legitimately submits future-dated requests, and the clamp dragged
// every later submission on the channel up to the throttled row's
// release time — channel-wide stalling instead of per-row rate
// limiting.) The trace must replay clean.
func TestRegressionOutOfOrderArrivalLeapfrog(t *testing.T) {
	proptest.ReplayTrace(t, []uint64{
		0x193b4e4579833cc7, 0x5ffdfcaec752799e, 0x0, 0xf0db6269e38c10ce,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x36d2a6c9e2226551, 0x421d7c34f37fe9c5, 0xa0e583a90329a243,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0,
		0x8fa04da357c56fe,
	}, schedulerEquivProp(t))
}
