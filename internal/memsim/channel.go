package memsim

import "repro/internal/obsv"

// bank is the per-bank timing state.
type bank struct {
	openRow int   // -1 when precharged
	readyAt int64 // earliest start of the next column activity
	lastAct int64 // last activation time (tRC spacing)
	// wrRecover is the earliest the bank may precharge after a write
	// burst (tWR write recovery). It gates only the precharge/activate
	// path: row-hit CAS commands after a write stream at burst rate.
	wrRecover int64
}

// channel is one memory controller: queues, banks, bus and refresh.
type channel struct {
	cfg *Config
	sh  *shared
	id  int

	banks   []bank
	faw     [][4]int64 // per rank: last four ACT times
	fawIdx  []int
	nextRef []int64 // per rank: next scheduled refresh

	busFreeAt int64
	// lastWriteEnd is when the most recent write burst left the data
	// bus and lastWriteBank which bank it targeted; a read CAS pays
	// the tWTR turnaround from it — the long value on the same bank,
	// the short one across banks (standing in for DDR4 bank groups).
	// Tracked per channel (bus granularity), which is exact for the
	// single-rank baseline.
	lastWriteEnd  int64
	lastWriteBank int

	mitigQ reqQueue
	readQ  reqQueue
	metaQ  reqQueue
	writeQ reqQueue

	draining   bool
	now        int64
	nextAt     int64
	dispatchAt int64 // earliest next scheduling decision (pacing)
	openBanks  int64 // banks with an open row (occupancy sampling)

	// events buffers this channel's side effects (completions,
	// activation-hook calls, refresh trace events) until the epoch
	// barrier replays them; evHead is the drain cursor. See epoch.go.
	events []chanEvent
	evHead int

	stats Stats
}

const (
	// starvationAge forces FCFS for a request stuck this long.
	starvationAge int64 = 4000
	// cmdGap spaces non-data commands (mitigation ACTs).
	cmdGap int64 = 4
	// metaPressure is the tracker's miss-buffer depth: when more
	// metadata transfers than this are outstanding, they take priority
	// over demand reads, modeling the pipeline stall a real controller
	// takes when its tracker buffer fills. Without this bound a
	// saturating tracker (CRA under a hot workload) would defer its
	// counter updates forever.
	metaPressure = 32
)

func newChannel(cfg *Config, sh *shared, id int) *channel {
	nBanks := cfg.Mem.RanksPerChannel * cfg.Mem.BanksPerRank
	c := &channel{
		cfg:     cfg,
		sh:      sh,
		id:      id,
		banks:   make([]bank, nBanks),
		faw:     make([][4]int64, cfg.Mem.RanksPerChannel),
		fawIdx:  make([]int, cfg.Mem.RanksPerChannel),
		nextRef: make([]int64, cfg.Mem.RanksPerChannel),
		nextAt:  Infinity,
	}
	c.mitigQ.init(nBanks, false)
	c.readQ.init(nBanks, true)
	c.metaQ.init(nBanks, true)
	c.writeQ.init(nBanks, true)
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].lastAct = -Infinity
	}
	// Queue-depth buckets cover the default capacities; deeper custom
	// queues land in the overflow bucket. Bounds are fixed so that
	// per-channel histograms merge in Memory.Stats.
	c.stats.ReadQDepth = obsv.NewHist(obsv.PowersOfTwo(64)...)
	c.stats.WriteQDepth = obsv.NewHist(obsv.PowersOfTwo(128)...)
	c.stats.MetaQDepth = obsv.NewHist(obsv.PowersOfTwo(64)...)
	c.stats.OpenBanks = obsv.NewHist(obsv.PowersOfTwo(32)...)
	for r := range c.faw {
		for j := range c.faw[r] {
			c.faw[r][j] = -Infinity
		}
		// Stagger refresh start per rank and channel a little so the
		// whole system does not refresh in lockstep. The stagger is
		// clamped modulo tREFI: large channel/rank counts must not
		// push a rank's first refresh beyond one extra window.
		c.nextRef[r] = cfg.Timing.TREFI + int64(id*997+r*511)%cfg.Timing.TREFI
	}
	return c
}

func (c *channel) bankIdx(r *Request) int {
	return r.loc.Rank*c.cfg.Mem.BanksPerRank + r.loc.Bank
}

func (c *channel) queueFor(k Kind) *reqQueue {
	switch k {
	case MitigAct:
		return &c.mitigQ
	case ReadReq:
		return &c.readQ
	case MetaRead:
		return &c.metaQ
	default:
		return &c.writeQ
	}
}

func (c *channel) submit(r *Request) bool {
	switch r.Kind {
	case ReadReq:
		if c.readQ.len() >= c.cfg.ReadQCap {
			c.stats.ReadQFull++
			return false
		}
	case WriteReq:
		if c.writeQ.len() >= c.cfg.WriteQCap {
			c.stats.WriteQFull++
			return false
		}
	}
	r.seq = c.sh.nextSeq()
	b := c.bankIdx(r)
	c.queueFor(r.Kind).add(r, b, c.banks[b].openRow, c.now)
	at := r.Arrive
	if at < c.dispatchAt {
		at = c.dispatchAt
	}
	if at < c.now {
		at = c.now
	}
	if at < c.nextAt {
		c.nextAt = at
	}
	return true
}

func (c *channel) idle() bool {
	return c.mitigQ.len() == 0 && c.readQ.len() == 0 && c.metaQ.len() == 0 && c.writeQ.len() == 0
}

// promote moves every request that has arrived by now from the future
// heap into its bank bucket.
func (c *channel) promote(q *reqQueue, now int64) {
	for len(q.future) > 0 && q.future[0].key <= now {
		r := q.future.pop().r
		b := c.bankIdx(r)
		q.insertReady(r, b, c.banks[b].openRow)
	}
}

// step processes one scheduling decision at c.nextAt.
func (c *channel) step() {
	now := c.nextAt
	c.now = now
	c.applyRefreshes(now)
	c.promote(&c.mitigQ, now)
	c.promote(&c.readQ, now)
	c.promote(&c.metaQ, now)
	c.promote(&c.writeQ, now)
	c.stats.ReadQDepth.Observe(int64(c.readQ.len()))
	c.stats.WriteQDepth.Observe(int64(c.writeQ.len()))
	c.stats.MetaQDepth.Observe(int64(c.metaQ.len()))
	c.stats.OpenBanks.Observe(c.openBanks)

	r, from := c.pick(now)
	if r == nil {
		c.nextAt = c.earliestArrival()
		if c.nextAt < c.dispatchAt {
			c.nextAt = c.dispatchAt
		}
		return
	}
	from.remove(r, c.bankIdx(r))
	c.service(r, now)
	// Pace the next scheduling decision: command bandwidth for
	// bank-only activations; for data requests, stay a bounded
	// lookahead ahead of the data bus so queues hold requests the bus
	// cannot yet serve (realistic occupancy and backpressure).
	c.dispatchAt = now + cmdGap
	if r.Kind != MitigAct {
		lookahead := c.cfg.Timing.TRP + c.cfg.Timing.TRCD + c.cfg.Timing.TCAS
		if t := c.busFreeAt - lookahead; t > c.dispatchAt {
			c.dispatchAt = t
		}
	}
	c.nextAt = c.dispatchAt
}

// applyRefreshes issues every rank refresh scheduled at or before now.
// The refresh occupies all banks of the rank for tRFC starting at its
// scheduled time, so refreshes caught up after an idle gap do not
// stack.
func (c *channel) applyRefreshes(now int64) {
	for rank := range c.nextRef {
		for c.nextRef[rank] <= now {
			start := c.nextRef[rank]
			lo := rank * c.cfg.Mem.BanksPerRank
			for b := lo; b < lo+c.cfg.Mem.BanksPerRank; b++ {
				bk := &c.banks[b]
				s := start
				if bk.readyAt > s {
					s = bk.readyAt
				}
				// The refresh's implicit precharge respects tWR.
				if bk.openRow >= 0 && bk.wrRecover > s {
					s = bk.wrRecover
				}
				bk.readyAt = s + c.cfg.Timing.TRFC
				if bk.openRow >= 0 {
					c.openBanks--
					bk.openRow = -1
					c.rowChanged(b)
				}
			}
			c.stats.Refreshes++
			if c.cfg.Trace.Enabled() {
				c.events = append(c.events, chanEvent{
					dec: now, t: start, kind: evRefresh, row: uint32(c.id), aux: int64(rank),
				})
			}
			c.nextRef[rank] += c.cfg.Timing.TREFI
		}
	}
}

// rowChanged invalidates the cached row-hit candidates of every
// FR-FCFS queue for one bank, after its open row changed.
func (c *channel) rowChanged(bank int) {
	c.readQ.buckets[bank].invalidateHit()
	c.metaQ.buckets[bank].invalidateHit()
	c.writeQ.buckets[bank].invalidateHit()
}

// earliestArrival returns the next time any queued request arrives;
// only meaningful when pick found nothing ready.
func (c *channel) earliestArrival() int64 {
	t := Infinity
	for _, q := range [...]*reqQueue{&c.mitigQ, &c.readQ, &c.metaQ, &c.writeQ} {
		if q.readyN > 0 {
			return c.now
		}
		if f := q.earliestFuture(); f < t {
			t = f
		}
	}
	if t < c.now {
		t = c.now
	}
	return t
}

// pick chooses the next request: mitigation activations, then demand
// reads (or writes while draining), then metadata, then opportunistic
// writes.
func (c *channel) pick(now int64) (*Request, *reqQueue) {
	if r := c.mitigQ.oldestReady(); r != nil {
		return r, &c.mitigQ
	}
	wlen := c.writeQ.len()
	if wlen >= c.cfg.DrainHi {
		if !c.draining {
			c.stats.DrainEnters++
		}
		c.draining = true
	} else if wlen <= c.cfg.DrainLo {
		if c.draining {
			c.stats.DrainExits++
		}
		c.draining = false
	}
	if c.draining {
		if r := c.frfcfs(&c.writeQ, now); r != nil {
			return r, &c.writeQ
		}
	}
	if c.metaQ.len() > metaPressure {
		if r := c.frfcfs(&c.metaQ, now); r != nil {
			return r, &c.metaQ
		}
	}
	if r := c.frfcfs(&c.readQ, now); r != nil {
		return r, &c.readQ
	}
	if r := c.frfcfs(&c.metaQ, now); r != nil {
		return r, &c.metaQ
	}
	if r := c.frfcfs(&c.writeQ, now); r != nil {
		return r, &c.writeQ
	}
	return nil, nil
}

// frfcfs implements first-ready FCFS over the bank index: among
// arrived requests, prefer the one whose data can start earliest (row
// hits win over conflicts), breaking ties by submission order; a
// request older than starvationAge is served first regardless, oldest
// submission first. Only one candidate per bank can win — the cached
// oldest row-hit, else the bucket front — so the scan is over banks,
// not requests.
func (c *channel) frfcfs(q *reqQueue, now int64) *Request {
	if q.readyN == 0 {
		return nil
	}
	if r := q.starvingPick(now); r != nil {
		return r
	}
	tm := &c.cfg.Timing
	penalty := tm.TRP + tm.TRCD
	var best *Request
	var bestEst int64
	for b := range q.buckets {
		bk := &q.buckets[b]
		if bk.live == 0 {
			continue
		}
		bank := &c.banks[b]
		est := bank.readyAt
		if est < now {
			est = now
		}
		cand := bk.bestHitFor(bank.openRow)
		if cand == nil {
			cand = bk.front()
			est += penalty
		}
		if best == nil || est < bestEst || (est == bestEst && cand.seq < best.seq) {
			best, bestEst = cand, est
		}
	}
	return best
}

func (c *channel) fawReady(rank int) int64 {
	return c.faw[rank][c.fawIdx[rank]] + c.cfg.Timing.TFAW
}

func (c *channel) fawPush(rank int, t int64) {
	c.faw[rank][c.fawIdx[rank]] = t
	c.fawIdx[rank] = (c.fawIdx[rank] + 1) % 4
}

// service executes one request, updating bank, bus and statistics, and
// invoking the activation hook and completion callback.
func (c *channel) service(r *Request, now int64) {
	tm := &c.cfg.Timing
	bi := c.bankIdx(r)
	b := &c.banks[bi]
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var activatedAt int64 = -1
	var finish int64

	if r.Kind == MitigAct {
		actAt := start
		if b.openRow >= 0 {
			if b.wrRecover > actAt {
				actAt = b.wrRecover
			}
			actAt += tm.TRP
			c.openBanks--
		}
		if t := b.lastAct + tm.TRC; t > actAt {
			actAt = t
		}
		if t := c.fawReady(r.loc.Rank); t > actAt {
			actAt = t
		}
		b.lastAct = actAt
		if b.openRow >= 0 {
			b.openRow = -1
			c.rowChanged(bi)
		}
		b.readyAt = actAt + tm.TRC
		c.fawPush(r.loc.Rank, actAt)
		c.stats.MitigActs++
		c.stats.Activates++
		activatedAt = actAt
		finish = actAt + tm.TRC
	} else {
		isWrite := r.Kind == WriteReq || r.Kind == MetaWrite
		var casAt int64
		if b.openRow == r.loc.Row {
			c.stats.RowHits++
			casAt = start
		} else {
			actAt := start
			if b.openRow >= 0 {
				// Precharge first: it must wait out any pending write
				// recovery on this bank.
				if b.wrRecover > actAt {
					actAt = b.wrRecover
				}
				actAt += tm.TRP
			} else {
				c.openBanks++
			}
			if t := b.lastAct + tm.TRC; t > actAt {
				actAt = t
			}
			if t := c.fawReady(r.loc.Rank); t > actAt {
				actAt = t
			}
			b.lastAct = actAt
			b.openRow = r.loc.Row
			c.rowChanged(bi)
			c.fawPush(r.loc.Rank, actAt)
			c.stats.Activates++
			activatedAt = actAt
			casAt = actAt + tm.TRCD
		}
		if !isWrite {
			// Write-to-read turnaround: a read CAS must trail the last
			// write burst by tWTR (long same-bank, short otherwise).
			wtr := tm.TWTRS
			if bi == c.lastWriteBank {
				wtr = tm.TWTR
			}
			if t := c.lastWriteEnd + wtr; t > casAt {
				casAt = t
			}
		}
		dataAt := casAt + tm.TCAS
		if c.busFreeAt > dataAt {
			dataAt = c.busFreeAt
		}
		c.busFreeAt = dataAt + tm.TBURST
		b.readyAt = dataAt + tm.TBURST - tm.TCAS
		if isWrite {
			// Write recovery: the bank cannot precharge (and so cannot
			// open a new row) until tWR after the write burst leaves
			// the bus. Row-hit CAS traffic is not held up.
			b.wrRecover = dataAt + tm.TBURST + tm.TWR
			c.lastWriteEnd = dataAt + tm.TBURST
			c.lastWriteBank = bi
		}
		finish = dataAt + tm.TBURST

		switch r.Kind {
		case ReadReq:
			finish += c.cfg.StaticLatency
			c.stats.Reads++
			c.stats.ReadLatSum += finish - r.Arrive
		case WriteReq:
			c.stats.Writes++
		case MetaRead:
			c.stats.MetaReads++
		case MetaWrite:
			c.stats.MetaWrites++
		}
	}

	if finish > c.stats.BusyUntil {
		c.stats.BusyUntil = finish
	}
	// Side effects are buffered, not invoked: the epoch barrier replays
	// them (completion before activation hook, as the old synchronous
	// order had it). Pooled requests recycle when their finish event
	// drains, so the request pointer stays valid for the callback.
	if r.OnFinish != nil || r.pooled {
		c.events = append(c.events, chanEvent{dec: now, t: finish, kind: evFinish, r: r})
	}
	if activatedAt >= 0 && c.cfg.OnACT != nil {
		c.events = append(c.events, chanEvent{
			dec: now, t: activatedAt, kind: evAct,
			row: c.cfg.Mem.GlobalRow(r.loc), rkind: r.Kind,
		})
	}
}
