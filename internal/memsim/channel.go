package memsim

import "repro/internal/obsv"

// bank is the per-bank timing state.
type bank struct {
	openRow int   // -1 when precharged
	readyAt int64 // earliest start of the next column/precharge activity
	lastAct int64 // last activation time (tRC spacing)
}

// channel is one memory controller: queues, banks, bus and refresh.
type channel struct {
	cfg *Config
	id  int

	banks   []bank
	faw     [][4]int64 // per rank: last four ACT times
	fawIdx  []int
	nextRef []int64 // per rank: next scheduled refresh

	busFreeAt int64

	mitigQ []*Request
	readQ  []*Request
	metaQ  []*Request
	writeQ []*Request

	draining   bool
	now        int64
	nextAt     int64
	dispatchAt int64 // earliest next scheduling decision (pacing)
	seq        int64
	openBanks  int64 // banks with an open row (occupancy sampling)

	stats Stats
}

const (
	// starvationAge forces FCFS for a request stuck this long.
	starvationAge int64 = 4000
	// cmdGap spaces non-data commands (mitigation ACTs).
	cmdGap int64 = 4
	// metaPressure is the tracker's miss-buffer depth: when more
	// metadata transfers than this are outstanding, they take priority
	// over demand reads, modeling the pipeline stall a real controller
	// takes when its tracker buffer fills. Without this bound a
	// saturating tracker (CRA under a hot workload) would defer its
	// counter updates forever.
	metaPressure = 32
)

func newChannel(cfg *Config, id int) *channel {
	nBanks := cfg.Mem.RanksPerChannel * cfg.Mem.BanksPerRank
	c := &channel{
		cfg:     cfg,
		id:      id,
		banks:   make([]bank, nBanks),
		faw:     make([][4]int64, cfg.Mem.RanksPerChannel),
		fawIdx:  make([]int, cfg.Mem.RanksPerChannel),
		nextRef: make([]int64, cfg.Mem.RanksPerChannel),
		nextAt:  Infinity,
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].lastAct = -Infinity
	}
	// Queue-depth buckets cover the default capacities; deeper custom
	// queues land in the overflow bucket. Bounds are fixed so that
	// per-channel histograms merge in Memory.Stats.
	c.stats.ReadQDepth = obsv.NewHist(obsv.PowersOfTwo(64)...)
	c.stats.WriteQDepth = obsv.NewHist(obsv.PowersOfTwo(128)...)
	c.stats.MetaQDepth = obsv.NewHist(obsv.PowersOfTwo(64)...)
	c.stats.OpenBanks = obsv.NewHist(obsv.PowersOfTwo(32)...)
	for r := range c.faw {
		for j := range c.faw[r] {
			c.faw[r][j] = -Infinity
		}
		// Stagger refresh start per rank and channel a little so the
		// whole system does not refresh in lockstep.
		c.nextRef[r] = cfg.Timing.TREFI + int64(id*997+r*511)
	}
	return c
}

func (c *channel) bankIdx(r *Request) int {
	return r.loc.Rank*c.cfg.Mem.BanksPerRank + r.loc.Bank
}

func (c *channel) submit(r *Request) bool {
	switch r.Kind {
	case ReadReq:
		if len(c.readQ) >= c.cfg.ReadQCap {
			c.stats.ReadQFull++
			return false
		}
		c.readQ = append(c.readQ, r)
	case WriteReq:
		if len(c.writeQ) >= c.cfg.WriteQCap {
			c.stats.WriteQFull++
			return false
		}
		c.writeQ = append(c.writeQ, r)
	case MetaRead, MetaWrite:
		c.metaQ = append(c.metaQ, r) // internal traffic: never refused
	case MitigAct:
		c.mitigQ = append(c.mitigQ, r)
	}
	r.seq = c.seq
	c.seq++
	at := r.Arrive
	if at < c.dispatchAt {
		at = c.dispatchAt
	}
	if at < c.now {
		at = c.now
	}
	if at < c.nextAt {
		c.nextAt = at
	}
	return true
}

func (c *channel) idle() bool {
	return len(c.mitigQ) == 0 && len(c.readQ) == 0 && len(c.metaQ) == 0 && len(c.writeQ) == 0
}

// step processes one scheduling decision at c.nextAt.
func (c *channel) step() {
	now := c.nextAt
	c.now = now
	c.applyRefreshes(now)
	c.stats.ReadQDepth.Observe(int64(len(c.readQ)))
	c.stats.WriteQDepth.Observe(int64(len(c.writeQ)))
	c.stats.MetaQDepth.Observe(int64(len(c.metaQ)))
	c.stats.OpenBanks.Observe(c.openBanks)

	r, from := c.pick(now)
	if r == nil {
		c.nextAt = c.earliestArrival()
		if c.nextAt < c.dispatchAt {
			c.nextAt = c.dispatchAt
		}
		return
	}
	c.remove(from, r)
	c.service(r, now)
	// Pace the next scheduling decision: command bandwidth for
	// bank-only activations; for data requests, stay a bounded
	// lookahead ahead of the data bus so queues hold requests the bus
	// cannot yet serve (realistic occupancy and backpressure).
	c.dispatchAt = now + cmdGap
	if r.Kind != MitigAct {
		lookahead := c.cfg.Timing.TRP + c.cfg.Timing.TRCD + c.cfg.Timing.TCAS
		if t := c.busFreeAt - lookahead; t > c.dispatchAt {
			c.dispatchAt = t
		}
	}
	c.nextAt = c.dispatchAt
}

// applyRefreshes issues every rank refresh scheduled at or before now.
// The refresh occupies all banks of the rank for tRFC starting at its
// scheduled time, so refreshes caught up after an idle gap do not
// stack.
func (c *channel) applyRefreshes(now int64) {
	for rank := range c.nextRef {
		for c.nextRef[rank] <= now {
			start := c.nextRef[rank]
			lo := rank * c.cfg.Mem.BanksPerRank
			for b := lo; b < lo+c.cfg.Mem.BanksPerRank; b++ {
				bk := &c.banks[b]
				s := start
				if bk.readyAt > s {
					s = bk.readyAt
				}
				bk.readyAt = s + c.cfg.Timing.TRFC
				if bk.openRow >= 0 {
					c.openBanks--
				}
				bk.openRow = -1
			}
			c.stats.Refreshes++
			c.cfg.Trace.Emit(obsv.Event{Cycle: start, Kind: obsv.EvRefresh, Row: uint32(c.id), Aux: int64(rank)})
			c.nextRef[rank] += c.cfg.Timing.TREFI
		}
	}
}

func (c *channel) earliestArrival() int64 {
	t := Infinity
	for _, q := range [][]*Request{c.mitigQ, c.readQ, c.metaQ, c.writeQ} {
		for _, r := range q {
			if r.Arrive < t {
				t = r.Arrive
			}
		}
	}
	if t < c.now {
		t = c.now
	}
	return t
}

// pick chooses the next request: mitigation activations, then demand
// reads (or writes while draining), then metadata, then opportunistic
// writes.
func (c *channel) pick(now int64) (*Request, *[]*Request) {
	if r := oldestArrived(c.mitigQ, now); r != nil {
		return r, &c.mitigQ
	}
	if len(c.writeQ) >= c.cfg.DrainHi {
		if !c.draining {
			c.stats.DrainEnters++
		}
		c.draining = true
	} else if len(c.writeQ) <= c.cfg.DrainLo {
		if c.draining {
			c.stats.DrainExits++
		}
		c.draining = false
	}
	if c.draining {
		if r := c.frfcfs(c.writeQ, now); r != nil {
			return r, &c.writeQ
		}
	}
	if len(c.metaQ) > metaPressure {
		if r := c.frfcfs(c.metaQ, now); r != nil {
			return r, &c.metaQ
		}
	}
	if r := c.frfcfs(c.readQ, now); r != nil {
		return r, &c.readQ
	}
	if r := c.frfcfs(c.metaQ, now); r != nil {
		return r, &c.metaQ
	}
	if r := c.frfcfs(c.writeQ, now); r != nil {
		return r, &c.writeQ
	}
	return nil, nil
}

func oldestArrived(q []*Request, now int64) *Request {
	var best *Request
	for _, r := range q {
		if r.Arrive <= now && (best == nil || r.seq < best.seq) {
			best = r
		}
	}
	return best
}

// frfcfs implements first-ready FCFS: among arrived requests, prefer
// the one whose data can start earliest (row hits win over conflicts),
// breaking ties by age; a request older than starvationAge is served
// first regardless.
func (c *channel) frfcfs(q []*Request, now int64) *Request {
	var best *Request
	var bestEst int64
	for _, r := range q {
		if r.Arrive > now {
			continue
		}
		if now-r.Arrive > starvationAge {
			return r // queue order makes this the oldest starving one
		}
		b := &c.banks[c.bankIdx(r)]
		est := b.readyAt
		if est < now {
			est = now
		}
		if b.openRow != r.loc.Row {
			est += c.cfg.Timing.TRP + c.cfg.Timing.TRCD
		}
		if best == nil || est < bestEst || (est == bestEst && r.seq < best.seq) {
			best, bestEst = r, est
		}
	}
	return best
}

func (c *channel) remove(q *[]*Request, r *Request) {
	for i, x := range *q {
		if x == r {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
	panic("memsim: request not in its queue")
}

func (c *channel) fawReady(rank int) int64 {
	return c.faw[rank][c.fawIdx[rank]] + c.cfg.Timing.TFAW
}

func (c *channel) fawPush(rank int, t int64) {
	c.faw[rank][c.fawIdx[rank]] = t
	c.fawIdx[rank] = (c.fawIdx[rank] + 1) % 4
}

// service executes one request, updating bank, bus and statistics, and
// invoking the activation hook and completion callback.
func (c *channel) service(r *Request, now int64) {
	tm := &c.cfg.Timing
	b := &c.banks[c.bankIdx(r)]
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var activatedAt int64 = -1
	var finish int64

	if r.Kind == MitigAct {
		actAt := start
		if b.openRow >= 0 {
			actAt += tm.TRP
			c.openBanks--
		}
		if t := b.lastAct + tm.TRC; t > actAt {
			actAt = t
		}
		if t := c.fawReady(r.loc.Rank); t > actAt {
			actAt = t
		}
		b.lastAct = actAt
		b.openRow = -1
		b.readyAt = actAt + tm.TRC
		c.fawPush(r.loc.Rank, actAt)
		c.stats.MitigActs++
		c.stats.Activates++
		activatedAt = actAt
		finish = actAt + tm.TRC
	} else {
		var casAt int64
		if b.openRow == r.loc.Row {
			c.stats.RowHits++
			casAt = start
		} else {
			actAt := start
			if b.openRow >= 0 {
				actAt += tm.TRP
			} else {
				c.openBanks++
			}
			if t := b.lastAct + tm.TRC; t > actAt {
				actAt = t
			}
			if t := c.fawReady(r.loc.Rank); t > actAt {
				actAt = t
			}
			b.lastAct = actAt
			b.openRow = r.loc.Row
			c.fawPush(r.loc.Rank, actAt)
			c.stats.Activates++
			activatedAt = actAt
			casAt = actAt + tm.TRCD
		}
		dataAt := casAt + tm.TCAS
		if c.busFreeAt > dataAt {
			dataAt = c.busFreeAt
		}
		c.busFreeAt = dataAt + tm.TBURST
		b.readyAt = dataAt + tm.TBURST - tm.TCAS
		finish = dataAt + tm.TBURST

		switch r.Kind {
		case ReadReq:
			finish += c.cfg.StaticLatency
			c.stats.Reads++
			c.stats.ReadLatSum += finish - r.Arrive
		case WriteReq:
			c.stats.Writes++
		case MetaRead:
			c.stats.MetaReads++
		case MetaWrite:
			c.stats.MetaWrites++
		}
	}

	if finish > c.stats.BusyUntil {
		c.stats.BusyUntil = finish
	}
	if r.OnFinish != nil {
		r.OnFinish(finish)
	}
	// The hook runs last: it may submit new requests to this channel.
	if activatedAt >= 0 && c.cfg.OnACT != nil {
		c.cfg.OnACT(c.cfg.Mem.GlobalRow(r.loc), r.Kind, activatedAt)
	}
}
