package memsim

// shared is per-Memory state the channels use in common: the request
// free list and the global submission counter. seq is global (not per
// channel) so a recycled request can never collide with a stale heap
// entry's stamp on another channel. No locking is needed even in
// parallel epochs: nextSeq runs only from submit and release only from
// the epoch drain, both of which stay on the caller's goroutine while
// the channel workers are quiescent (see epoch.go).
type shared struct {
	seq  int64
	free []*Request
}

func (sh *shared) nextSeq() int64 {
	sh.seq++
	return sh.seq
}

// get returns a zeroed pooled request.
func (sh *shared) get() *Request {
	if n := len(sh.free); n > 0 {
		r := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		*r = Request{pooled: true}
		return r
	}
	return &Request{pooled: true}
}

// release returns a serviced pooled request to the free list. The
// negative seq keeps any stale heap entries pointing at it dead.
func (sh *shared) release(r *Request) {
	*r = Request{pooled: true, seq: -1}
	sh.free = append(sh.free, r)
}

// NewRequest returns a Request from the memory system's pool. Pooled
// requests are recycled automatically once serviced — when their
// completion event drains at the epoch barrier (or at the end of Step),
// after OnFinish returns — which keeps steady-state stepping
// allocation-free; do not retain them afterwards. Requests allocated
// directly with &Request{} keep working and are simply never recycled.
//
// Ownership: a pooled request belongs to the caller until Submit
// accepts it. If Submit reports false (queue full), the caller still
// owns the request and may retry it later.
func (m *Memory) NewRequest() *Request {
	return m.sh.get()
}
