package memsim

import (
	"fmt"

	"repro/internal/dram"
)

// Kind classifies a memory request.
type Kind uint8

// Request kinds, in scheduling-priority order (after refresh):
// mitigation activations first, then demand reads, then metadata
// transfers, then writes (drained in batches).
const (
	MitigAct  Kind = iota // victim-refresh activation: bank-only, no data
	ReadReq               // demand read (LLC miss)
	MetaRead              // tracker metadata line read
	MetaWrite             // tracker metadata line write
	WriteReq              // demand write (LLC writeback)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case MitigAct:
		return "mitigate"
	case ReadReq:
		return "read"
	case MetaRead:
		return "meta-read"
	case MetaWrite:
		return "meta-write"
	case WriteReq:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one memory-controller transaction.
type Request struct {
	Line   uint64
	Kind   Kind
	Arrive int64
	// OnFinish, if non-nil, is called once with the completion time
	// (for reads: when data is back at the core).
	OnFinish func(finish int64)

	loc dram.Loc
	seq int64
}

// Config parameterizes the memory system.
type Config struct {
	Mem    dram.Config
	Timing Timing

	// Queue capacities per channel.
	ReadQCap  int
	WriteQCap int

	// Write-drain hysteresis (fractions of WriteQCap are conventional;
	// these are absolute counts).
	DrainHi int
	DrainLo int

	// StaticLatency is the constant core-to-controller-and-back delay
	// added to read completions (interconnect plus LLC lookup).
	StaticLatency int64

	// OnACT, if non-nil, is invoked for every row activation the
	// controller performs, with the global row and the activation
	// time. It runs synchronously during Step; it may submit new
	// requests (metadata traffic, victim refreshes).
	OnACT func(row uint32, kind Kind, now int64)
}

// DefaultConfig returns the baseline controller configuration.
func DefaultConfig(mem dram.Config) Config {
	return Config{
		Mem:           mem,
		Timing:        DDR4(),
		ReadQCap:      64,
		WriteQCap:     96,
		DrainHi:       64,
		DrainLo:       24,
		StaticLatency: 60, // ~19 ns LLC + interconnect
	}
}

// Stats aggregates controller activity.
type Stats struct {
	Reads      int64
	Writes     int64
	MetaReads  int64
	MetaWrites int64
	MitigActs  int64
	Activates  int64 // row activations (all causes)
	RowHits    int64 // CAS without a new activation
	Refreshes  int64 // rank auto-refresh commands
	ReadLatSum int64 // sum of read latencies (queue+service)
	BusyUntil  int64 // latest completion seen
}

// AvgReadLatency returns the mean read latency in cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatSum) / float64(s.Reads)
}

// Memory is the full memory system: one controller per channel.
type Memory struct {
	cfg      Config
	channels []*channel
}

// New creates a memory system. It panics on invalid configuration
// since configurations are static in this codebase.
func New(cfg Config) *Memory {
	if err := cfg.Mem.Validate(); err != nil {
		panic(err)
	}
	if cfg.ReadQCap <= 0 || cfg.WriteQCap <= 0 || cfg.DrainHi > cfg.WriteQCap || cfg.DrainLo >= cfg.DrainHi {
		panic(fmt.Sprintf("memsim: bad queue config %+v", cfg))
	}
	m := &Memory{cfg: cfg}
	for c := 0; c < cfg.Mem.Channels; c++ {
		m.channels = append(m.channels, newChannel(&m.cfg, c))
	}
	return m
}

// Submit routes a request to its channel. It reports false when the
// relevant queue is full; the caller must retry later (NextTime will
// advance as the controller drains).
func (m *Memory) Submit(r *Request) bool {
	r.loc = m.cfg.Mem.Decode(r.Line)
	return m.channels[r.loc.Channel].submit(r)
}

// NextTime returns the earliest time any channel can act, or Infinity
// when all are idle.
func (m *Memory) NextTime() int64 {
	t := Infinity
	for _, c := range m.channels {
		if c.nextAt < t {
			t = c.nextAt
		}
	}
	return t
}

// Step advances the channel with the earliest event. The caller must
// only call it when NextTime() < Infinity.
func (m *Memory) Step() {
	best := m.channels[0]
	for _, c := range m.channels[1:] {
		if c.nextAt < best.nextAt {
			best = c
		}
	}
	best.step()
}

// Idle reports whether every queue in every channel is empty.
func (m *Memory) Idle() bool {
	for _, c := range m.channels {
		if !c.idle() {
			return false
		}
	}
	return true
}

// Stats sums the per-channel statistics.
func (m *Memory) Stats() Stats {
	var s Stats
	for _, c := range m.channels {
		s.Reads += c.stats.Reads
		s.Writes += c.stats.Writes
		s.MetaReads += c.stats.MetaReads
		s.MetaWrites += c.stats.MetaWrites
		s.MitigActs += c.stats.MitigActs
		s.Activates += c.stats.Activates
		s.RowHits += c.stats.RowHits
		s.Refreshes += c.stats.Refreshes
		s.ReadLatSum += c.stats.ReadLatSum
		if c.stats.BusyUntil > s.BusyUntil {
			s.BusyUntil = c.stats.BusyUntil
		}
	}
	return s
}

// QueuePressure returns the fraction of read-queue capacity in use on
// the fullest channel (for tests and debugging).
func (m *Memory) QueuePressure() float64 {
	max := 0
	for _, c := range m.channels {
		if n := len(c.readQ); n > max {
			max = n
		}
	}
	return float64(max) / float64(m.cfg.ReadQCap)
}
