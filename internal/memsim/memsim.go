// Package memsim is an event-driven DDR4 memory-system simulator in
// the spirit of USIMM (the simulator the paper evaluates with). It
// models, per channel: FR-FCFS scheduling with read priority and
// write-drain hysteresis, per-bank row-buffer and timing state
// (tRCD/tRP/tCAS/tRC/tRFC/tFAW), a shared data bus, periodic rank
// refresh, and the two request classes row-hammer tracking adds —
// victim-refresh activations (bank-only, high priority) and metadata
// line transfers (low priority).
//
// Time is measured in core cycles at 3.2 GHz (0.3125 ns), which makes
// the paper's Table 2 DDR4-3200 parameters exact integers: tRC = 45 ns
// = 144 cycles, a 64-byte burst = 2.5 ns = 8 cycles, and a 64 ms
// refresh window = 204.8 M cycles.
//
// Every controller maintains the observability counters of
// internal/obsv: queue-depth and open-bank histograms sampled at each
// scheduling decision, write-drain mode transitions, and (optionally)
// refresh events into a trace ring. Stats implements obsv.Source so a
// finished run registers as the "memsim.*" metric family.
package memsim

import (
	"fmt"
	"runtime"

	"repro/internal/dram"
	"repro/internal/obsv"
)

// Kind classifies a memory request.
type Kind uint8

// Request kinds, in scheduling-priority order (after refresh):
// mitigation activations first, then demand reads, then metadata
// reads, then writes. Writes — demand and metadata alike — coalesce in
// the write queue and drain in batches, amortizing the write-to-read
// bus turnaround (tWTR) instead of paying it per interleaved write.
const (
	MitigAct  Kind = iota // victim-refresh activation: bank-only, no data
	ReadReq               // demand read (LLC miss)
	MetaRead              // tracker metadata line read
	MetaWrite             // tracker metadata line write
	WriteReq              // demand write (LLC writeback)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case MitigAct:
		return "mitigate"
	case ReadReq:
		return "read"
	case MetaRead:
		return "meta-read"
	case MetaWrite:
		return "meta-write"
	case WriteReq:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one memory-controller transaction. Obtain requests from
// Memory.NewRequest to run allocation-free (they are recycled after
// service); requests built directly with &Request{} also work.
type Request struct {
	Line   uint64
	Kind   Kind
	Arrive int64
	// User is opaque caller context, carried through to OnFinish
	// (e.g. the instruction index a core tags its loads with).
	User int64
	// OnFinish, if non-nil, is called once with the request and its
	// completion time (for reads: when data is back at the core). The
	// request is only valid for the duration of the call when it came
	// from the pool; read User inside the callback, don't retain r.
	OnFinish func(r *Request, finish int64)

	loc    dram.Loc
	seq    int64
	qpos   int32 // index in its bank bucket while queued
	pooled bool  // recycle into the free list after service
}

// Config parameterizes the memory system.
type Config struct {
	Mem    dram.Config
	Timing Timing

	// Queue capacities per channel.
	ReadQCap  int
	WriteQCap int

	// Write-drain hysteresis (fractions of WriteQCap are conventional;
	// these are absolute counts).
	DrainHi int
	DrainLo int

	// StaticLatency is the constant core-to-controller-and-back delay
	// added to read completions (interconnect plus LLC lookup).
	StaticLatency int64

	// OnACT, if non-nil, is invoked for every row activation the
	// controller performs, with the global row and the activation
	// time. It runs synchronously during Step; it may submit new
	// requests (metadata traffic, victim refreshes).
	OnACT func(row uint32, kind Kind, now int64)

	// Trace, when non-nil, receives refresh events (the other event
	// kinds are emitted by the layers that own them). A nil tracer
	// costs one branch per refresh.
	Trace *obsv.Tracer

	// Parallel lets RunEpoch fan the per-channel controllers out to
	// worker goroutines (see epoch.go). Execution strategy only:
	// results are bitwise-identical to serial epochs. Ignored when
	// GOMAXPROCS is 1 at New. Callers that set it own a Close call.
	Parallel bool
}

// DefaultConfig returns the baseline controller configuration.
func DefaultConfig(mem dram.Config) Config {
	return Config{
		Mem:           mem,
		Timing:        DDR4(),
		ReadQCap:      64,
		WriteQCap:     96,
		DrainHi:       64,
		DrainLo:       24,
		StaticLatency: 60, // ~19 ns LLC + interconnect
	}
}

// Stats aggregates controller activity.
type Stats struct {
	Reads      int64
	Writes     int64
	MetaReads  int64
	MetaWrites int64
	MitigActs  int64
	Activates  int64 // row activations (all causes)
	RowHits    int64 // CAS without a new activation
	Refreshes  int64 // rank auto-refresh commands
	ReadLatSum int64 // sum of read latencies (queue+service)
	BusyUntil  int64 // latest completion seen

	// DrainEnters / DrainExits count write-drain mode transitions
	// (the DrainHi/DrainLo hysteresis flipping on and off).
	DrainEnters int64
	DrainExits  int64
	// ReadQFull / WriteQFull count submissions refused because the
	// queue was at capacity (backpressure onto the cores).
	ReadQFull  int64
	WriteQFull int64

	// Epochs counts RunEpoch barriers. Zero for callers that drive the
	// system one event at a time (Step/StepNext). The count depends
	// only on the event timeline, never on the execution strategy, so
	// parallel and serial runs report the same value.
	Epochs int64

	// ReadQDepth / WriteQDepth / MetaQDepth are FR-FCFS queue depths
	// and OpenBanks the count of banks with an open row, each sampled
	// at every scheduling decision.
	ReadQDepth  obsv.Hist
	WriteQDepth obsv.Hist
	MetaQDepth  obsv.Hist
	OpenBanks   obsv.Hist
}

// AvgReadLatency returns the mean read latency in cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatSum) / float64(s.Reads)
}

// CollectInto implements obsv.Source, registering the "memsim.*"
// metric family (documented in docs/METRICS.md).
func (s Stats) CollectInto(r *obsv.Registry) {
	r.Count("memsim.reads", s.Reads)
	r.Count("memsim.writes", s.Writes)
	r.Count("memsim.meta_reads", s.MetaReads)
	r.Count("memsim.meta_writes", s.MetaWrites)
	r.Count("memsim.mitig_acts", s.MitigActs)
	r.Count("memsim.activates", s.Activates)
	r.Count("memsim.row_hits", s.RowHits)
	r.Count("memsim.refreshes", s.Refreshes)
	r.Count("memsim.epochs", s.Epochs)
	r.Count("memsim.drain_enters", s.DrainEnters)
	r.Count("memsim.drain_exits", s.DrainExits)
	r.Count("memsim.readq_full", s.ReadQFull)
	r.Count("memsim.writeq_full", s.WriteQFull)
	r.Gauge("memsim.avg_read_latency", s.AvgReadLatency())
	r.Histogram("memsim.readq_depth", s.ReadQDepth)
	r.Histogram("memsim.writeq_depth", s.WriteQDepth)
	r.Histogram("memsim.metaq_depth", s.MetaQDepth)
	r.Histogram("memsim.open_banks", s.OpenBanks)
}

// Memory is the full memory system: one controller per channel. The
// caller-facing API is single-goroutine; with Config.Parallel set,
// RunEpoch internally fans channels out to worker goroutines but every
// callback and every method still runs on the caller's goroutine.
type Memory struct {
	cfg      Config
	sh       shared
	channels []*channel

	epochs    int64
	parEpochs int64 // epochs that fanned out to workers (not in Stats:
	// it depends on the execution strategy, which results must not)
	parallel bool
	runner   *parRunner
}

// New creates a memory system. It panics on invalid configuration
// since configurations are static in this codebase.
func New(cfg Config) *Memory {
	if err := cfg.Mem.Validate(); err != nil {
		panic(err)
	}
	if cfg.ReadQCap <= 0 || cfg.WriteQCap <= 0 || cfg.DrainHi > cfg.WriteQCap || cfg.DrainLo >= cfg.DrainHi {
		panic(fmt.Sprintf("memsim: bad queue config %+v", cfg))
	}
	m := &Memory{cfg: cfg, parallel: cfg.Parallel && runtime.GOMAXPROCS(0) > 1}
	for c := 0; c < cfg.Mem.Channels; c++ {
		m.channels = append(m.channels, newChannel(&m.cfg, &m.sh, c))
	}
	return m
}

// Submit routes a request to its channel. It reports false when the
// relevant queue is full; the caller must retry later (NextTime will
// advance as the controller drains).
func (m *Memory) Submit(r *Request) bool {
	r.loc = m.cfg.Mem.Decode(r.Line)
	return m.channels[r.loc.Channel].submit(r)
}

// NextTime returns the earliest time any channel can act, or Infinity
// when all are idle.
func (m *Memory) NextTime() int64 {
	t := Infinity
	for _, c := range m.channels {
		if c.nextAt < t {
			t = c.nextAt
		}
	}
	return t
}

// Step advances the channel with the earliest event and delivers its
// side effects before returning, preserving the synchronous per-event
// semantics the test harnesses drive (RunEpoch is the batched form).
// The caller must only call it when NextTime() < Infinity.
func (m *Memory) Step() {
	best := m.channels[0]
	for _, c := range m.channels[1:] {
		if c.nextAt < best.nextAt {
			best = c
		}
	}
	best.step()
	m.drain()
}

// StepNext fuses Step with the follow-up NextTime: it advances the
// earliest channel and returns the new earliest event time in a single
// scan (the runner-up from the pre-step scan, against the stepped
// channel's new time). Returns Infinity without stepping when every
// channel is idle. Serial drivers loop
//
//	for t := m.NextTime(); t < bound; t = m.StepNext() { ... }
//
// instead of paying two channel scans per event.
func (m *Memory) StepNext() int64 {
	best := m.channels[0]
	second := Infinity
	for _, c := range m.channels[1:] {
		if c.nextAt < best.nextAt {
			second = best.nextAt
			best = c
		} else if c.nextAt < second {
			second = c.nextAt
		}
	}
	if best.nextAt == Infinity {
		return Infinity
	}
	best.step()
	if m.drain() {
		// A callback may have submitted to any channel, undercutting
		// the cached runner-up; only this path pays a second scan.
		return m.NextTime()
	}
	next := best.nextAt
	if second < next {
		next = second
	}
	return next
}

// Idle reports whether every queue in every channel is empty.
func (m *Memory) Idle() bool {
	for _, c := range m.channels {
		if !c.idle() {
			return false
		}
	}
	return true
}

// Stats sums the per-channel statistics (histograms merge bucket-wise).
func (m *Memory) Stats() Stats {
	var s Stats
	s.Epochs = m.epochs
	for _, c := range m.channels {
		s.Reads += c.stats.Reads
		s.Writes += c.stats.Writes
		s.MetaReads += c.stats.MetaReads
		s.MetaWrites += c.stats.MetaWrites
		s.MitigActs += c.stats.MitigActs
		s.Activates += c.stats.Activates
		s.RowHits += c.stats.RowHits
		s.Refreshes += c.stats.Refreshes
		s.ReadLatSum += c.stats.ReadLatSum
		s.DrainEnters += c.stats.DrainEnters
		s.DrainExits += c.stats.DrainExits
		s.ReadQFull += c.stats.ReadQFull
		s.WriteQFull += c.stats.WriteQFull
		s.ReadQDepth.Merge(c.stats.ReadQDepth)
		s.WriteQDepth.Merge(c.stats.WriteQDepth)
		s.MetaQDepth.Merge(c.stats.MetaQDepth)
		s.OpenBanks.Merge(c.stats.OpenBanks)
		if c.stats.BusyUntil > s.BusyUntil {
			s.BusyUntil = c.stats.BusyUntil
		}
	}
	return s
}

// QueuePressure returns the fraction of read-queue capacity in use on
// the fullest channel (for tests and debugging).
func (m *Memory) QueuePressure() float64 {
	max := 0
	for _, c := range m.channels {
		if n := c.readQ.len(); n > max {
			max = n
		}
	}
	return float64(max) / float64(m.cfg.ReadQCap)
}
