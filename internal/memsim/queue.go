package memsim

// This file holds the incrementally maintained per-queue index that
// replaced the original scheduler's per-step linear scans. Each
// scheduling class (mitigation, read, metadata, write) keeps:
//
//   - future: a min-heap of not-yet-arrived requests keyed by Arrive,
//     so the channel's next-arrival time is the heap top instead of a
//     scan over every queued request;
//   - buckets: the arrived requests grouped per bank in submission
//     (seq) order, so FR-FCFS considers one candidate per bank — the
//     cached oldest row-hit, or the bucket front for a row conflict —
//     instead of estimating every request;
//   - aging/starving: two lazy-deleted heaps that surface the
//     oldest-submitted request past starvationAge exactly, without
//     depending on slice order.
//
// Requests are removed by tombstoning their bucket slot (Request.qpos
// is the slot index, kept stable until compaction), which replaces the
// old O(n) memmove removal. Heap entries carry the seq the request had
// when the entry was pushed; a served request has its seq reset to -1,
// so stale entries are detected and discarded when they surface.

import "sync/atomic"

// heapEnt is one entry of a lazily-deleted request heap. key is the
// ordering key (Arrive or seq); stamp is the request's seq at push
// time, compared against the live seq to detect served requests.
type heapEnt struct {
	r     *Request
	key   int64
	stamp int64
}

// entHeap is a binary min-heap by (key, stamp). The stamp tie-break
// makes pops deterministic and, for the future heap, promotes
// same-cycle arrivals in submission order — which keeps each bank
// bucket sorted by seq, an invariant FR-FCFS tie-breaking relies on.
// The heap is hand-rolled (rather than container/heap) so pushes and
// pops stay free of interface conversions and allocations on the
// scheduler hot path.
type entHeap []heapEnt

func entLess(a, b heapEnt) bool {
	return a.key < b.key || (a.key == b.key && a.stamp < b.stamp)
}

func (h *entHeap) push(e heapEnt) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entLess(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *entHeap) pop() heapEnt {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = heapEnt{} // release the request pointer
	*h = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && entLess(s[r], s[l]) {
			l = r
		}
		if !entLess(s[l], s[i]) {
			break
		}
		s[i], s[l] = s[l], s[i]
		i = l
	}
	return top
}

// bucket holds the arrived requests of one (queue, bank) pair in
// submission (seq) order. Serving a request nils its slot; front skips
// the dead prefix lazily and the slice compacts once it is mostly dead,
// so both the FIFO head and arbitrary middle removals are O(1)
// amortized. Inserts are appends except when arrival timestamps run
// backward (out-of-order submitters such as the throttle policy's
// future-dated rate limiting): the future heap promotes in Arrive
// order, so a late-submitted-but-early-arriving request can reach the
// bucket before an older one, and the older request is then bubbled
// into seq position — the ordering FR-FCFS and FCFS tie-breaks rely on.
type bucket struct {
	items []*Request
	head  int // first possibly-live index; items[:head] are all nil
	live  int

	// bestHit caches the oldest request targeting the bank's open row
	// (nil when cached as "no hit"). It is invalidated when the bank's
	// open row changes or the cached request is served.
	bestHit  *Request
	hitValid bool
}

func (b *bucket) push(r *Request, openRow int) {
	// Trim the dead suffix first so the append lands directly after
	// the last live request. Amortized O(1) — every trimmed slot was
	// appended exactly once — and it keeps the serve-newest-then-push
	// cycle from walking an ever-growing nil tail.
	for n := len(b.items); n > b.head && b.items[n-1] == nil; n-- {
		b.items = b.items[:n-1]
	}
	i := len(b.items)
	r.qpos = int32(i)
	b.items = append(b.items, r)
	b.live++
	// Bubble past any live request with a greater seq (and the dead
	// slots between), restoring seq order after an out-of-order
	// promotion. For monotonic traffic the loop breaks immediately on
	// the preceding live request.
	for i > b.head {
		p := b.items[i-1]
		if p != nil && p.seq < r.seq {
			break
		}
		b.items[i-1], b.items[i] = r, p
		if p != nil {
			p.qpos = int32(i)
		}
		r.qpos = int32(i - 1)
		i--
	}
	// Maintain the cached best hit: a new request upgrades a cached
	// "no hit", and an out-of-order one can be older than the cached
	// hit itself.
	if b.hitValid && r.loc.Row == openRow &&
		(b.bestHit == nil || r.seq < b.bestHit.seq) {
		b.bestHit = r
	}
}

func (b *bucket) remove(r *Request) {
	b.items[r.qpos] = nil
	b.live--
	if b.bestHit == r {
		b.invalidateHit()
	}
	if dead := len(b.items) - b.head - b.live; dead >= 32 && dead > 3*b.live {
		b.compact()
	}
}

func (b *bucket) invalidateHit() {
	b.bestHit = nil
	b.hitValid = false
}

// front returns the oldest live request, or nil for an empty bucket.
func (b *bucket) front() *Request {
	for b.head < len(b.items) && b.items[b.head] == nil {
		b.head++
	}
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
		return nil
	}
	return b.items[b.head]
}

// bestHitFor returns the oldest live request whose row matches
// openRow, caching the answer until the open row changes.
func (b *bucket) bestHitFor(openRow int) *Request {
	if !b.hitValid {
		b.bestHit = nil
		if openRow >= 0 {
			for i := b.head; i < len(b.items); i++ {
				if r := b.items[i]; r != nil && r.loc.Row == openRow {
					b.bestHit = r
					break
				}
			}
		}
		b.hitValid = true
	}
	return b.bestHit
}

// compact rewrites the live requests to the front of the slice,
// updating their qpos. Request pointers are stable, so cached bestHit
// entries survive.
func (b *bucket) compact() {
	w := 0
	for i := b.head; i < len(b.items); i++ {
		if r := b.items[i]; r != nil {
			b.items[w] = r
			r.qpos = int32(w)
			w++
		}
	}
	for i := w; i < len(b.items); i++ {
		b.items[i] = nil
	}
	b.items = b.items[:w]
	b.head = 0
}

// reqQueue is one scheduling class of a channel.
type reqQueue struct {
	future  entHeap  // Arrive > channel clock, min-heap by Arrive
	buckets []bucket // arrived requests, per bank
	readyN  int      // total live requests across buckets

	// starve enables the starvation index (FR-FCFS queues only; the
	// mitigation queue is served strictly oldest-first already).
	starve   bool
	aging    entHeap // arrived requests by Arrive, pending the age bound
	starving entHeap // requests past starvationAge, by seq
}

func (q *reqQueue) init(nBanks int, starve bool) {
	q.buckets = make([]bucket, nBanks)
	q.starve = starve
}

// len counts every queued request, arrived or not (queue-capacity and
// drain-hysteresis checks use the total, as the linear queues did).
func (q *reqQueue) len() int { return len(q.future) + q.readyN }

// add accepts a freshly submitted request. now is the channel clock:
// requests arriving in the past or present index as ready immediately.
func (q *reqQueue) add(r *Request, bank, openRow int, now int64) {
	if r.Arrive > now {
		q.future.push(heapEnt{r, r.Arrive, r.seq})
		return
	}
	q.insertReady(r, bank, openRow)
}

func (q *reqQueue) insertReady(r *Request, bank, openRow int) {
	q.buckets[bank].push(r, openRow)
	q.readyN++
	if q.starve {
		q.aging.push(heapEnt{r, r.Arrive, r.seq})
	}
}

// remove takes a picked request out of its bucket and stamps it
// served, which lazily deletes any aging/starving heap entries. The
// stamp is atomic: a pooled request recycles at the epoch barrier and
// may resubmit to a different channel while this channel's lazy heaps
// still hold the old pointer, so under parallel epochs the new owner's
// stamp races with the old owner's stale-entry checks. The value read
// does not matter for those checks — seqs are never reused, so a
// recycled request can never equal a stale entry's stamp — but the
// accesses must be atomic for the race to be benign.
func (q *reqQueue) remove(r *Request, bank int) {
	q.buckets[bank].remove(r)
	q.readyN--
	atomic.StoreInt64(&r.seq, -1)
}

// earliestFuture returns the arrival time of the next not-yet-arrived
// request, or Infinity.
func (q *reqQueue) earliestFuture() int64 {
	if len(q.future) == 0 {
		return Infinity
	}
	return q.future[0].key
}

// oldestReady returns the lowest-seq arrived request (the mitigation
// queue's FCFS order), or nil.
func (q *reqQueue) oldestReady() *Request {
	var best *Request
	for b := range q.buckets {
		bk := &q.buckets[b]
		if bk.live == 0 {
			continue
		}
		if r := bk.front(); best == nil || r.seq < best.seq {
			best = r
		}
	}
	return best
}

// starvingPick returns the lowest-seq arrived request whose age
// exceeds starvationAge, or nil. Requests migrate from the aging heap
// (keyed by Arrive) into the starving heap (keyed by seq) as the
// threshold passes them; served requests are discarded lazily by the
// stamp check.
func (q *reqQueue) starvingPick(now int64) *Request {
	th := now - starvationAge
	for len(q.aging) > 0 && q.aging[0].key < th {
		// Atomic loads mirror the atomic served-stamp in remove: a
		// stale entry's request may by now live on another channel.
		if e := q.aging.pop(); atomic.LoadInt64(&e.r.seq) == e.stamp {
			q.starving.push(heapEnt{e.r, e.stamp, e.stamp})
		}
	}
	for len(q.starving) > 0 {
		if e := q.starving[0]; atomic.LoadInt64(&e.r.seq) == e.stamp {
			return e.r
		}
		q.starving.pop()
	}
	return nil
}
