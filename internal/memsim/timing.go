package memsim

// Timing holds DRAM timing parameters in core cycles (3.2 GHz).
type Timing struct {
	TRCD   int64 // ACT to CAS
	TRP    int64 // PRE to ACT
	TCAS   int64 // CAS to first data
	TRC    int64 // ACT to ACT, same bank
	TRFC   int64 // refresh cycle time
	TREFI  int64 // refresh interval
	TBURST int64 // data bus occupancy per 64-byte transfer
	TFAW   int64 // four-activation window, per rank
	TWR    int64 // write recovery: last write data to precharge, same bank
	TWTR   int64 // write-to-read turnaround, same bank (tWTR_L)
	TWTRS  int64 // write-to-read turnaround, different bank (tWTR_S)
}

// DDR4 returns the paper's Table 2 parameters (14-14-14 ns, tRC 45 ns,
// tRFC 350 ns, tREFI 7.8 us) in 3.2 GHz core cycles.
func DDR4() Timing {
	return Timing{
		TRCD:   45,    // 14 ns
		TRP:    45,    // 14 ns
		TCAS:   45,    // 14 ns
		TRC:    144,   // 45 ns
		TRFC:   1120,  // 350 ns
		TREFI:  24960, // 7.8 us
		TBURST: 8,     // 2.5 ns
		TFAW:   96,    // 30 ns
		TWR:    48,    // 15 ns
		TWTR:   24,    // 7.5 ns (tWTR_L)
		TWTRS:  8,     // 2.5 ns (tWTR_S)
	}
}

// WindowCycles is the 64 ms refresh/tracking window in core cycles.
const WindowCycles int64 = 204_800_000

// Infinity is a time later than any event in a run.
const Infinity int64 = 1 << 62
