// Package memsim is an event-driven DDR4 memory-system simulator in
// the spirit of USIMM (the simulator the paper evaluates with). It
// models, per channel: FR-FCFS scheduling with read priority and
// write-drain hysteresis, per-bank row-buffer and timing state
// (tRCD/tRP/tCAS/tRC/tRFC/tFAW), a shared data bus, periodic rank
// refresh, and the two request classes row-hammer tracking adds —
// victim-refresh activations (bank-only, high priority) and metadata
// line transfers (low priority).
//
// Time is measured in core cycles at 3.2 GHz (0.3125 ns), which makes
// the paper's Table 2 DDR4-3200 parameters exact integers: tRC = 45 ns
// = 144 cycles, a 64-byte burst = 2.5 ns = 8 cycles, and a 64 ms
// refresh window = 204.8 M cycles.
package memsim

// Timing holds DRAM timing parameters in core cycles (3.2 GHz).
type Timing struct {
	TRCD   int64 // ACT to CAS
	TRP    int64 // PRE to ACT
	TCAS   int64 // CAS to first data
	TRC    int64 // ACT to ACT, same bank
	TRFC   int64 // refresh cycle time
	TREFI  int64 // refresh interval
	TBURST int64 // data bus occupancy per 64-byte transfer
	TFAW   int64 // four-activation window, per rank
}

// DDR4 returns the paper's Table 2 parameters (14-14-14 ns, tRC 45 ns,
// tRFC 350 ns, tREFI 7.8 us) in 3.2 GHz core cycles.
func DDR4() Timing {
	return Timing{
		TRCD:   45,    // 14 ns
		TRP:    45,    // 14 ns
		TCAS:   45,    // 14 ns
		TRC:    144,   // 45 ns
		TRFC:   1120,  // 350 ns
		TREFI:  24960, // 7.8 us
		TBURST: 8,     // 2.5 ns
		TFAW:   96,    // 30 ns
	}
}

// WindowCycles is the 64 ms refresh/tracking window in core cycles.
const WindowCycles int64 = 204_800_000

// Infinity is a time later than any event in a run.
const Infinity int64 = 1 << 62
