package memsim

// This file is the bulk-synchronous epoch engine. The per-channel
// controllers share no timing state (channels are independent DDR4
// controllers), so a Memory can advance every channel independently up
// to an epoch horizon and only then deliver the side effects — read
// completions, activation-hook calls, refresh trace events — in one
// deterministic merge. Within an epoch a channel therefore never
// invokes a callback; it appends to its private event buffer, and the
// barrier replays the union of all buffers in (decision cycle, channel,
// emission index) order, which reproduces exactly the callback order of
// stepping the channels one global event at a time (the earliest-next
// scan with its lowest-channel tie-break).
//
// The horizon the caller may use is bounded by Lookahead: every read
// completion produced by a scheduling decision at time t lands at
// t+Lookahead or later, so an epoch no wider than Lookahead past the
// earliest pending decision cannot run past a completion a core is
// blocked on — cores wake at the barrier with their exact completion
// times and simulated time never runs backwards for them. Activation
// hooks do run up to one epoch later than under per-event stepping
// (their submissions enter the queues at the barrier), which is the
// semantic difference between this engine and the old interleaved loop;
// it is identical in serial and parallel execution, so the two modes
// are bitwise-equal and only the engine generation (the sim cache-key
// version) records the shift.
//
// Parallel execution fans the per-channel loops out to persistent
// worker goroutines (one per channel past the first; the caller's
// goroutine runs channel 0). Workers are pure channel-steppers: they
// touch only their channel's state, never the shared request pool or
// any callback, so the fan-out needs no locks — a generation counter
// published with atomics hands out horizons and collects completions.
// Workers spin briefly between epochs and park on a channel when the
// master stays away (core-bound stretches), so an idle simulation does
// not burn a core per channel.

import (
	"runtime"
	"sync/atomic"

	"repro/internal/obsv"
)

// chanEvent is one buffered side effect of a channel decision. dec is
// the decision (step) time — the merge key — and t the payload time:
// the completion time for finish events, the activation time for hook
// events, the refresh start for trace events. Activation events carry
// the precomputed global row and request kind rather than the request,
// which may already be recycled by the time the hook replays.
type chanEvent struct {
	dec   int64
	t     int64
	r     *Request // evFinish only
	aux   int64    // evRefresh: rank
	row   uint32   // evAct: global row; evRefresh: channel id
	kind  uint8
	rkind Kind // evAct: activating request kind
}

const (
	evFinish uint8 = iota
	evAct
	evRefresh
)

// Lookahead returns the minimum delay between a scheduling decision
// and the earliest read completion it can produce (CAS latency, burst,
// and the static core-to-controller return). It is the widest epoch
// horizon past the earliest pending decision that still delivers every
// core wake-up exactly on time.
func (m *Memory) Lookahead() int64 {
	return m.cfg.Timing.TCAS + m.cfg.Timing.TBURST + m.cfg.StaticLatency
}

// RunEpoch advances every channel through all scheduling decisions
// strictly before horizon, then replays the buffered side effects in
// deterministic merge order and returns the new earliest event time.
// The caller must keep horizon within Lookahead of NextTime() (and at
// most the next tracking-window reset) for exact results; RunEpoch
// itself only requires horizon > NextTime() to make progress.
//
// With Config.Parallel set (and GOMAXPROCS > 1 at New), epochs with
// more than one active channel fan out to worker goroutines; results
// are bitwise-identical either way.
func (m *Memory) RunEpoch(horizon int64) int64 {
	m.epochs++
	run := false
	if m.parallel {
		active := 0
		for _, c := range m.channels {
			if c.nextAt < horizon {
				active++
			}
		}
		if active > 1 {
			m.runParallel(horizon)
			run = true
		}
	}
	if !run {
		for _, c := range m.channels {
			for c.nextAt < horizon {
				c.step()
			}
		}
	}
	m.drain()
	return m.NextTime()
}

// drain replays every buffered event in (decision cycle, channel,
// emission index) order. Replay runs on the caller's goroutine with all
// workers quiescent, so callbacks may freely submit new requests (to
// any channel) and release pooled requests. Buffers keep their capacity
// across epochs; the steady-state loop does not allocate. It reports
// whether any replayed callback could have submitted requests (a
// completion callback or the activation hook ran).
func (m *Memory) drain() bool {
	submitted := false
	for {
		var best *channel
		for _, c := range m.channels {
			if c.evHead < len(c.events) &&
				(best == nil || c.events[c.evHead].dec < best.events[best.evHead].dec) {
				best = c
			}
		}
		if best == nil {
			break
		}
		e := &best.events[best.evHead]
		best.evHead++
		switch e.kind {
		case evFinish:
			r := e.r
			e.r = nil // release the pointer; pooled requests recycle now
			if r.OnFinish != nil {
				r.OnFinish(r, e.t)
				submitted = true
			}
			if r.pooled {
				m.sh.release(r)
			}
		case evAct:
			m.cfg.OnACT(e.row, e.rkind, e.t)
			submitted = true
		case evRefresh:
			m.cfg.Trace.Emit(obsv.Event{Cycle: e.t, Kind: obsv.EvRefresh, Row: e.row, Aux: e.aux})
		}
	}
	for _, c := range m.channels {
		c.events = c.events[:0]
		c.evHead = 0
	}
	return submitted
}

// Close stops the parallel worker goroutines, if any were started. It
// is idempotent; the Memory remains usable afterwards in serial mode.
// Callers that enable Config.Parallel own a Close call (the sim run
// loop defers one).
func (m *Memory) Close() {
	if m.runner != nil {
		m.runner.stop()
		m.runner = nil
	}
	m.parallel = false
}

func (m *Memory) runParallel(horizon int64) {
	m.parEpochs++
	if m.runner == nil {
		m.runner = newParRunner(m.channels[1:])
	}
	m.runner.dispatch(horizon)
	c0 := m.channels[0]
	for c0.nextAt < horizon {
		c0.step()
	}
	m.runner.wait()
}

const stopGen = int64(-1)

// parWorker is the mailbox of one worker goroutine. The master writes
// horizon then seq to hand out an epoch; the worker writes done to
// report it. The pad keeps the two directions off one cache line.
type parWorker struct {
	c       *channel
	wake    chan struct{}
	seq     atomic.Int64
	horizon atomic.Int64
	_       [48]byte
	done    atomic.Int64
	parked  atomic.Int32
}

type parRunner struct {
	gen     int64
	workers []*parWorker
}

func newParRunner(chs []*channel) *parRunner {
	r := &parRunner{}
	for _, c := range chs {
		w := &parWorker{c: c, wake: make(chan struct{}, 1)}
		r.workers = append(r.workers, w)
		go w.loop()
	}
	return r
}

func (r *parRunner) dispatch(h int64) {
	r.gen++
	for _, w := range r.workers {
		w.horizon.Store(h)
		w.seq.Store(r.gen)
		if w.parked.Load() != 0 {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
}

func (r *parRunner) wait() {
	for _, w := range r.workers {
		for i := 0; w.done.Load() != r.gen; i++ {
			if i > 64 {
				runtime.Gosched()
			}
		}
	}
}

func (r *parRunner) stop() {
	for _, w := range r.workers {
		w.seq.Store(stopGen)
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	for _, w := range r.workers {
		for i := 0; w.done.Load() != stopGen; i++ {
			if i > 64 {
				runtime.Gosched()
			}
		}
	}
}

// spinBudget bounds how long a worker spins for the next epoch before
// parking. Epochs arrive back to back while the memory system is busy,
// so the common case is caught within a few hundred loads; the park
// path covers core-bound stretches and the end of the run.
const spinBudget = 4096

func (w *parWorker) loop() {
	g := int64(0)
	idle := 0
	for {
		s := w.seq.Load()
		if s == g {
			idle++
			if idle < spinBudget {
				if idle&63 == 0 {
					runtime.Gosched()
				}
				continue
			}
			// Park: publish parked, then re-check seq so a dispatch
			// racing the publish is never lost — the master reads
			// parked after storing seq, so one side always sees the
			// other. Stale wake tokens (the chan holds one) only cost
			// a spurious loop.
			w.parked.Store(1)
			if w.seq.Load() != g {
				w.parked.Store(0)
				idle = 0
				continue
			}
			<-w.wake
			w.parked.Store(0)
			idle = 0
			continue
		}
		idle = 0
		if s == stopGen {
			w.done.Store(stopGen)
			return
		}
		g = s
		h := w.horizon.Load()
		c := w.c
		for c.nextAt < h {
			c.step()
		}
		w.done.Store(g)
	}
}
