package memsim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/obsv"
)

// This file keeps the original linear-scan scheduler as a reference
// implementation and checks, over randomized request streams, that the
// indexed scheduler in channel.go makes the identical sequence of
// decisions: same service order, same completion and activation times,
// same statistics. The reference scans every queued request on every
// decision (the pre-index behavior) with this PR's semantic fixes
// folded in — lowest-seq starvation rescue, tWR/tWTR write timing,
// meta writes coalesced through the write queue, clamped refresh
// stagger — so any divergence isolates the indexing itself.

type linChannel struct {
	cfg *Config
	id  int

	banks   []bank
	faw     [][4]int64
	fawIdx  []int
	nextRef []int64

	busFreeAt     int64
	lastWriteEnd  int64
	lastWriteBank int

	mitigQ []*Request
	readQ  []*Request
	metaQ  []*Request
	writeQ []*Request

	draining   bool
	now        int64
	nextAt     int64
	dispatchAt int64
	seq        int64
	openBanks  int64

	stats Stats
}

func newLinChannel(cfg *Config, id int) *linChannel {
	nBanks := cfg.Mem.RanksPerChannel * cfg.Mem.BanksPerRank
	c := &linChannel{
		cfg:     cfg,
		id:      id,
		banks:   make([]bank, nBanks),
		faw:     make([][4]int64, cfg.Mem.RanksPerChannel),
		fawIdx:  make([]int, cfg.Mem.RanksPerChannel),
		nextRef: make([]int64, cfg.Mem.RanksPerChannel),
		nextAt:  Infinity,
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].lastAct = -Infinity
	}
	c.stats.ReadQDepth = obsv.NewHist(obsv.PowersOfTwo(64)...)
	c.stats.WriteQDepth = obsv.NewHist(obsv.PowersOfTwo(128)...)
	c.stats.MetaQDepth = obsv.NewHist(obsv.PowersOfTwo(64)...)
	c.stats.OpenBanks = obsv.NewHist(obsv.PowersOfTwo(32)...)
	for r := range c.faw {
		for j := range c.faw[r] {
			c.faw[r][j] = -Infinity
		}
		c.nextRef[r] = cfg.Timing.TREFI + int64(id*997+r*511)%cfg.Timing.TREFI
	}
	return c
}

func (c *linChannel) bankIdx(r *Request) int {
	return r.loc.Rank*c.cfg.Mem.BanksPerRank + r.loc.Bank
}

func (c *linChannel) submit(r *Request) bool {
	switch r.Kind {
	case ReadReq:
		if len(c.readQ) >= c.cfg.ReadQCap {
			c.stats.ReadQFull++
			return false
		}
		c.readQ = append(c.readQ, r)
	case WriteReq:
		if len(c.writeQ) >= c.cfg.WriteQCap {
			c.stats.WriteQFull++
			return false
		}
		c.writeQ = append(c.writeQ, r)
	case MetaRead:
		c.metaQ = append(c.metaQ, r) // internal traffic: never refused
	case MetaWrite:
		c.writeQ = append(c.writeQ, r) // coalesced with the write drain
	case MitigAct:
		c.mitigQ = append(c.mitigQ, r)
	}
	c.seq++
	r.seq = c.seq
	at := r.Arrive
	if at < c.dispatchAt {
		at = c.dispatchAt
	}
	if at < c.now {
		at = c.now
	}
	if at < c.nextAt {
		c.nextAt = at
	}
	return true
}

func (c *linChannel) idle() bool {
	return len(c.mitigQ) == 0 && len(c.readQ) == 0 && len(c.metaQ) == 0 && len(c.writeQ) == 0
}

func (c *linChannel) step() {
	now := c.nextAt
	c.now = now
	c.applyRefreshes(now)
	c.stats.ReadQDepth.Observe(int64(len(c.readQ)))
	c.stats.WriteQDepth.Observe(int64(len(c.writeQ)))
	c.stats.MetaQDepth.Observe(int64(len(c.metaQ)))
	c.stats.OpenBanks.Observe(c.openBanks)

	r, from := c.pick(now)
	if r == nil {
		c.nextAt = c.earliestArrival()
		if c.nextAt < c.dispatchAt {
			c.nextAt = c.dispatchAt
		}
		return
	}
	c.remove(from, r)
	c.service(r, now)
	c.dispatchAt = now + cmdGap
	if r.Kind != MitigAct {
		lookahead := c.cfg.Timing.TRP + c.cfg.Timing.TRCD + c.cfg.Timing.TCAS
		if t := c.busFreeAt - lookahead; t > c.dispatchAt {
			c.dispatchAt = t
		}
	}
	c.nextAt = c.dispatchAt
}

func (c *linChannel) applyRefreshes(now int64) {
	for rank := range c.nextRef {
		for c.nextRef[rank] <= now {
			start := c.nextRef[rank]
			lo := rank * c.cfg.Mem.BanksPerRank
			for b := lo; b < lo+c.cfg.Mem.BanksPerRank; b++ {
				bk := &c.banks[b]
				s := start
				if bk.readyAt > s {
					s = bk.readyAt
				}
				if bk.openRow >= 0 && bk.wrRecover > s {
					s = bk.wrRecover
				}
				bk.readyAt = s + c.cfg.Timing.TRFC
				if bk.openRow >= 0 {
					c.openBanks--
					bk.openRow = -1
				}
			}
			c.stats.Refreshes++
			c.cfg.Trace.Emit(obsv.Event{Cycle: start, Kind: obsv.EvRefresh, Row: uint32(c.id), Aux: int64(rank)})
			c.nextRef[rank] += c.cfg.Timing.TREFI
		}
	}
}

func (c *linChannel) earliestArrival() int64 {
	t := Infinity
	for _, q := range [][]*Request{c.mitigQ, c.readQ, c.metaQ, c.writeQ} {
		for _, r := range q {
			if r.Arrive < t {
				t = r.Arrive
			}
		}
	}
	if t < c.now {
		t = c.now
	}
	return t
}

func (c *linChannel) pick(now int64) (*Request, *[]*Request) {
	if r := linOldestArrived(c.mitigQ, now); r != nil {
		return r, &c.mitigQ
	}
	if len(c.writeQ) >= c.cfg.DrainHi {
		if !c.draining {
			c.stats.DrainEnters++
		}
		c.draining = true
	} else if len(c.writeQ) <= c.cfg.DrainLo {
		if c.draining {
			c.stats.DrainExits++
		}
		c.draining = false
	}
	if c.draining {
		if r := c.frfcfs(c.writeQ, now); r != nil {
			return r, &c.writeQ
		}
	}
	if len(c.metaQ) > metaPressure {
		if r := c.frfcfs(c.metaQ, now); r != nil {
			return r, &c.metaQ
		}
	}
	if r := c.frfcfs(c.readQ, now); r != nil {
		return r, &c.readQ
	}
	if r := c.frfcfs(c.metaQ, now); r != nil {
		return r, &c.metaQ
	}
	if r := c.frfcfs(c.writeQ, now); r != nil {
		return r, &c.writeQ
	}
	return nil, nil
}

func linOldestArrived(q []*Request, now int64) *Request {
	var best *Request
	for _, r := range q {
		if r.Arrive <= now && (best == nil || r.seq < best.seq) {
			best = r
		}
	}
	return best
}

// frfcfs is the reference picker: a full scan over the queue with the
// fixed starvation rule (oldest submission among all starving
// requests, regardless of queue position).
func (c *linChannel) frfcfs(q []*Request, now int64) *Request {
	var starving *Request
	for _, r := range q {
		if r.Arrive <= now && r.Arrive < now-starvationAge {
			if starving == nil || r.seq < starving.seq {
				starving = r
			}
		}
	}
	if starving != nil {
		return starving
	}
	var best *Request
	var bestEst int64
	for _, r := range q {
		if r.Arrive > now {
			continue
		}
		b := &c.banks[c.bankIdx(r)]
		est := b.readyAt
		if est < now {
			est = now
		}
		if b.openRow != r.loc.Row {
			est += c.cfg.Timing.TRP + c.cfg.Timing.TRCD
		}
		if best == nil || est < bestEst || (est == bestEst && r.seq < best.seq) {
			best, bestEst = r, est
		}
	}
	return best
}

func (c *linChannel) remove(q *[]*Request, r *Request) {
	for i, x := range *q {
		if x == r {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
	panic("memsim: request not in its queue")
}

func (c *linChannel) fawReady(rank int) int64 {
	return c.faw[rank][c.fawIdx[rank]] + c.cfg.Timing.TFAW
}

func (c *linChannel) fawPush(rank int, t int64) {
	c.faw[rank][c.fawIdx[rank]] = t
	c.fawIdx[rank] = (c.fawIdx[rank] + 1) % 4
}

func (c *linChannel) service(r *Request, now int64) {
	tm := &c.cfg.Timing
	bi := c.bankIdx(r)
	b := &c.banks[bi]
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var activatedAt int64 = -1
	var finish int64

	if r.Kind == MitigAct {
		actAt := start
		if b.openRow >= 0 {
			if b.wrRecover > actAt {
				actAt = b.wrRecover
			}
			actAt += tm.TRP
			c.openBanks--
		}
		if t := b.lastAct + tm.TRC; t > actAt {
			actAt = t
		}
		if t := c.fawReady(r.loc.Rank); t > actAt {
			actAt = t
		}
		b.lastAct = actAt
		b.openRow = -1
		b.readyAt = actAt + tm.TRC
		c.fawPush(r.loc.Rank, actAt)
		c.stats.MitigActs++
		c.stats.Activates++
		activatedAt = actAt
		finish = actAt + tm.TRC
	} else {
		isWrite := r.Kind == WriteReq || r.Kind == MetaWrite
		var casAt int64
		if b.openRow == r.loc.Row {
			c.stats.RowHits++
			casAt = start
		} else {
			actAt := start
			if b.openRow >= 0 {
				if b.wrRecover > actAt {
					actAt = b.wrRecover
				}
				actAt += tm.TRP
			} else {
				c.openBanks++
			}
			if t := b.lastAct + tm.TRC; t > actAt {
				actAt = t
			}
			if t := c.fawReady(r.loc.Rank); t > actAt {
				actAt = t
			}
			b.lastAct = actAt
			b.openRow = r.loc.Row
			c.fawPush(r.loc.Rank, actAt)
			c.stats.Activates++
			activatedAt = actAt
			casAt = actAt + tm.TRCD
		}
		if !isWrite {
			wtr := tm.TWTRS
			if bi == c.lastWriteBank {
				wtr = tm.TWTR
			}
			if t := c.lastWriteEnd + wtr; t > casAt {
				casAt = t
			}
		}
		dataAt := casAt + tm.TCAS
		if c.busFreeAt > dataAt {
			dataAt = c.busFreeAt
		}
		c.busFreeAt = dataAt + tm.TBURST
		b.readyAt = dataAt + tm.TBURST - tm.TCAS
		if isWrite {
			b.wrRecover = dataAt + tm.TBURST + tm.TWR
			c.lastWriteEnd = dataAt + tm.TBURST
			c.lastWriteBank = bi
		}
		finish = dataAt + tm.TBURST

		switch r.Kind {
		case ReadReq:
			finish += c.cfg.StaticLatency
			c.stats.Reads++
			c.stats.ReadLatSum += finish - r.Arrive
		case WriteReq:
			c.stats.Writes++
		case MetaRead:
			c.stats.MetaReads++
		case MetaWrite:
			c.stats.MetaWrites++
		}
	}

	if finish > c.stats.BusyUntil {
		c.stats.BusyUntil = finish
	}
	if r.OnFinish != nil {
		r.OnFinish(r, finish)
	}
	if activatedAt >= 0 && c.cfg.OnACT != nil {
		c.cfg.OnACT(c.cfg.Mem.GlobalRow(r.loc), r.Kind, activatedAt)
	}
}

// linMemory mirrors Memory over linChannels.
type linMemory struct {
	cfg      Config
	channels []*linChannel
}

func newLinMemory(cfg Config) *linMemory {
	m := &linMemory{cfg: cfg}
	for c := 0; c < cfg.Mem.Channels; c++ {
		m.channels = append(m.channels, newLinChannel(&m.cfg, c))
	}
	return m
}

func (m *linMemory) Submit(r *Request) bool {
	r.loc = m.cfg.Mem.Decode(r.Line)
	return m.channels[r.loc.Channel].submit(r)
}

func (m *linMemory) NextTime() int64 {
	t := Infinity
	for _, c := range m.channels {
		if c.nextAt < t {
			t = c.nextAt
		}
	}
	return t
}

func (m *linMemory) Step() {
	best := m.channels[0]
	for _, c := range m.channels[1:] {
		if c.nextAt < best.nextAt {
			best = c
		}
	}
	best.step()
}

// StepNext matches Memory.StepNext for the memLike drivers. The
// reference implementation stays naive on purpose: step, rescan.
func (m *linMemory) StepNext() int64 {
	m.Step()
	return m.NextTime()
}

func (m *linMemory) Stats() Stats {
	var s Stats
	for _, c := range m.channels {
		s.Reads += c.stats.Reads
		s.Writes += c.stats.Writes
		s.MetaReads += c.stats.MetaReads
		s.MetaWrites += c.stats.MetaWrites
		s.MitigActs += c.stats.MitigActs
		s.Activates += c.stats.Activates
		s.RowHits += c.stats.RowHits
		s.Refreshes += c.stats.Refreshes
		s.ReadLatSum += c.stats.ReadLatSum
		s.DrainEnters += c.stats.DrainEnters
		s.DrainExits += c.stats.DrainExits
		s.ReadQFull += c.stats.ReadQFull
		s.WriteQFull += c.stats.WriteQFull
		s.ReadQDepth.Merge(c.stats.ReadQDepth)
		s.WriteQDepth.Merge(c.stats.WriteQDepth)
		s.MetaQDepth.Merge(c.stats.MetaQDepth)
		s.OpenBanks.Merge(c.stats.OpenBanks)
		if c.stats.BusyUntil > s.BusyUntil {
			s.BusyUntil = c.stats.BusyUntil
		}
	}
	return s
}

// reqSpec is one generated request, shared by both simulators (each
// builds its own Request instances; the structs carry per-scheduler
// internal state and must not be shared).
type reqSpec struct {
	line   uint64
	kind   Kind
	arrive int64
}

// schedEvent is one observable scheduler action: a request completion
// (fin=true) or a row activation.
type schedEvent struct {
	fin    bool
	id     int64
	t      int64
	row    uint32
	kind   Kind
	refuse bool
}

type memLike interface {
	Submit(*Request) bool
	NextTime() int64
	StepNext() int64
}

// driveStream submits the specs in arrival order, stepping the
// simulator up to each arrival, then drains it, returning the full
// observable event log. It advances with the fused StepNext, so each
// iteration costs one channel scan instead of two.
func driveStream(m memLike, setHook func(func(uint32, Kind, int64)), specs []reqSpec) []schedEvent {
	var events []schedEvent
	setHook(func(row uint32, kind Kind, at int64) {
		events = append(events, schedEvent{row: row, kind: kind, t: at})
	})
	onFin := func(r *Request, f int64) {
		events = append(events, schedEvent{fin: true, id: r.User, t: f})
	}
	for i, sp := range specs {
		for t := m.NextTime(); t < sp.arrive; t = m.StepNext() {
		}
		r := &Request{Line: sp.line, Kind: sp.kind, Arrive: sp.arrive, User: int64(i), OnFinish: onFin}
		if !m.Submit(r) {
			events = append(events, schedEvent{refuse: true, id: int64(i)})
		}
	}
	for t := m.NextTime(); t < Infinity; t = m.StepNext() {
	}
	return events
}

// fuzzStream generates a bursty mixed request stream. Rows are drawn
// from a small set so row hits, conflicts and starvation all occur;
// occasional long gaps exercise refresh catch-up.
func fuzzStream(rng *rand.Rand, mem dram.Config, n int) []reqSpec {
	specs := make([]reqSpec, 0, n)
	clock := int64(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			clock += int64(rng.Intn(200))
		case 1:
			if rng.Intn(50) == 0 {
				clock += 30_000 // across a tREFI boundary
			}
		default:
			clock += int64(rng.Intn(6))
		}
		var k Kind
		switch p := rng.Intn(100); {
		case p < 55:
			k = ReadReq
		case p < 70:
			k = WriteReq
		case p < 80:
			k = MetaRead
		case p < 90:
			k = MetaWrite
		default:
			k = MitigAct
		}
		loc := dram.Loc{
			Channel: rng.Intn(mem.Channels),
			Rank:    rng.Intn(mem.RanksPerChannel),
			Bank:    rng.Intn(mem.BanksPerRank),
			Row:     rng.Intn(6) * 37,
			Col:     rng.Intn(mem.RowBytes / 64),
		}
		specs = append(specs, reqSpec{line: mem.Encode(loc), kind: k, arrive: clock})
	}
	return specs
}

// TestDifferentialSchedulerEquivalence fuzzes request streams through
// the indexed scheduler and the linear reference and requires bitwise
// identical event logs and statistics.
func TestDifferentialSchedulerEquivalence(t *testing.T) {
	mem := dram.Baseline()
	configs := []func() Config{
		func() Config { return DefaultConfig(mem) },
		func() Config { // tight queues: refusals and constant draining
			cfg := DefaultConfig(mem)
			cfg.ReadQCap = 8
			cfg.WriteQCap = 12
			cfg.DrainHi = 8
			cfg.DrainLo = 2
			return cfg
		},
	}
	for seed := int64(1); seed <= 6; seed++ {
		for ci, mkCfg := range configs {
			specs := fuzzStream(rand.New(rand.NewSource(seed)), mem, 4000)

			cfgA := mkCfg()
			idx := New(cfgA)
			got := driveStream(idx, func(h func(uint32, Kind, int64)) { cfgA.OnACT = h; idx.cfg.OnACT = h }, specs)

			cfgB := mkCfg()
			lin := newLinMemory(cfgB)
			want := driveStream(lin, func(h func(uint32, Kind, int64)) { cfgB.OnACT = h; lin.cfg.OnACT = h }, specs)

			if len(got) != len(want) {
				t.Fatalf("seed %d cfg %d: %d events vs %d in reference", seed, ci, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d cfg %d: event %d diverged:\nindexed:   %+v\nreference: %+v",
						seed, ci, i, got[i], want[i])
				}
			}
			if a, b := idx.Stats(), lin.Stats(); !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d cfg %d: stats diverged:\nindexed:   %+v\nreference: %+v", seed, ci, a, b)
			}
		}
	}
}
