package memsim

import (
	"testing"

	"repro/internal/dram"
)

// BenchmarkChannelThroughput measures simulator speed servicing a
// bank-parallel read stream: requests simulated per wall-clock second
// bounds how fast the figure sweeps can run. It uses the request pool
// and drains periodically, so after warm-up the step loop runs
// allocation-free.
func BenchmarkChannelThroughput(b *testing.B) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 1 << 20
	m := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.NewRequest()
		r.Line = mem.Encode(dram.Loc{Channel: i % 2, Bank: i % 16, Row: (i / 32) % 1000, Col: i % 128})
		r.Kind = ReadReq
		m.Submit(r)
		if i%1024 == 1023 {
			drain(m)
		}
	}
	drain(m)
}

// benchEpochs drives the epoch engine over a 4-channel bank-parallel
// read stream and reports the amortized cost of one epoch barrier
// (fan-out dispatch, per-channel advance, deterministic merge) next to
// the usual ns/op. The serial and parallel variants run the identical
// schedule; their ns/epoch difference is the fan-out overhead or win.
func benchEpochs(b *testing.B, parallel bool) {
	mem := dram.Baseline()
	mem.Channels = 4
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 1 << 20
	cfg.Parallel = parallel
	m := New(cfg)
	defer m.Close()
	la := m.Lookahead()
	run := func() {
		for t := m.NextTime(); t < Infinity; t = m.RunEpoch(t + la) {
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.NewRequest()
		r.Line = mem.Encode(dram.Loc{Channel: i % 4, Bank: i % 16, Row: (i / 64) % 1000, Col: i % 128})
		r.Kind = ReadReq
		m.Submit(r)
		if i%1024 == 1023 {
			run()
		}
	}
	run()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(m.epochs), "ns/epoch")
}

// BenchmarkEpochBarrierSerial is the epoch engine without fan-out.
func BenchmarkEpochBarrierSerial(b *testing.B) { benchEpochs(b, false) }

// BenchmarkEpochBarrierParallel adds the worker goroutines (one per
// channel past the first). At GOMAXPROCS 1 the fan-out auto-disables
// and this coincides with the serial variant.
func BenchmarkEpochBarrierParallel(b *testing.B) { benchEpochs(b, true) }

// BenchmarkRowHitStream measures the fast path: all row-buffer hits.
func BenchmarkRowHitStream(b *testing.B) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 1 << 20
	m := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.NewRequest()
		r.Line = mem.Encode(dram.Loc{Bank: 0, Row: 10, Col: i % 128})
		r.Kind = ReadReq
		m.Submit(r)
		if i%1024 == 1023 {
			drain(m)
		}
	}
	drain(m)
}
