package memsim

import (
	"testing"

	"repro/internal/dram"
)

// BenchmarkChannelThroughput measures simulator speed servicing a
// bank-parallel read stream: requests simulated per wall-clock second
// bounds how fast the figure sweeps can run. It uses the request pool
// and drains periodically, so after warm-up the step loop runs
// allocation-free.
func BenchmarkChannelThroughput(b *testing.B) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 1 << 20
	m := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.NewRequest()
		r.Line = mem.Encode(dram.Loc{Channel: i % 2, Bank: i % 16, Row: (i / 32) % 1000, Col: i % 128})
		r.Kind = ReadReq
		m.Submit(r)
		if i%1024 == 1023 {
			drain(m)
		}
	}
	drain(m)
}

// BenchmarkRowHitStream measures the fast path: all row-buffer hits.
func BenchmarkRowHitStream(b *testing.B) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 1 << 20
	m := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.NewRequest()
		r.Line = mem.Encode(dram.Loc{Bank: 0, Row: 10, Col: i % 128})
		r.Kind = ReadReq
		m.Submit(r)
		if i%1024 == 1023 {
			drain(m)
		}
	}
	drain(m)
}
