package memsim

import (
	"testing"

	"repro/internal/dram"
)

// BenchmarkChannelThroughput measures simulator speed servicing a
// bank-parallel read stream: requests simulated per wall-clock second
// bounds how fast the figure sweeps can run.
func BenchmarkChannelThroughput(b *testing.B) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 1 << 20
	b.ReportAllocs()
	b.ResetTimer()
	m := New(cfg)
	for i := 0; i < b.N; i++ {
		m.Submit(&Request{
			Line:   mem.Encode(dram.Loc{Channel: i % 2, Bank: i % 16, Row: (i / 32) % 1000, Col: i % 128}),
			Kind:   ReadReq,
			Arrive: 0,
		})
		if i%1024 == 1023 {
			drain(m)
			m = New(cfg)
		}
	}
	drain(m)
}

// BenchmarkRowHitStream measures the fast path: all row-buffer hits.
func BenchmarkRowHitStream(b *testing.B) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 1 << 20
	m := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Submit(&Request{
			Line:   mem.Encode(dram.Loc{Bank: 0, Row: 10, Col: i % 128}),
			Kind:   ReadReq,
			Arrive: 0,
		})
		if i%1024 == 1023 {
			drain(m)
			m = New(cfg)
		}
	}
	drain(m)
}
