package memsim

import (
	"testing"

	"repro/internal/dram"
)

func testMem(hook func(uint32, Kind, int64)) *Memory {
	cfg := DefaultConfig(dram.Baseline())
	cfg.OnACT = hook
	return New(cfg)
}

func drain(m *Memory) {
	for t := m.NextTime(); t < Infinity; t = m.StepNext() {
	}
}

func lineAt(mem dram.Config, ch, bank, row, col int) uint64 {
	return mem.Encode(dram.Loc{Channel: ch, Bank: bank, Row: row, Col: col})
}

func TestColdReadLatency(t *testing.T) {
	m := testMem(nil)
	mem := dram.Baseline()
	var finish int64
	m.Submit(&Request{
		Line:     lineAt(mem, 0, 0, 100, 0),
		Kind:     ReadReq,
		Arrive:   0,
		OnFinish: func(_ *Request, f int64) { finish = f },
	})
	drain(m)
	// Closed bank: ACT(0) + tRCD(45) + tCAS(45) + tBURST(8) + static(60).
	want := int64(45 + 45 + 8 + 60)
	if finish != want {
		t.Fatalf("cold read finish = %d, want %d", finish, want)
	}
	s := m.Stats()
	if s.Reads != 1 || s.Activates != 1 || s.RowHits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	mem := dram.Baseline()

	run := func(row2 int) int64 {
		m := testMem(nil)
		var f1, f2 int64
		m.Submit(&Request{Line: lineAt(mem, 0, 0, 100, 0), Kind: ReadReq, Arrive: 0,
			OnFinish: func(_ *Request, f int64) { f1 = f }})
		m.Submit(&Request{Line: lineAt(mem, 0, 0, row2, 1), Kind: ReadReq, Arrive: 0,
			OnFinish: func(_ *Request, f int64) { f2 = f }})
		drain(m)
		if f2 <= f1 {
			t.Fatalf("second request finished first: %d <= %d", f2, f1)
		}
		return f2
	}
	hit := run(100)      // same row: buffer hit
	conflict := run(200) // different row: PRE + ACT
	if hit >= conflict {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hit, conflict)
	}
	// The conflict pays at least tRC spacing between activations.
	if conflict-hit < 100 {
		t.Fatalf("conflict penalty only %d cycles", conflict-hit)
	}
}

func TestSameBankActivationsRespectTRC(t *testing.T) {
	mem := dram.Baseline()
	var acts []int64
	m := testMem(func(_ uint32, _ Kind, at int64) { acts = append(acts, at) })
	// Alternate two rows of one bank, spaced closely enough that tRC
	// binds but far enough apart that FR-FCFS cannot reorder them into
	// row hits.
	for i := 0; i < 6; i++ {
		m.Submit(&Request{Line: lineAt(mem, 0, 3, 100+(i%2)*50, 0), Kind: ReadReq, Arrive: int64(i) * 100})
	}
	drain(m)
	if len(acts) != 6 {
		t.Fatalf("activations = %d, want 6", len(acts))
	}
	for i := 1; i < len(acts); i++ {
		if acts[i]-acts[i-1] < DDR4().TRC {
			t.Fatalf("ACT spacing %d < tRC", acts[i]-acts[i-1])
		}
	}
}

func TestTFAWLimitsActivationBursts(t *testing.T) {
	mem := dram.Baseline()
	var acts []int64
	m := testMem(func(_ uint32, _ Kind, at int64) { acts = append(acts, at) })
	// Five different banks, same rank, all conflicts (cold banks).
	for b := 0; b < 5; b++ {
		m.Submit(&Request{Line: lineAt(mem, 0, b, 10, 0), Kind: ReadReq, Arrive: 0})
	}
	drain(m)
	if len(acts) != 5 {
		t.Fatalf("activations = %d, want 5", len(acts))
	}
	if got := acts[4] - acts[0]; got < DDR4().TFAW {
		t.Fatalf("fifth ACT only %d cycles after first, want >= tFAW (%d)", got, DDR4().TFAW)
	}
}

func TestBandwidthBoundedByBurst(t *testing.T) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 512
	m := New(cfg)
	var last int64
	n := 256
	for i := 0; i < n; i++ {
		// Spread over banks, same channel, row hits after first touch.
		bank := i % 16
		m.Submit(&Request{Line: lineAt(mem, 0, bank, 10, i/16), Kind: ReadReq, Arrive: 0,
			OnFinish: func(_ *Request, f int64) {
				if f > last {
					last = f
				}
			}})
	}
	drain(m)
	// The data bus serializes at tBURST per transfer: n transfers take
	// at least n*tBURST cycles.
	if minSpan := int64(n) * DDR4().TBURST; last < minSpan {
		t.Fatalf("%d reads completed in %d cycles, faster than the bus allows (%d)", n, last, minSpan)
	}
	if s := m.Stats(); s.RowHits == 0 {
		t.Fatal("expected row-buffer hits in streaming pattern")
	}
}

func TestChannelsAreParallel(t *testing.T) {
	mem := dram.Baseline()
	span := func(chs []int) int64 {
		cfg := DefaultConfig(mem)
		cfg.ReadQCap = 512
		m := New(cfg)
		var last int64
		for i := 0; i < 128; i++ {
			ch := chs[i%len(chs)]
			m.Submit(&Request{Line: lineAt(mem, ch, i%16, 10, i), Kind: ReadReq, Arrive: 0,
				OnFinish: func(_ *Request, f int64) {
					if f > last {
						last = f
					}
				}})
		}
		drain(m)
		return last
	}
	one := span([]int{0})
	two := span([]int{0, 1})
	if float64(two) > 0.75*float64(one) {
		t.Fatalf("two channels (%d) not faster than one (%d)", two, one)
	}
}

func TestRefreshesHappen(t *testing.T) {
	mem := dram.Baseline()
	m := testMem(nil)
	// Two requests far apart in time force the clock across several
	// tREFI boundaries.
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 1, 0), Kind: ReadReq, Arrive: 0})
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 1, 1), Kind: ReadReq, Arrive: 5 * DDR4().TREFI})
	drain(m)
	if s := m.Stats(); s.Refreshes < 4 {
		t.Fatalf("refreshes = %d, want >= 4 over 5 tREFI", s.Refreshes)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.DrainHi = 8
	cfg.DrainLo = 2
	m := New(cfg)
	// Fill writes beyond the drain threshold along with a read stream;
	// everything must eventually complete.
	for i := 0; i < 12; i++ {
		m.Submit(&Request{Line: lineAt(mem, 0, i%16, 20, i), Kind: WriteReq, Arrive: 0})
	}
	var readDone int64
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 30, 0), Kind: ReadReq, Arrive: 0,
		OnFinish: func(_ *Request, f int64) { readDone = f }})
	drain(m)
	s := m.Stats()
	if s.Writes != 12 || s.Reads != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if readDone == 0 {
		t.Fatal("read never completed")
	}
}

func TestReadsPrioritizedOverWrites(t *testing.T) {
	mem := dram.Baseline()
	m := testMem(nil)
	var readDone, writeDone int64
	// One write and one read to the same bank, write submitted first.
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 20, 0), Kind: WriteReq, Arrive: 0,
		OnFinish: func(_ *Request, f int64) { writeDone = f }})
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 30, 0), Kind: ReadReq, Arrive: 0,
		OnFinish: func(_ *Request, f int64) { readDone = f }})
	drain(m)
	if readDone >= writeDone {
		t.Fatalf("read (%d) not prioritized over write (%d)", readDone, writeDone)
	}
}

func TestMitigationActivationsBankOnly(t *testing.T) {
	mem := dram.Baseline()
	var kinds []Kind
	m := testMem(func(_ uint32, k Kind, _ int64) { kinds = append(kinds, k) })
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 99, 0), Kind: MitigAct, Arrive: 0})
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 99, 0), Kind: ReadReq, Arrive: 0})
	drain(m)
	s := m.Stats()
	if s.MitigActs != 1 {
		t.Fatalf("MitigActs = %d", s.MitigActs)
	}
	// The read re-activates the row because mitigation precharges.
	if s.Activates != 2 {
		t.Fatalf("Activates = %d, want 2", s.Activates)
	}
	if len(kinds) != 2 || kinds[0] != MitigAct || kinds[1] != ReadReq {
		t.Fatalf("hook kinds = %v", kinds)
	}
}

func TestHookReceivesGlobalRow(t *testing.T) {
	mem := dram.Baseline()
	var got uint32
	m := testMem(func(row uint32, _ Kind, _ int64) { got = row })
	loc := dram.Loc{Channel: 1, Bank: 5, Row: 777, Col: 3}
	m.Submit(&Request{Line: mem.Encode(loc), Kind: ReadReq, Arrive: 0})
	drain(m)
	if want := mem.GlobalRow(loc); got != want {
		t.Fatalf("hook row = %d, want %d", got, want)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 4
	m := New(cfg)
	accepted := 0
	for i := 0; i < 10; i++ {
		if m.Submit(&Request{Line: lineAt(mem, 0, 0, 1, i), Kind: ReadReq, Arrive: 0}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted = %d, want 4", accepted)
	}
	drain(m)
	if !m.Idle() {
		t.Fatal("memory not idle after drain")
	}
}

func TestMetaTrafficServiced(t *testing.T) {
	mem := dram.Baseline()
	m := testMem(nil)
	m.Submit(&Request{Line: lineAt(mem, 0, 2, 50, 0), Kind: MetaRead, Arrive: 0})
	m.Submit(&Request{Line: lineAt(mem, 0, 2, 50, 1), Kind: MetaWrite, Arrive: 0})
	drain(m)
	s := m.Stats()
	if s.MetaReads != 1 || s.MetaWrites != 1 {
		t.Fatalf("meta stats = %+v", s)
	}
}

func TestKindString(t *testing.T) {
	for k := MitigAct; k <= WriteReq; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}

func TestBadConfigPanics(t *testing.T) {
	cfg := DefaultConfig(dram.Baseline())
	cfg.DrainLo = cfg.DrainHi
	defer func() {
		if recover() == nil {
			t.Fatal("bad drain config should panic")
		}
	}()
	New(cfg)
}

// TestStarvationGuard verifies FR-FCFS cannot starve an old conflict
// request behind an endless row-hit stream.
func TestStarvationGuard(t *testing.T) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 4096
	m := New(cfg)
	var victimDone int64
	// One conflict request to row 99...
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 99, 0), Kind: ReadReq, Arrive: 0,
		OnFinish: func(_ *Request, f int64) { victimDone = f }})
	// ...buried under thousands of row hits to row 10 arriving over time.
	for i := 1; i < 3000; i++ {
		m.Submit(&Request{Line: lineAt(mem, 0, 0, 10, i%128), Kind: ReadReq, Arrive: int64(i)})
	}
	drain(m)
	if victimDone == 0 {
		t.Fatal("victim request never completed")
	}
	// starvationAge bounds the wait: the victim cannot finish after
	// the whole hit stream (which spans > 20000 cycles).
	if victimDone > starvationAge+2000 {
		t.Fatalf("victim starved until %d", victimDone)
	}
}

// TestMetaPressurePrioritizesBacklog verifies that a deep metadata
// backlog (a saturated tracker) preempts demand reads, bounding the
// backlog like a real tracker's miss buffer.
func TestMetaPressurePrioritizesBacklog(t *testing.T) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 4096
	m := New(cfg)
	ch := m.channels[0]
	// Enqueue a deep meta backlog and a stream of demand reads.
	for i := 0; i < metaPressure+20; i++ {
		m.Submit(&Request{Line: lineAt(mem, 0, 1, 7, i%128), Kind: MetaRead, Arrive: 0})
	}
	for i := 0; i < 200; i++ {
		m.Submit(&Request{Line: lineAt(mem, 0, 0, 10, i%128), Kind: ReadReq, Arrive: 0})
	}
	// Step until the backlog falls to the pressure bound; reads must
	// not all have gone first.
	for steps := 0; ch.metaQ.len() > metaPressure && steps < 10000; steps++ {
		if m.NextTime() == Infinity {
			break
		}
		m.Step()
	}
	if ch.metaQ.len() > metaPressure {
		t.Fatalf("meta backlog stuck at %d", ch.metaQ.len())
	}
	if got := m.Stats().Reads; got == 200 {
		t.Fatal("all demand reads finished before the meta backlog drained")
	}
	drain(m)
	s := m.Stats()
	if s.MetaReads != int64(metaPressure+20) || s.Reads != 200 {
		t.Fatalf("final stats %+v", s)
	}
}

// TestRefreshPeriodCount pins the refresh cadence: a run spanning N
// tREFI windows issues ~N refreshes per rank.
func TestRefreshPeriodCount(t *testing.T) {
	mem := dram.Baseline()
	m := testMem(nil)
	span := 20 * DDR4().TREFI
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 1, 0), Kind: ReadReq, Arrive: 0})
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 1, 1), Kind: ReadReq, Arrive: span})
	drain(m)
	got := m.Stats().Refreshes
	if got < 18 || got > 21 {
		t.Fatalf("refreshes = %d over 20 tREFI", got)
	}
}

// TestDrainedMemoryIsIdle pins the Idle/NextTime contract.
func TestDrainedMemoryIsIdle(t *testing.T) {
	mem := dram.Baseline()
	m := testMem(nil)
	if !m.Idle() || m.NextTime() != Infinity {
		t.Fatal("fresh memory not idle")
	}
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 1, 0), Kind: WriteReq, Arrive: 100})
	if m.Idle() {
		t.Fatal("queued memory reported idle")
	}
	if m.NextTime() != 100 {
		t.Fatalf("NextTime = %d, want 100 (arrival)", m.NextTime())
	}
	drain(m)
	if !m.Idle() {
		t.Fatal("drained memory not idle")
	}
}
