package memsim

import (
	"testing"

	"repro/internal/dram"
)

// TestWriteRecoveryDelaysActivate pins the tWR gap: after a write, the
// bank cannot precharge (and so cannot activate a new row) until tWR
// past the end of the write burst, then tRP.
func TestWriteRecoveryDelaysActivate(t *testing.T) {
	mem := dram.Baseline()
	var writeEnd, readAct int64
	cfg := DefaultConfig(mem)
	cfg.OnACT = func(_ uint32, k Kind, at int64) {
		if k == ReadReq {
			readAct = at
		}
	}
	m := New(cfg)
	// The write goes first (empty read queue), the conflicting read
	// arrives while the write burst is in flight.
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 100, 0), Kind: WriteReq, Arrive: 0,
		OnFinish: func(_ *Request, f int64) { writeEnd = f }})
	m.Submit(&Request{Line: lineAt(mem, 0, 0, 200, 0), Kind: ReadReq, Arrive: 1})
	drain(m)
	if writeEnd == 0 || readAct == 0 {
		t.Fatalf("writeEnd = %d, readAct = %d", writeEnd, readAct)
	}
	tm := DDR4()
	// The write finishes when its burst leaves the bus; the row-miss
	// read then pays exactly write recovery plus precharge.
	if want := writeEnd + tm.TWR + tm.TRP; readAct != want {
		t.Fatalf("read ACT at %d, want writeEnd(%d) + tWR(%d) + tRP(%d) = %d",
			readAct, writeEnd, tm.TWR, tm.TRP, want)
	}
}

// TestWriteToReadTurnaround pins tWTR: a read CAS trails the last
// write burst by tWTR_L on the same bank and by the shorter tWTR_S on
// a different bank.
func TestWriteToReadTurnaround(t *testing.T) {
	mem := dram.Baseline()
	tm := DDR4()

	// run services a write to bank 0, then a read to the given bank,
	// and returns the read's finish relative to the write burst end.
	run := func(bank, row int) int64 {
		m := testMem(nil)
		var writeEnd, readEnd int64
		m.Submit(&Request{Line: lineAt(mem, 0, 0, 100, 0), Kind: WriteReq, Arrive: 0,
			OnFinish: func(_ *Request, f int64) { writeEnd = f }})
		m.Submit(&Request{Line: lineAt(mem, 0, bank, row, 1), Kind: ReadReq, Arrive: 1,
			OnFinish: func(_ *Request, f int64) { readEnd = f }})
		drain(m)
		if writeEnd == 0 || readEnd == 0 {
			t.Fatalf("writeEnd = %d, readEnd = %d", writeEnd, readEnd)
		}
		return readEnd - writeEnd
	}

	cfg := DefaultConfig(mem)
	// Same bank, same row: a row hit whose CAS is gated only by tWTR_L.
	sameBank := run(0, 100)
	if want := tm.TWTR + tm.TCAS + tm.TBURST + cfg.StaticLatency; sameBank != want {
		t.Fatalf("same-bank read trailed write by %d, want tWTR_L-bound %d", sameBank, want)
	}
	// Different bank: the activate overlaps the write burst, so the CAS
	// is gated by the short cross-bank turnaround tWTR_S.
	crossBank := run(1, 100)
	if want := tm.TWTRS + tm.TCAS + tm.TBURST + cfg.StaticLatency; crossBank != want {
		t.Fatalf("cross-bank read trailed write by %d, want tWTR_S-bound %d", crossBank, want)
	}
	if crossBank >= sameBank {
		t.Fatalf("cross-bank turnaround (%d) not shorter than same-bank (%d)", crossBank, sameBank)
	}
}

// TestStarvingPickUsesSubmissionOrder is the regression test for the
// starvation defect: among starving requests the scheduler must serve
// the oldest submission (lowest seq), not whichever the queue order or
// arrival times happen to surface.
func TestStarvingPickUsesSubmissionOrder(t *testing.T) {
	var q reqQueue
	q.init(1, true)
	// r1 was submitted first (lower seq) but arrived later than r2.
	r1 := &Request{seq: 5, Arrive: 10}
	r2 := &Request{seq: 7, Arrive: 0}
	q.insertReady(r2, 0, -1)
	q.insertReady(r1, 0, -1)
	now := int64(10 + starvationAge + 1) // both past the age bound
	if got := q.starvingPick(now); got != r1 {
		t.Fatalf("starving pick = %+v, want the oldest submission r1", got)
	}
	q.remove(r1, 0)
	if got := q.starvingPick(now); got != r2 {
		t.Fatalf("after serving r1, starving pick = %+v, want r2", got)
	}
	q.remove(r2, 0)
	if got := q.starvingPick(now); got != nil {
		t.Fatalf("empty queue starving pick = %+v", got)
	}
}

// TestStarvationOrderSurvivesReordering drives the same property
// end-to-end: two buried conflict victims are rescued in submission
// order even with served requests punched out of the queue between
// them.
func TestStarvationOrderSurvivesReordering(t *testing.T) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 8192
	m := New(cfg)
	var order []int
	victim := func(id, row int) {
		m.Submit(&Request{Line: lineAt(mem, 0, 0, row, 0), Kind: ReadReq, Arrive: 0,
			OnFinish: func(_ *Request, _ int64) { order = append(order, id) }})
	}
	victim(1, 99)
	// Early row hits between the two victims: they are served first and
	// leave holes in the queue ahead of victim 2.
	for i := 0; i < 64; i++ {
		m.Submit(&Request{Line: lineAt(mem, 0, 0, 10, i%128), Kind: ReadReq, Arrive: 0})
	}
	victim(2, 98)
	// A long row-hit stream that would starve both victims forever
	// without the age bound.
	for i := 1; i < 3000; i++ {
		m.Submit(&Request{Line: lineAt(mem, 0, 0, 10, i%128), Kind: ReadReq, Arrive: int64(i)})
	}
	drain(m)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("victim completion order = %v, want [1 2]", order)
	}
}

// TestRefreshStaggerClamped verifies the per-rank refresh stagger is
// clamped modulo tREFI: whatever the channel and rank counts, every
// rank's first refresh lands within (tREFI, 2*tREFI].
func TestRefreshStaggerClamped(t *testing.T) {
	mem := dram.Baseline()
	mem.Channels = 64
	mem.RanksPerChannel = 4
	cfg := DefaultConfig(mem)
	m := New(cfg)
	trefi := cfg.Timing.TREFI
	for ci, ch := range m.channels {
		for r, at := range ch.nextRef {
			if at < trefi || at >= 2*trefi {
				t.Fatalf("channel %d rank %d first refresh at %d, want within [tREFI, 2*tREFI) = [%d, %d)",
					ci, r, at, trefi, 2*trefi)
			}
		}
	}
}

// TestSteadyStateStepIsAllocationFree pins the pooled hot path: once
// the queues and free list are warm, submitting and fully servicing
// pooled requests does not allocate.
func TestSteadyStateStepIsAllocationFree(t *testing.T) {
	mem := dram.Baseline()
	cfg := DefaultConfig(mem)
	cfg.ReadQCap = 4096
	m := New(cfg)
	round := func() {
		for i := 0; i < 256; i++ {
			r := m.NewRequest()
			switch i % 8 {
			case 6:
				r.Kind = WriteReq
			case 7:
				r.Kind = MetaRead
			default:
				r.Kind = ReadReq
			}
			r.Line = lineAt(mem, i%2, i%16, (i/64)%32, i%128)
			m.Submit(r)
		}
		drain(m)
	}
	// Warm up the pool, buckets and heaps. Several rounds are needed:
	// the starvation aging heap holds a backlog spanning starvationAge
	// cycles, which takes a few rounds to reach steady capacity.
	for n := 0; n < 8; n++ {
		round()
	}
	if avg := testing.AllocsPerRun(10, round); avg != 0 {
		t.Fatalf("steady-state step loop allocates %.1f times per round, want 0", avg)
	}
}
