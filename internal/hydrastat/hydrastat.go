// Package hydrastat analyzes hydra-run-report/v1 files offline: it
// summarizes a report file (cell verdicts, geomeans, metric highlights,
// histogram quantiles, slowest cells) and diffs two report files at
// figure level (per-scheme geomean deltas, aggregate metric deltas)
// with a configurable tolerance. It is the report-level complement to
// cmd/benchgate, which gates on `go test -bench` numbers: benchgate
// answers "did the simulator get slower", hydrastat diff answers "did
// the simulated system change behavior".
//
// cmd/hydrastat is the thin CLI over this package.
package hydrastat

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obsv"
)

// histQuantiles are the interpolated quantile columns Summarize prints
// per histogram metric, matching the obsv.Server Prometheus rendering.
var histQuantiles = []float64{0.5, 0.95, 0.99}

// Summarize renders a human summary of every report in the file: the
// run envelope, the campaign cell verdicts (with the slowest cells
// ranked by wall-clock), per-scheme suite geomeans, the largest
// counters, and every histogram's p50/p95/p99 (obsv.Hist.Quantile).
// top bounds the "slowest cells" and "top counters" lists (<=0 picks
// the default 5).
func Summarize(f *obsv.ReportFile, top int) string {
	if top <= 0 {
		top = 5
	}
	var b strings.Builder
	for i, r := range f.Reports {
		if i > 0 {
			b.WriteString("\n")
		}
		summarizeReport(&b, r, top)
	}
	return b.String()
}

func summarizeReport(b *strings.Builder, r *obsv.Report, top int) {
	fmt.Fprintf(b, "%s/%s  (%s, %s, %.1fs)\n",
		r.Tool, r.Target, r.CreatedAt.Format("2006-01-02 15:04:05"), r.GoVersion, r.ElapsedSec)
	if len(r.Params) > 0 {
		fmt.Fprintf(b, "  params: %s\n", formatParams(r.Params))
	}

	if len(r.Cells) > 0 {
		counts := map[string]int{}
		retried, panicked, stalled := 0, 0, 0
		for _, c := range r.Cells {
			counts[c.Status]++
			if c.Attempts > 1 {
				retried++
			}
			if c.Panicked {
				panicked++
			}
			if c.Stalled {
				stalled++
			}
		}
		fmt.Fprintf(b, "  cells: %d total", len(r.Cells))
		for _, st := range []string{obsv.CellOK, obsv.CellCached, obsv.CellRestored, obsv.CellFailed, obsv.CellBaselineMissing} {
			if counts[st] > 0 {
				fmt.Fprintf(b, " · %d %s", counts[st], st)
			}
		}
		if retried > 0 {
			fmt.Fprintf(b, " · %d retried", retried)
		}
		if panicked > 0 {
			fmt.Fprintf(b, " · %d panicked", panicked)
		}
		if stalled > 0 {
			fmt.Fprintf(b, " · %d stalled", stalled)
		}
		b.WriteString("\n")
		for _, c := range slowestCells(r.Cells, top) {
			rate := ""
			if c.Cycles > 0 && c.ElapsedSec > 0 {
				rate = fmt.Sprintf("  (%.1f Mcyc/s)", float64(c.Cycles)/c.ElapsedSec/1e6)
			}
			fmt.Fprintf(b, "    slow: %-40s %8.2fs%s\n", c.Key, c.ElapsedSec, rate)
		}
	}

	if len(r.Geomeans) > 0 {
		fmt.Fprintf(b, "  geomeans (normalized perf, 1.0 = baseline):\n")
		for _, scheme := range sortedKeys(r.Geomeans) {
			suites := r.Geomeans[scheme]
			fmt.Fprintf(b, "    %-14s", scheme)
			for _, su := range suiteOrder(suites) {
				fmt.Fprintf(b, " %s=%.3f", su, suites[su])
			}
			b.WriteString("\n")
		}
	}

	if len(r.Metrics) > 0 {
		type kv struct {
			name string
			v    float64
		}
		var counters []kv
		var hists []string
		for name, m := range r.Metrics {
			switch m.Type {
			case obsv.TypeCounter:
				counters = append(counters, kv{name, m.Value})
			case obsv.TypeHistogram:
				hists = append(hists, name)
			}
		}
		sort.Slice(counters, func(i, j int) bool {
			if counters[i].v != counters[j].v {
				return counters[i].v > counters[j].v
			}
			return counters[i].name < counters[j].name
		})
		if len(counters) > top {
			counters = counters[:top]
		}
		if len(counters) > 0 {
			fmt.Fprintf(b, "  top counters:\n")
			for _, c := range counters {
				fmt.Fprintf(b, "    %-28s %d\n", c.name, int64(c.v))
			}
		}
		sort.Strings(hists)
		for _, name := range hists {
			h := r.Metrics[name].Hist
			if h == nil || h.N == 0 {
				continue
			}
			fmt.Fprintf(b, "  %-28s n=%d mean=%.1f", name, h.N, h.Mean())
			for _, q := range histQuantiles {
				fmt.Fprintf(b, " p%g=%.1f", q*100, h.Quantile(q))
			}
			fmt.Fprintf(b, " max=%d\n", h.Max)
		}
	}
}

// slowestCells returns the top-n cells by wall-clock, slowest first.
// Cached and restored cells are skipped: replaying a value in
// microseconds is not a scheduling signal.
func slowestCells(cells []obsv.CellStatus, n int) []obsv.CellStatus {
	var ran []obsv.CellStatus
	for _, c := range cells {
		if c.Status == obsv.CellCached || c.Status == obsv.CellRestored || c.ElapsedSec <= 0 {
			continue
		}
		ran = append(ran, c)
	}
	sort.Slice(ran, func(i, j int) bool {
		if ran[i].ElapsedSec != ran[j].ElapsedSec {
			return ran[i].ElapsedSec > ran[j].ElapsedSec
		}
		return ran[i].Key < ran[j].Key
	})
	if len(ran) > n {
		ran = ran[:n]
	}
	return ran
}

func formatParams(params map[string]any) string {
	parts := make([]string, 0, len(params))
	for _, k := range sortedKeys(params) {
		parts = append(parts, fmt.Sprintf("%s=%v", k, params[k]))
	}
	return strings.Join(parts, " ")
}

// suiteOrder sorts suite keys with ALL first (the headline aggregate),
// then alphabetically.
func suiteOrder(suites map[string]float64) []string {
	keys := sortedKeys(suites)
	sort.SliceStable(keys, func(i, j int) bool {
		return keys[i] == "ALL" && keys[j] != "ALL"
	})
	return keys
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
