package hydrastat

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obsv"
)

// GeomeanDelta is one (target, scheme, suite) geomean comparison.
type GeomeanDelta struct {
	Target, Scheme, Suite string
	A, B                  float64
	// Rel is (B-A)/A; negative means B performs worse (lower
	// normalized performance) than A.
	Rel float64
	// Regressed marks deltas where B dropped below A by more than the
	// diff tolerance — the figure-level analogue of a benchgate
	// failure.
	Regressed bool
}

// MetricDelta is one aggregate-metric comparison between two runs of
// the same target.
type MetricDelta struct {
	Target, Name string
	Type         obsv.MetricType
	A, B         float64
	Rel          float64 // (B-A)/A, with A==0 handled as ±Inf for B!=0
}

// DiffReport is the outcome of comparing two report files target by
// target. Regressions gate the hydrastat exit code; metric deltas are
// informational (metric movement is often the *explanation* of a
// geomean movement, not itself a failure).
type DiffReport struct {
	Tolerance float64
	// Geomeans holds every comparable (target, scheme, suite) triple,
	// regressions first, then by |Rel| descending.
	Geomeans []GeomeanDelta
	// Metrics holds aggregate-metric deltas whose |Rel| exceeds the
	// tolerance, by |Rel| descending.
	Metrics []MetricDelta
	// OnlyA / OnlyB list targets present in one file only.
	OnlyA, OnlyB []string
}

// Regressed reports whether any geomean dropped beyond the tolerance.
func (d *DiffReport) Regressed() bool {
	for _, g := range d.Geomeans {
		if g.Regressed {
			return true
		}
	}
	return false
}

// Regressions returns only the failing geomean deltas.
func (d *DiffReport) Regressions() []GeomeanDelta {
	var out []GeomeanDelta
	for _, g := range d.Geomeans {
		if g.Regressed {
			out = append(out, g)
		}
	}
	return out
}

// Diff compares two report files target by target: per-scheme,
// per-suite geomean deltas (a drop beyond tol regresses) and aggregate
// metric deltas beyond tol (informational). Reports are matched by
// Target; a target missing from either side is listed, never an error,
// so partial reruns diff cleanly against full baselines.
func Diff(a, b *obsv.ReportFile, tol float64) *DiffReport {
	if tol < 0 {
		tol = 0
	}
	d := &DiffReport{Tolerance: tol}
	byTarget := func(f *obsv.ReportFile) map[string]*obsv.Report {
		m := map[string]*obsv.Report{}
		for _, r := range f.Reports {
			m[r.Target] = r // last one wins; files normally hold one report per target
		}
		return m
	}
	am, bm := byTarget(a), byTarget(b)
	for _, t := range sortedKeys(am) {
		if _, ok := bm[t]; !ok {
			d.OnlyA = append(d.OnlyA, t)
		}
	}
	for _, t := range sortedKeys(bm) {
		if _, ok := am[t]; !ok {
			d.OnlyB = append(d.OnlyB, t)
		}
	}

	for _, target := range sortedKeys(am) {
		ra, rb := am[target], bm[target]
		if rb == nil {
			continue
		}
		d.diffGeomeans(target, ra, rb, tol)
		d.diffMetrics(target, ra, rb, tol)
	}

	sort.SliceStable(d.Geomeans, func(i, j int) bool {
		gi, gj := d.Geomeans[i], d.Geomeans[j]
		if gi.Regressed != gj.Regressed {
			return gi.Regressed
		}
		return math.Abs(gi.Rel) > math.Abs(gj.Rel)
	})
	sort.SliceStable(d.Metrics, func(i, j int) bool {
		return math.Abs(d.Metrics[i].Rel) > math.Abs(d.Metrics[j].Rel)
	})
	return d
}

func (d *DiffReport) diffGeomeans(target string, ra, rb *obsv.Report, tol float64) {
	for _, scheme := range sortedKeys(ra.Geomeans) {
		sb, ok := rb.Geomeans[scheme]
		if !ok {
			continue
		}
		sa := ra.Geomeans[scheme]
		for _, suite := range sortedKeys(sa) {
			va := sa[suite]
			vb, ok := sb[suite]
			if !ok || va <= 0 {
				continue // a 0 geomean means "no surviving workloads", not comparable
			}
			rel := (vb - va) / va
			d.Geomeans = append(d.Geomeans, GeomeanDelta{
				Target: target, Scheme: scheme, Suite: suite,
				A: va, B: vb, Rel: rel,
				Regressed: vb < va*(1-tol),
			})
		}
	}
}

func (d *DiffReport) diffMetrics(target string, ra, rb *obsv.Report, tol float64) {
	for _, name := range sortedKeys(ra.Metrics) {
		ma := ra.Metrics[name]
		mb, ok := rb.Metrics[name]
		if !ok || ma.Type == obsv.TypeHistogram || mb.Type != ma.Type {
			continue // histograms are summarized, not diffed line-by-line
		}
		rel := 0.0
		switch {
		case ma.Value == mb.Value:
			continue
		case ma.Value == 0:
			rel = math.Inf(sign(mb.Value))
		default:
			rel = (mb.Value - ma.Value) / math.Abs(ma.Value)
		}
		if math.Abs(rel) <= tol {
			continue
		}
		d.Metrics = append(d.Metrics, MetricDelta{
			Target: target, Name: name, Type: ma.Type,
			A: ma.Value, B: mb.Value, Rel: rel,
		})
	}
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Format renders the diff for terminals: regressions first (the lines
// that made the exit code non-zero), then the remaining geomean
// movement, then the metric deltas beyond tolerance.
func (d *DiffReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "geomean deltas (tolerance %.1f%%):\n", d.Tolerance*100)
	if len(d.Geomeans) == 0 {
		b.WriteString("  (no comparable geomeans)\n")
	}
	for _, g := range d.Geomeans {
		status := "ok"
		if g.Regressed {
			status = "REGRESSED"
		}
		fmt.Fprintf(&b, "  %-10s %-14s %-6s %.3f -> %.3f (%+.2f%%)  %s\n",
			g.Target, g.Scheme, g.Suite, g.A, g.B, g.Rel*100, status)
	}
	if len(d.Metrics) > 0 {
		fmt.Fprintf(&b, "metric deltas beyond %.1f%% (informational):\n", d.Tolerance*100)
		for _, m := range d.Metrics {
			fmt.Fprintf(&b, "  %-10s %-28s %g -> %g (%+.1f%%)\n",
				m.Target, m.Name, m.A, m.B, m.Rel*100)
		}
	}
	for _, t := range d.OnlyA {
		fmt.Fprintf(&b, "only in A: %s\n", t)
	}
	for _, t := range d.OnlyB {
		fmt.Fprintf(&b, "only in B: %s\n", t)
	}
	return b.String()
}
