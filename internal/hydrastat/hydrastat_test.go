package hydrastat

import (
	"strings"
	"testing"

	"repro/internal/obsv"
)

// report builds a minimal fig5-shaped report for tests.
func report(target string, hydraAll float64) *obsv.Report {
	r := obsv.NewReport("experiments", target)
	r.ElapsedSec = 2.5
	r.Params = map[string]any{"scale": 16.0, "trh": 500}
	r.Schemes = []string{"hydra", "graphene"}
	r.Geomeans = map[string]map[string]float64{
		"hydra":    {"ALL": hydraAll, "SPEC": hydraAll + 0.01},
		"graphene": {"ALL": 0.995},
	}
	h := obsv.NewHist(8, 64)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v % 70)
	}
	r.Metrics = obsv.Metrics{
		"memsim.reads":       {Type: obsv.TypeCounter, Value: 1000},
		"memsim.activates":   {Type: obsv.TypeCounter, Value: 400},
		"sim.ipc":            {Type: obsv.TypeGauge, Value: 9.5},
		"memsim.readq_depth": {Type: obsv.TypeHistogram, Value: float64(h.N), Hist: &h},
	}
	r.Cells = []obsv.CellStatus{
		{Key: target + "/hydra/parest", Status: obsv.CellOK, Attempts: 1, ElapsedSec: 1.25, Cycles: 3_200_000},
		{Key: target + "/hydra/GUPS", Status: obsv.CellOK, Attempts: 2, ElapsedSec: 0.5, Cycles: 1_000_000},
		{Key: target + "/graphene/parest", Status: obsv.CellCached},
		{Key: target + "/graphene/GUPS", Status: obsv.CellFailed, Error: "boom", Attempts: 3, ElapsedSec: 0.2},
	}
	return r
}

func TestSummarize(t *testing.T) {
	f := obsv.NewReportFile(report("fig5", 0.97))
	out := Summarize(f, 3)
	for _, want := range []string{
		"experiments/fig5",
		"cells: 4 total",
		"2 ok", "1 cached", "1 failed", "2 retried",
		"fig5/hydra/parest", // slowest cell
		"Mcyc/s",
		"geomeans",
		"ALL=0.970",
		"memsim.reads",
		"memsim.readq_depth",
		"p50=", "p95=", "p99=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// The slowest-cells ranking must skip the cached replay.
	if strings.Contains(out, "slow: fig5/graphene/parest") {
		t.Errorf("cached cell ranked as slow:\n%s", out)
	}
}

func TestDiffIdenticalReportsNoRegression(t *testing.T) {
	a := obsv.NewReportFile(report("fig5", 0.97))
	b := obsv.NewReportFile(report("fig5", 0.97))
	d := Diff(a, b, 0.01)
	if d.Regressed() {
		t.Fatalf("identical reports regressed: %+v", d.Regressions())
	}
	if len(d.Geomeans) == 0 {
		t.Fatal("no comparable geomeans found")
	}
	if len(d.Metrics) != 0 {
		t.Errorf("identical reports show metric deltas: %+v", d.Metrics)
	}
	if !strings.Contains(d.Format(), "ok") {
		t.Errorf("format missing ok verdicts:\n%s", d.Format())
	}
}

func TestDiffDetectsGeomeanRegression(t *testing.T) {
	a := obsv.NewReportFile(report("fig5", 0.97))
	b := obsv.NewReportFile(report("fig5", 0.90)) // ~7% drop on hydra
	d := Diff(a, b, 0.01)
	regs := d.Regressions()
	if len(regs) == 0 {
		t.Fatal("7% geomean drop not flagged")
	}
	for _, g := range regs {
		if g.Scheme != "hydra" {
			t.Errorf("unexpected regressed scheme %q", g.Scheme)
		}
		if g.Rel >= 0 {
			t.Errorf("regression with non-negative Rel %v", g.Rel)
		}
	}
	// Regressions sort first.
	if !d.Geomeans[0].Regressed {
		t.Errorf("regressions not ranked first: %+v", d.Geomeans[0])
	}
	if !strings.Contains(d.Format(), "REGRESSED") {
		t.Errorf("format missing REGRESSED:\n%s", d.Format())
	}
	// The same drop within tolerance passes.
	if Diff(a, b, 0.10).Regressed() {
		t.Error("drop within a 10% tolerance still regressed")
	}
}

func TestDiffImprovementIsNotRegression(t *testing.T) {
	a := obsv.NewReportFile(report("fig5", 0.90))
	b := obsv.NewReportFile(report("fig5", 0.97))
	if d := Diff(a, b, 0.01); d.Regressed() {
		t.Errorf("improvement flagged as regression: %+v", d.Regressions())
	}
}

func TestDiffDisjointTargets(t *testing.T) {
	a := obsv.NewReportFile(report("fig5", 0.97))
	b := obsv.NewReportFile(report("fig8", 0.97))
	d := Diff(a, b, 0.01)
	if d.Regressed() {
		t.Error("disjoint targets regressed")
	}
	if len(d.OnlyA) != 1 || d.OnlyA[0] != "fig5" {
		t.Errorf("OnlyA = %v", d.OnlyA)
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0] != "fig8" {
		t.Errorf("OnlyB = %v", d.OnlyB)
	}
	out := d.Format()
	if !strings.Contains(out, "only in A: fig5") || !strings.Contains(out, "only in B: fig8") {
		t.Errorf("format missing only-in lines:\n%s", out)
	}
}

func TestDiffMetricDeltas(t *testing.T) {
	a := obsv.NewReportFile(report("fig5", 0.97))
	b := obsv.NewReportFile(report("fig5", 0.97))
	b.Reports[0].Metrics["memsim.reads"] = obsv.Metric{Type: obsv.TypeCounter, Value: 2000}
	d := Diff(a, b, 0.01)
	if d.Regressed() {
		t.Error("metric movement alone must not regress")
	}
	found := false
	for _, m := range d.Metrics {
		if m.Name == "memsim.reads" && m.Rel == 1.0 {
			found = true
		}
	}
	if !found {
		t.Errorf("doubled counter not reported: %+v", d.Metrics)
	}
}
