package rngstream

import "testing"

// The sites sim.go seeds. Kept in one place so the aliasing test and
// the golden pin cover exactly the labels in production use.
var simSites = []string{
	"sim/chaos",
	"sim/rowswap",
	"tracker/hydra-cipher",
	"tracker/mint",
	"tracker/para",
}

// TestSitesDoNotAlias is the property the package exists for: distinct
// sites under the same cell seed get distinct seeds, including at the
// degenerate cell seeds 0 and ^0.
func TestSitesDoNotAlias(t *testing.T) {
	for _, seed := range []uint64{0, 1, ^uint64(0), 0xdeadbeef} {
		got := map[uint64]string{}
		for _, site := range simSites {
			d := Derive(seed, site)
			if prev, dup := got[d]; dup {
				t.Fatalf("seed %#x: sites %q and %q derive the same stream %#x", seed, prev, site, d)
			}
			got[d] = site
			if d == seed {
				t.Errorf("seed %#x: site %q derived the raw cell seed — aliases every raw-seed consumer", seed, site)
			}
		}
	}
}

// TestSeedsSeparateWithinSite: the same site under different cell seeds
// must give different streams (cells must not share randomness).
func TestSeedsSeparateWithinSite(t *testing.T) {
	for _, site := range simSites {
		if Derive(1, site) == Derive(2, site) {
			t.Fatalf("site %q: cell seeds 1 and 2 derive the same stream", site)
		}
	}
}

func TestDeriveNonzero(t *testing.T) {
	for seed := uint64(0); seed < 1000; seed++ {
		if DeriveNonzero(seed, "x") == 0 {
			t.Fatalf("DeriveNonzero returned 0 for seed %d", seed)
		}
	}
}

// TestDeriveGolden pins Derive's exact outputs. Derive is part of every
// simulation's semantics: changing it silently changes what each Seed
// computes, which must come with a CacheKeyVersion bump (see
// internal/sim/cachekey.go) — this pin makes the change loud.
func TestDeriveGolden(t *testing.T) {
	golden := []struct {
		seed uint64
		site string
		want uint64
	}{
		{0x0, "sim/chaos", 0x6448bd6c3759d947},
		{0x0, "sim/rowswap", 0x1a545689b321f80a},
		{0x1, "sim/chaos", 0x1cc89a0d85644b8f},
		{0x1, "tracker/para", 0x18b17776ac63f3a5},
		{0xdeadbeef, "tracker/hydra-cipher", 0x36f4699a5bd7bfe8},
		{0xdeadbeef, "tracker/mint", 0x302416affccae127},
	}
	for _, g := range golden {
		if got := Derive(g.seed, g.site); got != g.want {
			t.Errorf("Derive(%#x, %q) = %#x, want %#x — if intentional, bump sim.CacheKeyVersion",
				g.seed, g.site, got, g.want)
		}
	}
}
