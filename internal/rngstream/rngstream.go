// Package rngstream derives independent per-site PRNG seeds from a
// single cell seed.
//
// A simulation cell owns one Seed, but several components inside it
// need private randomness: the PARA coin-flipper, MINT's interval
// sampler, the Hydra address cipher, the row-swap policy, the chaos
// injector. Handing each of them the raw cell seed aliases their
// streams — two generators stepping the same recurrence from the same
// state produce correlated (here: identical) sequences, so e.g. PARA's
// mitigation coin flips line up with MINT's interval picks and the
// measured failure rates are not independent draws at all.
//
// Derive folds a site label into the seed so every site gets its own
// stream, while a cell's behaviour remains a pure function of
// (Seed, site): same cell seed, same site, same stream — across
// processes and runs.
package rngstream

// fnv1a hashes the site label (FNV-1a 64-bit).
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche bijection,
// so distinct inputs map to distinct outputs and a one-bit change in
// the seed or label flips about half the output bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive returns the seed for the named site within the cell identified
// by seed. Two rounds of mixing: one over the label hash alone (so
// seed=0 still separates sites), one folding in the cell seed.
func Derive(seed uint64, site string) uint64 {
	return splitmix64(splitmix64(fnv1a(site)) ^ seed)
}

// DeriveNonzero is Derive for consumers whose generator state must not
// be zero (xorshift-family recurrences are stuck at 0 forever). The
// low bit is forced on, matching the convention the chaos injector
// used before this package existed.
func DeriveNonzero(seed uint64, site string) uint64 {
	return Derive(seed, site) | 1
}
