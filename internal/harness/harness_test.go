package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func keys(n int) []string {
	var ks []string
	for i := 0; i < n; i++ {
		ks = append(ks, fmt.Sprintf("exp/variant%d/wl", i))
	}
	return ks
}

func TestPanicIsolation(t *testing.T) {
	var cells []Cell
	for i, k := range keys(6) {
		i, k := i, k
		cells = append(cells, Cell{Key: k, Run: func(ctx context.Context, env Env) (any, error) {
			if i == 3 {
				panic("injected fault in variant 3")
			}
			return i * 10, nil
		}})
	}
	results, err := RunCampaign(context.Background(), cells, Options{Workers: 2})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	for i, r := range results {
		if i == 3 {
			if r.Err == nil || !r.Panicked {
				t.Fatalf("cell 3: want recovered panic, got %+v", r)
			}
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("cell 3 error is not a *PanicError: %v", r.Err)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("panic error lost its stack")
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("cell %d failed alongside the panicking cell: %v", i, r.Err)
		}
		if r.Value != i*10 {
			t.Fatalf("cell %d value = %v, want %d", i, r.Value, i*10)
		}
	}
}

func TestWatchdogKillsStalledCell(t *testing.T) {
	cells := []Cell{
		{Key: "ok", Run: func(ctx context.Context, env Env) (any, error) {
			for c := int64(0); c < 50; c++ {
				env.Progress(c)
				time.Sleep(time.Millisecond)
			}
			return "done", nil
		}},
		{Key: "stuck", Run: func(ctx context.Context, env Env) (any, error) {
			// Simulated cycles stop advancing: repeated reports of the
			// same value must not keep the cell alive.
			for {
				env.Progress(7)
				select {
				case <-ctx.Done():
					return nil, context.Cause(ctx)
				case <-time.After(time.Millisecond):
				}
			}
		}},
	}
	results, err := RunCampaign(context.Background(), cells, Options{StallTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if results[0].Err != nil || results[0].Value != "done" {
		t.Fatalf("healthy cell disturbed: %+v", results[0])
	}
	if !errors.Is(results[1].Err, ErrStalled) || !results[1].Stalled {
		t.Fatalf("stuck cell: want ErrStalled, got %+v", results[1])
	}
}

func TestCellTimeout(t *testing.T) {
	cells := []Cell{{Key: "slow", Run: func(ctx context.Context, env Env) (any, error) {
		for c := int64(0); ; c++ {
			env.Progress(c) // advancing, so only the wall clock can stop it
			select {
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			case <-time.After(time.Millisecond):
			}
		}
	}}}
	results, err := RunCampaign(context.Background(), cells,
		Options{CellTimeout: 30 * time.Millisecond, StallTimeout: time.Second})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if results[0].Err == nil {
		t.Fatal("timeout did not kill the cell")
	}
}

func TestRetryWithReseed(t *testing.T) {
	var attempts atomic.Int64
	cells := []Cell{{Key: "flaky", Run: func(ctx context.Context, env Env) (any, error) {
		attempts.Add(1)
		if env.Attempt < 2 {
			return nil, fmt.Errorf("seed-dependent failure at attempt %d", env.Attempt)
		}
		return env.Attempt, nil
	}}}
	results, err := RunCampaign(context.Background(), cells,
		Options{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatalf("retries did not rescue the cell: %v", r.Err)
	}
	if r.Value != 2 || r.Attempts != 3 || attempts.Load() != 3 {
		t.Fatalf("want success on attempt index 2 after 3 attempts, got %+v (ran %d)", r, attempts.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	cells := []Cell{{Key: "doomed", Run: func(ctx context.Context, env Env) (any, error) {
		return nil, errors.New("deterministic failure")
	}}}
	results, err := RunCampaign(context.Background(), cells,
		Options{Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if results[0].Err == nil || results[0].Attempts != 3 {
		t.Fatalf("want 3 failed attempts, got %+v", results[0])
	}
}

func TestCampaignValidation(t *testing.T) {
	run := func(ctx context.Context, env Env) (any, error) { return nil, nil }
	if _, err := RunCampaign(context.Background(),
		[]Cell{{Key: "a", Run: run}, {Key: "a", Run: run}}, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := RunCampaign(context.Background(), []Cell{{Key: "", Run: run}}, Options{}); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := RunCampaign(context.Background(), []Cell{{Key: "a"}}, Options{}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var cells []Cell
	cells = append(cells, Cell{Key: "running", Run: func(ctx context.Context, env Env) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	for _, k := range keys(4) {
		cells = append(cells, Cell{Key: k, Run: func(ctx context.Context, env Env) (any, error) {
			return nil, nil
		}})
	}
	go func() {
		<-started
		cancel()
	}()
	results, err := RunCampaign(ctx, cells, Options{Workers: 1})
	if err == nil {
		t.Fatal("cancelled campaign reported success")
	}
	if len(results) != len(cells) {
		t.Fatalf("want %d results even on abort, got %d", len(cells), len(results))
	}
	for _, r := range results {
		if r.Key == "" {
			t.Fatal("abandoned cell left without a key/verdict")
		}
	}
}

type cellValue struct {
	IPC  float64 `json:"ipc"`
	Note string  `json:"note"`
}

func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	decode := func(key string, raw json.RawMessage) (any, error) {
		var v cellValue
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
	mkCells := func(ran *atomic.Int64, failKey string) []Cell {
		var cells []Cell
		for _, k := range keys(4) {
			k := k
			cells = append(cells, Cell{Key: k, Run: func(ctx context.Context, env Env) (any, error) {
				ran.Add(1)
				if k == failKey {
					return nil, errors.New("injected failure")
				}
				return cellValue{IPC: 1.5, Note: k}, nil
			}})
		}
		return cells
	}

	// First pass: one cell fails, three are checkpointed.
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.Decode = decode
	var ran1 atomic.Int64
	results, err := RunCampaign(context.Background(), mkCells(&ran1, "exp/variant1/wl"),
		Options{Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if ran1.Load() != 4 || cp.Len() != 3 {
		t.Fatalf("first pass: ran %d cells, checkpointed %d; want 4 and 3", ran1.Load(), cp.Len())
	}
	if results[1].Err == nil {
		t.Fatal("failed cell stored as success")
	}

	// Second pass from a fresh process: only the failed cell reruns.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp2.Decode = decode
	var ran2 atomic.Int64
	results, err = RunCampaign(context.Background(), mkCells(&ran2, ""),
		Options{Checkpoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	if ran2.Load() != 1 {
		t.Fatalf("resume recomputed %d cells, want 1", ran2.Load())
	}
	for i, r := range results {
		v, ok := r.Value.(cellValue)
		if !ok || v.IPC != 1.5 {
			t.Fatalf("cell %d: bad restored value %+v", i, r.Value)
		}
		if wantRestored := i != 1; r.Restored != wantRestored {
			t.Fatalf("cell %d: Restored = %v, want %v", i, r.Restored, wantRestored)
		}
	}
	if cp2.Len() != 4 {
		t.Fatalf("after resume checkpoint holds %d cells, want 4", cp2.Len())
	}
}

func TestCheckpointQuarantinesWrongSchema(t *testing.T) {
	// A corrupt or foreign-schema checkpoint must not wedge a resume:
	// it is moved aside to <path>.corrupt, the campaign restarts empty,
	// and Recovered reports what happened.
	for name, content := range map[string]string{
		"wrong-schema": `{"schema":"hydra-checkpoint/v999","cells":{"k":{}}}`,
		"not-json":     `{not json`,
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "checkpoint.json")
			if err := writeFile(path, content); err != nil {
				t.Fatal(err)
			}
			cp, err := OpenCheckpoint(path)
			if err != nil {
				t.Fatalf("corrupt checkpoint fatal: %v", err)
			}
			if cp.Len() != 0 {
				t.Fatalf("recovered checkpoint holds %d cells, want 0", cp.Len())
			}
			if cp.Recovered() == "" {
				t.Fatal("Recovered() empty after quarantine")
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("corrupt file not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file still at original path (err=%v)", err)
			}
			// The recovered checkpoint must be usable.
			if err := cp.Store("k", cellValue{IPC: 1}); err != nil {
				t.Fatalf("Store after recovery: %v", err)
			}
			reopened, err := OpenCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if reopened.Recovered() != "" || reopened.Len() != 1 {
				t.Fatalf("reopen: recovered=%q len=%d, want clean 1-cell checkpoint",
					reopened.Recovered(), reopened.Len())
			}
		})
	}
}

func TestCheckpointCorruptEntryRecomputes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := writeFile(path, `{"schema":"hydra-checkpoint/v1","cells":{"k":"not-an-object"}}`); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.Decode = func(key string, raw json.RawMessage) (any, error) {
		var v cellValue
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
	ran := false
	results, err := RunCampaign(context.Background(), []Cell{{
		Key: "k",
		Run: func(ctx context.Context, env Env) (any, error) { ran = true; return cellValue{IPC: 2}, nil },
	}}, Options{Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || results[0].Err != nil || results[0].Restored {
		t.Fatalf("corrupt entry should force a recompute: ran=%v %+v", ran, results[0])
	}
}

// TestCheckpointConcurrentStores hammers Store from many goroutines
// and verifies the on-disk file ends up with every cell: snapshots are
// taken under the cell lock and written newest-first, so racing
// writers cannot roll the file back to a stale state.
func TestCheckpointConcurrentStores(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cp.Store(fmt.Sprintf("cell-%02d", i), cellValue{IPC: float64(i)}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cp.Len() != n {
		t.Fatalf("in-memory cells = %d, want %d", cp.Len(), n)
	}
	// Re-open from disk: the surviving snapshot must contain all cells.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Len() != n {
		t.Fatalf("on-disk cells = %d, want %d", cp2.Len(), n)
	}
}
