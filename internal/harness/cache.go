package harness

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/iofault"
)

// CellCacheSchema identifies the on-disk cache entry format. Entries
// with any other schema are ignored (and re-simulated), so the format
// can evolve without a migration step.
const CellCacheSchema = "hydra-cell-cache/v1"

// QuarantineDir is the subdirectory of the cache where corrupt entries
// are moved (never deleted) so operators can inspect what went wrong.
const QuarantineDir = "quarantine"

// cacheEntryFile is the on-disk layout of one cached cell: the content
// hash it is addressed by, the cell key that first computed it (pure
// provenance — many cell keys may share one hash), the wall-clock cost
// of computing it, the last-access time the GC janitor orders eviction
// by, and the JSON-encoded value.
type cacheEntryFile struct {
	Schema      string          `json:"schema"`
	Hash        string          `json:"hash"`
	Key         string          `json:"key"`
	CostNs      int64           `json:"cost_ns"`
	AtimeUnixNs int64           `json:"atime_unix_ns,omitempty"`
	Value       json.RawMessage `json:"value"`
}

// CacheStats counts cache traffic. All fields accumulate over the
// cache's lifetime; use Delta to attribute traffic to one campaign.
type CacheStats struct {
	Hits     int64 // lookups answered without running the cell
	MemHits  int64 // ... from the in-memory tier
	DiskHits int64 // ... decoded from the on-disk tier
	Misses   int64 // lookups that fell through to simulation
	Stores   int64 // newly computed cells recorded

	BytesRead    int64 // on-disk entry bytes decoded on hits
	BytesWritten int64 // on-disk entry bytes written on stores

	CorruptDropped int64 // unreadable disk entries detected (re-simulated)
	StoreErrors    int64 // disk writes that failed (entry stays in memory)

	Evicted     int64 // disk entries removed by the byte-budget janitor
	Quarantined int64 // corrupt disk entries moved to quarantine/
}

// Delta returns s minus prev, field-wise.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:           s.Hits - prev.Hits,
		MemHits:        s.MemHits - prev.MemHits,
		DiskHits:       s.DiskHits - prev.DiskHits,
		Misses:         s.Misses - prev.Misses,
		Stores:         s.Stores - prev.Stores,
		BytesRead:      s.BytesRead - prev.BytesRead,
		BytesWritten:   s.BytesWritten - prev.BytesWritten,
		CorruptDropped: s.CorruptDropped - prev.CorruptDropped,
		StoreErrors:    s.StoreErrors - prev.StoreErrors,
		Evicted:        s.Evicted - prev.Evicted,
		Quarantined:    s.Quarantined - prev.Quarantined,
	}
}

type memEntry struct {
	value any
	cost  time.Duration
}

// diskEntry is the janitor's view of one on-disk entry: its size in
// bytes and the last-access time eviction is ordered by.
type diskEntry struct {
	size  int64
	atime int64 // unix ns
}

// CellCache is the content-addressed result cache under the campaign
// runner. Cells are addressed by Cell.CacheKey — a canonical hash of
// everything that determines the cell's outcome (see sim.Config
// CacheKey) — so identical work is simulated once and replayed
// everywhere else, within a run and, with a directory, across runs.
//
// Two tiers:
//
//   - the in-memory tier holds decoded values and dedupes identical
//     cells within one process (e.g. the non-secure baseline shared by
//     every figure of `experiments all`);
//   - the optional on-disk tier (one JSON file per entry, written via
//     iofault.WriteAtomic — temp file, fsync, rename, directory fsync)
//     survives across runs. Corrupt, truncated or foreign-schema
//     entries are moved to quarantine/ and counted, never fatal and
//     never silently discarded.
//
// With SetMaxBytes the disk tier is budget-capped: a janitor evicts
// least-recently-used entries (by the atime recorded in the envelope,
// refreshed on every disk hit) until the tier fits. The quarantine
// directory does not count against the budget and is never evicted.
//
// The cache also records each computed cell's wall-clock cost — by
// content hash and by cell key — which the campaign runner uses to
// order work longest-processing-time-first (see RunCampaign).
//
// Safe for concurrent use by campaign workers.
type CellCache struct {
	// Decode rebuilds a value from its stored JSON, exactly like
	// Checkpoint.Decode (results cross the harness as `any`). When nil,
	// on-disk entries cannot be rebuilt and count as misses; the
	// in-memory tier still works.
	Decode func(key string, raw json.RawMessage) (any, error)

	dir  string // "" = memory-only
	fsys iofault.FS
	now  func() time.Time // injectable clock for janitor tests

	mu        sync.Mutex
	mem       map[string]memEntry
	costByKey map[string]time.Duration
	stats     CacheStats

	// dmu serializes disk-tier mutations (stores, atime refreshes,
	// eviction, quarantine) and guards the janitor's index, keeping the
	// hot in-memory tier off the disk lock.
	dmu       sync.Mutex
	maxBytes  int64 // 0 = unbounded
	diskIndex map[string]diskEntry
	diskBytes int64
}

// NewCellCache opens a cache over the real filesystem. See
// NewCellCacheFS.
func NewCellCache(dir string) (*CellCache, error) {
	return NewCellCacheFS(dir, iofault.OS{})
}

// NewCellCacheFS opens a cache whose disk tier performs all IO through
// fsys — iofault.OS{} in production, an iofault.Injector under the
// crash-point sweep. With a non-empty dir the on-disk tier is enabled:
// the directory is created if missing, existing entries' recorded
// costs are preloaded so the very first campaign of a process can
// already schedule longest-first from prior runs' timings, and corrupt
// entries found during the scan are quarantined immediately.
func NewCellCacheFS(dir string, fsys iofault.FS) (*CellCache, error) {
	c := &CellCache{
		dir:       dir,
		fsys:      fsys,
		now:       time.Now,
		mem:       make(map[string]memEntry),
		costByKey: make(map[string]time.Duration),
		diskIndex: make(map[string]diskEntry),
	}
	if dir == "" {
		return c, nil
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: creating cache dir: %w", err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("harness: reading cache dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		hash := strings.TrimSuffix(e.Name(), ".json")
		var ef cacheEntryFile
		if json.Unmarshal(data, &ef) != nil || ef.Schema != CellCacheSchema || ef.Hash != hash || ef.Key == "" {
			c.quarantine(e.Name())
			continue
		}
		c.costByKey[ef.Key] = time.Duration(ef.CostNs)
		atime := ef.AtimeUnixNs
		if atime == 0 {
			if info, ierr := e.Info(); ierr == nil {
				atime = info.ModTime().UnixNano()
			}
		}
		c.diskIndex[hash] = diskEntry{size: int64(len(data)), atime: atime}
		c.diskBytes += int64(len(data))
	}
	return c, nil
}

// Dir returns the on-disk tier's directory ("" when memory-only).
func (c *CellCache) Dir() string { return c.dir }

// SetMaxBytes caps the disk tier at n bytes (0 restores unbounded) and
// immediately evicts least-recently-used entries until the tier fits.
// The budget is hard: an entry larger than n on its own is evicted
// right after being written (its value stays in the memory tier).
func (c *CellCache) SetMaxBytes(n int64) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.maxBytes = n
	c.evictLocked()
}

// Len reports the number of entries in the in-memory tier.
func (c *CellCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// DiskBytes reports the janitor's accounting of the on-disk tier
// (excluding quarantine).
func (c *CellCache) DiskBytes() int64 {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	return c.diskBytes
}

// Stats returns a snapshot of the cache counters.
func (c *CellCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *CellCache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// quarantine moves a corrupt entry file into QuarantineDir and bumps
// the counters. Failures to move are still counted as corruption but
// leave the file in place (best effort — quarantine must never be the
// thing that fails a campaign). Callers must not hold dmu or mu.
func (c *CellCache) quarantine(name string) {
	moved := false
	if err := c.fsys.MkdirAll(filepath.Join(c.dir, QuarantineDir), 0o755); err == nil {
		moved = c.fsys.Rename(filepath.Join(c.dir, name), filepath.Join(c.dir, QuarantineDir, name)) == nil
	}
	c.mu.Lock()
	c.stats.CorruptDropped++
	if moved {
		c.stats.Quarantined++
	}
	c.mu.Unlock()
}

// dropFromIndex forgets an on-disk entry (it was evicted, quarantined,
// or replaced) and returns its previous accounting entry.
func (c *CellCache) dropFromIndex(hash string) {
	c.dmu.Lock()
	if e, ok := c.diskIndex[hash]; ok {
		c.diskBytes -= e.size
		delete(c.diskIndex, hash)
	}
	c.dmu.Unlock()
}

// evictLocked removes least-recently-used entries until the disk tier
// fits the budget. Ties on atime break by hash so eviction order is
// deterministic. Caller holds dmu.
func (c *CellCache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	var evicted int64
	for c.diskBytes > c.maxBytes && len(c.diskIndex) > 0 {
		victim := ""
		var ve diskEntry
		for h, e := range c.diskIndex {
			if victim == "" || e.atime < ve.atime || (e.atime == ve.atime && h < victim) {
				victim, ve = h, e
			}
		}
		c.fsys.Remove(c.path(victim)) //nolint:errcheck // best effort; accounting moves on
		c.diskBytes -= ve.size
		delete(c.diskIndex, victim)
		evicted++
	}
	if evicted > 0 {
		c.mu.Lock()
		c.stats.Evicted += evicted
		c.mu.Unlock()
	}
}

// Lookup resolves a content hash: the in-memory tier first, then the
// on-disk tier (whose decoded value is promoted into memory and whose
// recorded atime is refreshed for the janitor). A corrupt or
// undecodable disk entry is counted, quarantined and reported as a
// miss — the caller re-simulates and Store overwrites the entry.
func (c *CellCache) Lookup(hash string) (any, bool) {
	if hash == "" {
		return nil, false
	}
	c.mu.Lock()
	if e, ok := c.mem[hash]; ok {
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		return e.value, true
	}
	c.mu.Unlock()

	if c.dir == "" || c.Decode == nil {
		c.miss()
		return nil, false
	}
	data, err := c.fsys.ReadFile(c.path(hash))
	if err != nil {
		c.miss()
		return nil, false
	}
	var ef cacheEntryFile
	if err := json.Unmarshal(data, &ef); err != nil || ef.Schema != CellCacheSchema || ef.Hash != hash {
		c.dropFromIndex(hash)
		c.quarantine(hash + ".json")
		c.miss()
		return nil, false
	}
	v, err := c.Decode(ef.Key, ef.Value)
	if err != nil {
		c.dropFromIndex(hash)
		c.quarantine(hash + ".json")
		c.miss()
		return nil, false
	}
	c.mu.Lock()
	c.mem[hash] = memEntry{value: v, cost: time.Duration(ef.CostNs)}
	if ef.Key != "" {
		c.costByKey[ef.Key] = time.Duration(ef.CostNs)
	}
	c.stats.Hits++
	c.stats.DiskHits++
	c.stats.BytesRead += int64(len(data))
	c.mu.Unlock()
	c.touch(hash, ef)
	return v, true
}

// touch refreshes an entry's recorded atime after a disk hit so the
// janitor's LRU order tracks real access, not just store order. Best
// effort: a failed rewrite leaves the old (still valid) entry.
func (c *CellCache) touch(hash string, ef cacheEntryFile) {
	ef.AtimeUnixNs = c.now().UnixNano()
	data, err := json.Marshal(ef)
	if err != nil {
		return
	}
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if _, ok := c.diskIndex[hash]; !ok {
		return // evicted or quarantined since the read; don't resurrect
	}
	if err := iofault.WriteAtomic(c.fsys, c.path(hash), append(data, '\n')); err != nil {
		return
	}
	old := c.diskIndex[hash]
	c.diskBytes += int64(len(data)) + 1 - old.size
	c.diskIndex[hash] = diskEntry{size: int64(len(data)) + 1, atime: ef.AtimeUnixNs}
	c.evictLocked()
}

func (c *CellCache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// Cost returns the recorded wall-clock cost for a cell: exact when the
// content hash was computed before (this process or, with a disk tier,
// a prior run), otherwise the last cost recorded under the same cell
// key (same target/variant/workload at different knobs — the right
// prior for LPT ordering when a sweep's parameters change).
func (c *CellCache) Cost(hash, key string) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[hash]; ok && e.cost > 0 {
		return e.cost, true
	}
	if d, ok := c.costByKey[key]; ok && d > 0 {
		return d, true
	}
	return 0, false
}

// SeedCosts preloads per-cell-key wall-clock costs into the LPT
// scheduler's recorded-cost table without touching the value tiers.
// This is how a prior campaign's run report — which records ElapsedSec
// for every cell, not just the cacheable ones — becomes scheduling
// data for the next run (cmd/experiments -costs-from). Non-positive
// costs are ignored; existing entries are overwritten, on the theory
// that the caller is feeding fresher timings.
func (c *CellCache) SeedCosts(costs map[string]time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, d := range costs {
		if key != "" && d > 0 {
			c.costByKey[key] = d
		}
	}
}

// Store records a newly computed cell under its content hash, with the
// wall-clock cost of the attempt that produced it. The value must be
// JSON-marshalable when the disk tier is enabled. Disk-write failures
// are counted and returned but leave the in-memory entry in place —
// a full cache disk never fails a campaign. When a byte budget is set,
// the janitor runs after the write.
func (c *CellCache) Store(hash, key string, v any, cost time.Duration) error {
	if hash == "" {
		return nil
	}
	c.mu.Lock()
	c.mem[hash] = memEntry{value: v, cost: cost}
	if key != "" {
		c.costByKey[key] = cost
	}
	c.stats.Stores++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}

	raw, err := json.Marshal(v)
	if err != nil {
		c.storeErr()
		return fmt.Errorf("harness: encoding cache entry %q: %w", key, err)
	}
	atime := c.now().UnixNano()
	data, err := json.Marshal(cacheEntryFile{
		Schema: CellCacheSchema, Hash: hash, Key: key, CostNs: int64(cost),
		AtimeUnixNs: atime, Value: raw,
	})
	if err != nil {
		c.storeErr()
		return fmt.Errorf("harness: encoding cache entry %q: %w", key, err)
	}
	c.dmu.Lock()
	if err := iofault.WriteAtomic(c.fsys, c.path(hash), append(data, '\n')); err != nil {
		c.dmu.Unlock()
		c.storeErr()
		return fmt.Errorf("harness: writing cache entry %q: %w", key, err)
	}
	old := c.diskIndex[hash]
	c.diskBytes += int64(len(data)) + 1 - old.size
	c.diskIndex[hash] = diskEntry{size: int64(len(data)) + 1, atime: atime}
	c.evictLocked()
	c.dmu.Unlock()
	c.mu.Lock()
	c.stats.BytesWritten += int64(len(data)) + 1
	c.mu.Unlock()
	return nil
}

func (c *CellCache) storeErr() {
	c.mu.Lock()
	c.stats.StoreErrors++
	c.mu.Unlock()
}
