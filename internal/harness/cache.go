package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// CellCacheSchema identifies the on-disk cache entry format. Entries
// with any other schema are ignored (and re-simulated), so the format
// can evolve without a migration step.
const CellCacheSchema = "hydra-cell-cache/v1"

// cacheEntryFile is the on-disk layout of one cached cell: the content
// hash it is addressed by, the cell key that first computed it (pure
// provenance — many cell keys may share one hash), the wall-clock cost
// of computing it, and the JSON-encoded value.
type cacheEntryFile struct {
	Schema string          `json:"schema"`
	Hash   string          `json:"hash"`
	Key    string          `json:"key"`
	CostNs int64           `json:"cost_ns"`
	Value  json.RawMessage `json:"value"`
}

// CacheStats counts cache traffic. All fields accumulate over the
// cache's lifetime; use Delta to attribute traffic to one campaign.
type CacheStats struct {
	Hits     int64 // lookups answered without running the cell
	MemHits  int64 // ... from the in-memory tier
	DiskHits int64 // ... decoded from the on-disk tier
	Misses   int64 // lookups that fell through to simulation
	Stores   int64 // newly computed cells recorded

	BytesRead    int64 // on-disk entry bytes decoded on hits
	BytesWritten int64 // on-disk entry bytes written on stores

	CorruptDropped int64 // unreadable disk entries discarded (re-simulated)
	StoreErrors    int64 // disk writes that failed (entry stays in memory)
}

// Delta returns s minus prev, field-wise.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:           s.Hits - prev.Hits,
		MemHits:        s.MemHits - prev.MemHits,
		DiskHits:       s.DiskHits - prev.DiskHits,
		Misses:         s.Misses - prev.Misses,
		Stores:         s.Stores - prev.Stores,
		BytesRead:      s.BytesRead - prev.BytesRead,
		BytesWritten:   s.BytesWritten - prev.BytesWritten,
		CorruptDropped: s.CorruptDropped - prev.CorruptDropped,
		StoreErrors:    s.StoreErrors - prev.StoreErrors,
	}
}

type memEntry struct {
	value any
	cost  time.Duration
}

// CellCache is the content-addressed result cache under the campaign
// runner. Cells are addressed by Cell.CacheKey — a canonical hash of
// everything that determines the cell's outcome (see sim.Config
// CacheKey) — so identical work is simulated once and replayed
// everywhere else, within a run and, with a directory, across runs.
//
// Two tiers:
//
//   - the in-memory tier holds decoded values and dedupes identical
//     cells within one process (e.g. the non-secure baseline shared by
//     every figure of `experiments all`);
//   - the optional on-disk tier (one JSON file per entry, written via
//     the same atomic write-then-rename discipline as Checkpoint)
//     survives across runs. Corrupt, truncated or foreign-schema
//     entries are discarded and recomputed, never fatal.
//
// The cache also records each computed cell's wall-clock cost — by
// content hash and by cell key — which the campaign runner uses to
// order work longest-processing-time-first (see RunCampaign).
//
// Safe for concurrent use by campaign workers.
type CellCache struct {
	// Decode rebuilds a value from its stored JSON, exactly like
	// Checkpoint.Decode (results cross the harness as `any`). When nil,
	// on-disk entries cannot be rebuilt and count as misses; the
	// in-memory tier still works.
	Decode func(key string, raw json.RawMessage) (any, error)

	dir string // "" = memory-only

	mu        sync.Mutex
	mem       map[string]memEntry
	costByKey map[string]time.Duration
	stats     CacheStats
}

// NewCellCache opens a cache. With a non-empty dir the on-disk tier is
// enabled: the directory is created if missing and existing entries'
// recorded costs are preloaded so the very first campaign of a process
// can already schedule longest-first from prior runs' timings.
func NewCellCache(dir string) (*CellCache, error) {
	c := &CellCache{
		dir:       dir,
		mem:       make(map[string]memEntry),
		costByKey: make(map[string]time.Duration),
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: creating cache dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("harness: reading cache dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var ef cacheEntryFile
		if json.Unmarshal(data, &ef) != nil || ef.Schema != CellCacheSchema || ef.Key == "" {
			continue // corrupt or foreign; Lookup will discard it too
		}
		c.costByKey[ef.Key] = time.Duration(ef.CostNs)
	}
	return c, nil
}

// Dir returns the on-disk tier's directory ("" when memory-only).
func (c *CellCache) Dir() string { return c.dir }

// Len reports the number of entries in the in-memory tier.
func (c *CellCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Stats returns a snapshot of the cache counters.
func (c *CellCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *CellCache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// Lookup resolves a content hash: the in-memory tier first, then the
// on-disk tier (whose decoded value is promoted into memory). A
// corrupt or undecodable disk entry is counted, discarded and reported
// as a miss — the caller re-simulates and Store overwrites the entry.
func (c *CellCache) Lookup(hash string) (any, bool) {
	if hash == "" {
		return nil, false
	}
	c.mu.Lock()
	if e, ok := c.mem[hash]; ok {
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		return e.value, true
	}
	c.mu.Unlock()

	if c.dir == "" || c.Decode == nil {
		c.miss()
		return nil, false
	}
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		c.miss()
		return nil, false
	}
	var ef cacheEntryFile
	if err := json.Unmarshal(data, &ef); err != nil || ef.Schema != CellCacheSchema || ef.Hash != hash {
		c.mu.Lock()
		c.stats.CorruptDropped++
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	v, err := c.Decode(ef.Key, ef.Value)
	if err != nil {
		c.mu.Lock()
		c.stats.CorruptDropped++
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.mem[hash] = memEntry{value: v, cost: time.Duration(ef.CostNs)}
	if ef.Key != "" {
		c.costByKey[ef.Key] = time.Duration(ef.CostNs)
	}
	c.stats.Hits++
	c.stats.DiskHits++
	c.stats.BytesRead += int64(len(data))
	c.mu.Unlock()
	return v, true
}

func (c *CellCache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// Cost returns the recorded wall-clock cost for a cell: exact when the
// content hash was computed before (this process or, with a disk tier,
// a prior run), otherwise the last cost recorded under the same cell
// key (same target/variant/workload at different knobs — the right
// prior for LPT ordering when a sweep's parameters change).
func (c *CellCache) Cost(hash, key string) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[hash]; ok && e.cost > 0 {
		return e.cost, true
	}
	if d, ok := c.costByKey[key]; ok && d > 0 {
		return d, true
	}
	return 0, false
}

// SeedCosts preloads per-cell-key wall-clock costs into the LPT
// scheduler's recorded-cost table without touching the value tiers.
// This is how a prior campaign's run report — which records ElapsedSec
// for every cell, not just the cacheable ones — becomes scheduling
// data for the next run (cmd/experiments -costs-from). Non-positive
// costs are ignored; existing entries are overwritten, on the theory
// that the caller is feeding fresher timings.
func (c *CellCache) SeedCosts(costs map[string]time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, d := range costs {
		if key != "" && d > 0 {
			c.costByKey[key] = d
		}
	}
}

// Store records a newly computed cell under its content hash, with the
// wall-clock cost of the attempt that produced it. The value must be
// JSON-marshalable when the disk tier is enabled. Disk-write failures
// are counted and returned but leave the in-memory entry in place —
// a full cache disk never fails a campaign.
func (c *CellCache) Store(hash, key string, v any, cost time.Duration) error {
	if hash == "" {
		return nil
	}
	c.mu.Lock()
	c.mem[hash] = memEntry{value: v, cost: cost}
	if key != "" {
		c.costByKey[key] = cost
	}
	c.stats.Stores++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}

	raw, err := json.Marshal(v)
	if err != nil {
		c.storeErr()
		return fmt.Errorf("harness: encoding cache entry %q: %w", key, err)
	}
	data, err := json.Marshal(cacheEntryFile{
		Schema: CellCacheSchema, Hash: hash, Key: key, CostNs: int64(cost), Value: raw,
	})
	if err != nil {
		c.storeErr()
		return fmt.Errorf("harness: encoding cache entry %q: %w", key, err)
	}
	if err := atomicWrite(c.path(hash), append(data, '\n')); err != nil {
		c.storeErr()
		return fmt.Errorf("harness: writing cache entry %q: %w", key, err)
	}
	c.mu.Lock()
	c.stats.BytesWritten += int64(len(data)) + 1
	c.mu.Unlock()
	return nil
}

func (c *CellCache) storeErr() {
	c.mu.Lock()
	c.stats.StoreErrors++
	c.mu.Unlock()
}

// atomicWrite lands data at path via temp-file + fsync + rename, the
// same crash discipline as Checkpoint.Store: a crash mid-write leaves
// either the previous entry or none, never a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
