package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// CheckpointSchema identifies the checkpoint file format.
const CheckpointSchema = "hydra-checkpoint/v1"

// checkpointFile is the on-disk layout: a schema tag and the completed
// cells, keyed by Cell.Key, each value the cell's JSON-encoded result.
type checkpointFile struct {
	Schema string                     `json:"schema"`
	Cells  map[string]json.RawMessage `json:"cells"`
}

// Checkpoint persists completed cells so an interrupted campaign can
// resume. Values are stored as raw JSON; set Decode so Restore can
// rebuild the caller's concrete type (results cross the harness as
// `any`). Safe for concurrent use by campaign workers. Every Store
// rewrites the file via an atomic rename, so a crash mid-campaign
// leaves the previous consistent snapshot.
type Checkpoint struct {
	// Decode rebuilds a cell value from its stored JSON. When nil,
	// Restore reports a miss for every key (the campaign recomputes).
	Decode func(key string, raw json.RawMessage) (any, error)

	mu    sync.Mutex
	path  string
	cells map[string]json.RawMessage
	gen   uint64 // bumped on every mutation of cells

	// ioMu serializes file writes; wroteGen is the generation of the
	// snapshot currently on disk, so a writer that lost the race to a
	// newer snapshot skips its write instead of rolling the file back.
	ioMu     sync.Mutex
	wroteGen uint64
}

// OpenCheckpoint loads the checkpoint at path, creating an empty one
// (in memory only; the file appears on first Store) if none exists.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, cells: make(map[string]json.RawMessage)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("harness: parsing checkpoint %s: %w", path, err)
	}
	if f.Schema != CheckpointSchema {
		return nil, fmt.Errorf("harness: checkpoint %s has schema %q, want %q", path, f.Schema, CheckpointSchema)
	}
	if f.Cells != nil {
		c.cells = f.Cells
	}
	return c, nil
}

// Len reports the number of completed cells currently stored.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Keys lists the stored cell keys, sorted.
func (c *Checkpoint) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.cells))
	for k := range c.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Restore looks up a completed cell. It returns (value, true, nil) on
// a decodable hit, (nil, false, nil) on a miss or when Decode is nil,
// and a non-nil error when the stored entry cannot be decoded.
func (c *Checkpoint) Restore(key string) (any, bool, error) {
	if c.Decode == nil {
		return nil, false, nil
	}
	c.mu.Lock()
	raw, ok := c.cells[key]
	c.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	v, err := c.Decode(key, raw)
	if err != nil {
		return nil, false, fmt.Errorf("harness: checkpoint entry %q: %w", key, err)
	}
	return v, true, nil
}

// Store records a completed cell and rewrites the checkpoint file
// atomically (write to a temp file in the same directory, fsync, then
// rename). The cell map is only locked long enough to take a snapshot;
// encoding and file IO happen outside the lock, so concurrent workers
// do not serialize their simulations behind disk writes. If several
// workers race, only the newest snapshot reaches the file.
func (c *Checkpoint) Store(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encoding cell %q: %w", key, err)
	}
	c.mu.Lock()
	c.cells[key] = raw
	c.gen++
	gen := c.gen
	snap := make(map[string]json.RawMessage, len(c.cells))
	for k, r := range c.cells {
		snap[k] = r // RawMessage values are never mutated after insert
	}
	c.mu.Unlock()

	data, err := json.MarshalIndent(checkpointFile{Schema: CheckpointSchema, Cells: snap}, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint: %w", err)
	}

	c.ioMu.Lock()
	defer c.ioMu.Unlock()
	if gen <= c.wroteGen {
		return nil // a newer snapshot is already on disk
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	// Flush to stable storage before the rename: otherwise a crash can
	// leave the new name pointing at unwritten blocks, losing the old
	// snapshot along with the new one.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	c.wroteGen = gen
	return nil
}
