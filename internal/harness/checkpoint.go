package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/iofault"
)

// CheckpointSchema identifies the checkpoint file format.
const CheckpointSchema = "hydra-checkpoint/v1"

// checkpointFile is the on-disk layout: a schema tag and the completed
// cells, keyed by Cell.Key, each value the cell's JSON-encoded result.
type checkpointFile struct {
	Schema string                     `json:"schema"`
	Cells  map[string]json.RawMessage `json:"cells"`
}

// Checkpoint persists completed cells so an interrupted campaign can
// resume. Values are stored as raw JSON; set Decode so Restore can
// rebuild the caller's concrete type (results cross the harness as
// `any`). Safe for concurrent use by campaign workers. Every Store
// rewrites the file via iofault.WriteAtomic (temp file, fsync, rename,
// parent-directory fsync), so a crash mid-campaign leaves the previous
// consistent snapshot — and the rename itself survives power loss.
type Checkpoint struct {
	// Decode rebuilds a cell value from its stored JSON. When nil,
	// Restore reports a miss for every key (the campaign recomputes).
	Decode func(key string, raw json.RawMessage) (any, error)

	fsys      iofault.FS
	recovered string // non-empty when Open found a corrupt file and quarantined it

	mu    sync.Mutex
	path  string
	cells map[string]json.RawMessage
	gen   uint64 // bumped on every mutation of cells

	// ioMu serializes file writes; wroteGen is the generation of the
	// snapshot currently on disk, so a writer that lost the race to a
	// newer snapshot skips its write instead of rolling the file back.
	ioMu     sync.Mutex
	wroteGen uint64
}

// OpenCheckpoint loads the checkpoint at path over the real
// filesystem. See OpenCheckpointFS.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	return OpenCheckpointFS(path, iofault.OS{})
}

// OpenCheckpointFS loads the checkpoint at path, performing all IO
// through fsys, creating an empty one (in memory only; the file
// appears on first Store) if none exists.
//
// A corrupt or foreign-schema file is never fatal and never silently
// discarded: it is moved aside to path+".corrupt" and the campaign
// restarts from an empty checkpoint. Recovered reports when that
// happened — a crash-interrupted resume must make progress, not wedge
// on the torn file the crash left behind.
func OpenCheckpointFS(path string, fsys iofault.FS) (*Checkpoint, error) {
	c := &Checkpoint{path: path, fsys: fsys, cells: make(map[string]json.RawMessage)}
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	var f checkpointFile
	if jerr := json.Unmarshal(data, &f); jerr != nil {
		return c.recover(fmt.Sprintf("unparseable (%v)", jerr))
	}
	if f.Schema != CheckpointSchema {
		return c.recover(fmt.Sprintf("schema %q, want %q", f.Schema, CheckpointSchema))
	}
	if f.Cells != nil {
		c.cells = f.Cells
	}
	return c, nil
}

// recover quarantines the corrupt checkpoint file and returns an empty
// checkpoint with Recovered set. If even the move fails, the error is
// surfaced: Store would otherwise fight the corrupt file for the path.
func (c *Checkpoint) recover(why string) (*Checkpoint, error) {
	if err := c.fsys.Rename(c.path, c.path+".corrupt"); err != nil {
		return nil, fmt.Errorf("harness: checkpoint %s is %s and could not be moved aside: %w", c.path, why, err)
	}
	c.recovered = fmt.Sprintf("checkpoint %s was %s; moved to %s.corrupt, starting fresh", c.path, why, c.path)
	return c, nil
}

// Recovered reports why the on-disk checkpoint was quarantined at open
// time ("" when it loaded cleanly or did not exist). Callers surface
// this as a warning — recovery costs re-simulation, silence costs
// trust.
func (c *Checkpoint) Recovered() string { return c.recovered }

// Len reports the number of completed cells currently stored.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Keys lists the stored cell keys, sorted.
func (c *Checkpoint) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.cells))
	for k := range c.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Restore looks up a completed cell. It returns (value, true, nil) on
// a decodable hit, (nil, false, nil) on a miss or when Decode is nil,
// and a non-nil error when the stored entry cannot be decoded.
func (c *Checkpoint) Restore(key string) (any, bool, error) {
	if c.Decode == nil {
		return nil, false, nil
	}
	c.mu.Lock()
	raw, ok := c.cells[key]
	c.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	v, err := c.Decode(key, raw)
	if err != nil {
		return nil, false, fmt.Errorf("harness: checkpoint entry %q: %w", key, err)
	}
	return v, true, nil
}

// Store records a completed cell and rewrites the checkpoint file
// atomically (temp file in the same directory, fsync, rename, parent
// directory fsync). The cell map is only locked long enough to take a
// snapshot; encoding and file IO happen outside the lock, so
// concurrent workers do not serialize their simulations behind disk
// writes. If several workers race, only the newest snapshot reaches
// the file.
func (c *Checkpoint) Store(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encoding cell %q: %w", key, err)
	}
	c.mu.Lock()
	c.cells[key] = raw
	c.gen++
	gen := c.gen
	snap := make(map[string]json.RawMessage, len(c.cells))
	for k, r := range c.cells {
		snap[k] = r // RawMessage values are never mutated after insert
	}
	c.mu.Unlock()

	data, err := json.MarshalIndent(checkpointFile{Schema: CheckpointSchema, Cells: snap}, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint: %w", err)
	}

	c.ioMu.Lock()
	defer c.ioMu.Unlock()
	if gen <= c.wroteGen {
		return nil // a newer snapshot is already on disk
	}
	if err := iofault.WriteAtomic(c.fsys, c.path, append(data, '\n')); err != nil {
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	c.wroteGen = gen
	return nil
}
