package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/testutil"
)

// The GC property test drives a CellCache and a reference model with
// the same random operation sequence and requires them to agree after
// every step. All entries are built from fixed-width hashes, keys and
// payloads so every on-disk entry has the same byte size and the model
// can do exact byte accounting.

const gcPayload = "0123456789abcdef0123456789abcdef"

func gcHash(i int) string { return fmt.Sprintf("%08x%08x", i, i) }
func gcKey(i int) string  { return fmt.Sprintf("cell/%08d", i) }

type gcKind int

const (
	gcStore   gcKind = iota // store entry arg (new or overwrite)
	gcLookup                // lookup entry arg (mem, disk or miss)
	gcCorrupt               // tear entry arg's disk file in place
	gcTick                  // advance the injected clock
	gcReopen                // drop the process: reopen the cache cold
	gcNumKinds
)

func (k gcKind) String() string {
	return [...]string{"store", "lookup", "corrupt", "tick", "reopen"}[k]
}

type gcOp struct {
	Kind gcKind
	Arg  int
}

func (o gcOp) String() string { return fmt.Sprintf("%s(%d)", o.Kind, o.Arg) }

// gcWorld is the cache under test plus the reference model. The model
// mirrors the documented janitor contract: LRU by atime (ties broken
// by hash, ascending), quarantine for corrupt entries, byte budget
// never exceeded.
type gcWorld struct {
	dir    string
	budget int64
	entry  int64 // uniform on-disk entry size
	clk    time.Time
	cache  *CellCache

	disk    map[string]int64 // hash -> atime (unix ns) of live entries
	corrupt map[string]bool  // live entries whose file was torn
	mem     map[string]bool  // hashes the current instance holds in memory
	qset    map[string]bool  // distinct hashes ever quarantined (dir contents)
	qinst   int64            // quarantines attributed to the current instance
}

func gcDecode(_ string, raw json.RawMessage) (any, error) {
	var s string
	err := json.Unmarshal(raw, &s)
	return s, err
}

// gcEntrySize measures the uniform entry size by storing one probe
// entry in a scratch directory.
func gcEntrySize(t *testing.T) int64 {
	t.Helper()
	c, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(gcHash(0), gcKey(0), gcPayload, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return c.DiskBytes()
}

func newGCWorld(dir string, budget, entry int64) (*gcWorld, error) {
	w := &gcWorld{
		dir: dir, budget: budget, entry: entry,
		clk:     time.Unix(1_700_000_000, 0),
		disk:    map[string]int64{},
		corrupt: map[string]bool{},
		mem:     map[string]bool{},
		qset:    map[string]bool{},
	}
	return w, w.open()
}

// open starts a fresh cache instance over the surviving directory, as
// a process restart would. The scan quarantines every torn entry it
// finds, so the model moves them too.
func (w *gcWorld) open() error {
	c, err := NewCellCacheFS(w.dir, iofault.OS{})
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	c.Decode = gcDecode
	c.now = func() time.Time { return w.clk }
	c.SetMaxBytes(w.budget)
	w.cache = c

	w.qinst = 0
	for h := range w.corrupt {
		delete(w.disk, h)
		w.qset[h] = true
		w.qinst++
	}
	w.corrupt = map[string]bool{}
	w.mem = map[string]bool{}
	return nil
}

// evict applies the model's LRU rule: while over budget, remove the
// entry with the smallest atime, ties broken by hash ascending.
func (w *gcWorld) evict() {
	for int64(len(w.disk))*w.entry > w.budget && len(w.disk) > 0 {
		victim := ""
		for h, at := range w.disk {
			if victim == "" || at < w.disk[victim] || (at == w.disk[victim] && h < victim) {
				victim = h
			}
		}
		delete(w.disk, victim)
		delete(w.corrupt, victim)
	}
}

func (w *gcWorld) apply(op gcOp) error {
	switch op.Kind {
	case gcStore:
		h := gcHash(op.Arg)
		if err := w.cache.Store(h, gcKey(op.Arg), gcPayload, time.Millisecond); err != nil {
			return fmt.Errorf("%v: %w", op, err)
		}
		w.mem[h] = true
		w.disk[h] = w.clk.UnixNano()
		delete(w.corrupt, h) // overwritten with a valid entry
		w.evict()

	case gcLookup:
		h := gcHash(op.Arg)
		v, ok := w.cache.Lookup(h)
		_, onDisk := w.disk[h]
		switch {
		case w.mem[h]: // memory tier answers; disk state irrelevant
			if !ok || v != gcPayload {
				return fmt.Errorf("%v: want mem hit, got (%v, %v)", op, v, ok)
			}
		case onDisk && !w.corrupt[h]: // disk hit: promote + refresh atime
			if !ok || v != gcPayload {
				return fmt.Errorf("%v: want disk hit, got (%v, %v)", op, v, ok)
			}
			w.mem[h] = true
			w.disk[h] = w.clk.UnixNano()
		case onDisk: // torn entry: quarantined, reported as a miss
			if ok {
				return fmt.Errorf("%v: corrupt entry decoded as a hit", op)
			}
			delete(w.disk, h)
			delete(w.corrupt, h)
			w.qset[h] = true
			w.qinst++
		default:
			if ok {
				return fmt.Errorf("%v: hit on an absent entry", op)
			}
		}

	case gcCorrupt:
		h := gcHash(op.Arg)
		if _, ok := w.disk[h]; !ok {
			return nil // nothing on disk to tear
		}
		if err := os.WriteFile(filepath.Join(w.dir, h+".json"), []byte("{torn"), 0o644); err != nil {
			return err
		}
		w.corrupt[h] = true

	case gcTick:
		w.clk = w.clk.Add(time.Duration(op.Arg+1) * time.Second)

	case gcReopen:
		return w.open()
	}
	return nil
}

// check compares every observable of the real cache with the model.
func (w *gcWorld) check() error {
	// Janitor accounting matches the model byte-for-byte.
	if got, want := w.cache.DiskBytes(), int64(len(w.disk))*w.entry; got != want {
		return fmt.Errorf("DiskBytes %d, model %d", got, want)
	}

	// The real directory holds exactly the model's live set — no torn
	// temp litter, no resurrected evictees — and fits the budget.
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return err
	}
	real := map[string]bool{}
	var realBytes int64
	for _, e := range ents {
		if e.IsDir() {
			if e.Name() != QuarantineDir {
				return fmt.Errorf("stray directory %q", e.Name())
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), ".json") {
			return fmt.Errorf("stray file %q (temp litter?)", e.Name())
		}
		real[strings.TrimSuffix(e.Name(), ".json")] = true
		info, err := e.Info()
		if err != nil {
			return err
		}
		realBytes += info.Size()
	}
	if realBytes > w.budget {
		return fmt.Errorf("directory holds %d bytes, budget %d", realBytes, w.budget)
	}
	if len(real) != len(w.disk) {
		return fmt.Errorf("directory has %d entries, model %d", len(real), len(w.disk))
	}
	for h := range w.disk {
		if !real[h] {
			return fmt.Errorf("model entry %s missing from directory", h)
		}
	}

	// Quarantine is lossless: every hash the model ever quarantined is
	// a file in quarantine/, and the instance counted its own moves.
	qents, err := os.ReadDir(filepath.Join(w.dir, QuarantineDir))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	if len(qents) != len(w.qset) {
		return fmt.Errorf("quarantine dir has %d files, model %d", len(qents), len(w.qset))
	}
	if got := w.cache.Stats().Quarantined; got != w.qinst {
		return fmt.Errorf("stats.Quarantined %d, model %d", got, w.qinst)
	}
	return nil
}

// runGCSeq replays one operation sequence in a fresh directory and
// returns the first invariant violation (nil if the sequence passes).
func runGCSeq(t *testing.T, budget, entry int64, ops []gcOp) error {
	t.Helper()
	w, err := newGCWorld(t.TempDir(), budget, entry)
	if err != nil {
		return err
	}
	for i, op := range ops {
		if err := w.apply(op); err != nil {
			return fmt.Errorf("op %d %v: %w", i, op, err)
		}
		if err := w.check(); err != nil {
			return fmt.Errorf("op %d %v: %w", i, op, err)
		}
	}
	return nil
}

// shrinkGC greedily removes operations that keep the sequence failing,
// so a violation is reported as a minimal reproducer.
func shrinkGC(t *testing.T, budget, entry int64, ops []gcOp) []gcOp {
	t.Helper()
	for i := 0; i < len(ops); {
		cand := append(append([]gcOp{}, ops[:i]...), ops[i+1:]...)
		if runGCSeq(t, budget, entry, cand) != nil {
			ops = cand
		} else {
			i++
		}
	}
	return ops
}

func genGCOps(rng *rand.Rand, n int) []gcOp {
	ops := make([]gcOp, n)
	for i := range ops {
		var k gcKind
		switch r := rng.Intn(100); {
		case r < 35:
			k = gcStore
		case r < 60:
			k = gcLookup
		case r < 70:
			k = gcCorrupt
		case r < 85:
			k = gcTick
		default:
			k = gcReopen
		}
		// A small index pool makes overwrites, re-lookups and
		// corrupt-then-restore collisions common.
		ops[i] = gcOp{Kind: k, Arg: rng.Intn(12)}
	}
	return ops
}

// TestCellCacheGCProperty is the janitor's property test: random
// store/lookup/corrupt/clock/restart sequences, checked against a
// reference model after every operation. The invariants: the disk tier
// never exceeds its byte budget, eviction is exactly LRU by recorded
// atime (never a fresher entry over a staler one), and a torn entry is
// never lost silently — it lands in quarantine/ with the counter to
// match, or is evicted like any other entry, but never decodes.
func TestCellCacheGCProperty(t *testing.T) {
	entry := gcEntrySize(t)
	budget := 4*entry + entry/2 // room for 4 entries, forcing eviction
	seeds := testutil.Pick(t, 8, 64)
	nops := testutil.Pick(t, 80, 400)
	testutil.Logf(t, "%d seeds x %d ops, entry %dB, budget %dB", seeds, nops, entry, budget)

	for seed := 1; seed <= seeds; seed++ {
		ops := genGCOps(rand.New(rand.NewSource(int64(seed))), nops)
		if err := runGCSeq(t, budget, entry, ops); err != nil {
			min := shrinkGC(t, budget, entry, ops)
			t.Fatalf("seed %d: %v\nminimal reproducer (%d ops): %v\nre-run error: %v",
				seed, err, len(min), min, runGCSeq(t, budget, entry, min))
		}
	}
}
