// Package harness is the resilient campaign runner: it executes sweep
// cells (one simulator configuration each) through a bounded worker
// pool and keeps the campaign alive when individual cells misbehave.
//
// Four failure modes are contained per cell, so a sweep of N cells
// always yields N verdicts:
//
//   - panics are recovered and converted to a *PanicError carrying the
//     panicking value and stack; the other cells keep running;
//   - a progress watchdog cancels cells whose simulated-cycle counter
//     stops advancing for longer than a stall deadline, and a wall-clock
//     timeout bounds each cell outright;
//   - failed cells are retried with capped backoff; the attempt number
//     is passed back in so the caller can reseed, separating
//     seed-dependent corner cases from deterministic bugs;
//   - completed cells are written to an optional JSON checkpoint
//     (see Checkpoint), so an interrupted campaign resumes by
//     recomputing only the missing cells.
//
// Cells cooperate through two channels: they honor ctx cancellation
// (the simulator polls it between events) and report simulated cycles
// via Env.Progress so the watchdog can tell "slow" from "stuck".
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStalled is the cancellation cause installed by the watchdog when
// a cell's progress counter stops advancing. Test with errors.Is on
// the cell error.
var ErrStalled = errors.New("harness: progress stalled")

// PanicError is a recovered cell panic, preserved with its stack.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("harness: cell panicked: %v", e.Value)
}

// Env is the per-attempt environment the harness hands to a cell.
type Env struct {
	// Attempt is the 0-based attempt number. Retried cells should fold
	// it into their RNG seed so a seed-dependent failure is not simply
	// replayed.
	Attempt int
	// Progress reports the cell's simulated-cycle counter. The watchdog
	// declares a stall when the reported value stops increasing — calls
	// repeating the same value do not keep a cell alive. Safe to call
	// from the cell's goroutine only; never nil.
	Progress func(cycle int64)
}

// Cell is one unit of campaign work.
type Cell struct {
	// Key identifies the cell in checkpoints and results; campaign keys
	// must be unique. The experiment layer uses "target/variant/workload".
	Key string
	// Run computes the cell. It must honor ctx cancellation and should
	// report progress via env.Progress. The returned value must be
	// JSON-marshalable when checkpointing is enabled.
	Run func(ctx context.Context, env Env) (any, error)
	// CacheKey is the cell's content-addressed identity — a hash of
	// everything that determines its outcome (see sim.Config.CacheKey).
	// Empty means uncacheable: the cell always runs. Unlike Key, cache
	// keys may repeat within a campaign (identical cells dedupe against
	// each other: the first computes, the rest replay).
	CacheKey string
	// Tags are opaque labels copied into every CellEvent the campaign
	// publishes for this cell (the experiment layer sets scheme,
	// workload and seed). Nil is fine; the harness never reads them.
	Tags map[string]string
	// EstCost is a static relative cost estimate used to order work
	// longest-first when the cache has no recorded timing for this cell.
	// Unitless; only comparisons between cells of one campaign matter.
	EstCost float64
}

// CellResult is the verdict for one cell.
type CellResult struct {
	Key      string
	Value    any   // nil when Err != nil
	Err      error // nil on success
	Attempts int   // attempts actually made (0 when restored)
	Panicked bool  // at least one attempt panicked
	Stalled  bool  // at least one attempt was killed by the watchdog
	Restored bool  // value came from the checkpoint; Run never called
	Cached   bool  // value replayed from the result cache; Run never called
	Elapsed  time.Duration
	// Cycles is the last simulated-cycle value the cell reported via
	// Env.Progress — how far a failed cell got, and a harness-level
	// cross-check for completed ones. Tracked only when the campaign
	// has a Bus or a stall watchdog; 0 otherwise (and for cached or
	// restored cells, which never run).
	Cycles int64
}

// Options tunes a campaign.
type Options struct {
	// Workers bounds pool concurrency (default GOMAXPROCS, at most the
	// number of cells).
	Workers int
	// CellTimeout is the wall-clock budget per attempt (0 = unbounded).
	CellTimeout time.Duration
	// StallTimeout kills an attempt whose progress counter has not
	// advanced for this long (0 disables the watchdog).
	StallTimeout time.Duration
	// Retries is the number of extra attempts after a failure.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// and capped at 16x (default 100ms when Retries > 0).
	Backoff time.Duration
	// Checkpoint, when non-nil, restores completed cells before running
	// and stores each newly completed cell.
	Checkpoint *Checkpoint
	// Cache, when non-nil, resolves cells by CacheKey before the workers
	// start (hits never enter the pool) and records each newly computed
	// cell's value and wall-clock cost. Cells left to run are ordered
	// longest-processing-time-first using the cache's recorded costs,
	// falling back to Cell.EstCost.
	Cache *CellCache
	// OnCellDone, when non-nil, observes each settled cell (restored,
	// succeeded, or exhausted). Called from worker goroutines; must be
	// safe for concurrent use.
	OnCellDone func(CellResult)
	// Bus, when non-nil, receives a structured CellEvent for every cell
	// lifecycle transition (queued, started, progress, retried, cached,
	// restored, done, failed), for live progress rendering and the
	// obsv.Server /events NDJSON stream. Publishing never blocks the
	// worker pool. The campaign does not close the bus — the caller
	// owns its lifetime (it may span several campaigns of one run).
	Bus *Bus
	// ProgressEvery throttles per-cell progress events on the bus
	// (default 500ms). Progress events sample the cell's Env.Progress
	// cycle counter; tighter intervals cost one time.Now per ~1k
	// progress calls.
	ProgressEvery time.Duration
}

func (o Options) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PoolSaturated reports whether a campaign pool of the given worker
// count already claims every CPU: with workers >= NumCPU there are no
// idle cores left for intra-cell parallelism, so per-cell fan-out
// (sim.Config.Parallel) would only add scheduling pressure. Callers
// layering the two parallelism levels use this to pick exactly one.
// workers <= 0 means the pool default (GOMAXPROCS), which saturates by
// definition.
func PoolSaturated(workers int) bool {
	return workers <= 0 || workers >= runtime.NumCPU()
}

func (o Options) backoff(attempt int) time.Duration {
	b := o.Backoff
	if b <= 0 {
		b = 100 * time.Millisecond
	}
	for i := 1; i < attempt && i < 5; i++ {
		b *= 2
	}
	return b
}

// RunCampaign executes the cells and returns one result per cell, in
// input order. Individual cell failures are reported in their
// CellResult, never as the campaign error; the error return is
// reserved for malformed campaigns (duplicate or empty keys) and for
// campaign-level cancellation, in which case the partial results are
// still returned (unreached cells carry the cancellation error).
//
// With Options.Cache set, cells whose CacheKey resolves are settled
// before the worker pool starts (Cached=true, Run never called) and
// the remaining work is dispatched longest-processing-time-first.
func RunCampaign(ctx context.Context, cells []Cell, opts Options) ([]CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if c.Key == "" {
			return nil, fmt.Errorf("harness: cell with empty key")
		}
		if c.Run == nil {
			return nil, fmt.Errorf("harness: cell %q has no Run", c.Key)
		}
		if seen[c.Key] {
			return nil, fmt.Errorf("harness: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = true
	}

	results := make([]CellResult, len(cells))

	// Cache pre-pass: resolve content-addressed hits inline so they
	// never occupy a worker, then order the remaining cells longest-
	// processing-time-first (recorded cost when the cache has seen the
	// cell or its key before, Cell.EstCost otherwise) to cut makespan —
	// a long cell dispatched last would otherwise run alone at the tail
	// while the rest of the pool idles.
	pending := make([]int, 0, len(cells))
	if opts.Cache != nil {
		for i := range cells {
			if cells[i].CacheKey != "" {
				if v, ok := opts.Cache.Lookup(cells[i].CacheKey); ok {
					results[i] = CellResult{Key: cells[i].Key, Value: v, Cached: true}
					publishCell(opts.Bus, EvCached, cells[i], nil)
					if opts.OnCellDone != nil {
						opts.OnCellDone(results[i])
					}
					continue
				}
			}
			pending = append(pending, i)
		}
		cost := make([]float64, len(cells))
		for _, i := range pending {
			if d, ok := opts.Cache.Cost(cells[i].CacheKey, cells[i].Key); ok {
				cost[i] = d.Seconds()
			} else {
				cost[i] = cells[i].EstCost
			}
		}
		sort.SliceStable(pending, func(a, b int) bool { return cost[pending[a]] > cost[pending[b]] })
	} else {
		for i := range cells {
			pending = append(pending, i)
		}
	}
	for _, i := range pending {
		publishCell(opts.Bus, EvQueued, cells[i], nil)
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(len(pending)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = runCell(ctx, cells[i], opts)
				if opts.OnCellDone != nil {
					opts.OnCellDone(results[i])
				}
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		cause := context.Cause(ctx)
		for i := range results {
			if results[i].Key == "" {
				results[i] = CellResult{Key: cells[i].Key, Err: fmt.Errorf("harness: campaign aborted: %w", cause)}
			}
		}
		return results, fmt.Errorf("harness: campaign aborted: %w", cause)
	}
	return results, nil
}

// cellObs is the per-cell observation state behind Env.Progress: the
// latest simulated-cycle value (for CellResult.Cycles and terminal
// events) plus the throttle for progress events on the bus. Allocated
// only when a campaign has a Bus or a stall watchdog, so a bare
// campaign's progress callback stays a no-op.
type cellObs struct {
	cell  Cell
	bus   *Bus
	start time.Time
	every time.Duration

	cycles  atomic.Int64
	calls   atomic.Int64
	lastPub atomic.Int64 // unix nanos of the last progress event
}

// progressSampleStride bounds how often the progress path checks the
// clock: one time.Now per this many Env.Progress calls. The simulator
// reports progress per event-loop iteration, far too hot to timestamp
// each call.
const progressSampleStride = 1024

// observe records a progress report and, on the bus path, publishes a
// throttled progress event.
func (o *cellObs) observe(cycle int64) {
	o.cycles.Store(cycle) // progress reports are monotonic (watchdog enforces its own max)
	if o.bus == nil {
		return
	}
	if o.calls.Add(1)%progressSampleStride != 0 {
		return
	}
	now := time.Now()
	last := o.lastPub.Load()
	if now.UnixNano()-last < int64(o.every) || !o.lastPub.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	o.bus.Publish(CellEvent{
		Kind: EvProgress, Key: o.cell.Key, Tags: o.cell.Tags,
		Cycles: cycle, ElapsedSec: now.Sub(o.start).Seconds(),
	})
}

// publishCell emits one lifecycle event for a cell (no-op without a
// bus); mut fills the kind-specific fields.
func publishCell(b *Bus, kind string, cell Cell, mut func(*CellEvent)) {
	if b == nil {
		return
	}
	e := CellEvent{Kind: kind, Key: cell.Key, Tags: cell.Tags}
	if mut != nil {
		mut(&e)
	}
	b.Publish(e)
}

// runCell settles one cell: checkpoint restore, then up to 1+Retries
// attempts with backoff.
func runCell(ctx context.Context, cell Cell, opts Options) CellResult {
	start := time.Now()
	res := CellResult{Key: cell.Key}
	if opts.Checkpoint != nil {
		if v, ok, err := opts.Checkpoint.Restore(cell.Key); err != nil {
			// A corrupt entry is not fatal: fall through and recompute.
			res.Err = err
		} else if ok {
			res.Value = v
			res.Restored = true
			res.Elapsed = time.Since(start)
			publishCell(opts.Bus, EvRestored, cell, func(e *CellEvent) {
				e.ElapsedSec = res.Elapsed.Seconds()
			})
			return res
		}
	}
	var obs *cellObs
	if opts.Bus != nil || opts.StallTimeout > 0 {
		every := opts.ProgressEvery
		if every <= 0 {
			every = 500 * time.Millisecond
		}
		obs = &cellObs{cell: cell, bus: opts.Bus, start: start, every: every}
	}
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(opts.backoff(attempt))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				res.Err = fmt.Errorf("harness: campaign aborted: %w", context.Cause(ctx))
				res.Elapsed = time.Since(start)
				return res
			}
		}
		kind, at := EvStarted, attempt
		if attempt > 0 {
			kind = EvRetried
		}
		publishCell(opts.Bus, kind, cell, func(e *CellEvent) {
			e.Attempt = at
			e.ElapsedSec = time.Since(start).Seconds()
		})
		attemptStart := time.Now()
		v, err := runAttempt(ctx, cell, attempt, opts, obs)
		attemptElapsed := time.Since(attemptStart)
		res.Attempts = attempt + 1
		if err == nil {
			res.Value = v
			res.Err = nil
			if opts.Cache != nil && cell.CacheKey != "" && attempt == 0 {
				// Best-effort: a failed disk write is counted in the cache
				// stats but never fails a computed cell. Only first-attempt
				// results are stored — callers may perturb retried cells
				// (exp reseeds them), so a retry's value no longer matches
				// the content hash computed from the original inputs.
				_ = opts.Cache.Store(cell.CacheKey, cell.Key, v, attemptElapsed)
			}
			if opts.Checkpoint != nil {
				if cerr := opts.Checkpoint.Store(cell.Key, v); cerr != nil {
					res.Err = fmt.Errorf("harness: cell %q succeeded but checkpoint failed: %w", cell.Key, cerr)
					res.Value = nil
				}
			}
			break
		}
		res.Err = err
		var pe *PanicError
		if errors.As(err, &pe) {
			res.Panicked = true
		}
		if errors.Is(err, ErrStalled) {
			res.Stalled = true
		}
		if ctx.Err() != nil {
			break // campaign-level cancel: do not burn retries
		}
	}
	res.Elapsed = time.Since(start)
	if obs != nil {
		res.Cycles = obs.cycles.Load()
	}
	kind := EvDone
	if res.Err != nil {
		kind = EvFailed
	}
	publishCell(opts.Bus, kind, cell, func(e *CellEvent) {
		e.Attempt = res.Attempts - 1
		e.Cycles = res.Cycles
		e.ElapsedSec = res.Elapsed.Seconds()
		if res.Err != nil {
			e.Error = res.Err.Error()
		}
	})
	return res
}

// runAttempt executes one attempt with panic recovery, wall-clock
// timeout, the stall watchdog, and the bus progress sampler.
func runAttempt(ctx context.Context, cell Cell, attempt int, opts Options, obs *cellObs) (v any, err error) {
	if opts.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.CellTimeout,
			fmt.Errorf("harness: cell %q exceeded timeout %v", cell.Key, opts.CellTimeout))
		defer cancel()
	}
	progress := func(int64) {}
	if obs != nil {
		progress = obs.observe
	}
	if opts.StallTimeout > 0 {
		var cancel context.CancelCauseFunc
		ctx, cancel = context.WithCancelCause(ctx)
		wd := newWatchdog(opts.StallTimeout, cell.Key, cancel)
		defer wd.stop()
		inner := progress
		progress = func(cycle int64) {
			wd.report(cycle)
			inner(cycle)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			v = nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return cell.Run(ctx, Env{Attempt: attempt, Progress: progress})
}

// watchdog cancels an attempt when the reported progress value stops
// increasing for longer than the stall deadline.
type watchdog struct {
	latest atomic.Int64
	done   chan struct{}
	wg     sync.WaitGroup
}

func newWatchdog(stall time.Duration, key string, cancel context.CancelCauseFunc) *watchdog {
	w := &watchdog{done: make(chan struct{})}
	w.latest.Store(-1)
	interval := stall / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		last := w.latest.Load()
		lastChange := time.Now()
		for {
			select {
			case <-w.done:
				return
			case <-t.C:
				if cur := w.latest.Load(); cur > last {
					last = cur
					lastChange = time.Now()
				} else if time.Since(lastChange) > stall {
					cancel(fmt.Errorf("harness: cell %q made no progress for %v (cycle %d): %w",
						key, stall, last, ErrStalled))
					return
				}
			}
		}
	}()
	return w
}

func (w *watchdog) report(cycle int64) {
	// Monotonic max: out-of-order reports never look like progress.
	for {
		cur := w.latest.Load()
		if cycle <= cur || w.latest.CompareAndSwap(cur, cycle) {
			return
		}
	}
}

func (w *watchdog) stop() {
	close(w.done)
	w.wg.Wait()
}
