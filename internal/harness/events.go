package harness

import (
	"sync"
	"time"
)

// CellEventSchema identifies the wire shape of campaign cell events;
// bump on breaking changes so stream consumers can dispatch.
const CellEventSchema = "hydra-cell-event/v1"

// Cell event kinds, in rough lifecycle order. cached, restored, done
// and failed are terminal: a campaign publishes exactly one terminal
// event per cell, matching the cell's row in the run report.
const (
	EvQueued   = "queued"   // cell admitted to the campaign (after the cache pre-pass)
	EvStarted  = "started"  // first attempt entered a worker
	EvProgress = "progress" // periodic simulated-cycle sample from the running attempt
	EvRetried  = "retried"  // a failed attempt is being retried (Attempt = new attempt number)
	EvCached   = "cached"   // terminal: value replayed from the result cache
	EvRestored = "restored" // terminal: value restored from a checkpoint
	EvDone     = "done"     // terminal: computed successfully
	EvFailed   = "failed"   // terminal: all attempts failed; Error holds the last one
)

// CellEvent is one observation of a campaign cell's lifecycle,
// published by the worker pool and streamed over HTTP as NDJSON
// (obsv.Server /events). Events are ordered per campaign by Seq; TSec
// is seconds since the bus was created, so a stream is self-contained
// without wall-clock parsing.
type CellEvent struct {
	Schema string  `json:"schema"`
	Seq    int64   `json:"seq"`
	TSec   float64 `json:"t_sec"`
	Kind   string  `json:"kind"`
	// Key identifies the cell ("target/variant/workload").
	Key string `json:"key"`
	// Tags carries the caller's cell labels (the experiment layer sets
	// scheme, workload and seed — see exp.Options).
	Tags map[string]string `json:"tags,omitempty"`
	// Attempt is the 0-based attempt number (started/retried/terminal).
	Attempt int `json:"attempt,omitempty"`
	// Cycles is the cell's latest simulated-cycle count: the live value
	// for progress events, the final one for done/failed.
	Cycles int64 `json:"cycles,omitempty"`
	// ElapsedSec is the cell's wall-clock time so far (terminal events:
	// total including retries and backoff).
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
	// Error is the last attempt's error, on failed events.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the event settles its cell.
func (e CellEvent) Terminal() bool {
	switch e.Kind {
	case EvCached, EvRestored, EvDone, EvFailed:
		return true
	}
	return false
}

// busSub is one subscriber's bounded mailbox.
type busSub struct {
	ch      chan CellEvent
	dropped int64
}

// Bus fans campaign cell events out to in-process subscribers (the
// live progress line, tests) and — via the obsv.EventSource adapter —
// to HTTP NDJSON streams. Publishing never blocks the worker pool: a
// subscriber whose buffer is full loses the event (counted per
// subscriber in Dropped), because a slow scrape client must not stall
// a simulation campaign.
//
// The bus retains a bounded ring of recent events so subscribers that
// attach mid-campaign can ask for a replay of the backlog. Close ends
// every subscription; a closed bus drops further publishes, so one bus
// must not be shared by concurrent campaigns that outlive each other.
type Bus struct {
	mu      sync.Mutex
	start   time.Time
	seq     int64
	subs    map[int]*busSub
	nextID  int
	ring    []CellEvent
	ringLen int // occupied prefix length until the ring wraps
	ringAt  int // next write position
	closed  bool
	dropped int64
}

// NewBus creates a bus retaining up to retain events for replay to
// late subscribers (0 or negative picks the default 4096).
func NewBus(retain int) *Bus {
	if retain <= 0 {
		retain = 4096
	}
	return &Bus{
		start: time.Now(),
		subs:  map[int]*busSub{},
		ring:  make([]CellEvent, retain),
	}
}

// Publish stamps and delivers an event. Safe for concurrent use; a nil
// bus ignores the event, so call sites need no guard.
func (b *Bus) Publish(e CellEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	e.Schema = CellEventSchema
	e.Seq = b.seq
	e.TSec = time.Since(b.start).Seconds()
	b.ring[b.ringAt] = e
	b.ringAt++
	if b.ringAt > b.ringLen {
		b.ringLen = b.ringAt
	}
	if b.ringAt == len(b.ring) {
		b.ringAt = 0
	}
	for _, s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// backlog returns the retained events in publish order. Caller holds mu.
func (b *Bus) backlog() []CellEvent {
	out := make([]CellEvent, 0, b.ringLen)
	if b.ringLen == len(b.ring) { // wrapped: oldest is at ringAt
		out = append(out, b.ring[b.ringAt:]...)
		out = append(out, b.ring[:b.ringAt]...)
	} else {
		out = append(out, b.ring[:b.ringLen]...)
	}
	return out
}

// Subscribe attaches a subscriber with the given mailbox capacity
// (minimum 1). With replay, the retained backlog is queued first —
// events beyond the buffer capacity are dropped oldest-first rather
// than blocking. The channel closes on Close or cancel; cancel is
// idempotent and safe to call concurrently with Publish.
func (b *Bus) Subscribe(buffer int, replay bool) (<-chan CellEvent, func()) {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &busSub{ch: make(chan CellEvent, buffer)}
	if replay {
		back := b.backlog()
		if len(back) > buffer {
			s.dropped += int64(len(back) - buffer)
			b.dropped += int64(len(back) - buffer)
			back = back[len(back)-buffer:]
		}
		for _, e := range back {
			s.ch <- e
		}
	}
	if b.closed {
		close(s.ch)
		return s.ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = s
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[id]; ok {
				delete(b.subs, id)
				close(s.ch)
			}
			b.mu.Unlock()
		})
	}
	return s.ch, cancel
}

// SubscribeAny adapts Subscribe to the obsv.EventSource interface so
// an obsv.Server can stream the bus without obsv importing harness.
func (b *Bus) SubscribeAny(buffer int, replay bool) (<-chan any, func()) {
	ch, cancel := b.Subscribe(buffer, replay)
	out := make(chan any, 1)
	go func() {
		defer close(out)
		for e := range ch {
			out <- e
		}
	}()
	return out, cancel
}

// Close ends every subscription (their channels close after the
// backlog drains) and makes further publishes no-ops. Idempotent.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, s := range b.subs {
		delete(b.subs, id)
		close(s.ch)
	}
}

// Dropped reports how many events were lost to full subscriber
// buffers or truncated replays, across all subscribers.
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
