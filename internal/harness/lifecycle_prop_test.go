package harness

// Crash/resume lifecycle machines for the storage plane, built on
// internal/proptest and internal/iofault. Where cache_gc_test.go
// model-checks the janitor under clean IO, these machines generate
// put/get/evict/crash/resume interleavings with the crash landing at a
// generated IO step, and assert the storage contracts:
//
//   - no valid entry is ever silently lost: every confirmed store is
//     readable after recovery or accounted for by an eviction;
//   - a crash never manufactures corruption: recovery quarantines
//     nothing, because every visible file was written atomically;
//   - resume is bitwise-deterministic: opening the surviving directory
//     twice yields identical state.
//
// TestCacheCrashPointSweepGCAndTouch is the exhaustive companion: it
// enumerates every IO step of a workload that exercises the GC
// janitor's eviction Remove and the disk-hit atime-refresh rewrite,
// and crashes at each one.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/proptest"
	"repro/internal/testutil"
)

func lcHash(i int) string { return fmt.Sprintf("%08x%08x", i, i) }
func lcKey(i int) string  { return fmt.Sprintf("cell/%08d", i) }

const lcPayload = "0123456789abcdef0123456789abcdef"

func lcDecode(_ string, raw json.RawMessage) (any, error) {
	var s string
	err := json.Unmarshal(raw, &s)
	return s, err
}

// lcEntrySize measures the uniform on-disk entry size once.
func lcEntrySize(tb testing.TB) int64 {
	c, err := NewCellCache(tb.(*testing.T).TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.Store(lcHash(0), lcKey(0), lcPayload, time.Millisecond); err != nil {
		tb.Fatal(err)
	}
	return c.DiskBytes()
}

// cacheWorld is the crash machine's state: a cache instance over a
// directory that survives instance churn, plus the conservation
// ledger.
type cacheWorld struct {
	tb    testing.TB
	dir   string
	clk   time.Time
	cache *CellCache

	budget    int64
	confirmed map[string]bool // stores that returned nil, ever
	evicted   int64           // Evicted total across all instances
	next      int             // next fresh entry index
}

// snapshotEvicted folds the live instance's eviction count into the
// cross-instance ledger; call before abandoning an instance.
func (w *cacheWorld) snapshotEvicted() {
	if w.cache != nil {
		w.evicted += w.cache.Stats().Evicted
	}
}

// open starts a fresh instance over fsys, applying the current budget
// (reopen does not re-enforce it on its own, matching production).
func (w *cacheWorld) open(fsys iofault.FS) error {
	c, err := NewCellCacheFS(w.dir, fsys)
	if err != nil {
		return err
	}
	c.Decode = lcDecode
	c.now = func() time.Time { return w.clk }
	c.SetMaxBytes(w.budget)
	w.cache = c
	return nil
}

// checkRecovery asserts the post-crash contracts on a clean reopen.
func (w *cacheWorld) checkRecovery(t *proptest.T) {
	w.snapshotEvicted()
	if err := w.open(iofault.OS{}); err != nil {
		t.Fatalf("recovery reopen: %v", err)
	}
	first := w.cache
	// Recovery quarantines nothing: atomic writes mean a crash can
	// leave stale or absent entries, never torn visible ones.
	if s := first.Stats(); s.Quarantined != 0 || s.CorruptDropped != 0 {
		t.Fatalf("recovery scan quarantined %d / dropped %d entries — crash manufactured corruption",
			s.Quarantined, s.CorruptDropped)
	}
	w.evicted += first.Stats().Evicted // budget re-enforcement on open

	// Resume is deterministic: a second observer of the same directory
	// agrees byte-for-byte.
	second, err := NewCellCacheFS(w.dir, iofault.OS{})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	second.Decode = lcDecode
	if a, b := first.DiskBytes(), second.DiskBytes(); a != b {
		t.Fatalf("resume not deterministic: DiskBytes %d then %d", a, b)
	}

	// Conservation: every confirmed store is present and decodable, up
	// to the evictions the janitor accounted for.
	missing := 0
	for h := range w.confirmed {
		v, ok := first.Lookup(h)
		if ok {
			if v != lcPayload {
				t.Fatalf("entry %s decoded to %v, want the stored payload", h, v)
			}
			continue
		}
		missing++
	}
	if s := first.Stats(); s.Quarantined != 0 || s.CorruptDropped != 0 {
		t.Fatalf("post-recovery lookups quarantined %d / dropped %d — a confirmed entry was torn",
			s.Quarantined, s.CorruptDropped)
	}
	if int64(missing) > w.evicted {
		t.Fatalf("%d confirmed entries missing but only %d evictions accounted — entries silently lost",
			missing, w.evicted)
	}
}

// cacheCrashProp is one generated cache lifetime.
func cacheCrashProp(tb testing.TB, entry int64) func(*proptest.T) {
	return func(t *proptest.T) {
		w := &cacheWorld{
			tb:        tb,
			dir:       tb.(*testing.T).TempDir(),
			clk:       time.Unix(1_700_000_000, 0),
			budget:    entry * int64(proptest.IntRange(2, 8).Draw(t, "budgetEntries")),
			confirmed: map[string]bool{},
		}
		if err := w.open(iofault.OS{}); err != nil {
			t.Fatalf("open: %v", err)
		}

		idx := proptest.IntRange(0, 11)
		proptest.Repeat(t, map[string]func(*proptest.T){
			// Run a short burst against an injector that crashes at a
			// generated IO step, then recover and check the contracts.
			"crash-burst": func(t *proptest.T) {
				w.snapshotEvicted()
				inj := iofault.NewInjector(iofault.OS{})
				inj.Plan = iofault.CrashPlan(proptest.IntRange(0, 40).Draw(t, "crashAt"))
				if err := w.open(inj); err != nil {
					// The open scan itself crashed; recover from it.
					w.cache = nil
					w.checkRecovery(t)
					return
				}
				n := proptest.IntRange(1, 6).Draw(t, "burst")
				for i := 0; i < n; i++ {
					j := w.next
					w.next++
					if err := w.cache.Store(lcHash(j), lcKey(j), lcPayload, time.Millisecond); err == nil {
						w.confirmed[lcHash(j)] = true
					} else if !errors.Is(err, iofault.ErrCrashed) {
						t.Fatalf("store under crash plan: unexpected error %v", err)
					}
					w.cache.Lookup(lcHash(idx.Draw(t, "lookup")))
				}
				w.checkRecovery(t)
			},
			"lookup": func(t *proptest.T) {
				h := lcHash(idx.Draw(t, "i"))
				if v, ok := w.cache.Lookup(h); ok && v != lcPayload {
					t.Fatalf("lookup %s returned %v, want payload", h, v)
				}
			},
			"reopen": func(t *proptest.T) {
				w.snapshotEvicted()
				if err := w.open(iofault.OS{}); err != nil {
					t.Fatalf("reopen: %v", err)
				}
			},
			"store": func(t *proptest.T) {
				j := w.next
				w.next++
				if err := w.cache.Store(lcHash(j), lcKey(j), lcPayload, time.Millisecond); err != nil {
					t.Fatalf("store: %v", err)
				}
				w.confirmed[lcHash(j)] = true
			},
			"tick": func(t *proptest.T) {
				w.clk = w.clk.Add(time.Duration(proptest.IntRange(1, 60).Draw(t, "s")) * time.Second)
			},
		})
		w.checkRecovery(t)
	}
}

// TestCacheCrashResumeMachine generates cache lifetimes with crashes at
// generated IO steps.
func TestCacheCrashResumeMachine(t *testing.T) {
	entry := lcEntrySize(t)
	proptest.Check(t, cacheCrashProp(t, entry))
}

// ckptWorld is the checkpoint machine's state. A store that returned
// nil is confirmed durable. A store that crashed is *indeterminate*:
// the crash may have landed after the rename took effect (the cell is
// durable even though Store reported failure) or before (it is gone) —
// but never in between, because the write is atomic. pending holds
// those until the next recovery resolves them one way or the other.
type ckptWorld struct {
	path    string
	ckpt    *Checkpoint
	model   map[string]string // confirmed cells: key -> stored value
	pending map[string]string // crashed stores, durability unknown
	next    int
}

func (w *ckptWorld) open(t *proptest.T, fsys iofault.FS) bool {
	c, err := OpenCheckpointFS(w.path, fsys)
	if errors.Is(err, iofault.ErrCrashed) {
		// The open itself hit the crash point; the caller recovers.
		return false
	}
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	if c.Recovered() != "" {
		t.Fatalf("checkpoint recovered from corruption (%s) — atomic writes must not tear", c.Recovered())
	}
	c.Decode = lcDecode
	w.ckpt = c
	return true
}

// verify asserts the confirmed model against a clean reopen, twice, and
// that restores are bitwise identical. The first reopen resolves the
// pending set: a crashed store that proved durable is promoted to
// confirmed (future whole-file rewrites will carry it), one that did
// not make it is dropped for good.
func (w *ckptWorld) verify(t *proptest.T) {
	var snaps [2][]string
	for round := 0; round < 2; round++ {
		w.open(t, iofault.OS{})
		keys := w.ckpt.Keys()
		snaps[round] = keys
		for k, want := range w.pending {
			v, ok, err := w.ckpt.Restore(k)
			if err != nil {
				t.Fatalf("pending cell %q unreadable: %v — crashed store tore the file", k, err)
			}
			if ok {
				if v != want {
					t.Fatalf("pending cell %q restored %v, attempted %v — crashed store wrote a mixed state", k, v, want)
				}
				w.model[k] = want
			}
			delete(w.pending, k)
		}
		for k, want := range w.model {
			v, ok, err := w.ckpt.Restore(k)
			if err != nil || !ok {
				t.Fatalf("confirmed cell %q lost: ok=%v err=%v", k, ok, err)
			}
			if v != want {
				t.Fatalf("cell %q restored %v, stored %v", k, v, want)
			}
		}
		if len(keys) != len(w.model) {
			t.Fatalf("checkpoint holds %d cells, model %d (keys %v)", len(keys), len(w.model), keys)
		}
	}
	for i := range snaps[0] {
		if snaps[0][i] != snaps[1][i] {
			t.Fatalf("resume not deterministic: key lists differ at %d: %q vs %q",
				i, snaps[0][i], snaps[1][i])
		}
	}
}

func checkpointProp(tb testing.TB) func(*proptest.T) {
	return func(t *proptest.T) {
		w := &ckptWorld{
			path:    filepath.Join(tb.(*testing.T).TempDir(), "checkpoint.json"),
			model:   map[string]string{},
			pending: map[string]string{},
		}
		w.open(t, iofault.OS{})
		proptest.Repeat(t, map[string]func(*proptest.T){
			// Crash at a generated IO step during a run of stores; the
			// stores that returned nil are durable, the one that
			// crashed is not — and the file must still parse.
			"crash-stores": func(t *proptest.T) {
				inj := iofault.NewInjector(iofault.OS{})
				inj.Plan = iofault.CrashPlan(proptest.IntRange(0, 30).Draw(t, "crashAt"))
				if !w.open(t, inj) {
					w.verify(t)
					return
				}
				n := proptest.IntRange(1, 5).Draw(t, "n")
				for i := 0; i < n; i++ {
					k := lcKey(w.next)
					val := fmt.Sprintf("value-%d", w.next)
					w.next++
					if err := w.ckpt.Store(k, val); err == nil {
						w.model[k] = val
					} else if errors.Is(err, iofault.ErrCrashed) {
						w.pending[k] = val
					} else {
						t.Fatalf("store under crash plan: unexpected error %v", err)
					}
				}
				w.verify(t)
			},
			"reopen": func(t *proptest.T) { w.verify(t) },
			"store": func(t *proptest.T) {
				k := lcKey(w.next)
				val := fmt.Sprintf("value-%d", w.next)
				w.next++
				if err := w.ckpt.Store(k, val); err != nil {
					t.Fatalf("store: %v", err)
				}
				w.model[k] = val
			},
		})
		w.verify(t)
	}
}

// TestCheckpointLifecycleMachine generates checkpoint lifetimes with
// crashes mid-store: confirmed cells are never lost, recovery never
// sees corruption, resume is bitwise-deterministic.
func TestCheckpointLifecycleMachine(t *testing.T) {
	proptest.Check(t, checkpointProp(t))
}

// lcSweepWorkload drives the fixed workload the crash-point sweep
// enumerates: stores that overflow the byte budget (GC janitor Remove),
// then a cold instance whose disk-hit lookups rewrite entries in place
// (atime-refresh touch). Store errors are returned via confirmed=false;
// any other error aborts. It returns the hashes whose Store returned
// nil and the evictions both instances accounted.
func lcSweepWorkload(fsys iofault.FS, dir string, entry int64) (confirmed []string, evicted int64, err error) {
	clk := time.Unix(1_700_000_000, 0)
	const entries = 6
	budget := 3*entry + entry/2 // room for 3: stores 4..6 each evict

	c, err := NewCellCacheFS(dir, fsys)
	if err != nil {
		return nil, 0, err
	}
	c.Decode = lcDecode
	c.now = func() time.Time { return clk }
	c.SetMaxBytes(budget)
	for i := 0; i < entries; i++ {
		clk = clk.Add(time.Second)
		if err := c.Store(lcHash(i), lcKey(i), lcPayload, time.Millisecond); err == nil {
			confirmed = append(confirmed, lcHash(i))
		} else if !errors.Is(err, iofault.ErrCrashed) {
			return nil, 0, err
		}
	}
	evicted += c.Stats().Evicted

	// Cold restart: every lookup that hits disk rewrites the entry's
	// atime in place — the touch path the sweep is after.
	c2, err := NewCellCacheFS(dir, fsys)
	if err != nil {
		return confirmed, evicted, err
	}
	c2.Decode = lcDecode
	clk = clk.Add(time.Minute)
	c2.now = func() time.Time { return clk }
	c2.SetMaxBytes(budget)
	for i := 0; i < entries; i++ {
		clk = clk.Add(time.Second)
		c2.Lookup(lcHash(i))
	}
	evicted += c2.Stats().Evicted
	return confirmed, evicted, nil
}

// TestCacheCrashPointSweepGCAndTouch crashes the janitor/touch workload
// at every IO step (strided under the quick tier) and checks recovery:
// nothing quarantined, every confirmed entry present or accounted for
// by an eviction, and the recovered directory deterministic.
func TestCacheCrashPointSweepGCAndTouch(t *testing.T) {
	entry := lcEntrySize(t)

	// Pass 1: count the workload's IO steps on a transparent injector.
	counter := iofault.NewInjector(iofault.OS{})
	if _, _, err := lcSweepWorkload(counter, t.TempDir(), entry); err != nil {
		t.Fatalf("counting pass: %v", err)
	}
	total := counter.Ops()
	stride := testutil.Pick(t, 7, 1)
	testutil.Logf(t, "sweeping %d IO steps (stride %d)", total, stride)

	for k := 0; k < total; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-%03d", k), func(t *testing.T) {
			dir := t.TempDir()
			inj := iofault.NewInjector(iofault.OS{})
			inj.Plan = iofault.CrashPlan(k)
			confirmed, evicted, err := lcSweepWorkload(inj, dir, entry)
			if err != nil && !errors.Is(err, iofault.ErrCrashed) {
				t.Fatalf("workload failed non-crash: %v", err)
			}

			// Recover on a clean filesystem.
			rec, err := NewCellCacheFS(dir, iofault.OS{})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			rec.Decode = lcDecode
			if s := rec.Stats(); s.Quarantined != 0 || s.CorruptDropped != 0 {
				t.Fatalf("recovery quarantined %d / dropped %d entries", s.Quarantined, s.CorruptDropped)
			}
			missing := 0
			for _, h := range confirmed {
				v, ok := rec.Lookup(h)
				if ok && v != lcPayload {
					t.Fatalf("entry %s decoded to %v", h, v)
				}
				if !ok {
					missing++
				}
			}
			if s := rec.Stats(); s.Quarantined != 0 || s.CorruptDropped != 0 {
				t.Fatalf("recovery lookups quarantined %d / dropped %d — a confirmed entry was torn",
					s.Quarantined, s.CorruptDropped)
			}
			if int64(missing) > evicted {
				t.Fatalf("%d confirmed entries missing, only %d evictions accounted", missing, evicted)
			}

			// The visible directory is all valid .json entries plus, at
			// worst, atomic-write temp litter a crash abandoned —
			// never a torn visible entry.
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			names := make([]string, 0, len(ents))
			for _, e := range ents {
				if e.IsDir() {
					continue
				}
				if strings.HasSuffix(e.Name(), ".json") {
					names = append(names, e.Name())
				} else if !strings.HasPrefix(e.Name(), ".atomic-") {
					t.Fatalf("stray file %q after crash", e.Name())
				}
			}
			sort.Strings(names)
			again, err := NewCellCacheFS(dir, iofault.OS{})
			if err != nil {
				t.Fatalf("second recovery open: %v", err)
			}
			if a, b := rec.DiskBytes(), again.DiskBytes(); a != b {
				t.Fatalf("recovery not deterministic: DiskBytes %d then %d", a, b)
			}
		})
	}
}
