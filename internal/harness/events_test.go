package harness

import (
	"sync"
	"testing"
)

func TestBusPublishSubscribeOrder(t *testing.T) {
	b := NewBus(0)
	ch, cancel := b.Subscribe(16, false)
	defer cancel()
	for i := 0; i < 5; i++ {
		b.Publish(CellEvent{Kind: EvProgress, Key: "t/a/b"})
	}
	for i := 1; i <= 5; i++ {
		e := <-ch
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Schema != CellEventSchema {
			t.Fatalf("event missing schema: %+v", e)
		}
		if e.TSec < 0 {
			t.Fatalf("negative timestamp: %+v", e)
		}
	}
}

func TestBusReplayBacklog(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 5; i++ {
		b.Publish(CellEvent{Kind: EvQueued, Key: "k"})
	}
	ch, cancel := b.Subscribe(16, true)
	defer cancel()
	for i := 1; i <= 5; i++ {
		if e := <-ch; e.Seq != int64(i) {
			t.Fatalf("replayed seq %d at position %d", e.Seq, i)
		}
	}

	// Replay truncates oldest-first when the backlog exceeds the buffer.
	ch2, cancel2 := b.Subscribe(2, true)
	defer cancel2()
	if e := <-ch2; e.Seq != 4 {
		t.Fatalf("truncated replay starts at seq %d, want 4", e.Seq)
	}
	if e := <-ch2; e.Seq != 5 {
		t.Fatalf("truncated replay second event seq %d, want 5", e.Seq)
	}
	if b.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3 truncated replay events", b.Dropped())
	}
}

func TestBusRingWraps(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Publish(CellEvent{Kind: EvProgress, Key: "k"})
	}
	ch, cancel := b.Subscribe(8, true)
	defer cancel()
	// Backlog holds the newest 4 events: seq 7..10.
	for want := int64(7); want <= 10; want++ {
		if e := <-ch; e.Seq != want {
			t.Fatalf("wrapped backlog seq %d, want %d", e.Seq, want)
		}
	}
}

func TestBusSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(0)
	ch, cancel := b.Subscribe(1, false)
	defer cancel()
	// Publish more than the mailbox holds without draining; must not block.
	for i := 0; i < 10; i++ {
		b.Publish(CellEvent{Kind: EvProgress, Key: "k"})
	}
	if b.Dropped() != 9 {
		t.Errorf("Dropped = %d, want 9", b.Dropped())
	}
	if e := <-ch; e.Seq != 1 {
		t.Errorf("delivered seq %d, want the first event", e.Seq)
	}
}

func TestBusClose(t *testing.T) {
	b := NewBus(0)
	ch, _ := b.Subscribe(4, false)
	b.Publish(CellEvent{Kind: EvDone, Key: "k"})
	b.Close()
	b.Close() // idempotent
	b.Publish(CellEvent{Kind: EvDone, Key: "late"})

	if e, ok := <-ch; !ok || e.Kind != EvDone || e.Key != "k" {
		t.Fatalf("pre-close event not delivered: %+v ok=%v", e, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after Close")
	}

	// Subscribing to a closed bus yields the backlog, then a closed channel.
	ch2, cancel := b.Subscribe(4, true)
	defer cancel()
	if e, ok := <-ch2; !ok || e.Key != "k" {
		t.Fatalf("closed-bus replay: %+v ok=%v", e, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("closed-bus subscription left open")
	}
}

func TestBusCancelIdempotentUnderPublish(t *testing.T) {
	b := NewBus(0)
	_, cancel := b.Subscribe(1, false)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.Publish(CellEvent{Kind: EvProgress, Key: "k"})
		}
	}()
	go func() {
		defer wg.Done()
		cancel()
		cancel()
	}()
	wg.Wait()
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	b.Publish(CellEvent{Kind: EvDone}) // must not panic
	b.Close()
	if b.Dropped() != 0 {
		t.Error("nil bus reports drops")
	}
}

func TestBusSubscribeAny(t *testing.T) {
	b := NewBus(0)
	ch, cancel := b.SubscribeAny(4, false)
	defer cancel()
	b.Publish(CellEvent{Kind: EvDone, Key: "k"})
	e, ok := (<-ch).(CellEvent)
	if !ok || e.Key != "k" {
		t.Fatalf("SubscribeAny delivered %#v", e)
	}
	b.Close()
	if _, ok := <-ch; ok {
		t.Fatal("SubscribeAny channel still open after Close")
	}
}

func TestCellEventTerminal(t *testing.T) {
	terminal := map[string]bool{
		EvQueued: false, EvStarted: false, EvProgress: false, EvRetried: false,
		EvCached: true, EvRestored: true, EvDone: true, EvFailed: true,
	}
	for kind, want := range terminal {
		if got := (CellEvent{Kind: kind}).Terminal(); got != want {
			t.Errorf("Terminal(%s) = %v, want %v", kind, got, want)
		}
	}
}
