package harness

// Property machine for the event bus's replay ring and drop
// accounting. The contract under test:
//
//   - a replay subscriber receives exactly the newest
//     min(published, retain, buffer) events, in publish order, with
//     contiguous Seq — no wrap-boundary loss, duplication or
//     reordering for any (retain, buffer, published) combination;
//   - every event a subscriber receives is bitwise the event that was
//     published at that Seq;
//   - Dropped() is exact: replay truncation plus full-mailbox losses,
//     summed over all subscribers, nothing else.
//
// Live mailbox drops lose the *newest* events (the send fails when the
// mailbox is full), replay truncation loses the *oldest* (the backlog
// is clipped from the front); the model tracks both per subscriber.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/proptest"
)

// busSubModel mirrors one attached, never-drained subscriber.
type busSubModel struct {
	ch     <-chan CellEvent
	cancel func()
	// free is the remaining mailbox capacity; publishes past it drop.
	free    int
	expect  []int64 // Seq values the mailbox must contain, in order
	dropped int64
}

func busProp(tb testing.TB) func(*proptest.T) {
	return func(t *proptest.T) {
		retain := proptest.IntRange(1, 12).Draw(t, "retain")
		bus := NewBus(retain)
		defer bus.Close()

		var published []CellEvent // index i holds Seq i+1
		var expectDropped int64
		var live []*busSubModel

		publish := func(n int) {
			for i := 0; i < n; i++ {
				e := CellEvent{Kind: EvProgress, Key: fmt.Sprintf("cell-%d", len(published)), Cycles: int64(len(published)) * 7}
				bus.Publish(e)
				e.Schema = CellEventSchema
				e.Seq = int64(len(published) + 1)
				published = append(published, e)
				for _, s := range live {
					if s.free > 0 {
						s.free--
						s.expect = append(s.expect, e.Seq)
					} else {
						s.dropped++
						expectDropped++
					}
				}
			}
		}

		// backlogWant returns the Seq values a fresh replay subscriber
		// with the given buffer must receive, and how many the
		// truncation must drop.
		backlogWant := func(buffer int) (want []int64, truncated int64) {
			n := len(published)
			if n > retain {
				n = retain
			}
			if n > buffer {
				truncated = int64(n - buffer)
				n = buffer
			}
			for i := len(published) - n; i < len(published); i++ {
				want = append(want, published[i].Seq)
			}
			return want, truncated
		}

		drain := func(ch <-chan CellEvent) []CellEvent {
			var got []CellEvent
			for {
				select {
				case e, ok := <-ch:
					if !ok { // closed: drained
						return got
					}
					got = append(got, e)
				default:
					return got
				}
			}
		}

		checkEvents := func(got []CellEvent, want []int64) {
			if len(got) != len(want) {
				t.Fatalf("subscriber received %d events, model expects %d (retain=%d, published=%d)",
					len(got), len(want), retain, len(published))
			}
			for i, e := range got {
				if e.Seq != want[i] {
					t.Fatalf("event %d has Seq %d, want %d (ring replay out of order or lost at wrap)", i, e.Seq, want[i])
				}
				e.TSec = 0 // wall-clock stamp, not modelable
				if !reflect.DeepEqual(e, published[e.Seq-1]) {
					t.Fatalf("event Seq %d mutated in the ring:\ngot  %+v\nwant %+v", e.Seq, e, published[e.Seq-1])
				}
			}
		}

		proptest.Repeat(t, map[string]func(*proptest.T){
			// Invariant: the drop counter is exact at every step.
			"": func(t *proptest.T) {
				if got := bus.Dropped(); got != expectDropped {
					t.Fatalf("Dropped() = %d, model expects %d (replay truncations + mailbox losses)", got, expectDropped)
				}
			},
			// Attach a subscriber that stays and never drains: its
			// mailbox keeps the oldest events, later ones drop.
			"attach-live": func(t *proptest.T) {
				buffer := proptest.IntRange(1, 8).Draw(t, "buffer")
				withReplay := proptest.Bool().Draw(t, "replay")
				var want []int64
				var truncated int64
				if withReplay {
					want, truncated = backlogWant(buffer)
					expectDropped += truncated
				}
				ch, cancel := bus.Subscribe(buffer, withReplay)
				live = append(live, &busSubModel{
					ch: ch, cancel: cancel,
					free:   buffer - len(want),
					expect: want,
				})
			},
			// Detach the oldest live subscriber, verifying its mailbox
			// holds exactly what the model predicts.
			"detach": func(t *proptest.T) {
				if len(live) == 0 {
					return
				}
				s := live[0]
				live = live[1:]
				s.cancel()
				checkEvents(drain(s.ch), s.expect)
			},
			"publish": func(t *proptest.T) {
				publish(proptest.IntRange(1, 30).Draw(t, "n"))
			},
			// Attach with replay, drain immediately, detach: must see
			// exactly the newest min(published, retain, buffer) events.
			"replay-snapshot": func(t *proptest.T) {
				buffer := proptest.IntRange(1, 20).Draw(t, "buffer")
				want, truncated := backlogWant(buffer)
				expectDropped += truncated
				ch, cancel := bus.Subscribe(buffer, true)
				checkEvents(drain(ch), want)
				cancel()
			},
		})

		for _, s := range live {
			s.cancel()
			checkEvents(drain(s.ch), s.expect)
		}
		if got := bus.Dropped(); got != expectDropped {
			t.Fatalf("final Dropped() = %d, model expects %d", got, expectDropped)
		}
	}
}

// TestBusReplayRingMachine drives the bus through generated
// publish/subscribe/replay interleavings against an exact model.
func TestBusReplayRingMachine(t *testing.T) {
	proptest.Check(t, busProp(t))
}
