package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// cacheVal mirrors the harness contract: values cross as `any` and
// must be JSON-marshalable for the disk tier.
type cacheVal struct {
	N int `json:"n"`
}

func decodeCacheVal(key string, raw json.RawMessage) (any, error) {
	var v cacheVal
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func TestCellCacheMemoryTier(t *testing.T) {
	c, err := NewCellCache("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("h1"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Store("h1", "k1", cacheVal{N: 7}, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Lookup("h1")
	if !ok || v.(cacheVal).N != 7 {
		t.Fatalf("Lookup = %v, %v; want {7}, true", v, ok)
	}
	if d, ok := c.Cost("h1", "k1"); !ok || d != 3*time.Second {
		t.Fatalf("Cost = %v, %v; want 3s, true", d, ok)
	}
	// Cost by cell key alone: the right prior when knobs changed.
	if d, ok := c.Cost("other-hash", "k1"); !ok || d != 3*time.Second {
		t.Fatalf("Cost by key = %v, %v; want 3s, true", d, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.MemHits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCellCacheDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Decode = decodeCacheVal
	if err := c1.Store("hash-a", "key-a", cacheVal{N: 42}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if c1.Stats().BytesWritten == 0 {
		t.Fatal("disk store wrote no bytes")
	}

	// A fresh instance over the same directory replays the entry and
	// already knows its cost for scheduling.
	c2, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.Decode = decodeCacheVal
	if d, ok := c2.Cost("", "key-a"); !ok || d != 2*time.Second {
		t.Fatalf("preloaded cost = %v, %v; want 2s, true", d, ok)
	}
	v, ok := c2.Lookup("hash-a")
	if !ok || v.(cacheVal).N != 42 {
		t.Fatalf("disk lookup = %v, %v; want {42}, true", v, ok)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.BytesRead == 0 {
		t.Fatalf("stats after disk hit = %+v", s)
	}
	// Promoted to memory: the second lookup is a mem hit.
	if _, ok := c2.Lookup("hash-a"); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Fatalf("promotion missing: %+v", s)
	}
}

func TestCellCacheWithoutDecodeSkipsDisk(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Decode = decodeCacheVal
	if err := c1.Store("h", "k", cacheVal{N: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Lookup("h"); ok {
		t.Fatal("disk entry decoded without a Decode hook")
	}
}

// TestCellCacheCorruptEntriesDiscarded pins the resilience contract:
// truncated or garbage on-disk entries — and entries whose recorded
// hash does not match their filename, e.g. a partially overwritten
// file — are dropped and counted, never fatal, and a later Store
// repairs them.
func TestCellCacheCorruptEntriesDiscarded(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed.Decode = decodeCacheVal
	for _, h := range []string{"trunc", "garbage", "wronghash", "badvalue"} {
		if err := seed.Store(h, "k-"+h, cacheVal{N: 9}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt each entry a different way.
	full, err := os.ReadFile(filepath.Join(dir, "trunc.json"))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := map[string][]byte{
		"trunc":     full[:len(full)/2],
		"garbage":   []byte("\x00\xffnot json at all"),
		"wronghash": []byte(`{"schema":"hydra-cell-cache/v1","hash":"someone-else","key":"k","cost_ns":1,"value":{"n":1}}`),
		"badvalue":  []byte(`{"schema":"hydra-cell-cache/v1","hash":"badvalue","key":"k","cost_ns":1,"value":"not-an-object"}`),
	}
	for name, data := range corrupt {
		if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c, err := NewCellCache(dir) // opening over corrupt entries must not error
	if err != nil {
		t.Fatal(err)
	}
	c.Decode = decodeCacheVal
	for name := range corrupt {
		if _, ok := c.Lookup(name); ok {
			t.Errorf("corrupt entry %q served as a hit", name)
		}
	}
	s := c.Stats()
	if s.CorruptDropped != int64(len(corrupt)) {
		t.Fatalf("CorruptDropped = %d, want %d (%+v)", s.CorruptDropped, len(corrupt), s)
	}
	// Re-simulation repairs the entry in place.
	if err := c.Store("trunc", "k-trunc", cacheVal{N: 10}, time.Second); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.Decode = decodeCacheVal
	if v, ok := c2.Lookup("trunc"); !ok || v.(cacheVal).N != 10 {
		t.Fatalf("repaired entry = %v, %v; want {10}, true", v, ok)
	}
}

// TestCampaignCacheHitsSkipRun pins the tentpole behaviour: a cell
// whose CacheKey resolves settles without Run ever being called, its
// status says so, and OnCellDone still observes it.
func TestCampaignCacheHitsSkipRun(t *testing.T) {
	cache, err := NewCellCache("")
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Store("hit-hash", "warm/a", cacheVal{N: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
	var runs, done sync.Map
	mkRun := func(key string) func(context.Context, Env) (any, error) {
		return func(context.Context, Env) (any, error) {
			runs.Store(key, true)
			return cacheVal{N: 2}, nil
		}
	}
	cells := []Cell{
		{Key: "c/hit", CacheKey: "hit-hash", Run: mkRun("c/hit")},
		{Key: "c/miss", CacheKey: "miss-hash", Run: mkRun("c/miss")},
		{Key: "c/uncached", Run: mkRun("c/uncached")},
	}
	res, err := RunCampaign(context.Background(), cells, Options{
		Cache: cache,
		OnCellDone: func(r CellResult) { done.Store(r.Key, r.Cached) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cached || res[0].Value.(cacheVal).N != 1 {
		t.Fatalf("hit cell = %+v, want cached {1}", res[0])
	}
	if _, ran := runs.Load("c/hit"); ran {
		t.Fatal("cache hit still executed Run")
	}
	for _, key := range []string{"c/miss", "c/uncached"} {
		if _, ran := runs.Load(key); !ran {
			t.Fatalf("%s did not run", key)
		}
	}
	if res[1].Cached || res[2].Cached {
		t.Fatalf("miss/uncached wrongly marked cached: %+v %+v", res[1], res[2])
	}
	for _, key := range []string{"c/hit", "c/miss", "c/uncached"} {
		if _, ok := done.Load(key); !ok {
			t.Fatalf("OnCellDone missed %s", key)
		}
	}
	// The miss was stored: an identical follow-up campaign is all hits.
	res2, err := RunCampaign(context.Background(), cells[:2], Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !res2[0].Cached || !res2[1].Cached {
		t.Fatalf("second campaign not fully cached: %+v %+v", res2[0], res2[1])
	}
}

// TestCampaignLPTOrder pins the scheduling contract: with one worker,
// cells run in descending estimated-cost order regardless of input
// order, and recorded costs from a prior campaign override estimates.
func TestCampaignLPTOrder(t *testing.T) {
	cache, err := NewCellCache("")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	mk := func(key string, est float64) Cell {
		return Cell{
			Key: key, CacheKey: "hash-" + key, EstCost: est,
			Run: func(context.Context, Env) (any, error) {
				mu.Lock()
				order = append(order, key)
				mu.Unlock()
				return cacheVal{}, nil
			},
		}
	}
	cells := []Cell{mk("small", 1), mk("big", 5), mk("mid", 3)}
	if _, err := RunCampaign(context.Background(), cells, Options{Workers: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[big mid small]" {
		t.Fatalf("static LPT order = %v, want [big mid small]", order)
	}

	// Recorded wall-clock beats the static estimate: pretend "r/small"
	// actually took longest last time. The prior run stored different
	// content hashes (other knobs), so the costs arrive via the
	// cost-by-cell-key channel and the cells still have to run.
	cache3, err := NewCellCache("")
	if err != nil {
		t.Fatal(err)
	}
	cache3.Store("old-hash-small", "r/small", cacheVal{}, 10*time.Second)
	cache3.Store("old-hash-big", "r/big", cacheVal{}, time.Second)
	order = nil
	cells2 := []Cell{
		{Key: "r/big", CacheKey: "new-hash-big", EstCost: 5, Run: mk("r/big", 0).Run},
		{Key: "r/small", CacheKey: "new-hash-small", EstCost: 1, Run: mk("r/small", 0).Run},
	}
	if _, err := RunCampaign(context.Background(), cells2, Options{Workers: 1, Cache: cache3}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[r/small r/big]" {
		t.Fatalf("recorded-cost order = %v, want [r/small r/big] (recorded 10s beats EstCost 5)", order)
	}
}

// TestCampaignRetriedCellNotCached pins the purity rule: callers may
// perturb retried cells (exp reseeds them), so a value computed on
// attempt > 0 must not be stored under the attempt-0 content hash.
func TestCampaignRetriedCellNotCached(t *testing.T) {
	cache, err := NewCellCache("")
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	cells := []Cell{{
		Key: "flaky", CacheKey: "flaky-hash",
		Run: func(_ context.Context, env Env) (any, error) {
			attempts++
			if env.Attempt == 0 {
				return nil, fmt.Errorf("transient")
			}
			return cacheVal{N: 1}, nil
		},
	}}
	res, err := RunCampaign(context.Background(), cells, Options{Retries: 1, Backoff: time.Millisecond, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || attempts != 2 {
		t.Fatalf("retry did not succeed: %+v (attempts %d)", res[0], attempts)
	}
	if _, ok := cache.Lookup("flaky-hash"); ok {
		t.Fatal("retried cell's value entered the cache under the original hash")
	}
}
