package proptest

import (
	"strings"
	"testing"
)

// runCheck runs Check's core loop directly so tests can observe the
// shrunken trace instead of failing the real testing.T.
func findAndShrink(t *testing.T, seed uint64, cases int, prop func(*T)) ([]uint64, string) {
	t.Helper()
	for i := 0; i < cases; i++ {
		src := newRandomSource(splitmix64(seed + uint64(i)))
		fail, skipped, _, _ := runCase(src, prop)
		if skipped || fail == "" {
			continue
		}
		trace := append([]uint64(nil), src.rec...)
		return shrinkReturn(trace, fail, prop)
	}
	return nil, ""
}

func shrinkReturn(trace []uint64, fail string, prop func(*T)) ([]uint64, string) {
	return shrink(trace, fail, prop)
}

func TestShrinkFindsMinimalCounterexample(t *testing.T) {
	// Property: no element of a generated slice exceeds 100. The
	// minimal counterexample is a single element of exactly 101.
	prop := func(pt *T) {
		xs := SliceOfN(IntRange(0, 1000), 0, 40).Draw(pt, "xs")
		for _, x := range xs {
			if x > 100 {
				pt.Fatalf("element %d > 100", x)
			}
		}
	}
	trace, fail := findAndShrink(t, 1, 200, prop)
	if fail == "" {
		t.Fatal("property never failed; generator is broken")
	}
	// Replay the shrunken trace and inspect the failing value.
	var got []int
	f, _, _, _ := runCase(newReplaySource(trace), func(pt *T) {
		got = SliceOfN(IntRange(0, 1000), 0, 40).Draw(pt, "xs")
		for _, x := range got {
			if x > 100 {
				pt.Fatalf("element %d > 100", x)
			}
		}
	})
	if f == "" {
		t.Fatal("shrunken trace no longer fails")
	}
	if len(got) != 1 || got[0] != 101 {
		t.Fatalf("shrink not minimal: got %v, want [101]", got)
	}
}

func TestReplayTraceDeterministic(t *testing.T) {
	// The same trace must produce the same draws every time.
	gen := func(pt *T) []uint64 {
		out := make([]uint64, 8)
		for i := range out {
			out[i] = Uint64().Draw(pt, "w")
		}
		return out
	}
	trace := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	var a, b []uint64
	runCase(newReplaySource(trace), func(pt *T) { a = gen(pt) })
	runCase(newReplaySource(trace), func(pt *T) { b = gen(pt) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Draws past the end of a trace yield zero.
	var tail uint64 = 99
	runCase(newReplaySource(nil), func(pt *T) { tail = Uint64().Draw(pt, "w") })
	if tail != 0 {
		t.Fatalf("exhausted trace served %d, want 0", tail)
	}
}

func TestIntRangeBoundsAndBias(t *testing.T) {
	g := IntRange(-3, 7)
	sawLo, sawHi := false, false
	src := newRandomSource(42)
	for i := 0; i < 2000; i++ {
		var v int
		runCase(src, func(pt *T) { v = g.Draw(pt, "v") })
		if v < -3 || v > 7 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		if v == -3 {
			sawLo = true
		}
		if v == 7 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatalf("edge bias missing: sawLo=%v sawHi=%v", sawLo, sawHi)
	}
	// Zero word maps to lo — the simplest value under shrinking.
	var v int
	runCase(newReplaySource([]uint64{0}), func(pt *T) { v = g.Draw(pt, "v") })
	if v != -3 {
		t.Fatalf("zero word → %d, want lo (-3)", v)
	}
}

func TestZeroWordIsSimplestEverywhere(t *testing.T) {
	zero := newReplaySource(nil)
	runCase(zero, func(pt *T) {
		if b := Bool().Draw(pt, "b"); b {
			t.Errorf("Bool zero word → true")
		}
		if f := Float01().Draw(pt, "f"); f != 0 {
			t.Errorf("Float01 zero word → %v", f)
		}
		if s := SampledFrom([]string{"first", "x"}).Draw(pt, "s"); s != "first" {
			t.Errorf("SampledFrom zero word → %q", s)
		}
		if xs := SliceOfN(Uint64(), 0, 9).Draw(pt, "xs"); len(xs) != 0 {
			t.Errorf("SliceOfN zero word → len %d", len(xs))
		}
	})
}

func TestPanicInPropertyIsFailure(t *testing.T) {
	fail, skipped, _, _ := runCase(newRandomSource(1), func(pt *T) {
		var p *int
		_ = *p // nil deref: the property itself is buggy
	})
	if skipped || fail == "" {
		t.Fatal("panic in property not captured as failure")
	}
	if !strings.Contains(fail, "panic:") {
		t.Fatalf("failure message %q missing panic marker", fail)
	}
}

func TestRepeatStateMachine(t *testing.T) {
	// Model a counter with inc/dec actions and an invariant that the
	// implementation (which has a deliberate bug at 5) matches.
	prop := func(pt *T) {
		impl, model := 0, 0
		Repeat(pt, map[string]func(*T){
			"inc": func(pt *T) {
				impl++
				if impl == 5 {
					impl = 0 // the planted bug
				}
				model++
			},
			"dec": func(pt *T) {
				if model == 0 {
					return
				}
				impl--
				model--
			},
			"": func(pt *T) {
				if impl != model {
					pt.Fatalf("impl %d != model %d", impl, model)
				}
			},
		})
	}
	trace, fail := findAndShrink(t, 7, 400, prop)
	if fail == "" {
		t.Fatal("planted bug never found")
	}
	if len(trace) == 0 {
		t.Fatal("empty shrunken trace for a stateful bug")
	}
	// Shrunken repro must keep failing under ReplayTrace semantics.
	f, _, _, _ := runCase(newReplaySource(trace), prop)
	if f == "" {
		t.Fatal("shrunken trace no longer reproduces")
	}
}

func TestCheckPassesOnTrueProperty(t *testing.T) {
	Check(t, func(pt *T) {
		x := IntRange(0, 1000).Draw(pt, "x")
		if x < 0 || x > 1000 {
			pt.Fatalf("out of range: %d", x)
		}
	})
}
