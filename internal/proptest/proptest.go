// Package proptest is the repo's property-based testing engine: a
// stdlib-only, rapid-inspired (pgregory.net/rapid) harness for
// generated test cases with automatic shrinking and deterministic
// replay. The vendored rapid source retrieved for ROADMAP item 5 was
// not available in this environment, so the package implements the
// same core contract from scratch behind a rapid-shaped API — Check /
// Draw / Repeat — small enough to audit and swap out later.
//
// Model: every test case is driven by a stream of uint64 words. In
// generation mode the words come from a seeded PRNG and are recorded;
// when a case fails, the recorded trace is shrunk — blocks removed,
// words zeroed and halved — while the property keeps failing, and the
// minimal trace is reported as a Go literal that replays byte-for-byte
// via ReplayTrace. Draws past the end of a trace yield zero, which
// every generator maps to its simplest value, so deleting trace words
// shrinks generated structures instead of breaking them.
//
// Determinism: the per-test seed derives from the test name (override
// with PROPTEST_SEED to explore new schedules, e.g. in a soak run), so
// CI failures reproduce locally without any persisted corpus. The
// number of cases per Check scales with testutil's TEST_INTENSITY
// tier; PROPTEST_CHECKS pins it explicitly. docs/TESTING.md is the
// user-facing catalog of the properties built on this package.
package proptest

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// Default case counts per tier; PROPTEST_CHECKS overrides both.
const (
	quickChecks    = 30
	thoroughChecks = 600
)

// checks returns the number of generated cases for one Check call.
func checks(tb testing.TB) int {
	if v := os.Getenv("PROPTEST_CHECKS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			tb.Fatalf("proptest: PROPTEST_CHECKS=%q: want a positive integer", v)
		}
		return n
	}
	return testutil.Pick(tb, quickChecks, thoroughChecks)
}

// baseSeed returns the deterministic seed for a test, from the test
// name unless PROPTEST_SEED pins it.
func baseSeed(tb testing.TB) uint64 {
	if v := os.Getenv("PROPTEST_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			tb.Fatalf("proptest: PROPTEST_SEED=%q: want a uint64", v)
		}
		return n
	}
	h := fnv.New64a()
	h.Write([]byte(tb.Name()))
	return h.Sum64()
}

// splitmix64 is the canonical SplitMix64 finalizer. It is only used in
// generation mode (case-seed derivation and the word PRNG); replayed
// traces are literal word streams, so committed ReplayTrace regressions
// do not depend on these constants.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// source feeds a test case its uint64 words: from a PRNG (recording
// them) in generation mode, from a fixed trace in replay/shrink mode.
type source struct {
	state    uint64 // PRNG state (generation mode)
	isReplay bool
	replay   []uint64 // replay mode: serve these words, then zeros
	pos      int
	rec      []uint64 // every word served, in order
}

func newRandomSource(seed uint64) *source { return &source{state: seed} }

func newReplaySource(trace []uint64) *source {
	return &source{isReplay: true, replay: trace}
}

func (s *source) next() uint64 {
	var v uint64
	if s.isReplay {
		if s.pos < len(s.replay) {
			v = s.replay[s.pos]
		} // else: exhausted — serve zero, the simplest value
		s.pos++
	} else {
		s.state += 0x9e3779b97f4a7c15
		v = splitmix64(s.state)
	}
	s.rec = append(s.rec, v)
	return v
}

// failure is the sentinel carried by the panic that unwinds a failing
// property; everything else escaping a property is a bug being caught
// and is treated as a failing case too.
type failure struct{ msg string }

// T is the per-case handle a property receives: draw values from
// generators, log, and fail. It intentionally mirrors rapid.T's
// surface. T is not safe for concurrent use by the property's own
// goroutines.
type T struct {
	src  *source
	log  []string // draw log of the current case, for failure reports
	logf []string // user Logf lines
	// quiet suppresses nothing today; draws are always recorded. The
	// field is kept private so the shrinker can evolve.
}

// Fatalf fails the current case immediately.
func (t *T) Fatalf(format string, args ...any) {
	panic(failure{msg: fmt.Sprintf(format, args...)})
}

// Errorf fails the current case immediately. Unlike testing.T.Errorf
// it does not continue the case: a generated sequence rarely makes
// sense past its first violation, and stopping keeps shrinking sound.
func (t *T) Errorf(format string, args ...any) {
	panic(failure{msg: fmt.Sprintf(format, args...)})
}

// Logf records a line shown only if the case ends up failing.
func (t *T) Logf(format string, args ...any) {
	t.logf = append(t.logf, fmt.Sprintf(format, args...))
}

// Skip abandons the current case without failing it (use sparingly: a
// generator producing mostly skipped cases wastes the case budget).
func (t *T) Skip() { panic(skipCase{}) }

type skipCase struct{}

func (t *T) draw() uint64 { return t.src.next() }

func (t *T) record(label string, v any) {
	t.log = append(t.log, fmt.Sprintf("%s=%v", label, v))
}

// Gen is a generator of V. Generators are pure functions of the word
// stream: the same words yield the same value, which is what makes
// traces replayable.
type Gen[V any] struct {
	name string
	gen  func(*T) V
}

// Draw produces one value, recording it under label for failure
// reports.
func (g Gen[V]) Draw(t *T, label string) V {
	v := g.gen(t)
	t.record(label, v)
	return v
}

// Custom wraps an arbitrary drawing function as a generator.
func Custom[V any](name string, f func(*T) V) Gen[V] {
	return Gen[V]{name: name, gen: f}
}

// Uint64 generates a full-range uint64; zero words map to zero.
func Uint64() Gen[uint64] {
	return Gen[uint64]{name: "uint64", gen: (*T).draw}
}

// Uint64n generates a value in [0, n). n must be positive.
func Uint64n(n uint64) Gen[uint64] {
	if n == 0 {
		panic("proptest: Uint64n(0)")
	}
	return Gen[uint64]{name: fmt.Sprintf("uint64n(%d)", n), gen: func(t *T) uint64 {
		return t.draw() % n
	}}
}

// IntRange generates an int in [lo, hi], biased toward the bounds: a
// slice of the word space is reserved for exactly lo and exactly hi,
// so boundary conditions come up far more often than uniform sampling
// would produce them. A zero word yields lo (the simplest value).
func IntRange(lo, hi int) Gen[int] {
	if lo > hi {
		panic(fmt.Sprintf("proptest: IntRange(%d, %d)", lo, hi))
	}
	span := uint64(hi-lo) + 1
	return Gen[int]{name: fmt.Sprintf("int[%d,%d]", lo, hi), gen: func(t *T) int {
		w := t.draw()
		switch w >> 61 { // top 3 bits select the mode
		case 6:
			return lo
		case 7:
			return hi
		default:
			return lo + int(w%span)
		}
	}}
}

// Bool generates a bool; a zero word yields false.
func Bool() Gen[bool] {
	return Gen[bool]{name: "bool", gen: func(t *T) bool { return t.draw()&1 == 1 }}
}

// Float01 generates a float64 in [0, 1); a zero word yields 0.
func Float01() Gen[float64] {
	return Gen[float64]{name: "float01", gen: func(t *T) float64 {
		return float64(t.draw()>>11) / float64(1<<53)
	}}
}

// SampledFrom picks one of the given values; a zero word yields the
// first, so put the simplest value first.
func SampledFrom[V any](vs []V) Gen[V] {
	if len(vs) == 0 {
		panic("proptest: SampledFrom of empty slice")
	}
	return Gen[V]{name: fmt.Sprintf("sampled(%d)", len(vs)), gen: func(t *T) V {
		return vs[t.draw()%uint64(len(vs))]
	}}
}

// SliceOfN generates a slice of g with length in [lo, hi].
func SliceOfN[V any](g Gen[V], lo, hi int) Gen[[]V] {
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("proptest: SliceOfN(%d, %d)", lo, hi))
	}
	length := IntRange(lo, hi)
	return Gen[[]V]{name: fmt.Sprintf("slice(%s)", g.name), gen: func(t *T) []V {
		n := length.gen(t)
		out := make([]V, n)
		for i := range out {
			out[i] = g.gen(t)
		}
		return out
	}}
}

// Check runs prop against generated cases (count per the active
// TEST_INTENSITY tier, or PROPTEST_CHECKS), shrinks the first failure
// and reports it with the draw log, the replaying seed and the minimal
// trace literal.
func Check(tb testing.TB, prop func(*T)) {
	tb.Helper()
	n := checks(tb)
	seed := baseSeed(tb)
	for i := 0; i < n; i++ {
		caseSeed := splitmix64(seed + uint64(i))
		src := newRandomSource(caseSeed)
		fail, skipped, _, _ := runCase(src, prop)
		if skipped || fail == "" {
			continue
		}
		trace := append([]uint64(nil), src.rec...)
		trace, fail = shrink(trace, fail, prop)
		reportFailure(tb, prop, fail, seed, caseSeed, i, trace)
		return
	}
}

// ReplayTrace re-runs prop against an exact word trace — the form a
// shrunken counterexample is committed in as a regression test. It
// fails the surrounding test if the property fails on the trace (i.e.
// the bug has come back).
func ReplayTrace(tb testing.TB, trace []uint64, prop func(*T)) {
	tb.Helper()
	src := newReplaySource(trace)
	fail, skipped, log, logf := runCase(src, prop)
	if skipped {
		tb.Fatalf("proptest: replayed trace skipped — generator drifted; regenerate the trace")
	}
	if fail != "" {
		tb.Fatalf("proptest: regression reproduced:\n  %s\n%s", fail, formatLogs(log, logf))
	}
}

// runCase executes one case, translating the failure/skip panics.
func runCase(src *source, prop func(*T)) (fail string, skipped bool, log, logf []string) {
	t := &T{src: src}
	defer func() {
		log, logf = t.log, t.logf
		switch r := recover().(type) {
		case nil:
		case failure:
			fail = r.msg
		case skipCase:
			skipped = true
		default:
			// A property that panics is a failing property; keep the
			// panic value so the report shows it.
			fail = fmt.Sprintf("panic: %v", r)
		}
	}()
	prop(t)
	return
}

// shrink minimizes a failing trace: whole-block removals first (which
// deletes generated ops/elements), then word zeroing and halving
// (which simplifies surviving values). Every candidate is re-run; a
// candidate that stops failing is discarded. Budgeted so pathological
// properties cannot hang a test run.
func shrink(trace []uint64, fail string, prop func(*T)) ([]uint64, string) {
	budget := 2000
	try := func(cand []uint64) (string, bool) {
		if budget <= 0 {
			return "", false
		}
		budget--
		f, skipped, _, _ := runCase(newReplaySource(cand), prop)
		if skipped || f == "" {
			return "", false
		}
		return f, true
	}
	improved := true
	for improved && budget > 0 {
		improved = false
		// Pass 1: drop blocks, largest first.
		for block := len(trace) / 2; block >= 1; block /= 2 {
			for at := 0; at+block <= len(trace); {
				cand := make([]uint64, 0, len(trace)-block)
				cand = append(cand, trace[:at]...)
				cand = append(cand, trace[at+block:]...)
				if f, ok := try(cand); ok {
					trace, fail = cand, f
					improved = true
					// retry the same position: more may be removable
				} else {
					at++
				}
			}
		}
		// Pass 2: zero words.
		for i := range trace {
			if trace[i] == 0 {
				continue
			}
			cand := append([]uint64(nil), trace...)
			cand[i] = 0
			if f, ok := try(cand); ok {
				trace, fail = cand, f
				improved = true
			}
		}
		// Pass 3: minimize each word by binary delta descent — reaches
		// the smallest still-failing value, not just power-of-two stops.
		for i := range trace {
			for delta := trace[i] - trace[i]/2; delta > 0; {
				if trace[i] < delta {
					delta = trace[i]
				}
				if delta == 0 {
					break
				}
				cand := append([]uint64(nil), trace...)
				cand[i] -= delta
				if f, ok := try(cand); ok {
					trace, fail = cand, f
					improved = true
				} else {
					delta /= 2
				}
			}
		}
		// Drop any zero tail: replay serves zeros past the end anyway.
		for len(trace) > 0 && trace[len(trace)-1] == 0 {
			trace = trace[:len(trace)-1]
		}
	}
	return trace, fail
}

func reportFailure(tb testing.TB, prop func(*T), fail string, seed, caseSeed uint64, caseIdx int, trace []uint64) {
	tb.Helper()
	// Re-run the minimal case once to collect its draw log.
	finalFail, _, log, logf := runCase(newReplaySource(trace), prop)
	if finalFail != "" {
		fail = finalFail
	}
	var b strings.Builder
	fmt.Fprintf(&b, "proptest: property failed (case %d of seed %d):\n  %s\n", caseIdx, seed, fail)
	b.WriteString(formatLogs(log, logf))
	fmt.Fprintf(&b, "replay exactly:\n  proptest.ReplayTrace(t, %s, prop)\n", traceLiteral(trace))
	fmt.Fprintf(&b, "or re-explore:\n  PROPTEST_SEED=%d go test -run '%s'\n", seed, tb.Name())
	_ = caseSeed
	tb.Fatal(b.String())
}

func formatLogs(log, logf []string) string {
	var b strings.Builder
	if len(log) > 0 {
		b.WriteString("draws:\n")
		for _, l := range log {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	if len(logf) > 0 {
		b.WriteString("log:\n")
		for _, l := range logf {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	return b.String()
}

func traceLiteral(trace []uint64) string {
	parts := make([]string, len(trace))
	for i, w := range trace {
		parts[i] = fmt.Sprintf("%#x", w)
	}
	return "[]uint64{" + strings.Join(parts, ", ") + "}"
}
