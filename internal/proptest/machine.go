package proptest

import "sort"

// Repeat drives a state machine: it draws a sequence of actions from
// the map and runs them in drawn order, mirroring rapid's
// T.Repeat. The "" key, if present, is the invariant check — it runs
// once before the first action and again after every action. Actions
// mutate state captured by the closures; the property fails when any
// action or the invariant calls Fatalf.
//
// The step count is drawn from the word stream (up to maxSteps), so
// shrinking naturally removes trailing and interior actions: a deleted
// word shortens the run, and a zeroed word selects the
// alphabetically-first action, which should therefore be the most
// benign one where it matters.
func Repeat(t *T, actions map[string]func(*T)) {
	const maxSteps = 100
	invariant := actions[""]
	names := make([]string, 0, len(actions))
	for name := range actions {
		if name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		panic("proptest: Repeat with no actions")
	}
	sort.Strings(names)

	if invariant != nil {
		invariant(t)
	}
	steps := IntRange(0, maxSteps).Draw(t, "steps")
	for i := 0; i < steps; i++ {
		name := names[t.draw()%uint64(len(names))]
		t.record("action", name)
		actions[name](t)
		if invariant != nil {
			invariant(t)
		}
	}
}
