package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
	"syscall"
)

// ErrCrashed is the error every operation returns once the Injector
// has simulated a crash: from the storage plane's point of view the
// process is dead and no further IO can happen. Test with errors.Is.
var ErrCrashed = errors.New("iofault: simulated crash")

// Fault is the verdict the Injector's plan passes on one operation.
type Fault int

const (
	// FaultNone performs the operation normally.
	FaultNone Fault = iota
	// FaultEIO fails the operation with syscall.EIO without performing
	// it.
	FaultEIO
	// FaultENOSPC fails the operation with syscall.ENOSPC. Writes land
	// a prefix of their data first — a full disk tears files mid-write.
	FaultENOSPC
	// FaultShortWrite applies only to write operations: half the data
	// reaches the file and io.ErrShortWrite is returned. Other
	// operations proceed normally.
	FaultShortWrite
	// FaultDropSync silently skips a Sync (returning success), leaving
	// the file's recent writes non-durable: a later FaultCrash rolls
	// them back. Other operations proceed normally.
	FaultDropSync
	// FaultCrash kills the storage plane at this operation: the
	// operation itself half-happens (writes land a prefix, renames and
	// removes do not happen), every later operation fails with
	// ErrCrashed, and all writes since each file's last effective Sync
	// are rolled back — the page cache dies with the process.
	FaultCrash
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultEIO:
		return "eio"
	case FaultENOSPC:
		return "enospc"
	case FaultShortWrite:
		return "short-write"
	case FaultDropSync:
		return "drop-sync"
	case FaultCrash:
		return "crash"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Op describes one filesystem operation as the Injector saw it: its
// 0-based global index, what it was, and the path it touched.
type Op struct {
	N    int
	Kind string // mkdirall readfile readdir createtemp write sync close rename remove truncate syncdir
	Path string
}

func (o Op) String() string { return fmt.Sprintf("op %d: %s %s", o.N, o.Kind, o.Path) }

// Injector wraps an FS and injects faults according to a deterministic
// plan. Every operation — including the per-File write/sync/close
// calls — consumes one global index, so "crash at the Nth IO step"
// is well defined and a sweep over 0..Ops()-1 visits every step a
// campaign performs. Safe for concurrent use; indices are assigned in
// arrival order, so sweeps that need a reproducible op sequence should
// serialize their workload (one worker).
//
// The crash model is power-loss-shaped: at the crash op, writes tear
// (a prefix lands), renames/removes do not happen, and every byte
// written since a file's last *effective* Sync is rolled back — so a
// dropped sync (FaultDropSync) converts a later crash into a torn
// file even when the code believed its data was safe. After a crash
// every operation fails with ErrCrashed until the Injector is reset.
type Injector struct {
	fs FS

	// Plan decides the fault for each operation; nil means FaultNone.
	// It must be deterministic in Op for reproducible sweeps.
	Plan func(Op) Fault
	// OnFault, when non-nil, observes every non-FaultNone verdict —
	// the crash sweep uses it to abort the campaign like a dead
	// process would.
	OnFault func(Op, Fault)

	mu      sync.Mutex
	n       int
	crashed bool
	// synced tracks, per path, the durable length: bytes guaranteed on
	// "stable storage". Writes advance a shadow length; an effective
	// Sync promotes it. A crash truncates every path back to its
	// durable length. Entries follow renames.
	written map[string]int64
	synced  map[string]int64
	faults  []Op
}

// NewInjector wraps fsys. With a nil Plan it is a transparent
// operation counter — run the workload once to learn Ops(), then sweep.
func NewInjector(fsys FS) *Injector {
	return &Injector{
		fs:      fsys,
		written: map[string]int64{},
		synced:  map[string]int64{},
	}
}

// CrashPlan returns a plan that crashes at operation n.
func CrashPlan(n int) func(Op) Fault {
	return func(op Op) Fault {
		if op.N == n {
			return FaultCrash
		}
		return FaultNone
	}
}

// SeededPlan returns a deterministic pseudo-random plan: each
// operation independently draws a fault with probability p (splitmix64
// over seed and op index, so the same seed replays the same faults),
// cycling through EIO, ENOSPC, short writes and dropped syncs. Crash
// is never drawn — combine with CrashPlan via ThenCrash for torn-state
// sweeps.
func SeededPlan(seed uint64, p float64) func(Op) Fault {
	return func(op Op) Fault {
		h := splitmix64(seed ^ (uint64(op.N)+1)*0x9e3779b97f4a7c15)
		if float64(h>>11)/float64(1<<53) >= p {
			return FaultNone
		}
		switch h % 4 {
		case 0:
			return FaultEIO
		case 1:
			return FaultENOSPC
		case 2:
			return FaultShortWrite
		default:
			return FaultDropSync
		}
	}
}

// ThenCrash layers a crash at operation n over another plan (which may
// be nil). The crash wins at index n; the base plan rules elsewhere.
func ThenCrash(base func(Op) Fault, n int) func(Op) Fault {
	return func(op Op) Fault {
		if op.N == n {
			return FaultCrash
		}
		if base == nil {
			return FaultNone
		}
		return base(op)
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9f9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Ops reports how many operations have been observed so far: after a
// fault-free run, the sweep space of crash indices.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// Faults returns the operations that drew a non-FaultNone verdict.
func (in *Injector) Faults() []Op {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Op(nil), in.faults...)
}

// Crashed reports whether the simulated crash has happened.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// step assigns the next op index and resolves its fault. It performs
// the crash bookkeeping (rollback of unsynced writes) inline.
func (in *Injector) step(kind, path string) (Op, Fault, error) {
	in.mu.Lock()
	op := Op{N: in.n, Kind: kind, Path: path}
	in.n++
	if in.crashed {
		in.mu.Unlock()
		return op, FaultNone, fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	f := FaultNone
	if in.Plan != nil {
		f = in.Plan(op)
	}
	if f != FaultNone {
		in.faults = append(in.faults, op)
	}
	if f == FaultCrash {
		in.crashed = true
	}
	cb := in.OnFault
	in.mu.Unlock()
	if cb != nil && f != FaultNone {
		cb(op, f)
	}
	return op, f, nil
}

// rollback models the page cache dying: every path whose shadow length
// exceeds its durable length is truncated back. Called once, at the
// crash op, after that op's own partial effect has been applied.
func (in *Injector) rollback() {
	in.mu.Lock()
	type cut struct {
		path string
		size int64
	}
	var cuts []cut
	for path, w := range in.written {
		if s := in.synced[path]; w > s {
			cuts = append(cuts, cut{path, s})
		}
	}
	in.mu.Unlock()
	for _, c := range cuts {
		// Best effort: the file may have been removed already.
		in.fs.Truncate(c.path, c.size) //nolint:errcheck
	}
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	op, f, err := in.step("mkdirall", path)
	if err != nil {
		return err
	}
	switch f {
	case FaultEIO:
		return fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultENOSPC:
		return fmt.Errorf("%s: %w", op, syscall.ENOSPC)
	case FaultCrash:
		in.rollback()
		return fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	return in.fs.MkdirAll(path, perm)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	op, f, err := in.step("readfile", path)
	if err != nil {
		return nil, err
	}
	switch f {
	case FaultEIO, FaultENOSPC:
		return nil, fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultCrash:
		in.rollback()
		return nil, fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	return in.fs.ReadFile(path)
}

func (in *Injector) ReadDir(path string) ([]fs.DirEntry, error) {
	op, f, err := in.step("readdir", path)
	if err != nil {
		return nil, err
	}
	switch f {
	case FaultEIO, FaultENOSPC:
		return nil, fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultCrash:
		in.rollback()
		return nil, fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	return in.fs.ReadDir(path)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	op, f, err := in.step("createtemp", dir)
	if err != nil {
		return nil, err
	}
	switch f {
	case FaultEIO:
		return nil, fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultENOSPC:
		return nil, fmt.Errorf("%s: %w", op, syscall.ENOSPC)
	case FaultCrash:
		in.rollback()
		return nil, fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	file, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.written[file.Name()] = 0
	in.synced[file.Name()] = 0
	in.mu.Unlock()
	return &injectFile{in: in, f: file}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	op, f, err := in.step("rename", oldpath)
	if err != nil {
		return err
	}
	switch f {
	case FaultEIO:
		return fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultENOSPC:
		return fmt.Errorf("%s: %w", op, syscall.ENOSPC)
	case FaultCrash:
		in.rollback()
		return fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	if err := in.fs.Rename(oldpath, newpath); err != nil {
		return err
	}
	in.mu.Lock()
	if w, ok := in.written[oldpath]; ok {
		in.written[newpath] = w
		in.synced[newpath] = in.synced[oldpath]
		delete(in.written, oldpath)
		delete(in.synced, oldpath)
	}
	in.mu.Unlock()
	return nil
}

func (in *Injector) Remove(path string) error {
	op, f, err := in.step("remove", path)
	if err != nil {
		return err
	}
	switch f {
	case FaultEIO, FaultENOSPC:
		return fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultCrash:
		in.rollback()
		return fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	if err := in.fs.Remove(path); err != nil {
		return err
	}
	in.mu.Lock()
	delete(in.written, path)
	delete(in.synced, path)
	in.mu.Unlock()
	return nil
}

func (in *Injector) Truncate(path string, size int64) error {
	op, f, err := in.step("truncate", path)
	if err != nil {
		return err
	}
	switch f {
	case FaultEIO, FaultENOSPC:
		return fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultCrash:
		in.rollback()
		return fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	return in.fs.Truncate(path, size)
}

func (in *Injector) SyncDir(path string) error {
	op, f, err := in.step("syncdir", path)
	if err != nil {
		return err
	}
	switch f {
	case FaultEIO, FaultENOSPC:
		return fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultDropSync:
		return nil
	case FaultCrash:
		in.rollback()
		return fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	return in.fs.SyncDir(path)
}

// injectFile threads a File's write/sync/close calls back through the
// Injector's op stream.
type injectFile struct {
	in *Injector
	f  File
}

func (jf *injectFile) Name() string { return jf.f.Name() }

func (jf *injectFile) Write(p []byte) (int, error) {
	op, f, err := jf.in.step("write", jf.f.Name())
	if err != nil {
		return 0, err
	}
	switch f {
	case FaultEIO:
		return 0, fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultENOSPC, FaultShortWrite, FaultCrash:
		// A torn write: half the data lands before the failure.
		n, werr := jf.f.Write(p[:len(p)/2])
		jf.in.mu.Lock()
		jf.in.written[jf.f.Name()] += int64(n)
		jf.in.mu.Unlock()
		if f == FaultCrash {
			jf.in.rollback()
			return n, fmt.Errorf("%s: %w", op, ErrCrashed)
		}
		if werr != nil {
			return n, werr
		}
		if f == FaultENOSPC {
			return n, fmt.Errorf("%s: %w", op, syscall.ENOSPC)
		}
		return n, fmt.Errorf("%s: %w", op, io.ErrShortWrite)
	}
	n, err := jf.f.Write(p)
	jf.in.mu.Lock()
	jf.in.written[jf.f.Name()] += int64(n)
	jf.in.mu.Unlock()
	return n, err
}

func (jf *injectFile) Sync() error {
	op, f, err := jf.in.step("sync", jf.f.Name())
	if err != nil {
		return err
	}
	switch f {
	case FaultEIO:
		return fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultENOSPC:
		return fmt.Errorf("%s: %w", op, syscall.ENOSPC)
	case FaultDropSync:
		return nil // the lie: success without durability
	case FaultCrash:
		jf.in.rollback()
		return fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	if err := jf.f.Sync(); err != nil {
		return err
	}
	jf.in.mu.Lock()
	jf.in.synced[jf.f.Name()] = jf.in.written[jf.f.Name()]
	jf.in.mu.Unlock()
	return nil
}

func (jf *injectFile) Close() error {
	op, f, err := jf.in.step("close", jf.f.Name())
	if err != nil {
		jf.f.Close() // release the real descriptor regardless
		return err
	}
	switch f {
	case FaultEIO, FaultENOSPC:
		jf.f.Close()
		return fmt.Errorf("%s: %w", op, syscall.EIO)
	case FaultCrash:
		jf.f.Close()
		jf.in.rollback()
		return fmt.Errorf("%s: %w", op, ErrCrashed)
	}
	return jf.f.Close()
}
