package iofault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestWriteAtomicOS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := WriteAtomic(OS{}, path, []byte("hello")); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want %q", got, "hello")
	}
	// Overwrite must replace, not append, and leave no temp litter.
	if err := WriteAtomic(OS{}, path, []byte("x")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "x" {
		t.Fatalf("after overwrite = %q, want %q", got, "x")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want 1 (temp files left behind?)", len(ents))
	}
}

func TestInjectorCountsOps(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	if err := WriteAtomic(in, filepath.Join(dir, "f"), []byte("data")); err != nil {
		t.Fatalf("WriteAtomic through passthrough injector: %v", err)
	}
	// createtemp + write + sync + close + rename + syncdir = 6 ops.
	if got := in.Ops(); got != 6 {
		t.Fatalf("Ops() = %d, want 6", got)
	}
}

func TestInjectorCrashSweepNeverTearsVisibleFile(t *testing.T) {
	// First learn the op count, then crash at every index: the visible
	// file must always hold either the old content or the new, intact.
	probe := NewInjector(OS{})
	pd := t.TempDir()
	if err := WriteAtomic(probe, filepath.Join(pd, "f"), []byte("new-content")); err != nil {
		t.Fatalf("probe: %v", err)
	}
	nops := probe.Ops()

	for i := 0; i < nops; i++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "f")
		if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		in := NewInjector(OS{})
		in.Plan = CrashPlan(i)
		err := WriteAtomic(in, path, []byte("new-content"))
		if err == nil {
			t.Fatalf("crash at op %d: WriteAtomic succeeded", i)
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at op %d: err = %v, want ErrCrashed", i, err)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("crash at op %d: visible file gone: %v", i, rerr)
		}
		if s := string(got); s != "old" && s != "new-content" {
			t.Fatalf("crash at op %d: visible file torn: %q", i, s)
		}
	}
}

func TestInjectorDropSyncThenCrashTearsFile(t *testing.T) {
	// A dropped sync means the bytes were never durable: a later crash
	// rolls them back, leaving a short (torn) temp file. This is the
	// scenario quarantine detection exists for.
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.Plan = func(op Op) Fault {
		if op.Kind == "sync" {
			return FaultDropSync
		}
		if op.Kind == "syncdir" {
			return FaultCrash
		}
		return FaultNone
	}
	path := filepath.Join(dir, "f")
	err := WriteAtomic(in, path, []byte("supposedly-durable"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// The rename happened (crash came at syncdir), so path exists — but
	// its contents were rolled back to the last durable length: zero.
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("visible file: %v", rerr)
	}
	if len(got) != 0 {
		t.Fatalf("dropped-sync data survived the crash: %q", got)
	}
}

func TestInjectorFaults(t *testing.T) {
	dir := t.TempDir()

	t.Run("eio", func(t *testing.T) {
		in := NewInjector(OS{})
		in.Plan = func(op Op) Fault {
			if op.N == 0 {
				return FaultEIO
			}
			return FaultNone
		}
		err := WriteAtomic(in, filepath.Join(dir, "eio"), []byte("x"))
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("err = %v, want EIO", err)
		}
	})

	t.Run("enospc-on-write-is-torn", func(t *testing.T) {
		in := NewInjector(OS{})
		in.Plan = func(op Op) Fault {
			if op.Kind == "write" {
				return FaultENOSPC
			}
			return FaultNone
		}
		err := WriteAtomic(in, filepath.Join(dir, "enospc"), []byte("abcdef"))
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("err = %v, want ENOSPC", err)
		}
	})

	t.Run("short-write", func(t *testing.T) {
		in := NewInjector(OS{})
		in.Plan = func(op Op) Fault {
			if op.Kind == "write" {
				return FaultShortWrite
			}
			return FaultNone
		}
		err := WriteAtomic(in, filepath.Join(dir, "short"), []byte("abcdef"))
		if !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("err = %v, want ErrShortWrite", err)
		}
	})

	t.Run("after-crash-everything-fails", func(t *testing.T) {
		in := NewInjector(OS{})
		in.Plan = CrashPlan(0)
		if err := in.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash op err = %v", err)
		}
		if _, err := in.ReadFile(filepath.Join(dir, "d")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash op err = %v", err)
		}
		if !in.Crashed() {
			t.Fatal("Crashed() = false")
		}
	})

	t.Run("onfault-observes", func(t *testing.T) {
		in := NewInjector(OS{})
		in.Plan = CrashPlan(2)
		var saw []Op
		in.OnFault = func(op Op, f Fault) { saw = append(saw, op) }
		WriteAtomic(in, filepath.Join(dir, "obs"), []byte("x")) //nolint:errcheck
		if len(saw) != 1 || saw[0].N != 2 {
			t.Fatalf("OnFault saw %v, want one op with N=2", saw)
		}
		if got := in.Faults(); len(got) != 1 || got[0].N != 2 {
			t.Fatalf("Faults() = %v", got)
		}
	})
}

func TestSeededPlanDeterministic(t *testing.T) {
	a, b := SeededPlan(42, 0.3), SeededPlan(42, 0.3)
	diff := SeededPlan(43, 0.3)
	same, differs := 0, 0
	var faults int
	for i := 0; i < 200; i++ {
		op := Op{N: i}
		fa, fb := a(op), b(op)
		if fa != fb {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, fa, fb)
		}
		if fa != FaultNone {
			faults++
		}
		if fa == diff(op) {
			same++
		} else {
			differs++
		}
		if fa == FaultCrash {
			t.Fatalf("SeededPlan drew FaultCrash at op %d", i)
		}
	}
	if faults == 0 {
		t.Fatal("p=0.3 over 200 ops drew no faults")
	}
	if differs == 0 {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestThenCrash(t *testing.T) {
	plan := ThenCrash(func(op Op) Fault { return FaultDropSync }, 3)
	if got := plan(Op{N: 3}); got != FaultCrash {
		t.Fatalf("plan(3) = %v, want crash", got)
	}
	if got := plan(Op{N: 1}); got != FaultDropSync {
		t.Fatalf("plan(1) = %v, want drop-sync", got)
	}
	if got := ThenCrash(nil, 0)(Op{N: 5}); got != FaultNone {
		t.Fatalf("nil base plan(5) = %v, want none", got)
	}
}
