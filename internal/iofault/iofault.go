// Package iofault is the seam between the storage plane and the
// filesystem: a small FS interface covering exactly the operations the
// durable artifacts perform (cache entries, checkpoints, run reports),
// a passthrough OS implementation, and a deterministic fault Injector
// (inject.go) that can fail, tear or "crash" any operation by index.
//
// Production code constructs its storage types over OS{} (the public
// constructors default to it); crash-consistency tests construct the
// same types over an Injector and sweep faults across every IO step —
// see the crash-point sweep in internal/exp and docs/ROBUSTNESS.md.
package iofault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the writable handle surface of FS: what atomic write-then-
// rename needs and nothing more.
type File interface {
	io.Writer
	// Name returns the file's path, as os.File.Name does.
	Name() string
	// Sync flushes the file's data to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface the storage plane performs durable IO
// through. It is deliberately narrow — open/write/sync/rename/remove/
// readdir plus the directory fsync that makes renames durable — so a
// fault injector can enumerate every operation a campaign performs.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	// CreateTemp creates a new temporary file in dir, as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// Truncate changes the size of the named file, as os.Truncate. The
	// storage plane never truncates; the Injector uses it to model data
	// lost to a crash that followed a dropped sync.
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making a preceding rename in
	// it durable: without it a power loss can forget the new name even
	// though the file contents were synced. Filesystems that do not
	// support directory fsync are tolerated (the call is a no-op there).
	SyncDir(path string) error
}

// OS is the passthrough FS over the real filesystem; the zero value is
// ready to use and what every public storage constructor defaults to.
type OS struct{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (OS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                     { return os.Remove(path) }
func (OS) Truncate(path string, size int64) error       { return os.Truncate(path, size) }

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// SyncDir opens the directory and fsyncs it. Errors meaning "this
// filesystem cannot fsync a directory" (EINVAL, ENOTSUP — tmpfs on
// some kernels, network mounts) are swallowed: the rename is then as
// durable as the platform allows, which was the status quo; everything
// else is reported.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

// WriteAtomic lands data at path with the full crash discipline: temp
// file in the same directory, write, fsync, close, rename over path,
// fsync of the parent directory. A crash at any step leaves either the
// previous file or none — never a torn one — and the rename itself
// survives power loss. It is the one write path every durable artifact
// (cache entry, checkpoint, run report) goes through.
func WriteAtomic(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return fsys.SyncDir(dir)
}
