package exp

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/workload"
)

// TestRunReportRoundTrip is the tier-1 acceptance test for the
// observability layer: a real (small) sweep must produce a report that
// survives encoding/json round-tripping, validates, and carries at
// least ten named metrics spanning the memory, tracker and mitigation
// layers plus per-workload slowdowns.
func TestRunReportRoundTrip(t *testing.T) {
	opts := Options{Scale: 64, Workloads: []string{"parest", "GUPS"}}
	start := time.Now()
	rep, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	report := BuildReport("fig5", opts, rep, time.Since(start))

	raw, err := json.Marshal(obsv.NewReportFile(report))
	if err != nil {
		t.Fatal(err)
	}
	var got obsv.ReportFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	r := got.Reports[0]

	// Required fields survived the trip.
	if r.Schema != obsv.ReportSchema || r.Tool != "experiments" || r.Target != "fig5" {
		t.Fatalf("header = %q %q %q", r.Schema, r.Tool, r.Target)
	}
	if r.GoVersion == "" || r.CreatedAt.IsZero() {
		t.Fatalf("provenance missing: go=%q created=%v", r.GoVersion, r.CreatedAt)
	}
	if r.Params["scale"] != float64(64) {
		t.Errorf("params.scale = %v", r.Params["scale"])
	}

	// Per-workload slowdowns for every scheme.
	if len(r.Workloads) != 2 {
		t.Fatalf("workloads = %d, want 2", len(r.Workloads))
	}
	for _, w := range r.Workloads {
		if len(w.SlowdownPct) == 0 || len(w.NormPerf) == 0 {
			t.Errorf("workload %s missing slowdown/norm-perf", w.Name)
		}
		for s, n := range w.NormPerf {
			if n <= 0 || n > 1.2 {
				t.Errorf("workload %s scheme %s norm_perf = %g", w.Name, s, n)
			}
		}
	}

	// The aggregated metric view must span the layers.
	if len(r.Metrics) < 10 {
		t.Fatalf("aggregated metrics = %d names, want >= 10: %v",
			len(r.Metrics), r.Metrics.Names())
	}
	families := map[string]bool{}
	for _, name := range r.Metrics.Names() {
		families[name[:strings.Index(name, ".")]] = true
	}
	for _, fam := range []string{"memsim", "hydra", "mitig", "rct", "sim"} {
		if !families[fam] {
			t.Errorf("no %s.* metric in report; families seen: %v", fam, families)
		}
	}
	if r.Metrics.Counter("memsim.activates") <= 0 {
		t.Error("memsim.activates not positive")
	}
	if r.Metrics["memsim.readq_depth"].Hist == nil {
		t.Error("memsim.readq_depth histogram missing after round trip")
	}
}

// TestSeedZeroHonored pins the fix for the silent Seed==0 -> 1
// remapping: an explicitly set zero seed must reach the simulator
// unchanged, while an unset seed still defaults to 1.
func TestSeedZeroHonored(t *testing.T) {
	p, err := workload.ByName("parest")
	if err != nil {
		t.Fatal(err)
	}
	if got := (Options{Seed: SeedOf(0)}).withDefaults().baseConfig(p).Seed; got != 0 {
		t.Errorf("explicit seed 0 remapped to %d", got)
	}
	if got := (Options{}).withDefaults().baseConfig(p).Seed; got != 1 {
		t.Errorf("default seed = %d, want 1", got)
	}
	if got := (Options{Seed: SeedOf(42)}).withDefaults().baseConfig(p).Seed; got != 42 {
		t.Errorf("explicit seed 42 became %d", got)
	}
}
