package exp

import (
	"time"

	"repro/internal/obsv"
)

// reportable is implemented by harness reports that can export a
// structured run report (currently PerfReport; table/oracle reports
// ride along in the Extra field).
type reportable interface {
	runReport(rep *obsv.Report)
}

// BuildReport converts one target's harness output into the
// machine-readable run report of internal/obsv. Perf reports export
// per-workload normalized performance, slowdown percentages and
// per-scheme metric snapshots, plus one aggregated metric view
// (counters summed, histograms merged across every simulated run);
// other report shapes are embedded as-is under "extra".
func BuildReport(target string, o Options, rep any, elapsed time.Duration) *obsv.Report {
	o = o.withDefaults()
	out := obsv.NewReport("experiments", target)
	out.ElapsedSec = elapsed.Seconds()
	out.Params = map[string]any{
		"scale":       o.Scale,
		"trh":         o.TRH,
		"seed":        o.seed(),
		"parallelism": o.Parallelism,
	}
	if len(o.Workloads) > 0 {
		out.Params["workloads"] = o.Workloads
	}
	if o.CellParallel {
		out.Params["cell_parallel"] = true
	}
	if r, ok := rep.(reportable); ok {
		r.runReport(out)
	} else {
		out.Extra = rep
	}
	return out
}

// runReport implements reportable for the perf-sweep shape.
func (r *PerfReport) runReport(out *obsv.Report) {
	out.Schemes = append([]string(nil), r.Schemes...)
	out.Cells = append([]obsv.CellStatus(nil), r.Cells...)
	out.Geomeans = map[string]map[string]float64{}
	for _, s := range r.Schemes {
		out.Geomeans[s] = r.SuiteGeomeans(s)
	}
	agg := obsv.Metrics{}
	for _, p := range r.Profiles {
		w := obsv.WorkloadReport{
			Name:        p.Name,
			Suite:       string(p.Suite),
			NormPerf:    map[string]float64{},
			SlowdownPct: map[string]float64{},
			Metrics:     map[string]obsv.Metrics{},
		}
		for _, s := range r.Schemes {
			norm, ok := r.Norm[s][p.Name]
			if !ok {
				continue // failed cell; its verdict is in out.Cells
			}
			w.NormPerf[s] = norm
			w.SlowdownPct[s] = (1 - norm) * 100
		}
		// Deterministic merge order: the report must encode identically
		// across runs (the crash-point sweep compares reports bitwise).
		for _, scheme := range sortedKeys(r.Results) {
			if res, ok := r.Results[scheme][p.Name]; ok && res.Metrics != nil {
				w.Metrics[scheme] = res.Metrics
				agg.Merge(res.Metrics)
			}
		}
		if len(w.NormPerf) == 0 {
			// Every scheme lost this workload: there is no row to
			// report; the failures are recorded in out.Cells.
			continue
		}
		out.Workloads = append(out.Workloads, w)
	}
	// Surface the result-cache traffic next to the simulation metrics so
	// a run report shows what was simulated versus replayed. Only when a
	// cache saw traffic — cacheless runs keep their exact metric set.
	if c := r.Cache; c.Hits+c.Misses+c.Stores > 0 {
		counter := func(name string, v int64, unit string) {
			agg[name] = obsv.Metric{Type: obsv.TypeCounter, Value: float64(v), Unit: unit}
		}
		counter("cache.hits", c.Hits, "cells")
		counter("cache.mem_hits", c.MemHits, "cells")
		counter("cache.disk_hits", c.DiskHits, "cells")
		counter("cache.misses", c.Misses, "cells")
		counter("cache.stores", c.Stores, "cells")
		counter("cache.bytes_read", c.BytesRead, "bytes")
		counter("cache.bytes_written", c.BytesWritten, "bytes")
		if c.CorruptDropped > 0 {
			counter("cache.corrupt_dropped", c.CorruptDropped, "entries")
		}
		if c.StoreErrors > 0 {
			counter("cache.store_errors", c.StoreErrors, "entries")
		}
		if c.Evicted > 0 {
			counter("cache.evicted", c.Evicted, "entries")
		}
		if c.Quarantined > 0 {
			counter("cache.quarantined", c.Quarantined, "entries")
		}
	}
	out.Metrics = agg
}
