package exp

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obsv"
	"repro/internal/sim"
)

// TestSweepIsolatesPanickingVariant is the acceptance drill for the
// campaign harness: a variant whose Mutate panics must not take down
// the sweep — every other cell completes, the failure is attributed to
// its cell, and the JSON run report carries the verdict.
func TestSweepIsolatesPanickingVariant(t *testing.T) {
	o := Options{Scale: 64, Workloads: []string{"parest", "GUPS"}, Target: "resilience"}
	schemes := []Variant{
		{Name: "good", Mutate: func(c *sim.Config) {}},
		{Name: "explosive", Mutate: func(c *sim.Config) { panic("injected fault: variant exploded") }},
	}
	rep, err := Sweep(o, "resilience drill", schemes)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.Norm["good"]); n != 2 {
		t.Fatalf("healthy variant completed %d/2 cells", n)
	}
	if n := len(rep.Norm["explosive"]); n != 0 {
		t.Fatalf("panicking variant produced %d results", n)
	}
	failed := FailedCells(rep.Cells)
	if len(failed) != 2 {
		t.Fatalf("failed cells = %+v, want the 2 explosive ones", failed)
	}
	for _, c := range failed {
		if !strings.HasPrefix(c.Key, "resilience/explosive/") {
			t.Errorf("failure attributed to wrong cell %q", c.Key)
		}
		if !c.Panicked || !strings.Contains(c.Error, "injected fault: variant exploded") {
			t.Errorf("cell %s: panicked=%v error=%q", c.Key, c.Panicked, c.Error)
		}
	}
	if out := rep.Format(); !strings.Contains(out, "FAILED CELLS (2)") {
		t.Errorf("Format does not flag the failed cells:\n%s", out)
	}

	// The machine-readable run report must record the same verdicts and
	// still validate against the hydra-run-report/v1 schema.
	report := BuildReport("resilience", o, rep, time.Second)
	if err := report.Validate(); err != nil {
		t.Fatalf("run report invalid: %v", err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	js := string(data)
	if !strings.Contains(js, `"status":"failed"`) || !strings.Contains(js, "injected fault: variant exploded") {
		t.Errorf("JSON run report missing the failed-cell verdict:\n%s", js)
	}
}

// TestSweepCheckpointResume drives the -resume path end to end: a
// first pass with a broken variant checkpoints its healthy cells; a
// second pass against the same file reruns only what is missing.
func TestSweepCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	o := Options{Scale: 64, Workloads: []string{"parest", "GUPS"}, Target: "resume"}

	cp, err := harness.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoint = cp
	rep1, err := Sweep(o, "pass 1", []Variant{
		{Name: "flaky", Mutate: func(c *sim.Config) { panic("breaks on the first pass") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(FailedCells(rep1.Cells)); n != 2 {
		t.Fatalf("pass 1 failed cells = %d, want 2", n)
	}
	if cp.Len() != 2 { // the two baseline cells
		t.Fatalf("checkpoint holds %d cells after pass 1, want 2 (keys %v)", cp.Len(), cp.Keys())
	}

	// Second pass: same campaign keys, variant fixed. Only the two
	// previously failed cells may execute.
	cp2, err := harness.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	o.Checkpoint = cp2
	var reran atomic.Int64
	rep2, err := Sweep(o, "pass 2", []Variant{
		{Name: "flaky", Mutate: func(c *sim.Config) { reran.Add(1) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := reran.Load(); n != 2 {
		t.Fatalf("resume reran %d cells, want only the 2 missing ones", n)
	}
	var restored int
	for _, c := range rep2.Cells {
		if c.Status == obsv.CellRestored {
			restored++
		}
	}
	if restored != 2 { // the baseline cells came from the checkpoint
		t.Fatalf("restored cells = %d, want 2 (cells %+v)", restored, rep2.Cells)
	}
	if n := len(rep2.Norm["flaky"]); n != 2 {
		t.Fatalf("pass 2 completed %d/2 flaky cells", n)
	}
	if cp2.Len() != 4 {
		t.Fatalf("checkpoint holds %d cells after pass 2, want all 4", cp2.Len())
	}
}
