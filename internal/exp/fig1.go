package exp

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Figure1bRow places one scheme on the SRAM-vs-slowdown plane of the
// paper's Figure 1(b).
type Figure1bRow struct {
	Scheme      string
	SRAMBytes   int // total for the 32 GB two-rank system
	SlowdownPct float64
	InGoal      bool // <= 64 KB per rank and <= 1% slowdown (Section 2.6)
}

// Figure1bReport is the tradeoff summary.
type Figure1bReport struct {
	TRH  int
	Rows []Figure1bRow
}

// Format renders the report.
func (r *Figure1bReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1(b): SRAM overhead vs slowdown at TRH=%d (goal: <=64 KB/rank, <=1%%)\n", r.TRH)
	fmt.Fprintf(&b, "%-12s %14s %12s %8s\n", "scheme", "total SRAM", "slowdown", "goal?")
	for _, row := range r.Rows {
		goal := ""
		if row.InGoal {
			goal = "YES"
		}
		fmt.Fprintf(&b, "%-12s %14s %11.2f%% %8s\n",
			row.Scheme, storage.FormatBytes(row.SRAMBytes), row.SlowdownPct, goal)
	}
	return b.String()
}

// Figure1b reproduces the motivation plot: SRAM-based tracking (high
// storage, low slowdown), DRAM-based tracking (low storage, high
// slowdown), and Hydra in the goal corner.
func Figure1b(o Options) (*Figure1bReport, error) {
	o = o.withDefaults()
	perf, err := perfReport(o, "fig1b",
		[]Variant{
			{Name: "graphene", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackGraphene }},
			{Name: "cra-64KB", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackCRA; c.CRACacheBytes = 64 * 1024 }},
			{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
		})
	if err != nil {
		return nil, err
	}
	rank := storage.PaperRank()
	const ranks = 2
	sram := map[string]int{
		"graphene": ranks * storage.GrapheneBytes(rank, o.TRH),
		"cra-64KB": 64 * 1024,
		"hydra":    storage.HydraBytes(o.TRH),
	}
	rep := &Figure1bReport{TRH: o.TRH}
	for _, scheme := range perf.Schemes {
		slow := stats.SlowdownPct(perf.SuiteGeomeans(scheme)["ALL"])
		bytes := sram[scheme]
		rep.Rows = append(rep.Rows, Figure1bRow{
			Scheme:      scheme,
			SRAMBytes:   bytes,
			SlowdownPct: slow,
			InGoal:      bytes/ranks <= 64*1024 && slow <= 1.0,
		})
	}
	return rep, nil
}
