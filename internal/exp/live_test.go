package exp

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obsv"
)

// TestLiveTelemetryEndToEnd drives the whole telemetry plane the way
// `experiments -listen` wires it: a campaign publishes to a bus and a
// live registry while an HTTP client follows /events as NDJSON and a
// scraper polls /metrics mid-campaign. The stream's terminal events
// must agree with the campaign's cell verdicts, and every scrape must
// be parseable Prometheus exposition.
func TestLiveTelemetryEndToEnd(t *testing.T) {
	bus := harness.NewBus(0)
	live := obsv.NewRegistry()
	srv := obsv.NewServer(obsv.ServerOptions{Gather: live.Snapshot, Events: bus})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Attach the event stream before the campaign so it sees everything.
	resp, err := http.Get(ts.URL + "/events?replay=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Fatalf("/events content type %q", ct)
	}

	type ev struct {
		Schema string            `json:"schema"`
		Seq    int64             `json:"seq"`
		Kind   string            `json:"kind"`
		Key    string            `json:"key"`
		Tags   map[string]string `json:"tags"`
		Cycles int64             `json:"cycles"`
	}
	collected := make(chan []ev, 1)
	go func() {
		var out []ev
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var e ev
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Errorf("NDJSON line %q: %v", sc.Text(), err)
				break
			}
			out = append(out, e)
		}
		collected <- out
	}()

	// Scrape /metrics concurrently with the running cells.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			r, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			checkProm(t, string(body))
			time.Sleep(5 * time.Millisecond)
		}
	}()

	rep, err := Figure5(Options{
		Scale:     256,
		Workloads: []string{"parest", "GUPS"},
		Target:    "livetest",
		Bus:       bus,
		Live:      live,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Close() // campaign over: the NDJSON stream must end
	close(stopScrape)
	<-scrapeDone

	var events []ev
	select {
	case events = <-collected:
	case <-time.After(10 * time.Second):
		t.Fatal("/events stream did not end after bus close")
	}

	// Stream sanity: schema stamped, seq strictly increasing.
	lastSeq := int64(0)
	terminal := map[string]ev{}
	started := map[string]bool{}
	for _, e := range events {
		if e.Schema != harness.CellEventSchema {
			t.Fatalf("event without schema: %+v", e)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case harness.EvStarted:
			started[e.Key] = true
		case harness.EvCached, harness.EvRestored, harness.EvDone, harness.EvFailed:
			if _, dup := terminal[e.Key]; dup {
				t.Errorf("cell %s has two terminal events", e.Key)
			}
			terminal[e.Key] = e
		}
	}

	// The terminal events must match the report's cell verdicts 1:1.
	if len(rep.Cells) == 0 {
		t.Fatal("report has no cells")
	}
	wantKind := map[string]string{
		obsv.CellOK:       harness.EvDone,
		obsv.CellFailed:   harness.EvFailed,
		obsv.CellCached:   harness.EvCached,
		obsv.CellRestored: harness.EvRestored,
	}
	for _, c := range rep.Cells {
		e, ok := terminal[c.Key]
		if !ok {
			t.Errorf("cell %s has no terminal event", c.Key)
			continue
		}
		if want := wantKind[c.Status]; e.Kind != want {
			t.Errorf("cell %s: status %q but terminal event %q", c.Key, c.Status, e.Kind)
		}
		if c.Status == obsv.CellOK {
			if !started[c.Key] {
				t.Errorf("cell %s completed without a started event", c.Key)
			}
			// The event carries the harness-observed progress value; it can
			// trail the simulator's final count but never exceed it.
			if e.Cycles <= 0 || e.Cycles > c.Cycles {
				t.Errorf("cell %s: event cycles %d vs report cycles %d", c.Key, e.Cycles, c.Cycles)
			}
		}
		if e.Tags["target"] != "livetest" || e.Tags["scheme"] == "" || e.Tags["workload"] == "" || e.Tags["seed"] == "" {
			t.Errorf("cell %s: incomplete tags %v", c.Key, e.Tags)
		}
	}
	if len(terminal) != len(rep.Cells) {
		t.Errorf("%d terminal events for %d cells", len(terminal), len(rep.Cells))
	}

	// The final scrape must carry the campaign progress counters and the
	// merged per-cell simulator metrics.
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	samples := checkProm(t, string(body))
	okCells := 0
	for _, c := range rep.Cells {
		if c.Status == obsv.CellOK {
			okCells++
		}
	}
	if got := samples["campaign_cells_ok"]; got != float64(okCells) {
		t.Errorf("campaign_cells_ok = %v, want %d", got, okCells)
	}
	if samples["memsim_reads"] <= 0 {
		t.Errorf("merged simulator metrics absent from /metrics:\n%s", body)
	}
}

// checkProm validates Prometheus text-exposition lines and returns the
// samples (series with labels keyed by the full series string).
func checkProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:sp]] = mustFloat(line[sp+1:])
	}
	return samples
}

func mustFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}
