package exp

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestArenaRestricted runs a cut-down arena (two thresholds, two
// workloads) end to end and checks the three matrices: benign
// performance, security verdicts, adversarial slowdown.
func TestArenaRestricted(t *testing.T) {
	opts := Options{Scale: 64, Workloads: []string{"parest", "GUPS"}}
	rep, err := Arena(opts, []int{1000, 500})
	if err != nil {
		t.Fatal(err)
	}

	if failed := FailedCells(rep.Cells); len(failed) > 0 {
		t.Fatalf("arena lost %d cells, first: %+v", len(failed), failed[0])
	}

	// Benign perf: every scheme@trh geomean present and plausible.
	for _, kind := range ArenaSimSchemes() {
		for _, trh := range rep.Thresholds {
			g := rep.Geomean(kind, trh)
			if g <= 0 || g > 1.05 {
				t.Errorf("geomean %s@%d = %.3f, want (0, 1.05]", kind, trh, g)
			}
		}
	}

	// Security: the deterministic guarantee-sized schemes stay safe
	// against every adversary at every threshold; the under-provisioned
	// START pool is broken by the eviction storm at T_RH=500 — the
	// arena's demonstrable defeat of a non-Hydra tracker.
	for _, s := range []string{"hydra", "graphene", "start", "dapper", "ocpr", "cra"} {
		for _, trh := range rep.Thresholds {
			for _, a := range rep.Adversaries {
				row, ok := rep.SecurityRow(s, trh, a)
				if !ok {
					t.Fatalf("missing security row %s/%d/%s", s, trh, a)
				}
				if !row.Safe {
					t.Errorf("%s broken by %s at T_RH=%d (%d violations)", s, a, trh, row.Violations)
				}
			}
		}
	}
	storm, ok := rep.SecurityRow("start-budget", 500, "rcc-evict")
	if !ok {
		t.Fatal("missing start-budget/500/rcc-evict row")
	}
	if storm.Safe {
		t.Error("under-provisioned START survived the eviction storm at T_RH=500")
	}
	if !storm.Expected {
		t.Error("rcc-evict does not mark start-budget as a target")
	}
	if mint, ok := rep.SecurityRow("mint", 500, "mint-dilute"); !ok || !mint.Expected {
		t.Error("mint-dilute does not mark mint as a target")
	}

	// Mitigation-storm rows record a burst peak for schemes that
	// mitigate at all.
	if row, ok := rep.SecurityRow("graphene", 500, "mitig-storm"); !ok || row.PeakBurst <= 0 {
		t.Errorf("graphene mitig-storm peak = %+v, want positive", row)
	}

	// Adversarial slowdown: every scheme has a verdict for every
	// adversary, all in a plausible normalized-perf band.
	if rep.AdvTRH != 500 || rep.AdvWorkload != "parest" {
		t.Errorf("adv setup = %s@%d, want parest@500", rep.AdvWorkload, rep.AdvTRH)
	}
	for _, s := range rep.Schemes {
		for _, a := range rep.Adversaries {
			v, ok := rep.Slowdown[s][a]
			if !ok {
				t.Errorf("missing slowdown %s/%s", s, a)
				continue
			}
			if v <= 0 || v > 1.5 {
				t.Errorf("slowdown %s/%s = %.3f out of band", s, a, v)
			}
		}
	}

	out := rep.Format()
	for _, want := range []string{"Normalized performance", "Security verdicts",
		"T_RH=500", "Adversarial slowdown", "start-budget", "mint-dilute"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestArenaRejectsBadThreshold(t *testing.T) {
	if _, err := Arena(Options{Workloads: []string{"parest"}}, []int{1}); err == nil {
		t.Fatal("threshold 1 accepted")
	}
}

// TestArenaVariantNaming pins the scheme@trh convention run reports
// and cached cell keys rely on.
func TestArenaVariantNaming(t *testing.T) {
	if got := arenaVariant(sim.TrackSTART, 500); got != "start@500" {
		t.Fatalf("arenaVariant = %q, want start@500", got)
	}
}
