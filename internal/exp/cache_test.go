package exp

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/obsv"
	"repro/internal/sim"
)

func newCache(t *testing.T, dir string) *harness.CellCache {
	t.Helper()
	c, err := harness.NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Decode = DecodeResult
	return c
}

func countStatus(cells []obsv.CellStatus, status string) int {
	n := 0
	for _, c := range cells {
		if c.Status == status {
			n++
		}
	}
	return n
}

// TestCachedSweepDeterminism is the tentpole acceptance test: the same
// figure produced without a cache, with a cold disk cache, warm from
// the in-memory tier, and replayed purely from disk by a fresh cache
// instance must format bitwise identically. sim.Result survives the
// JSON round-trip exactly (float64 round-trips per RFC 8785 semantics
// in encoding/json), so a replayed report has no excuse to drift.
func TestCachedSweepDeterminism(t *testing.T) {
	fresh, err := Figure5(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Format()

	dir := t.TempDir()
	cold := fastOptions()
	cold.Cache = newCache(t, dir)
	repCold, err := Figure5(cold)
	if err != nil {
		t.Fatal(err)
	}
	if got := repCold.Format(); got != want {
		t.Fatalf("cold-cache report differs from cacheless run:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if repCold.Cache.Hits != 0 || repCold.Cache.Stores == 0 {
		t.Fatalf("cold run cache traffic = %+v, want 0 hits and >0 stores", repCold.Cache)
	}

	// Warm in-memory tier: same cache, same process.
	warm := fastOptions()
	warm.Cache = cold.Cache
	repWarm, err := Figure5(warm)
	if err != nil {
		t.Fatal(err)
	}
	if got := repWarm.Format(); got != want {
		t.Fatalf("warm-cache report differs:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if repWarm.Cache.Misses != 0 || repWarm.Cache.MemHits == 0 {
		t.Fatalf("warm run cache traffic = %+v, want all memory hits", repWarm.Cache)
	}
	if n := countStatus(repWarm.Cells, obsv.CellCached); n != len(repWarm.Cells) {
		t.Fatalf("%d of %d warm cells marked cached", n, len(repWarm.Cells))
	}

	// Disk tier: a fresh cache instance over the same directory, as a
	// new `experiments -cache-dir` invocation would see it.
	disk := fastOptions()
	disk.Cache = newCache(t, dir)
	repDisk, err := Figure5(disk)
	if err != nil {
		t.Fatal(err)
	}
	if got := repDisk.Format(); got != want {
		t.Fatalf("disk-replayed report differs:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if repDisk.Cache.DiskHits == 0 || repDisk.Cache.Misses != 0 {
		t.Fatalf("disk run cache traffic = %+v, want all disk hits", repDisk.Cache)
	}
}

// TestCacheDedupAcrossFigures pins the `experiments all` sharing
// behaviour: Figures 5 and 8 sweep the same baseline and hydra cells
// over the same workloads, so with a shared cache the second figure
// simulates only its two novel variants — each unique (config,
// workload, seed) combination runs exactly once per process.
func TestCacheDedupAcrossFigures(t *testing.T) {
	cache := newCache(t, "")
	o5 := fastOptions()
	o5.Cache = cache
	o5.Target = "fig5"
	if _, err := Figure5(o5); err != nil {
		t.Fatal(err)
	}
	storesAfter5 := cache.Stats().Stores

	o8 := fastOptions()
	o8.Cache = cache
	o8.Target = "fig8"
	rep8, err := Figure8(o8)
	if err != nil {
		t.Fatal(err)
	}
	wl := len(o8.Workloads)
	// Figure 8 runs baseline + {nogct, norcc, hydra}; baseline and
	// hydra were already simulated for Figure 5.
	if got, want := rep8.Cache.Hits, int64(2*wl); got != want {
		t.Fatalf("fig8 reused %d cells, want %d (baseline+hydra x %d workloads)", got, want, wl)
	}
	if got, want := rep8.Cache.Misses, int64(2*wl); got != want {
		t.Fatalf("fig8 simulated %d cells, want %d (nogct+norcc only)", got, want)
	}
	if got, want := cache.Stats().Stores-storesAfter5, int64(2*wl); got != want {
		t.Fatalf("fig8 stored %d new cells, want %d", got, want)
	}
	for _, c := range rep8.Cells {
		isShared := strings.Contains(c.Key, "/baseline/") || strings.Contains(c.Key, "/hydra/")
		if isShared && c.Status != obsv.CellCached {
			t.Errorf("shared cell %s has status %q, want cached", c.Key, c.Status)
		}
		if !isShared && c.Status != obsv.CellOK {
			t.Errorf("novel cell %s has status %q, want ok", c.Key, c.Status)
		}
	}
}

// TestPerfReportMarksBaselineMissing pins the satellite contract: a
// scheme cell that simulated fine but lost its baseline is marked
// baseline-missing — distinct from failed — and excluded from Norm.
// The baseline loss is induced end to end by poisoning a checkpoint
// with a zero-cycle baseline result for one workload: the restore
// succeeds, then the zero-cycle filter fails that baseline cell.
func TestPerfReportMarksBaselineMissing(t *testing.T) {
	o := fastOptions()
	o.Workloads = []string{"parest", "GUPS"}
	o.Target = "bm"
	cp, err := harness.OpenCheckpoint(filepath.Join(t.TempDir(), "cp.json"))
	if err != nil {
		t.Fatal(err)
	}
	cp.Decode = DecodeResult
	if err := cp.Store("bm/baseline/parest", sim.Result{Cycles: 0}); err != nil {
		t.Fatal(err)
	}
	o.Checkpoint = cp

	rep, err := Sweep(o, "baseline-missing probe", []Variant{
		{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got obsv.CellStatus
	for _, c := range rep.Cells {
		if c.Key == "bm/hydra/parest" {
			got = c
		}
	}
	if got.Status != obsv.CellBaselineMissing {
		t.Fatalf("scheme cell over failed baseline has status %q (%+v), want %q",
			got.Status, got, obsv.CellBaselineMissing)
	}
	if got.Error == "" || !strings.Contains(got.Error, "baseline") {
		t.Fatalf("baseline-missing cell carries reason %q, want a baseline mention", got.Error)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("baseline-missing status does not validate: %v", err)
	}
	if _, ok := rep.Norm["hydra"]["parest"]; ok {
		t.Fatal("unnormalizable cell leaked into Norm")
	}
	// The untouched workload still normalizes, and its cells stayed ok.
	if _, ok := rep.Norm["hydra"]["GUPS"]; !ok {
		t.Fatal("healthy workload lost its normalization")
	}
	// The baseline cell itself reports failed (zero cycles), keeping
	// the two failure modes separable in the same report.
	for _, c := range rep.Cells {
		if c.Key == "bm/baseline/parest" && c.Status != obsv.CellFailed {
			t.Fatalf("poisoned baseline cell has status %q, want failed", c.Status)
		}
	}
}
