package exp

import (
	"strings"
	"testing"
)

// TestChaosCampaignVerdicts runs every built-in fault scenario and
// checks the security story the campaign exists to tell: the control
// holds the guarantee, losing all victim refreshes is detected as
// degradation (never silent), and window postponement is absorbed by
// the T_RH/2 tracker margin.
func TestChaosCampaignVerdicts(t *testing.T) {
	rep, err := Chaos(Options{Scale: 64, Parallelism: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want one per built-in scenario (%+v)", len(rep.Rows), rep.Cells)
	}
	for _, row := range rep.Rows {
		if row.GuaranteeHeld == row.DegradationDetected {
			t.Errorf("%s: verdict must be exactly one of held/degraded: %+v", row.Scenario, row)
		}
	}

	ctrl, ok := rep.Row("none")
	if !ok || !ctrl.GuaranteeHeld {
		t.Fatalf("control scenario broken: %+v", ctrl)
	}
	if ctrl.DroppedRefreshes+ctrl.CorruptedEntries+ctrl.PostponedResets != 0 {
		t.Errorf("control injected faults: %+v", ctrl)
	}
	if ctrl.Mitigations == 0 {
		t.Errorf("control attack triggered no mitigations; campaign fixture too weak")
	}

	drop, ok := rep.Row("refresh-drop")
	if !ok || !drop.DegradationDetected {
		t.Fatalf("dropped refreshes went undetected: %+v", drop)
	}
	if drop.DroppedRefreshes == 0 || drop.Violations == 0 || drop.MaxUnmitigated < rep.TRH {
		t.Errorf("refresh-drop row inconsistent: %+v", drop)
	}

	corrupt, ok := rep.Row("rct-corruption")
	if !ok || corrupt.CorruptedEntries == 0 {
		t.Errorf("rct-corruption injected nothing: %+v", corrupt)
	}

	postpone, ok := rep.Row("refresh-postpone")
	if !ok || postpone.PostponedResets == 0 {
		t.Fatalf("refresh-postpone stretched no windows: %+v", postpone)
	}
	if !postpone.GuaranteeHeld {
		t.Errorf("T_RH/2 margin did not absorb a one-window postponement: %+v", postpone)
	}

	for _, c := range rep.Cells {
		if c.Status != "ok" {
			t.Errorf("cell %s = %s: %s", c.Key, c.Status, c.Error)
		}
	}
	out := rep.Format()
	if !strings.Contains(out, "guarantee-held") || !strings.Contains(out, "degradation-detected") {
		t.Errorf("format missing verdicts:\n%s", out)
	}
}

func TestChaosScenarioSelection(t *testing.T) {
	rep, err := Chaos(Options{Scale: 64}, []string{"none"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Scenario != "none" {
		t.Fatalf("rows = %+v", rep.Rows)
	}
	if _, err := Chaos(Options{Scale: 64}, []string{"nosuch"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
