package exp

import (
	"strings"
	"testing"
)

func TestExtensionRandomizedCloseToStatic(t *testing.T) {
	opts := Options{Scale: 16, Workloads: []string{"parest", "xz"}}
	rep, err := ExtensionRandomized(opts)
	if err != nil {
		t.Fatal(err)
	}
	static := rep.SuiteGeomeans("hydra-static")["ALL"]
	random := rep.SuiteGeomeans("hydra-random")["ALL"]
	t.Logf("static=%.4f random=%.4f", static, random)
	// The paper reports within 0.1% at full scale; scaled runs add
	// variance, so allow 3%.
	if diff := static - random; diff > 0.03 || diff < -0.03 {
		t.Errorf("randomized indexing diverges: static=%.4f random=%.4f", static, random)
	}
}

func TestExtensionDDR5(t *testing.T) {
	opts := Options{Scale: 64, Workloads: []string{"parest", "bwaves"}}
	rep, err := ExtensionDDR5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.SRAMBytes <= 0 {
			t.Errorf("%s: SRAM = %d", row.Workload, row.SRAMBytes)
		}
		if row.DDR5Slowdown < -2 || row.DDR5Slowdown > 50 {
			t.Errorf("%s: DDR5 slowdown = %v%%", row.Workload, row.DDR5Slowdown)
		}
	}
	if out := rep.Format(); !strings.Contains(out, "per-controller") {
		t.Error("format missing SRAM note")
	}
}

func TestExtensionRowSwap(t *testing.T) {
	rep, err := ExtensionRowSwap(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefreshMitig == 0 || rep.SwapMitig == 0 {
		t.Fatalf("no mitigations: %+v", rep)
	}
	// Victim refresh does 4 activations per mitigation; swap does 2.
	if rep.RefreshExtraActs != 4*rep.RefreshMitig {
		t.Errorf("refresh extra acts = %d, want %d", rep.RefreshExtraActs, 4*rep.RefreshMitig)
	}
	if rep.SwapExtraActs != 2*rep.SwapMitig {
		t.Errorf("swap extra acts = %d, want %d", rep.SwapExtraActs, 2*rep.SwapMitig)
	}
	if out := rep.Format(); !strings.Contains(out, "row-swap") {
		t.Error("format missing policy row")
	}
}

func TestExtensionPolicies(t *testing.T) {
	opts := Options{Scale: 32, Workloads: []string{"parest"}}
	rep, err := ExtensionPolicies(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	row := rep.Rows[0]
	t.Logf("refresh=%.2f%% rowswap=%.2f%% throttle=%.2f%%",
		row.RefreshPct, row.RowSwapPct, row.ThrottlePct)
	// Footnote 6's ordering: refresh cheapest, throttle a DoS.
	if row.ThrottlePct < row.RefreshPct {
		t.Errorf("throttle (%.2f%%) cheaper than refresh (%.2f%%)", row.ThrottlePct, row.RefreshPct)
	}
	if row.ThrottlePct < 20 {
		t.Errorf("throttle slowdown %.2f%%; footnote 6 predicts DoS on parest", row.ThrottlePct)
	}
	if out := rep.Format(); !strings.Contains(out, "throttle") {
		t.Error("format missing policy")
	}
}

func TestFigure1bGoalCorner(t *testing.T) {
	opts := Options{Scale: 32, Workloads: []string{"parest", "bwaves", "leela", "GUPS"}}
	rep, err := Figure1b(opts)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]Figure1bRow{}
	for _, row := range rep.Rows {
		byScheme[row.Scheme] = row
	}
	h := byScheme["hydra"]
	g := byScheme["graphene"]
	c := byScheme["cra-64KB"]
	// The Figure 1(b) geometry: Graphene has >10x Hydra's SRAM; CRA
	// has comparable SRAM but much larger slowdown; Hydra is in the
	// goal corner.
	if g.SRAMBytes < 10*h.SRAMBytes {
		t.Errorf("graphene SRAM %d not >> hydra %d", g.SRAMBytes, h.SRAMBytes)
	}
	if c.SlowdownPct < 3*h.SlowdownPct && c.SlowdownPct < 5 {
		t.Errorf("CRA slowdown %.2f%% not >> hydra %.2f%%", c.SlowdownPct, h.SlowdownPct)
	}
	// Hydra meets the storage half of the goal unconditionally; the
	// <=1% half holds on the full suite (EXPERIMENTS.md) but not on
	// this deliberately hot 4-workload subset, so it is not asserted.
	if h.SRAMBytes/2 > 64*1024 {
		t.Errorf("hydra SRAM %d exceeds the 64 KB/rank goal", h.SRAMBytes)
	}
	if g.InGoal {
		t.Errorf("graphene in the goal corner despite %d bytes", g.SRAMBytes)
	}
}
