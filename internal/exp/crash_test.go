package exp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/iofault"
	"repro/internal/obsv"
	"repro/internal/testutil"
)

// crashCampaign runs one small cached+checkpointed Figure-5 campaign
// with all storage IO routed through fsys, writes its report through
// fsys too, and returns the normalized report encoding. Parallelism is
// 1 so the IO-operation sequence is reproducible across runs — the
// requirement for a crash-index sweep to be meaningful.
func crashCampaign(t *testing.T, fsys iofault.FS, dir string, ctx context.Context, workloads []string) ([]byte, error) {
	t.Helper()
	cache, err := harness.NewCellCacheFS(filepath.Join(dir, "cache"), fsys)
	if err != nil {
		return nil, err
	}
	cache.Decode = DecodeResult
	cp, err := harness.OpenCheckpointFS(filepath.Join(dir, "ckpt.json"), fsys)
	if err != nil {
		return nil, err
	}
	cp.Decode = DecodeResult
	o := Options{
		Scale:       64,
		Workloads:   workloads,
		Parallelism: 1,
		Target:      "fig5",
		Cache:       cache,
		Checkpoint:  cp,
		Ctx:         ctx,
	}
	rep, err := Figure5(o)
	if err != nil {
		return nil, err
	}
	rf := obsv.NewReportFile(BuildReport("fig5", o, rep, 0))
	if err := rf.WriteFileFS(fsys, filepath.Join(dir, "report.json")); err != nil {
		return nil, err
	}
	rf.Normalize()
	var buf bytes.Buffer
	if err := rf.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestCrashPointSweep kills the storage plane at every IO operation of
// a cached+checkpointed campaign, then restarts over the surviving
// on-disk state and requires the resumed run's report to be bitwise
// identical to an uninterrupted run's. No crash index may corrupt a
// result undetected: a torn entry must land in quarantine and
// re-simulate, never decode into the report.
func TestCrashPointSweep(t *testing.T) {
	workloads := testutil.Pick(t, []string{"parest"}, []string{"parest", "bwaves", "GUPS", "leela"})
	ctx := context.Background()

	// Reference: one clean run on the real filesystem.
	want, err := crashCampaign(t, iofault.OS{}, t.TempDir(), ctx, workloads)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Learn the IO-operation count of a clean run (and re-check
	// determinism through the passthrough injector while at it).
	probe := iofault.NewInjector(iofault.OS{})
	got, err := crashCampaign(t, probe, t.TempDir(), ctx, workloads)
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("probe run diverged from reference:\n%s\nvs\n%s", got, want)
	}
	nops := probe.Ops()
	if nops < 10 {
		t.Fatalf("campaign performed only %d IO ops; injector not wired through?", nops)
	}
	testutil.Logf(t, "sweeping %d crash points over %d workloads", nops, len(workloads))

	for i := 0; i < nops; i++ {
		dir := t.TempDir()
		in := iofault.NewInjector(iofault.OS{})
		in.Plan = iofault.CrashPlan(i)
		cctx, cancel := context.WithCancel(ctx)
		// A real crash kills the process; here the campaign context dies
		// with the storage plane.
		in.OnFault = func(iofault.Op, iofault.Fault) { cancel() }
		if _, err := crashCampaign(t, in, dir, cctx, workloads); err == nil && in.Crashed() {
			t.Fatalf("crash at op %d: campaign reported success", i)
		}
		cancel()

		// Restart: same directories, healthy filesystem.
		got, err := crashCampaign(t, iofault.OS{}, dir, ctx, workloads)
		if err != nil {
			t.Fatalf("crash at op %d: resume failed: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("crash at op %d: resumed report differs from reference:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestCrashAfterDroppedSyncsQuarantines drops every sync (so nothing
// is durable) and then crashes, leaving visible-but-torn files behind
// — the scenario fsync discipline exists for. The restarted campaign
// must detect every torn artifact (cache entries quarantine with a
// counter, a torn checkpoint moves to .corrupt) and still reproduce
// the reference report exactly.
func TestCrashAfterDroppedSyncsQuarantines(t *testing.T) {
	workloads := []string{"parest"}
	ctx := context.Background()

	want, err := crashCampaign(t, iofault.OS{}, t.TempDir(), ctx, workloads)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	probe := iofault.NewInjector(iofault.OS{})
	if _, err := crashCampaign(t, probe, t.TempDir(), ctx, workloads); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	nops := probe.Ops()

	stride := testutil.Pick(t, 7, 1)
	dropSyncs := func(op iofault.Op) iofault.Fault {
		if op.Kind == "sync" || op.Kind == "syncdir" {
			return iofault.FaultDropSync
		}
		return iofault.FaultNone
	}
	sawQuarantine := false
	for i := 0; i < nops; i += stride {
		dir := t.TempDir()
		in := iofault.NewInjector(iofault.OS{})
		in.Plan = iofault.ThenCrash(dropSyncs, i)
		cctx, cancel := context.WithCancel(ctx)
		in.OnFault = func(_ iofault.Op, f iofault.Fault) {
			if f == iofault.FaultCrash {
				cancel()
			}
		}
		crashCampaign(t, in, dir, cctx, workloads) //nolint:errcheck // crashed on purpose
		cancel()

		cache, err := harness.NewCellCacheFS(filepath.Join(dir, "cache"), iofault.OS{})
		if err != nil {
			t.Fatalf("crash at op %d: reopening cache: %v", i, err)
		}
		cache.Decode = DecodeResult
		cp, err := harness.OpenCheckpointFS(filepath.Join(dir, "ckpt.json"), iofault.OS{})
		if err != nil {
			t.Fatalf("crash at op %d: reopening checkpoint: %v", i, err)
		}
		cp.Decode = DecodeResult
		o := Options{
			Scale: 64, Workloads: workloads, Parallelism: 1,
			Target: "fig5", Cache: cache, Checkpoint: cp,
		}
		rep, err := Figure5(o)
		if err != nil {
			t.Fatalf("crash at op %d: resume failed: %v", i, err)
		}
		rf := obsv.NewReportFile(BuildReport("fig5", o, rep, 0))
		rf.Normalize()
		var buf bytes.Buffer
		if err := rf.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("crash at op %d: resumed report differs from reference", i)
		}

		// Corruption must be detected, never silent: every quarantined
		// file was counted, and torn entries never reach results (the
		// report equality above is that assertion).
		qdir := filepath.Join(dir, "cache", harness.QuarantineDir)
		if ents, err := os.ReadDir(qdir); err == nil && len(ents) > 0 {
			sawQuarantine = true
			if q := cache.Stats().Quarantined; q != int64(len(ents)) {
				t.Fatalf("crash at op %d: %d files in quarantine but counter says %d",
					i, len(ents), q)
			}
		}
		if cp.Recovered() != "" && !strings.Contains(cp.Recovered(), ".corrupt") {
			t.Fatalf("crash at op %d: odd recovery message %q", i, cp.Recovered())
		}
	}
	testutil.Logf(t, "swept %d drop-sync crash points (stride %d), quarantine exercised: %v",
		(nops+stride-1)/stride, stride, sawQuarantine)
}
