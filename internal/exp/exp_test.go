package exp

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/workload"
)

// fastOptions keeps harness tests quick: a handful of representative
// workloads at a heavy footprint scale.
func fastOptions() Options {
	return Options{
		Scale:     64,
		Workloads: []string{"parest", "bwaves", "GUPS", "leela"},
	}
}

func TestFigure5ShapeHolds(t *testing.T) {
	rep, err := Figure5(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	all := map[string]float64{}
	for _, s := range rep.Schemes {
		all[s] = rep.SuiteGeomeans(s)["ALL"]
	}
	t.Logf("ALL geomeans: %v", all)
	if all["graphene"] < 0.97 {
		t.Errorf("graphene = %.3f, want ~1.0", all["graphene"])
	}
	if all["hydra"] < 0.90 || all["hydra"] > 1.001 {
		t.Errorf("hydra = %.3f, want slightly below 1.0", all["hydra"])
	}
	if all["cra-64KB"] >= all["hydra"] {
		t.Errorf("CRA (%.3f) should be worse than Hydra (%.3f)", all["cra-64KB"], all["hydra"])
	}
	if out := rep.Format(); !strings.Contains(out, "GEO:ALL") || !strings.Contains(out, "parest") {
		t.Errorf("format missing rows:\n%s", out)
	}
}

func TestFigure2CacheSizeMonotonicity(t *testing.T) {
	// Cache-sensitive hot workloads at a moderate scale: the regime
	// where the paper's Figure 2 trend (bigger metadata cache, less
	// slowdown) is meaningful. Streaming workloads whose footprint
	// dwarfs every cache show a small non-monotonicity from writeback
	// row-locality, noted in EXPERIMENTS.md.
	opts := Options{Scale: 16, Workloads: []string{"parest", "xz"}}
	rep, err := Figure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	g64 := rep.SuiteGeomeans("cra-64KB")["ALL"]
	g256 := rep.SuiteGeomeans("cra-256KB")["ALL"]
	t.Logf("cra 64KB=%.3f 256KB=%.3f", g64, g256)
	if g256 < g64-0.02 {
		t.Errorf("larger metadata cache worse: 64KB=%.3f 256KB=%.3f", g64, g256)
	}
	if g64 > 0.99 {
		t.Errorf("CRA-64KB shows no slowdown (%.3f); motivation study broken", g64)
	}
}

func TestFigure6DistributionSane(t *testing.T) {
	rep, err := Figure6(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	gct, rcc, rct := rep.Averages()
	t.Logf("avg: gct=%.3f rcc=%.3f rct=%.3f", gct, rcc, rct)
	if s := gct + rcc + rct; s < 0.999 || s > 1.001 {
		t.Fatalf("fractions sum to %.4f", s)
	}
	if gct < 0.5 {
		t.Errorf("GCT-only fraction %.3f; expected the GCT to dominate", gct)
	}
	if rct > rcc {
		t.Errorf("RCT fraction (%.3f) above RCC (%.3f); cache should absorb most", rct, rcc)
	}
	if out := rep.Format(); !strings.Contains(out, "AVERAGE") {
		t.Error("format missing average row")
	}
}

func TestFigure7ThresholdSensitivity(t *testing.T) {
	rep, err := Figure7(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	all500 := rep.SlowdownPct["TRH=500"]["ALL"]
	all125 := rep.SlowdownPct["TRH=125"]["ALL"]
	t.Logf("slowdown: 500=%.2f%% 125=%.2f%%", all500, all125)
	if all125 < all500 {
		t.Errorf("slowdown at TRH=125 (%.2f%%) below TRH=500 (%.2f%%)", all125, all500)
	}
	if out := rep.Format(); !strings.Contains(out, "TRH=250") {
		t.Error("format missing sweep point")
	}
}

func TestFigure8AblationShape(t *testing.T) {
	rep, err := Figure8(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	full := rep.SuiteGeomeans("hydra")["ALL"]
	noRCC := rep.SuiteGeomeans("hydra-norcc")["ALL"]
	noGCT := rep.SuiteGeomeans("hydra-nogct")["ALL"]
	t.Logf("norm perf: full=%.3f norcc=%.3f nogct=%.3f", full, noRCC, noGCT)
	if noGCT >= noRCC || noRCC > full+0.001 {
		t.Errorf("ablation ordering broken: full=%.3f norcc=%.3f nogct=%.3f", full, noRCC, noGCT)
	}
}

func TestFigure9GCTSizeSweep(t *testing.T) {
	opts := fastOptions()
	opts.Workloads = []string{"parest", "GUPS"}
	rep, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	small := rep.SlowdownPct["16K"]["ALL"]
	large := rep.SlowdownPct["64K"]["ALL"]
	t.Logf("slowdown: 16K=%.2f%% 64K=%.2f%%", small, large)
	if large > small+0.5 {
		t.Errorf("larger GCT worse: 16K=%.2f%% 64K=%.2f%%", small, large)
	}
}

func TestFigure10TGSweepRuns(t *testing.T) {
	opts := fastOptions()
	opts.Workloads = []string{"parest", "GUPS"}
	rep, err := Figure10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %v", rep.Points)
	}
	for _, pt := range rep.Points {
		if _, ok := rep.SlowdownPct[pt]["ALL"]; !ok {
			t.Fatalf("missing ALL for %s", pt)
		}
	}
}

func TestTable3Validation(t *testing.T) {
	opts := fastOptions()
	opts.Workloads = []string{"parest", "GUPS"}
	rep, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		sp := row.Profile.Scaled(opts.Scale)
		if row.Measured.UniqueRows == 0 {
			t.Fatalf("%s: empty characterization", row.Profile.Name)
		}
		ratio := float64(row.Measured.UniqueRows) / float64(sp.UniqueRows)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("%s: unique rows ratio %.2f", row.Profile.Name, ratio)
		}
	}
	if out := rep.Format(); !strings.Contains(out, "parest") {
		t.Error("format missing workload")
	}
}

func TestStaticTablesRender(t *testing.T) {
	for name, text := range map[string]string{
		"table1": Table1Text(),
		"table2": Table2Text(),
		"table4": Table4Text(),
		"table5": Table5Text(0),
	} {
		if len(text) < 100 {
			t.Errorf("%s suspiciously short:\n%s", name, text)
		}
	}
	if !strings.Contains(Table1Text(), "32000") {
		t.Error("table1 missing 32000 row")
	}
	if !strings.Contains(Table4Text(), "56.5 KB") {
		t.Error("table4 missing total")
	}
}

func TestPowerReport(t *testing.T) {
	opts := fastOptions()
	opts.Workloads = []string{"parest", "bwaves"}
	rep, err := Power(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgPct < 0 || rep.AvgPct > 10 {
		t.Fatalf("avg DRAM overhead = %v%%", rep.AvgPct)
	}
	if rep.SRAM.TotalMW() != 18.6 {
		t.Fatalf("SRAM power = %v", rep.SRAM.TotalMW())
	}
	if out := rep.Format(); !strings.Contains(out, "18.6 mW") {
		t.Error("format missing SRAM power")
	}
}

func TestOptionsValidation(t *testing.T) {
	opts := Options{Workloads: []string{"nosuch"}}
	if _, err := Figure5(opts); err == nil {
		t.Fatal("unknown workload accepted")
	}
	d := Options{}.withDefaults()
	if d.Scale != 16 || d.TRH != 500 || d.Parallelism <= 0 {
		t.Fatalf("defaults = %+v", d)
	}
}

// TestCellParallelAutoDisable pins the layering rule: per-cell channel
// fan-out only survives when the campaign pool leaves cores idle. A
// saturated pool (Parallelism >= NumCPU, or the default) silently runs
// serial cells; an undersubscribed pool keeps the flag and plumbs it
// into every cell config.
func TestCellParallelAutoDisable(t *testing.T) {
	sat := Options{CellParallel: true}.withDefaults()
	if sat.CellParallel {
		t.Errorf("CellParallel survived a default (saturated) pool")
	}
	p, err := workload.ByName("parest")
	if err != nil {
		t.Fatal(err)
	}
	under := Options{CellParallel: true, Parallelism: runtime.NumCPU() + 4}.withDefaults()
	// An oversubscribed pool is also saturated; only strictly fewer
	// workers than CPUs leaves room.
	if under.CellParallel {
		t.Errorf("CellParallel survived an oversubscribed pool")
	}
	if runtime.NumCPU() > 1 {
		free := Options{CellParallel: true, Parallelism: 1}.withDefaults()
		if !free.CellParallel {
			t.Errorf("CellParallel dropped despite an undersubscribed pool")
		}
		if !free.baseConfig(p).Parallel {
			t.Errorf("CellParallel not plumbed into the cell config")
		}
	}
	if (Options{}).withDefaults().baseConfig(p).Parallel {
		t.Errorf("cell config Parallel set without CellParallel")
	}
}

// TestChaosRejectsCellParallel pins the documented incompatibility at
// the campaign boundary, before any cell runs.
func TestChaosRejectsCellParallel(t *testing.T) {
	_, err := Chaos(Options{Scale: 64, CellParallel: true}, []string{"none"})
	if err == nil {
		t.Fatal("chaos campaign accepted CellParallel")
	}
	if !strings.Contains(err.Error(), "cell-parallel") && !strings.Contains(err.Error(), "CellParallel") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
