// Package exp is the experiment harness: one runner per table and
// figure of the paper's evaluation (Section 6 plus the motivation
// figures of Section 2). Each runner sweeps the 36 workloads across
// the relevant tracker configurations in parallel, normalizes against
// the non-secure baseline, and produces a formatted report with the
// same rows/series the paper plots.
package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/obsv"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options control a harness run.
type Options struct {
	// Scale divides every workload footprint (and tracker structures)
	// so a figure regenerates in bounded time; 1 reproduces the full
	// 64 ms window. Default 16.
	Scale float64
	// TRH is the target row-hammer threshold (default 500).
	TRH int
	// Workloads restricts the sweep to the named workloads (default:
	// all 36).
	Workloads []string
	// Parallelism bounds concurrent simulations (default: NumCPU).
	Parallelism int
	// CellParallel runs each simulation's memory channels on worker
	// goroutines (sim.Config.Parallel) — bitwise-identical results,
	// useful when a campaign has fewer cells than cores. It is
	// auto-disabled when the campaign pool already saturates the CPUs
	// (harness.PoolSaturated): the two parallelism levels compete for
	// the same cores, and the cell-level pool wins. Incompatible with
	// the chaos campaign, whose fault injector is not shard-safe.
	CellParallel bool
	// Seed makes runs reproducible. Nil selects the default seed (1);
	// any explicitly set value — including 0 — is used as-is, so seed
	// 0 is reproducible as itself (use SeedOf to build the pointer).
	Seed *uint64
	// Trace, when non-nil, records simulation events (activations,
	// mitigations, refreshes, GCT saturations, window resets) from
	// every run of the sweep. Because runs execute concurrently, the
	// harness serializes the sweep (Parallelism 1) while tracing and
	// separates runs with EvRunStart markers tagged "scheme/workload".
	Trace *obsv.Tracer

	// Target names the experiment target; it prefixes every campaign
	// cell key ("target/variant/workload") so checkpoints and run
	// reports from different targets never collide. Default "sweep".
	Target string
	// CellTimeout bounds each sweep cell's wall-clock time; 0 leaves
	// cells unbounded.
	CellTimeout time.Duration
	// StallTimeout kills cells whose simulated-cycle counter stops
	// advancing for this long (0 disables the watchdog).
	StallTimeout time.Duration
	// Retries re-runs failed cells up to this many extra times with a
	// perturbed seed (see harness.Env.Attempt).
	Retries int
	// Checkpoint, when non-nil, restores previously completed cells and
	// records new ones, enabling -resume across interrupted campaigns.
	Checkpoint *harness.Checkpoint
	// Cache, when non-nil, memoizes cell results by content-addressed
	// config hash (sim.Config.CacheKey): identical cells across targets
	// of one process — e.g. the non-secure baseline every figure
	// re-simulates — run once and replay everywhere else, and with a
	// disk-backed cache across invocations too. The recorded per-cell
	// wall-clock also drives longest-first campaign scheduling.
	Cache *harness.CellCache
	// Bus, when non-nil, receives a hydra-cell-event/v1 CellEvent for
	// every cell lifecycle transition, tagged with scheme, workload and
	// seed — the feed behind the live progress line and the /events
	// NDJSON stream (obsv.Server). The caller owns the bus lifetime.
	Bus *harness.Bus
	// Live, when non-nil, accumulates every finished cell's metric
	// snapshot as the campaign runs (counters summed, gauges maxed,
	// histograms merged) plus the campaign.cells.* progress counters,
	// so an HTTP /metrics scrape mid-campaign sees current totals
	// instead of waiting for the run report.
	Live *obsv.Registry
	// Ctx, when non-nil, is the campaign context: cancelling it aborts
	// in-flight cells at their next progress poll and fails the sweep
	// with the cancellation cause. The binaries pass the signal context
	// from cli.Main here so SIGINT/SIGTERM shuts a campaign down
	// gracefully (final checkpoint already flushed per finished cell).
	// Nil means context.Background() — never cancelled.
	Ctx context.Context
}

// SeedOf returns a pointer to seed, for Options.Seed literals.
func SeedOf(seed uint64) *uint64 { return &seed }

// ctx returns the campaign context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 16
	}
	if o.TRH <= 0 {
		o.TRH = 500
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.Trace != nil {
		o.Parallelism = 1
	}
	if o.CellParallel && harness.PoolSaturated(o.Parallelism) {
		o.CellParallel = false
	}
	if o.Seed == nil {
		o.Seed = SeedOf(1)
	}
	return o
}

// seed returns the effective workload seed.
func (o Options) seed() uint64 {
	if o.Seed == nil {
		return 1
	}
	return *o.Seed
}

// profiles resolves the workload list.
func (o Options) profiles() ([]workload.Profile, error) {
	if len(o.Workloads) == 0 {
		return workload.Profiles(), nil
	}
	var ps []workload.Profile
	for _, name := range o.Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// baseConfig builds the common simulation config for a profile.
func (o Options) baseConfig(p workload.Profile) sim.Config {
	cfg := sim.Default(p)
	cfg.Scale = o.Scale
	cfg.TRH = o.TRH
	cfg.Seed = o.seed()
	cfg.Trace = o.Trace
	cfg.Parallel = o.CellParallel
	return cfg
}

// Variant is one tracker configuration in a sweep.
type Variant struct {
	Name   string
	Mutate func(*sim.Config)
}

// target returns the cell-key prefix.
func (o Options) target() string {
	if o.Target == "" {
		return "sweep"
	}
	return o.Target
}

// DecodeResult rebuilds a sim.Result from a checkpoint entry; install
// it as Checkpoint.Decode when resuming sweep campaigns.
func DecodeResult(key string, raw json.RawMessage) (any, error) {
	var r sim.Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	return r, nil
}

// cellIdentity resolves a cell's content-addressed hash and static
// cost estimate by building its full config outside the worker pool.
// Mutate is arbitrary caller code and may panic; a panicking variant
// must fail as its own isolated cell (with the stack captured by the
// harness), not here — so this recovers and returns the zero identity,
// leaving the cell uncacheable and default-ordered.
func cellIdentity(o Options, p workload.Profile, v Variant) (hash string, est float64) {
	defer func() {
		if recover() != nil {
			hash, est = "", 0
		}
	}()
	cfg := o.baseConfig(p)
	v.Mutate(&cfg)
	hash, _ = cfg.CacheKey()
	return hash, estCost(cfg)
}

// estCost is the static fallback cost model for LPT scheduling when
// the cache has never timed a cell: simulated work is roughly cores ×
// effective window length, weighted by how expensive the tracker makes
// each activation (CRA's memory-resident counters dominate; Hydra adds
// RCT traffic only past the GCT threshold). Scaled to pseudo-seconds
// at a nominal 3.2 GHz core so the numbers mix with recorded
// wall-clock; only the ordering matters.
func estCost(cfg sim.Config) float64 {
	window := float64(cfg.WindowCycles)
	if window <= 0 {
		window = float64(memsim.WindowCycles)
	}
	scale := cfg.Scale
	if scale < 1 {
		scale = 1
	}
	weight := 1.0
	switch cfg.Tracker {
	case sim.TrackCRA:
		weight = 2.5
	case sim.TrackHydra, sim.TrackHydraNoGCT, sim.TrackHydraNoRCC:
		weight = 1.5
	case sim.TrackGraphene, sim.TrackOCPR, sim.TrackSTART, sim.TrackDAPPER:
		weight = 1.3
	case sim.TrackPARA, sim.TrackMINT:
		weight = 1.1
	}
	return float64(cfg.Cores) * (window / scale) * weight / 3.2e9
}

// liveObserver builds the per-cell completion hook that keeps the live
// registry current: each settled cell bumps a campaign.cells.* counter
// and, when it carries a simulation result, merges the run's metric
// snapshot so /metrics scrapes mid-campaign reflect every finished
// cell. Returns nil when no live registry is configured, keeping the
// harness hot path free of the extra call.
func (o Options) liveObserver() func(harness.CellResult) {
	if o.Live == nil {
		return nil
	}
	live := o.Live
	return func(r harness.CellResult) {
		switch {
		case r.Err != nil:
			live.Count("campaign.cells.failed", 1)
		case r.Cached:
			live.Count("campaign.cells.cached", 1)
		case r.Restored:
			live.Count("campaign.cells.restored", 1)
		default:
			live.Count("campaign.cells.ok", 1)
		}
		if res, ok := r.Value.(sim.Result); ok && res.Metrics != nil {
			live.Merge(res.Metrics)
		}
	}
}

// runMatrix executes every (variant x profile) simulation as a cell of
// a resilient harness campaign and returns results[variant][workload]
// plus the per-cell verdicts and the cache traffic attributable to
// this campaign (zero when o.Cache is nil). A cell failure (error,
// panic, watchdog kill, timeout — after retries) does not fail the
// matrix: the entry is simply absent from the result maps and its
// CellStatus records the error. Callers decide how much of the matrix
// they require.
func runMatrix(o Options, profiles []workload.Profile, variants []Variant) (map[string]map[string]sim.Result, []obsv.CellStatus, harness.CacheStats, error) {
	if o.Checkpoint != nil && o.Checkpoint.Decode == nil {
		o.Checkpoint.Decode = DecodeResult
	}
	if o.Cache != nil && o.Cache.Decode == nil {
		o.Cache.Decode = DecodeResult
	}
	var statsBefore harness.CacheStats
	if o.Cache != nil {
		statsBefore = o.Cache.Stats()
	}
	var cells []harness.Cell
	for _, v := range variants {
		for _, p := range profiles {
			v, p := v, p
			var hash string
			var est float64
			if o.Cache != nil {
				hash, est = cellIdentity(o, p, v)
			}
			cells = append(cells, harness.Cell{
				Key:      o.target() + "/" + v.Name + "/" + p.Name,
				CacheKey: hash,
				EstCost:  est,
				Tags: map[string]string{
					"target":   o.target(),
					"scheme":   v.Name,
					"workload": p.Name,
					"seed":     fmt.Sprint(o.seed()),
				},
				Run: func(ctx context.Context, env harness.Env) (any, error) {
					cfg := o.baseConfig(p)
					v.Mutate(&cfg)
					// Reseed retries so a seed-dependent corner case is
					// not replayed verbatim.
					cfg.Seed += uint64(env.Attempt) * 0x9e3779b9
					cfg.Ctx = ctx
					cfg.Progress = env.Progress
					if o.Trace != nil {
						o.Trace.Emit(obsv.Event{Kind: obsv.EvRunStart, Tag: v.Name + "/" + p.Name})
					}
					res, err := sim.Run(cfg)
					if err != nil {
						return nil, err
					}
					return res, nil
				},
			})
		}
	}
	var droppedBefore int64
	if o.Bus != nil {
		droppedBefore = o.Bus.Dropped()
	}
	hres, err := harness.RunCampaign(o.ctx(), cells, harness.Options{
		Workers:      o.Parallelism,
		CellTimeout:  o.CellTimeout,
		StallTimeout: o.StallTimeout,
		Retries:      o.Retries,
		Checkpoint:   o.Checkpoint,
		Cache:        o.Cache,
		Bus:          o.Bus,
		OnCellDone:   o.liveObserver(),
	})
	if o.Bus != nil && o.Live != nil {
		if d := o.Bus.Dropped() - droppedBefore; d > 0 {
			o.Live.Count("campaign.events.dropped", d)
		}
	}
	if err != nil {
		return nil, nil, harness.CacheStats{}, err
	}

	out := make(map[string]map[string]sim.Result, len(variants))
	for _, v := range variants {
		out[v.Name] = make(map[string]sim.Result, len(profiles))
	}
	statuses := make([]obsv.CellStatus, 0, len(hres))
	i := 0
	for _, v := range variants {
		for _, p := range profiles {
			r := hres[i]
			i++
			st := obsv.CellStatus{
				Key:        r.Key,
				Attempts:   r.Attempts,
				Panicked:   r.Panicked,
				Stalled:    r.Stalled,
				ElapsedSec: r.Elapsed.Seconds(),
				// Harness-observed progress; overwritten below with the
				// simulator's exact count when the cell completed.
				Cycles: r.Cycles,
			}
			switch {
			case r.Err != nil:
				st.Status = obsv.CellFailed
				st.Error = r.Err.Error()
			default:
				switch {
				case r.Cached:
					st.Status = obsv.CellCached
				case r.Restored:
					st.Status = obsv.CellRestored
				default:
					st.Status = obsv.CellOK
				}
				res, ok := r.Value.(sim.Result)
				if !ok {
					st.Status = obsv.CellFailed
					st.Error = fmt.Sprintf("exp: cell value is %T, want sim.Result", r.Value)
					break
				}
				if st.Status == obsv.CellOK {
					st.Cycles = res.Cycles
				}
				out[v.Name][p.Name] = res
			}
			statuses = append(statuses, st)
		}
	}
	var cstats harness.CacheStats
	if o.Cache != nil {
		cstats = o.Cache.Stats().Delta(statsBefore)
	}
	return out, statuses, cstats, nil
}

// lookup fetches a completed cell from a matrix, failing with the
// cell's recorded error when the campaign lost it. Targets that cannot
// tolerate holes (ratio tables) gate through this.
func lookup(res map[string]map[string]sim.Result, cells []obsv.CellStatus, variant, wl string) (sim.Result, error) {
	if r, ok := res[variant][wl]; ok {
		return r, nil
	}
	for _, c := range cells {
		if c.Status == obsv.CellFailed && strings.HasSuffix(c.Key, "/"+variant+"/"+wl) {
			return sim.Result{}, fmt.Errorf("exp: cell %s failed: %s", c.Key, c.Error)
		}
	}
	return sim.Result{}, fmt.Errorf("exp: missing result for %s/%s", variant, wl)
}

// PerfReport holds normalized performance per workload and scheme,
// the format of Figures 2, 5 and 8.
type PerfReport struct {
	Title    string
	Schemes  []string // ordered, excluding the baseline
	Profiles []workload.Profile
	// Norm[scheme][workload] is performance normalized to the
	// non-secure baseline (1.0 = no slowdown).
	Norm map[string]map[string]float64
	// Results[scheme][workload] retains the full simulation results
	// (including the baseline), so run reports can export the metric
	// snapshots alongside the normalized performance. Failed cells are
	// absent.
	Results map[string]map[string]sim.Result
	// Cells records every campaign cell's verdict, including failed,
	// checkpoint-restored and cache-replayed cells.
	Cells []obsv.CellStatus
	// Cache is the result-cache traffic of this sweep (zero value when
	// no cache was configured): how many cells were replayed versus
	// simulated, and the disk bytes moved.
	Cache harness.CacheStats
}

// Sweep runs the non-secure baseline plus the given scheme variants
// over the configured workloads and normalizes: the exported form of
// the sweep underlying every perf figure, usable for custom campaigns
// and for fault-injection tests (a variant whose Mutate or simulation
// fails surfaces as a failed cell, never as a lost sweep).
func Sweep(o Options, title string, schemes []Variant) (*PerfReport, error) {
	return perfReport(o.withDefaults(), title, schemes)
}

// perfReport runs baseline plus schemes and normalizes. Cells that
// failed — or produced a non-positive cycle count, which would poison
// the geomeans — are excluded from Norm and flagged in Cells; scheme
// cells that simulated fine but lost their baseline (so there is
// nothing to divide by) are marked baseline-missing, not failed; the
// report only fails when no baseline cell survived at all, since then
// there is nothing to normalize against.
func perfReport(o Options, title string, schemes []Variant) (*PerfReport, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	variants := append([]Variant{{Name: "baseline", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackNone }}}, schemes...)
	res, cells, cstats, err := runMatrix(o, profiles, variants)
	if err != nil {
		return nil, err
	}
	// A run that completes with no cycles (e.g. an empty trace source)
	// is not a usable sample: record it as a failed cell rather than
	// letting 0 or Inf reach the normalization.
	for _, v := range variants {
		for _, p := range profiles {
			if r, ok := res[v.Name][p.Name]; ok && r.Cycles <= 0 {
				delete(res[v.Name], p.Name)
				markCell(cells, o.target()+"/"+v.Name+"/"+p.Name, obsv.CellFailed,
					fmt.Sprintf("exp: non-positive cycle count %d (empty run)", r.Cycles))
			}
		}
	}
	if len(res["baseline"]) == 0 {
		return nil, fmt.Errorf("exp: %s: every baseline cell failed; nothing to normalize against", title)
	}
	rep := &PerfReport{Title: title, Profiles: profiles, Norm: map[string]map[string]float64{}, Results: res, Cells: cells, Cache: cstats}
	for _, v := range schemes {
		rep.Schemes = append(rep.Schemes, v.Name)
		rep.Norm[v.Name] = map[string]float64{}
		for _, p := range profiles {
			base, okb := res["baseline"][p.Name]
			got, okg := res[v.Name][p.Name]
			if okg && !okb {
				// The scheme cell is healthy; it just has no denominator.
				// A distinct status keeps "this scheme broke" separable
				// from "the baseline broke" in chaos/resilience reports.
				markCell(cells, o.target()+"/"+v.Name+"/"+p.Name, obsv.CellBaselineMissing,
					fmt.Sprintf("exp: baseline cell for workload %s failed; cannot normalize", p.Name))
				continue
			}
			if !okb || !okg {
				continue
			}
			rep.Norm[v.Name][p.Name] = float64(base.Cycles) / float64(got.Cycles)
		}
	}
	return rep, nil
}

// markCell rewrites the named cell's status and error in place.
func markCell(cells []obsv.CellStatus, key, status, msg string) {
	for i := range cells {
		if cells[i].Key == key {
			cells[i].Status = status
			cells[i].Error = msg
			return
		}
	}
}

// SuiteGeomeans aggregates a scheme's normalized performance per
// suite, plus GUPS alone and ALL, matching the paper's x-axis groups.
// Workloads whose cells failed are skipped; a group with no surviving
// workloads reports 0 (rendered as "-" by Format).
func (r *PerfReport) SuiteGeomeans(scheme string) map[string]float64 {
	bySuite := map[string][]float64{}
	var all []float64
	for _, p := range r.Profiles {
		v, ok := r.Norm[scheme][p.Name]
		if !ok {
			continue
		}
		key := string(p.Suite)
		bySuite[key] = append(bySuite[key], v)
		all = append(all, v)
	}
	out := map[string]float64{}
	for s, xs := range bySuite {
		out[s] = stats.Geomean(xs)
	}
	out["ALL"] = stats.Geomean(all)
	return out
}

// Format renders the report as a text table, one row per workload plus
// suite geomeans, mirroring the figures' bar groups.
func (r *PerfReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteString("\n")
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "%-12s", p.Name)
		for _, s := range r.Schemes {
			if v, ok := r.Norm[s][p.Name]; ok {
				fmt.Fprintf(&b, " %14.3f", v)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	suites := r.suiteOrder()
	for _, su := range suites {
		fmt.Fprintf(&b, "%-12s", "GEO:"+su)
		for _, s := range r.Schemes {
			if v := r.SuiteGeomeans(s)[su]; v > 0 {
				fmt.Fprintf(&b, " %14.3f", v)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	if failed := FailedCells(r.Cells); len(failed) > 0 {
		fmt.Fprintf(&b, "FAILED CELLS (%d):\n", len(failed))
		for _, c := range failed {
			fmt.Fprintf(&b, "  %s: %s\n", c.Key, c.Error)
		}
	}
	return b.String()
}

func (r *PerfReport) suiteOrder() []string {
	seen := map[string]bool{}
	var order []string
	for _, p := range r.Profiles {
		if !seen[string(p.Suite)] {
			seen[string(p.Suite)] = true
			order = append(order, string(p.Suite))
		}
	}
	order = append(order, "ALL")
	return order
}

// FailedCells filters a campaign's cell verdicts down to the failures.
func FailedCells(cells []obsv.CellStatus) []obsv.CellStatus {
	var out []obsv.CellStatus
	for _, c := range cells {
		if c.Status == obsv.CellFailed {
			out = append(out, c)
		}
	}
	return out
}

// sortedKeys returns map keys in sorted order (stable output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
