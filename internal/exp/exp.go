// Package exp is the experiment harness: one runner per table and
// figure of the paper's evaluation (Section 6 plus the motivation
// figures of Section 2). Each runner sweeps the 36 workloads across
// the relevant tracker configurations in parallel, normalizes against
// the non-secure baseline, and produces a formatted report with the
// same rows/series the paper plots.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/obsv"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options control a harness run.
type Options struct {
	// Scale divides every workload footprint (and tracker structures)
	// so a figure regenerates in bounded time; 1 reproduces the full
	// 64 ms window. Default 16.
	Scale float64
	// TRH is the target row-hammer threshold (default 500).
	TRH int
	// Workloads restricts the sweep to the named workloads (default:
	// all 36).
	Workloads []string
	// Parallelism bounds concurrent simulations (default: NumCPU).
	Parallelism int
	// Seed makes runs reproducible. Nil selects the default seed (1);
	// any explicitly set value — including 0 — is used as-is, so seed
	// 0 is reproducible as itself (use SeedOf to build the pointer).
	Seed *uint64
	// Trace, when non-nil, records simulation events (activations,
	// mitigations, refreshes, GCT saturations, window resets) from
	// every run of the sweep. Because runs execute concurrently, the
	// harness serializes the sweep (Parallelism 1) while tracing and
	// separates runs with EvRunStart markers tagged "scheme/workload".
	Trace *obsv.Tracer
}

// SeedOf returns a pointer to seed, for Options.Seed literals.
func SeedOf(seed uint64) *uint64 { return &seed }

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 16
	}
	if o.TRH <= 0 {
		o.TRH = 500
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.Trace != nil {
		o.Parallelism = 1
	}
	if o.Seed == nil {
		o.Seed = SeedOf(1)
	}
	return o
}

// seed returns the effective workload seed.
func (o Options) seed() uint64 {
	if o.Seed == nil {
		return 1
	}
	return *o.Seed
}

// profiles resolves the workload list.
func (o Options) profiles() ([]workload.Profile, error) {
	if len(o.Workloads) == 0 {
		return workload.Profiles(), nil
	}
	var ps []workload.Profile
	for _, name := range o.Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// baseConfig builds the common simulation config for a profile.
func (o Options) baseConfig(p workload.Profile) sim.Config {
	cfg := sim.Default(p)
	cfg.Scale = o.Scale
	cfg.TRH = o.TRH
	cfg.Seed = o.seed()
	cfg.Trace = o.Trace
	return cfg
}

// Variant is one tracker configuration in a sweep.
type Variant struct {
	Name   string
	Mutate func(*sim.Config)
}

// cell addresses one (variant, workload) result.
type cell struct {
	variant  string
	workload string
	res      sim.Result
	err      error
}

// runMatrix executes every (variant x profile) simulation with a
// bounded worker pool and returns results[variant][workload].
func runMatrix(o Options, profiles []workload.Profile, variants []Variant) (map[string]map[string]sim.Result, error) {
	type job struct {
		v Variant
		p workload.Profile
	}
	jobs := make(chan job)
	results := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < o.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := o.baseConfig(j.p)
				j.v.Mutate(&cfg)
				if o.Trace != nil {
					o.Trace.Emit(obsv.Event{Kind: obsv.EvRunStart, Tag: j.v.Name + "/" + j.p.Name})
				}
				res, err := sim.Run(cfg)
				results <- cell{variant: j.v.Name, workload: j.p.Name, res: res, err: err}
			}
		}()
	}
	go func() {
		for _, v := range variants {
			for _, p := range profiles {
				jobs <- job{v: v, p: p}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := make(map[string]map[string]sim.Result, len(variants))
	for _, v := range variants {
		out[v.Name] = make(map[string]sim.Result, len(profiles))
	}
	var firstErr error
	for c := range results {
		if c.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s/%s: %w", c.variant, c.workload, c.err)
		}
		out[c.variant][c.workload] = c.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// PerfReport holds normalized performance per workload and scheme,
// the format of Figures 2, 5 and 8.
type PerfReport struct {
	Title    string
	Schemes  []string // ordered, excluding the baseline
	Profiles []workload.Profile
	// Norm[scheme][workload] is performance normalized to the
	// non-secure baseline (1.0 = no slowdown).
	Norm map[string]map[string]float64
	// Results[scheme][workload] retains the full simulation results
	// (including the baseline), so run reports can export the metric
	// snapshots alongside the normalized performance.
	Results map[string]map[string]sim.Result
}

// perfReport runs baseline plus schemes and normalizes.
func perfReport(o Options, title string, schemes []Variant) (*PerfReport, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	variants := append([]Variant{{Name: "baseline", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackNone }}}, schemes...)
	res, err := runMatrix(o, profiles, variants)
	if err != nil {
		return nil, err
	}
	rep := &PerfReport{Title: title, Profiles: profiles, Norm: map[string]map[string]float64{}, Results: res}
	for _, v := range schemes {
		rep.Schemes = append(rep.Schemes, v.Name)
		rep.Norm[v.Name] = map[string]float64{}
		for _, p := range profiles {
			base := res["baseline"][p.Name].Cycles
			got := res[v.Name][p.Name].Cycles
			if base == 0 || got == 0 {
				return nil, fmt.Errorf("%s/%s: empty run", v.Name, p.Name)
			}
			rep.Norm[v.Name][p.Name] = float64(base) / float64(got)
		}
	}
	return rep, nil
}

// SuiteGeomeans aggregates a scheme's normalized performance per
// suite, plus GUPS alone and ALL, matching the paper's x-axis groups.
func (r *PerfReport) SuiteGeomeans(scheme string) map[string]float64 {
	bySuite := map[string][]float64{}
	var all []float64
	for _, p := range r.Profiles {
		v := r.Norm[scheme][p.Name]
		key := string(p.Suite)
		bySuite[key] = append(bySuite[key], v)
		all = append(all, v)
	}
	out := map[string]float64{}
	for s, xs := range bySuite {
		out[s] = stats.Geomean(xs)
	}
	out["ALL"] = stats.Geomean(all)
	return out
}

// Format renders the report as a text table, one row per workload plus
// suite geomeans, mirroring the figures' bar groups.
func (r *PerfReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteString("\n")
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "%-12s", p.Name)
		for _, s := range r.Schemes {
			fmt.Fprintf(&b, " %14.3f", r.Norm[s][p.Name])
		}
		b.WriteString("\n")
	}
	suites := r.suiteOrder()
	for _, su := range suites {
		fmt.Fprintf(&b, "%-12s", "GEO:"+su)
		for _, s := range r.Schemes {
			fmt.Fprintf(&b, " %14.3f", r.SuiteGeomeans(s)[su])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (r *PerfReport) suiteOrder() []string {
	seen := map[string]bool{}
	var order []string
	for _, p := range r.Profiles {
		if !seen[string(p.Suite)] {
			seen[string(p.Suite)] = true
			order = append(order, string(p.Suite))
		}
	}
	order = append(order, "ALL")
	return order
}

// sortedKeys returns map keys in sorted order (stable output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
