package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/obsv"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ChaosRow is one scenario's verdict: a Hydra-protected system under a
// double-sided attack with the scenario's faults injected, judged by
// the security oracle.
type ChaosRow struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description"`
	// GuaranteeHeld reports that no row reached T_RH unmitigated (the
	// oracle recorded no violation) despite the injected faults.
	GuaranteeHeld bool `json:"guarantee_held"`
	// DegradationDetected reports that the oracle caught the injected
	// faults breaking the guarantee — the failure is visible, not
	// silent. Exactly one of GuaranteeHeld/DegradationDetected is true.
	DegradationDetected bool  `json:"degradation_detected"`
	Violations          int   `json:"violations"`
	MaxUnmitigated      int   `json:"max_unmitigated"`
	Mitigations         int64 `json:"mitigations"`
	// Injected fault counts (from sim.ChaosStats).
	DroppedRefreshes int64 `json:"dropped_refreshes"`
	CorruptedEntries int64 `json:"corrupted_entries"`
	PostponedResets  int64 `json:"postponed_resets"`
}

// ChaosReport is the chaos campaign's result: one row per scenario
// plus the per-cell campaign verdicts.
type ChaosReport struct {
	TRH   int               `json:"trh"`
	Rows  []ChaosRow        `json:"rows"`
	Cells []obsv.CellStatus `json:"cells"`
}

// Format renders the report.
func (r *ChaosReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos campaign: Hydra under fault injection (T_RH=%d)\n", r.TRH)
	fmt.Fprintf(&b, "%-18s %-22s %10s %8s %8s %8s %8s\n",
		"scenario", "verdict", "violations", "maxseen", "dropped", "corrupt", "postpone")
	for _, row := range r.Rows {
		verdict := "guarantee-held"
		if row.DegradationDetected {
			verdict = "degradation-detected"
		}
		fmt.Fprintf(&b, "%-18s %-22s %10d %8d %8d %8d %8d\n",
			row.Scenario, verdict, row.Violations, row.MaxUnmitigated,
			row.DroppedRefreshes, row.CorruptedEntries, row.PostponedResets)
	}
	if failed := FailedCells(r.Cells); len(failed) > 0 {
		fmt.Fprintf(&b, "FAILED CELLS (%d):\n", len(failed))
		for _, c := range failed {
			fmt.Fprintf(&b, "  %s: %s\n", c.Key, c.Error)
		}
	}
	return b.String()
}

// runReport implements reportable: chaos rows ride in Extra, the cell
// verdicts in the report's cell section.
func (r *ChaosReport) runReport(out *obsv.Report) {
	out.Cells = append([]obsv.CellStatus(nil), r.Cells...)
	out.Extra = r.Rows
}

// Row returns the named scenario's row, if present.
func (r *ChaosReport) Row(scenario string) (ChaosRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario {
			return row, true
		}
	}
	return ChaosRow{}, false
}

// chaosProfile is the fixed victim workload behind the attacker: small
// and hot so every scenario run finishes quickly and deterministically.
func chaosProfile() workload.Profile {
	return workload.Profile{
		Name: "chaos-hot", Suite: workload.SPEC,
		MPKI: 20, UniqueRows: 16000, Hot250: 400, ActsPerRow: 40,
	}
}

// Chaos runs the named fault-injection scenarios (all built-ins when
// names is empty) as a harness campaign: each cell hammers a
// double-sided pattern through a Hydra-protected system with the
// scenario's faults injected and records whether the paper's guarantee
// held or the security oracle detected the degradation. Either way the
// failure mode is visible — a scenario only fails its cell when the
// simulation itself errors.
func Chaos(o Options, names []string) (*ChaosReport, error) {
	if o.CellParallel {
		return nil, fmt.Errorf("exp: CellParallel is incompatible with the chaos campaign: the fault injector mutates shared state from channel callbacks and is not shard-safe; run chaos cells serially (drop -cell-parallel)")
	}
	o = o.withDefaults()
	if o.Target == "" {
		o.Target = "chaos"
	}
	if o.Checkpoint != nil && o.Checkpoint.Decode == nil {
		o.Checkpoint.Decode = func(key string, raw json.RawMessage) (any, error) {
			var row ChaosRow
			if err := json.Unmarshal(raw, &row); err != nil {
				return nil, err
			}
			return row, nil
		}
	}

	var scenarios []faults.Scenario
	if len(names) == 0 {
		scenarios = faults.Scenarios()
	} else {
		for _, n := range names {
			s, err := faults.ScenarioByName(n)
			if err != nil {
				return nil, err
			}
			scenarios = append(scenarios, s)
		}
	}

	var cells []harness.Cell
	for _, sc := range scenarios {
		sc := sc
		cells = append(cells, harness.Cell{
			Key: o.target() + "/" + sc.Name + "/" + chaosProfile().Name,
			Run: func(ctx context.Context, env harness.Env) (any, error) {
				mem := dram.Baseline()
				victim := mem.GlobalRow(dram.Loc{Channel: 0, Bank: 3, Row: 5000})
				oracle := attack.NewOracle(o.TRH)

				cfg := sim.Default(chaosProfile())
				// The campaign pins its own scale: the background cores
				// must keep the banks contended for the attacker's
				// alternating rows to conflict (and activate) at the
				// real rate, so o.Scale does not apply here.
				cfg.Scale = 4
				cfg.KeepStructSize = true // full-size tracker vs a real-rate attack
				cfg.TRH = o.TRH
				// Windows short enough that the reset path (and with it
				// refresh-postpone) engages within the run, yet long
				// enough that an unmitigated double-sided attack clears
				// the default T_RH=500 inside two windows — otherwise a
				// genuine guarantee break could go unobserved.
				cfg.WindowCycles = 2_000_000
				cfg.Seed = o.seed() + uint64(env.Attempt)*0x9e3779b9
				cfg.Attack = &sim.AttackSpec{
					Rows: []uint32{victim - 1, victim + 1}, // double-sided
					Acts: 60000,
				}
				cfg.Observer = oracle
				cfg.Ctx = ctx
				cfg.Progress = env.Progress
				if sc.Active() {
					s := sc
					cfg.Chaos = &s
				}
				res, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				row := ChaosRow{
					Scenario:            sc.Name,
					Description:         sc.Description,
					GuaranteeHeld:       oracle.Safe(),
					DegradationDetected: !oracle.Safe(),
					Violations:          len(oracle.Violations),
					MaxUnmitigated:      oracle.MaxSeen,
					Mitigations:         res.Mitigations,
				}
				if res.Chaos != nil {
					row.DroppedRefreshes = res.Chaos.DroppedRefreshes
					row.CorruptedEntries = res.Chaos.CorruptedEntries
					row.PostponedResets = res.Chaos.PostponedResets
				}
				return row, nil
			},
		})
	}

	hres, err := harness.RunCampaign(o.ctx(), cells, harness.Options{
		Workers:      o.Parallelism,
		CellTimeout:  o.CellTimeout,
		StallTimeout: o.StallTimeout,
		Retries:      o.Retries,
		Checkpoint:   o.Checkpoint,
	})
	if err != nil {
		return nil, err
	}
	rep := &ChaosReport{TRH: o.TRH}
	for _, r := range hres {
		st := obsv.CellStatus{
			Key:        r.Key,
			Attempts:   r.Attempts,
			Panicked:   r.Panicked,
			Stalled:    r.Stalled,
			ElapsedSec: r.Elapsed.Seconds(),
		}
		switch {
		case r.Err != nil:
			st.Status = obsv.CellFailed
			st.Error = r.Err.Error()
		default:
			if r.Restored {
				st.Status = obsv.CellRestored
			} else {
				st.Status = obsv.CellOK
			}
			row, ok := r.Value.(ChaosRow)
			if !ok {
				st.Status = obsv.CellFailed
				st.Error = fmt.Sprintf("exp: cell value is %T, want ChaosRow", r.Value)
				break
			}
			rep.Rows = append(rep.Rows, row)
		}
		rep.Cells = append(rep.Cells, st)
	}
	return rep, nil
}
