package exp

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure2 reproduces the CRA motivation study: normalized performance
// with metadata caches of 64, 128 and 256 KB.
func Figure2(o Options) (*PerfReport, error) {
	o = o.withDefaults()
	mk := func(kb int) Variant {
		return Variant{
			Name: fmt.Sprintf("cra-%dKB", kb),
			Mutate: func(c *sim.Config) {
				c.Tracker = sim.TrackCRA
				c.CRACacheBytes = kb * 1024
			},
		}
	}
	return perfReport(o, "Figure 2: CRA vs metadata-cache size (normalized performance)",
		[]Variant{mk(64), mk(128), mk(256)})
}

// Figure5 reproduces the headline comparison: Graphene, CRA (64 KB)
// and Hydra, normalized to the non-secure baseline.
func Figure5(o Options) (*PerfReport, error) {
	o = o.withDefaults()
	return perfReport(o, "Figure 5: Graphene / CRA / Hydra (normalized performance)",
		[]Variant{
			{Name: "cra-64KB", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackCRA; c.CRACacheBytes = 64 * 1024 }},
			{Name: "graphene", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackGraphene }},
			{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
		})
}

// Figure6Row is one workload's activation-update distribution.
type Figure6Row struct {
	Workload string
	Suite    workload.Suite
	GCTOnly  float64 // fraction satisfied by the GCT (Figure 4a)
	RCCHit   float64 // fraction hit in the RCC (Figure 4b)
	RCT      float64 // fraction needing DRAM (Figure 4c)
}

// Figure6Report aggregates the distribution across workloads.
type Figure6Report struct {
	Rows []Figure6Row
}

// Averages returns the unweighted mean fractions (the paper reports
// 90.7% / 9.0% / 0.3%).
func (r *Figure6Report) Averages() (gct, rcc, rct float64) {
	var g, c, d []float64
	for _, row := range r.Rows {
		g = append(g, row.GCTOnly)
		c = append(c, row.RCCHit)
		d = append(d, row.RCT)
	}
	return stats.Mean(g), stats.Mean(c), stats.Mean(d)
}

// Format renders the report.
func (r *Figure6Report) Format() string {
	var b strings.Builder
	b.WriteString("Figure 6: where activation updates were satisfied (%)\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "workload", "GCT-only", "RCC-hit", "RCT-DRAM")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %10.1f\n",
			row.Workload, row.GCTOnly*100, row.RCCHit*100, row.RCT*100)
	}
	g, c, d := r.Averages()
	fmt.Fprintf(&b, "%-12s %10.1f %10.1f %10.1f\n", "AVERAGE", g*100, c*100, d*100)
	return b.String()
}

// Figure6 reproduces the access-distribution study.
func Figure6(o Options) (*Figure6Report, error) {
	o = o.withDefaults()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res, cells, _, err := runMatrix(o, profiles, []Variant{
		{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
	})
	if err != nil {
		return nil, err
	}
	rep := &Figure6Report{}
	for _, p := range profiles {
		r, err := lookup(res, cells, "hydra", p.Name)
		if err != nil {
			return nil, err
		}
		if r.Hydra == nil || r.Hydra.Acts == 0 {
			return nil, fmt.Errorf("%s: no hydra stats", p.Name)
		}
		acts := float64(r.Hydra.Acts)
		rep.Rows = append(rep.Rows, Figure6Row{
			Workload: p.Name,
			Suite:    p.Suite,
			GCTOnly:  float64(r.Hydra.GCTOnly) / acts,
			RCCHit:   float64(r.Hydra.RCCHit) / acts,
			RCT:      float64(r.Hydra.RCTAccess) / acts,
		})
	}
	return rep, nil
}

// SweepReport holds suite-level slowdowns for a parameter sweep, the
// format of Figures 7, 9 and 10 (grouped bars per suite + GUPS + ALL).
type SweepReport struct {
	Title  string
	Points []string // sweep parameter labels, in order
	Groups []string // suite groups, in order
	// SlowdownPct[point][group].
	SlowdownPct map[string]map[string]float64
}

// Format renders the report.
func (r *SweepReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-14s", "group")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, " %12s", pt)
	}
	b.WriteString("\n")
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "%-14s", g)
		for _, pt := range r.Points {
			fmt.Fprintf(&b, " %11.2f%%", r.SlowdownPct[pt][g])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// sweep runs hydra variants and reduces to suite slowdown geomeans.
func sweep(o Options, title string, points []Variant) (*SweepReport, error) {
	rep, err := perfReport(o, title, points)
	if err != nil {
		return nil, err
	}
	out := &SweepReport{Title: title, SlowdownPct: map[string]map[string]float64{}}
	groups := append(suiteGroups(rep.Profiles), "ALL")
	out.Groups = groups
	for _, v := range points {
		out.Points = append(out.Points, v.Name)
		geo := rep.SuiteGeomeans(v.Name)
		m := map[string]float64{}
		for _, g := range groups {
			m[g] = stats.SlowdownPct(geo[g])
		}
		out.SlowdownPct[v.Name] = m
	}
	return out, nil
}

func suiteGroups(profiles []workload.Profile) []string {
	seen := map[string]bool{}
	var order []string
	for _, p := range profiles {
		if !seen[string(p.Suite)] {
			seen[string(p.Suite)] = true
			order = append(order, string(p.Suite))
		}
	}
	return order
}

// Figure7 reproduces the threshold sensitivity: Hydra at T_RH 500,
// 250 and 125, with structures scaled proportionately.
func Figure7(o Options) (*SweepReport, error) {
	o = o.withDefaults()
	mk := func(trh int) Variant {
		return Variant{
			Name: fmt.Sprintf("TRH=%d", trh),
			Mutate: func(c *sim.Config) {
				c.Tracker = sim.TrackHydra
				c.TRH = trh
			},
		}
	}
	return sweep(o, "Figure 7: Hydra slowdown vs row-hammer threshold",
		[]Variant{mk(500), mk(250), mk(125)})
}

// Figure8 reproduces the ablation: Hydra without the GCT, without the
// RCC, and complete.
func Figure8(o Options) (*PerfReport, error) {
	o = o.withDefaults()
	return perfReport(o, "Figure 8: Hydra ablation (normalized performance)",
		[]Variant{
			{Name: "hydra-nogct", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydraNoGCT }},
			{Name: "hydra-norcc", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydraNoRCC }},
			{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
		})
}

// Figure9 reproduces the GCT-capacity sensitivity (16K/32K/64K).
func Figure9(o Options) (*SweepReport, error) {
	o = o.withDefaults()
	mk := func(entries int) Variant {
		return Variant{
			Name: fmt.Sprintf("%dK", entries/1024),
			Mutate: func(c *sim.Config) {
				c.Tracker = sim.TrackHydra
				c.HydraGCTEntries = entries
			},
		}
	}
	return sweep(o, "Figure 9: Hydra slowdown vs GCT capacity",
		[]Variant{mk(16 * 1024), mk(32 * 1024), mk(64 * 1024)})
}

// Figure10 reproduces the T_G sensitivity: 50%, 65%, 80% and 95% of
// T_H (125, 162, 200, 237 for T_H = 250).
func Figure10(o Options) (*SweepReport, error) {
	o = o.withDefaults()
	th := o.TRH / 2
	mk := func(pct int) Variant {
		tg := th * pct / 100
		return Variant{
			Name: fmt.Sprintf("%d%%(%d)", pct, tg),
			Mutate: func(c *sim.Config) {
				c.Tracker = sim.TrackHydra
				c.HydraTG = tg
			},
		}
	}
	return sweep(o, "Figure 10: Hydra slowdown vs GCT threshold (T_G)",
		[]Variant{mk(50), mk(65), mk(80), mk(95)})
}
