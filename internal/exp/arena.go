package exp

// The tracker arena sweeps every tracking scheme across row-hammer
// thresholds and judges each one three ways: normalized performance on
// the benign workload suite (the cached LPT campaign), security
// verdicts from the functional attack harness under the adversarial
// workload family of internal/attack, and slowdown under those same
// adversaries running through the full timing simulator. The catalog
// of schemes and the adversary built to break each one is
// docs/TRACKERS.md.

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obsv"
	"repro/internal/rh"
	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/workload"
)

// DefaultArenaThresholds is the arena's T_RH sweep: the paper's
// near-term operating points down to the ultra-low 500.
var DefaultArenaThresholds = []int{4800, 2000, 1000, 500}

// arenaBudgetEntries is the deliberately under-provisioned START pool
// used by the "start-budget" security row: far below the guarantee
// sizing at every swept threshold, so the eviction-storm adversary has
// a capacity boundary to exploit.
const arenaBudgetEntries = 32

// ArenaSimSchemes lists the schemes the full timing simulator supports;
// the arena's performance and adversarial-slowdown matrices cover
// exactly these.
func ArenaSimSchemes() []sim.TrackerKind {
	return []sim.TrackerKind{
		sim.TrackGraphene, sim.TrackCRA, sim.TrackOCPR, sim.TrackPARA,
		sim.TrackHydra, sim.TrackSTART, sim.TrackMINT, sim.TrackDAPPER,
	}
}

// ArenaFuncSchemes lists every scheme the functional security matrix
// covers — the simulator-backed schemes plus the trackers that exist
// only as functional models, and the under-provisioned "start-budget"
// configuration.
func ArenaFuncSchemes() []string {
	return []string{
		"hydra", "graphene", "cra", "ocpr", "para", "twice", "cat",
		"prohit", "mrloc", "start", "start-budget", "mint", "dapper",
	}
}

// arenaSecurityGeometry is the functional matrix's bank geometry: small
// enough that every (scheme x threshold x adversary) run is
// milliseconds, with a one-window activation budget that makes the
// adversaries decisive at the ultra-low thresholds.
func arenaSecurityGeometry() track.Geometry {
	return track.Geometry{Rows: 4096, RowsPerBank: 1024, Banks: 4, ACTMax: 100000}
}

// ArenaFuncTracker builds the named scheme's functional model sized for
// geom at trh, matching the defaults the attacksim command uses.
func ArenaFuncTracker(name string, geom track.Geometry, trh int, seed uint64) (rh.Tracker, error) {
	switch name {
	case "hydra":
		cfg := core.ForThreshold(trh)
		cfg.Rows = geom.Rows
		cfg.Seed = seed
		return core.New(cfg, rh.NullSink{})
	case "graphene":
		return track.NewGraphene(geom, trh)
	case "cra":
		return track.NewCRA(geom, trh, 64*1024, rh.NullSink{})
	case "ocpr":
		return track.NewOCPR(geom, trh)
	case "para":
		return track.NewPARA(trh, 1e-9, seed)
	case "twice":
		return track.NewTWiCE(geom, trh, 0)
	case "cat":
		return track.NewCAT(geom, trh, 0)
	case "prohit":
		return track.NewProHIT(geom, 1.0/16, seed)
	case "mrloc":
		return track.NewMRLoC(geom, seed)
	case "start":
		return track.NewSTART(geom, trh, 0)
	case "start-budget":
		return track.NewSTART(geom, trh, arenaBudgetEntries*startEntryBytesExp)
	case "mint":
		return track.NewMINT(geom, trh, 0, seed)
	case "dapper":
		return track.NewDAPPER(geom, trh)
	default:
		return nil, fmt.Errorf("exp: unknown arena scheme %q", name)
	}
}

// startEntryBytesExp mirrors track's per-entry START cost (8 B: row id
// plus counter) for the budget configuration.
const startEntryBytesExp = 8

// ArenaSecurityRow is one (scheme, threshold, adversary) verdict from
// the functional harness.
type ArenaSecurityRow struct {
	Scheme    string `json:"scheme"`
	TRH       int    `json:"trh"`
	Adversary string `json:"adversary"`
	// Safe reports that the oracle saw no row reach T_RH true
	// activations without a mitigation.
	Safe bool `json:"safe"`
	// Expected reports that this adversary names this scheme as a
	// target: a break here demonstrates the designed weakness, a break
	// elsewhere is a finding.
	Expected    bool  `json:"expected"`
	Violations  int   `json:"violations"`
	MaxUnmitig  int   `json:"max_unmitigated"`
	Mitigations int64 `json:"mitigations"`
	// PeakBurst is the largest number of mitigations issued within one
	// herd-sized bucket of activations — the mitigation-storm DoS
	// measure. Recorded for the mitig-storm adversary only.
	PeakBurst int `json:"peak_burst,omitempty"`
}

// ArenaReport is the arena's combined result.
type ArenaReport struct {
	Thresholds  []int    `json:"thresholds"`
	Schemes     []string `json:"schemes"`      // timing-simulator schemes
	FuncSchemes []string `json:"func_schemes"` // security-matrix schemes
	Adversaries []string `json:"adversaries"`

	// Perf is the benign-suite sweep with one variant per scheme@trh,
	// all normalized against one shared non-secure baseline.
	Perf *PerfReport `json:"-"`

	Security []ArenaSecurityRow `json:"security"`

	// AdvTRH and AdvWorkload identify the adversarial-slowdown setup:
	// the lowest swept threshold and the representative victim
	// workload. Slowdown[scheme][adversary] is performance normalized
	// to a non-secure baseline running the same attack (1.0 = the
	// mitigations cost nothing).
	AdvTRH      int                           `json:"adv_trh"`
	AdvWorkload string                        `json:"adv_workload"`
	Slowdown    map[string]map[string]float64 `json:"slowdown"`

	// Cells aggregates every campaign cell verdict (benign sweep plus
	// adversarial-slowdown cells); Cache is the combined result-cache
	// traffic.
	Cells []obsv.CellStatus  `json:"cells"`
	Cache harness.CacheStats `json:"cache"`
}

// arenaVariant names a perf-matrix variant.
func arenaVariant(kind sim.TrackerKind, trh int) string {
	return fmt.Sprintf("%s@%d", kind, trh)
}

// SecurityRow returns the named verdict, if present.
func (r *ArenaReport) SecurityRow(scheme string, trh int, adversary string) (ArenaSecurityRow, bool) {
	for _, row := range r.Security {
		if row.Scheme == scheme && row.TRH == trh && row.Adversary == adversary {
			return row, true
		}
	}
	return ArenaSecurityRow{}, false
}

// Geomean returns the scheme's ALL-suite geomean at the given
// threshold from the benign perf matrix (0 when every cell failed).
func (r *ArenaReport) Geomean(kind sim.TrackerKind, trh int) float64 {
	return r.Perf.SuiteGeomeans(arenaVariant(kind, trh))["ALL"]
}

// Arena runs the tracker arena: every scheme x threshold on the benign
// workload suite (cached campaign cells shared with the figure
// targets), the functional security matrix under the adversarial
// family, and the adversarial slowdown matrix at the lowest threshold.
// An empty thresholds slice selects DefaultArenaThresholds.
func Arena(o Options, thresholds []int) (*ArenaReport, error) {
	o = o.withDefaults()
	if o.Target == "" {
		o.Target = "arena"
	}
	if len(thresholds) == 0 {
		thresholds = append([]int(nil), DefaultArenaThresholds...)
	}
	for _, trh := range thresholds {
		if trh < 2 {
			return nil, fmt.Errorf("exp: arena threshold %d out of range (need >= 2)", trh)
		}
	}
	schemes := ArenaSimSchemes()
	advs := attack.Adversaries()

	// Benign performance: one variant per scheme@trh, one shared
	// baseline. The variant mutates TRH itself so the cached baseline
	// cells (Tracker=none, whose dynamics ignore TRH) serve every
	// threshold.
	var variants []Variant
	for _, kind := range schemes {
		for _, trh := range thresholds {
			kind, trh := kind, trh
			variants = append(variants, Variant{
				Name: arenaVariant(kind, trh),
				Mutate: func(c *sim.Config) {
					c.Tracker = kind
					c.TRH = trh
				},
			})
		}
	}
	perf, err := perfReport(o, "Tracker arena: normalized performance (scheme @ T_RH)", variants)
	if err != nil {
		return nil, err
	}

	rep := &ArenaReport{
		Thresholds:  append([]int(nil), thresholds...),
		FuncSchemes: ArenaFuncSchemes(),
		Perf:        perf,
		Slowdown:    map[string]map[string]float64{},
	}
	for _, kind := range schemes {
		rep.Schemes = append(rep.Schemes, string(kind))
	}
	for _, a := range advs {
		rep.Adversaries = append(rep.Adversaries, a.Key)
	}

	// Security matrix: functional harness, one window, every scheme
	// against every adversary at every threshold. Probabilistic
	// trackers get a seed mixed per cell so the matrix is reproducible
	// under o.Seed without replaying one stream everywhere.
	geom := arenaSecurityGeometry()
	for ti, trh := range thresholds {
		for si, name := range rep.FuncSchemes {
			for ai, adv := range advs {
				seed := o.seed() + uint64(ti*997+si*131+ai)*0x9e3779b9
				tr, err := ArenaFuncTracker(name, geom, trh, seed)
				if err != nil {
					return nil, err
				}
				cfg := attack.Config{
					TRH:         trh,
					RowsPerBank: geom.RowsPerBank,
					ActsPerWin:  adv.Acts(geom, trh),
					Windows:     1,
				}
				res := attack.Run(tr, adv.Pattern(geom, trh), cfg)
				row := ArenaSecurityRow{
					Scheme:      name,
					TRH:         trh,
					Adversary:   adv.Key,
					Safe:        res.Safe(),
					Expected:    targeted(adv, name),
					Violations:  len(res.Violations),
					MaxUnmitig:  res.MaxUnmitig,
					Mitigations: res.Mitigations,
				}
				if adv.Key == "mitig-storm" {
					// Burst shape needs a fresh tracker: Run consumed
					// (and window-reset) the first one.
					fresh, err := ArenaFuncTracker(name, geom, trh, seed)
					if err != nil {
						return nil, err
					}
					row.PeakBurst, _ = attack.MitigationBurst(fresh, adv.Pattern(geom, trh), cfg, 64)
				}
				rep.Security = append(rep.Security, row)
			}
		}
	}

	// Adversarial slowdown: every adversary through the full timing
	// simulator at the lowest swept threshold, against one
	// representative workload, normalized to a non-secure baseline
	// running the same attack. Cells are ordinary cacheable campaign
	// cells (AttackSpec is part of the content-addressed key).
	advTRH := thresholds[0]
	for _, trh := range thresholds {
		if trh < advTRH {
			advTRH = trh
		}
	}
	wlName := "xz"
	if len(o.Workloads) > 0 {
		wlName = o.Workloads[0]
	}
	prof, err := workload.ByName(wlName)
	if err != nil {
		return nil, err
	}
	oAdv := o
	oAdv.TRH = advTRH
	oAdv.Workloads = []string{wlName}
	realGeom := track.BaselineGeometry()
	var advVariants []Variant
	for _, adv := range advs {
		adv := adv
		spec := &sim.AttackSpec{
			Rows: adv.Rows(realGeom, advTRH),
			Acts: adv.Acts(realGeom, advTRH),
		}
		advVariants = append(advVariants, Variant{
			Name: adv.Key + "/baseline",
			Mutate: func(c *sim.Config) {
				c.Tracker = sim.TrackNone
				c.Attack = spec
			},
		})
		for _, kind := range schemes {
			kind := kind
			advVariants = append(advVariants, Variant{
				Name: adv.Key + "/" + string(kind),
				Mutate: func(c *sim.Config) {
					c.Tracker = kind
					c.Attack = spec
				},
			})
		}
	}
	advRes, advCells, advStats, err := runMatrix(oAdv, []workload.Profile{prof}, advVariants)
	if err != nil {
		return nil, err
	}
	rep.AdvTRH = advTRH
	rep.AdvWorkload = wlName
	for _, kind := range schemes {
		rep.Slowdown[string(kind)] = map[string]float64{}
	}
	for _, adv := range advs {
		base, okb := advRes[adv.Key+"/baseline"][wlName]
		if !okb || base.Cycles <= 0 {
			continue
		}
		for _, kind := range schemes {
			got, okg := advRes[adv.Key+"/"+string(kind)][wlName]
			if !okg || got.Cycles <= 0 {
				continue
			}
			rep.Slowdown[string(kind)][adv.Key] = float64(base.Cycles) / float64(got.Cycles)
		}
	}

	rep.Cells = append(append([]obsv.CellStatus(nil), perf.Cells...), advCells...)
	rep.Cache = addCacheStats(perf.Cache, advStats)
	return rep, nil
}

// targeted reports whether the adversary names the scheme.
func targeted(a attack.Adversary, scheme string) bool {
	for _, t := range a.Targets {
		if t == scheme {
			return true
		}
	}
	return false
}

// addCacheStats sums two campaigns' cache traffic.
func addCacheStats(a, b harness.CacheStats) harness.CacheStats {
	return harness.CacheStats{
		Hits:           a.Hits + b.Hits,
		MemHits:        a.MemHits + b.MemHits,
		DiskHits:       a.DiskHits + b.DiskHits,
		Misses:         a.Misses + b.Misses,
		Stores:         a.Stores + b.Stores,
		BytesRead:      a.BytesRead + b.BytesRead,
		BytesWritten:   a.BytesWritten + b.BytesWritten,
		CorruptDropped: a.CorruptDropped + b.CorruptDropped,
		StoreErrors:    a.StoreErrors + b.StoreErrors,
	}
}

// Format renders the arena: the geomean performance matrix, one
// security block per threshold, and the adversarial slowdown matrix.
func (r *ArenaReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tracker arena: %d schemes x T_RH %v x %d workloads\n\n",
		len(r.Schemes), r.Thresholds, len(r.Perf.Profiles))

	b.WriteString("Normalized performance, benign suite (geomean ALL; 1.0 = non-secure baseline)\n")
	fmt.Fprintf(&b, "%-12s", "scheme")
	for _, trh := range r.Thresholds {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("@%d", trh))
	}
	b.WriteString("\n")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, "%-12s", s)
		for _, trh := range r.Thresholds {
			if v := r.Geomean(sim.TrackerKind(s), trh); v > 0 {
				fmt.Fprintf(&b, " %10.3f", v)
			} else {
				fmt.Fprintf(&b, " %10s", "-")
			}
		}
		b.WriteString("\n")
	}

	b.WriteString("\nSecurity verdicts, functional harness (one window; * = adversary targets the scheme)\n")
	for _, trh := range r.Thresholds {
		fmt.Fprintf(&b, "T_RH=%d\n", trh)
		fmt.Fprintf(&b, "  %-14s", "scheme")
		for _, a := range r.Adversaries {
			fmt.Fprintf(&b, " %16s", a)
		}
		b.WriteString("\n")
		for _, s := range r.FuncSchemes {
			fmt.Fprintf(&b, "  %-14s", s)
			for _, a := range r.Adversaries {
				row, ok := r.SecurityRow(s, trh, a)
				if !ok {
					fmt.Fprintf(&b, " %16s", "-")
					continue
				}
				cell := "safe"
				if !row.Safe {
					cell = fmt.Sprintf("BROKEN(%d)", row.Violations)
				}
				if row.Adversary == "mitig-storm" && row.PeakBurst > 0 {
					cell += fmt.Sprintf(" p%d", row.PeakBurst)
				}
				if row.Expected {
					cell += "*"
				}
				fmt.Fprintf(&b, " %16s", cell)
			}
			b.WriteString("\n")
		}
	}

	fmt.Fprintf(&b, "\nAdversarial slowdown on %s @ T_RH=%d (normalized perf vs attacked baseline)\n",
		r.AdvWorkload, r.AdvTRH)
	fmt.Fprintf(&b, "%-12s", "scheme")
	for _, a := range r.Adversaries {
		fmt.Fprintf(&b, " %16s", a)
	}
	b.WriteString("\n")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, "%-12s", s)
		for _, a := range r.Adversaries {
			if v, ok := r.Slowdown[s][a]; ok {
				fmt.Fprintf(&b, " %16.3f", v)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteString("\n")
	}

	if failed := FailedCells(r.Cells); len(failed) > 0 {
		fmt.Fprintf(&b, "FAILED CELLS (%d):\n", len(failed))
		for _, c := range failed {
			fmt.Fprintf(&b, "  %s: %s\n", c.Key, c.Error)
		}
	}
	return b.String()
}

// runReport implements reportable: the perf geomeans ride in the
// standard Geomeans section (keyed scheme@trh), the security and
// slowdown matrices in Extra.
func (r *ArenaReport) runReport(out *obsv.Report) {
	out.Schemes = append([]string(nil), r.Perf.Schemes...)
	out.Cells = append([]obsv.CellStatus(nil), r.Cells...)
	out.Geomeans = map[string]map[string]float64{}
	for _, s := range r.Perf.Schemes {
		out.Geomeans[s] = r.Perf.SuiteGeomeans(s)
	}
	out.Extra = struct {
		Thresholds  []int                         `json:"thresholds"`
		Security    []ArenaSecurityRow            `json:"security"`
		AdvTRH      int                           `json:"adv_trh"`
		AdvWorkload string                        `json:"adv_workload"`
		Slowdown    map[string]map[string]float64 `json:"slowdown"`
	}{r.Thresholds, r.Security, r.AdvTRH, r.AdvWorkload, r.Slowdown}
}
