package exp

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Table1Text renders the paper's Table 1 (per-rank SRAM of prior
// trackers across thresholds).
func Table1Text() string {
	rows := storage.Table1(storage.PaperRank(), 250, 500, 1000, 32000)
	var b strings.Builder
	b.WriteString("Table 1: per-rank SRAM/CAM storage, 16 GB rank\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %12s %12s %12s %12s %12s\n",
		"TRH", "Graphene", "TWiCE", "CAT", "D-CBF", "OCPR", "START+", "MINT", "DAPPER", "Hydra*")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12s %12s %12s %12s %12s %12s %12s %12s %12s\n", r.TRH,
			storage.FormatBytes(r.Graphene), storage.FormatBytes(r.TWiCE),
			storage.FormatBytes(r.CAT), storage.FormatBytes(r.DCBF),
			storage.FormatBytes(r.OCPR), storage.FormatBytes(r.START),
			storage.FormatBytes(r.MINT), storage.FormatBytes(r.DAPPER),
			storage.FormatBytes(storage.HydraBytes(r.TRH)/2))
	}
	b.WriteString("* Hydra is per memory controller; shown halved for a per-rank comparison.\n")
	b.WriteString("+ START is borrowed LLC capacity (worst case), not dedicated SRAM.\n")
	return b.String()
}

// Table2Text renders the baseline system configuration.
func Table2Text() string {
	mem := dram.Baseline()
	var b strings.Builder
	b.WriteString("Table 2: baseline system configuration\n")
	fmt.Fprintf(&b, "Cores (OoO)            8 @ 3.2 GHz, ROB 160, width 4\n")
	fmt.Fprintf(&b, "Memory size            %d GB DDR4\n", mem.TotalBytes()>>30)
	fmt.Fprintf(&b, "Banks x Ranks x Chan   %d x %d x %d\n", mem.BanksPerRank, mem.RanksPerChannel, mem.Channels)
	fmt.Fprintf(&b, "Row size               %d KB, %d rows/bank, %d rows total\n",
		mem.RowBytes/1024, mem.RowsPerBank, mem.TotalRows())
	fmt.Fprintf(&b, "tRCD-tRP-tCAS          14-14-14 ns; tRC 45 ns; tRFC 350 ns; tREFI 7.8 us\n")
	fmt.Fprintf(&b, "ACT max per bank       1.36 M per 64 ms window\n")
	return b.String()
}

// Table3Row is one measured row of the workload characterization.
type Table3Row struct {
	Profile  workload.Profile          // the paper's numbers
	Measured workload.Characterization // what the generator produced
}

// Table3Report validates the generator against Table 3.
type Table3Report struct {
	Scale float64
	Rows  []Table3Row
}

// Format renders paper-vs-generated side by side.
func (r *Table3Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: workload characterization, paper vs generated (footprint scale 1/%.0f)\n", r.Scale)
	fmt.Fprintf(&b, "%-12s %18s %22s %16s %14s\n", "workload",
		"MPKI (paper/gen)", "unique rows (p/g)", "ACT-250+ (p/g)", "ACTs/row (p/g)")
	for _, row := range r.Rows {
		p, m := row.Profile, row.Measured
		sp := p.Scaled(r.Scale)
		fmt.Fprintf(&b, "%-12s %8.2f /%8.2f %10d /%10d %7d /%7d %6.1f /%6.1f\n",
			p.Name, p.MPKI, m.MPKI, sp.UniqueRows, m.UniqueRows, sp.Hot250, m.Hot250,
			p.ActsPerRow, m.ActsPerRow)
	}
	return b.String()
}

// Table3 measures the generated traces against the paper's Table 3.
func Table3(o Options) (*Table3Report, error) {
	o = o.withDefaults()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	mem := dram.Baseline()
	base := workload.DefaultStreamConfig(mem, mem.RowsPerBank-17)
	base.Scale = o.Scale
	base.Seed = o.seed()
	rep := &Table3Report{Scale: o.Scale}
	for _, p := range profiles {
		c, err := workload.Characterize(p, base)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Table3Row{Profile: p, Measured: c})
	}
	return rep, nil
}

// Table4Text renders Hydra's storage breakdown.
func Table4Text() string {
	s := storage.Table4()
	var b strings.Builder
	b.WriteString("Table 4: Hydra storage overhead (32 GB memory, 2 channels)\n")
	fmt.Fprintf(&b, "%-8s %12s %10s %12s\n", "struct", "entry bits", "entries", "cost")
	fmt.Fprintf(&b, "%-8s %12d %10d %12s\n", "GCT", s.GCTEntryBits, s.GCTEntries, storage.FormatBytes(s.GCTBytes))
	fmt.Fprintf(&b, "%-8s %12d %10d %12s\n", "RCC", s.RCCEntryBits, s.RCCEntries, storage.FormatBytes(s.RCCBytes))
	fmt.Fprintf(&b, "%-8s %12d %10d %12s\n", "RIT-ACT", s.RITActEntryBits, s.RITActEntries, storage.FormatBytes(s.RITActBytes))
	fmt.Fprintf(&b, "%-8s %23s %12s\n", "Total", "", storage.FormatBytes(s.TotalBytes))
	return b.String()
}

// Table5Text renders the total SRAM comparison (DDR4 vs DDR5).
func Table5Text(trh int) string {
	if trh <= 0 {
		trh = 500
	}
	rows := storage.Table5(trh)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: total SRAM for 32 GB memory (2 ranks), TRH=%d\n", trh)
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "scheme", "DDR4 (16 bk)", "DDR5 (32 bk)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14s %14s\n", r.Scheme,
			storage.FormatBytes(r.DDR4), storage.FormatBytes(r.DDR5))
	}
	return b.String()
}

// PowerReport reproduces Section 6.8.
type PowerReport struct {
	PerWorkloadPct map[string]float64 // DRAM tracker-overhead %
	AvgPct         float64
	SRAM           power.SRAMPower
}

// Format renders the report.
func (r *PowerReport) Format() string {
	var b strings.Builder
	b.WriteString("Section 6.8: power overhead of Hydra\n")
	for _, w := range sortedKeys(r.PerWorkloadPct) {
		fmt.Fprintf(&b, "%-12s DRAM overhead %6.3f%%\n", w, r.PerWorkloadPct[w])
	}
	fmt.Fprintf(&b, "%-12s DRAM overhead %6.3f%% (paper: ~0.2%%)\n", "AVERAGE", r.AvgPct)
	fmt.Fprintf(&b, "SRAM power: GCT %.1f mW + RCC %.1f mW = %.1f mW (paper: 18.6 mW)\n",
		r.SRAM.GCTmW, r.SRAM.RCCmW, r.SRAM.TotalMW())
	return b.String()
}

// Power runs Hydra over the workloads and computes the DRAM energy
// overhead of tracking plus the SRAM structure power.
func Power(o Options) (*PowerReport, error) {
	o = o.withDefaults()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res, cells, _, err := runMatrix(o, profiles, []Variant{
		{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
	})
	if err != nil {
		return nil, err
	}
	rep := &PowerReport{PerWorkloadPct: map[string]float64{}, SRAM: power.HydraSRAM()}
	var pcts []float64
	model := power.DefaultDRAM()
	mem := dram.Baseline()
	for _, p := range profiles {
		r, err := lookup(res, cells, "hydra", p.Name)
		if err != nil {
			return nil, err
		}
		bd := power.DRAMEnergy(model, r.Mem, r.Cycles, mem.Channels)
		pct := bd.TrackerOverheadPct()
		rep.PerWorkloadPct[p.Name] = pct
		pcts = append(pcts, pct)
	}
	rep.AvgPct = stats.Mean(pcts)
	return rep, nil
}
