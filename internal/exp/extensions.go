package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mitigate"
	"repro/internal/rh"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ExtensionRandomized reproduces footnote 4's claim: the randomized
// (cipher-indexed, per-window rekeyed) GCT/RCT mapping performs within
// ~0.1% of the static mapping.
func ExtensionRandomized(o Options) (*PerfReport, error) {
	o = o.withDefaults()
	return perfReport(o, "Extension: static vs randomized GCT indexing (normalized performance)",
		[]Variant{
			{Name: "hydra-static", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
			{Name: "hydra-random", Mutate: func(c *sim.Config) {
				c.Tracker = sim.TrackHydra
				c.HydraRandomize = true
			}},
		})
}

// DDR5Report compares Hydra's overheads on DDR4 and DDR5 geometries.
type DDR5Report struct {
	Rows []DDR5Row
}

// DDR5Row is one workload's DDR4-vs-DDR5 comparison.
type DDR5Row struct {
	Workload     string
	DDR4Slowdown float64 // percent
	DDR5Slowdown float64
	SRAMBytes    int // identical on both: Hydra is per-controller
}

// Format renders the report.
func (r *DDR5Report) Format() string {
	var b strings.Builder
	b.WriteString("Extension: Hydra on DDR5 (32 banks/rank) vs DDR4 (16 banks/rank)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %12s\n", "workload", "DDR4 slowdown", "DDR5 slowdown", "SRAM")
	var d4, d5 []float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %13.2f%% %13.2f%% %12d\n",
			row.Workload, row.DDR4Slowdown, row.DDR5Slowdown, row.SRAMBytes)
		d4 = append(d4, row.DDR4Slowdown)
		d5 = append(d5, row.DDR5Slowdown)
	}
	fmt.Fprintf(&b, "%-12s %13.2f%% %13.2f%%  (SRAM unchanged: per-controller design)\n",
		"AVERAGE", stats.Mean(d4), stats.Mean(d5))
	return b.String()
}

// ExtensionDDR5 runs baseline and Hydra on both geometries and reports
// the slowdowns side by side: per-bank trackers would double their
// SRAM on DDR5 (Table 5), Hydra does not.
func ExtensionDDR5(o Options) (*DDR5Report, error) {
	o = o.withDefaults()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	variants := []Variant{
		{Name: "ddr4-base", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackNone }},
		{Name: "ddr4-hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
		{Name: "ddr5-base", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackNone; c.Mem = dram.DDR5() }},
		{Name: "ddr5-hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra; c.Mem = dram.DDR5() }},
	}
	res, cells, _, err := runMatrix(o, profiles, variants)
	if err != nil {
		return nil, err
	}
	rep := &DDR5Report{}
	for _, p := range profiles {
		slow := func(base, tracked string) (float64, error) {
			b, err := lookup(res, cells, base, p.Name)
			if err != nil {
				return 0, err
			}
			t, err := lookup(res, cells, tracked, p.Name)
			if err != nil {
				return 0, err
			}
			return stats.SlowdownPct(float64(b.Cycles) / float64(t.Cycles)), nil
		}
		d4, err := slow("ddr4-base", "ddr4-hydra")
		if err != nil {
			return nil, err
		}
		d5, err := slow("ddr5-base", "ddr5-hydra")
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, DDR5Row{
			Workload:     p.Name,
			DDR4Slowdown: d4,
			DDR5Slowdown: d5,
			SRAMBytes:    res["ddr4-hydra"][p.Name].SRAMBytes,
		})
	}
	return rep, nil
}

// ExtensionRowSwap compares the two mitigation policies' activation
// overheads functionally: victim refresh performs 4 activations per
// mitigation, row swap 2 migrations (but durable relocation). The
// full-system policies share the tracker, so the comparison runs at
// the tracking level over the paper's aggressor counts.
type RowSwapReport struct {
	TRH              int
	Hammers          int
	RefreshMitig     int64
	RefreshExtraActs int64
	SwapMitig        int64
	SwapExtraActs    int64
}

// Format renders the report.
func (r *RowSwapReport) Format() string {
	var b strings.Builder
	b.WriteString("Extension: victim refresh vs randomized row-swap (Section 8 future work)\n")
	fmt.Fprintf(&b, "aggressor hammers: %d at T_RH=%d\n", r.Hammers, r.TRH)
	fmt.Fprintf(&b, "%-16s %12s %18s\n", "policy", "mitigations", "extra activations")
	fmt.Fprintf(&b, "%-16s %12d %18d\n", "victim-refresh", r.RefreshMitig, r.RefreshExtraActs)
	fmt.Fprintf(&b, "%-16s %12d %18d\n", "row-swap", r.SwapMitig, r.SwapExtraActs)
	return b.String()
}

// ExtensionRowSwap runs both mitigation policies against the same
// hammering pattern on identically configured Hydra trackers.
func ExtensionRowSwap(o Options) (*RowSwapReport, error) {
	o = o.withDefaults()
	const hammers = 200000
	mem := dram.Baseline()

	mk := func() (*core.Tracker, error) {
		cfg := core.ForThreshold(o.TRH)
		cfg.Rows = mem.TotalRows()
		cfg.Seed = o.seed()
		return core.New(cfg, rh.NullSink{})
	}

	t1, err := mk()
	if err != nil {
		return nil, err
	}
	ref := mitigate.NewRefresher(t1, mitigate.DefaultBlast, mem.RowsPerBank)
	aggressor := rh.Row(100000)
	var refreshActs int64
	for i := 0; i < hammers; i++ {
		refreshActs += int64(len(ref.Activate(aggressor)))
	}

	t2, err := mk()
	if err != nil {
		return nil, err
	}
	sw := mitigate.NewSwapper(t2, mem.RowsPerBank, o.seed())
	for i := 0; i < hammers; i++ {
		sw.Activate(aggressor)
	}

	return &RowSwapReport{
		TRH:              o.TRH,
		Hammers:          hammers,
		RefreshMitig:     ref.Mitigations,
		RefreshExtraActs: refreshActs,
		SwapMitig:        sw.Swaps,
		SwapExtraActs:    sw.MigrationActs,
	}, nil
}

// PolicyReport compares the mitigation policies in full system.
type PolicyReport struct {
	Rows []PolicyRow
}

// PolicyRow is one workload's slowdown under each policy.
type PolicyRow struct {
	Workload    string
	RefreshPct  float64
	RowSwapPct  float64
	ThrottlePct float64
}

// Format renders the report.
func (r *PolicyReport) Format() string {
	var b strings.Builder
	b.WriteString("Extension: mitigation policies in full system (slowdown vs non-secure)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "workload", "victim-refresh", "row-swap", "throttle")
	var rf, rs, th []float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %13.2f%% %13.2f%% %13.2f%%\n",
			row.Workload, row.RefreshPct, row.RowSwapPct, row.ThrottlePct)
		rf = append(rf, row.RefreshPct)
		rs = append(rs, row.RowSwapPct)
		th = append(th, row.ThrottlePct)
	}
	fmt.Fprintf(&b, "%-12s %13.2f%% %13.2f%% %13.2f%%\n", "AVERAGE",
		stats.Mean(rf), stats.Mean(rs), stats.Mean(th))
	b.WriteString("(throttle reproduces footnote 6: delay-based mitigation is a DoS\n")
	b.WriteString(" for workloads with hot rows at ultra-low thresholds)\n")
	return b.String()
}

// ExtensionPolicies runs Hydra under all three mitigation policies.
func ExtensionPolicies(o Options) (*PolicyReport, error) {
	o = o.withDefaults()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	variants := []Variant{
		{Name: "base", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackNone }},
		{Name: "refresh", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
		{Name: "rowswap", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra; c.Mitigation = sim.MitigateRowSwap }},
		{Name: "throttle", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra; c.Mitigation = sim.MitigateThrottle }},
	}
	res, cells, _, err := runMatrix(o, profiles, variants)
	if err != nil {
		return nil, err
	}
	rep := &PolicyReport{}
	for _, p := range profiles {
		base, err := lookup(res, cells, "base", p.Name)
		if err != nil {
			return nil, err
		}
		slow := func(v string) (float64, error) {
			r, err := lookup(res, cells, v, p.Name)
			if err != nil {
				return 0, err
			}
			return stats.SlowdownPct(float64(base.Cycles) / float64(r.Cycles)), nil
		}
		row := PolicyRow{Workload: p.Name}
		if row.RefreshPct, err = slow("refresh"); err != nil {
			return nil, err
		}
		if row.RowSwapPct, err = slow("rowswap"); err != nil {
			return nil, err
		}
		if row.ThrottlePct, err = slow("throttle"); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
