package mitigate

import (
	"fmt"

	"repro/internal/rh"
)

// Swapper implements the row-migration mitigation the paper names as
// future work (Section 8, citing Randomized Row-Swap): when the
// tracker flags an aggressor, instead of refreshing its neighbours the
// row's *content* is swapped with a randomly chosen partner row in the
// same bank, breaking the spatial correlation between the aggressor
// and its victims before the blast radius accumulates damage.
//
// The Swapper keeps the logical-to-physical indirection (the Row
// Indirection Table of the RRS design) as a sparse permutation: only
// swapped rows occupy map entries. A swap migrates both rows — each
// migration is a read plus a write of an 8 KB row, modeled as one
// activation of each physical row — and those activations feed back
// into the tracker, exactly like victim-refresh feedback.
type Swapper struct {
	tracker     rh.Tracker
	rowsPerBank int
	rng         swapRNG

	toPhys map[rh.Row]rh.Row // logical -> physical (sparse)
	toLog  map[rh.Row]rh.Row // physical -> logical (sparse)

	depth int // recursion guard for migration-triggered swaps

	// Stats over the Swapper lifetime.
	Swaps         int64
	MigrationActs int64
}

type swapRNG struct{ state uint64 }

func (s *swapRNG) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSwapper creates a row-swap mitigator around a tracker.
func NewSwapper(t rh.Tracker, rowsPerBank int, seed uint64) *Swapper {
	if rowsPerBank <= 0 {
		panic(fmt.Sprintf("mitigate: rowsPerBank=%d must be positive", rowsPerBank))
	}
	return &Swapper{
		tracker:     t,
		rowsPerBank: rowsPerBank,
		rng:         swapRNG{state: seed ^ 0x5a5a5a5a5a5a},
		toPhys:      make(map[rh.Row]rh.Row),
		toLog:       make(map[rh.Row]rh.Row),
	}
}

// Physical returns the current physical row of a logical row.
func (s *Swapper) Physical(logical rh.Row) rh.Row {
	if p, ok := s.toPhys[logical]; ok {
		return p
	}
	return logical
}

// logical returns the logical row currently stored in a physical row.
func (s *Swapper) logical(phys rh.Row) rh.Row {
	if l, ok := s.toLog[phys]; ok {
		return l
	}
	return phys
}

// Activate performs one access to a logical row: the underlying
// physical row is activated and tracked; if the tracker flags it, the
// row is swapped with a random same-bank partner. It returns the
// physical row that was activated and whether a swap happened.
func (s *Swapper) Activate(logicalRow rh.Row) (phys rh.Row, swapped bool) {
	phys = s.Physical(logicalRow)
	if !s.tracker.Activate(phys) {
		return phys, false
	}
	s.swap(logicalRow, phys)
	return phys, true
}

// swap relocates the aggressor to a random physical row of the same
// bank, migrating both rows' contents.
func (s *Swapper) swap(logicalRow, phys rh.Row) {
	s.depth++
	defer func() { s.depth-- }()
	if s.depth > 64 {
		panic(ErrCascade)
	}
	bankBase := rh.Row(int(phys) / s.rowsPerBank * s.rowsPerBank)
	partnerPhys := bankBase + rh.Row(s.rng.next()%uint64(s.rowsPerBank))
	if partnerPhys == phys {
		partnerPhys = bankBase + rh.Row((int(partnerPhys)+1-int(bankBase))%s.rowsPerBank)
	}
	partnerLog := s.logical(partnerPhys)

	s.setMapping(logicalRow, partnerPhys)
	s.setMapping(partnerLog, phys)
	s.Swaps++

	// Migrating each row costs an activation of both physical rows
	// (read one, write the other, then the reverse); feed them back so
	// an attacker cannot weaponize migrations (Section 5.2.1 applies
	// to any mitigative action).
	for _, m := range [...]rh.Row{phys, partnerPhys} {
		s.MigrationActs++
		if s.tracker.Activate(m) {
			// A migration that itself trips the threshold triggers
			// another swap of whatever logical row now lives there.
			s.swap(s.logical(m), m)
		}
	}
}

func (s *Swapper) setMapping(logical, phys rh.Row) {
	// Drop identity entries to keep the tables sparse.
	if logical == phys {
		delete(s.toPhys, logical)
		delete(s.toLog, phys)
		return
	}
	s.toPhys[logical] = phys
	s.toLog[phys] = logical
}

// CheckPermutation verifies the indirection is a bijection (every
// mapped physical row maps back); tests use it as an invariant.
func (s *Swapper) CheckPermutation() error {
	if len(s.toPhys) != len(s.toLog) {
		return fmt.Errorf("mitigate: mapping tables disagree: %d vs %d entries", len(s.toPhys), len(s.toLog))
	}
	for l, p := range s.toPhys {
		if got, ok := s.toLog[p]; !ok || got != l {
			return fmt.Errorf("mitigate: physical %d maps to %d, expected %d", p, got, l)
		}
	}
	return nil
}

// ResetWindow forwards the periodic reset to the tracker. The
// indirection table persists: swaps are durable relocations.
func (s *Swapper) ResetWindow() { s.tracker.ResetWindow() }

// SRAMBytes estimates the indirection-table cost at 8 bytes per
// swapped pair, on top of the tracker's own storage.
func (s *Swapper) SRAMBytes() int {
	return s.tracker.SRAMBytes() + 8*len(s.toPhys)
}
