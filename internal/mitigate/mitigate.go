// Package mitigate implements the victim-refresh mitigation policy of
// the paper (Section 4.7): when a tracker flags an aggressor row, the
// Blast-Radius nearest rows on each side are refreshed. Refreshing a
// victim row activates it, so those activations are fed back into the
// tracker — the defense against Half-Double-style attacks that exploit
// mitigation-induced activations (Section 5.2.1).
package mitigate

import (
	"fmt"

	"repro/internal/rh"
)

// DefaultBlast is the paper's blast radius: two victim rows refreshed
// on each side of the aggressor, chosen because Half-Double flips bits
// at distance two.
const DefaultBlast = 2

// Victims computes neighbour rows, clipped at bank boundaries. It is a
// standalone copy of the geometry rule so the package stays free of a
// dram dependency; the simulator uses dram.Config.Victims, which the
// tests cross-check against this one.
func Victims(row rh.Row, blast, rowsPerBank int) []rh.Row {
	inBank := int(row) % rowsPerBank
	victims := make([]rh.Row, 0, 2*blast)
	for d := 1; d <= blast; d++ {
		if inBank-d >= 0 {
			victims = append(victims, row-rh.Row(d))
		}
		if inBank+d < rowsPerBank {
			victims = append(victims, row+rh.Row(d))
		}
	}
	return victims
}

// Refresher drives a tracker with the victim-refresh policy. Each
// demand activation may trigger a mitigation; the mitigation's victim
// refreshes are themselves activations and re-enter the tracker, which
// can (rarely) cascade. The cascade is bounded because every mitigation
// resets the aggressor's counter, but a hard cap guards against a
// broken tracker looping forever.
type Refresher struct {
	tracker     rh.Tracker
	blast       int
	rowsPerBank int

	// MetaOf classifies rows that belong to the tracker's own DRAM
	// metadata (e.g. Hydra's RCT): it returns the metadata row index
	// and true for such rows. Nil means no metadata rows.
	MetaOf func(rh.Row) (int, bool)

	// Observer, when non-nil, sees every activation (demand and
	// victim-refresh) and every mitigation in order; the attack
	// suite's security oracle hangs off this hook.
	Observer Observer

	// Stats since construction.
	Mitigations int64 // mitigations issued (aggressors refreshed around)
	VictimActs  int64 // activations caused by victim refreshes
	CascadeMax  int   // deepest feedback chain observed
}

// Observer receives the activation/mitigation event stream from a
// Refresher.
type Observer interface {
	// Activated is called once per row activation, demand or
	// mitigation-induced.
	Activated(row rh.Row)
	// Mitigated is called when the tracker orders a mitigation for
	// row, after the corresponding Activated call.
	Mitigated(row rh.Row)
}

// ErrCascade is reported (via panic, since it indicates a broken
// tracker) when a mitigation chain exceeds the safety cap.
var ErrCascade = fmt.Errorf("mitigate: mitigation cascade exceeded safety cap")

const cascadeCap = 1 << 16

// NewRefresher creates a victim-refresh engine around a tracker.
func NewRefresher(t rh.Tracker, blast, rowsPerBank int) *Refresher {
	if blast <= 0 || rowsPerBank <= 0 {
		panic(fmt.Sprintf("mitigate: blast=%d rowsPerBank=%d must be positive", blast, rowsPerBank))
	}
	return &Refresher{tracker: t, blast: blast, rowsPerBank: rowsPerBank}
}

// Tracker returns the wrapped tracker.
func (r *Refresher) Tracker() rh.Tracker { return r.tracker }

// Activate performs one demand activation of row, runs the mitigation
// feedback chain to completion, and returns every additional activation
// (victim refresh) that was performed, in order.
func (r *Refresher) Activate(row rh.Row) []rh.Row {
	var extra []rh.Row
	queue := []rh.Row{row}
	depth := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		depth++
		if depth > cascadeCap {
			panic(ErrCascade)
		}
		if r.Observer != nil {
			r.Observer.Activated(cur)
		}
		var mitigate bool
		if r.MetaOf != nil {
			if idx, ok := r.MetaOf(cur); ok {
				mitigate = r.tracker.ActivateMeta(idx)
			} else {
				mitigate = r.tracker.Activate(cur)
			}
		} else {
			mitigate = r.tracker.Activate(cur)
		}
		if !mitigate {
			continue
		}
		r.Mitigations++
		if r.Observer != nil {
			r.Observer.Mitigated(cur)
		}
		for _, v := range Victims(cur, r.blast, r.rowsPerBank) {
			extra = append(extra, v)
			queue = append(queue, v)
			r.VictimActs++
		}
	}
	if depth > r.CascadeMax {
		r.CascadeMax = depth
	}
	return extra
}

// ResetWindow forwards the periodic reset to the tracker.
func (r *Refresher) ResetWindow() { r.tracker.ResetWindow() }
