package mitigate

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rh"
)

func swapHydra(t *testing.T) *core.Tracker {
	t.Helper()
	return core.MustNew(core.Config{
		Rows:       4096,
		TRH:        100,
		GCTEntries: 32,
		RCCEntries: 64,
		RCCWays:    8,
		RowBytes:   8192,
	}, rh.NullSink{})
}

func TestSwapperRelocatesAggressor(t *testing.T) {
	s := NewSwapper(swapHydra(t), 4096, 7)
	logical := rh.Row(1000)
	var swapsSeen int
	physSeen := map[rh.Row]bool{}
	for i := 0; i < 500; i++ {
		phys, swapped := s.Activate(logical)
		physSeen[phys] = true
		if swapped {
			swapsSeen++
		}
	}
	// T_H = 50: roughly one swap per 50 activations.
	if swapsSeen < 8 || swapsSeen > 12 {
		t.Fatalf("swaps = %d, want ~10", swapsSeen)
	}
	if len(physSeen) < swapsSeen {
		t.Fatalf("aggressor visited %d physical rows over %d swaps", len(physSeen), swapsSeen)
	}
	if s.Physical(logical) == logical && swapsSeen > 0 {
		// Possible only if it swapped back by chance; vanishingly rare.
		t.Log("aggressor returned to its original row (chance)")
	}
	if err := s.CheckPermutation(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapperPhysicalRowsBounded(t *testing.T) {
	// The RRS security core: while an aggressor hammers one logical
	// row, no *physical* row accumulates more than T_H activations
	// between swaps, because the tracker counts physical rows.
	h := swapHydra(t)
	s := NewSwapper(h, 4096, 9)
	counts := map[rh.Row]int{}
	for i := 0; i < 5000; i++ {
		phys, swapped := s.Activate(rh.Row(2000))
		counts[phys]++
		if swapped {
			counts[phys] = 0
		}
		if counts[phys] > 50 {
			t.Fatalf("physical row %d reached %d acts without a swap", phys, counts[phys])
		}
	}
}

func TestSwapperMigrationFeedback(t *testing.T) {
	s := NewSwapper(swapHydra(t), 4096, 11)
	for i := 0; i < 200; i++ {
		s.Activate(rh.Row(5))
	}
	if s.Swaps == 0 {
		t.Fatal("no swaps")
	}
	if s.MigrationActs != 2*s.Swaps {
		t.Fatalf("migration acts = %d, want 2 per swap (%d swaps)", s.MigrationActs, s.Swaps)
	}
}

func TestSwapperRoutesReadsAfterSwap(t *testing.T) {
	s := NewSwapper(swapHydra(t), 4096, 13)
	logical := rh.Row(123)
	// Force one swap.
	for i := 0; i < 60; i++ {
		s.Activate(logical)
	}
	phys := s.Physical(logical)
	if phys == logical {
		t.Skip("swap landed back on the identity (chance)")
	}
	// The partner's logical row must now live in the old physical row.
	if got := s.logical(logical); got == logical {
		t.Fatalf("old physical row %d not reassigned", logical)
	}
	if err := s.CheckPermutation(); err != nil {
		t.Fatal(err)
	}
}

// TestSwapperPermutationProperty drives random traffic and checks the
// indirection stays a bijection and stays within the bank.
func TestSwapperPermutationProperty(t *testing.T) {
	f := func(seed uint64, rowsRaw []uint16) bool {
		h := swapHydra(t)
		s := NewSwapper(h, 1024, seed) // 4 banks of 1024 rows
		for _, r := range rowsRaw {
			logical := rh.Row(r) % 4096
			phys, _ := s.Activate(logical)
			if int(phys)/1024 != int(s.Physical(logical))/1024 {
				return false
			}
			// Swaps must stay within the bank of the aggressor.
			if int(logical)/1024 != int(s.Physical(logical))/1024 {
				return false
			}
		}
		return s.CheckPermutation() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapperHammerProperty(t *testing.T) {
	// Hammering hard via the swapper: total swaps scale with
	// activations / T_H even under interleaved traffic.
	h := swapHydra(t)
	s := NewSwapper(h, 4096, 21)
	n := 10000
	for i := 0; i < n; i++ {
		s.Activate(rh.Row(uint32(i % 3)))
	}
	if s.Swaps < int64(n/50/2) {
		t.Fatalf("swaps = %d over %d acts, want at least %d", s.Swaps, n, n/50/2)
	}
	if err := s.CheckPermutation(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapperResetWindowForwards(t *testing.T) {
	h := swapHydra(t)
	s := NewSwapper(h, 4096, 1)
	for i := 0; i < 49; i++ {
		s.Activate(rh.Row(9))
	}
	s.ResetWindow()
	if got := h.GCTValue(rh.Row(9)); got != 0 {
		t.Fatalf("GCT after reset = %d", got)
	}
	// Mappings survive the reset (relocations are durable).
	if err := s.CheckPermutation(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapperSRAMAccounting(t *testing.T) {
	h := swapHydra(t)
	s := NewSwapper(h, 4096, 3)
	base := s.SRAMBytes()
	for i := 0; i < 120; i++ {
		s.Activate(rh.Row(77))
	}
	if s.SRAMBytes() <= base {
		t.Fatal("indirection entries not accounted")
	}
}

func TestNewSwapperValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad rowsPerBank should panic")
		}
	}()
	NewSwapper(swapHydra(t), 0, 1)
}
