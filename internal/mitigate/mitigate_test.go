package mitigate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/rh"
)

func smallHydra(t *testing.T) *core.Tracker {
	t.Helper()
	cfg := core.Config{
		Rows:       4096,
		TRH:        100,
		GCTEntries: 32,
		RCCEntries: 64,
		RCCWays:    8,
		RowBytes:   8192,
	}
	return core.MustNew(cfg, rh.NullSink{})
}

func TestVictimsMatchDramGeometry(t *testing.T) {
	cfg := dram.Baseline()
	for _, row := range []uint32{0, 1, 5000, uint32(cfg.RowsPerBank) - 1, uint32(cfg.RowsPerBank)} {
		want := cfg.Victims(row, 2)
		got := Victims(rh.Row(row), 2, cfg.RowsPerBank)
		if len(got) != len(want) {
			t.Fatalf("row %d: %v vs dram %v", row, got, want)
		}
		for i := range got {
			if uint32(got[i]) != want[i] {
				t.Fatalf("row %d: %v vs dram %v", row, got, want)
			}
		}
	}
}

func TestRefresherIssuesVictimRefreshes(t *testing.T) {
	r := NewRefresher(smallHydra(t), DefaultBlast, 4096)
	target := rh.Row(1000)
	var extras []rh.Row
	for i := 0; i < 50; i++ {
		extras = append(extras, r.Activate(target)...)
	}
	if r.Mitigations != 1 {
		t.Fatalf("Mitigations = %d, want 1 after 50 activations (TH=50)", r.Mitigations)
	}
	if len(extras) != 4 {
		t.Fatalf("victim refreshes = %v, want 4 rows", extras)
	}
	want := map[rh.Row]bool{998: true, 999: true, 1001: true, 1002: true}
	for _, v := range extras {
		if !want[v] {
			t.Fatalf("unexpected victim %d", v)
		}
	}
}

// TestVictimActivationsAreTracked is the Half-Double defense: the
// activations performed by victim refreshes must count toward the
// victims' own activation totals. Hammering the aggressor hard enough
// must eventually mitigate its neighbours too.
func TestVictimActivationsAreTracked(t *testing.T) {
	h := smallHydra(t)
	r := NewRefresher(h, DefaultBlast, 4096)
	target := rh.Row(1000)
	neighbourMitigated := false
	// 50 * TH activations of the aggressor give the distance-1 row 50
	// refresh-activations, driving it toward its own threshold.
	for i := 0; i < 50*50*3; i++ {
		for _, v := range r.Activate(target) {
			_ = v
		}
	}
	// The neighbour at distance 1 received ~150 activations from
	// mitigations; with TH=50 it must have been mitigated itself,
	// which shows up as extra mitigations beyond the aggressor's.
	aggressorMitigs := int64(50 * 3)
	if r.Mitigations > aggressorMitigs {
		neighbourMitigated = true
	}
	if !neighbourMitigated {
		t.Fatalf("mitigations = %d, want > %d (victim feedback must be tracked)",
			r.Mitigations, aggressorMitigs)
	}
}

func TestRefresherRoutesMetaRows(t *testing.T) {
	h := smallHydra(t)
	r := NewRefresher(h, DefaultBlast, 4096)
	metaRow := rh.Row(4095)
	r.MetaOf = func(row rh.Row) (int, bool) {
		if row == metaRow {
			return 0, true
		}
		return 0, false
	}
	// TH activations of the metadata row trigger the RIT-ACT guard.
	mitigs := r.Mitigations
	for i := 0; i < 50; i++ {
		r.Activate(metaRow)
	}
	if r.Mitigations != mitigs+1 {
		t.Fatalf("meta mitigations = %d, want 1", r.Mitigations-mitigs)
	}
	if h.Stats().MetaActs != 50 {
		t.Fatalf("MetaActs = %d, want 50", h.Stats().MetaActs)
	}
}

func TestRefresherEdgeRows(t *testing.T) {
	r := NewRefresher(smallHydra(t), DefaultBlast, 4096)
	// Row 0 has no left neighbours; mitigation refreshes only 2 rows.
	var extras []rh.Row
	for i := 0; i < 50; i++ {
		extras = append(extras, r.Activate(rh.Row(0))...)
	}
	if len(extras) != 2 {
		t.Fatalf("victims of row 0 = %v, want 2", extras)
	}
}

func TestNewRefresherValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad blast should panic")
		}
	}()
	NewRefresher(smallHydra(t), 0, 4096)
}

func TestResetWindowForwarded(t *testing.T) {
	h := smallHydra(t)
	r := NewRefresher(h, DefaultBlast, 4096)
	for i := 0; i < 49; i++ {
		r.Activate(rh.Row(7))
	}
	r.ResetWindow()
	if got := h.GCTValue(rh.Row(7)); got != 0 {
		t.Fatalf("GCT after forwarded reset = %d", got)
	}
}

// brokenTracker always demands mitigation: the cascade cap must trip
// rather than loop forever.
type brokenTracker struct{}

func (brokenTracker) Name() string          { return "broken" }
func (brokenTracker) Activate(rh.Row) bool  { return true }
func (brokenTracker) ActivateMeta(int) bool { return false }
func (brokenTracker) ResetWindow()          {}
func (brokenTracker) SRAMBytes() int        { return 1 }
func (brokenTracker) MetaRows() int         { return 0 }

func TestCascadeCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("runaway cascade should panic")
		}
	}()
	r := NewRefresher(brokenTracker{}, 2, 4096)
	r.Activate(rh.Row(100))
}
