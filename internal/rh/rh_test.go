package rh

import "testing"

func TestCountingSink(t *testing.T) {
	var s CountingSink
	s.MetaRead(0)
	s.MetaRead(64)
	s.MetaWrite(0)
	if s.Reads != 2 || s.Writes != 1 || s.Total() != 3 {
		t.Fatalf("sink = %+v", s)
	}
}

func TestNullSinkIsNoop(t *testing.T) {
	var s NullSink
	s.MetaRead(0) // must not panic
	s.MetaWrite(0)
}

func TestInvalidRow(t *testing.T) {
	if InvalidRow == Row(0) {
		t.Fatal("InvalidRow collides with row 0")
	}
}
