// Package llc models the baseline system's shared last-level cache
// (Table 2: 8 MB, 16-way, 64-byte lines). The simulator's workload
// streams are calibrated post-LLC (Table 3's MPKI is LLC misses), so
// the full-system runs do not need a cache model — but users bringing
// raw, instruction-level access traces do: Filter wraps any trace
// source and forwards only the LLC misses and the writebacks of dirty
// evictions, folding the instruction gaps of hits into the next miss.
package llc

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/workload"
)

// Config sizes the cache.
type Config struct {
	Bytes     int
	Ways      int
	LineBytes int
}

// Default returns the paper's Table 2 LLC: 8 MB, 16-way, 64 B lines.
func Default() Config {
	return Config{Bytes: 8 << 20, Ways: 16, LineBytes: 64}
}

// Cache is a shared write-back, write-allocate last-level cache over
// line addresses.
type Cache struct {
	cfg  Config
	tags *cache.SetAssoc

	// Stats over the cache lifetime.
	Hits       int64
	Misses     int64
	Writebacks int64
}

// New creates a cache. Invalid geometry is a configuration error
// reported to the caller.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.Bytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("llc: bad config %+v", cfg)
	}
	lines := cfg.Bytes / cfg.LineBytes
	if lines <= 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("llc: %d lines not a multiple of %d ways", lines, cfg.Ways)
	}
	tags, err := cache.New(lines, cfg.Ways, cache.LRU)
	if err != nil {
		return nil, fmt.Errorf("llc: %w", err)
	}
	return &Cache{cfg: cfg, tags: tags}, nil
}

// MustNew is New for statically valid configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access performs one read or write of a line. On a miss the line is
// allocated; if that displaces a dirty line, its address is returned
// as a writeback.
func (c *Cache) Access(line uint64, write bool) (miss bool, writeback uint64, hasWB bool) {
	if _, ok := c.tags.Lookup(line); ok {
		c.Hits++
		if write {
			c.tags.Update(line, 0)
		}
		return false, 0, false
	}
	c.Misses++
	victim, evicted := c.tags.Insert(line, 0, write)
	if evicted && victim.Dirty {
		c.Writebacks++
		return true, victim.Key, true
	}
	return true, 0, false
}

// MissRate returns misses / accesses.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Filter adapts a raw (pre-LLC) trace source into the post-LLC stream
// the memory simulator consumes: hits are absorbed (their instruction
// gaps accumulate onto the next forwarded request), misses pass
// through as reads, and dirty evictions follow as writebacks. Filter
// implements cpu.TraceSource.
type Filter struct {
	cache *Cache
	src   interface {
		Next() (workload.Request, bool)
	}
	pending    []workload.Request
	gapCarry   int
	instsTotal int64
}

// NewFilter wraps src with the cache.
func NewFilter(c *Cache, src interface {
	Next() (workload.Request, bool)
}) *Filter {
	return &Filter{cache: c, src: src}
}

// Next implements cpu.TraceSource.
func (f *Filter) Next() (workload.Request, bool) {
	if len(f.pending) > 0 {
		r := f.pending[0]
		f.pending = f.pending[1:]
		return r, true
	}
	for {
		r, ok := f.src.Next()
		if !ok {
			return workload.Request{}, false
		}
		f.instsTotal += int64(r.Gap) + 1
		miss, wb, hasWB := f.cache.Access(r.Line, r.Write)
		if !miss {
			// Absorbed: its instructions count toward the next miss.
			f.gapCarry += r.Gap + 1
			continue
		}
		out := workload.Request{Gap: r.Gap + f.gapCarry, Write: false, Line: r.Line}
		f.gapCarry = 0
		if hasWB {
			f.pending = append(f.pending, workload.Request{Gap: 0, Write: true, Line: wb})
		}
		return out, true
	}
}

// Insts returns the instructions consumed from the raw source, for
// computing post-LLC MPKI.
func (f *Filter) Insts() int64 { return f.instsTotal }

// GapCarry returns instructions absorbed by hits since the last
// forwarded miss; at end of stream these trail the final memory
// request (compute with no further memory traffic).
func (f *Filter) GapCarry() int { return f.gapCarry }
