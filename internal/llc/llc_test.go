package llc

import (
	"testing"

	"repro/internal/workload"
)

func small() *Cache {
	return MustNew(Config{Bytes: 64 * 64, Ways: 4, LineBytes: 64}) // 64 lines
}

func TestDefaultGeometry(t *testing.T) {
	c := MustNew(Default())
	if c.cfg.Bytes != 8<<20 || c.cfg.Ways != 16 {
		t.Fatalf("config %+v", c.cfg)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := small()
	if miss, _, _ := c.Access(42, false); !miss {
		t.Fatal("cold access hit")
	}
	if miss, _, _ := c.Access(42, false); miss {
		t.Fatal("warm access missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats %d/%d", c.Hits, c.Misses)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := MustNew(Config{Bytes: 4 * 64, Ways: 4, LineBytes: 64}) // one set
	c.Access(0, true)                                       // dirty
	var sawWB bool
	for i := uint64(1); i <= 8; i++ {
		if _, wb, has := c.Access(i, false); has && wb == 0 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Fatal("dirty line 0 never written back")
	}
	if c.Writebacks == 0 {
		t.Fatal("writeback not counted")
	}
}

func TestWriteHitDirtiesLine(t *testing.T) {
	c := MustNew(Config{Bytes: 4 * 64, Ways: 4, LineBytes: 64})
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit dirties
	wbs := int64(0)
	for i := uint64(1); i <= 8; i++ {
		c.Access(i, false)
	}
	wbs = c.Writebacks
	if wbs == 0 {
		t.Fatal("written line evicted without writeback")
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	for i := 0; i < 10; i++ {
		c.Access(7, false)
	}
	if r := c.MissRate(); r != 0.1 {
		t.Fatalf("miss rate = %v, want 0.1", r)
	}
	if MustNew(Default()).MissRate() != 0 {
		t.Fatal("empty cache miss rate not 0")
	}
}

func TestBadConfigErrors(t *testing.T) {
	if _, err := New(Config{Bytes: 100, Ways: 3, LineBytes: 64}); err == nil {
		t.Fatal("bad config should error")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config should error")
	}
}

// sliceSource replays raw requests.
type sliceSource struct {
	reqs []workload.Request
	i    int
}

func (s *sliceSource) Next() (workload.Request, bool) {
	if s.i >= len(s.reqs) {
		return workload.Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

func TestFilterAbsorbsHits(t *testing.T) {
	// Raw stream: the same line 10 times with gap 9. Only the first
	// access misses; the forwarded request carries all absorbed
	// instructions in later gaps.
	var reqs []workload.Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, workload.Request{Gap: 9, Line: 5})
	}
	reqs = append(reqs, workload.Request{Gap: 9, Line: 99}) // second miss
	f := NewFilter(small(), &sliceSource{reqs: reqs})

	first, ok := f.Next()
	if !ok || first.Line != 5 || first.Gap != 9 {
		t.Fatalf("first = %+v,%v", first, ok)
	}
	second, ok := f.Next()
	if !ok || second.Line != 99 {
		t.Fatalf("second = %+v,%v", second, ok)
	}
	// 9 absorbed hits x (9 gap + 1 inst) + own gap 9 = 99.
	if second.Gap != 99 {
		t.Fatalf("second gap = %d, want 99 (hit gaps folded)", second.Gap)
	}
	if _, ok := f.Next(); ok {
		t.Fatal("extra request")
	}
	if f.Insts() != 11*10 {
		t.Fatalf("insts = %d, want 110", f.Insts())
	}
}

func TestFilterEmitsWritebacks(t *testing.T) {
	// One-set cache: write-allocate 5 lines; evictions of dirty lines
	// must appear as write requests right after the triggering miss.
	c := MustNew(Config{Bytes: 4 * 64, Ways: 4, LineBytes: 64})
	var reqs []workload.Request
	for i := uint64(0); i < 8; i++ {
		reqs = append(reqs, workload.Request{Gap: 0, Write: true, Line: i})
	}
	f := NewFilter(c, &sliceSource{reqs: reqs})
	var reads, writes int
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != 8 {
		t.Fatalf("reads = %d, want 8 (all misses)", reads)
	}
	if writes != 4 {
		t.Fatalf("writebacks = %d, want 4 (dirty evictions)", writes)
	}
}

// TestFilterReducesTrafficForLocalStream checks the end-to-end point:
// a cache-friendly raw stream produces far fewer memory requests than
// it has accesses, at the same instruction count.
func TestFilterReducesTrafficForLocalStream(t *testing.T) {
	var reqs []workload.Request
	for rep := 0; rep < 50; rep++ {
		for line := uint64(0); line < 32; line++ {
			reqs = append(reqs, workload.Request{Gap: 3, Line: line})
		}
	}
	f := NewFilter(small(), &sliceSource{reqs: reqs})
	forwarded := 0
	instsOut := int64(0)
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		forwarded++
		instsOut += int64(r.Gap) + 1
	}
	if forwarded != 32 {
		t.Fatalf("forwarded = %d, want 32 compulsory misses", forwarded)
	}
	// Conservation: forwarded gaps plus the trailing carry (compute
	// after the last miss) account for every raw instruction.
	if instsOut+int64(f.GapCarry()) != f.Insts() {
		t.Fatalf("instruction conservation broken: %d out + %d carry vs %d in",
			instsOut, f.GapCarry(), f.Insts())
	}
}
