package faults

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mitigate"
	"repro/internal/rh"
)

const (
	tRH  = 100
	rpb  = 4096
	rows = 4096
)

func hydraTracker(t *testing.T) *core.Tracker {
	t.Helper()
	return core.MustNew(core.Config{
		Rows:       rows,
		TRH:        tRH,
		GCTEntries: 32,
		RCCEntries: 64,
		RCCWays:    8,
		RowBytes:   8192,
	}, rh.NullSink{})
}

func TestUnprotectedHammerFlipsBits(t *testing.T) {
	m := NewModel(tRH, 2, rpb, 0.05)
	agg := rh.Row(1000)
	for i := 0; i < tRH; i++ {
		m.Activated(agg)
	}
	if !m.Flipped() {
		t.Fatalf("no flip after %d unmitigated activations (max damage %.1f)", tRH, m.MaxDamage)
	}
	// The first victims are the distance-1 neighbours.
	f := m.Flips[0]
	if f.Row != agg-1 && f.Row != agg+1 {
		t.Fatalf("first flip at row %d, want a distance-1 neighbour of %d", f.Row, agg)
	}
}

func TestHydraPreventsFlips(t *testing.T) {
	m := NewModel(tRH, 2, rpb, 0.05)
	ref := mitigate.NewRefresher(hydraTracker(t), 2, rpb)
	ref.Observer = m
	agg := rh.Row(1000)
	for i := 0; i < 100*tRH; i++ {
		ref.Activate(agg)
	}
	if m.Flipped() {
		t.Fatalf("bit flipped under Hydra: %+v (mitigations %d)", m.Flips[0], ref.Mitigations)
	}
	if ref.Mitigations == 0 {
		t.Fatal("hammer never mitigated")
	}
}

func TestHalfDoubleDistanceTwoDamage(t *testing.T) {
	// Without mitigation, heavy hammering at distance 2 from the
	// victim flips it via the coupling coefficient.
	m := NewModel(tRH, 2, rpb, 0.05)
	victim := rh.Row(1000)
	// Hammer victim+2 and victim-2: victim gets 2*0.05 per pair.
	need := int(float64(tRH)/0.05) + 1
	flippedVictim := false
	for i := 0; i < need; i++ {
		m.Activated(victim + 2)
		m.Activated(victim - 2)
		for _, f := range m.Flips {
			if f.Row == victim {
				flippedVictim = true
			}
		}
		if flippedVictim {
			break
		}
	}
	if !flippedVictim {
		t.Fatalf("distance-2 victim never flipped (max damage %.1f)", m.MaxDamage)
	}
}

func TestHydraPreventsHalfDouble(t *testing.T) {
	m := NewModel(tRH, 2, rpb, 0.05)
	ref := mitigate.NewRefresher(hydraTracker(t), 2, rpb)
	ref.Observer = m
	victim := rh.Row(1000)
	for i := 0; i < 50*tRH; i++ {
		ref.Activate(victim + 2)
		ref.Activate(victim - 2)
	}
	for _, f := range m.Flips {
		if f.Row >= victim-2 && f.Row <= victim+2 {
			t.Fatalf("half-double flipped row %d under Hydra", f.Row)
		}
	}
	if m.Flipped() {
		t.Fatalf("unexpected flip at %+v", m.Flips[0])
	}
}

func TestMitigationRefreshClearsDamage(t *testing.T) {
	m := NewModel(tRH, 2, rpb, 0.05)
	agg := rh.Row(500)
	for i := 0; i < tRH/2; i++ {
		m.Activated(agg)
	}
	if m.Damage(agg+1) == 0 {
		t.Fatal("no damage accumulated")
	}
	m.Mitigated(agg)
	if m.Damage(agg+1) != 0 || m.Damage(agg-2) != 0 {
		t.Fatal("mitigation did not clear blast-radius damage")
	}
}

func TestWindowResetClearsDamage(t *testing.T) {
	m := NewModel(tRH, 2, rpb, 0.05)
	m.Activated(rh.Row(7))
	m.WindowReset()
	if m.Damage(rh.Row(8)) != 0 {
		t.Fatal("damage survived the refresh window")
	}
}

func TestEdgeRowsClipDamage(t *testing.T) {
	m := NewModel(tRH, 2, rpb, 0.05)
	// Row 0: neighbours -1 and -2 do not exist; no panic, no wraparound.
	for i := 0; i < tRH; i++ {
		m.Activated(rh.Row(0))
	}
	if !m.Flipped() {
		t.Fatal("row 1 should have flipped")
	}
	for _, f := range m.Flips {
		if int(f.Row) > 2 {
			t.Fatalf("implausible flip at row %d", f.Row)
		}
	}
}

func TestBadParametersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad parameters should panic")
		}
	}()
	NewModel(1, 2, rpb, 0)
}
