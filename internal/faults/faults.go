// Package faults is a physical-damage model of row-hammer: instead of
// checking the tracking invariant (internal/attack's oracle), it
// accumulates disturbance on victim rows the way DRAM cells do and
// reports bit-flips when any row's damage reaches the row-hammer
// threshold.
//
// Each activation of row r disturbs its neighbours: distance-1 rows
// take a full unit of damage, distance-2 rows take a fractional unit
// (the coupling Half-Double exploits; Section 7.4 notes bit-flips at
// distance two). A refresh of a row — from a victim-refresh mitigation
// or the staggered auto-refresh — restores its charge, clearing the
// damage. A row whose accumulated damage reaches T_RH flips.
//
// The model turns the paper's assumption ("a successful attack
// requires more than T_RH activations within a refresh interval") into
// an executable failure condition: the unprotected baseline flips
// under a hammer, Hydra does not.
package faults

import (
	"fmt"

	"repro/internal/mitigate"
	"repro/internal/rh"
)

// Flip records one induced bit-flip.
type Flip struct {
	Row    rh.Row
	Damage float64
}

// Model accumulates per-row disturbance. It implements
// mitigate.Observer so it can watch a Refresher or the full-system
// simulator directly.
type Model struct {
	trh         float64
	blast       int
	rowsPerBank int
	dist2Coef   float64 // fractional damage at distance two

	damage map[rh.Row]float64

	Flips     []Flip
	MaxDamage float64
}

var _ mitigate.Observer = (*Model)(nil)

// NewModel creates a damage model. dist2Coef is the distance-2
// coupling coefficient; Half-Double's ~300K-hammer requirement against
// a T_RH ~ 5-10K part implies a few percent, so 0.05 is the default
// when 0 is passed.
func NewModel(trh, blast, rowsPerBank int, dist2Coef float64) *Model {
	if trh <= 1 || rowsPerBank <= 0 || blast <= 0 {
		panic(fmt.Sprintf("faults: bad parameters trh=%d blast=%d rowsPerBank=%d", trh, blast, rowsPerBank))
	}
	if dist2Coef <= 0 {
		dist2Coef = 0.05
	}
	return &Model{
		trh:         float64(trh),
		blast:       blast,
		rowsPerBank: rowsPerBank,
		dist2Coef:   dist2Coef,
		damage:      make(map[rh.Row]float64),
	}
}

// Activated implements mitigate.Observer: one activation of row
// disturbs its neighbours — and restores the activated row itself,
// since opening a row senses and rewrites its own cells. (This is why
// a hammered aggressor never flips its own bits, only its victims'.)
func (m *Model) Activated(row rh.Row) {
	delete(m.damage, row)
	inBank := int(row) % m.rowsPerBank
	m.disturb(row, inBank, -1, 1)
	m.disturb(row, inBank, +1, 1)
	m.disturb(row, inBank, -2, m.dist2Coef)
	m.disturb(row, inBank, +2, m.dist2Coef)
}

func (m *Model) disturb(row rh.Row, inBank, d int, units float64) {
	n := inBank + d
	if n < 0 || n >= m.rowsPerBank {
		return
	}
	victim := row + rh.Row(d)
	dmg := m.damage[victim] + units
	m.damage[victim] = dmg
	if dmg > m.MaxDamage {
		m.MaxDamage = dmg
	}
	if dmg >= m.trh {
		m.Flips = append(m.Flips, Flip{Row: victim, Damage: dmg})
		m.damage[victim] = 0 // the flip happened; start a fresh cell
	}
}

// Mitigated implements mitigate.Observer: the mitigation refreshes the
// blast-radius neighbours, restoring their charge.
func (m *Model) Mitigated(row rh.Row) {
	for _, v := range mitigate.Victims(row, m.blast, m.rowsPerBank) {
		delete(m.damage, v)
	}
}

// WindowReset models the staggered auto-refresh: every row is
// refreshed once per 64 ms window, so damage does not persist across a
// full window. (Within-window staggering is already covered by the
// two-window accounting of the tracking oracle; the damage model uses
// the window boundary as the refresh point, which is conservative for
// attacks that straddle it by less than a window.)
func (m *Model) WindowReset() {
	clear(m.damage)
}

// Finish is a no-op; damage is evaluated continuously.
func (m *Model) Finish() {}

// Flipped reports whether any bit flipped.
func (m *Model) Flipped() bool { return len(m.Flips) > 0 }

// Damage returns the current damage of a row (for tests).
func (m *Model) Damage(row rh.Row) float64 { return m.damage[row] }
