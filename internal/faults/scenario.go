package faults

import (
	"fmt"
	"sort"
	"strings"
)

// Scenario is one named chaos campaign: a set of fault injections the
// full-system simulator applies while an attack and the security
// oracle run. Scenarios perturb exactly the mechanisms the paper's
// guarantee depends on:
//
//   - RCT metadata-row corruption (Section 5.2's attack surface):
//     DRAM-resident per-row counters silently decay toward zero, the
//     adversarial direction — an undercount can hide a hot row;
//   - dropped victim refreshes: the tracker's mitigation decision is
//     issued but the refresh commands are lost between the controller
//     and the DRAM, so victims keep accumulating charge loss;
//   - postponed auto-refresh: the periodic window refresh (and the
//     tracker reset that rides on it) arrives late, stretching the
//     interval an attacker has to work with.
//
// The harness runs each scenario as a campaign cell and records, per
// scenario, whether Hydra's guarantee held or the degradation was
// detected by the oracle/damage model (see internal/exp Chaos).
type Scenario struct {
	// Name identifies the scenario in reports and on the command line.
	Name string
	// Description is a one-line summary for reports.
	Description string

	// DropRefreshProb drops each victim-refresh burst (the whole blast
	// radius of one mitigation) with this probability, 0..1.
	DropRefreshProb float64

	// PostponeWindows stretches every tracking window by this fraction
	// of its nominal length (1.0 doubles the window).
	PostponeWindows float64

	// CorruptRCTFrac zeroes each nonzero DRAM-resident RCT counter
	// with this probability at every corruption event. Applies to the
	// Hydra tracker only; other trackers have no RCT.
	CorruptRCTFrac float64
	// CorruptEveryActs spaces corruption events: one sweep per this
	// many controller activations (0 disables corruption even when
	// CorruptRCTFrac is set).
	CorruptEveryActs int64
}

// Active reports whether the scenario injects any fault at all.
func (s Scenario) Active() bool {
	return s.DropRefreshProb > 0 || s.PostponeWindows > 0 ||
		(s.CorruptRCTFrac > 0 && s.CorruptEveryActs > 0)
}

// Validate checks the scenario's parameters.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("faults: scenario needs a name")
	}
	if s.DropRefreshProb < 0 || s.DropRefreshProb > 1 {
		return fmt.Errorf("faults: %s: DropRefreshProb %g outside [0,1]", s.Name, s.DropRefreshProb)
	}
	if s.CorruptRCTFrac < 0 || s.CorruptRCTFrac > 1 {
		return fmt.Errorf("faults: %s: CorruptRCTFrac %g outside [0,1]", s.Name, s.CorruptRCTFrac)
	}
	if s.PostponeWindows < 0 || s.PostponeWindows > 16 {
		return fmt.Errorf("faults: %s: PostponeWindows %g outside [0,16]", s.Name, s.PostponeWindows)
	}
	if s.CorruptEveryActs < 0 {
		return fmt.Errorf("faults: %s: CorruptEveryActs %d negative", s.Name, s.CorruptEveryActs)
	}
	return nil
}

// Scenarios returns the named chaos campaigns, control first.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "none",
			Description: "control: no fault injection; the guarantee must hold",
		},
		{
			Name:            "refresh-drop",
			Description:     "every victim-refresh burst is lost between controller and DRAM",
			DropRefreshProb: 1.0,
		},
		{
			Name:             "rct-corruption",
			Description:      "DRAM-resident RCT counters decay to zero mid-window",
			CorruptRCTFrac:   0.5,
			CorruptEveryActs: 10_000,
		},
		{
			Name:            "refresh-postpone",
			Description:     "auto-refresh (and the tracker reset) arrives one window late",
			PostponeWindows: 1.0,
		},
	}
}

// ScenarioNames lists the built-in scenario names in order.
func ScenarioNames() []string {
	var names []string
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return names
}

// ScenarioByName resolves a built-in scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	known := ScenarioNames()
	sort.Strings(known)
	return Scenario{}, fmt.Errorf("faults: unknown scenario %q (have %s)", name, strings.Join(known, ", "))
}
