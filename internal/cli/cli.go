// Package cli is the shared entry-point scaffolding for the repo's
// binaries. Every command is written as
//
//	func main() { cli.Main("tool", run) }
//	func run(ctx context.Context, args []string) error { ... }
//
// so there is a single exit point per process and a consistent exit
// code contract: 0 on success, 1 on runtime failure, 2 on a usage
// error (bad flags, missing arguments, unknown targets), 130 when the
// run was interrupted (SIGINT/SIGTERM — 128+SIGINT, the shell
// convention). The run function returns errors instead of calling
// os.Exit, which keeps its defers (profile flushing, file closing,
// checkpoint flushing) working — exactly what a graceful shutdown
// needs.
//
// The context Main passes to run is cancelled on the first SIGINT or
// SIGTERM; run bodies thread it into their campaign so in-flight cells
// stop, the final checkpoint flushes, and telemetry drains. A second
// signal restores the default handler's immediate kill, so a wedged
// shutdown can still be interrupted from the keyboard.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Exit codes of every binary in this repo.
const (
	ExitOK        = 0
	ExitRuntime   = 1
	ExitUsage     = 2
	ExitInterrupt = 130 // 128 + SIGINT, the shell convention
)

// usageError marks a command-line mistake; Main exits 2 for it. quiet
// suppresses Main's printing when the flag package already reported
// the problem.
type usageError struct {
	msg   string
	quiet bool
}

func (e *usageError) Error() string { return e.msg }

// Usagef returns a usage error (exit code 2) with a formatted message.
func Usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// ParseError adapts a flag.FlagSet parse failure: flag.ErrHelp passes
// through (Main exits 0 for -h), anything else becomes a quiet usage
// error because the flag package has already printed the diagnostic.
func ParseError(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &usageError{msg: err.Error(), quiet: true}
}

// Main runs the tool body and exits the process with the contract
// above. It is the only os.Exit call site in a binary.
//
// Interruption trumps other outcomes: when the context was cancelled
// by a signal, the process exits 130 whether run managed to return
// cleanly or with an error — the caller (shell, CI, driver) must see
// that the output is the product of an interrupted run.
func Main(tool string, run func(ctx context.Context, args []string) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal cancels ctx, restore default signal
	// disposition so a second ^C kills a shutdown that is not finishing.
	go func() {
		<-ctx.Done()
		stop()
	}()

	err := run(ctx, os.Args[1:])
	if ctx.Err() != nil {
		if err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "%s: interrupted: %v\n", tool, err)
		} else {
			fmt.Fprintf(os.Stderr, "%s: interrupted\n", tool)
		}
		os.Exit(ExitInterrupt)
	}
	if err == nil {
		return // exit 0
	}
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(ExitOK)
	}
	var ue *usageError
	if errors.As(err, &ue) {
		if !ue.quiet {
			fmt.Fprintf(os.Stderr, "%s: %s\n", tool, ue.msg)
		}
		os.Exit(ExitUsage)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitRuntime)
}
