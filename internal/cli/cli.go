// Package cli is the shared entry-point scaffolding for the repo's
// binaries. Every command is written as
//
//	func main() { cli.Main("tool", run) }
//	func run(args []string) error { ... }
//
// so there is a single exit point per process and a consistent exit
// code contract: 0 on success, 1 on runtime failure, 2 on a usage
// error (bad flags, missing arguments, unknown targets). The run
// function returns errors instead of calling os.Exit, which keeps its
// defers (profile flushing, file closing) working.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// Exit codes of every binary in this repo.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
)

// usageError marks a command-line mistake; Main exits 2 for it. quiet
// suppresses Main's printing when the flag package already reported
// the problem.
type usageError struct {
	msg   string
	quiet bool
}

func (e *usageError) Error() string { return e.msg }

// Usagef returns a usage error (exit code 2) with a formatted message.
func Usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// ParseError adapts a flag.FlagSet parse failure: flag.ErrHelp passes
// through (Main exits 0 for -h), anything else becomes a quiet usage
// error because the flag package has already printed the diagnostic.
func ParseError(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &usageError{msg: err.Error(), quiet: true}
}

// Main runs the tool body and exits the process with the contract
// above. It is the only os.Exit call site in a binary.
func Main(tool string, run func(args []string) error) {
	err := run(os.Args[1:])
	if err == nil {
		return // exit 0
	}
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(ExitOK)
	}
	var ue *usageError
	if errors.As(err, &ue) {
		if !ue.quiet {
			fmt.Fprintf(os.Stderr, "%s: %s\n", tool, ue.msg)
		}
		os.Exit(ExitUsage)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitRuntime)
}
