// Package storage reproduces the paper's storage analysis: Table 1
// (per-rank SRAM/CAM of prior trackers across thresholds), Table 4
// (Hydra's SRAM breakdown) and Table 5 (total SRAM for the 32 GB
// system, DDR4 vs DDR5).
//
// Sizing rules. Graphene, OCPR and Hydra follow exact published
// formulas (entry counts times entry widths). TWiCE, CAT and D-CBF
// publish only totals at a few thresholds, so their models use the
// schemes' entry-count scaling laws with a bytes-per-entry constant
// calibrated once against the paper's Table 1 anchors:
//
//   - TWiCE: entries = ceil(ACTmax / (T_RH/4)) per bank at 13.8 B/entry
//     (matches 37 KB at 32K and 2.3 MB at 500);
//   - CAT:  nodes = ACTmax/T_RH per bank at 36 B/node
//     (matches 25 KB at 32K and 1.5 MB at 500);
//   - D-CBF: 2 filters x max(9*ACTmax/T_RH, 1700) counters per bank,
//     1 B each (matches 768 KB at 500 and the 53 KB floor at 32K; per
//     the paper, D-CBF does not grow from DDR4 to DDR5).
package storage

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// Rank describes one rank for the Table 1 analysis: the paper uses a
// 16 GB rank of 16 banks with 8 KB rows.
type Rank struct {
	Rows   int // rows in the rank (2 M for 16 GB / 8 KB)
	Banks  int
	ACTMax int // activations per bank per 64 ms window
}

// PaperRank is Table 1's 16 GB rank.
func PaperRank() Rank {
	return Rank{Rows: 2 * 1024 * 1024, Banks: 16, ACTMax: 1360000}
}

func bitsFor(n int) int {
	if n <= 0 {
		return 1
	}
	return bits.Len(uint(n))
}

// GrapheneBytes returns Graphene's per-rank storage: the tracker
// operates at T_RH/2 (reset halving), needs ACTmax/(T_RH/2) CAM
// entries per bank, 4 bytes each.
func GrapheneBytes(r Rank, trh int) int {
	t := trh / 2
	if t < 1 {
		t = 1
	}
	perBank := (r.ACTMax + t - 1) / t
	return perBank * r.Banks * 4
}

// OCPRBytes returns the naive one-counter-per-row storage:
// log2(T_RH) bits per row.
func OCPRBytes(r Rank, trh int) int {
	return r.Rows * bitsFor(trh-1) / 8
}

// TWiCEBytes returns the calibrated TWiCE sizing.
func TWiCEBytes(r Rank, trh int) int {
	q := trh / 4
	if q < 1 {
		q = 1
	}
	perBank := (r.ACTMax + q - 1) / q
	return perBank * r.Banks * 138 / 10
}

// CATBytes returns the calibrated Counter-Adaptive-Tree sizing.
func CATBytes(r Rank, trh int) int {
	perBank := r.ACTMax / trh
	return perBank * r.Banks * 36
}

// DCBFBytes returns the calibrated dual-counting-Bloom-filter sizing.
func DCBFBytes(r Rank, trh int) int {
	perBank := 9 * r.ACTMax / trh
	if perBank < 1700 {
		perBank = 1700 // false-positive floor: the filter cannot shrink further
	}
	return 2 * perBank * r.Banks
}

// STARTBytes returns START's worst-case borrowed LLC capacity for a
// rank (arXiv 2308.14889): a single pooled Misra-Gries table of
// ceil(Banks*ACTmax / (T_RH/2)) entries at 8 B each. START dedicates
// no SRAM; the figure is the LLC reservation that backs the security
// guarantee (typical occupancy is far lower — that is the scheme's
// selling point).
func STARTBytes(r Rank, trh int) int {
	t := trh / 2
	if t < 1 {
		t = 1
	}
	entries := (r.Banks*r.ACTMax + t - 1) / t
	return entries * 8
}

// MINTBytes returns MINT's per-rank SRAM (arXiv 2407.16038): ~30 bits
// per bank (interval position plus slot), rounded to 4 bytes —
// threshold-independent, the minimalist point of the design.
func MINTBytes(r Rank) int {
	return 4 * r.Banks
}

// DAPPERBytes returns DAPPER's per-rank SRAM (arXiv 2501.18857): a
// per-bank Misra-Gries table sized for the jittered early-mitigation
// cut (effective threshold ~3/4 of T_RH/2), at 5 B per entry (4 as
// Graphene plus a stored jitter byte).
func DAPPERBytes(r Rank, trh int) int {
	t := trh / 2
	if t < 1 {
		t = 1
	}
	jitterMax := t / 4
	if jitterMax < 1 {
		jitterMax = 1
	}
	effective := t - jitterMax + 1
	perBank := (r.ACTMax + effective - 1) / effective
	return perBank * r.Banks * 5
}

// HydraBytes returns Hydra's total SRAM for a whole system (Hydra's
// structures are per memory controller, not per bank, so the cost is
// independent of the bank count — the reason Table 5's DDR5 column is
// unchanged).
func HydraBytes(trh int) int {
	return core.ForThreshold(trh).Storage().TotalBytes
}

// Table1Row is one threshold row of Table 1 (bytes per rank). The
// paper's columns plus the post-Hydra schemes (START, MINT, DAPPER)
// the tracker arena adds.
type Table1Row struct {
	TRH      int
	Graphene int
	TWiCE    int
	CAT      int
	DCBF     int
	OCPR     int
	START    int
	MINT     int
	DAPPER   int
}

// Table1 computes the paper's Table 1 for the given thresholds.
func Table1(r Rank, thresholds ...int) []Table1Row {
	rows := make([]Table1Row, 0, len(thresholds))
	for _, t := range thresholds {
		rows = append(rows, Table1Row{
			TRH:      t,
			Graphene: GrapheneBytes(r, t),
			TWiCE:    TWiCEBytes(r, t),
			CAT:      CATBytes(r, t),
			DCBF:     DCBFBytes(r, t),
			OCPR:     OCPRBytes(r, t),
			START:    STARTBytes(r, t),
			MINT:     MINTBytes(r),
			DAPPER:   DAPPERBytes(r, t),
		})
	}
	return rows
}

// Table5Row is one scheme row of Table 5: total SRAM for the 32 GB
// two-rank system, for DDR4 (16 banks/rank) and DDR5 (32 banks/rank).
type Table5Row struct {
	Scheme string
	DDR4   int
	DDR5   int
}

// Table5 computes the paper's Table 5 at the given threshold (500 in
// the paper), extended with the arena's post-Hydra schemes. Per-bank
// trackers (including START's pooled worst case and DAPPER) double
// from DDR4 to DDR5; D-CBF and Hydra do not, and MINT grows only by
// its 4 bytes per extra bank.
func Table5(trh int) []Table5Row {
	ddr4 := PaperRank()
	ddr5 := ddr4
	ddr5.Banks = 32
	const ranks = 2
	return []Table5Row{
		{Scheme: "graphene", DDR4: ranks * GrapheneBytes(ddr4, trh), DDR5: ranks * GrapheneBytes(ddr5, trh)},
		{Scheme: "twice", DDR4: ranks * TWiCEBytes(ddr4, trh), DDR5: ranks * TWiCEBytes(ddr5, trh)},
		{Scheme: "cat", DDR4: ranks * CATBytes(ddr4, trh), DDR5: ranks * CATBytes(ddr5, trh)},
		{Scheme: "dcbf", DDR4: ranks * DCBFBytes(ddr4, trh), DDR5: ranks * DCBFBytes(ddr4, trh)},
		{Scheme: "start", DDR4: ranks * STARTBytes(ddr4, trh), DDR5: ranks * STARTBytes(ddr5, trh)},
		{Scheme: "mint", DDR4: ranks * MINTBytes(ddr4), DDR5: ranks * MINTBytes(ddr5)},
		{Scheme: "dapper", DDR4: ranks * DAPPERBytes(ddr4, trh), DDR5: ranks * DAPPERBytes(ddr5, trh)},
		{Scheme: "hydra", DDR4: HydraBytes(trh), DDR5: HydraBytes(trh)},
	}
}

// Table4 returns Hydra's storage breakdown (the paper's Table 4) for
// the default configuration.
func Table4() core.StorageBreakdown {
	return core.Default().Storage()
}

// FormatBytes renders a byte count the way the paper does (KB / MB).
func FormatBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
