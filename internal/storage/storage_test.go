package storage

import "testing"

// near reports whether got is within tol (fractional) of want.
func near(got, want int, tol float64) bool {
	d := float64(got)/float64(want) - 1
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestTable1Anchors pins every numeric cell of the paper's Table 1
// (within 15%: the paper rounds to whole KB/MB).
func TestTable1Anchors(t *testing.T) {
	r := PaperRank()
	kb := func(x float64) int { return int(x * 1024) }
	mb := func(x float64) int { return int(x * 1024 * 1024) }
	cases := []struct {
		name string
		f    func(Rank, int) int
		trh  int
		want int
	}{
		{"graphene@250", GrapheneBytes, 250, kb(679)},
		{"graphene@500", GrapheneBytes, 500, kb(340)},
		{"graphene@1000", GrapheneBytes, 1000, kb(170)},
		{"graphene@32000", GrapheneBytes, 32000, kb(5)},
		{"twice@500", TWiCEBytes, 500, mb(2.3)},
		{"twice@1000", TWiCEBytes, 1000, mb(1.2)},
		{"twice@32000", TWiCEBytes, 32000, kb(37)},
		{"cat@500", CATBytes, 500, mb(1.5)},
		{"cat@1000", CATBytes, 1000, kb(784)},
		{"cat@32000", CATBytes, 32000, kb(25)},
		{"dcbf@250", DCBFBytes, 250, mb(1.5)},
		{"dcbf@500", DCBFBytes, 500, kb(768)},
		{"dcbf@1000", DCBFBytes, 1000, kb(384)},
		{"ocpr@250", OCPRBytes, 250, mb(2.0)},
		{"ocpr@500", OCPRBytes, 500, mb(2.3)},
		{"ocpr@1000", OCPRBytes, 1000, mb(2.5)},
		{"ocpr@32000", OCPRBytes, 32000, mb(3.8)},
	}
	for _, tc := range cases {
		got := tc.f(r, tc.trh)
		if !near(got, tc.want, 0.15) {
			t.Errorf("%s = %s, want ~%s", tc.name, FormatBytes(got), FormatBytes(tc.want))
		}
	}
}

func TestTable1HydraGoal(t *testing.T) {
	// The paper's goal column: <= 64 KB per rank at every ultra-low
	// threshold. Hydra's storage is per-system (two ranks), so halve.
	for _, trh := range []int{250, 500, 1000} {
		perRank := HydraBytes(trh) / 2
		if perRank > 64*1024 {
			t.Errorf("hydra at TRH=%d: %s per rank, want <= 64 KB", trh, FormatBytes(perRank))
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(PaperRank(), 250, 500, 1000, 32000)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tracker storage must grow as the threshold shrinks.
	for i := 1; i < len(rows); i++ {
		if rows[i].Graphene >= rows[i-1].Graphene {
			t.Errorf("graphene not shrinking with rising TRH: %+v", rows)
		}
		if rows[i].TWiCE >= rows[i-1].TWiCE || rows[i].CAT >= rows[i-1].CAT || rows[i].DCBF >= rows[i-1].DCBF {
			t.Errorf("tracker storage not monotonic: %+v", rows)
		}
	}
	// OCPR barely changes (counter width only).
	if !near(rows[0].OCPR, rows[3].OCPR, 1.0) {
		t.Errorf("OCPR at 250 (%d) vs 32000 (%d) differ too much", rows[0].OCPR, rows[3].OCPR)
	}
}

// TestTable5Anchors pins the paper's Table 5 at T_RH = 500.
func TestTable5Anchors(t *testing.T) {
	rows := Table5(500)
	want := map[string][2]int{
		"graphene": {680 * 1024, 1400 * 1024},
		"twice":    {4823450, 9646899},
		"cat":      {3 * 1024 * 1024, 6 * 1024 * 1024},
		"dcbf":     {int(1.5 * 1024 * 1024), int(1.5 * 1024 * 1024)},
		// Post-Hydra arena schemes (model calibrations, not paper cells):
		// START = pooled worst-case LLC reservation, MINT = 4 B/bank,
		// DAPPER = Graphene x 4/3 entries at 5 B each.
		"start":  {1392640, 2785280},
		"mint":   {128, 256},
		"dapper": {1151520, 2303040},
		"hydra":  {57856, 57856},
	}
	seen := map[string]bool{}
	for _, row := range rows {
		w, ok := want[row.Scheme]
		if !ok {
			t.Errorf("unexpected scheme %q", row.Scheme)
			continue
		}
		seen[row.Scheme] = true
		if !near(row.DDR4, w[0], 0.15) {
			t.Errorf("%s DDR4 = %s, want ~%s", row.Scheme, FormatBytes(row.DDR4), FormatBytes(w[0]))
		}
		if !near(row.DDR5, w[1], 0.15) {
			t.Errorf("%s DDR5 = %s, want ~%s", row.Scheme, FormatBytes(row.DDR5), FormatBytes(w[1]))
		}
	}
	if len(seen) != len(want) {
		t.Errorf("schemes covered: %v", seen)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	s := Table4()
	if s.TotalBytes != 56*1024+512 {
		t.Fatalf("Hydra total = %s, want 56.5 KB", FormatBytes(s.TotalBytes))
	}
}

func TestPerBankSchemesDoubleOnDDR5(t *testing.T) {
	rows := Table5(500)
	for _, row := range rows {
		switch row.Scheme {
		case "graphene", "twice", "cat", "start", "mint", "dapper":
			if !near(row.DDR5, 2*row.DDR4, 0.01) {
				t.Errorf("%s: DDR5 (%d) != 2x DDR4 (%d)", row.Scheme, row.DDR5, row.DDR4)
			}
		case "dcbf", "hydra":
			if row.DDR5 != row.DDR4 {
				t.Errorf("%s: DDR5 (%d) != DDR4 (%d); should not grow", row.Scheme, row.DDR5, row.DDR4)
			}
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		512:             "512 B",
		56*1024 + 512:   "56.5 KB",
		3 * 1024 * 1024: "3.0 MB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
