// Package testutil holds the shared test-tier knob. Expensive suites —
// the crash-point sweep, fuzz-style property loops, soak runs — scale
// their iteration counts through Intensity instead of hardcoding them,
// so one environment variable moves the whole tree between a fast
// pre-commit tier and a thorough soak tier:
//
//	TEST_INTENSITY=quick    (default) CI/pre-commit sizes
//	TEST_INTENSITY=thorough `make soak` sizes, under -race
package testutil

import (
	"fmt"
	"os"
	"testing"
)

// Intensity is the test-effort tier selected by TEST_INTENSITY.
type Intensity int

const (
	// Quick is the default tier: every test finishes in seconds, suitable
	// for pre-commit and CI (`make test`, `make check`).
	Quick Intensity = iota
	// Thorough is the soak tier (`make soak`): full crash-point coverage,
	// long property-test loops, larger matrices.
	Thorough
)

func (i Intensity) String() string {
	if i == Thorough {
		return "thorough"
	}
	return "quick"
}

// FromEnv reads TEST_INTENSITY. Unset or empty means Quick; an
// unrecognized value fails the test rather than silently running the
// wrong tier.
func FromEnv(tb testing.TB) Intensity {
	tb.Helper()
	switch v := os.Getenv("TEST_INTENSITY"); v {
	case "", "quick":
		return Quick
	case "thorough":
		return Thorough
	default:
		tb.Fatalf("TEST_INTENSITY=%q: want quick or thorough", v)
		return Quick
	}
}

// Pick returns the value for the active tier — the idiom for sizing a
// loop: testutil.Pick(tb, 50, 2000) iterations.
func Pick[T any](tb testing.TB, quick, thorough T) T {
	tb.Helper()
	if FromEnv(tb) == Thorough {
		return thorough
	}
	return quick
}

// Logf records the chosen size so a soak log shows what actually ran.
func Logf(tb testing.TB, format string, args ...any) {
	tb.Helper()
	tb.Logf("[%s] %s", FromEnv(tb), fmt.Sprintf(format, args...))
}
