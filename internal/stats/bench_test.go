package stats

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/memsim
cpu: some CPU @ 3.20GHz
BenchmarkChannelThroughput-8 	 2274300	      1084 ns/op	     102 B/op	       1 allocs/op
BenchmarkRowHitStream      	 1491654	      1381.5 ns/op
PASS
ok  	repro/internal/memsim	4.861s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(got), got)
	}
	ct, ok := got["BenchmarkChannelThroughput"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", got)
	}
	if ct.N != 2274300 || ct.NsPerOp != 1084 || ct.BytesPerOp != 102 || ct.AllocsPerOp != 1 {
		t.Fatalf("ChannelThroughput = %+v", ct)
	}
	rh := got["BenchmarkRowHitStream"]
	if rh.NsPerOp != 1381.5 {
		t.Fatalf("RowHitStream ns/op = %v", rh.NsPerOp)
	}
	// No -benchmem: allocation columns marked absent.
	if rh.BytesPerOp != -1 || rh.AllocsPerOp != -1 {
		t.Fatalf("RowHitStream allocs = %+v, want absent (-1)", rh)
	}
}

func TestCompareBench(t *testing.T) {
	base := map[string]BenchResult{
		"BenchmarkA":          {NsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkB":          {NsPerOp: 1000, AllocsPerOp: 2},
		"BenchmarkC":          {NsPerOp: 1000, AllocsPerOp: -1},
		"BenchmarkD":          {NsPerOp: 1000, AllocsPerOp: 1_000_000},
		"BenchmarkE":          {NsPerOp: 1000, AllocsPerOp: 1_000_000},
		"BenchmarkOnlyInBase": {NsPerOp: 5},
	}
	cur := map[string]BenchResult{
		"BenchmarkA":         {NsPerOp: 1100, AllocsPerOp: 0},         // +10%: inside tolerance
		"BenchmarkB":         {NsPerOp: 900, AllocsPerOp: 3},          // faster but allocates more
		"BenchmarkC":         {NsPerOp: 1300, AllocsPerOp: 0},         // +30%: over tolerance
		"BenchmarkD":         {NsPerOp: 1000, AllocsPerOp: 1_000_900}, // within 0.1% jitter slack
		"BenchmarkE":         {NsPerOp: 1000, AllocsPerOp: 1_002_000}, // beyond the slack
		"BenchmarkOnlyInCur": {NsPerOp: 5},
	}
	deltas := CompareBench(base, cur, 0.25)
	if len(deltas) != 6 {
		t.Fatalf("compared %d benchmarks, want 6 (current side, incl. new): %+v", len(deltas), deltas)
	}
	byName := map[string]BenchDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if _, ok := byName["BenchmarkOnlyInBase"]; ok {
		t.Fatalf("baseline-only benchmark should be skipped: %+v", byName["BenchmarkOnlyInBase"])
	}
	if d := byName["BenchmarkOnlyInCur"]; !d.New || d.Regressed {
		t.Fatalf("current-only benchmark must be New and never regressed: %+v", d)
	}
	for _, d := range deltas {
		if d.New && d.Name != "BenchmarkOnlyInCur" {
			t.Fatalf("benchmark %s wrongly marked New", d.Name)
		}
	}
	if d := byName["BenchmarkA"]; d.Regressed {
		t.Fatalf("A regressed within tolerance: %+v", d)
	}
	if d := byName["BenchmarkB"]; !d.Regressed || !strings.Contains(d.Reason, "allocs") {
		t.Fatalf("B allocation regression missed: %+v", d)
	}
	if d := byName["BenchmarkC"]; !d.Regressed || !strings.Contains(d.Reason, "ns/op") {
		t.Fatalf("C time regression missed: %+v", d)
	}
	if r := byName["BenchmarkC"].Ratio; r != 1.3 {
		t.Fatalf("C ratio = %v, want 1.3", r)
	}
	if d := byName["BenchmarkD"]; d.Regressed {
		t.Fatalf("D regressed within the allocation jitter slack: %+v", d)
	}
	if d := byName["BenchmarkE"]; !d.Regressed || !strings.Contains(d.Reason, "allocs") {
		t.Fatalf("E allocation regression beyond slack missed: %+v", d)
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	cur := map[string]BenchResult{"BenchmarkX": {N: 10, NsPerOp: 250, AllocsPerOp: 0, BytesPerOp: 0}}
	prev := map[string]BenchResult{"BenchmarkX": {N: 5, NsPerOp: 1000, AllocsPerOp: 1, BytesPerOp: 64}}
	if err := WriteBenchFile(path, cur, prev); err != nil {
		t.Fatal(err)
	}
	f, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks["BenchmarkX"].NsPerOp != 250 {
		t.Fatalf("benchmarks = %+v", f.Benchmarks)
	}
	if f.Previous["BenchmarkX"].NsPerOp != 1000 {
		t.Fatalf("previous = %+v", f.Previous)
	}
	if s := f.Speedup["BenchmarkX"]; s != 4 {
		t.Fatalf("speedup = %v, want 4", s)
	}
	if f.Env == nil {
		t.Fatal("written baseline carries no environment stamp")
	}
	if got := CurrentBenchEnv().Mismatch(*f.Env); got != "" {
		t.Fatalf("self-comparison reports mismatch: %s", got)
	}
}

func TestBenchEnvMismatch(t *testing.T) {
	self := CurrentBenchEnv()
	cases := map[string]func(*BenchEnv){
		"GOOS":       func(e *BenchEnv) { e.GOOS += "x" },
		"GOARCH":     func(e *BenchEnv) { e.GOARCH += "x" },
		"NumCPU":     func(e *BenchEnv) { e.NumCPU++ },
		"GOMAXPROCS": func(e *BenchEnv) { e.GOMAXPROCS++ },
	}
	for name, mutate := range cases {
		base := self
		mutate(&base)
		if got := self.Mismatch(base); got == "" {
			t.Errorf("differing %s not reported as a mismatch", name)
		}
	}
}

// TestLoadBenchFileWithoutEnv pins back-compat: baselines written
// before the environment stamp load fine with a nil Env, which callers
// treat as "no environment check possible".
func TestLoadBenchFileWithoutEnv(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeTestFile(path, `{"schema":"hydra-bench-baseline/v1","benchmarks":{"BenchmarkX":{"n":1,"ns_per_op":10,"bytes_per_op":-1,"allocs_per_op":-1}}}`); err != nil {
		t.Fatal(err)
	}
	f, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Env != nil {
		t.Fatalf("env = %+v, want nil for a pre-stamp baseline", f.Env)
	}
}

func TestLoadBenchFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeTestFile(path, `{"schema":"other/v9","benchmarks":{}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
