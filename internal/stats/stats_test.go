package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestGeomeanBasics(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{2, 8}); !almostEqual(g, 4, 1e-12) {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); !almostEqual(g, 1, 1e-12) {
		t.Fatalf("geomean(1,1,1) = %v, want 1", g)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("geomean of 0 should panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = 0.01 + float64(r)/1000
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); !almostEqual(m, 2, 1e-12) {
		t.Fatalf("mean = %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean(nil) = %v, want 0", m)
	}
}

func TestSlowdownPct(t *testing.T) {
	if s := SlowdownPct(0.993); !almostEqual(s, 0.7, 1e-9) {
		t.Fatalf("slowdown(0.993) = %v, want 0.7", s)
	}
	if s := SlowdownPct(1.0); s != 0 {
		t.Fatalf("slowdown(1.0) = %v, want 0", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v, want 5", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("p50(nil) = %v, want 0", p)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 250)
	for _, v := range []int64{0, 5, 10, 11, 100, 101, 250, 251, 1000} {
		h.Add(v)
	}
	want := []int64{3, 2, 2, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%s)", i, h.Counts[i], w, h)
		}
	}
	if h.N != 9 || h.Max != 1000 {
		t.Fatalf("N=%d Max=%d, want 9/1000", h.N, h.Max)
	}
	if got := h.CountAbove(250); got != 2 {
		t.Fatalf("CountAbove(250) = %d, want 2", got)
	}
	if got := h.CountAbove(10); got != 6 {
		t.Fatalf("CountAbove(10) = %d, want 6", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds should panic")
		}
	}()
	NewHistogram(10, 10)
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(100)
	h.Add(10)
	h.Add(20)
	if m := h.Mean(); !almostEqual(m, 15, 1e-12) {
		t.Fatalf("mean = %v, want 15", m)
	}
	empty := NewHistogram(1)
	if m := empty.Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(1, 2); !almostEqual(r, 0.5, 1e-12) {
		t.Fatalf("ratio = %v, want 0.5", r)
	}
	if r := Ratio(1, 0); r != 0 {
		t.Fatalf("ratio/0 = %v, want 0", r)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Add(5)
	h.Add(50)
	h.Add(500)
	s := h.String()
	for _, want := range []string{"[0..10]:1", "[11..100]:1", "[101..]:1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}
